#include <gtest/gtest.h>

#include "embed/place_route.h"
#include "qubo/encoder.h"
#include "tests/sat/helpers.h"

namespace hyqsat::embed {
namespace {

using chimera::ChimeraGraph;

TEST(PlaceRoute, EmbedsATriangle)
{
    const ChimeraGraph g(2, 2, 4);
    PlaceRouteEmbedder embedder(g);
    const std::vector<std::pair<int, int>> edges{{0, 1}, {1, 2}, {0, 2}};
    const auto r = embedder.embed(3, edges);
    ASSERT_TRUE(r.success);
    std::string why;
    EXPECT_TRUE(r.embedding.isValid(g, edges, &why)) << why;
}

TEST(PlaceRoute, EmbedsAPathGraph)
{
    const ChimeraGraph g(3, 3, 4);
    PlaceRouteEmbedder embedder(g);
    std::vector<std::pair<int, int>> edges;
    for (int i = 0; i + 1 < 8; ++i)
        edges.emplace_back(i, i + 1);
    const auto r = embedder.embed(8, edges);
    ASSERT_TRUE(r.success);
    std::string why;
    EXPECT_TRUE(r.embedding.isValid(g, edges, &why)) << why;
}

TEST(PlaceRoute, EmbedsEncodedThreeSat)
{
    const ChimeraGraph g(8, 8, 4);
    Rng rng(17);
    const auto cnf = sat::testing::randomCnf(10, 15, 3, rng);
    const auto ep = qubo::encodeClauses(cnf.clauses());
    PlaceRouteEmbedder embedder(g);
    const auto r = embedder.embed(ep.numNodes(), ep.edges());
    ASSERT_TRUE(r.success);
    std::string why;
    EXPECT_TRUE(r.embedding.isValid(g, ep.edges(), &why)) << why;
}

TEST(PlaceRoute, FailsGracefullyWhenFull)
{
    const ChimeraGraph g(1, 1, 2); // 4 qubits
    PlaceRouteEmbedder embedder(g);
    std::vector<std::pair<int, int>> edges;
    for (int i = 0; i < 6; ++i)
        for (int j = i + 1; j < 6; ++j)
            edges.emplace_back(i, j);
    const auto r = embedder.embed(6, edges);
    EXPECT_FALSE(r.success);
}

TEST(PlaceRoute, IsolatedNodesPlaced)
{
    const ChimeraGraph g(2, 2, 4);
    PlaceRouteEmbedder embedder(g);
    const auto r = embedder.embed(5, {});
    ASSERT_TRUE(r.success);
    EXPECT_TRUE(r.embedding.isValid(g, {}));
}

TEST(PlaceRoute, DeterministicPerSeed)
{
    const ChimeraGraph g(4, 4, 4);
    const std::vector<std::pair<int, int>> edges{{0, 1}, {1, 2}};
    PlaceRouteOptions opts;
    opts.seed = 5;
    const auto a = PlaceRouteEmbedder(g, opts).embed(3, edges);
    const auto b = PlaceRouteEmbedder(g, opts).embed(3, edges);
    ASSERT_TRUE(a.success && b.success);
    for (int n = 0; n < 3; ++n)
        EXPECT_EQ(a.embedding.chain(n), b.embedding.chain(n));
}

TEST(PlaceRoute, LowerCapacityThanMinorminerStyleExpectation)
{
    // P&R saturates earlier on dense problems: a K8 on a 2x2 chip
    // should fail while remaining well-formed.
    const ChimeraGraph g(2, 2, 2);
    PlaceRouteEmbedder embedder(g);
    std::vector<std::pair<int, int>> edges;
    for (int i = 0; i < 8; ++i)
        for (int j = i + 1; j < 8; ++j)
            edges.emplace_back(i, j);
    const auto r = embedder.embed(8, edges);
    EXPECT_FALSE(r.success);
    EXPECT_GE(r.seconds, 0.0);
}

} // namespace
} // namespace hyqsat::embed
