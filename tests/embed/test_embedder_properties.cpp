/**
 * @file
 * Parameterized property sweep for the §IV-B embedder: for every
 * grid shape and queue size in the sweep, the embedded prefix must
 * produce a valid minor embedding (disjoint connected chains
 * covering every problem edge), monotone hardware usage, and an
 * encoding whose clause count equals the reported prefix.
 */

#include <gtest/gtest.h>

#include "embed/hyqsat_embedder.h"
#include "tests/sat/helpers.h"

namespace hyqsat::embed {
namespace {

struct SweepParam
{
    int rows;
    int cols;
    int shore;
    int num_vars;
    int num_clauses;
    std::uint64_t seed;
};

std::string
paramName(const ::testing::TestParamInfo<SweepParam> &info)
{
    const auto &p = info.param;
    return "g" + std::to_string(p.rows) + "x" +
           std::to_string(p.cols) + "s" + std::to_string(p.shore) +
           "_v" + std::to_string(p.num_vars) + "_c" +
           std::to_string(p.num_clauses) + "_r" +
           std::to_string(p.seed);
}

class EmbedderSweep : public ::testing::TestWithParam<SweepParam>
{
  protected:
    QueueEmbedResult
    run()
    {
        const auto &p = GetParam();
        graph_ = std::make_unique<chimera::ChimeraGraph>(
            p.rows, p.cols, p.shore);
        Rng rng(p.seed);
        const auto cnf = sat::testing::randomCnf(
            p.num_vars, p.num_clauses, 3, rng);
        const std::vector<sat::LitVec> queue(cnf.clauses().begin(),
                                             cnf.clauses().end());
        HyQsatEmbedder embedder(*graph_);
        return embedder.embedQueue(queue);
    }

    std::unique_ptr<chimera::ChimeraGraph> graph_;
};

TEST_P(EmbedderSweep, PrefixEmbeddingIsValid)
{
    const auto r = run();
    ASSERT_GT(r.embedded_clauses, 0);
    std::string why;
    EXPECT_TRUE(r.embedding.isValid(*graph_, r.problem.edges(), &why))
        << why;
}

TEST_P(EmbedderSweep, EncodingMatchesPrefix)
{
    const auto r = run();
    EXPECT_EQ(static_cast<int>(r.problem.clauses.size()),
              r.embedded_clauses);
    EXPECT_EQ(r.embedding.numNodes(), r.problem.numNodes());
}

TEST_P(EmbedderSweep, ChainsFitTheChip)
{
    const auto r = run();
    EXPECT_LE(r.embedding.totalQubits(), graph_->numQubits());
    // A chain is one vertical span (<= rows qubits) plus one
    // horizontal segment (<= cols qubits) per owned connection
    // requirement; 'shore' bounds the requirement rows per line.
    EXPECT_LE(r.embedding.maxChainLength(),
              graph_->rows() + graph_->shore() * graph_->cols());
}

TEST_P(EmbedderSweep, DeterministicAcrossRuns)
{
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a.embedded_clauses, b.embedded_clauses);
    for (int n = 0; n < a.embedding.numNodes(); ++n)
        EXPECT_EQ(a.embedding.chain(n), b.embedding.chain(n));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EmbedderSweep,
    ::testing::Values(
        SweepParam{2, 2, 2, 6, 12, 1},
        SweepParam{4, 4, 4, 20, 60, 2},
        SweepParam{8, 8, 4, 40, 120, 3},
        SweepParam{16, 16, 4, 64, 250, 4},
        SweepParam{16, 16, 4, 150, 645, 5},
        SweepParam{8, 16, 4, 50, 200, 6},  // non-square
        SweepParam{16, 8, 4, 50, 200, 7},  // transposed
        SweepParam{12, 12, 2, 30, 100, 8}, // narrow shore
        SweepParam{6, 6, 6, 30, 100, 9},   // wide shore
        SweepParam{24, 24, 4, 150, 645, 10},
        SweepParam{32, 32, 4, 250, 1065, 11}),
    paramName);

} // namespace
} // namespace hyqsat::embed
