#include <gtest/gtest.h>

#include "embed/hyqsat_embedder.h"
#include "tests/sat/helpers.h"

namespace hyqsat::embed {
namespace {

using chimera::ChimeraGraph;
using sat::LitVec;
using sat::mkLit;

TEST(HyQsatEmbedder, SingleClauseEmbedsAndValidates)
{
    const ChimeraGraph g(4, 4, 4);
    HyQsatEmbedder embedder(g);
    const std::vector<LitVec> queue{{mkLit(0), mkLit(1), mkLit(2)}};
    const auto r = embedder.embedQueue(queue);
    EXPECT_TRUE(r.all_embedded);
    EXPECT_EQ(r.embedded_clauses, 1);
    ASSERT_EQ(r.problem.numNodes(), 4);
    std::string why;
    EXPECT_TRUE(r.embedding.isValid(g, r.problem.edges(), &why)) << why;
}

TEST(HyQsatEmbedder, TwoLiteralClause)
{
    const ChimeraGraph g(2, 2, 4);
    HyQsatEmbedder embedder(g);
    const std::vector<LitVec> queue{{mkLit(0), mkLit(1, true)}};
    const auto r = embedder.embedQueue(queue);
    EXPECT_TRUE(r.all_embedded);
    std::string why;
    EXPECT_TRUE(r.embedding.isValid(g, r.problem.edges(), &why)) << why;
}

TEST(HyQsatEmbedder, UnitClauseUsesOneChain)
{
    const ChimeraGraph g(2, 2, 4);
    HyQsatEmbedder embedder(g);
    const std::vector<LitVec> queue{{mkLit(5)}};
    const auto r = embedder.embedQueue(queue);
    EXPECT_TRUE(r.all_embedded);
    EXPECT_EQ(r.problem.numNodes(), 1);
    EXPECT_TRUE(r.embedding.isValid(g, r.problem.edges()));
}

TEST(HyQsatEmbedder, TautologyConsumesNoHardware)
{
    const ChimeraGraph g(2, 2, 4);
    HyQsatEmbedder embedder(g);
    const std::vector<LitVec> tautologies(
        50, LitVec{mkLit(0), mkLit(0, true), mkLit(1)});
    const auto r = embedder.embedQueue(tautologies);
    EXPECT_TRUE(r.all_embedded);
    EXPECT_EQ(r.embedded_clauses, 50);
    EXPECT_EQ(r.problem.numNodes(), 0);
}

TEST(HyQsatEmbedder, SharedVariableClausesValidate)
{
    const ChimeraGraph g(4, 4, 4);
    HyQsatEmbedder embedder(g);
    // The paper's Fig. 6 queue shape: clauses chained on x0.
    const std::vector<LitVec> queue{
        {mkLit(0), mkLit(1), mkLit(2)},
        {mkLit(0), mkLit(4, true), mkLit(6)},
        {mkLit(0, true), mkLit(5, true)},
    };
    const auto r = embedder.embedQueue(queue);
    EXPECT_TRUE(r.all_embedded);
    std::string why;
    EXPECT_TRUE(r.embedding.isValid(g, r.problem.edges(), &why)) << why;
}

TEST(HyQsatEmbedder, PrefixSemanticsOnOverflow)
{
    // A tiny chip cannot host many distinct variables; the embedder
    // must embed a strict prefix and stay valid.
    const ChimeraGraph g(2, 2, 2); // 4 vertical lines only
    HyQsatEmbedder embedder(g);
    std::vector<LitVec> queue;
    for (int i = 0; i < 10; ++i)
        queue.push_back(
            {mkLit(3 * i), mkLit(3 * i + 1), mkLit(3 * i + 2)});
    const auto r = embedder.embedQueue(queue);
    EXPECT_FALSE(r.all_embedded);
    EXPECT_LT(r.embedded_clauses, 10);
    EXPECT_GE(r.embedded_clauses, 1);
    std::string why;
    EXPECT_TRUE(r.embedding.isValid(g, r.problem.edges(), &why)) << why;
}

TEST(HyQsatEmbedder, LargerChipEmbedsMoreClauses)
{
    Rng rng(7);
    const auto queue_cnf = sat::testing::randomCnf(60, 120, 3, rng);
    const std::vector<LitVec> queue(queue_cnf.clauses().begin(),
                                    queue_cnf.clauses().end());

    const ChimeraGraph small(4, 4, 4);
    const ChimeraGraph large(16, 16, 4);
    const auto rs = HyQsatEmbedder(small).embedQueue(queue);
    const auto rl = HyQsatEmbedder(large).embedQueue(queue);
    EXPECT_GE(rl.embedded_clauses, rs.embedded_clauses);
    EXPECT_GT(rl.embedded_clauses, 0);
    std::string why;
    EXPECT_TRUE(rl.embedding.isValid(large, rl.problem.edges(), &why))
        << why;
    EXPECT_TRUE(rs.embedding.isValid(small, rs.problem.edges(), &why))
        << why;
}

TEST(HyQsatEmbedder, RandomQueuesAlwaysValidOn2000q)
{
    const auto g = ChimeraGraph::dwave2000q();
    Rng rng(21);
    for (int round = 0; round < 5; ++round) {
        const auto cnf =
            sat::testing::randomCnf(50 + 10 * round, 200, 3, rng);
        const std::vector<LitVec> queue(cnf.clauses().begin(),
                                        cnf.clauses().end());
        HyQsatEmbedder embedder(g);
        const auto r = embedder.embedQueue(queue);
        EXPECT_GT(r.embedded_clauses, 0);
        std::string why;
        ASSERT_TRUE(r.embedding.isValid(g, r.problem.edges(), &why))
            << "round " << round << ": " << why;
    }
}

TEST(HyQsatEmbedder, EmbeddingIsFast)
{
    const auto g = ChimeraGraph::dwave2000q();
    Rng rng(23);
    const auto cnf = sat::testing::randomCnf(64, 250, 3, rng);
    const std::vector<LitVec> queue(cnf.clauses().begin(),
                                    cnf.clauses().end());
    HyQsatEmbedder embedder(g);
    const auto r = embedder.embedQueue(queue);
    // The paper reports ~15.7us; allow generous slack for CI noise
    // but stay orders of magnitude under Minorminer's seconds.
    EXPECT_LT(r.seconds, 0.05);
}

TEST(HyQsatEmbedder, ReuseSegmentsImprovesOrMatchesCapacity)
{
    const ChimeraGraph g(8, 8, 4);
    Rng rng(29);
    const auto cnf = sat::testing::randomCnf(40, 150, 3, rng);
    const std::vector<LitVec> queue(cnf.clauses().begin(),
                                    cnf.clauses().end());

    HyQsatEmbedderOptions with;
    with.reuse_segments = true;
    HyQsatEmbedderOptions without;
    without.reuse_segments = false;
    const auto r_with = HyQsatEmbedder(g, with).embedQueue(queue);
    const auto r_without = HyQsatEmbedder(g, without).embedQueue(queue);
    EXPECT_GE(r_with.embedded_clauses, r_without.embedded_clauses);
    std::string why;
    EXPECT_TRUE(
        r_without.embedding.isValid(g, r_without.problem.edges(), &why))
        << why;
}

TEST(HyQsatEmbedder, AuxChainsLiveOnHorizontalLines)
{
    const ChimeraGraph g(4, 4, 4);
    HyQsatEmbedder embedder(g);
    const std::vector<LitVec> queue{{mkLit(0), mkLit(1), mkLit(2)}};
    const auto r = embedder.embedQueue(queue);
    const int aux = r.problem.clause_aux[0];
    ASSERT_GE(aux, 0);
    for (int q : r.embedding.chain(aux)) {
        EXPECT_EQ(g.coord(q).shore, chimera::Shore::Horizontal);
    }
}

namespace {

/** Short-clause queue over few variables: heavy segment churn, the
 * regime where the odd-coupler partner-line path fires. */
std::vector<LitVec>
congestedQueue(std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<LitVec> queue;
    const int vars = 4 + static_cast<int>(rng.next() % 6);
    const int n = 10 + static_cast<int>(rng.next() % 30);
    for (int i = 0; i < n; ++i) {
        const int k = 2 + static_cast<int>(rng.next() % 2);
        LitVec c;
        for (int j = 0; j < k; ++j)
            c.push_back(mkLit(static_cast<int>(rng.next() % vars),
                              rng.next() & 1));
        queue.push_back(c);
    }
    return queue;
}

} // namespace

TEST(HyQsatEmbedder, OddCouplersNeverWorseOnPegasus)
{
    // A/B over congested queues on odd-coupler fabrics: with the
    // partner-line path enabled the embedding must stay valid, embed
    // at least as many clauses, and never lengthen the longest
    // chain. Seed 2202 is a known firing instance (kept first so the
    // path is exercised, not just vacuously equal).
    HyQsatEmbedderOptions on;
    on.odd_couplers = true;
    HyQsatEmbedderOptions off;
    off.odd_couplers = false;
    int fired = 0;
    for (const std::uint64_t seed :
         {2202ull, 138ull, 2306ull, 2167ull, 7ull, 77ull, 777ull}) {
        const auto queue = congestedQueue(seed);
        for (const ChimeraGraph &g :
             {ChimeraGraph::pegasus(3, 3, 2),
              ChimeraGraph::pegasus(4, 4, 2),
              ChimeraGraph::pegasus(6, 6, 4),
              ChimeraGraph::zephyr(4, 4, 2)}) {
            const auto r_on = HyQsatEmbedder(g, on).embedQueue(queue);
            const auto r_off = HyQsatEmbedder(g, off).embedQueue(queue);
            std::string why;
            ASSERT_TRUE(
                r_on.embedding.isValid(g, r_on.problem.edges(), &why))
                << g.name() << " seed " << seed << ": " << why;
            EXPECT_GE(r_on.embedded_clauses, r_off.embedded_clauses)
                << g.name() << " seed " << seed;
            EXPECT_LE(r_on.embedding.maxChainLength(),
                      r_off.embedding.maxChainLength())
                << g.name() << " seed " << seed;
            if (r_on.embedding.chains() != r_off.embedding.chains())
                ++fired;
        }
    }
    EXPECT_GT(fired, 0)
        << "the odd-coupler path never fired; the A/B is vacuous";
}

TEST(HyQsatEmbedder, OddCouplerPathShortensKnownCongestedChains)
{
    // The frozen win instance: extension blocked on the owner's own
    // line, partner line free in the same cell row — the odd coupler
    // splices the segment in without a new crossing row, shortening
    // the longest chain.
    const auto queue = congestedQueue(2202);
    HyQsatEmbedderOptions on;
    on.odd_couplers = true;
    HyQsatEmbedderOptions off;
    off.odd_couplers = false;
    const ChimeraGraph g = ChimeraGraph::pegasus(3, 3, 2);
    const auto r_on = HyQsatEmbedder(g, on).embedQueue(queue);
    const auto r_off = HyQsatEmbedder(g, off).embedQueue(queue);
    EXPECT_EQ(r_on.embedded_clauses, r_off.embedded_clauses);
    EXPECT_LT(r_on.embedding.maxChainLength(),
              r_off.embedding.maxChainLength());
    EXPECT_LT(r_on.embedding.totalQubits(),
              r_off.embedding.totalQubits());
}

TEST(HyQsatEmbedder, OddCouplerOptionInertOnChimera)
{
    // Chimera has no odd couplers: the option must be a bit-identical
    // no-op there.
    HyQsatEmbedderOptions on;
    on.odd_couplers = true;
    HyQsatEmbedderOptions off;
    off.odd_couplers = false;
    for (const std::uint64_t seed : {2202ull, 138ull, 9ull}) {
        const auto queue = congestedQueue(seed);
        const ChimeraGraph g(3, 3, 2);
        const auto r_on = HyQsatEmbedder(g, on).embedQueue(queue);
        const auto r_off = HyQsatEmbedder(g, off).embedQueue(queue);
        EXPECT_EQ(r_on.embedded_clauses, r_off.embedded_clauses);
        EXPECT_EQ(r_on.embedding.chains(), r_off.embedding.chains())
            << "seed " << seed;
    }
}

TEST(HyQsatEmbedder, RepeatedIdenticalClausesReuseCouplings)
{
    const ChimeraGraph g(4, 4, 4);
    HyQsatEmbedder embedder(g);
    const std::vector<LitVec> queue{
        {mkLit(0), mkLit(1), mkLit(2)},
        {mkLit(0), mkLit(1), mkLit(2)},
        {mkLit(0), mkLit(1), mkLit(2)},
    };
    const auto r = embedder.embedQueue(queue);
    EXPECT_TRUE(r.all_embedded);
    std::string why;
    EXPECT_TRUE(r.embedding.isValid(g, r.problem.edges(), &why)) << why;
}

} // namespace
} // namespace hyqsat::embed
