#include <gtest/gtest.h>

#include "embed/hyqsat_embedder.h"
#include "tests/sat/helpers.h"

namespace hyqsat::embed {
namespace {

using chimera::ChimeraGraph;
using sat::LitVec;
using sat::mkLit;

TEST(HyQsatEmbedder, SingleClauseEmbedsAndValidates)
{
    const ChimeraGraph g(4, 4, 4);
    HyQsatEmbedder embedder(g);
    const std::vector<LitVec> queue{{mkLit(0), mkLit(1), mkLit(2)}};
    const auto r = embedder.embedQueue(queue);
    EXPECT_TRUE(r.all_embedded);
    EXPECT_EQ(r.embedded_clauses, 1);
    ASSERT_EQ(r.problem.numNodes(), 4);
    std::string why;
    EXPECT_TRUE(r.embedding.isValid(g, r.problem.edges(), &why)) << why;
}

TEST(HyQsatEmbedder, TwoLiteralClause)
{
    const ChimeraGraph g(2, 2, 4);
    HyQsatEmbedder embedder(g);
    const std::vector<LitVec> queue{{mkLit(0), mkLit(1, true)}};
    const auto r = embedder.embedQueue(queue);
    EXPECT_TRUE(r.all_embedded);
    std::string why;
    EXPECT_TRUE(r.embedding.isValid(g, r.problem.edges(), &why)) << why;
}

TEST(HyQsatEmbedder, UnitClauseUsesOneChain)
{
    const ChimeraGraph g(2, 2, 4);
    HyQsatEmbedder embedder(g);
    const std::vector<LitVec> queue{{mkLit(5)}};
    const auto r = embedder.embedQueue(queue);
    EXPECT_TRUE(r.all_embedded);
    EXPECT_EQ(r.problem.numNodes(), 1);
    EXPECT_TRUE(r.embedding.isValid(g, r.problem.edges()));
}

TEST(HyQsatEmbedder, TautologyConsumesNoHardware)
{
    const ChimeraGraph g(2, 2, 4);
    HyQsatEmbedder embedder(g);
    const std::vector<LitVec> tautologies(
        50, LitVec{mkLit(0), mkLit(0, true), mkLit(1)});
    const auto r = embedder.embedQueue(tautologies);
    EXPECT_TRUE(r.all_embedded);
    EXPECT_EQ(r.embedded_clauses, 50);
    EXPECT_EQ(r.problem.numNodes(), 0);
}

TEST(HyQsatEmbedder, SharedVariableClausesValidate)
{
    const ChimeraGraph g(4, 4, 4);
    HyQsatEmbedder embedder(g);
    // The paper's Fig. 6 queue shape: clauses chained on x0.
    const std::vector<LitVec> queue{
        {mkLit(0), mkLit(1), mkLit(2)},
        {mkLit(0), mkLit(4, true), mkLit(6)},
        {mkLit(0, true), mkLit(5, true)},
    };
    const auto r = embedder.embedQueue(queue);
    EXPECT_TRUE(r.all_embedded);
    std::string why;
    EXPECT_TRUE(r.embedding.isValid(g, r.problem.edges(), &why)) << why;
}

TEST(HyQsatEmbedder, PrefixSemanticsOnOverflow)
{
    // A tiny chip cannot host many distinct variables; the embedder
    // must embed a strict prefix and stay valid.
    const ChimeraGraph g(2, 2, 2); // 4 vertical lines only
    HyQsatEmbedder embedder(g);
    std::vector<LitVec> queue;
    for (int i = 0; i < 10; ++i)
        queue.push_back(
            {mkLit(3 * i), mkLit(3 * i + 1), mkLit(3 * i + 2)});
    const auto r = embedder.embedQueue(queue);
    EXPECT_FALSE(r.all_embedded);
    EXPECT_LT(r.embedded_clauses, 10);
    EXPECT_GE(r.embedded_clauses, 1);
    std::string why;
    EXPECT_TRUE(r.embedding.isValid(g, r.problem.edges(), &why)) << why;
}

TEST(HyQsatEmbedder, LargerChipEmbedsMoreClauses)
{
    Rng rng(7);
    const auto queue_cnf = sat::testing::randomCnf(60, 120, 3, rng);
    const std::vector<LitVec> queue(queue_cnf.clauses().begin(),
                                    queue_cnf.clauses().end());

    const ChimeraGraph small(4, 4, 4);
    const ChimeraGraph large(16, 16, 4);
    const auto rs = HyQsatEmbedder(small).embedQueue(queue);
    const auto rl = HyQsatEmbedder(large).embedQueue(queue);
    EXPECT_GE(rl.embedded_clauses, rs.embedded_clauses);
    EXPECT_GT(rl.embedded_clauses, 0);
    std::string why;
    EXPECT_TRUE(rl.embedding.isValid(large, rl.problem.edges(), &why))
        << why;
    EXPECT_TRUE(rs.embedding.isValid(small, rs.problem.edges(), &why))
        << why;
}

TEST(HyQsatEmbedder, RandomQueuesAlwaysValidOn2000q)
{
    const auto g = ChimeraGraph::dwave2000q();
    Rng rng(21);
    for (int round = 0; round < 5; ++round) {
        const auto cnf =
            sat::testing::randomCnf(50 + 10 * round, 200, 3, rng);
        const std::vector<LitVec> queue(cnf.clauses().begin(),
                                        cnf.clauses().end());
        HyQsatEmbedder embedder(g);
        const auto r = embedder.embedQueue(queue);
        EXPECT_GT(r.embedded_clauses, 0);
        std::string why;
        ASSERT_TRUE(r.embedding.isValid(g, r.problem.edges(), &why))
            << "round " << round << ": " << why;
    }
}

TEST(HyQsatEmbedder, EmbeddingIsFast)
{
    const auto g = ChimeraGraph::dwave2000q();
    Rng rng(23);
    const auto cnf = sat::testing::randomCnf(64, 250, 3, rng);
    const std::vector<LitVec> queue(cnf.clauses().begin(),
                                    cnf.clauses().end());
    HyQsatEmbedder embedder(g);
    const auto r = embedder.embedQueue(queue);
    // The paper reports ~15.7us; allow generous slack for CI noise
    // but stay orders of magnitude under Minorminer's seconds.
    EXPECT_LT(r.seconds, 0.05);
}

TEST(HyQsatEmbedder, ReuseSegmentsImprovesOrMatchesCapacity)
{
    const ChimeraGraph g(8, 8, 4);
    Rng rng(29);
    const auto cnf = sat::testing::randomCnf(40, 150, 3, rng);
    const std::vector<LitVec> queue(cnf.clauses().begin(),
                                    cnf.clauses().end());

    HyQsatEmbedderOptions with;
    with.reuse_segments = true;
    HyQsatEmbedderOptions without;
    without.reuse_segments = false;
    const auto r_with = HyQsatEmbedder(g, with).embedQueue(queue);
    const auto r_without = HyQsatEmbedder(g, without).embedQueue(queue);
    EXPECT_GE(r_with.embedded_clauses, r_without.embedded_clauses);
    std::string why;
    EXPECT_TRUE(
        r_without.embedding.isValid(g, r_without.problem.edges(), &why))
        << why;
}

TEST(HyQsatEmbedder, AuxChainsLiveOnHorizontalLines)
{
    const ChimeraGraph g(4, 4, 4);
    HyQsatEmbedder embedder(g);
    const std::vector<LitVec> queue{{mkLit(0), mkLit(1), mkLit(2)}};
    const auto r = embedder.embedQueue(queue);
    const int aux = r.problem.clause_aux[0];
    ASSERT_GE(aux, 0);
    for (int q : r.embedding.chain(aux)) {
        EXPECT_EQ(g.coord(q).shore, chimera::Shore::Horizontal);
    }
}

TEST(HyQsatEmbedder, RepeatedIdenticalClausesReuseCouplings)
{
    const ChimeraGraph g(4, 4, 4);
    HyQsatEmbedder embedder(g);
    const std::vector<LitVec> queue{
        {mkLit(0), mkLit(1), mkLit(2)},
        {mkLit(0), mkLit(1), mkLit(2)},
        {mkLit(0), mkLit(1), mkLit(2)},
    };
    const auto r = embedder.embedQueue(queue);
    EXPECT_TRUE(r.all_embedded);
    std::string why;
    EXPECT_TRUE(r.embedding.isValid(g, r.problem.edges(), &why)) << why;
}

} // namespace
} // namespace hyqsat::embed
