#include <gtest/gtest.h>

#include "embed/minorminer.h"
#include "qubo/encoder.h"
#include "tests/sat/helpers.h"

namespace hyqsat::embed {
namespace {

using chimera::ChimeraGraph;
using sat::mkLit;

TEST(Minorminer, EmbedsATriangle)
{
    const ChimeraGraph g(2, 2, 4);
    MinorminerEmbedder embedder(g);
    const auto r = embedder.embed(3, {{0, 1}, {1, 2}, {0, 2}});
    ASSERT_TRUE(r.success);
    std::string why;
    EXPECT_TRUE(
        r.embedding.isValid(g, {{0, 1}, {1, 2}, {0, 2}}, &why))
        << why;
}

TEST(Minorminer, EmbedsK5WithChains)
{
    // K5 is not a subgraph of Chimera: chains are mandatory.
    const ChimeraGraph g(3, 3, 4);
    MinorminerEmbedder embedder(g);
    std::vector<std::pair<int, int>> edges;
    for (int i = 0; i < 5; ++i)
        for (int j = i + 1; j < 5; ++j)
            edges.emplace_back(i, j);
    const auto r = embedder.embed(5, edges);
    ASSERT_TRUE(r.success);
    std::string why;
    EXPECT_TRUE(r.embedding.isValid(g, edges, &why)) << why;
    EXPECT_GT(r.embedding.maxChainLength(), 1);
}

TEST(Minorminer, FailsWhenProblemTooLarge)
{
    // 40-node complete graph cannot fit a single Chimera cell pair.
    const ChimeraGraph g(1, 1, 4);
    MinorminerOptions opts;
    opts.max_passes = 4;
    MinorminerEmbedder embedder(g, opts);
    std::vector<std::pair<int, int>> edges;
    for (int i = 0; i < 40; ++i)
        for (int j = i + 1; j < 40; ++j)
            edges.emplace_back(i, j);
    const auto r = embedder.embed(40, edges);
    EXPECT_FALSE(r.success);
}

TEST(Minorminer, EmbedsEncodedThreeSatProblems)
{
    const ChimeraGraph g(8, 8, 4);
    Rng rng(11);
    for (int round = 0; round < 3; ++round) {
        const auto cnf = sat::testing::randomCnf(12, 20, 3, rng);
        const auto ep = qubo::encodeClauses(cnf.clauses());
        MinorminerOptions opts;
        opts.seed = 100 + round;
        MinorminerEmbedder embedder(g, opts);
        const auto r = embedder.embed(ep.numNodes(), ep.edges());
        ASSERT_TRUE(r.success) << "round " << round;
        std::string why;
        EXPECT_TRUE(r.embedding.isValid(g, ep.edges(), &why)) << why;
    }
}

TEST(Minorminer, IsolatedNodesGetChains)
{
    const ChimeraGraph g(2, 2, 4);
    MinorminerEmbedder embedder(g);
    const auto r = embedder.embed(4, {});
    ASSERT_TRUE(r.success);
    for (int n = 0; n < 4; ++n)
        EXPECT_FALSE(r.embedding.chain(n).empty());
    EXPECT_TRUE(r.embedding.isValid(g, {}));
}

TEST(Minorminer, DeterministicPerSeed)
{
    const ChimeraGraph g(4, 4, 4);
    const std::vector<std::pair<int, int>> edges{
        {0, 1}, {1, 2}, {2, 3}, {3, 0}};
    MinorminerOptions opts;
    opts.seed = 77;
    const auto a = MinorminerEmbedder(g, opts).embed(4, edges);
    const auto b = MinorminerEmbedder(g, opts).embed(4, edges);
    ASSERT_EQ(a.success, b.success);
    ASSERT_TRUE(a.success);
    for (int n = 0; n < 4; ++n)
        EXPECT_EQ(a.embedding.chain(n), b.embedding.chain(n));
}

TEST(Minorminer, SlowerThanHyQsatScheme)
{
    // Not a strict timing assertion (CI noise), just sanity: the
    // iterative scheme takes measurable time on a real problem.
    const auto g = ChimeraGraph::dwave2000q();
    Rng rng(13);
    const auto cnf = sat::testing::randomCnf(30, 60, 3, rng);
    const auto ep = qubo::encodeClauses(cnf.clauses());
    MinorminerEmbedder embedder(g);
    const auto r = embedder.embed(ep.numNodes(), ep.edges());
    EXPECT_TRUE(r.success);
    EXPECT_GT(r.seconds, 0.0);
}

} // namespace
} // namespace hyqsat::embed
