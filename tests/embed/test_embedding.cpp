#include <gtest/gtest.h>

#include "chimera/chimera.h"
#include "embed/embedding.h"

namespace hyqsat::embed {
namespace {

using chimera::ChimeraGraph;
using chimera::Shore;

TEST(Embedding, EmptyChainInvalid)
{
    const ChimeraGraph g(2, 2, 4);
    Embedding e(1);
    std::string why;
    EXPECT_FALSE(e.isValid(g, {}, &why));
    EXPECT_NE(why.find("empty"), std::string::npos);
}

TEST(Embedding, SingleQubitChainsValid)
{
    const ChimeraGraph g(2, 2, 4);
    Embedding e(2);
    e.chain(0).push_back(0);
    e.chain(1).push_back(1);
    EXPECT_TRUE(e.isValid(g, {}));
}

TEST(Embedding, OverlappingChainsInvalid)
{
    const ChimeraGraph g(2, 2, 4);
    Embedding e(2);
    e.chain(0).push_back(3);
    e.chain(1).push_back(3);
    std::string why;
    EXPECT_FALSE(e.isValid(g, {}, &why));
    EXPECT_NE(why.find("shared"), std::string::npos);
}

TEST(Embedding, DisconnectedChainInvalid)
{
    const ChimeraGraph g(2, 2, 4);
    Embedding e(1);
    // Two vertical qubits in the same cell are not coupled.
    e.chain(0).push_back(g.qubitId(0, 0, Shore::Vertical, 0));
    e.chain(0).push_back(g.qubitId(0, 0, Shore::Vertical, 1));
    std::string why;
    EXPECT_FALSE(e.isValid(g, {}, &why));
    EXPECT_NE(why.find("disconnected"), std::string::npos);
}

TEST(Embedding, ConnectedTwoQubitChainValid)
{
    const ChimeraGraph g(2, 2, 4);
    Embedding e(1);
    e.chain(0).push_back(g.qubitId(0, 0, Shore::Vertical, 0));
    e.chain(0).push_back(g.qubitId(0, 0, Shore::Horizontal, 0));
    EXPECT_TRUE(e.isValid(g, {}));
}

TEST(Embedding, MissingEdgeCouplerInvalid)
{
    const ChimeraGraph g(2, 2, 4);
    Embedding e(2);
    // Two vertical qubits in different cells of different columns:
    // no coupler.
    e.chain(0).push_back(g.qubitId(0, 0, Shore::Vertical, 0));
    e.chain(1).push_back(g.qubitId(1, 1, Shore::Vertical, 0));
    std::string why;
    EXPECT_FALSE(e.isValid(g, {{0, 1}}, &why));
    EXPECT_NE(why.find("no coupler"), std::string::npos);
}

TEST(Embedding, EdgeCouplerFoundAcrossChains)
{
    const ChimeraGraph g(2, 2, 4);
    Embedding e(2);
    const int vq = g.qubitId(0, 0, Shore::Vertical, 0);
    const int hq = g.qubitId(0, 0, Shore::Horizontal, 2);
    e.chain(0).push_back(vq);
    e.chain(1).push_back(hq);
    EXPECT_TRUE(e.isValid(g, {{0, 1}}));
    const auto coupler = e.findCoupler(g, 0, 1);
    ASSERT_TRUE(coupler.has_value());
    EXPECT_EQ(coupler->first, vq);
    EXPECT_EQ(coupler->second, hq);
}

TEST(Embedding, QubitOutOfRangeInvalid)
{
    const ChimeraGraph g(2, 2, 4);
    Embedding e(1);
    e.chain(0).push_back(g.numQubits());
    EXPECT_FALSE(e.isValid(g, {}));
}

TEST(Embedding, ChainStats)
{
    Embedding e(3);
    e.chain(0) = {0};
    e.chain(1) = {1, 2};
    e.chain(2) = {3, 4, 5};
    EXPECT_EQ(e.totalQubits(), 6);
    EXPECT_DOUBLE_EQ(e.averageChainLength(), 2.0);
    EXPECT_EQ(e.maxChainLength(), 3);
}

TEST(Embedding, AddChainGrows)
{
    Embedding e;
    EXPECT_EQ(e.addChain(), 0);
    EXPECT_EQ(e.addChain(), 1);
    EXPECT_EQ(e.numNodes(), 2);
}

} // namespace
} // namespace hyqsat::embed
