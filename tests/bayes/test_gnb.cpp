#include <gtest/gtest.h>

#include "bayes/gnb.h"
#include "util/rng.h"

namespace hyqsat::bayes {
namespace {

TEST(GaussianNaiveBayes, UnfittedByDefault)
{
    GaussianNaiveBayes gnb;
    EXPECT_FALSE(gnb.fitted());
}

TEST(GaussianNaiveBayes, FitsMeansAndVariances)
{
    GaussianNaiveBayes gnb;
    gnb.fit({{1.0}, {3.0}, {10.0}, {14.0}}, {0, 0, 1, 1}, 2);
    EXPECT_TRUE(gnb.fitted());
    EXPECT_DOUBLE_EQ(gnb.mean(0, 0), 2.0);
    EXPECT_DOUBLE_EQ(gnb.mean(1, 0), 12.0);
    EXPECT_DOUBLE_EQ(gnb.variance(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(gnb.variance(1, 0), 4.0);
    EXPECT_DOUBLE_EQ(gnb.prior(0), 0.5);
}

TEST(GaussianNaiveBayes, SeparatedClassesClassifyPerfectly)
{
    Rng rng(1);
    std::vector<std::vector<double>> x;
    std::vector<int> y;
    for (int i = 0; i < 200; ++i) {
        x.push_back({rng.gaussian(0.0, 1.0)});
        y.push_back(0);
        x.push_back({rng.gaussian(20.0, 1.0)});
        y.push_back(1);
    }
    GaussianNaiveBayes gnb;
    gnb.fit(x, y, 2);
    EXPECT_EQ(gnb.predict({-0.5}), 0);
    EXPECT_EQ(gnb.predict({19.5}), 1);
    EXPECT_GT(gnb.accuracy(x, y), 0.99);
}

TEST(GaussianNaiveBayes, PosteriorsSumToOne)
{
    GaussianNaiveBayes gnb;
    gnb.fit({{0.0}, {1.0}, {5.0}, {6.0}}, {0, 0, 1, 1}, 2);
    for (double e : {-1.0, 0.5, 3.0, 5.5, 10.0}) {
        const auto post = gnb.posterior({e});
        EXPECT_NEAR(post[0] + post[1], 1.0, 1e-9);
        EXPECT_GE(post[0], 0.0);
        EXPECT_GE(post[1], 0.0);
    }
}

TEST(GaussianNaiveBayes, PosteriorMonotoneBetweenClassMeans)
{
    GaussianNaiveBayes gnb;
    Rng rng(2);
    std::vector<std::vector<double>> x;
    std::vector<int> y;
    for (int i = 0; i < 500; ++i) {
        x.push_back({rng.gaussian(2.0, 1.5)});
        y.push_back(1);
        x.push_back({rng.gaussian(9.0, 2.0)});
        y.push_back(0);
    }
    gnb.fit(x, y, 2);
    double last = 1.0;
    for (double e = 2.0; e <= 9.0; e += 0.5) {
        const double p = gnb.posterior({e})[1];
        EXPECT_LE(p, last + 1e-9);
        last = p;
    }
}

TEST(GaussianNaiveBayes, MultiFeatureIndependenceAssumption)
{
    // Classes differ only in the second feature.
    GaussianNaiveBayes gnb;
    gnb.fit({{1.0, 0.0}, {1.1, 0.2}, {0.9, 10.0}, {1.0, 9.8}},
            {0, 0, 1, 1}, 2);
    EXPECT_EQ(gnb.predict({1.0, 0.1}), 0);
    EXPECT_EQ(gnb.predict({1.0, 9.9}), 1);
}

TEST(GaussianNaiveBayes, ImbalancedPriorsRespected)
{
    Rng rng(3);
    std::vector<std::vector<double>> x;
    std::vector<int> y;
    for (int i = 0; i < 90; ++i) {
        x.push_back({rng.gaussian(0.0, 2.0)});
        y.push_back(0);
    }
    for (int i = 0; i < 10; ++i) {
        x.push_back({rng.gaussian(1.0, 2.0)});
        y.push_back(1);
    }
    GaussianNaiveBayes gnb;
    gnb.fit(x, y, 2);
    EXPECT_DOUBLE_EQ(gnb.prior(0), 0.9);
    // Overlapping classes: the prior should dominate at the midpoint.
    EXPECT_EQ(gnb.predict({0.5}), 0);
}

TEST(GaussianNaiveBayes, DegenerateConstantFeatureSurvives)
{
    GaussianNaiveBayes gnb;
    gnb.fit({{5.0}, {5.0}, {7.0}, {7.0}}, {0, 0, 1, 1}, 2);
    EXPECT_EQ(gnb.predict({5.0}), 0);
    EXPECT_EQ(gnb.predict({7.0}), 1);
}

TEST(GaussianNaiveBayes, EmptyClassGetsZeroPosterior)
{
    GaussianNaiveBayes gnb;
    gnb.fit({{1.0}, {2.0}}, {0, 0}, 2); // class 1 never seen
    const auto post = gnb.posterior({1.5});
    EXPECT_DOUBLE_EQ(post[1], 0.0);
    EXPECT_NEAR(post[0], 1.0, 1e-12);
}

} // namespace
} // namespace hyqsat::bayes
