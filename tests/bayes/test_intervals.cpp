#include <gtest/gtest.h>

#include "bayes/intervals.h"
#include "util/rng.h"

namespace hyqsat::bayes {
namespace {

TEST(EnergyClassifier, PaperDefaultCutPoints)
{
    EnergyClassifier c;
    EXPECT_DOUBLE_EQ(c.nearSatCut(), 4.5);
    EXPECT_DOUBLE_EQ(c.nearUnsatCut(), 8.0);
}

TEST(EnergyClassifier, PaperIntervalsClassify)
{
    // §V-A: [0,0], (0,4.5], (4.5,8], (8,inf).
    EnergyClassifier c;
    EXPECT_EQ(c.classify(0.0), SatisfactionClass::Satisfiable);
    EXPECT_EQ(c.classify(0.1), SatisfactionClass::NearSatisfiable);
    EXPECT_EQ(c.classify(4.5), SatisfactionClass::NearSatisfiable);
    EXPECT_EQ(c.classify(4.6), SatisfactionClass::Uncertain);
    EXPECT_EQ(c.classify(8.0), SatisfactionClass::Uncertain);
    EXPECT_EQ(c.classify(8.1), SatisfactionClass::NearUnsatisfiable);
    EXPECT_EQ(c.classify(100.0),
              SatisfactionClass::NearUnsatisfiable);
}

TEST(EnergyClassifier, ExplicitCutPointsRespected)
{
    EnergyClassifier c(2.0, 5.0);
    EXPECT_EQ(c.classify(1.5), SatisfactionClass::NearSatisfiable);
    EXPECT_EQ(c.classify(3.0), SatisfactionClass::Uncertain);
    EXPECT_EQ(c.classify(6.0), SatisfactionClass::NearUnsatisfiable);
}

TEST(EnergyClassifier, FitSeparatedDistributions)
{
    Rng rng(1);
    std::vector<double> energies;
    std::vector<bool> sat;
    for (int i = 0; i < 500; ++i) {
        energies.push_back(std::max(0.0, rng.gaussian(1.0, 1.0)));
        sat.push_back(true);
        energies.push_back(rng.gaussian(12.0, 2.0));
        sat.push_back(false);
    }
    EnergyClassifier c;
    c.fit(energies, sat, 0.9);
    // Cuts land between the class means, in order.
    EXPECT_GT(c.nearSatCut(), 0.0);
    EXPECT_LT(c.nearSatCut(), c.nearUnsatCut());
    EXPECT_LT(c.nearUnsatCut(), 12.0);
    // Low energies classify satisfiable-ish, high unsatisfiable-ish.
    EXPECT_EQ(c.classify(0.5), SatisfactionClass::NearSatisfiable);
    EXPECT_EQ(c.classify(14.0),
              SatisfactionClass::NearUnsatisfiable);
}

TEST(EnergyClassifier, PosteriorMatchesConfidenceAtCut)
{
    Rng rng(2);
    std::vector<double> energies;
    std::vector<bool> sat;
    for (int i = 0; i < 2000; ++i) {
        energies.push_back(std::fabs(rng.gaussian(2.0, 1.5)));
        sat.push_back(true);
        energies.push_back(std::fabs(rng.gaussian(10.0, 2.5)));
        sat.push_back(false);
    }
    EnergyClassifier c;
    c.fit(energies, sat, 0.9);
    EXPECT_NEAR(c.posteriorSatisfiable(c.nearSatCut()), 0.9, 0.05);
    EXPECT_NEAR(c.posteriorSatisfiable(c.nearUnsatCut()), 0.1, 0.05);
}

TEST(EnergyClassifier, UncertainFractionShrinksWithSeparation)
{
    Rng rng(3);
    auto fraction_for = [&](double unsat_mean) {
        std::vector<double> energies;
        std::vector<bool> sat;
        for (int i = 0; i < 1000; ++i) {
            energies.push_back(std::fabs(rng.gaussian(1.5, 1.0)));
            sat.push_back(true);
            energies.push_back(
                std::fabs(rng.gaussian(unsat_mean, 2.0)));
            sat.push_back(false);
        }
        EnergyClassifier c;
        c.fit(energies, sat, 0.9);
        return c.uncertainFraction(20.0);
    };
    // Pulling the unsatisfiable band away shrinks the uncertain
    // interval - the Fig. 15b effect.
    EXPECT_LT(fraction_for(14.0), fraction_for(6.0));
}

TEST(EnergyClassifier, ClassNamesAreStable)
{
    EXPECT_STREQ(
        satisfactionClassName(SatisfactionClass::Satisfiable),
        "satisfiable");
    EXPECT_STREQ(
        satisfactionClassName(SatisfactionClass::NearUnsatisfiable),
        "near-unsatisfiable");
}

TEST(EnergyClassifier, ZeroEnergyAlwaysSatisfiableClass)
{
    EnergyClassifier c(0.1, 0.2);
    EXPECT_EQ(c.classify(0.0), SatisfactionClass::Satisfiable);
    EXPECT_EQ(c.classify(-1e-9), SatisfactionClass::Satisfiable);
}

} // namespace
} // namespace hyqsat::bayes
