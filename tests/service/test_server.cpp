/**
 * @file
 * Socket front door end-to-end: a raw line-protocol client (no
 * shared code with the server beyond protocol.h) drives a real
 * daemon stack — Server + JobScheduler — over a unix-domain socket
 * and over loopback TCP with an ephemeral port. Covers SUBMIT/WAIT
 * round trips, STATUS, METRICS snapshots, PING, error replies for
 * bad verbs, and the SHUTDOWN callback hand-off.
 */

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "service/protocol.h"
#include "service/scheduler.h"
#include "service/server.h"
#include "util/metrics.h"

namespace hyqsat::service {
namespace {

namespace fs = std::filesystem;

const char *kSatCnf = "c tiny satisfiable\n"
                      "p cnf 3 2\n"
                      "1 2 3 0\n"
                      "-1 2 0\n";

std::string
unsatCnf()
{
    std::string s = "p cnf 3 8\n";
    for (int mask = 0; mask < 8; ++mask) {
        for (int v = 0; v < 3; ++v)
            s += std::to_string((mask >> v) & 1 ? -(v + 1) : v + 1) +
                 " ";
        s += "0\n";
    }
    return s;
}

SchedulerOptions
smallOptions()
{
    SchedulerOptions opts;
    opts.portfolio.base.annealer.noise =
        anneal::NoiseModel::noiseFree();
    opts.portfolio.base.annealer.greedy_finish = true;
    opts.portfolio.num_workers = 2;
    opts.workers = 2;
    return opts;
}

/** Minimal blocking line client for the tests. */
class TestClient
{
  public:
    ~TestClient()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    bool
    connectUnix(const std::string &path)
    {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof(addr.sun_path) - 1);
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        return fd_ >= 0 &&
               ::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                         sizeof(addr)) == 0;
    }

    bool
    connectTcp(int port)
    {
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(static_cast<uint16_t>(port));
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        return fd_ >= 0 &&
               ::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                         sizeof(addr)) == 0;
    }

    bool
    send(const std::string &data)
    {
        std::size_t off = 0;
        while (off < data.size()) {
            const ssize_t n = ::send(fd_, data.data() + off,
                                     data.size() - off, MSG_NOSIGNAL);
            if (n <= 0)
                return false;
            off += static_cast<std::size_t>(n);
        }
        return true;
    }

    bool
    readLine(std::string &line)
    {
        for (;;) {
            const auto nl = buf_.find('\n');
            if (nl != std::string::npos) {
                line.assign(buf_, 0, nl);
                if (!line.empty() && line.back() == '\r')
                    line.pop_back();
                buf_.erase(0, nl + 1);
                return true;
            }
            char tmp[4096];
            const ssize_t n = ::recv(fd_, tmp, sizeof(tmp), 0);
            if (n <= 0)
                return false;
            buf_.append(tmp, static_cast<std::size_t>(n));
        }
    }

    /** SUBMIT + body + END; returns the accepted id (0 = rejected). */
    JobId
    submit(const std::string &tenant, int priority,
           const std::string &name, const std::string &dimacs)
    {
        std::string req = "SUBMIT " + tenant + " " +
                          std::to_string(priority) + " " + name + "\n";
        req += dimacs;
        if (req.back() != '\n')
            req += '\n';
        req += std::string(kEndMarker) + "\n";
        std::string line;
        if (!send(req) || !readLine(line) || line.rfind("OK ", 0) != 0)
            return 0;
        return std::strtoull(line.c_str() + 3, nullptr, 10);
    }

  private:
    int fd_ = -1;
    std::string buf_;
};

std::string
tempSocketPath()
{
    static std::atomic<int> counter{0};
    return (fs::temp_directory_path() /
            ("hyqsat_srv_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter.fetch_add(1)) + ".sock"))
        .string();
}

TEST(ServiceServer, UnixSocketEndToEnd)
{
    MetricsRegistry metrics;
    SchedulerOptions sopts = smallOptions();
    sopts.metrics = &metrics;
    JobScheduler scheduler(sopts);

    ServerOptions opts;
    opts.unix_path = tempSocketPath();
    Server server(opts, scheduler, &metrics);
    ASSERT_TRUE(server.start());
    EXPECT_EQ(server.port(), 0);

    TestClient client;
    ASSERT_TRUE(client.connectUnix(opts.unix_path));

    std::string line;
    ASSERT_TRUE(client.send("PING\n"));
    ASSERT_TRUE(client.readLine(line));
    EXPECT_EQ(line, "PONG");

    const JobId sat_id = client.submit("acme", 0, "easy", kSatCnf);
    const JobId unsat_id = client.submit("acme", 0, "hard", unsatCnf());
    ASSERT_NE(sat_id, 0u);
    ASSERT_NE(unsat_id, 0u);

    ASSERT_TRUE(
        client.send("WAIT " + std::to_string(sat_id) + "\n"));
    ASSERT_TRUE(client.readLine(line));
    auto result = parseResult(line);
    ASSERT_TRUE(result.has_value()) << line;
    EXPECT_EQ(result->first, sat_id);
    EXPECT_EQ(result->second.status, "SAT");
    EXPECT_EQ(result->second.vars, 3);

    ASSERT_TRUE(
        client.send("WAIT " + std::to_string(unsat_id) + "\n"));
    ASSERT_TRUE(client.readLine(line));
    result = parseResult(line);
    ASSERT_TRUE(result.has_value()) << line;
    EXPECT_EQ(result->second.status, "UNSAT");

    // Finished jobs answer STATUS with DONE plus the verdict.
    ASSERT_TRUE(
        client.send("STATUS " + std::to_string(sat_id) + "\n"));
    ASSERT_TRUE(client.readLine(line));
    EXPECT_EQ(line,
              "STATE " + std::to_string(sat_id) + " DONE SAT");

    // The metrics snapshot carries the service accounting.
    ASSERT_TRUE(client.send("METRICS\n"));
    ASSERT_TRUE(client.readLine(line));
    EXPECT_EQ(line, "METRICS");
    bool saw_completed = false;
    while (client.readLine(line) && line != kEndMarker) {
        if (line == "hyqsat_service_completed 2")
            saw_completed = true;
    }
    EXPECT_TRUE(saw_completed);

    ASSERT_TRUE(client.send("QUIT\n"));
    ASSERT_TRUE(client.readLine(line));
    EXPECT_EQ(line, "BYE");

    scheduler.shutdown(DrainPolicy::FinishQueued);
    server.stop();
    EXPECT_FALSE(fs::exists(opts.unix_path));
}

TEST(ServiceServer, TcpEphemeralPortEndToEnd)
{
    JobScheduler scheduler(smallOptions());
    ServerOptions opts;
    opts.tcp_port = 0; // ephemeral; the kernel picks
    Server server(opts, scheduler, nullptr);
    ASSERT_TRUE(server.start());
    ASSERT_GT(server.port(), 0);

    TestClient client;
    ASSERT_TRUE(client.connectTcp(server.port()));

    const JobId id = client.submit("tcp", 0, "easy", kSatCnf);
    ASSERT_NE(id, 0u);
    std::string line;
    ASSERT_TRUE(client.send("WAIT " + std::to_string(id) + "\n"));
    ASSERT_TRUE(client.readLine(line));
    const auto result = parseResult(line);
    ASSERT_TRUE(result.has_value()) << line;
    EXPECT_EQ(result->second.status, "SAT");

    // A metrics-less server still answers METRICS (empty snapshot).
    ASSERT_TRUE(client.send("METRICS\n"));
    ASSERT_TRUE(client.readLine(line));
    EXPECT_EQ(line, "METRICS");
    ASSERT_TRUE(client.readLine(line));
    EXPECT_EQ(line, kEndMarker);

    scheduler.shutdown(DrainPolicy::FinishQueued);
    server.stop();
}

TEST(ServiceServer, MalformedRequestsAnswerErr)
{
    JobScheduler scheduler(smallOptions());
    ServerOptions opts;
    opts.unix_path = tempSocketPath();
    Server server(opts, scheduler, nullptr);
    ASSERT_TRUE(server.start());

    TestClient client;
    ASSERT_TRUE(client.connectUnix(opts.unix_path));
    std::string line;
    ASSERT_TRUE(client.send("FROBNICATE\n"));
    ASSERT_TRUE(client.readLine(line));
    EXPECT_EQ(line.rfind("ERR ", 0), 0u) << line;
    ASSERT_TRUE(client.send("WAIT nope\n"));
    ASSERT_TRUE(client.readLine(line));
    EXPECT_EQ(line.rfind("ERR ", 0), 0u) << line;
    // The connection survives bad requests.
    ASSERT_TRUE(client.send("PING\n"));
    ASSERT_TRUE(client.readLine(line));
    EXPECT_EQ(line, "PONG");

    scheduler.shutdown(DrainPolicy::FinishQueued);
    server.stop();
}

TEST(ServiceServer, ParseErrorTravelsBackToClient)
{
    JobScheduler scheduler(smallOptions());
    ServerOptions opts;
    opts.unix_path = tempSocketPath();
    Server server(opts, scheduler, nullptr);
    ASSERT_TRUE(server.start());

    TestClient client;
    ASSERT_TRUE(client.connectUnix(opts.unix_path));
    const JobId id =
        client.submit("acme", 0, "broken", "p cnf oops\n1 2 0\n");
    ASSERT_NE(id, 0u); // admission accepts; the parse fails later
    std::string line;
    ASSERT_TRUE(client.send("WAIT " + std::to_string(id) + "\n"));
    ASSERT_TRUE(client.readLine(line));
    const auto result = parseResult(line);
    ASSERT_TRUE(result.has_value()) << line;
    EXPECT_EQ(result->second.status, "PARSE_ERROR");

    scheduler.shutdown(DrainPolicy::FinishQueued);
    server.stop();
}

TEST(ServiceServer, ShutdownVerbInvokesCallback)
{
    JobScheduler scheduler(smallOptions());
    ServerOptions opts;
    opts.unix_path = tempSocketPath();
    Server server(opts, scheduler, nullptr);
    std::atomic<bool> asked{false};
    std::atomic<int> policy{-1};
    server.onShutdown([&](DrainPolicy p) {
        policy.store(static_cast<int>(p));
        asked.store(true);
    });
    ASSERT_TRUE(server.start());

    TestClient client;
    ASSERT_TRUE(client.connectUnix(opts.unix_path));
    std::string line;
    ASSERT_TRUE(client.send("SHUTDOWN cancel\n"));
    ASSERT_TRUE(client.readLine(line));
    EXPECT_EQ(line, "OK shutdown");
    // The reply races only the callback flag, not the teardown: the
    // daemon's main loop owns the actual drain.
    for (int i = 0; i < 500 && !asked.load(); ++i)
        ::usleep(1000);
    EXPECT_TRUE(asked.load());
    EXPECT_EQ(policy.load(),
              static_cast<int>(DrainPolicy::CancelPending));

    scheduler.shutdown(DrainPolicy::CancelPending);
    server.stop();
}

} // namespace
} // namespace hyqsat::service
