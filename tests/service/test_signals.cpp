/**
 * @file
 * Signal -> StopToken bridge: SIGINT/SIGTERM request a graceful
 * drain through the installed token, reinstall rebinds to a new
 * token, and uninstall restores the default dispositions. raise()
 * delivers synchronously on this thread, so no sleeps are needed.
 */

#include <gtest/gtest.h>

#include <csignal>

#include "service/signals.h"

namespace hyqsat::service {
namespace {

TEST(ServiceSignals, SigtermTripsToken)
{
    StopToken token;
    installStopSignalHandlers(token);
    EXPECT_FALSE(token.stopRequested());
    ASSERT_EQ(std::raise(SIGTERM), 0);
    EXPECT_TRUE(token.stopRequested());
    uninstallStopSignalHandlers();
}

TEST(ServiceSignals, SigintTripsToken)
{
    StopToken token;
    installStopSignalHandlers(token);
    ASSERT_EQ(std::raise(SIGINT), 0);
    EXPECT_TRUE(token.stopRequested());
    uninstallStopSignalHandlers();
}

TEST(ServiceSignals, ReinstallRebindsToNewToken)
{
    StopToken first, second;
    installStopSignalHandlers(first);
    installStopSignalHandlers(second); // latest install wins
    ASSERT_EQ(std::raise(SIGTERM), 0);
    EXPECT_FALSE(first.stopRequested());
    EXPECT_TRUE(second.stopRequested());
    uninstallStopSignalHandlers();
}

TEST(ServiceSignals, UninstallRestoresDefaults)
{
    StopToken token;
    installStopSignalHandlers(token);
    uninstallStopSignalHandlers();
    // With the bridge gone the token must stay untouched; raising
    // here would kill the test process (default disposition), so
    // just assert the token state.
    EXPECT_FALSE(token.stopRequested());
}

} // namespace
} // namespace hyqsat::service
