/**
 * @file
 * JobScheduler semantics: admission control (global and per-tenant
 * backpressure, reject-while-draining), priority ordering and
 * round-robin fairness across tenants, timeout cancellation latency,
 * graceful drain (both policies) leaving no orphans, record
 * retention, and the 100-job multi-tenant soak with the accounting
 * invariant submitted == completed + rejected + cancelled.
 *
 * Tests that need a deterministic queue state use start_paused: the
 * workers park until resume()/drain(), so submissions can't race the
 * pool.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "gen/random_sat.h"
#include "sat/dimacs.h"
#include "service/scheduler.h"
#include "util/metrics.h"
#include "util/rng.h"

namespace hyqsat::service {
namespace {

const char *kSatCnf = "c tiny satisfiable\n"
                      "p cnf 3 2\n"
                      "1 2 3 0\n"
                      "-1 2 0\n";

/** All 8 sign patterns over 3 variables: unsatisfiable. */
std::string
unsatCnf()
{
    std::string s = "p cnf 3 8\n";
    for (int mask = 0; mask < 8; ++mask) {
        for (int v = 0; v < 3; ++v)
            s += std::to_string((mask >> v) & 1 ? -(v + 1) : v + 1) +
                 " ";
        s += "0\n";
    }
    return s;
}

SchedulerOptions
smallOptions()
{
    SchedulerOptions opts;
    opts.portfolio.base.annealer.noise =
        anneal::NoiseModel::noiseFree();
    opts.portfolio.base.annealer.greedy_finish = true;
    opts.portfolio.num_workers = 2;
    opts.workers = 2;
    return opts;
}

JobSpec
inlineJob(const std::string &tenant, int priority,
          const std::string &name, std::string dimacs)
{
    JobSpec spec;
    spec.tenant = tenant;
    spec.priority = priority;
    spec.name = name;
    spec.dimacs = std::move(dimacs);
    return spec;
}

TEST(JobScheduler, SolvesInlineDimacsJobs)
{
    JobScheduler scheduler(smallOptions());
    const Submission sat =
        scheduler.submit(inlineJob("default", 0, "easy", kSatCnf));
    const Submission unsat =
        scheduler.submit(inlineJob("default", 0, "hard", unsatCnf()));
    ASSERT_TRUE(sat.accepted);
    ASSERT_TRUE(unsat.accepted);

    const InstanceRecord sat_rec = scheduler.wait(sat.id);
    EXPECT_EQ(sat_rec.status, "SAT");
    EXPECT_EQ(sat_rec.name, "easy");
    EXPECT_EQ(sat_rec.vars, 3);
    EXPECT_EQ(sat_rec.clauses, 2);
    EXPECT_FALSE(sat_rec.winner.empty());

    const InstanceRecord unsat_rec = scheduler.wait(unsat.id);
    EXPECT_EQ(unsat_rec.status, "UNSAT");
    scheduler.shutdown(DrainPolicy::FinishQueued);
    EXPECT_EQ(scheduler.queueDepth(), 0u);
}

TEST(JobScheduler, SimplifyOverrideEchoedInRecord)
{
    JobScheduler scheduler(smallOptions());
    JobSpec spec = inlineJob("default", 0, "easy", kSatCnf);
    spec.simplify = "full";
    const Submission sub = scheduler.submit(std::move(spec));
    ASSERT_TRUE(sub.accepted);
    const InstanceRecord rec = scheduler.wait(sub.id);
    EXPECT_EQ(rec.status, "SAT");
    EXPECT_EQ(rec.simplify, "full");
    // Without an override the record echoes the configured default.
    const Submission plain =
        scheduler.submit(inlineJob("default", 0, "easy2", kSatCnf));
    ASSERT_TRUE(plain.accepted);
    EXPECT_EQ(scheduler.wait(plain.id).simplify, "off");
}

TEST(JobScheduler, MalformedDimacsReportsParseError)
{
    JobScheduler scheduler(smallOptions());
    const Submission sub = scheduler.submit(
        inlineJob("default", 0, "broken", "p cnf oops\n1 2 0\n"));
    ASSERT_TRUE(sub.accepted);
    EXPECT_EQ(scheduler.wait(sub.id).status, "PARSE_ERROR");
}

TEST(JobScheduler, WaitOnUnknownIdReturnsUnknown)
{
    JobScheduler scheduler(smallOptions());
    EXPECT_EQ(scheduler.wait(999).status, "UNKNOWN");
    EXPECT_EQ(scheduler.state(999), JobState::Done);
}

TEST(JobScheduler, AdmissionRejectsWhenQueueFull)
{
    MetricsRegistry metrics;
    SchedulerOptions opts = smallOptions();
    opts.workers = 1;
    opts.max_queue_depth = 2;
    opts.start_paused = true; // nothing dequeues: depth is exact
    opts.metrics = &metrics;
    JobScheduler scheduler(opts);

    const Submission a =
        scheduler.submit(inlineJob("t", 0, "a", kSatCnf));
    const Submission b =
        scheduler.submit(inlineJob("t", 0, "b", kSatCnf));
    const Submission c =
        scheduler.submit(inlineJob("t", 0, "c", kSatCnf));
    EXPECT_TRUE(a.accepted);
    EXPECT_TRUE(b.accepted);
    EXPECT_FALSE(c.accepted);
    EXPECT_EQ(c.reject_reason, "queue_full");
    EXPECT_EQ(c.id, 0u);
    EXPECT_EQ(scheduler.queueDepth(), 2u);

    scheduler.resume();
    scheduler.shutdown(DrainPolicy::FinishQueued);
    EXPECT_EQ(metrics.counter("service.submitted")->value(), 3u);
    EXPECT_EQ(metrics.counter("service.accepted")->value(), 2u);
    EXPECT_EQ(metrics.counter("service.rejected")->value(), 1u);
    EXPECT_EQ(metrics.counter("service.completed")->value(), 2u);
}

TEST(JobScheduler, AdmissionRejectsPerTenantDepth)
{
    SchedulerOptions opts = smallOptions();
    opts.workers = 1;
    opts.max_tenant_depth = 1;
    opts.start_paused = true;
    JobScheduler scheduler(opts);

    EXPECT_TRUE(
        scheduler.submit(inlineJob("a", 0, "a1", kSatCnf)).accepted);
    const Submission a2 =
        scheduler.submit(inlineJob("a", 0, "a2", kSatCnf));
    EXPECT_FALSE(a2.accepted);
    EXPECT_EQ(a2.reject_reason, "tenant_queue_full");
    // The bound is per tenant: another tenant still gets in.
    EXPECT_TRUE(
        scheduler.submit(inlineJob("b", 0, "b1", kSatCnf)).accepted);

    scheduler.resume();
    scheduler.shutdown(DrainPolicy::FinishQueued);
}

TEST(JobScheduler, SubmitsRejectedWhileDraining)
{
    JobScheduler scheduler(smallOptions());
    scheduler.drain(DrainPolicy::FinishQueued);
    EXPECT_TRUE(scheduler.draining());
    const Submission sub =
        scheduler.submit(inlineJob("t", 0, "late", kSatCnf));
    EXPECT_FALSE(sub.accepted);
    EXPECT_EQ(sub.reject_reason, "draining");
}

TEST(JobScheduler, PriorityOrderingAcrossTenants)
{
    SchedulerOptions opts = smallOptions();
    opts.workers = 1; // serial: completion order == service order
    opts.start_paused = true;
    JobScheduler scheduler(opts);

    const Submission low1 =
        scheduler.submit(inlineJob("batch", 0, "low1", kSatCnf));
    const Submission low2 =
        scheduler.submit(inlineJob("batch", 0, "low2", kSatCnf));
    const Submission high =
        scheduler.submit(inlineJob("urgent", 5, "high", kSatCnf));
    ASSERT_TRUE(low1.accepted);
    ASSERT_TRUE(low2.accepted);
    ASSERT_TRUE(high.accepted);

    scheduler.resume();
    scheduler.waitIdle();
    const std::vector<JobId> order = scheduler.completionOrder();
    ASSERT_EQ(order.size(), 3u);
    // The priority-5 tenant is served before the priority-0 backlog
    // even though it submitted last.
    EXPECT_EQ(order[0], high.id);
    EXPECT_EQ(order[1], low1.id);
    EXPECT_EQ(order[2], low2.id);
    scheduler.shutdown(DrainPolicy::FinishQueued);
}

TEST(JobScheduler, RoundRobinAmongEqualPriorities)
{
    SchedulerOptions opts = smallOptions();
    opts.workers = 1;
    opts.start_paused = true;
    JobScheduler scheduler(opts);

    const Submission a1 =
        scheduler.submit(inlineJob("a", 0, "a1", kSatCnf));
    const Submission a2 =
        scheduler.submit(inlineJob("a", 0, "a2", kSatCnf));
    const Submission b1 =
        scheduler.submit(inlineJob("b", 0, "b1", kSatCnf));
    const Submission b2 =
        scheduler.submit(inlineJob("b", 0, "b2", kSatCnf));

    scheduler.resume();
    scheduler.waitIdle();
    const std::vector<JobId> order = scheduler.completionOrder();
    ASSERT_EQ(order.size(), 4u);
    // Equal priorities alternate (least recently served first)
    // instead of starving one tenant behind the other's backlog.
    EXPECT_EQ(order[0], a1.id);
    EXPECT_EQ(order[1], b1.id);
    EXPECT_EQ(order[2], a2.id);
    EXPECT_EQ(order[3], b2.id);
    scheduler.shutdown(DrainPolicy::FinishQueued);
}

TEST(JobScheduler, TimeoutCancellationLatencyBounded)
{
    // Near-threshold instance large enough that deciding it inside
    // the budget is very unlikely; if a worker still manages to, the
    // answer just has to be sound (same contract as the portfolio's
    // own timeout test).
    Rng gen(27);
    const std::string hard =
        sat::toDimacsString(gen::uniformRandom3Sat(450, 1917, gen));

    SchedulerOptions opts = smallOptions();
    opts.portfolio.base.warmup_override = 4;
    opts.workers = 1;
    JobScheduler scheduler(opts);

    JobSpec spec = inlineJob("t", 0, "hard", hard);
    spec.timeout_s = 0.05;
    const Submission sub = scheduler.submit(std::move(spec));
    ASSERT_TRUE(sub.accepted);
    const InstanceRecord rec = scheduler.wait(sub.id);
    EXPECT_TRUE(rec.status == "TIMEOUT" || rec.status == "SAT" ||
                rec.status == "UNSAT")
        << rec.status;
    // Cooperative cancellation keeps the overrun bounded even on
    // slow sanitizer builds.
    EXPECT_LT(rec.wall_s, 30.0);
    scheduler.shutdown(DrainPolicy::FinishQueued);
}

TEST(JobScheduler, DrainCancelLeavesNoOrphans)
{
    MetricsRegistry metrics;
    SchedulerOptions opts = smallOptions();
    opts.workers = 1;
    opts.start_paused = true; // every job still queued at drain time
    opts.metrics = &metrics;
    JobScheduler scheduler(opts);

    std::vector<Submission> subs;
    for (int i = 0; i < 6; ++i)
        subs.push_back(scheduler.submit(
            inlineJob(i % 2 ? "a" : "b", 0,
                      "job" + std::to_string(i), kSatCnf)));

    scheduler.drain(DrainPolicy::CancelPending);
    scheduler.waitIdle(); // must return: no orphaned queue entries
    EXPECT_EQ(scheduler.queueDepth(), 0u);
    for (const Submission &sub : subs) {
        ASSERT_TRUE(sub.accepted);
        EXPECT_EQ(scheduler.state(sub.id), JobState::Done);
        const InstanceRecord rec = scheduler.wait(sub.id);
        EXPECT_EQ(rec.status, "CANCELLED");
    }
    scheduler.shutdown(DrainPolicy::CancelPending);

    EXPECT_EQ(metrics.counter("service.submitted")->value(), 6u);
    EXPECT_EQ(metrics.counter("service.cancelled")->value(), 6u);
    EXPECT_EQ(metrics.counter("service.completed")->value(), 0u);
    EXPECT_EQ(metrics.gauge("service.queue_depth")->value(), 0.0);
}

TEST(JobScheduler, DrainFinishCompletesQueuedWork)
{
    SchedulerOptions opts = smallOptions();
    opts.start_paused = true;
    JobScheduler scheduler(opts);

    std::vector<Submission> subs;
    for (int i = 0; i < 4; ++i)
        subs.push_back(scheduler.submit(
            inlineJob("t", 0, "job" + std::to_string(i),
                      i % 2 ? unsatCnf() : kSatCnf)));

    // FinishQueued implies resume(): the parked backlog still runs.
    scheduler.drain(DrainPolicy::FinishQueued);
    scheduler.waitIdle();
    for (int i = 0; i < 4; ++i) {
        const InstanceRecord rec = scheduler.wait(subs[i].id);
        EXPECT_EQ(rec.status, i % 2 ? "UNSAT" : "SAT") << i;
    }
    scheduler.shutdown(DrainPolicy::FinishQueued);
}

TEST(JobScheduler, ExternalStopTokenTriggersDrain)
{
    StopToken stop;
    SchedulerOptions opts = smallOptions();
    opts.workers = 1;
    opts.start_paused = true;
    opts.external_stop = &stop;
    opts.external_stop_policy = DrainPolicy::CancelPending;
    JobScheduler scheduler(opts);

    std::vector<Submission> subs;
    for (int i = 0; i < 4; ++i)
        subs.push_back(scheduler.submit(
            inlineJob("t", 0, "job" + std::to_string(i), kSatCnf)));

    stop.requestStop();
    scheduler.waitIdle(); // the watcher drains; nothing ever ran
    EXPECT_TRUE(scheduler.draining());
    for (const Submission &sub : subs)
        EXPECT_EQ(scheduler.wait(sub.id).status, "CANCELLED");
    scheduler.shutdown(DrainPolicy::CancelPending);
}

TEST(JobScheduler, RetentionEvictsOldestRecords)
{
    SchedulerOptions opts = smallOptions();
    opts.workers = 1;
    opts.max_retained_records = 2;
    JobScheduler scheduler(opts);

    std::vector<Submission> subs;
    for (int i = 0; i < 5; ++i)
        subs.push_back(scheduler.submit(
            inlineJob("t", 0, "job" + std::to_string(i), kSatCnf)));
    scheduler.waitIdle();

    // Only the newest two finished jobs survive; evicted ids answer
    // UNKNOWN instead of growing the map forever.
    EXPECT_EQ(scheduler.completionOrder().size(), 2u);
    EXPECT_EQ(scheduler.wait(subs[0].id).status, "UNKNOWN");
    scheduler.shutdown(DrainPolicy::FinishQueued);
}

TEST(JobScheduler, SoakHundredJobsMultiTenantAccounting)
{
    MetricsRegistry metrics;
    SchedulerOptions opts = smallOptions();
    opts.portfolio.num_workers = 1;
    opts.workers = 4;
    opts.max_queue_depth = 16; // real backpressure under the burst
    opts.metrics = &metrics;
    JobScheduler scheduler(opts);

    // Three tenants hammer the scheduler concurrently; rejected
    // submits are fine (that's the backpressure contract), they just
    // have to be accounted for.
    constexpr int kPerTenant = 34;
    std::atomic<int> accepted{0}, rejected{0};
    std::vector<std::thread> tenants;
    for (int t = 0; t < 3; ++t) {
        tenants.emplace_back([&, t] {
            const std::string tenant = "tenant" + std::to_string(t);
            for (int i = 0; i < kPerTenant; ++i) {
                const Submission sub = scheduler.submit(inlineJob(
                    tenant, t, "job" + std::to_string(i),
                    i % 2 ? unsatCnf() : kSatCnf));
                if (sub.accepted) {
                    accepted.fetch_add(1);
                } else {
                    EXPECT_EQ(sub.reject_reason, "queue_full");
                    rejected.fetch_add(1);
                }
            }
        });
    }
    for (std::thread &t : tenants)
        t.join();
    EXPECT_EQ(accepted.load() + rejected.load(), 3 * kPerTenant);

    scheduler.shutdown(DrainPolicy::FinishQueued);

    // The service-level books balance exactly once idle.
    const auto submitted =
        metrics.counter("service.submitted")->value();
    const auto completed =
        metrics.counter("service.completed")->value();
    const auto rejected_ctr =
        metrics.counter("service.rejected")->value();
    const auto cancelled =
        metrics.counter("service.cancelled")->value();
    EXPECT_EQ(submitted, 3u * kPerTenant);
    EXPECT_EQ(submitted, completed + rejected_ctr + cancelled);
    EXPECT_EQ(completed, static_cast<std::uint64_t>(accepted.load()));
    EXPECT_EQ(metrics.gauge("service.queue_depth")->value(), 0.0);
    // Per-tenant books balance too.
    for (int t = 0; t < 3; ++t) {
        const std::string base =
            "service.tenant.tenant" + std::to_string(t) + ".";
        EXPECT_EQ(metrics.counter(base + "submitted")->value(),
                  static_cast<std::uint64_t>(kPerTenant))
            << base;
    }
    EXPECT_EQ(scheduler.completionOrder().size(),
              static_cast<std::size_t>(accepted.load()));
}

} // namespace
} // namespace hyqsat::service
