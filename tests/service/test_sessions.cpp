/**
 * @file
 * The service-side incremental sessions: protocol round trips for
 * the OPEN/ADD/ASSUME/SOLVE/CORE/CLOSE verbs, SessionManager
 * lifecycle + admission control + drain + the session.* metrics
 * invariant (opened == closed + active), a raw socket client driving
 * a session end-to-end through the Server, and concurrent tenants
 * solving in parallel (the TSan target).
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "service/protocol.h"
#include "service/scheduler.h"
#include "service/server.h"
#include "service/session_manager.h"
#include "util/metrics.h"

namespace hyqsat::service {
namespace {

namespace fs = std::filesystem;

/** Tiny topology, no embedding — the fast session config. */
SessionManagerOptions
smallSessionOptions()
{
    SessionManagerOptions opts;
    opts.hybrid.chimera_rows = 2;
    opts.hybrid.chimera_cols = 2;
    opts.hybrid.use_embedding = false;
    opts.hybrid.sampler = "sa";
    opts.hybrid.warmup_override = 4;
    return opts;
}

// ---------------------------------------------------------------
// Protocol round trips
// ---------------------------------------------------------------

TEST(SessionProtocol, OpenParsesTenantAndSimplify)
{
    Request req = parseRequest("OPEN acme");
    EXPECT_EQ(req.verb, Verb::Open);
    EXPECT_EQ(req.tenant, "acme");
    EXPECT_EQ(req.simplify, "");

    req = parseRequest("OPEN acme simplify=full");
    EXPECT_EQ(req.verb, Verb::Open);
    EXPECT_EQ(req.simplify, "full");

    EXPECT_EQ(parseRequest("OPEN acme simplify=bogus").verb,
              Verb::Invalid);
    EXPECT_EQ(parseRequest("OPEN").verb, Verb::Invalid);
}

TEST(SessionProtocol, IdVerbsParseTheirSid)
{
    const struct
    {
        const char *line;
        Verb verb;
    } cases[] = {
        {"ADD 7", Verb::Add},     {"SOLVE 7", Verb::Solve},
        {"CORE 7", Verb::Core},   {"CLOSE 7", Verb::Close},
    };
    for (const auto &c : cases) {
        const Request req = parseRequest(c.line);
        EXPECT_EQ(req.verb, c.verb) << c.line;
        EXPECT_EQ(req.id, 7u) << c.line;
    }
    EXPECT_EQ(parseRequest("ADD nope").verb, Verb::Invalid);
    EXPECT_EQ(parseRequest("SOLVE").verb, Verb::Invalid);
    EXPECT_EQ(parseRequest("CLOSE 1 2").verb, Verb::Invalid);
}

TEST(SessionProtocol, AssumeParsesDimacsLiterals)
{
    Request req = parseRequest("ASSUME 3 1 -2 5");
    EXPECT_EQ(req.verb, Verb::Assume);
    EXPECT_EQ(req.id, 3u);
    EXPECT_EQ(req.lits, (std::vector<int>{1, -2, 5}));

    // Empty set clears any staged assumptions — still valid.
    req = parseRequest("ASSUME 3");
    EXPECT_EQ(req.verb, Verb::Assume);
    EXPECT_TRUE(req.lits.empty());

    EXPECT_EQ(parseRequest("ASSUME 3 0").verb, Verb::Invalid);
    EXPECT_EQ(parseRequest("ASSUME 3 1 x").verb, Verb::Invalid);
}

TEST(SessionProtocol, CoreRoundTrips)
{
    const std::vector<int> lits{1, -3, 7};
    const std::string line = formatCore(9, lits);
    EXPECT_EQ(line, "CORE 9 1 -3 7");
    const auto parsed = parseCore(line);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->first, 9u);
    EXPECT_EQ(parsed->second, lits);

    // The empty core (formula UNSAT outright) round-trips too.
    const auto empty = parseCore(formatCore(4, {}));
    ASSERT_TRUE(empty.has_value());
    EXPECT_EQ(empty->first, 4u);
    EXPECT_TRUE(empty->second.empty());

    EXPECT_FALSE(parseCore("CORE").has_value());
    EXPECT_FALSE(parseCore("CORE 4 0").has_value());
    EXPECT_FALSE(parseCore("RESULT 4 1").has_value());
}

// ---------------------------------------------------------------
// SessionManager
// ---------------------------------------------------------------

TEST(SessionManager, OpenAddAssumeSolveCoreCloseLifecycle)
{
    SessionManager manager(smallSessionOptions());
    const OpenResult open = manager.open("acme", "");
    ASSERT_TRUE(open.accepted) << open.reject_reason;
    ASSERT_NE(open.id, 0u);

    // x1 -> x2 -> x3 as 3-SAT-friendly binary clauses.
    EXPECT_EQ(manager.add(open.id,
                          "c chain\n-1 2 0\n-2 3 0\n"),
              "");
    auto rec = manager.solve(open.id);
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->status, "SAT");
    EXPECT_EQ(rec->winner, "session");
    EXPECT_EQ(rec->name, "session-" + std::to_string(open.id));

    // Assume x1 and !x3: contradicts the chain.
    EXPECT_EQ(manager.assume(open.id, {1, -3}), "");
    rec = manager.solve(open.id);
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->status, "UNSAT");
    const auto core = manager.core(open.id);
    ASSERT_TRUE(core.has_value());
    ASSERT_FALSE(core->empty());
    for (const int lit : *core)
        EXPECT_TRUE(lit == 1 || lit == -3) << lit;

    // Assumptions were consumed: the next solve is free again.
    rec = manager.solve(open.id);
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->status, "SAT");

    EXPECT_TRUE(manager.close(open.id));
    EXPECT_FALSE(manager.close(open.id));
    EXPECT_FALSE(manager.solve(open.id).has_value());
    EXPECT_FALSE(manager.core(open.id).has_value());
    EXPECT_EQ(manager.add(open.id, "1 0\n"), "unknown session");
}

TEST(SessionManager, AddRejectsMalformedBodies)
{
    SessionManager manager(smallSessionOptions());
    const OpenResult open = manager.open("acme", "");
    ASSERT_TRUE(open.accepted);
    EXPECT_NE(manager.add(open.id, "1 two 0\n"), "");
    EXPECT_NE(manager.add(open.id, "1 2 3\n"), ""); // missing 0
    EXPECT_EQ(manager.add(open.id, "1 2 3 4 0\n"),
              "clause too long (3-SAT required)");
    // A rejected body leaves the session usable.
    EXPECT_EQ(manager.add(open.id, "p cnf 2 1\n1 2 0\n"), "");
    const auto rec = manager.solve(open.id);
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->status, "SAT");
}

TEST(SessionManager, AdmissionCapsRejectWithReasons)
{
    SessionManagerOptions opts = smallSessionOptions();
    opts.max_sessions = 3;
    opts.max_per_tenant = 2;
    SessionManager manager(opts);

    ASSERT_TRUE(manager.open("a", "").accepted);
    ASSERT_TRUE(manager.open("a", "").accepted);
    const OpenResult tenant_full = manager.open("a", "");
    EXPECT_FALSE(tenant_full.accepted);
    EXPECT_EQ(tenant_full.reject_reason, "tenant_sessions_full");

    ASSERT_TRUE(manager.open("b", "").accepted);
    const OpenResult global_full = manager.open("c", "");
    EXPECT_FALSE(global_full.accepted);
    EXPECT_EQ(global_full.reject_reason, "sessions_full");
    EXPECT_EQ(manager.active(), 3u);
}

TEST(SessionManager, DrainRejectsOpensButServesLiveSessions)
{
    SessionManager manager(smallSessionOptions());
    const OpenResult open = manager.open("acme", "");
    ASSERT_TRUE(open.accepted);
    EXPECT_EQ(manager.add(open.id, "1 2 0\n"), "");

    manager.drain();
    EXPECT_TRUE(manager.draining());
    const OpenResult rejected = manager.open("acme", "");
    EXPECT_FALSE(rejected.accepted);
    EXPECT_EQ(rejected.reject_reason, "draining");

    const auto rec = manager.solve(open.id);
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->status, "SAT");
    EXPECT_TRUE(manager.close(open.id));
}

TEST(SessionManager, MetricsInvariantOpenedEqualsClosedPlusActive)
{
    MetricsRegistry registry;
    SessionManagerOptions opts = smallSessionOptions();
    opts.metrics = &registry;
    {
        SessionManager manager(opts);
        const OpenResult a = manager.open("a", "");
        const OpenResult b = manager.open("b", "");
        ASSERT_TRUE(a.accepted);
        ASSERT_TRUE(b.accepted);
        manager.open("a", "simplify=bogus-is-kept-default");
        EXPECT_TRUE(manager.close(a.id));

        EXPECT_EQ(registry.counter("session.opened")->value(), 3u);
        EXPECT_EQ(registry.counter("session.closed")->value(), 1u);
        EXPECT_EQ(registry.gauge("session.active")->value(), 2.0);
        // The invariant CI asserts on the daemon's snapshot.
        EXPECT_EQ(registry.counter("session.opened")->value(),
                  registry.counter("session.closed")->value() +
                      static_cast<std::uint64_t>(
                          registry.gauge("session.active")->value()));
    }
    // The destructor force-closes stragglers: terminally closed ==
    // opened and nothing is active.
    EXPECT_EQ(registry.counter("session.closed")->value(), 3u);
    EXPECT_EQ(registry.gauge("session.active")->value(), 0.0);
}

TEST(SessionManager, SimplifyOverridePerSession)
{
    SessionManagerOptions opts = smallSessionOptions();
    opts.hybrid.simplify_strength = simplify::Strength::Off;
    SessionManager manager(opts);
    const OpenResult open = manager.open("acme", "full");
    ASSERT_TRUE(open.accepted);
    EXPECT_EQ(manager.add(open.id, "1 2 0\n-1 2 0\n"), "");
    const auto rec = manager.solve(open.id);
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->status, "SAT");
    EXPECT_EQ(rec->simplify, "full");
}

// ---------------------------------------------------------------
// Server end-to-end (named ServiceSessions: the TSan CI target)
// ---------------------------------------------------------------

/** Minimal blocking line client (mirrors test_server.cpp's). */
class SessionClient
{
  public:
    ~SessionClient()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    bool
    connectUnix(const std::string &path)
    {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof(addr.sun_path) - 1);
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        return fd_ >= 0 &&
               ::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                         sizeof(addr)) == 0;
    }

    bool
    send(const std::string &data)
    {
        std::size_t off = 0;
        while (off < data.size()) {
            const ssize_t n = ::send(fd_, data.data() + off,
                                     data.size() - off, MSG_NOSIGNAL);
            if (n <= 0)
                return false;
            off += static_cast<std::size_t>(n);
        }
        return true;
    }

    bool
    readLine(std::string &line)
    {
        for (;;) {
            const auto nl = buf_.find('\n');
            if (nl != std::string::npos) {
                line.assign(buf_, 0, nl);
                if (!line.empty() && line.back() == '\r')
                    line.pop_back();
                buf_.erase(0, nl + 1);
                return true;
            }
            char tmp[4096];
            const ssize_t n = ::recv(fd_, tmp, sizeof(tmp), 0);
            if (n <= 0)
                return false;
            buf_.append(tmp, static_cast<std::size_t>(n));
        }
    }

    /** One request line in, one reply line out. */
    std::string
    exchange(const std::string &request)
    {
        std::string line;
        if (!send(request + "\n") || !readLine(line))
            return "<dead>";
        return line;
    }

    /** OPEN; returns the sid (0 = rejected/disabled). */
    JobId
    open(const std::string &tenant)
    {
        const std::string line = exchange("OPEN " + tenant);
        if (line.rfind("OK ", 0) != 0)
            return 0;
        return std::strtoull(line.c_str() + 3, nullptr, 10);
    }

    /** ADD + clause body + END; returns the reply line. */
    std::string
    add(JobId sid, const std::string &body)
    {
        std::string req = "ADD " + std::to_string(sid) + "\n" + body;
        if (!req.empty() && req.back() != '\n')
            req += '\n';
        req += std::string(kEndMarker) + "\n";
        std::string line;
        if (!send(req) || !readLine(line))
            return "<dead>";
        return line;
    }

  private:
    int fd_ = -1;
    std::string buf_;
};

std::string
tempSocketPath()
{
    static std::atomic<int> counter{0};
    return (fs::temp_directory_path() /
            ("hyqsat_sess_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter.fetch_add(1)) + ".sock"))
        .string();
}

/** Server + scheduler + session manager over a unix socket. */
struct SessionStack
{
    SessionStack()
        : scheduler(schedulerOptions()),
          sessions(smallSessionOptions()),
          server(serverOptions(), scheduler, nullptr)
    {
        server.attachSessions(&sessions);
    }

    ~SessionStack()
    {
        scheduler.shutdown(DrainPolicy::CancelPending);
        server.stop();
    }

    static SchedulerOptions
    schedulerOptions()
    {
        SchedulerOptions opts;
        opts.portfolio.num_workers = 1;
        opts.workers = 1;
        return opts;
    }

    ServerOptions
    serverOptions()
    {
        ServerOptions opts;
        opts.unix_path = socket_path;
        return opts;
    }

    std::string socket_path = tempSocketPath();
    JobScheduler scheduler;
    SessionManager sessions;
    Server server;
};

TEST(ServiceSessions, SocketSessionLifecycleEndToEnd)
{
    SessionStack stack;
    ASSERT_TRUE(stack.server.start());

    SessionClient client;
    ASSERT_TRUE(client.connectUnix(stack.socket_path));

    const JobId sid = client.open("acme");
    ASSERT_NE(sid, 0u);

    EXPECT_EQ(client.add(sid, "-1 2 0\n-2 3 0\n"),
              "OK " + std::to_string(sid));

    std::string line = client.exchange("SOLVE " + std::to_string(sid));
    auto result = parseResult(line);
    ASSERT_TRUE(result.has_value()) << line;
    EXPECT_EQ(result->first, sid);
    EXPECT_EQ(result->second.status, "SAT");
    EXPECT_EQ(result->second.winner, "session");

    // Assume into the chain's contradiction, mine the core.
    EXPECT_EQ(client.exchange("ASSUME " + std::to_string(sid) +
                              " 1 -3"),
              "OK " + std::to_string(sid));
    line = client.exchange("SOLVE " + std::to_string(sid));
    result = parseResult(line);
    ASSERT_TRUE(result.has_value()) << line;
    EXPECT_EQ(result->second.status, "UNSAT");

    line = client.exchange("CORE " + std::to_string(sid));
    const auto core = parseCore(line);
    ASSERT_TRUE(core.has_value()) << line;
    EXPECT_EQ(core->first, sid);
    ASSERT_FALSE(core->second.empty());
    for (const int lit : core->second)
        EXPECT_TRUE(lit == 1 || lit == -3) << lit;

    // Warm continuation: add a clause, solve again without the
    // assumptions — the session state carried across the round trips.
    EXPECT_EQ(client.add(sid, "1 2 3 0\n"),
              "OK " + std::to_string(sid));
    line = client.exchange("SOLVE " + std::to_string(sid));
    result = parseResult(line);
    ASSERT_TRUE(result.has_value()) << line;
    EXPECT_EQ(result->second.status, "SAT");

    EXPECT_EQ(client.exchange("CLOSE " + std::to_string(sid)),
              "OK " + std::to_string(sid));
    EXPECT_EQ(client.exchange("SOLVE " + std::to_string(sid)),
              "ERR unknown session");
}

TEST(ServiceSessions, DisabledSessionsAnswerErrAndStaySynchronized)
{
    JobScheduler scheduler(SessionStack::schedulerOptions());
    ServerOptions opts;
    opts.unix_path = tempSocketPath();
    Server server(opts, scheduler, nullptr); // no attachSessions
    ASSERT_TRUE(server.start());

    SessionClient client;
    ASSERT_TRUE(client.connectUnix(opts.unix_path));
    EXPECT_EQ(client.exchange("OPEN acme"), "ERR sessions disabled");
    // The ADD body must be consumed even though sessions are off —
    // otherwise its clause lines would parse as requests.
    EXPECT_EQ(client.add(1, "1 2 0\n"), "ERR sessions disabled");
    EXPECT_EQ(client.exchange("PING"), "PONG");

    scheduler.shutdown(DrainPolicy::CancelPending);
    server.stop();
}

TEST(ServiceSessions, ShutdownVerbDrainsTheManager)
{
    SessionStack stack;
    std::atomic<bool> asked{false};
    stack.server.onShutdown([&](DrainPolicy) { asked.store(true); });
    ASSERT_TRUE(stack.server.start());

    SessionClient client;
    ASSERT_TRUE(client.connectUnix(stack.socket_path));
    EXPECT_EQ(client.exchange("SHUTDOWN"), "OK shutdown");
    for (int i = 0; i < 500 && !asked.load(); ++i)
        ::usleep(1000);
    EXPECT_TRUE(asked.load());
    EXPECT_TRUE(stack.sessions.draining());
    EXPECT_EQ(client.exchange("OPEN late"), "REJECTED draining");
}

TEST(ServiceSessions, ConcurrentTenantsSolveInParallel)
{
    SessionStack stack;
    ASSERT_TRUE(stack.server.start());

    // Each thread is one tenant with its own connection and session:
    // independent sessions must not serialize or trample each other
    // (the registry lock is per-verb, the session lock per-session).
    constexpr int kThreads = 4;
    constexpr int kRounds = 3;
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            SessionClient client;
            if (!client.connectUnix(stack.socket_path)) {
                ++failures;
                return;
            }
            const JobId sid =
                client.open("tenant" + std::to_string(t));
            if (sid == 0) {
                ++failures;
                return;
            }
            // Per-tenant pivot variable keeps the formulas distinct.
            const int pivot = t + 1;
            if (client.add(sid, std::to_string(pivot) + " " +
                                    std::to_string(pivot + 10) +
                                    " 0\n") !=
                "OK " + std::to_string(sid)) {
                ++failures;
                return;
            }
            for (int round = 0; round < kRounds; ++round) {
                // SAT under the positive pivot...
                if (client.exchange("ASSUME " + std::to_string(sid) +
                                    " " + std::to_string(pivot)) !=
                    "OK " + std::to_string(sid)) {
                    ++failures;
                    return;
                }
                auto result = parseResult(client.exchange(
                    "SOLVE " + std::to_string(sid)));
                if (!result || result->second.status != "SAT") {
                    ++failures;
                    return;
                }
            }
            if (client.exchange("CLOSE " + std::to_string(sid)) !=
                "OK " + std::to_string(sid))
                ++failures;
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(stack.sessions.active(), 0u);
}

} // namespace
} // namespace hyqsat::service
