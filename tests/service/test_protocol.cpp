/**
 * @file
 * Line-protocol round-trips: request parsing for every verb
 * (including the malformed diagnostics), response formatting, and
 * the RESULT format/parse pair the client and server share.
 */

#include <gtest/gtest.h>

#include "service/protocol.h"

namespace hyqsat::service {
namespace {

TEST(ServiceProtocol, SplitTokensSkipsBlankRuns)
{
    const auto tokens = splitTokens("  SUBMIT\tacme  3 job-1\r");
    ASSERT_EQ(tokens.size(), 4u);
    EXPECT_EQ(tokens[0], "SUBMIT");
    EXPECT_EQ(tokens[1], "acme");
    EXPECT_EQ(tokens[2], "3");
    EXPECT_EQ(tokens[3], "job-1");
    EXPECT_TRUE(splitTokens("   \t ").empty());
}

TEST(ServiceProtocol, ParsesSubmit)
{
    const Request req = parseRequest("SUBMIT acme 3 job-1");
    EXPECT_EQ(req.verb, Verb::Submit);
    EXPECT_EQ(req.tenant, "acme");
    EXPECT_EQ(req.priority, 3);
    EXPECT_EQ(req.name, "job-1");
}

TEST(ServiceProtocol, SubmitArityErrors)
{
    EXPECT_EQ(parseRequest("SUBMIT acme 3").verb, Verb::Invalid);
    EXPECT_EQ(parseRequest("SUBMIT acme 3 a b").verb, Verb::Invalid);
    EXPECT_FALSE(parseRequest("SUBMIT acme 3").error.empty());
}

TEST(ServiceProtocol, SubmitSimplifyOption)
{
    // The only accepted fifth token is a valid simplify=<level>.
    const Request req =
        parseRequest("SUBMIT acme 3 job-1 simplify=full");
    EXPECT_EQ(req.verb, Verb::Submit);
    EXPECT_EQ(req.name, "job-1");
    EXPECT_EQ(req.simplify, "full");
    EXPECT_EQ(parseRequest("SUBMIT acme 3 j simplify=off").simplify,
              "off");
    EXPECT_EQ(parseRequest("SUBMIT acme 3 j simplify=light").simplify,
              "light");
    // A plain SUBMIT leaves the override empty (daemon default).
    EXPECT_TRUE(parseRequest("SUBMIT acme 3 job-1").simplify.empty());
    // Misspelled levels and foreign key=value tokens stay Invalid.
    EXPECT_EQ(parseRequest("SUBMIT acme 3 j simplify=max").verb,
              Verb::Invalid);
    EXPECT_EQ(parseRequest("SUBMIT acme 3 j simplify=").verb,
              Verb::Invalid);
    EXPECT_EQ(parseRequest("SUBMIT acme 3 j depth=2").verb,
              Verb::Invalid);
}

TEST(ServiceProtocol, SubmitTopologyAndReadsBatchOptions)
{
    // topology= / reads_batch= compose with simplify= in any order.
    const Request req = parseRequest(
        "SUBMIT acme 3 job-1 reads_batch=1 topology=pegasus "
        "simplify=light");
    EXPECT_EQ(req.verb, Verb::Submit);
    EXPECT_EQ(req.simplify, "light");
    EXPECT_EQ(req.topology, "pegasus");
    EXPECT_EQ(req.reads_batch, 1);

    const Request chimera =
        parseRequest("SUBMIT acme 0 j topology=chimera");
    EXPECT_EQ(chimera.verb, Verb::Submit);
    EXPECT_EQ(chimera.topology, "chimera");
    EXPECT_EQ(chimera.reads_batch, -1) << "unset keeps the default";
    EXPECT_EQ(parseRequest("SUBMIT acme 0 j reads_batch=0").reads_batch,
              0);

    // Defaults when absent; bad values stay Invalid.
    const Request plain = parseRequest("SUBMIT acme 3 job-1");
    EXPECT_TRUE(plain.topology.empty());
    EXPECT_EQ(plain.reads_batch, -1);
    EXPECT_EQ(parseRequest("SUBMIT acme 3 j topology=zephyr").topology,
              "zephyr");
    EXPECT_EQ(parseRequest("SUBMIT acme 3 j topology=kite").verb,
              Verb::Invalid);
    EXPECT_EQ(parseRequest("SUBMIT acme 3 j reads_batch=yes").verb,
              Verb::Invalid);
    EXPECT_EQ(parseRequest("SUBMIT acme 3 j topology=").verb,
              Verb::Invalid);
}

TEST(ServiceProtocol, SubmitReadsGroupsOption)
{
    // reads_groups= composes with every other override; 0 means
    // auto-sized lockstep groups, -1 (absent) keeps the daemon
    // default.
    const Request req = parseRequest(
        "SUBMIT acme 2 job-9 reads_batch=1 reads_groups=4 "
        "topology=zephyr simplify=off");
    EXPECT_EQ(req.verb, Verb::Submit);
    EXPECT_EQ(req.reads_batch, 1);
    EXPECT_EQ(req.reads_groups, 4);
    EXPECT_EQ(req.topology, "zephyr");

    EXPECT_EQ(parseRequest("SUBMIT t 0 j reads_groups=0").reads_groups,
              0);
    EXPECT_EQ(parseRequest("SUBMIT t 0 j").reads_groups, -1)
        << "unset keeps the daemon default";

    // Bounds and syntax: negative, huge, and junk stay Invalid.
    EXPECT_EQ(parseRequest("SUBMIT t 0 j reads_groups=-1").verb,
              Verb::Invalid);
    EXPECT_EQ(parseRequest("SUBMIT t 0 j reads_groups=4097").verb,
              Verb::Invalid);
    EXPECT_EQ(parseRequest("SUBMIT t 0 j reads_groups=").verb,
              Verb::Invalid);
    EXPECT_EQ(parseRequest("SUBMIT t 0 j reads_groups=two").verb,
              Verb::Invalid);
}

TEST(ServiceProtocol, ParsesWaitAndStatus)
{
    const Request wait = parseRequest("WAIT 42");
    EXPECT_EQ(wait.verb, Verb::Wait);
    EXPECT_EQ(wait.id, 42u);
    const Request status = parseRequest("STATUS 7");
    EXPECT_EQ(status.verb, Verb::Status);
    EXPECT_EQ(status.id, 7u);
    EXPECT_EQ(parseRequest("WAIT").verb, Verb::Invalid);
    EXPECT_EQ(parseRequest("WAIT nope").verb, Verb::Invalid);
}

TEST(ServiceProtocol, ParsesBareVerbs)
{
    EXPECT_EQ(parseRequest("METRICS").verb, Verb::Metrics);
    EXPECT_EQ(parseRequest("PING").verb, Verb::Ping);
    EXPECT_EQ(parseRequest("QUIT").verb, Verb::Quit);
    EXPECT_EQ(parseRequest("").verb, Verb::Invalid);
    EXPECT_EQ(parseRequest("FROBNICATE").verb, Verb::Invalid);
}

TEST(ServiceProtocol, ParsesShutdownPolicies)
{
    EXPECT_EQ(parseRequest("SHUTDOWN").drain_policy,
              DrainPolicy::FinishQueued);
    EXPECT_EQ(parseRequest("SHUTDOWN finish").drain_policy,
              DrainPolicy::FinishQueued);
    EXPECT_EQ(parseRequest("SHUTDOWN cancel").drain_policy,
              DrainPolicy::CancelPending);
    EXPECT_EQ(parseRequest("SHUTDOWN cancel").verb, Verb::Shutdown);
    EXPECT_EQ(parseRequest("SHUTDOWN maybe").verb, Verb::Invalid);
}

TEST(ServiceProtocol, FormatsSubmissionVerdicts)
{
    Submission ok;
    ok.accepted = true;
    ok.id = 17;
    EXPECT_EQ(formatSubmission(ok), "OK 17");

    Submission no;
    no.reject_reason = "queue_full";
    EXPECT_EQ(formatSubmission(no), "REJECTED queue_full");
}

TEST(ServiceProtocol, ResultRoundTrips)
{
    InstanceRecord rec;
    rec.status = "SAT";
    rec.wall_s = 0.25;
    rec.vars = 150;
    rec.clauses = 645;
    rec.conflicts = 1234;
    rec.winner = "cdcl";

    const std::string line = formatResult(9, rec);
    const auto parsed = parseResult(line);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->first, 9u);
    EXPECT_EQ(parsed->second.status, "SAT");
    EXPECT_DOUBLE_EQ(parsed->second.wall_s, 0.25);
    EXPECT_EQ(parsed->second.vars, 150);
    EXPECT_EQ(parsed->second.clauses, 645);
    EXPECT_EQ(parsed->second.conflicts, 1234u);
    EXPECT_EQ(parsed->second.winner, "cdcl");
}

TEST(ServiceProtocol, ResultWithoutWinnerUsesPlaceholder)
{
    InstanceRecord rec;
    rec.status = "TIMEOUT";
    const std::string line = formatResult(3, rec);
    const auto parsed = parseResult(line);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(parsed->second.winner.empty());
}

TEST(ServiceProtocol, ParseResultRejectsMalformedLines)
{
    EXPECT_FALSE(parseResult("RESULT 1 SAT").has_value());
    EXPECT_FALSE(parseResult("NONSENSE").has_value());
    EXPECT_FALSE(parseResult("").has_value());
}

TEST(ServiceProtocol, FormatsStates)
{
    EXPECT_EQ(formatState(4, JobState::Queued, ""), "STATE 4 QUEUED");
    EXPECT_EQ(formatState(4, JobState::Running, ""),
              "STATE 4 RUNNING");
    EXPECT_EQ(formatState(4, JobState::Done, "SAT"),
              "STATE 4 DONE SAT");
}

} // namespace
} // namespace hyqsat::service
