#include <gtest/gtest.h>

#include "gen/benchmarks.h"
#include "sat/solver.h"

namespace hyqsat::gen {
namespace {

TEST(BenchmarkSuite, HasFourteenBenchmarks)
{
    EXPECT_EQ(BenchmarkSuite::all().size(), 14u);
}

TEST(BenchmarkSuite, TableOneOrderAndIds)
{
    const auto &all = BenchmarkSuite::all();
    const std::vector<std::string> expected{
        "GC1", "GC2", "GC3", "CFA", "BP", "II", "IF1",
        "IF2", "CRY", "AI1", "AI2", "AI3", "AI4", "AI5"};
    ASSERT_EQ(all.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(all[i].id, expected[i]);
}

TEST(BenchmarkSuite, ByIdFindsEveryBenchmark)
{
    for (const auto &b : BenchmarkSuite::all())
        EXPECT_EQ(BenchmarkSuite::byId(b.id).name, b.name);
}

TEST(BenchmarkSuite, UnknownIdIsFatal)
{
    EXPECT_EXIT(BenchmarkSuite::byId("nope"),
                ::testing::ExitedWithCode(1), "");
}

TEST(BenchmarkSuite, EveryBenchmarkGeneratesThreeSat)
{
    for (const auto &b : BenchmarkSuite::all()) {
        const auto cnf = b.make(0, 123);
        EXPECT_TRUE(cnf.isThreeSat()) << b.id;
        EXPECT_GT(cnf.numClauses(), 0) << b.id;
        EXPECT_FALSE(cnf.name().empty()) << b.id;
    }
}

TEST(BenchmarkSuite, InstancesAreDeterministicPerSeed)
{
    const auto &b = BenchmarkSuite::byId("AI1");
    const auto x = b.make(3, 99);
    const auto y = b.make(3, 99);
    ASSERT_EQ(x.numClauses(), y.numClauses());
    for (int i = 0; i < x.numClauses(); ++i)
        EXPECT_EQ(x.clause(i), y.clause(i));
}

TEST(BenchmarkSuite, DifferentIndicesDiffer)
{
    const auto &b = BenchmarkSuite::byId("AI1");
    const auto x = b.make(0, 99);
    const auto y = b.make(1, 99);
    bool all_equal = x.numClauses() == y.numClauses();
    if (all_equal) {
        for (int i = 0; i < x.numClauses() && all_equal; ++i)
            all_equal = (x.clause(i) == y.clause(i));
    }
    EXPECT_FALSE(all_equal);
}

TEST(BenchmarkSuite, GcSeriesMatchesTableOneScale)
{
    // GC1: 450 variables, 1680 clauses (Table I).
    const auto cnf = BenchmarkSuite::byId("GC1").make(0, 1);
    EXPECT_EQ(cnf.numVars(), 450);
    EXPECT_EQ(cnf.numClauses(), 1680);
    // GC3: 600 variables, 2237 clauses.
    const auto gc3 = BenchmarkSuite::byId("GC3").make(0, 1);
    EXPECT_EQ(gc3.numVars(), 600);
    EXPECT_EQ(gc3.numClauses(), 2237);
}

TEST(BenchmarkSuite, AiSeriesMatchesTableOneScale)
{
    const auto a1 = BenchmarkSuite::byId("AI1").make(0, 1);
    EXPECT_EQ(a1.numVars(), 150);
    EXPECT_EQ(a1.numClauses(), 645);
    const auto a5 = BenchmarkSuite::byId("AI5").make(0, 1);
    EXPECT_EQ(a5.numVars(), 250);
    EXPECT_EQ(a5.numClauses(), 1065);
}

TEST(BenchmarkSuite, ExpectedSatisfiabilityHolds)
{
    // Solve one small instance of each benchmark with a declared
    // satisfiability and check the label.
    for (const auto &b : BenchmarkSuite::all()) {
        if (b.expected_satisfiable < 0)
            continue;
        if (b.id == "IF1" || b.id == "IF2" || b.id == "GC1" ||
            b.id == "GC2" || b.id == "GC3") {
            continue; // larger instances: covered by bench runs
        }
        const auto cnf = b.make(0, 7);
        sat::Solver solver;
        const bool loaded = solver.loadCnf(cnf);
        const auto status =
            loaded ? solver.solve() : sat::l_False;
        EXPECT_EQ(status.isTrue(), b.expected_satisfiable == 1)
            << b.id;
    }
}

TEST(BenchmarkSuite, InstancesHelperCountsAndSeeds)
{
    const auto &b = BenchmarkSuite::byId("BP");
    const auto list = BenchmarkSuite::instances(b, 3, 42);
    ASSERT_EQ(list.size(), 3u);
    for (const auto &cnf : list)
        EXPECT_TRUE(cnf.isThreeSat());
}

} // namespace
} // namespace hyqsat::gen
