#include <gtest/gtest.h>

#include "gen/random_sat.h"
#include "sat/brute_force.h"
#include "sat/solver.h"

namespace hyqsat::gen {
namespace {

TEST(RandomSat, ShapeMatchesParameters)
{
    Rng rng(1);
    const auto cnf = uniformRandomKSat(50, 200, 3, rng);
    EXPECT_EQ(cnf.numVars(), 50);
    EXPECT_EQ(cnf.numClauses(), 200);
    for (const auto &c : cnf.clauses())
        EXPECT_EQ(c.size(), 3u);
}

TEST(RandomSat, ClausesUseDistinctVariables)
{
    Rng rng(2);
    const auto cnf = uniformRandomKSat(10, 100, 3, rng);
    for (const auto &c : cnf.clauses()) {
        EXPECT_NE(c[0].var(), c[1].var());
        EXPECT_NE(c[1].var(), c[2].var());
        EXPECT_NE(c[0].var(), c[2].var());
    }
}

TEST(RandomSat, DeterministicPerSeed)
{
    Rng a(7), b(7);
    const auto x = uniformRandom3Sat(20, 50, a);
    const auto y = uniformRandom3Sat(20, 50, b);
    for (int i = 0; i < x.numClauses(); ++i)
        EXPECT_EQ(x.clause(i), y.clause(i));
}

TEST(RandomSat, LowRatioUsuallySatisfiable)
{
    Rng rng(3);
    int sat = 0;
    for (int i = 0; i < 10; ++i) {
        const auto cnf = uniformRandom3Sat(20, 40, rng); // ratio 2.0
        sat += sat::bruteForceSolve(cnf).satisfiable;
    }
    EXPECT_GE(sat, 9);
}

TEST(RandomSat, HighRatioUsuallyUnsatisfiable)
{
    Rng rng(4);
    int unsat = 0;
    for (int i = 0; i < 10; ++i) {
        const auto cnf = uniformRandom3Sat(16, 128, rng); // ratio 8
        unsat += !sat::bruteForceSolve(cnf).satisfiable;
    }
    EXPECT_GE(unsat, 9);
}

TEST(PlantedSat, AlwaysSatisfiable)
{
    Rng rng(5);
    for (int i = 0; i < 10; ++i) {
        const auto cnf = plantedRandom3Sat(18, 90, rng); // ratio 5!
        EXPECT_TRUE(sat::bruteForceSolve(cnf).satisfiable)
            << "round " << i;
    }
}

TEST(PlantedSat, ShapePreserved)
{
    Rng rng(6);
    const auto cnf = plantedRandom3Sat(30, 120, rng);
    EXPECT_EQ(cnf.numVars(), 30);
    EXPECT_EQ(cnf.numClauses(), 120);
}

TEST(HornLike, FullHornRespectsShape)
{
    Rng rng(7);
    const auto cnf = randomHornLike(30, 100, 1.0, rng);
    for (const auto &c : cnf.clauses()) {
        int positives = 0;
        for (sat::Lit p : c)
            positives += !p.sign();
        EXPECT_LE(positives, 1);
    }
}

TEST(HornLike, SolvesWithFewConflicts)
{
    Rng rng(8);
    const auto cnf = randomHornLike(100, 300, 0.95, rng);
    sat::Solver solver;
    ASSERT_TRUE(solver.loadCnf(cnf));
    solver.solve();
    // Near-Horn formulas are easy: conflict count stays tiny
    // relative to the clause count (BP/II-style behaviour).
    EXPECT_LT(solver.stats().conflicts, 100u);
}

} // namespace
} // namespace hyqsat::gen
