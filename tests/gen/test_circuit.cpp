#include <gtest/gtest.h>

#include "gen/circuit.h"
#include "sat/brute_force.h"
#include "sat/solver.h"

namespace hyqsat::gen {
namespace {

TEST(Circuit, GateEvaluationTruthTables)
{
    Circuit c;
    const int a = c.addInput();
    const int b = c.addInput();
    const int w_and = c.addAnd(a, b);
    const int w_or = c.addOr(a, b);
    const int w_xor = c.addXor(a, b);
    const int w_nand = c.addNand(a, b);
    const int w_nor = c.addNor(a, b);
    const int w_not = c.addNot(a);

    for (int bits = 0; bits < 4; ++bits) {
        const bool va = bits & 1, vb = bits & 2;
        const auto values = c.eval({va, vb});
        EXPECT_EQ(values[w_and], va && vb);
        EXPECT_EQ(values[w_or], va || vb);
        EXPECT_EQ(values[w_xor], va != vb);
        EXPECT_EQ(values[w_nand], !(va && vb));
        EXPECT_EQ(values[w_nor], !(va || vb));
        EXPECT_EQ(values[w_not], !va);
    }
}

TEST(Circuit, ConstWires)
{
    Circuit c;
    const int t = c.addConst(true);
    const int f = c.addConst(false);
    const auto values = c.eval({});
    EXPECT_TRUE(values[t]);
    EXPECT_FALSE(values[f]);
}

TEST(Circuit, TseitinAgreesWithEvaluation)
{
    // Property: for every input assignment, the CNF restricted to
    // input units has exactly the circuit's wire values as its
    // unique model over wire variables.
    Rng rng(1);
    const Circuit c = randomCircuit(5, 30, 3, rng);
    const auto enc = c.tseitin();
    for (int bits = 0; bits < 32; ++bits) {
        std::vector<bool> inputs(5);
        for (int i = 0; i < 5; ++i)
            inputs[i] = (bits >> i) & 1;
        const auto values = c.eval(inputs);
        std::vector<bool> assignment(enc.cnf.numVars(), false);
        for (int w = 0; w < c.numWires(); ++w)
            assignment[enc.wire_var[w]] = values[w];
        EXPECT_TRUE(enc.cnf.eval(assignment)) << "bits " << bits;
    }
}

TEST(Circuit, TseitinRejectsWrongWireValues)
{
    Circuit c;
    const int a = c.addInput();
    const int b = c.addInput();
    const int y = c.addAnd(a, b);
    const auto enc = c.tseitin();
    std::vector<bool> assignment(enc.cnf.numVars(), false);
    assignment[enc.wire_var[a]] = true;
    assignment[enc.wire_var[b]] = true;
    assignment[enc.wire_var[y]] = false; // lie about the AND
    EXPECT_FALSE(enc.cnf.eval(assignment));
}

TEST(Circuit, RippleCarryAdderComputesSums)
{
    Circuit c;
    std::vector<int> a, b;
    for (int i = 0; i < 4; ++i)
        a.push_back(c.addInput());
    for (int i = 0; i < 4; ++i)
        b.push_back(c.addInput());
    const auto sum = c.rippleCarryAdder(a, b);
    ASSERT_EQ(sum.size(), 5u);

    for (int va = 0; va < 16; ++va) {
        for (int vb = 0; vb < 16; ++vb) {
            std::vector<bool> inputs(8);
            for (int i = 0; i < 4; ++i) {
                inputs[i] = (va >> i) & 1;
                inputs[4 + i] = (vb >> i) & 1;
            }
            const auto values = c.eval(inputs);
            int result = 0;
            for (int i = 0; i < 5; ++i)
                result |= values[sum[i]] << i;
            ASSERT_EQ(result, va + vb)
                << va << " + " << vb;
        }
    }
}

TEST(Circuit, MultiplierComputesProducts)
{
    Circuit c;
    std::vector<int> a, b;
    for (int i = 0; i < 4; ++i)
        a.push_back(c.addInput());
    for (int i = 0; i < 3; ++i)
        b.push_back(c.addInput());
    const auto product = c.multiplier(a, b);
    ASSERT_EQ(product.size(), 7u);

    for (int va = 0; va < 16; ++va) {
        for (int vb = 0; vb < 8; ++vb) {
            std::vector<bool> inputs(7);
            for (int i = 0; i < 4; ++i)
                inputs[i] = (va >> i) & 1;
            for (int i = 0; i < 3; ++i)
                inputs[4 + i] = (vb >> i) & 1;
            const auto values = c.eval(inputs);
            int result = 0;
            for (std::size_t i = 0; i < product.size(); ++i)
                result |= values[product[i]] << i;
            ASSERT_EQ(result, va * vb) << va << " * " << vb;
        }
    }
}

TEST(Circuit, GreaterEqualComparator)
{
    Circuit c;
    std::vector<int> a, b;
    for (int i = 0; i < 4; ++i)
        a.push_back(c.addInput());
    for (int i = 0; i < 4; ++i)
        b.push_back(c.addInput());
    const int ge = c.greaterEqual(a, b);
    for (int va = 0; va < 16; ++va) {
        for (int vb = 0; vb < 16; ++vb) {
            std::vector<bool> inputs(8);
            for (int i = 0; i < 4; ++i) {
                inputs[i] = (va >> i) & 1;
                inputs[4 + i] = (vb >> i) & 1;
            }
            const auto values = c.eval(inputs);
            ASSERT_EQ(values[ge], va >= vb) << va << " vs " << vb;
        }
    }
}

TEST(Circuit, FaultFreeMiterUnsatisfiable)
{
    Rng rng(2);
    const Circuit c = randomCircuit(8, 40, 4, rng);
    const auto cnf = faultMiter(c, -1, false);
    sat::Solver solver;
    const bool loaded = solver.loadCnf(cnf);
    EXPECT_TRUE(!loaded || solver.solve().isFalse());
}

TEST(Circuit, DetectableFaultMiterSatisfiable)
{
    // Stuck-at-1 on a primary input of an AND chain is detectable.
    Circuit c;
    const int a = c.addInput();
    const int b = c.addInput();
    const int y = c.addAnd(a, b);
    c.markOutput(y);
    const auto cnf = faultMiter(c, a, true);
    sat::Solver solver;
    ASSERT_TRUE(solver.loadCnf(cnf));
    EXPECT_TRUE(solver.solve().isTrue());
}

TEST(Circuit, MaskedFaultMiterUnsatisfiable)
{
    // y = a AND 0: a stuck-at fault on 'a' is masked by the const.
    Circuit c;
    const int a = c.addInput();
    const int zero = c.addConst(false);
    const int y = c.addAnd(a, zero);
    c.markOutput(y);
    const auto cnf = faultMiter(c, a, true);
    sat::Solver solver;
    const bool loaded = solver.loadCnf(cnf);
    EXPECT_TRUE(!loaded || solver.solve().isFalse());
}

TEST(Circuit, RandomCircuitShape)
{
    Rng rng(3);
    const Circuit c = randomCircuit(6, 50, 5, rng);
    EXPECT_EQ(c.numInputs(), 6);
    EXPECT_EQ(c.numWires(), 56);
    EXPECT_EQ(c.outputs().size(), 5u);
}

} // namespace
} // namespace hyqsat::gen
