#include <gtest/gtest.h>

#include "gen/planning.h"
#include "sat/solver.h"

namespace hyqsat::gen {
namespace {

TEST(BlocksWorld, RandomTaskIsWellFormed)
{
    Rng rng(1);
    const auto task = randomBlocksWorld(6, rng);
    EXPECT_EQ(task.num_blocks, 6);
    ASSERT_EQ(task.initial_under.size(), 6u);
    ASSERT_EQ(task.goal_under.size(), 6u);
    // No block under itself; each block supports at most one block.
    for (const auto &config :
         {task.initial_under, task.goal_under}) {
        std::vector<int> load(6, 0);
        for (int b = 0; b < 6; ++b) {
            EXPECT_NE(config[b], b);
            if (config[b] >= 0)
                ++load[config[b]];
        }
        for (int b = 0; b < 6; ++b)
            EXPECT_LE(load[b], 1);
    }
}

TEST(BlocksWorld, ConfigurationsAreAcyclic)
{
    Rng rng(2);
    for (int round = 0; round < 10; ++round) {
        const auto task = randomBlocksWorld(8, rng);
        // Following 'under' pointers must reach the table.
        for (int b = 0; b < 8; ++b) {
            int cur = b, steps = 0;
            while (cur >= 0 && steps++ <= 8)
                cur = task.initial_under[cur];
            EXPECT_LE(steps, 8) << "cycle from block " << b;
        }
    }
}

TEST(BlocksWorld, GenerousHorizonSatisfiable)
{
    Rng rng(3);
    for (int blocks : {3, 4, 5}) {
        const auto cnf = blocksWorldCnf(blocks, rng);
        sat::Solver solver;
        ASSERT_TRUE(solver.loadCnf(cnf));
        EXPECT_TRUE(solver.solve().isTrue()) << blocks << " blocks";
    }
}

TEST(BlocksWorld, ZeroHorizonOnlySatisfiableWhenGoalEqualsInit)
{
    BlocksWorldTask same;
    same.num_blocks = 3;
    same.initial_under = {-1, 0, 1}; // one stack 2-1-0
    same.goal_under = {-1, 0, 1};
    sat::Solver s1;
    ASSERT_TRUE(s1.loadCnf(encodeBlocksWorld(same, 0)));
    EXPECT_TRUE(s1.solve().isTrue());

    BlocksWorldTask diff = same;
    diff.goal_under = {1, -1, 0}; // different stacking
    sat::Solver s2;
    const bool loaded = s2.loadCnf(encodeBlocksWorld(diff, 0));
    EXPECT_TRUE(!loaded || s2.solve().isFalse());
}

TEST(BlocksWorld, UnstackOneBlockInOneStep)
{
    BlocksWorldTask task;
    task.num_blocks = 2;
    task.initial_under = {-1, 0}; // 1 on 0
    task.goal_under = {-1, -1};   // both on table
    sat::Solver solver;
    ASSERT_TRUE(solver.loadCnf(encodeBlocksWorld(task, 1)));
    EXPECT_TRUE(solver.solve().isTrue());
}

TEST(BlocksWorld, BlockedMoveNeedsTwoSteps)
{
    // Swap-under scenario: 1 on 0, goal 0 on 1. One step cannot do
    // it (0 is not clear at t=0 and 1 must move off first).
    BlocksWorldTask task;
    task.num_blocks = 2;
    task.initial_under = {-1, 0};
    task.goal_under = {1, -1};
    sat::Solver one;
    const bool loaded = one.loadCnf(encodeBlocksWorld(task, 1));
    EXPECT_TRUE(!loaded || one.solve().isFalse());
    sat::Solver two;
    ASSERT_TRUE(two.loadCnf(encodeBlocksWorld(task, 2)));
    EXPECT_TRUE(two.solve().isTrue());
}

TEST(BlocksWorld, LowConflictProfile)
{
    // BP instances are nearly conflict-free (Table I: ~7 iterations).
    Rng rng(4);
    const auto cnf = blocksWorldCnf(5, rng);
    sat::Solver solver;
    ASSERT_TRUE(solver.loadCnf(cnf));
    ASSERT_TRUE(solver.solve().isTrue());
    EXPECT_LT(solver.stats().conflicts, 5000u);
}

} // namespace
} // namespace hyqsat::gen
