#include <gtest/gtest.h>

#include "gen/factorization.h"
#include "sat/solver.h"

namespace hyqsat::gen {
namespace {

TEST(Primes, IsPrimeBasics)
{
    EXPECT_FALSE(isPrime(0));
    EXPECT_FALSE(isPrime(1));
    EXPECT_TRUE(isPrime(2));
    EXPECT_TRUE(isPrime(3));
    EXPECT_FALSE(isPrime(4));
    EXPECT_TRUE(isPrime(97));
    EXPECT_FALSE(isPrime(91)); // 7 * 13
    EXPECT_TRUE(isPrime(65537));
}

TEST(Primes, RandomPrimeHasRequestedWidth)
{
    Rng rng(1);
    for (int bits = 3; bits <= 12; ++bits) {
        const auto p = randomPrime(bits, rng);
        EXPECT_TRUE(isPrime(p));
        EXPECT_GE(p, 1ull << (bits - 1));
        EXPECT_LT(p, 1ull << bits);
    }
}

std::uint64_t
decodeFactor(const sat::Solver &solver, int offset, int width)
{
    std::uint64_t value = 0;
    for (int i = 0; i < width; ++i)
        if (solver.model()[offset + i].isTrue())
            value |= 1ull << i;
    return value;
}

TEST(Factorization, RecoversSmallSemiprime)
{
    // 5 * 7 == 35 with 3/3-bit factors (inputs are CNF vars 0..5).
    const auto cnf = factorizationCnf(35, 3, 3);
    sat::Solver solver;
    ASSERT_TRUE(solver.loadCnf(cnf));
    ASSERT_TRUE(solver.solve().isTrue());
    const auto p = decodeFactor(solver, 0, 3);
    const auto q = decodeFactor(solver, 3, 3);
    EXPECT_EQ(p * q, 35u);
    EXPECT_GT(p, 1u);
    EXPECT_GT(q, 1u);
}

TEST(Factorization, PrimeTargetUnsatisfiable)
{
    // 13 is prime: no nontrivial 3x3-bit factorization exists.
    const auto cnf = factorizationCnf(13, 3, 3);
    sat::Solver solver;
    const bool loaded = solver.loadCnf(cnf);
    EXPECT_TRUE(!loaded || solver.solve().isFalse());
}

TEST(Factorization, RejectsTrivialFactorization)
{
    // 6 = 2 * 3 works, but 6 = 1 * 6 must be excluded; with widths
    // 2x2 the only options are 2*3 / 3*2.
    const auto cnf = factorizationCnf(6, 2, 2);
    sat::Solver solver;
    ASSERT_TRUE(solver.loadCnf(cnf));
    ASSERT_TRUE(solver.solve().isTrue());
    const auto p = decodeFactor(solver, 0, 2);
    const auto q = decodeFactor(solver, 2, 2);
    EXPECT_EQ(p * q, 6u);
    EXPECT_GT(p, 1u);
    EXPECT_GT(q, 1u);
}

TEST(Factorization, RandomSemiprimesSatisfiable)
{
    Rng rng(2);
    for (int round = 0; round < 3; ++round) {
        const auto cnf = randomSemiprimeCnf(5, 5, rng);
        sat::Solver solver;
        ASSERT_TRUE(solver.loadCnf(cnf));
        EXPECT_TRUE(solver.solve().isTrue()) << "round " << round;
    }
}

TEST(Factorization, ModelAlwaysYieldsTrueFactors)
{
    Rng rng(3);
    const auto p = randomPrime(6, rng);
    const auto q = randomPrime(6, rng);
    const auto cnf = factorizationCnf(p * q, 6, 6);
    sat::Solver solver;
    ASSERT_TRUE(solver.loadCnf(cnf));
    ASSERT_TRUE(solver.solve().isTrue());
    const auto fp = decodeFactor(solver, 0, 6);
    const auto fq = decodeFactor(solver, 6, 6);
    EXPECT_EQ(fp * fq, p * q);
    // Semiprime: the only nontrivial splits are {p, q}.
    EXPECT_TRUE((fp == p && fq == q) || (fp == q && fq == p));
}

} // namespace
} // namespace hyqsat::gen
