#include <gtest/gtest.h>

#include "gen/crypto.h"
#include "sat/solver.h"

namespace hyqsat::gen {
namespace {

struct SolveOutcome
{
    sat::lbool status;
    std::uint64_t conflicts;
};

SolveOutcome
solveCnf(const sat::Cnf &cnf)
{
    sat::Solver solver;
    if (!solver.loadCnf(cnf))
        return {sat::l_False, solver.stats().conflicts};
    return {solver.solve(), solver.stats().conflicts};
}

TEST(CmpAdd, PropertyHoldsSoCnfUnsat)
{
    for (int width : {4, 8, 12}) {
        const auto r = solveCnf(cmpAddCnf(width));
        EXPECT_TRUE(r.status.isFalse()) << "width " << width;
    }
}

TEST(CmpAdd, RefutedQuickly)
{
    // The paper's CRY rows solve in a handful of iterations.
    const auto r = solveCnf(cmpAddCnf(16));
    EXPECT_TRUE(r.status.isFalse());
    EXPECT_LT(r.conflicts, 2000u);
}

TEST(AdderEquivalence, CommutedTwinsAgree)
{
    for (int width : {4, 8}) {
        const auto r = solveCnf(adderEquivalenceCnf(width));
        EXPECT_TRUE(r.status.isFalse()) << "width " << width;
    }
}

TEST(AdderTarget, ReachableTargetSatisfiable)
{
    Rng rng(1);
    for (int round = 0; round < 5; ++round) {
        const auto r = solveCnf(adderTargetCnf(6, rng));
        EXPECT_TRUE(r.status.isTrue()) << "round " << round;
    }
}

TEST(Crypto, InstancesAreCircuitSized)
{
    const auto cnf = cmpAddCnf(16);
    EXPECT_GT(cnf.numVars(), 100);
    EXPECT_GT(cnf.numClauses(), 300);
}

} // namespace
} // namespace hyqsat::gen
