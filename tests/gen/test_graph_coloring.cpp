#include <gtest/gtest.h>

#include "gen/graph_coloring.h"
#include "sat/solver.h"

namespace hyqsat::gen {
namespace {

TEST(FlatGraph, ShapeAndCrossClassEdges)
{
    Rng rng(1);
    const auto g = flatGraph(30, 60, 3, rng);
    EXPECT_EQ(g.vertices, 30);
    EXPECT_EQ(g.edges.size(), 60u);
    for (const auto &[a, b] : g.edges) {
        EXPECT_NE(a, b);
        EXPECT_NE(g.hidden_coloring[a], g.hidden_coloring[b]);
    }
}

TEST(FlatGraph, EdgesAreUnique)
{
    Rng rng(2);
    const auto g = flatGraph(20, 50, 3, rng);
    for (std::size_t i = 0; i < g.edges.size(); ++i)
        for (std::size_t j = i + 1; j < g.edges.size(); ++j)
            EXPECT_NE(g.edges[i], g.edges[j]);
}

TEST(FlatGraph, BalancedHiddenColoring)
{
    Rng rng(3);
    const auto g = flatGraph(30, 40, 3, rng);
    std::vector<int> counts(3, 0);
    for (int c : g.hidden_coloring)
        ++counts[c];
    EXPECT_EQ(counts[0], 10);
    EXPECT_EQ(counts[1], 10);
    EXPECT_EQ(counts[2], 10);
}

TEST(ColoringCnf, VariableAndClauseCounts)
{
    // Table I accounting: vars = V*k; clauses = V (ALO) +
    // V*C(k,2) (AMO) + E*k (edges).
    Rng rng(4);
    const auto cnf = flatColoringCnf(150, 360, 3, rng);
    EXPECT_EQ(cnf.numVars(), 450);   // GC1's #Variable
    EXPECT_EQ(cnf.numClauses(), 150 + 450 + 1080); // 1680, GC1's
}

TEST(ColoringCnf, HiddenColoringSatisfiesEncoding)
{
    Rng rng(5);
    const auto g = flatGraph(25, 55, 3, rng);
    const auto cnf = encodeColoring(g);
    std::vector<bool> assignment(cnf.numVars(), false);
    for (int v = 0; v < g.vertices; ++v)
        assignment[v * 3 + g.hidden_coloring[v]] = true;
    EXPECT_TRUE(cnf.eval(assignment));
}

TEST(ColoringCnf, SolverFindsValidColoring)
{
    Rng rng(6);
    const auto g = flatGraph(20, 45, 3, rng);
    const auto cnf = encodeColoring(g);
    sat::Solver solver;
    ASSERT_TRUE(solver.loadCnf(cnf));
    ASSERT_TRUE(solver.solve().isTrue());
    const auto model = solver.boolModel();
    // Decode: exactly one colour per vertex, endpoints differ.
    for (int v = 0; v < g.vertices; ++v) {
        int colors = 0;
        for (int c = 0; c < 3; ++c)
            colors += model[v * 3 + c];
        EXPECT_EQ(colors, 1) << "vertex " << v;
    }
    auto color_of = [&](int v) {
        for (int c = 0; c < 3; ++c)
            if (model[v * 3 + c])
                return c;
        return -1;
    };
    for (const auto &[a, b] : g.edges)
        EXPECT_NE(color_of(a), color_of(b));
}

TEST(ColoringCnf, AllClausesAtMostThreeLiterals)
{
    Rng rng(7);
    const auto cnf = flatColoringCnf(30, 60, 3, rng);
    EXPECT_TRUE(cnf.isThreeSat());
}

TEST(FlatGraph, RejectsImpossibleEdgeCounts)
{
    // Asking for more cross-class edges than exist must fatal();
    // death tests document the contract.
    Rng rng(8);
    EXPECT_EXIT(flatGraph(3, 100, 3, rng),
                ::testing::ExitedWithCode(1), "");
}

} // namespace
} // namespace hyqsat::gen
