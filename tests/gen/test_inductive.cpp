#include <gtest/gtest.h>

#include "gen/inductive.h"
#include "sat/solver.h"

namespace hyqsat::gen {
namespace {

TEST(InductiveInference, InstancesAreSatisfiable)
{
    Rng rng(1);
    for (int round = 0; round < 5; ++round) {
        const auto cnf = inductiveInferenceCnf(8, 3, 20, rng);
        sat::Solver solver;
        ASSERT_TRUE(solver.loadCnf(cnf));
        EXPECT_TRUE(solver.solve().isTrue()) << "round " << round;
    }
}

TEST(InductiveInference, VariableCountMatchesEncoding)
{
    Rng rng(2);
    const int f = 10, k = 3, m = 30;
    const auto cnf = inductiveInferenceCnf(f, k, m, rng);
    // 2*k*f selector vars plus k vars per positive example;
    // positives vary, so bound from both sides.
    EXPECT_GE(cnf.numVars(), 2 * k * f);
    EXPECT_LE(cnf.numVars(), 2 * k * f + k * m);
}

TEST(InductiveInference, ModelDecodesToConsistentDnf)
{
    Rng rng(3);
    const int f = 6, k = 2, m = 24;
    const auto cnf = inductiveInferenceCnf(f, k, m, rng);
    sat::Solver solver;
    ASSERT_TRUE(solver.loadCnf(cnf));
    ASSERT_TRUE(solver.solve().isTrue());
    const auto model = solver.boolModel();
    // No feature may be both positive and negative in a term.
    for (int t = 0; t < k; ++t) {
        for (int i = 0; i < f; ++i) {
            const bool p = model[(t * f + i) * 2];
            const bool n = model[(t * f + i) * 2 + 1];
            EXPECT_FALSE(p && n) << "term " << t << " feature " << i;
        }
    }
}

TEST(InductiveInference, DeterministicPerSeed)
{
    Rng a(7), b(7);
    const auto x = inductiveInferenceCnf(8, 2, 16, a);
    const auto y = inductiveInferenceCnf(8, 2, 16, b);
    ASSERT_EQ(x.numClauses(), y.numClauses());
    for (int i = 0; i < x.numClauses(); ++i)
        EXPECT_EQ(x.clause(i), y.clause(i));
}

TEST(InductiveInference, ModerateConflictProfile)
{
    Rng rng(4);
    const auto cnf = inductiveInferenceCnf(12, 3, 36, rng);
    sat::Solver solver;
    ASSERT_TRUE(solver.loadCnf(cnf));
    ASSERT_TRUE(solver.solve().isTrue());
    // II instances are easy-to-moderate, far from uf-series hardness.
    EXPECT_LT(solver.stats().conflicts, 20000u);
}

} // namespace
} // namespace hyqsat::gen
