#include <gtest/gtest.h>

#include "core/hybrid_solver.h"
#include "portfolio/portfolio.h"
#include "tests/sat/helpers.h"
#include "util/metrics.h"

namespace hyqsat::simplify {
namespace {

using sat::Cnf;

core::HybridConfig
noiseFreeConfig(std::uint64_t seed)
{
    core::HybridConfig cfg;
    cfg.annealer.noise = anneal::NoiseModel::noiseFree();
    cfg.annealer.greedy_finish = true;
    cfg.annealer.attempts = 2;
    cfg.seed = seed;
    return cfg;
}

/**
 * The acceptance A/B: on golden seeds, the hybrid solver with full
 * inprocessing reaches the same verdict as with it off, and every
 * SAT model — already reconstructed by HybridSolver — satisfies the
 * ORIGINAL formula clause by clause.
 */
TEST(HybridSimplifyAB, FullMatchesOffOnGoldenSeeds)
{
    const std::uint64_t golden[] = {0x1001, 0x2002, 0x3003,
                                    0x4004, 0x5005};
    int solved = 0;
    for (const std::uint64_t seed : golden) {
        Rng gen(seed);
        const Cnf cnf = sat::testing::randomCnf(30, 120, 3, gen);

        core::HybridConfig off = noiseFreeConfig(seed);
        off.simplify_strength = Strength::Off;
        core::HybridConfig full = noiseFreeConfig(seed);
        full.simplify_strength = Strength::Full;

        const auto r_off = core::HybridSolver(off).solve(cnf);
        const auto r_full = core::HybridSolver(full).solve(cnf);
        ASSERT_FALSE(r_off.status.isUndef()) << "seed " << seed;
        ASSERT_FALSE(r_full.status.isUndef()) << "seed " << seed;
        EXPECT_EQ(r_full.status.isTrue(), r_off.status.isTrue())
            << "seed " << seed;

        if (r_full.status.isTrue()) {
            ++solved;
            ASSERT_GE(static_cast<int>(r_full.model.size()),
                      cnf.numVars())
                << "seed " << seed;
            for (int ci = 0; ci < cnf.numClauses(); ++ci) {
                bool satisfied = false;
                for (const sat::Lit p : cnf.clause(ci))
                    satisfied |=
                        (r_full.model[static_cast<std::size_t>(
                             p.var())] != p.sign());
                EXPECT_TRUE(satisfied)
                    << "seed " << seed << " clause " << ci;
            }
        }
    }
    // The band is below the phase transition: most seeds are SAT,
    // so the clause-by-clause check above actually ran.
    EXPECT_GE(solved, 1);
}

TEST(HybridSimplifyAB, SimplifyMetricsReachTheRegistry)
{
    Rng gen(0xab);
    const Cnf cnf = sat::testing::randomCnf(24, 100, 3, gen);
    MetricsRegistry registry;
    core::HybridConfig cfg = noiseFreeConfig(7);
    cfg.simplify_strength = Strength::Full;
    cfg.metrics = &registry;
    core::HybridSolver(cfg).solve(cnf);
    EXPECT_EQ(registry.counter("simplify.runs")->value(), 1u);
    EXPECT_GT(registry.timer("simplify.time")->count(), 0u);
}

TEST(HybridSimplifyAB, OffKeepsRunsBitIdentical)
{
    // simplify_strength = Off must not perturb an existing config's
    // behaviour: same verdict, same iteration count, same model.
    Rng gen(0xcd);
    const Cnf cnf = sat::testing::randomCnf(26, 108, 3, gen);
    core::HybridConfig base = noiseFreeConfig(11);
    core::HybridConfig off = base;
    off.simplify_strength = Strength::Off; // the default, explicit
    const auto a = core::HybridSolver(base).solve(cnf);
    const auto b = core::HybridSolver(off).solve(cnf);
    EXPECT_TRUE(a.status == b.status);
    EXPECT_EQ(a.stats.iterations, b.stats.iterations);
    EXPECT_EQ(a.model, b.model);
}

TEST(HybridSimplifyAB, PortfolioDiversifyKeepsBaseSlotUnchanged)
{
    const core::HybridConfig base = noiseFreeConfig(3);
    const auto slate =
        portfolio::PortfolioSolver::diversify(base, 10);
    ASSERT_EQ(slate.size(), 10u);
    EXPECT_EQ(slate[0].hybrid.simplify_strength,
              base.simplify_strength);
    // The slate contains at least one inprocessing worker.
    bool has_presolve = false;
    for (const auto &w : slate)
        has_presolve |=
            (w.hybrid.simplify_strength == Strength::Full);
    EXPECT_TRUE(has_presolve);
}

} // namespace
} // namespace hyqsat::simplify
