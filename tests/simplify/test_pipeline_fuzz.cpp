#include <gtest/gtest.h>

#include "sat/brute_force.h"
#include "sat/solver.h"
#include "simplify/clause_db.h"
#include "simplify/passes.h"
#include "simplify/pipeline.h"
#include "tests/sat/helpers.h"
#include "util/rng.h"

namespace hyqsat::simplify {
namespace {

using sat::Cnf;

/**
 * Solve the (already simplified) formula exactly and check the
 * reconstructed model against the original, clause by clause.
 */
void
checkAgainstOriginal(const Cnf &original, const Result &r,
                     const char *what, int round)
{
    const bool expected = sat::bruteForceSolve(original).satisfiable;
    if (!r.satisfiable_possible) {
        EXPECT_FALSE(expected) << what << " round " << round;
        return;
    }
    sat::Solver s;
    if (!s.loadCnf(r.cnf)) {
        EXPECT_FALSE(expected) << what << " round " << round;
        return;
    }
    const sat::lbool status = s.solve();
    ASSERT_FALSE(status.isUndef()) << what << " round " << round;
    EXPECT_EQ(status.isTrue(), expected) << what << " round " << round;
    if (!status.isTrue())
        return;
    const auto model = r.extendModel(s.boolModel());
    ASSERT_GE(static_cast<int>(model.size()), original.numVars())
        << what << " round " << round;
    for (int ci = 0; ci < original.numClauses(); ++ci) {
        bool satisfied = false;
        for (const sat::Lit p : original.clause(ci))
            satisfied |= (model[static_cast<std::size_t>(p.var())] !=
                          p.sign());
        EXPECT_TRUE(satisfied) << what << " round " << round
                               << " clause " << ci;
    }
}

/** Random pass configuration: every switch tossed independently. */
Options
randomOptions(Rng &rng)
{
    Options o;
    o.unit_propagation = rng.chance(0.8);
    o.subsumption = rng.chance(0.5);
    o.self_subsumption = rng.chance(0.5);
    o.equivalent_literals = rng.chance(0.5);
    o.probing = rng.chance(0.5);
    o.vivification = rng.chance(0.5);
    o.elimination = rng.chance(0.5);
    o.max_rounds = 1 + static_cast<int>(rng.below(8));
    o.bve_occurrence_limit = 4 + static_cast<int>(rng.below(12));
    o.max_resolvent_len = 3 + static_cast<int>(rng.below(3));
    return o;
}

TEST(PipelineFuzz, RandomizedOptionSetsPreserveModels)
{
    Rng rng(0x5117a);
    for (int round = 0; round < 60; ++round) {
        const int vars = 6 + static_cast<int>(rng.below(8));
        const int clauses =
            vars * (3 + static_cast<int>(rng.below(3)));
        const Cnf cnf =
            sat::testing::randomCnf(vars, clauses, 3, rng);
        const Result r = Pipeline(randomOptions(rng)).run(cnf);
        checkAgainstOriginal(cnf, r, "options", round);
    }
}

TEST(PipelineFuzz, PresetsPreserveModelsNearPhaseTransition)
{
    Rng rng(0xbeef);
    for (int round = 0; round < 30; ++round) {
        // m/n ~ 4.3: the hard band where every pass sees real work.
        const Cnf cnf = sat::testing::randomCnf(12, 52, 3, rng);
        for (const Strength s : {Strength::Light, Strength::Full}) {
            const Result r =
                Pipeline(Options::preset(s)).run(cnf);
            checkAgainstOriginal(cnf, r, strengthName(s), round);
        }
    }
}

TEST(PipelineFuzz, RandomizedPassOrderPreservesModels)
{
    // Drive the passes directly through passes.h in a random order,
    // with unit propagation interleaved (the invariant every pass
    // assumes: no live clause mentions a root-fixed variable).
    Rng rng(0xcafe);
    Options o = Options::preset(Strength::Full);
    for (int round = 0; round < 40; ++round) {
        const Cnf cnf = sat::testing::randomCnf(10, 43, 3, rng);

        ClauseDb db(cnf);
        ReconstructionStack rs;
        Stats st;
        bool ok = !db.contradiction();
        ok = ok && propagateUnits(db, rs, st);
        const int steps = 4 + static_cast<int>(rng.below(8));
        for (int step = 0; ok && step < steps; ++step) {
            switch (rng.below(5)) {
            case 0: ok = runSubsumption(db, o, st); break;
            case 1: ok = runEquivalentLiterals(db, rs, st); break;
            case 2: ok = runProbing(db, o, st); break;
            case 3: ok = runVivification(db, o, st); break;
            case 4: ok = runElimination(db, rs, o, st); break;
            }
            ok = ok && propagateUnits(db, rs, st);
        }

        Result r;
        r.satisfiable_possible = ok;
        r.stats = st;
        r.reconstruction = rs;
        if (ok) {
            r.cnf = db.emit();
            for (sat::Var v = 0; v < db.numVars(); ++v)
                if (!db.value(v).isUndef())
                    r.fixed.push_back(
                        sat::mkLit(v, db.value(v).isFalse()));
        } else {
            r.cnf = Cnf(cnf.numVars());
        }
        checkAgainstOriginal(cnf, r, "order", round);
    }
}

TEST(PipelineFuzz, FullPipelineIsIdempotent)
{
    Rng rng(0xfeed);
    for (int round = 0; round < 20; ++round) {
        const Cnf cnf = sat::testing::randomCnf(14, 58, 3, rng);
        const Pipeline pipe(Options::preset(Strength::Full));
        const Result once = pipe.run(cnf);
        if (!once.satisfiable_possible)
            continue;
        const Result twice = pipe.run(once.cnf);
        EXPECT_TRUE(twice.satisfiable_possible) << "round " << round;
        EXPECT_EQ(twice.stats.work(), 0) << "round " << round;
        EXPECT_EQ(twice.cnf.numClauses(), once.cnf.numClauses())
            << "round " << round;
    }
}

TEST(PipelineFuzz, RepeatedRunsAreDeterministic)
{
    Rng rng(0xd0d0);
    const Cnf cnf = sat::testing::randomCnf(16, 68, 3, rng);
    const Pipeline pipe(Options::preset(Strength::Full));
    const Result a = pipe.run(cnf);
    const Result b = pipe.run(cnf);
    ASSERT_EQ(a.satisfiable_possible, b.satisfiable_possible);
    ASSERT_EQ(a.cnf.numClauses(), b.cnf.numClauses());
    for (int ci = 0; ci < a.cnf.numClauses(); ++ci) {
        const auto &ca = a.cnf.clause(ci);
        const auto &cb = b.cnf.clause(ci);
        ASSERT_EQ(ca.size(), cb.size()) << "clause " << ci;
        for (std::size_t k = 0; k < ca.size(); ++k)
            EXPECT_EQ(ca[k].x, cb[k].x) << "clause " << ci;
    }
}

} // namespace
} // namespace hyqsat::simplify
