/**
 * @file
 * The pipeline's freeze contract (incremental sessions): frozen
 * variables survive SCC substitution and bounded variable
 * elimination, the per-variable fate map distinguishes mappable
 * rewrites (substitution, root fixing) from unmappable ones (BVE),
 * and assumption solving through mapLiteral agrees with solving the
 * original formula directly.
 */

#include <gtest/gtest.h>

#include "sat/brute_force.h"
#include "sat/solver.h"
#include "simplify/pipeline.h"
#include "tests/sat/helpers.h"
#include "util/rng.h"

namespace hyqsat::simplify {
namespace {

using sat::Cnf;
using sat::Lit;
using sat::LitVec;
using sat::mkLit;
using sat::Var;

Options
fullWithFrozen(std::vector<Var> frozen)
{
    Options o = Options::preset(Strength::Full);
    o.frozen = std::move(frozen);
    return o;
}

TEST(Freeze, FrozenVarSurvivesEquivalenceSubstitution)
{
    // x0 == x1 via the binary clauses; with x0 frozen the SCC pass
    // must keep x0 (substituting x1 or nothing), never remove x0.
    Cnf cnf(3);
    cnf.addClause(LitVec{mkLit(0, true), mkLit(1)}); // x0 -> x1
    cnf.addClause(LitVec{mkLit(1, true), mkLit(0)}); // x1 -> x0
    cnf.addClause(LitVec{mkLit(0), mkLit(2)});
    const Result r =
        Pipeline(fullWithFrozen({0})).run(cnf);
    ASSERT_TRUE(r.satisfiable_possible);
    EXPECT_EQ(r.mapLiteral(mkLit(0)).kind, MappedLit::Kind::Free);
    EXPECT_FALSE(r.eliminated.empty());
    EXPECT_EQ(r.eliminated[0], 0);
    EXPECT_EQ(r.substituted[0], sat::lit_Undef)
        << "frozen variable was substituted away";
    // The unfrozen partner maps through the chain onto x0.
    const MappedLit m1 = r.mapLiteral(mkLit(1));
    if (m1.kind == MappedLit::Kind::Free) {
        EXPECT_EQ(m1.lit.var(), 0);
    }
}

TEST(Freeze, TwoFrozenEquivalentVarsBothSurvive)
{
    // x0 == x1, both frozen: neither may be substituted; the
    // equivalence clauses stay in the simplified formula instead.
    Cnf cnf(3);
    cnf.addClause(LitVec{mkLit(0, true), mkLit(1)});
    cnf.addClause(LitVec{mkLit(1, true), mkLit(0)});
    cnf.addClause(LitVec{mkLit(2), mkLit(0)});
    const Result r = Pipeline(fullWithFrozen({0, 1})).run(cnf);
    ASSERT_TRUE(r.satisfiable_possible);
    for (Var v : {0, 1}) {
        EXPECT_EQ(r.substituted[static_cast<std::size_t>(v)],
                  sat::lit_Undef)
            << "frozen x" << v;
        EXPECT_EQ(r.eliminated[static_cast<std::size_t>(v)], 0);
    }
}

TEST(Freeze, FrozenVarExemptFromElimination)
{
    // A low-occurrence variable BVE would normally take: frozen, it
    // must stay; unfrozen (control), it must go.
    Cnf cnf(4);
    cnf.addClause(LitVec{mkLit(0), mkLit(1), mkLit(2)});
    cnf.addClause(LitVec{mkLit(0, true), mkLit(2), mkLit(3)});
    cnf.addClause(LitVec{mkLit(1), mkLit(3)});

    const Result frozen = Pipeline(fullWithFrozen({0})).run(cnf);
    ASSERT_TRUE(frozen.satisfiable_possible);
    EXPECT_EQ(frozen.mapLiteral(mkLit(0)).kind,
              MappedLit::Kind::Free);
    EXPECT_EQ(frozen.eliminated[0], 0);

    const Result control =
        Pipeline(Options::preset(Strength::Full)).run(cnf);
    ASSERT_TRUE(control.satisfiable_possible);
    EXPECT_EQ(control.mapLiteral(mkLit(0)).kind,
              MappedLit::Kind::Eliminated)
        << "control run should eliminate x0 (test premise)";
}

TEST(Freeze, RootFixedFrozenVarReportsItsValue)
{
    // Freezing does not block formula-implied fixing: a unit clause
    // on a frozen variable still fixes it, and mapLiteral reports
    // True/False so callers can resolve assumptions against it.
    Cnf cnf(2);
    cnf.addClause(LitVec{mkLit(0)});
    cnf.addClause(LitVec{mkLit(0, true), mkLit(1)});
    const Result r = Pipeline(fullWithFrozen({0})).run(cnf);
    ASSERT_TRUE(r.satisfiable_possible);
    EXPECT_EQ(r.mapLiteral(mkLit(0)).kind, MappedLit::Kind::True);
    EXPECT_EQ(r.mapLiteral(mkLit(0, true)).kind,
              MappedLit::Kind::False);
}

TEST(Freeze, MapLiteralOutOfRangeIsFree)
{
    Cnf cnf(2);
    cnf.addClause(LitVec{mkLit(0), mkLit(1)});
    const Result r = Pipeline(fullWithFrozen({0})).run(cnf);
    const MappedLit m = r.mapLiteral(mkLit(7, true));
    EXPECT_EQ(m.kind, MappedLit::Kind::Free);
    EXPECT_EQ(m.lit, mkLit(7, true));
}

TEST(Freeze, AssumptionSolvingThroughMapAgreesWithDirect)
{
    // The contract end to end: simplify with the assumption
    // variables frozen, map each assumption literal, solve the
    // simplified formula under the mapped assumptions — the verdict
    // must match brute force on original + assumption units, and a
    // SAT model must extend to satisfy the original formula AND the
    // assumptions.
    Rng rng(31);
    int solved = 0;
    for (int round = 0; round < 60; ++round) {
        const int vars = 14;
        const Cnf cnf = sat::testing::randomCnf(
            vars, 30 + static_cast<int>(rng.below(28)), 3, rng);
        LitVec assumptions;
        std::vector<Var> frozen;
        const int depth = 1 + static_cast<int>(rng.below(4));
        for (int i = 0; i < depth; ++i) {
            const Var v = static_cast<Var>(rng.below(vars));
            assumptions.push_back(mkLit(v, rng.chance(0.5)));
            frozen.push_back(v);
        }

        Cnf direct = cnf;
        for (const Lit a : assumptions)
            direct.addClause(a);
        const bool expected =
            sat::bruteForceSolve(direct).satisfiable;

        const Result r = Pipeline(fullWithFrozen(frozen)).run(cnf);
        if (!r.satisfiable_possible) {
            EXPECT_FALSE(expected) << "round " << round;
            continue;
        }
        LitVec mapped;
        bool falsified = false;
        for (const Lit a : assumptions) {
            const MappedLit m = r.mapLiteral(a);
            ASSERT_NE(m.kind, MappedLit::Kind::Eliminated)
                << "frozen assumption var eliminated, round "
                << round;
            if (m.kind == MappedLit::Kind::False)
                falsified = true;
            else if (m.kind == MappedLit::Kind::Free)
                mapped.push_back(m.lit);
        }
        if (falsified) {
            EXPECT_FALSE(expected) << "round " << round;
            continue;
        }
        sat::Solver s;
        ASSERT_TRUE(s.loadCnf(r.cnf));
        const sat::lbool status = s.solveWithAssumptions(mapped);
        ASSERT_FALSE(status.isUndef());
        EXPECT_EQ(status.isTrue(), expected) << "round " << round;
        if (status.isTrue()) {
            const auto model = r.extendModel(s.boolModel());
            EXPECT_TRUE(direct.eval(model)) << "round " << round;
            ++solved;
        }
    }
    EXPECT_GT(solved, 5) << "suite never exercised the SAT path";
}

} // namespace
} // namespace hyqsat::simplify
