#include <gtest/gtest.h>

#include "simplify/reconstruction.h"

namespace hyqsat::simplify {
namespace {

using sat::Lit;
using sat::LitVec;
using sat::mkLit;

TEST(Reconstruction, EmptyStackLeavesModelAlone)
{
    ReconstructionStack rs;
    std::vector<bool> model{true, false, true};
    rs.extend(model);
    EXPECT_EQ(model, (std::vector<bool>{true, false, true}));
}

TEST(Reconstruction, UnitForcesWitness)
{
    ReconstructionStack rs;
    rs.pushUnit(mkLit(1, true)); // ~x1 fixed
    std::vector<bool> model{false, true, false};
    rs.extend(model);
    EXPECT_FALSE(model[1]);
    EXPECT_FALSE(model[0]);
    EXPECT_FALSE(model[2]);
}

TEST(Reconstruction, EquivalenceCopiesRepresentativeValue)
{
    // x0 := x1 substitution; whatever x1 ends up as, x0 follows.
    ReconstructionStack rs;
    rs.pushEquivalence(mkLit(0), mkLit(1));
    for (const bool rep_value : {false, true}) {
        std::vector<bool> model{!rep_value, rep_value};
        rs.extend(model);
        EXPECT_EQ(model[0], rep_value) << "rep=" << rep_value;
    }
}

TEST(Reconstruction, EquivalenceWithNegatedRepresentative)
{
    // x0 := ~x1 (p == q with q a negative literal).
    ReconstructionStack rs;
    rs.pushEquivalence(mkLit(0), mkLit(1, true));
    for (const bool rep_value : {false, true}) {
        std::vector<bool> model{rep_value, rep_value};
        rs.extend(model);
        EXPECT_EQ(model[0], !rep_value) << "rep=" << rep_value;
    }
}

TEST(Reconstruction, EliminationDefaultsToOppositeLiteral)
{
    // Eliminate x0, kept side {x0 v x1}: when the kept clause is
    // already satisfied by x1, the default ~x0 applies.
    ReconstructionStack rs;
    rs.pushElimination(mkLit(0), {LitVec{mkLit(0), mkLit(1)}});
    std::vector<bool> model{true, true};
    rs.extend(model);
    EXPECT_FALSE(model[0]);
    EXPECT_TRUE(model[1]);
}

TEST(Reconstruction, EliminationFlipsWhenKeptClauseViolated)
{
    // Same elimination, but x1 false: the kept clause forces x0.
    ReconstructionStack rs;
    rs.pushElimination(mkLit(0), {LitVec{mkLit(0), mkLit(1)}});
    std::vector<bool> model{false, false};
    rs.extend(model);
    EXPECT_TRUE(model[0]);
    EXPECT_FALSE(model[1]);
}

TEST(Reconstruction, ReverseReplayHandlesChainedRemovals)
{
    // First x0 is eliminated with kept side {x0 v ~x1}, then x1 is
    // substituted by x2 (x1 == x2). Reverse replay must assign x1
    // (the later entry) before evaluating the x0 clauses.
    ReconstructionStack rs;
    rs.pushElimination(mkLit(0), {LitVec{mkLit(0), mkLit(1, true)}});
    rs.pushEquivalence(mkLit(1), mkLit(2));
    for (const bool x2 : {false, true}) {
        std::vector<bool> model{false, !x2, x2};
        rs.extend(model);
        EXPECT_EQ(model[1], x2) << "x2=" << x2;
        // x0 v ~x1 must hold after replay.
        EXPECT_TRUE(model[0] || !model[1]) << "x2=" << x2;
    }
}

TEST(Reconstruction, SizeTracksPushes)
{
    ReconstructionStack rs;
    EXPECT_TRUE(rs.empty());
    rs.pushUnit(mkLit(0));
    rs.pushEquivalence(mkLit(1), mkLit(2));
    rs.pushElimination(mkLit(3), {LitVec{mkLit(3), mkLit(4)},
                                  LitVec{mkLit(3), mkLit(5)}});
    // 1 unit + 2 equivalence halves + 2 kept clauses + 1 default.
    EXPECT_EQ(rs.size(), 6u);
}

} // namespace
} // namespace hyqsat::simplify
