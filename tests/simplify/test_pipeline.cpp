#include <gtest/gtest.h>

#include <string>

#include "sat/brute_force.h"
#include "sat/solver.h"
#include "simplify/pipeline.h"
#include "tests/sat/helpers.h"
#include "util/metrics.h"

namespace hyqsat::simplify {
namespace {

using sat::Cnf;
using sat::mkLit;

TEST(PipelineStrength, NamesRoundTrip)
{
    for (const Strength s :
         {Strength::Off, Strength::Light, Strength::Full}) {
        Strength parsed;
        ASSERT_TRUE(parseStrength(strengthName(s), parsed));
        EXPECT_EQ(parsed, s);
    }
    Strength out;
    EXPECT_FALSE(parseStrength("", out));
    EXPECT_FALSE(parseStrength("medium", out));
    EXPECT_FALSE(parseStrength("Light", out));
}

TEST(PipelineStrength, PresetsArmExpectedPasses)
{
    const Options off = Options::preset(Strength::Off);
    EXPECT_EQ(off.max_rounds, 0);

    const Options light = Options::preset(Strength::Light);
    EXPECT_TRUE(light.unit_propagation);
    EXPECT_TRUE(light.equivalent_literals);
    EXPECT_FALSE(light.elimination);
    EXPECT_FALSE(light.probing);
    EXPECT_FALSE(light.vivification);

    const Options full = Options::preset(Strength::Full);
    EXPECT_TRUE(full.elimination);
    EXPECT_TRUE(full.probing);
    EXPECT_TRUE(full.vivification);
    EXPECT_EQ(full.max_resolvent_len, 3);
}

TEST(Pipeline, OffReturnsInputVerbatim)
{
    Cnf cnf(3);
    cnf.addClause(mkLit(0), mkLit(1));
    cnf.addClause(mkLit(0), mkLit(1), mkLit(2)); // subsumed, if run
    const Result r =
        Pipeline(Options::preset(Strength::Off)).run(cnf);
    EXPECT_TRUE(r.satisfiable_possible);
    EXPECT_EQ(r.cnf.numClauses(), cnf.numClauses());
    EXPECT_EQ(r.stats.work(), 0);
    EXPECT_TRUE(r.reconstruction.empty());
}

TEST(Pipeline, EquivalentLiteralsCollapseBinaryCycle)
{
    // x0 -> x1 -> x2 -> x0: one SCC, two variables substituted.
    Cnf cnf(4);
    cnf.addClause(mkLit(0, true), mkLit(1));
    cnf.addClause(mkLit(1, true), mkLit(2));
    cnf.addClause(mkLit(2, true), mkLit(0));
    cnf.addClause(mkLit(0), mkLit(3)); // keeps the formula nontrivial
    const Result r =
        Pipeline(Options::preset(Strength::Light)).run(cnf);
    EXPECT_TRUE(r.satisfiable_possible);
    EXPECT_EQ(r.stats.equivalences, 2);
    // Models of the reduced formula map back to the original.
    sat::Solver s;
    ASSERT_TRUE(s.loadCnf(r.cnf));
    ASSERT_TRUE(s.solve().isTrue());
    const auto model = r.extendModel(s.boolModel());
    EXPECT_TRUE(cnf.eval(model));
}

TEST(Pipeline, ContradictorySccIsUnsat)
{
    // x0 == ~x0 through binaries: (~x0 v x1)(~x1 v ~x0)(x0 v x1)
    // forces x1 == true, x0 both ways -> UNSAT via SCC/UP.
    Cnf cnf(2);
    cnf.addClause(mkLit(0, true), mkLit(1));
    cnf.addClause(mkLit(1, true), mkLit(0, true));
    cnf.addClause(mkLit(0), mkLit(1));
    cnf.addClause(mkLit(1, true), mkLit(0));
    const Result r =
        Pipeline(Options::preset(Strength::Light)).run(cnf);
    EXPECT_FALSE(r.satisfiable_possible);
    EXPECT_FALSE(sat::bruteForceSolve(cnf).satisfiable);
}

TEST(Pipeline, ProbingFindsFailedLiteral)
{
    // Assuming x0 propagates x1 and ~x1 -> x0 must be false.
    Cnf cnf(3);
    cnf.addClause(mkLit(0, true), mkLit(1));
    cnf.addClause(mkLit(0, true), mkLit(1, true));
    cnf.addClause(mkLit(0), mkLit(2)); // so x2 survives
    Options o = Options::preset(Strength::Light);
    o.probing = true;
    o.equivalent_literals = false; // isolate the probing pass
    o.subsumption = false;
    o.self_subsumption = false;
    const Result r = Pipeline(o).run(cnf);
    EXPECT_TRUE(r.satisfiable_possible);
    EXPECT_GE(r.stats.failed_literals, 1);
    bool x0_fixed_false = false;
    for (const sat::Lit p : r.fixed)
        x0_fixed_false |= (p.var() == 0 && p.sign());
    EXPECT_TRUE(x0_fixed_false);
}

TEST(Pipeline, VivificationShortensRedundantClause)
{
    // (~x0 v x1) makes x2 redundant in (~x0 v x1 v x2): assuming
    // x0 and ~x1 falsifies the binary immediately.
    Cnf cnf(3);
    cnf.addClause(mkLit(0, true), mkLit(1));
    cnf.addClause(mkLit(0, true), mkLit(1), mkLit(2));
    Options o;
    o.vivification = true;
    o.subsumption = false; // subsumption would remove it outright
    o.self_subsumption = false;
    o.equivalent_literals = false;
    const Result r = Pipeline(o).run(cnf);
    EXPECT_TRUE(r.satisfiable_possible);
    EXPECT_GE(r.stats.vivified + r.stats.subsumed, 1);
    for (int ci = 0; ci < r.cnf.numClauses(); ++ci)
        EXPECT_LE(r.cnf.clause(ci).size(), 2u);
    EXPECT_EQ(sat::bruteForceSolve(cnf).satisfiable,
              sat::bruteForceSolve(r.cnf).satisfiable);
}

TEST(Pipeline, EliminationRemovesPureAndBoundedVariables)
{
    // x2 occurs once per polarity; eliminating it resolves
    // (x0 v x2) with (~x2 v x1) into (x0 v x1).
    Cnf cnf(3);
    cnf.addClause(mkLit(0), mkLit(2));
    cnf.addClause(mkLit(2, true), mkLit(1));
    Options o;
    o.elimination = true;
    o.equivalent_literals = false;
    const Result r = Pipeline(o).run(cnf);
    EXPECT_TRUE(r.satisfiable_possible);
    EXPECT_GE(r.stats.eliminated, 1);
    // Whatever the reduced formula, reconstruction must recover a
    // model of the original.
    sat::Solver s;
    if (r.cnf.numClauses() > 0) {
        ASSERT_TRUE(s.loadCnf(r.cnf));
    }
    std::vector<bool> model(
        static_cast<std::size_t>(r.cnf.numVars()), false);
    if (r.cnf.numClauses() > 0 && s.solve().isTrue())
        model = s.boolModel();
    EXPECT_TRUE(cnf.eval(r.extendModel(model)));
}

TEST(Pipeline, FullPreservesThreeSatShape)
{
    Rng rng(21);
    for (int round = 0; round < 8; ++round) {
        const Cnf cnf = sat::testing::randomCnf(20, 85, 3, rng);
        const Result r =
            Pipeline(Options::preset(Strength::Full)).run(cnf);
        if (!r.satisfiable_possible)
            continue;
        EXPECT_TRUE(r.cnf.isThreeSat()) << "round " << round;
    }
}

TEST(Pipeline, PublishesMetrics)
{
    Cnf cnf(3);
    cnf.addClause(mkLit(0));
    cnf.addClause(mkLit(0, true), mkLit(1));
    cnf.addClause(mkLit(1), mkLit(2));
    cnf.addClause(mkLit(1), mkLit(2), mkLit(0, true)); // subsumed
    MetricsRegistry registry;
    Pipeline(Options::preset(Strength::Light), &registry).run(cnf);
    EXPECT_EQ(registry.counter("simplify.runs")->value(), 1u);
    EXPECT_GE(registry.counter("simplify.units")->value(), 2u);
    EXPECT_GE(registry.counter("simplify.clauses_removed")->value(),
              1u);
    EXPECT_GT(registry.timer("simplify.time")->count(), 0u);
}

TEST(Pipeline, UnsatFormulaEmitsEmptyClause)
{
    Cnf cnf(2);
    cnf.addClause(mkLit(0));
    cnf.addClause(mkLit(0, true), mkLit(1));
    cnf.addClause(mkLit(1, true));
    const Result r =
        Pipeline(Options::preset(Strength::Light)).run(cnf);
    EXPECT_FALSE(r.satisfiable_possible);
    ASSERT_EQ(r.cnf.numClauses(), 1);
    EXPECT_TRUE(r.cnf.clause(0).empty());
}

TEST(Pipeline, StatsReportFormulaSizes)
{
    Rng rng(33);
    const Cnf cnf = sat::testing::randomCnf(15, 60, 3, rng);
    const Result r =
        Pipeline(Options::preset(Strength::Full)).run(cnf);
    EXPECT_EQ(r.stats.clauses_in, cnf.numClauses());
    EXPECT_EQ(r.stats.vars_in, cnf.numVars());
    if (r.satisfiable_possible) {
        EXPECT_EQ(r.stats.clauses_out, r.cnf.numClauses());
        EXPECT_LE(r.stats.vars_out, r.stats.vars_in);
    }
}

} // namespace
} // namespace hyqsat::simplify
