#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "anneal/async_sampler.h"
#include "util/cancel.h"
#include "util/timer.h"

namespace hyqsat::anneal {
namespace {

/**
 * Inner sampler that takes a long, uninterruptible time per sample —
 * the stand-in for a remote QPU round trip stuck on the wire. The
 * AsyncSampler wrapper must let a cancelled caller out of wait()
 * while this is still grinding on the worker thread.
 */
class SlowSampler : public SyncSampler
{
  public:
    explicit SlowSampler(std::chrono::milliseconds per_sample)
        : per_sample_(per_sample)
    {
    }

    const char *name() const override { return "slow"; }

  protected:
    AnnealSample
    compute(const SampleRequest &) override
    {
        std::this_thread::sleep_for(per_sample_);
        return AnnealSample{};
    }

  private:
    std::chrono::milliseconds per_sample_;
};

TEST(AsyncSamplerCancel, DestructionRacesStrandRetirement)
{
    // Destroy the sampler the instant jobs are in flight, many times
    // over: the destructor waits for the drain strand to retire, and
    // the strand's final done_cv_ notify must happen before it drops
    // the mutex — a notify after the unlock can land on a destroyed
    // condition variable (caught by TSAN/ASAN builds).
    for (int round = 0; round < 200; ++round) {
        AsyncSampler sampler(
            std::make_unique<SlowSampler>(std::chrono::milliseconds(0)),
            AsyncSampler::Options{});
        for (int j = 0; j < 3; ++j)
            sampler.submit(SampleRequest{});
        // dtor runs here, racing the drain loop's retirement
    }
}

TEST(AsyncSamplerCancel, WaitReturnsWithinPollIntervalAfterStop)
{
    // ISSUE 2 cancellation satellite: a portfolio worker blocked in
    // wait() must observe the shared stop token and return promptly
    // instead of hanging until the in-flight sample completes.
    StopToken stop;
    AsyncSampler::Options opts;
    opts.depth = 2;
    opts.stop = &stop;
    opts.stop_poll_us = 500.0;

    constexpr auto kSlow = std::chrono::milliseconds(400);
    AsyncSampler sampler(std::make_unique<SlowSampler>(kSlow), opts);
    sampler.submit(SampleRequest{}); // worker starts grinding
    sampler.submit(SampleRequest{}); // second job queued behind it

    std::thread tripper([&stop] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        stop.requestStop();
    });

    Timer timer;
    std::vector<SampleCompletion> out;
    sampler.wait(out);
    const double waited_s = timer.seconds();
    tripper.join();

    // The trip lands ~20 ms in; wait() must escape within a few poll
    // intervals, far before the 400 ms sample (or the 800 ms queue)
    // finishes. Generous bound for sanitizer builds.
    EXPECT_LT(waited_s, 0.35)
        << "wait() hung past the in-flight sample";
    EXPECT_TRUE(out.empty())
        << "nothing had completed when the token tripped";

    // Destruction joins the worker even with a job still queued.
}

TEST(AsyncSamplerCancel, QueuedJobsDroppedAfterStop)
{
    // Once the token trips, queued-but-unstarted jobs are retired
    // without being computed: wait() drains to "nothing in flight"
    // in bounded time instead of paying one slow sample per job.
    StopToken stop;
    AsyncSampler::Options opts;
    opts.depth = 4;
    opts.stop = &stop;
    opts.stop_poll_us = 500.0;

    constexpr auto kSlow = std::chrono::milliseconds(100);
    AsyncSampler sampler(std::make_unique<SlowSampler>(kSlow), opts);
    for (int i = 0; i < 4; ++i)
        sampler.submit(SampleRequest{});
    stop.requestStop();

    Timer timer;
    std::vector<SampleCompletion> out;
    sampler.wait(out);
    // At most the one already-started sample is paid for; the three
    // queued jobs must be dropped, not computed (4 x 100 ms).
    EXPECT_LT(timer.seconds(), 0.3);
    EXPECT_LE(out.size(), 1u);
}

TEST(AsyncSamplerCancel, NoTokenStillBlocksUntilCompletion)
{
    // Without a stop token wait() keeps its blocking contract.
    AsyncSampler::Options opts;
    opts.depth = 2;
    AsyncSampler sampler(
        std::make_unique<SlowSampler>(std::chrono::milliseconds(30)),
        opts);
    sampler.submit(SampleRequest{});
    std::vector<SampleCompletion> out;
    sampler.wait(out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(sampler.inFlight(), 0);
}

} // namespace
} // namespace hyqsat::anneal
