/**
 * @file
 * Seed-golden determinism tests for the annealing hot-loop rewrite.
 *
 * The pinned table below was captured from the pre-CSR sampler (the
 * implementation now frozen in sa_reference.h) on dyadic fixtures —
 * every coefficient a multiple of 0.25 — so all arithmetic is exact
 * and "identical" means identical: spin vector hash, energy, and the
 * caller Rng's post-sample stream position. Any change to proposal
 * order, acceptance rule, RNG consumption (draw iff dE > 0), or the
 * greedy finish shows up here as a hard failure.
 *
 * On top of the pinned table: bit-identity against the reference
 * sampler on continuous (non-dyadic) models — exercising the
 * boundary-band recompute guard — and the multi-read contracts
 * (num_reads=1 equivalence, best-of-N monotonicity, caller-stream
 * invariance under extra reads).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "anneal/sa_reference.h"
#include "anneal/sa_sampler.h"
#include "qubo/encoder.h"
#include "qubo/qubo.h"
#include "sat/types.h"
#include "util/rng.h"

namespace hyqsat::anneal {
namespace {

std::uint64_t
fnvSpins(const std::vector<std::int8_t> &s)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::int8_t v : s) {
        h ^= static_cast<std::uint8_t>(v);
        h *= 0x100000001b3ull;
    }
    return h;
}

/**
 * Dyadic random Ising model (all coefficients multiples of 0.25, so
 * every energy/delta is exact in binary floating point); optionally
 * chains of 3 registered as groups, with ferromagnetic -1.0 chain
 * couplings, matching the embedded-problem shape.
 */
qubo::IsingModel
dyadicModel(int n, int edges, std::uint64_t seed,
            std::vector<std::vector<int>> *groups_out)
{
    Rng rng(seed);
    qubo::IsingModel m(n);
    m.addOffset(static_cast<double>(rng.range(-8, 8)) * 0.25);
    for (int i = 0; i < n; ++i)
        m.addField(i, static_cast<double>(rng.range(-8, 8)) * 0.25);
    for (int e = 0; e < edges; ++e) {
        const int i = static_cast<int>(rng.below(n));
        const int j = static_cast<int>(rng.below(n));
        if (i == j)
            continue;
        m.addCoupling(i, j,
                      static_cast<double>(rng.range(-4, 4)) * 0.25);
    }
    if (groups_out) {
        for (int k = 0; 3 * k + 2 < n && k < n / 5; ++k) {
            const int a = 3 * k, b = 3 * k + 1, c = 3 * k + 2;
            groups_out->push_back({a, b, c});
            m.addCoupling(a, b, -1.0);
            m.addCoupling(b, c, -1.0);
        }
    }
    return m;
}

/** Continuous-coefficient model: exercises the boundary-band guard. */
qubo::IsingModel
continuousModel(int n, int edges, std::uint64_t seed,
                std::vector<std::vector<int>> *groups_out)
{
    Rng rng(seed);
    qubo::IsingModel m(n);
    m.addOffset(rng.uniform() * 2.0 - 1.0);
    for (int i = 0; i < n; ++i)
        m.addField(i, rng.uniform() * 2.0 - 1.0);
    for (int e = 0; e < edges; ++e) {
        const int i = static_cast<int>(rng.below(n));
        const int j = static_cast<int>(rng.below(n));
        if (i == j)
            continue;
        m.addCoupling(i, j, rng.uniform() - 0.5);
    }
    if (groups_out) {
        for (int k = 0; 3 * k + 2 < n && k < n / 5; ++k) {
            const int a = 3 * k, b = 3 * k + 1, c = 3 * k + 2;
            groups_out->push_back({a, b, c});
            m.addCoupling(a, b, -1.0);
            m.addCoupling(b, c, -1.0);
        }
    }
    return m;
}

struct GoldenRow
{
    int cfg;
    int rep;
    std::uint64_t spins_fnv;
    double energy;
    std::uint64_t rng_next; ///< rng.next() right after the sample
};

struct GoldenCfg
{
    int n;
    int edges;
    std::uint64_t mseed;
    bool groups;
    int sweeps;
    bool greedy;
};

constexpr GoldenCfg kGoldenCfgs[] = {
    {24, 72, 0xD1AD1C01ull, false, 64, false},
    {24, 72, 0xD1AD1C01ull, false, 64, true},
    {30, 90, 0xD1AD1C02ull, true, 64, false},
    {30, 90, 0xD1AD1C02ull, true, 64, true},
};

/**
 * Captured from the pre-rewrite sampler (commit before the CSR hot
 * loop landed) with tools run against the seed build — do NOT
 * regenerate from the current sampler; the whole point is that these
 * survive the rewrite unchanged.
 */
constexpr GoldenRow kGoldenRows[] = {
    {0, 0, 0x1a7d6b7e3a6968a9ull, -36.75, 0x0e3f8b6514208a6full},
    {0, 1, 0xb17c093732c7a9b1ull, -35.25, 0xd3c0cd9d40bb3d97ull},
    {0, 2, 0x1c6e13740133f839ull, -37.25, 0x2e70d137e6097aacull},
    {1, 0, 0x1a7d6b7e3a6968a9ull, -36.75, 0x0e3f8b6514208a6full},
    {1, 1, 0xb17c093732c7a9b1ull, -35.25, 0xd3c0cd9d40bb3d97ull},
    {1, 2, 0x1c6e13740133f839ull, -37.25, 0x2e70d137e6097aacull},
    {2, 0, 0x1bf508e2632ebf95ull, -49, 0x79340aafa8dfafd4ull},
    {2, 1, 0x1bf508e2632ebf95ull, -49, 0x61f09762ab037511ull},
    {2, 2, 0x1bf508e2632ebf95ull, -49, 0x60ab423546757ceaull},
    {3, 0, 0x1bf508e2632ebf95ull, -49, 0x79340aafa8dfafd4ull},
    {3, 1, 0x1bf508e2632ebf95ull, -49, 0x61f09762ab037511ull},
    {3, 2, 0x1bf508e2632ebf95ull, -49, 0x60ab423546757ceaull},
};

Rng
repRng(int rep)
{
    return Rng(0xA11CEull + static_cast<std::uint64_t>(rep) * 7919);
}

TEST(SaGolden, PinnedSeedTableSurvivesRewrite)
{
    for (const GoldenRow &row : kGoldenRows) {
        const GoldenCfg &cfg = kGoldenCfgs[row.cfg];
        std::vector<std::vector<int>> groups;
        const auto model = dyadicModel(cfg.n, cfg.edges, cfg.mseed,
                                       cfg.groups ? &groups : nullptr);
        SaSampler sampler(model);
        if (cfg.groups)
            sampler.setGroups(groups);
        SaOptions opts;
        opts.sweeps = cfg.sweeps;
        opts.greedy_finish = cfg.greedy;

        Rng rng = repRng(row.rep);
        const SaResult r = sampler.sample(opts, rng);
        EXPECT_EQ(fnvSpins(r.spins), row.spins_fnv)
            << "cfg " << row.cfg << " rep " << row.rep;
        // Dyadic coefficients: the running energy must be EXACT.
        EXPECT_EQ(r.energy, row.energy)
            << "cfg " << row.cfg << " rep " << row.rep;
        EXPECT_EQ(rng.next(), row.rng_next)
            << "cfg " << row.cfg << " rep " << row.rep
            << " (RNG stream position diverged)";
    }
}

TEST(SaGolden, BitIdenticalToReferenceOnContinuousModels)
{
    // Continuous coefficients make the incremental local fields drift
    // from fresh sums in the last ulps; the boundary-band guard must
    // keep every accept/reject decision (and so the spins and the
    // draw stream) identical to the reference all the same.
    for (std::uint64_t mseed = 1; mseed <= 6; ++mseed) {
        const bool with_groups = (mseed % 2) == 0;
        std::vector<std::vector<int>> groups;
        const auto model =
            continuousModel(26, 80, 0xC0FFEEull + mseed * 131,
                            with_groups ? &groups : nullptr);
        SaSampler sampler(model);
        SaReferenceSampler reference(model);
        if (with_groups) {
            sampler.setGroups(groups);
            reference.setGroups(groups);
        }
        for (const bool greedy : {false, true}) {
            SaOptions opts;
            opts.sweeps = 48;
            opts.greedy_finish = greedy;
            Rng rng_new(0xBEEF00ull + mseed);
            Rng rng_ref(0xBEEF00ull + mseed);
            const SaResult got = sampler.sample(opts, rng_new);
            const SaResult want = reference.sample(opts, rng_ref);
            ASSERT_EQ(got.spins, want.spins)
                << "mseed " << mseed << " greedy " << greedy;
            EXPECT_EQ(rng_new.next(), rng_ref.next())
                << "mseed " << mseed << " greedy " << greedy;
            // The running energy is accumulated delta by delta, the
            // reference re-scans at the end: on continuous models
            // they agree to rounding only (the dyadic golden table
            // pins the exact-arithmetic case).
            EXPECT_NEAR(got.energy, want.energy, 1e-9);
            EXPECT_NEAR(got.energy, sampler.energy(got.spins), 1e-9);
        }
    }
}

TEST(SaGolden, StatsCountWork)
{
    const auto model = dyadicModel(20, 60, 0xD1AD1C05ull, nullptr);
    SaSampler sampler(model);
    SaOptions opts;
    opts.sweeps = 32;
    Rng rng(7);
    const SaResult r = sampler.sample(opts, rng);
    EXPECT_EQ(r.stats.sweeps, 32u);
    EXPECT_EQ(r.stats.reads, 1u);
    // Every sweep proposes every spin at least once.
    EXPECT_GE(r.stats.flips_attempted, 32u * 20u);
    EXPECT_GT(r.stats.flips_accepted, 0u);
    EXPECT_LE(r.stats.flips_accepted, r.stats.flips_attempted);
}

// ----------------------------------------------------------------------
// Multi-read contracts
// ----------------------------------------------------------------------

/** Random 3-SAT clauses encoded to the logical Ising model. */
qubo::IsingModel
encodedSatModel(int vars, int clauses, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<sat::LitVec> cls;
    for (int c = 0; c < clauses; ++c) {
        sat::LitVec cl;
        while (cl.size() < 3) {
            const auto v = static_cast<sat::Var>(rng.below(vars));
            bool dup = false;
            for (const sat::Lit &l : cl)
                dup = dup || l.var() == v;
            if (!dup)
                cl.push_back(sat::mkLit(v, rng.chance(0.5)));
        }
        cls.push_back(cl);
    }
    return quboToIsing(qubo::encodeClauses(cls).normalized);
}

TEST(SaGolden, CallerStreamInvariantUnderExtraReads)
{
    const auto model = encodedSatModel(12, 50, 0xF1608ull);
    SaSampler sampler(model);
    SaOptions single;
    single.sweeps = 48;
    SaOptions multi = single;
    multi.num_reads = 8;

    Rng rng_single(0x5111ull);
    Rng rng_multi(0x5111ull);
    const SaResult one = sampler.sample(single, rng_single);
    const auto all = sampler.sampleAll(multi, rng_multi);
    ASSERT_EQ(all.size(), 8u);

    // Read 0 runs on the caller's stream and the stream is copied
    // back: afterwards the caller cannot tell how many reads ran.
    EXPECT_EQ(rng_single.next(), rng_multi.next());

    // Best-first order, with the front aggregating all reads' work.
    for (std::size_t k = 1; k < all.size(); ++k)
        EXPECT_LE(all[k - 1].energy, all[k].energy);
    EXPECT_EQ(all.front().stats.reads, 8u);
    EXPECT_GE(all.front().stats.flips_attempted,
              8 * one.stats.flips_attempted / 2);
}

TEST(SaGolden, BestOfNIsMonotone)
{
    // Because read 0 IS the single-read sample, best-of-8 can never
    // return a worse energy than num_reads=1 from the same Rng state.
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        const auto model =
            encodedSatModel(14, 58, 0xF1608ull + seed * 977);
        SaSampler sampler(model);
        SaOptions single;
        single.sweeps = 40;
        SaOptions multi = single;
        multi.num_reads = 8;

        Rng rng_single(0xAB0ull + seed);
        Rng rng_multi(0xAB0ull + seed);
        const SaResult one = sampler.sample(single, rng_single);
        const SaResult best = sampler.sample(multi, rng_multi);
        EXPECT_LE(best.energy, one.energy) << "seed " << seed;
        // And every returned sample is self-consistent (running
        // energy vs re-scan: rounding only).
        EXPECT_NEAR(best.energy, sampler.energy(best.spins), 1e-9);
    }
}

TEST(SaGolden, NumReadsOneIsIdenticalThroughSampleAll)
{
    const auto model = dyadicModel(24, 72, 0xD1AD1C01ull, nullptr);
    SaSampler sampler(model);
    SaOptions opts;
    opts.sweeps = 64;
    Rng a(42), b(42);
    const SaResult direct = sampler.sample(opts, a);
    const auto all = sampler.sampleAll(opts, b);
    ASSERT_EQ(all.size(), 1u);
    EXPECT_EQ(direct.spins, all.front().spins);
    EXPECT_EQ(direct.energy, all.front().energy);
    EXPECT_EQ(a.next(), b.next());
}

} // namespace
} // namespace hyqsat::anneal
