#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "anneal/annealer.h"
#include "anneal/sa_batch.h"
#include "anneal/sa_sampler.h"
#include "chimera/chimera.h"
#include "embed/hyqsat_embedder.h"
#include "util/simd.h"

namespace hyqsat::anneal {
namespace {

/** Random test model: fields + ~60% dense couplings. */
qubo::IsingModel
randomModel(int n, std::uint64_t seed)
{
    qubo::IsingModel m(n);
    Rng setup(seed);
    for (int i = 0; i < n; ++i)
        m.addField(i, setup.gaussian(0, 1));
    for (int i = 0; i < n; ++i)
        for (int j = i + 1; j < n; ++j)
            if (setup.chance(0.6))
                m.addCoupling(i, j, setup.gaussian(0, 1));
    return m;
}

// ----------------------------------------------------------------------
// BlockRng: seed-golden tables for the batched RNG stream
// ----------------------------------------------------------------------

TEST(BlockRng, GoldenWordsSeedZero)
{
    const BlockRng rng(0);
    EXPECT_EQ(rng.wordAt(0), 0xe220a8397b1dcdafull);
    EXPECT_EQ(rng.wordAt(1), 0x6e789e6aa1b965f4ull);
    EXPECT_EQ(rng.wordAt(2), 0x06c45d188009454full);
    EXPECT_EQ(rng.wordAt(3), 0xf88bb8a8724c81ecull);
}

TEST(BlockRng, GoldenWordsSeed42)
{
    const BlockRng rng(42);
    EXPECT_EQ(rng.wordAt(0), 0xbdd732262feb6e95ull);
    EXPECT_EQ(rng.wordAt(1), 0x28efe333b266f103ull);
    EXPECT_EQ(rng.wordAt(2), 0x47526757130f9f52ull);
    EXPECT_EQ(rng.wordAt(3), 0x581ce1ff0e4ae394ull);
}

TEST(BlockRng, GoldenUniforms)
{
    const BlockRng rng(42);
    EXPECT_DOUBLE_EQ(rng.uniformAt(0), 0.7415648787718233);
    EXPECT_DOUBLE_EQ(rng.uniformAt(1), 0.1599103928769201);
    EXPECT_DOUBLE_EQ(rng.uniformAt(2), 0.27860113025513866);
    EXPECT_DOUBLE_EQ(rng.uniformAt(3), 0.34419071652363753);
    for (int i = 0; i < 256; ++i) {
        const double u = rng.uniformAt(static_cast<std::uint64_t>(i));
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(BlockRng, TakeMatchesRandomAccessAcrossBlockBoundaries)
{
    // The sequential block-buffered stream is position-for-position
    // the counter-addressed stream, regardless of chunking.
    BlockRng seq(7);
    const BlockRng ra(7);
    std::uint64_t pos = 0;
    std::vector<double> chunk;
    for (std::size_t size : {1u, 7u, 64u, 1000u, 1024u, 513u, 3u}) {
        chunk.resize(size);
        EXPECT_EQ(seq.cursor(), pos);
        seq.take(chunk.data(), size);
        for (std::size_t i = 0; i < size; ++i)
            ASSERT_DOUBLE_EQ(chunk[i], ra.uniformAt(pos + i))
                << "pos " << pos + i;
        pos += size;
    }
}

// ----------------------------------------------------------------------
// Lockstep kernel: determinism + cross-ISA bit-equality
// ----------------------------------------------------------------------

/** Compiled form + groups for a model (optionally chained pairs). */
SaCompiled
compiledWithGroups(const qubo::IsingModel &m, bool with_groups)
{
    SaCompiled c = SaCompiled::build(m, /*include_zero=*/false);
    if (with_groups) {
        std::vector<std::vector<int>> groups;
        for (int i = 0; i + 1 < c.numSpins(); i += 2)
            groups.push_back({i, i + 1});
        c.compileGroups(groups);
    }
    return c;
}

std::vector<SaResult>
runLockstep(const SaCompiled &c, const SaOptions &opts,
            std::uint64_t base, simd::Isa isa)
{
    return sampleLockstep(c, c.csr.h.data(), c.csr.w.data(), opts,
                          base, isa);
}

TEST(SaBatch, DeterministicAcrossCalls)
{
    const auto m = randomModel(24, 11);
    const auto c = compiledWithGroups(m, true);
    SaOptions opts;
    opts.sweeps = 64;
    opts.num_reads = 6;
    const auto a = runLockstep(c, opts, 123, simd::Isa::Scalar);
    const auto b = runLockstep(c, opts, 123, simd::Isa::Scalar);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t r = 0; r < a.size(); ++r) {
        EXPECT_EQ(a[r].spins, b[r].spins);
        EXPECT_EQ(a[r].energy, b[r].energy);
        EXPECT_EQ(a[r].stats.flips_accepted,
                  b[r].stats.flips_accepted);
    }
    const auto other = runLockstep(c, opts, 124, simd::Isa::Scalar);
    bool any_diff = false;
    for (std::size_t r = 0; r < a.size(); ++r)
        any_diff |= a[r].spins != other[r].spins;
    EXPECT_TRUE(any_diff) << "different seeds produced equal runs";
}

TEST(SaBatch, ScalarAndVectorKernelsAreBitIdentical)
{
    // The property test of the determinism contract: through whole
    // accepted-flip sequences (sweeps + block moves + greedy), EVERY
    // vector tier the host can execute must reproduce the scalar
    // fallback bit for bit — spins, energies, per-lane counters.
    const simd::Isa detected = simd::detectIsa();
    std::vector<simd::Isa> tiers;
    for (const simd::Isa cand :
         {simd::Isa::Avx2, simd::Isa::Neon, simd::Isa::Avx512}) {
        if (simd::resolveIsa(cand, detected) == cand)
            tiers.push_back(cand);
    }
    if (tiers.empty())
        GTEST_SKIP() << "host has no vector kernel to compare";

    for (const simd::Isa active : tiers) {
        for (const bool with_groups : {false, true}) {
            for (const int reads : {2, 5, 8}) {
                for (std::uint64_t seed = 1; seed <= 4; ++seed) {
                    const auto m =
                        randomModel(20 + static_cast<int>(seed) * 3,
                                    100 + seed);
                    const auto c = compiledWithGroups(m, with_groups);
                    SaOptions opts;
                    opts.sweeps = 48;
                    opts.num_reads = reads;
                    const auto s =
                        runLockstep(c, opts, seed, simd::Isa::Scalar);
                    const auto v = runLockstep(c, opts, seed, active);
                    ASSERT_EQ(s.size(), v.size());
                    for (std::size_t r = 0; r < s.size(); ++r) {
                        ASSERT_EQ(s[r].spins, v[r].spins)
                            << "isa=" << simd::isaName(active)
                            << " groups=" << with_groups
                            << " reads=" << reads << " seed=" << seed
                            << " read=" << r;
                        EXPECT_EQ(s[r].energy, v[r].energy);
                        EXPECT_EQ(s[r].stats.flips_attempted,
                                  v[r].stats.flips_attempted);
                        EXPECT_EQ(s[r].stats.flips_accepted,
                                  v[r].stats.flips_accepted);
                    }
                }
            }
        }
    }
}

TEST(SaBatch, PaddedLanesDoNotChangeRealReads)
{
    // reads=5 pads to 8 lanes; the padding must be inert — the same
    // run at reads=8 shares the shared-stream decisions only when
    // the real-lane set matches, so instead check reads=5 twice and
    // that each real read is deterministic and internally consistent.
    const auto m = randomModel(18, 33);
    const auto c = compiledWithGroups(m, true);
    SaOptions opts;
    opts.sweeps = 32;
    opts.num_reads = 5;
    const auto out = runLockstep(c, opts, 9, simd::Isa::Scalar);
    ASSERT_EQ(out.size(), 5u);
    for (const auto &r : out) {
        EXPECT_EQ(r.stats.reads, 1u);
        EXPECT_LE(r.stats.flips_accepted, r.stats.flips_attempted);
        EXPECT_DOUBLE_EQ(r.energy, c.csr.energyWith(r.spins.data(),
                                                    c.csr.h.data(),
                                                    c.csr.w.data()));
    }
}

TEST(SaBatch, LockstepFindsFerromagneticGroundState)
{
    const int n = 24;
    qubo::IsingModel m(n);
    for (int i = 0; i + 1 < n; ++i)
        m.addCoupling(i, i + 1, -1.0);
    m.addField(0, -0.5);
    const auto c = compiledWithGroups(m, false);
    SaOptions opts;
    opts.sweeps = 256;
    opts.num_reads = 8;
    const auto out = runLockstep(c, opts, 5, simd::Isa::Scalar);
    const auto best = std::min_element(
        out.begin(), out.end(),
        [](const SaResult &a, const SaResult &b) {
            return a.energy < b.energy;
        });
    EXPECT_DOUBLE_EQ(best->energy, -(n - 1) - 0.5);
    for (int i = 0; i < n; ++i)
        EXPECT_EQ(best->spins[i], 1) << "spin " << i;
}

// ----------------------------------------------------------------------
// SaSampler integration: the lockstep flag
// ----------------------------------------------------------------------

TEST(SaBatch, SampleAllLockstepSortsAndAggregates)
{
    const auto m = randomModel(20, 55);
    SaSampler sampler(m);
    SaOptions opts;
    opts.sweeps = 64;
    opts.num_reads = 8;
    opts.lockstep = true;
    Rng rng(77);
    const auto all = sampler.sampleAll(opts, rng);
    ASSERT_EQ(all.size(), 8u);
    for (std::size_t r = 1; r < all.size(); ++r)
        EXPECT_LE(all[r - 1].energy, all[r].energy);
    EXPECT_EQ(all.front().stats.reads, 8u);
    EXPECT_EQ(all.front().stats.sweeps, 8u * 64u);
    EXPECT_GT(all.front().stats.flips_accepted, 0u);
    EXPECT_LE(all.front().stats.flips_accepted,
              all.front().stats.flips_attempted);
    // Auxiliary reads keep their per-read counters (read-aware
    // accounting merged post-race into the front result).
    for (std::size_t r = 1; r < all.size(); ++r) {
        EXPECT_EQ(all[r].stats.reads, 1u);
        EXPECT_EQ(all[r].stats.sweeps, 64u);
    }
}

TEST(SaBatch, SingleReadIgnoresLockstepFlag)
{
    // num_reads=1 must stay on the frozen scalar contract even with
    // lockstep requested: identical sample, identical RNG stream.
    const auto m = randomModel(16, 60);
    SaSampler sampler(m);
    SaOptions plain;
    plain.sweeps = 48;
    SaOptions locked = plain;
    locked.lockstep = true;
    Rng a(5), b(5);
    const auto ra = sampler.sample(plain, a);
    const auto rb = sampler.sample(locked, b);
    EXPECT_EQ(ra.spins, rb.spins);
    EXPECT_EQ(ra.energy, rb.energy);
    EXPECT_EQ(a.next(), b.next());
}

TEST(SaBatch, LockstepConsumesExactlyOneCallerDraw)
{
    const auto m = randomModel(16, 61);
    SaSampler sampler(m);
    SaOptions opts;
    opts.sweeps = 32;
    opts.num_reads = 4;
    opts.lockstep = true;
    Rng rng(9), witness(9);
    (void)sampler.sampleAll(opts, rng);
    (void)witness.next();
    EXPECT_EQ(rng.next(), witness.next());
}

TEST(SaBatch, EnvOverrideToScalarKeepsResults)
{
    // HYQSAT_SIMD=scalar must not change sampled spins — the CPU
    // feature fallback is bit-identical by contract.
    const auto m = randomModel(20, 70);
    SaSampler sampler(m);
    SaOptions opts;
    opts.sweeps = 48;
    opts.num_reads = 8;
    opts.lockstep = true;
    Rng a(3);
    const auto fast = sampler.sampleAll(opts, a);
    ASSERT_EQ(setenv("HYQSAT_SIMD", "scalar", 1), 0);
    Rng b(3);
    const auto slow = sampler.sampleAll(opts, b);
    ASSERT_EQ(unsetenv("HYQSAT_SIMD"), 0);
    ASSERT_EQ(fast.size(), slow.size());
    for (std::size_t r = 0; r < fast.size(); ++r) {
        EXPECT_EQ(fast[r].spins, slow[r].spins);
        EXPECT_EQ(fast[r].energy, slow[r].energy);
    }
}

TEST(SaBatch, GroupMovesMatchWorkPoolSemantics)
{
    // Chained model through SaSampler::setGroups: the lockstep path
    // must honor block moves (a frustrated chain pair mixes poorly
    // without them). Smoke: best-of-8 finds the ground state.
    const int n = 16;
    qubo::IsingModel m(n);
    for (int i = 0; i + 1 < n; ++i)
        m.addCoupling(i, i + 1, -2.0); // strong chains of 2
    m.addField(0, -0.25);
    SaSampler sampler(m);
    std::vector<std::vector<int>> groups;
    for (int i = 0; i + 1 < n; i += 2)
        groups.push_back({i, i + 1});
    sampler.setGroups(groups);
    SaOptions opts;
    opts.sweeps = 128;
    opts.num_reads = 8;
    opts.lockstep = true;
    Rng rng(21);
    const auto best = sampler.sample(opts, rng);
    EXPECT_DOUBLE_EQ(best.energy, -2.0 * (n - 1) - 0.25);
}

// ----------------------------------------------------------------------
// Annealer integration: Options::reads_batch
// ----------------------------------------------------------------------

TEST(SaBatch, AnnealerReadsBatchSolvesAndCountsReads)
{
    const chimera::ChimeraGraph g(4, 4, 4);
    embed::HyQsatEmbedder embedder(g);
    const auto fx = embedder.embedQueue(
        {{sat::mkLit(0), sat::mkLit(1), sat::mkLit(2)}});

    QuantumAnnealer::Options opts;
    opts.noise = NoiseModel::noiseFree();
    opts.greedy_finish = true;
    opts.num_reads = 4;
    opts.reads_batch = true;
    QuantumAnnealer qa(g, opts);

    const auto s = qa.sample(fx.problem, fx.embedding);
    EXPECT_DOUBLE_EQ(s.clause_energy, 0.0);
    const SaStats &stats = qa.lastRunStats();
    EXPECT_EQ(stats.reads, 4u);
    EXPECT_GT(stats.sweeps, 0u);
    EXPECT_EQ(stats.sweeps % stats.reads, 0u)
        << "per-read sweeps must merge post-race";
}

} // namespace
} // namespace hyqsat::anneal
