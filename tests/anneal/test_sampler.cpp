#include <gtest/gtest.h>

#include "anneal/async_sampler.h"
#include "anneal/batch_sampler.h"
#include "anneal/sampler.h"
#include "embed/hyqsat_embedder.h"
#include "tests/sat/helpers.h"

namespace hyqsat::anneal {
namespace {

using sat::LitVec;
using sat::mkLit;

embed::QueueEmbedResult
embedFixture(const chimera::ChimeraGraph &g,
             const std::vector<LitVec> &clauses)
{
    embed::HyQsatEmbedder embedder(g);
    return embedder.embedQueue(clauses);
}

SampleRequest
requestFixture(const chimera::ChimeraGraph &g, std::uint64_t seed = 21)
{
    Rng rng(seed);
    const auto cnf = sat::testing::randomCnf(15, 32, 3, rng);
    const std::vector<LitVec> clauses(cnf.clauses().begin(),
                                      cnf.clauses().end());
    const auto fx = embedFixture(g, clauses);
    SampleRequest request;
    request.problem =
        std::make_shared<qubo::EncodedProblem>(fx.problem);
    request.embedding =
        std::make_shared<embed::Embedding>(fx.embedding);
    return request;
}

QuantumAnnealer::Options
noiseFreeOptions()
{
    QuantumAnnealer::Options opts;
    opts.noise = NoiseModel::noiseFree();
    opts.greedy_finish = true;
    return opts;
}

TEST(Sampler, QaSamplerMatchesDirectAnnealerBitForBit)
{
    const auto g = chimera::ChimeraGraph::dwave2000q();
    const auto request = requestFixture(g);

    QuantumAnnealer direct(g, noiseFreeOptions());
    QaSampler via_interface(g, noiseFreeOptions());

    for (int i = 0; i < 3; ++i) {
        const auto a =
            direct.sample(*request.problem, *request.embedding);
        const auto b = via_interface.sampleNow(request);
        EXPECT_EQ(a.node_bits, b.node_bits) << "sample " << i;
        EXPECT_DOUBLE_EQ(a.clause_energy, b.clause_energy);
        EXPECT_DOUBLE_EQ(a.physical_energy, b.physical_energy);
        EXPECT_DOUBLE_EQ(a.device_time_us, b.device_time_us);
    }
}

TEST(Sampler, QaSamplerHonorsLogicalRequests)
{
    const auto g = chimera::ChimeraGraph::dwave2000q();
    auto request = requestFixture(g);
    request.use_embedding = false;

    QuantumAnnealer direct(g, noiseFreeOptions());
    QaSampler via_interface(g, noiseFreeOptions());
    const auto a = direct.sampleLogical(*request.problem);
    const auto b = via_interface.sampleNow(request);
    EXPECT_EQ(a.node_bits, b.node_bits);
    EXPECT_DOUBLE_EQ(a.clause_energy, b.clause_energy);
}

TEST(Sampler, SyncSamplerTicketsAndInFlight)
{
    const auto g = chimera::ChimeraGraph::dwave2000q();
    const auto request = requestFixture(g);
    QaSampler sampler(g, noiseFreeOptions());

    EXPECT_EQ(sampler.capacity(), 1);
    EXPECT_EQ(sampler.inFlight(), 0);
    const auto t1 = sampler.submit(request);
    const auto t2 = sampler.submit(request);
    EXPECT_LT(t1, t2);
    EXPECT_EQ(sampler.inFlight(), 2);

    std::vector<SampleCompletion> done;
    sampler.poll(done);
    ASSERT_EQ(done.size(), 2u);
    // FIFO completion order.
    EXPECT_EQ(done[0].ticket, t1);
    EXPECT_EQ(done[1].ticket, t2);
    EXPECT_GE(done[0].host_seconds, 0.0);
    EXPECT_EQ(sampler.inFlight(), 0);
}

TEST(Sampler, SaDirectSamplerDeterministicPerSeed)
{
    const auto g = chimera::ChimeraGraph::dwave2000q();
    const auto request = requestFixture(g);

    SaDirectSampler::Options opts;
    opts.seed = 99;
    SaDirectSampler a(opts), b(opts);
    const auto sa = a.sampleNow(request);
    const auto sb = b.sampleNow(request);
    EXPECT_EQ(sa.node_bits, sb.node_bits);
    EXPECT_DOUBLE_EQ(sa.clause_energy, sb.clause_energy);
    EXPECT_EQ(static_cast<int>(sa.node_bits.size()),
              request.problem->numNodes());
    // The logical path has no chains to break.
    EXPECT_EQ(sa.chain_breaks, 0);
}

TEST(Sampler, BatchSamplerNeverWorseThanItsFirstWorker)
{
    const auto g = chimera::ChimeraGraph::dwave2000q();
    const auto request = requestFixture(g, 33);

    // Worker 0 of the batch uses the base seed, so the single-sample
    // stream is one of the raced candidates: best-of-N can only be
    // at least as good.
    QuantumAnnealer::Options noisy;
    noisy.noise.readout_flip_prob = 0.1;
    QaSampler single(g, noisy);
    BatchSampler::Options bopts;
    bopts.samples = 4;
    bopts.annealer = noisy;
    BatchSampler batch(g, bopts);
    EXPECT_EQ(batch.numWorkers(), 4);

    const auto s = single.sampleNow(request);
    const auto b = batch.sampleNow(request);
    EXPECT_LE(b.clause_energy, s.clause_energy);
    // Device model: N consecutive anneal-readout cycles.
    EXPECT_DOUBLE_EQ(b.device_time_us,
                     noisy.timing.sampleTimeUs(4));
}

TEST(Sampler, BatchSamplerDeterministicAcrossRuns)
{
    const auto g = chimera::ChimeraGraph::dwave2000q();
    const auto request = requestFixture(g, 44);
    BatchSampler::Options opts;
    opts.samples = 3;
    opts.annealer.noise.readout_flip_prob = 0.05;

    BatchSampler a(g, opts), b(g, opts);
    const auto sa = a.sampleNow(request);
    const auto sb = b.sampleNow(request);
    EXPECT_EQ(sa.node_bits, sb.node_bits);
    EXPECT_DOUBLE_EQ(sa.clause_energy, sb.clause_energy);
    EXPECT_EQ(sa.chain_breaks, sb.chain_breaks);
}

TEST(Sampler, AsyncSamplerDeliversEverySubmissionInOrder)
{
    const auto g = chimera::ChimeraGraph::dwave2000q();
    const auto request = requestFixture(g);

    AsyncSampler::Options opts;
    opts.depth = 3;
    AsyncSampler async(
        std::make_unique<QaSampler>(g, noiseFreeOptions()), opts);
    EXPECT_EQ(async.capacity(), 3);

    std::vector<std::uint64_t> tickets;
    for (int i = 0; i < 5; ++i)
        tickets.push_back(async.submit(request));

    std::vector<SampleCompletion> done;
    while (done.size() < tickets.size())
        async.wait(done);
    ASSERT_EQ(done.size(), tickets.size());
    for (std::size_t i = 0; i < tickets.size(); ++i)
        EXPECT_EQ(done[i].ticket, tickets[i]);
    EXPECT_EQ(async.inFlight(), 0);
}

TEST(Sampler, AsyncSamplerMatchesSyncStream)
{
    // One worker draining a FIFO against one synchronous sampler:
    // identical request sequences must produce identical samples.
    const auto g = chimera::ChimeraGraph::dwave2000q();
    const auto request = requestFixture(g);

    QaSampler sync(g, noiseFreeOptions());
    AsyncSampler async(
        std::make_unique<QaSampler>(g, noiseFreeOptions()), {});

    for (int i = 0; i < 3; ++i) {
        const auto a = sync.sampleNow(request);
        const auto b = async.sampleNow(request);
        EXPECT_EQ(a.node_bits, b.node_bits) << "sample " << i;
        EXPECT_DOUBLE_EQ(a.clause_energy, b.clause_energy);
    }
}

TEST(Sampler, AsyncSamplerAbandonsPendingJobsOnDestruction)
{
    const auto g = chimera::ChimeraGraph::dwave2000q();
    const auto request = requestFixture(g);
    {
        AsyncSampler async(
            std::make_unique<QaSampler>(g, noiseFreeOptions()), {});
        for (int i = 0; i < 8; ++i)
            async.submit(request);
        // Destructor must join cleanly with jobs still queued.
    }
    SUCCEED();
}

TEST(Sampler, FactoryBuildsEveryNamedBackend)
{
    const auto g = chimera::ChimeraGraph::dwave2000q();
    auto request = requestFixture(g);

    for (const auto &name : samplerNames()) {
        SamplerSpec spec;
        spec.name = name;
        spec.annealer = noiseFreeOptions();
        spec.batch_samples = 2;
        const auto sampler = makeSampler(spec, g);
        ASSERT_NE(sampler, nullptr) << name;
        const auto s = sampler->sampleNow(request);
        EXPECT_EQ(static_cast<int>(s.node_bits.size()),
                  request.problem->numNodes())
            << name;
    }
}

TEST(Sampler, FactoryComposesAsyncWrappers)
{
    const auto g = chimera::ChimeraGraph::dwave2000q();
    SamplerSpec spec;
    spec.name = "async:sa";
    spec.pipeline_depth = 4;
    const auto sampler = makeSampler(spec, g);
    EXPECT_STREQ(sampler->name(), "async");
    EXPECT_EQ(sampler->capacity(), 4);

    auto request = requestFixture(g);
    const auto s = sampler->sampleNow(request);
    EXPECT_EQ(static_cast<int>(s.node_bits.size()),
              request.problem->numNodes());
}

TEST(Sampler, FactoryRejectsUnknownAndNestedNames)
{
    const auto g = chimera::ChimeraGraph::dwave2000q();
    SamplerSpec bad;
    bad.name = "qpu-over-carrier-pigeon";
    EXPECT_EXIT(makeSampler(bad, g), ::testing::ExitedWithCode(1), "");
    SamplerSpec nested;
    nested.name = "async:async";
    EXPECT_EXIT(makeSampler(nested, g), ::testing::ExitedWithCode(1),
                "");
}

} // namespace
} // namespace hyqsat::anneal
