/**
 * @file
 * The two-level parallel lockstep scheduler (PR 10): group
 * partition/seed purity, cross-thread-count bit-identity, and the
 * sampler-level aggregation of group stats. These tests run under
 * the TSan CI leg (suite name SaParallel) — several drive the same
 * WorkPool from concurrent callers on purpose.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "anneal/sa_batch.h"
#include "anneal/sa_sampler.h"
#include "anneal/work_pool.h"
#include "util/simd.h"

namespace hyqsat::anneal {
namespace {

/** Random test model: fields + ~60% dense couplings. */
qubo::IsingModel
randomModel(int n, std::uint64_t seed)
{
    qubo::IsingModel m(n);
    Rng setup(seed);
    for (int i = 0; i < n; ++i)
        m.addField(i, setup.gaussian(0, 1));
    for (int i = 0; i < n; ++i)
        for (int j = i + 1; j < n; ++j)
            if (setup.chance(0.6))
                m.addCoupling(i, j, setup.gaussian(0, 1));
    return m;
}

std::vector<SaResult>
runLockstep(const SaCompiled &c, const SaOptions &opts,
            std::uint64_t base, WorkPool *pool)
{
    return sampleLockstep(c, c.csr.h.data(), c.csr.w.data(), opts,
                          base, simd::Isa::Scalar, pool);
}

void
expectIdentical(const std::vector<SaResult> &a,
                const std::vector<SaResult> &b, const char *what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (std::size_t r = 0; r < a.size(); ++r) {
        ASSERT_EQ(a[r].spins, b[r].spins) << what << " read " << r;
        EXPECT_EQ(a[r].energy, b[r].energy) << what << " read " << r;
        EXPECT_EQ(a[r].stats.flips_attempted,
                  b[r].stats.flips_attempted)
            << what << " read " << r;
        EXPECT_EQ(a[r].stats.flips_accepted,
                  b[r].stats.flips_accepted)
            << what << " read " << r;
    }
}

TEST(SaParallel, GroupCountIsPureFunctionOfOptions)
{
    // Auto (0): groups of up to 8 lanes.
    EXPECT_EQ(lockstepGroupCount(1, 0), 1);
    EXPECT_EQ(lockstepGroupCount(8, 0), 1);
    EXPECT_EQ(lockstepGroupCount(9, 0), 2);
    EXPECT_EQ(lockstepGroupCount(16, 0), 2);
    EXPECT_EQ(lockstepGroupCount(17, 0), 3);
    EXPECT_EQ(lockstepGroupCount(64, 0), 8);
    // Explicit counts clamp to [1, reads].
    EXPECT_EQ(lockstepGroupCount(20, 1), 1);
    EXPECT_EQ(lockstepGroupCount(20, 4), 4);
    EXPECT_EQ(lockstepGroupCount(20, 99), 20);
    EXPECT_EQ(lockstepGroupCount(0, 0), 1);
}

TEST(SaParallel, GroupSeedsDecorrelatedAndAnchored)
{
    // Group 0 runs from the caller's base verbatim (the PR 9
    // contract anchor); later groups are splitmix-finalized and
    // pairwise distinct.
    const std::uint64_t base = 0x9e3779b97f4a7c15ull;
    EXPECT_EQ(lockstepGroupSeed(base, 0), base);
    std::set<std::uint64_t> seen;
    for (int g = 0; g < 64; ++g)
        seen.insert(lockstepGroupSeed(base, g));
    EXPECT_EQ(seen.size(), 64u);
    // Different bases map to different group-seed families.
    EXPECT_NE(lockstepGroupSeed(1, 3), lockstepGroupSeed(2, 3));
}

TEST(SaParallel, BitIdenticalAcrossThreadCounts)
{
    // The cross-thread-count determinism contract: the same
    // (seed, model, options) must produce byte-identical reads
    // whether the groups run serially (pool with 0 workers), on a
    // small pool, on a big pool, or on the shared pool.
    const auto m = randomModel(26, 77);
    const auto c = SaCompiled::build(m, /*include_zero=*/false);
    SaOptions opts;
    opts.sweeps = 48;
    opts.num_reads = 20; // auto: 3 groups
    WorkPool serial(0);
    WorkPool two(2);
    WorkPool wide(8);
    const auto a = runLockstep(c, opts, 42, &serial);
    const auto b = runLockstep(c, opts, 42, &two);
    const auto d = runLockstep(c, opts, 42, &wide);
    const auto e = runLockstep(c, opts, 42, nullptr); // shared pool
    ASSERT_EQ(a.size(), 20u);
    expectIdentical(a, b, "serial vs 2 threads");
    expectIdentical(a, d, "serial vs 8 threads");
    expectIdentical(a, e, "serial vs shared pool");
}

TEST(SaParallel, AutoSingleGroupMatchesForcedSingleGroup)
{
    // reads <= 8 means auto sizing yields one group, whose seed is
    // the base verbatim — so the parallel dispatcher must reproduce
    // the PR 9 single-group path bit for bit.
    const auto m = randomModel(22, 5);
    const auto c = SaCompiled::build(m, /*include_zero=*/false);
    SaOptions opts;
    opts.sweeps = 64;
    opts.num_reads = 8;
    SaOptions forced = opts;
    forced.reads_groups = 1;
    const auto a = runLockstep(c, opts, 7, nullptr);
    const auto b = runLockstep(c, forced, 7, nullptr);
    expectIdentical(a, b, "auto vs forced single group");
}

TEST(SaParallel, GroupPartitionIsBalancedAndDeterministic)
{
    // Explicit group counts shift which seed each read runs under,
    // so results differ from the single-group run — but remain a
    // deterministic function of the options.
    const auto m = randomModel(24, 13);
    const auto c = SaCompiled::build(m, /*include_zero=*/false);
    SaOptions grouped;
    grouped.sweeps = 48;
    grouped.num_reads = 12;
    grouped.reads_groups = 3;
    SaOptions single = grouped;
    single.reads_groups = 1;
    WorkPool pool(3);
    const auto a = runLockstep(c, grouped, 99, &pool);
    const auto b = runLockstep(c, grouped, 99, &pool);
    const auto s = runLockstep(c, single, 99, &pool);
    expectIdentical(a, b, "grouped repeat");
    ASSERT_EQ(a.size(), s.size());
    // A different partition means different lane counts and group
    // seeds, so the runs explore differently (they are distinct,
    // equally valid deterministic samplers).
    bool differs = false;
    for (std::size_t r = 0; r < a.size(); ++r)
        differs |= a[r].spins != s[r].spins;
    EXPECT_TRUE(differs)
        << "group partition should select different streams";
    // Every read still reports exact energies for its spins.
    for (const auto &r : a)
        EXPECT_DOUBLE_EQ(r.energy,
                         c.csr.energyWith(r.spins.data(),
                                          c.csr.h.data(),
                                          c.csr.w.data()));
}

TEST(SaParallel, SamplerAggregatesGroupStats)
{
    // Through SaSampler::sampleAll the lockstep path must report the
    // group count and aggregate per-read work into the front result.
    const auto m = randomModel(20, 3);
    SaSampler sampler(m);
    SaOptions opts;
    opts.sweeps = 32;
    opts.num_reads = 20;
    opts.lockstep = true;
    opts.reads_groups = 0; // auto: 3 groups
    Rng rng(11);
    const auto all = sampler.sampleAll(opts, rng);
    ASSERT_EQ(all.size(), 20u);
    EXPECT_EQ(all.front().stats.reads, 20u);
    EXPECT_EQ(all.front().stats.read_groups, 3u);
    EXPECT_GT(all.front().stats.flips_attempted, 0u);
    // Best-first ordering holds across group boundaries.
    for (std::size_t i = 1; i < all.size(); ++i)
        EXPECT_LE(all[i - 1].energy, all[i].energy);
}

TEST(SaParallel, ConcurrentCallersShareThePool)
{
    // Two threads drive sampleLockstep through the same dedicated
    // pool at once (the portfolio shape: many workers, one shared
    // pool). Results must match the serial reference; TSan guards
    // the pool's internals.
    const auto m = randomModel(24, 21);
    const auto c = SaCompiled::build(m, /*include_zero=*/false);
    SaOptions opts;
    opts.sweeps = 32;
    opts.num_reads = 16; // auto: 2 groups per caller
    WorkPool serial(0);
    const auto ref1 = runLockstep(c, opts, 1, &serial);
    const auto ref2 = runLockstep(c, opts, 2, &serial);

    WorkPool pool(4);
    std::vector<SaResult> out1, out2;
    std::thread t1([&] { out1 = runLockstep(c, opts, 1, &pool); });
    std::thread t2([&] { out2 = runLockstep(c, opts, 2, &pool); });
    t1.join();
    t2.join();
    expectIdentical(ref1, out1, "caller 1");
    expectIdentical(ref2, out2, "caller 2");
}

} // namespace
} // namespace hyqsat::anneal
