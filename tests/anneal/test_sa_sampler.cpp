#include <gtest/gtest.h>

#include "anneal/sa_sampler.h"

namespace hyqsat::anneal {
namespace {

TEST(SaSampler, FindsGroundStateOfSingleSpin)
{
    qubo::IsingModel m(1);
    m.addField(0, 1.0); // ground state: s = -1
    SaSampler sampler(m);
    Rng rng(1);
    const auto r = sampler.sample({}, rng);
    EXPECT_EQ(r.spins[0], -1);
    EXPECT_DOUBLE_EQ(r.energy, -1.0);
}

TEST(SaSampler, FerromagneticPairAligns)
{
    qubo::IsingModel m(2);
    m.addCoupling(0, 1, -1.0); // alignment favoured
    SaSampler sampler(m);
    Rng rng(2);
    for (int round = 0; round < 10; ++round) {
        const auto r = sampler.sample({}, rng);
        EXPECT_EQ(r.spins[0], r.spins[1]);
        EXPECT_DOUBLE_EQ(r.energy, -1.0);
    }
}

TEST(SaSampler, AntiferromagneticPairOpposes)
{
    qubo::IsingModel m(2);
    m.addCoupling(0, 1, 1.0);
    SaSampler sampler(m);
    Rng rng(3);
    const auto r = sampler.sample({}, rng);
    EXPECT_NE(r.spins[0], r.spins[1]);
}

TEST(SaSampler, GroundStateOfFerromagneticChain)
{
    const int n = 32;
    qubo::IsingModel m(n);
    for (int i = 0; i + 1 < n; ++i)
        m.addCoupling(i, i + 1, -1.0);
    m.addField(0, -0.5); // break the symmetry: all-up ground state
    SaSampler sampler(m);
    Rng rng(4);
    SaOptions opts;
    opts.sweeps = 256;
    const auto r = sampler.sample(opts, rng);
    for (int i = 0; i < n; ++i)
        EXPECT_EQ(r.spins[i], 1) << "spin " << i;
    EXPECT_DOUBLE_EQ(r.energy, -(n - 1) - 0.5);
}

TEST(SaSampler, ReportedEnergyMatchesRecomputation)
{
    qubo::IsingModel m(6);
    Rng setup(5);
    for (int i = 0; i < 6; ++i)
        m.addField(i, setup.gaussian(0, 1));
    for (int i = 0; i < 6; ++i)
        for (int j = i + 1; j < 6; ++j)
            if (setup.chance(0.6))
                m.addCoupling(i, j, setup.gaussian(0, 1));
    SaSampler sampler(m);
    Rng rng(6);
    const auto r = sampler.sample({}, rng);
    EXPECT_NEAR(r.energy, m.energy(r.spins), 1e-9);
    EXPECT_NEAR(r.energy, sampler.energy(r.spins), 1e-9);
}

TEST(SaSampler, GreedyFinishNeverWorsens)
{
    qubo::IsingModel m(8);
    Rng setup(7);
    for (int i = 0; i < 8; ++i)
        for (int j = i + 1; j < 8; ++j)
            m.addCoupling(i, j, setup.gaussian(0, 1));

    SaSampler sampler(m);
    SaOptions with, without;
    with.greedy_finish = true;
    without.greedy_finish = false;
    double sum_with = 0, sum_without = 0;
    for (int round = 0; round < 20; ++round) {
        Rng rng_a(100 + round), rng_b(100 + round);
        sum_with += sampler.sample(with, rng_a).energy;
        sum_without += sampler.sample(without, rng_b).energy;
    }
    EXPECT_LE(sum_with, sum_without + 1e-9);
}

TEST(SaSampler, HotScheduleIsRandomish)
{
    // At essentially zero beta the sampler cannot find the ground
    // state of a frustrated system reliably: energies vary.
    qubo::IsingModel m(16);
    Rng setup(8);
    for (int i = 0; i < 16; ++i)
        for (int j = i + 1; j < 16; ++j)
            m.addCoupling(i, j, setup.chance(0.5) ? 1.0 : -1.0);
    SaSampler sampler(m);
    SaOptions hot;
    hot.beta_start = 1e-6;
    hot.beta_end = 1e-5;
    hot.greedy_finish = false;
    Rng rng(9);
    double min_e = 1e300, max_e = -1e300;
    for (int round = 0; round < 20; ++round) {
        const double e = sampler.sample(hot, rng).energy;
        min_e = std::min(min_e, e);
        max_e = std::max(max_e, e);
    }
    EXPECT_GT(max_e - min_e, 1.0);
}

TEST(SaSampler, GroupMovesFlipBlocks)
{
    // Two 4-spin chains with strong internal ferromagnetic coupling
    // and a weak antiferromagnetic link: the ground state has the
    // chains anti-aligned; block moves find it quickly.
    qubo::IsingModel m(8);
    for (int i = 0; i + 1 < 4; ++i) {
        m.addCoupling(i, i + 1, -4.0);
        m.addCoupling(4 + i, 4 + i + 1, -4.0);
    }
    m.addCoupling(0, 4, 1.0);
    SaSampler sampler(m);
    sampler.setGroups({{0, 1, 2, 3}, {4, 5, 6, 7}});
    Rng rng(10);
    SaOptions opts;
    opts.sweeps = 64;
    const auto r = sampler.sample(opts, rng);
    // Chains internally aligned, mutually opposed.
    for (int i = 1; i < 4; ++i) {
        EXPECT_EQ(r.spins[i], r.spins[0]);
        EXPECT_EQ(r.spins[4 + i], r.spins[4]);
    }
    EXPECT_NE(r.spins[0], r.spins[4]);
}

TEST(SaSampler, DeterministicForSameRngState)
{
    qubo::IsingModel m(10);
    Rng setup(11);
    for (int i = 0; i < 10; ++i)
        m.addField(i, setup.gaussian(0, 1));
    SaSampler sampler(m);
    Rng a(42), b(42);
    const auto ra = sampler.sample({}, a);
    const auto rb = sampler.sample({}, b);
    EXPECT_EQ(ra.spins, rb.spins);
    EXPECT_EQ(ra.energy, rb.energy);
}

} // namespace
} // namespace hyqsat::anneal
