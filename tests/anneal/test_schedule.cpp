#include <gtest/gtest.h>

#include "anneal/schedule.h"

namespace hyqsat::anneal {
namespace {

TEST(Schedule, GeometricEndpointsAndMonotonicity)
{
    const auto betas = geometricBetaSchedule(0.1, 10.0, 32);
    ASSERT_EQ(betas.size(), 32u);
    EXPECT_NEAR(betas.front(), 0.1, 1e-12);
    EXPECT_NEAR(betas.back(), 10.0, 1e-9);
    for (std::size_t i = 1; i < betas.size(); ++i)
        EXPECT_GT(betas[i], betas[i - 1]);
}

TEST(Schedule, GeometricConstantRatio)
{
    const auto betas = geometricBetaSchedule(1.0, 8.0, 4);
    EXPECT_NEAR(betas[1] / betas[0], betas[2] / betas[1], 1e-12);
    EXPECT_NEAR(betas[2] / betas[1], betas[3] / betas[2], 1e-12);
}

TEST(Schedule, GeometricSingleSweepUsesFinalBeta)
{
    const auto betas = geometricBetaSchedule(0.1, 5.0, 1);
    ASSERT_EQ(betas.size(), 1u);
    EXPECT_DOUBLE_EQ(betas[0], 5.0);
}

TEST(Schedule, LinearEndpointsAndSpacing)
{
    const auto betas = linearBetaSchedule(1.0, 3.0, 5);
    ASSERT_EQ(betas.size(), 5u);
    EXPECT_DOUBLE_EQ(betas.front(), 1.0);
    EXPECT_DOUBLE_EQ(betas.back(), 3.0);
    EXPECT_DOUBLE_EQ(betas[1] - betas[0], 0.5);
    EXPECT_DOUBLE_EQ(betas[3] - betas[2], 0.5);
}

TEST(Schedule, LinearSingleSweep)
{
    const auto betas = linearBetaSchedule(0.5, 2.0, 1);
    ASSERT_EQ(betas.size(), 1u);
    EXPECT_DOUBLE_EQ(betas[0], 2.0);
}

} // namespace
} // namespace hyqsat::anneal
