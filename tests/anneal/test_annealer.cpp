#include <gtest/gtest.h>

#include "anneal/annealer.h"
#include "embed/hyqsat_embedder.h"
#include "sat/brute_force.h"
#include "tests/sat/helpers.h"
#include "util/stats.h"

namespace hyqsat::anneal {
namespace {

using sat::LitVec;
using sat::mkLit;

embed::QueueEmbedResult
embedFixture(const chimera::ChimeraGraph &g,
             const std::vector<LitVec> &clauses)
{
    embed::HyQsatEmbedder embedder(g);
    // Note: large queues may embed only a prefix; tests that need
    // full coverage use small clause sets.
    return embedder.embedQueue(clauses);
}

TEST(Annealer, NoiseFreeSolvesSingleClause)
{
    const chimera::ChimeraGraph g(4, 4, 4);
    const auto fx = embedFixture(
        g, {{mkLit(0), mkLit(1), mkLit(2)}});
    QuantumAnnealer::Options opts;
    opts.noise = NoiseModel::noiseFree();
    opts.greedy_finish = true;
    QuantumAnnealer qa(g, opts);
    const auto s = qa.sample(fx.problem, fx.embedding);
    EXPECT_DOUBLE_EQ(s.clause_energy, 0.0);
    EXPECT_EQ(s.chain_breaks, 0);
    EXPECT_TRUE(fx.problem.clausesSatisfied(s.node_bits));
}

TEST(Annealer, NoiseFreeSolvesSatisfiableSets)
{
    const auto g = chimera::ChimeraGraph::dwave2000q();
    Rng rng(3);
    QuantumAnnealer::Options opts;
    opts.noise = NoiseModel::noiseFree();
    opts.greedy_finish = true;
    opts.attempts = 4;
    QuantumAnnealer qa(g, opts);
    for (int round = 0; round < 5; ++round) {
        // Under-constrained: satisfiable with high probability, and
        // verified against brute force before the expectation.
        const auto cnf = sat::testing::randomCnf(18, 40, 3, rng);
        if (!sat::bruteForceSolve(cnf).satisfiable)
            continue;
        const std::vector<LitVec> clauses(cnf.clauses().begin(),
                                          cnf.clauses().end());
        const auto fx = embedFixture(g, clauses);
        const auto s = qa.sample(fx.problem, fx.embedding);
        EXPECT_DOUBLE_EQ(s.clause_energy, 0.0) << "round " << round;
    }
}

TEST(Annealer, UnsatisfiableSetHasPositiveEnergy)
{
    const chimera::ChimeraGraph g(4, 4, 4);
    const auto fx = embedFixture(
        g, {{mkLit(0)}, {mkLit(0, true)}});
    QuantumAnnealer::Options opts;
    opts.noise = NoiseModel::noiseFree();
    opts.greedy_finish = true;
    QuantumAnnealer qa(g, opts);
    const auto s = qa.sample(fx.problem, fx.embedding);
    EXPECT_GE(s.clause_energy, 1.0);
}

TEST(Annealer, LogicalSamplingAgreesWithEmbedded)
{
    const auto g = chimera::ChimeraGraph::dwave2000q();
    Rng rng(5);
    const auto cnf = sat::testing::randomCnf(15, 30, 3, rng);
    if (!sat::bruteForceSolve(cnf).satisfiable)
        GTEST_SKIP() << "fixture instance unsatisfiable";
    const std::vector<LitVec> clauses(cnf.clauses().begin(),
                                      cnf.clauses().end());
    const auto fx = embedFixture(g, clauses);
    QuantumAnnealer::Options opts;
    opts.noise = NoiseModel::noiseFree();
    opts.greedy_finish = true;
    QuantumAnnealer qa(g, opts);
    EXPECT_DOUBLE_EQ(qa.sampleLogical(fx.problem).clause_energy, 0.0);
    EXPECT_DOUBLE_EQ(
        qa.sample(fx.problem, fx.embedding).clause_energy, 0.0);
}

TEST(Annealer, ReadoutNoiseRaisesEnergy)
{
    const auto g = chimera::ChimeraGraph::dwave2000q();
    Rng rng(7);
    const auto cnf = sat::testing::randomCnf(20, 60, 3, rng);
    const std::vector<LitVec> clauses(cnf.clauses().begin(),
                                      cnf.clauses().end());
    const auto fx = embedFixture(g, clauses);

    QuantumAnnealer::Options clean;
    clean.noise = NoiseModel::noiseFree();
    clean.greedy_finish = true;
    QuantumAnnealer qa_clean(g, clean);

    QuantumAnnealer::Options noisy = clean;
    noisy.noise.readout_flip_prob = 0.2;
    noisy.greedy_finish = false;
    QuantumAnnealer qa_noisy(g, noisy);

    double clean_sum = 0, noisy_sum = 0;
    for (int i = 0; i < 10; ++i) {
        clean_sum += qa_clean.sample(fx.problem, fx.embedding)
                         .clause_energy;
        noisy_sum += qa_noisy.sample(fx.problem, fx.embedding)
                         .clause_energy;
    }
    EXPECT_GT(noisy_sum, clean_sum);
}

TEST(Annealer, CoefficientNoisePerturbsResults)
{
    const auto g = chimera::ChimeraGraph::dwave2000q();
    Rng rng(9);
    const auto cnf = sat::testing::randomCnf(25, 100, 3, rng);
    const std::vector<LitVec> clauses(cnf.clauses().begin(),
                                      cnf.clauses().end());
    const auto fx = embedFixture(g, clauses);

    QuantumAnnealer::Options noisy;
    noisy.noise.coefficient_sigma = 0.2; // exaggerated
    noisy.noise.sweeps = 32;
    QuantumAnnealer qa(g, noisy);
    OnlineStats energies;
    for (int i = 0; i < 10; ++i)
        energies.add(qa.sample(fx.problem, fx.embedding).clause_energy);
    // Strong control noise should produce at least some violations.
    EXPECT_GT(energies.max(), 0.0);
}

TEST(Annealer, DeviceTimeFollowsTimingModel)
{
    const chimera::ChimeraGraph g(2, 2, 4);
    QuantumAnnealer::Options opts;
    opts.timing.anneal_us = 20;
    opts.timing.readout_us = 110;
    QuantumAnnealer qa(g, opts);
    const auto fx = embedFixture(g, {{mkLit(0), mkLit(1)}});
    const auto s = qa.sample(fx.problem, fx.embedding);
    EXPECT_DOUBLE_EQ(s.device_time_us, 130.0);
}

TEST(Annealer, EmptyProblemIsTrivial)
{
    const chimera::ChimeraGraph g(2, 2, 4);
    QuantumAnnealer qa(g, {});
    const qubo::EncodedProblem empty;
    const embed::Embedding no_chains;
    const auto s = qa.sample(empty, no_chains);
    EXPECT_DOUBLE_EQ(s.clause_energy, 0.0);
    EXPECT_TRUE(s.node_bits.empty());
}

TEST(Annealer, MajorityVoteImprovesNoisySamples)
{
    const auto g = chimera::ChimeraGraph::dwave2000q();
    Rng rng(11);
    const auto cnf = sat::testing::randomCnf(15, 35, 3, rng);
    const std::vector<LitVec> clauses(cnf.clauses().begin(),
                                      cnf.clauses().end());
    const auto fx = embedFixture(g, clauses);

    QuantumAnnealer::Options noisy;
    noisy.noise.readout_flip_prob = 0.15;
    noisy.greedy_finish = true;
    QuantumAnnealer qa(g, noisy);

    double single = 0, voted = 0;
    for (int i = 0; i < 8; ++i) {
        single += qa.sample(fx.problem, fx.embedding).clause_energy;
        voted += qa.sampleMajorityVote(fx.problem, fx.embedding, 5)
                     .clause_energy;
    }
    EXPECT_LE(voted, single);
}

TEST(Annealer, MajorityVoteChargesDeviceTimePerShot)
{
    const chimera::ChimeraGraph g(2, 2, 4);
    QuantumAnnealer qa(g, {});
    const auto fx = embedFixture(g, {{mkLit(0), mkLit(1)}});
    const auto s = qa.sampleMajorityVote(fx.problem, fx.embedding, 4);
    TimingModel t;
    EXPECT_DOUBLE_EQ(s.device_time_us, t.sampleTimeUs(4));
}

TEST(Annealer, MajorityVoteEmptyCases)
{
    const chimera::ChimeraGraph g(2, 2, 4);
    QuantumAnnealer qa(g, {});
    const qubo::EncodedProblem empty;
    const embed::Embedding no_chains;
    EXPECT_TRUE(qa.sampleMajorityVote(empty, no_chains, 3)
                    .node_bits.empty());
    const auto fx = embedFixture(g, {{mkLit(0)}});
    const auto s = qa.sampleMajorityVote(fx.problem, fx.embedding, 0);
    EXPECT_DOUBLE_EQ(s.clause_energy, 0.0);
}

TEST(Annealer, TimingModelArithmetic)
{
    TimingModel t;
    t.anneal_us = 10;
    t.readout_us = 110;
    t.delay_us = 20;
    // The paper's Fig. 1: (10+110)us * 60 + 20us * 59 = 8380us.
    EXPECT_DOUBLE_EQ(t.sampleTimeUs(60), 8380.0);
    EXPECT_DOUBLE_EQ(t.sampleTimeUs(1), 120.0);
    EXPECT_DOUBLE_EQ(t.sampleTimeUs(0), 0.0);
}

} // namespace
} // namespace hyqsat::anneal
