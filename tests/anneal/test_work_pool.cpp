/**
 * @file
 * Tests for the shared caller-participating thread pool: runIndexed
 * must call fn(i) exactly once per index (including from nested
 * fan-outs, which is how a batch worker's multi-read annealer runs),
 * degenerate sizes must behave, and post() must execute detached
 * strand tasks.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "anneal/work_pool.h"

namespace hyqsat::anneal {
namespace {

TEST(WorkPool, RunIndexedCoversEveryIndexExactlyOnce)
{
    WorkPool pool(3);
    const int n = 257;
    std::vector<std::atomic<int>> hits(n);
    for (auto &h : hits)
        h.store(0);
    pool.runIndexed(n, [&](int i) { hits[i].fetch_add(1); });
    for (int i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(WorkPool, RunIndexedHandlesDegenerateSizes)
{
    WorkPool pool(2);
    std::atomic<int> calls{0};
    pool.runIndexed(0, [&](int) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 0);
    pool.runIndexed(-3, [&](int) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 0);
    pool.runIndexed(1, [&](int i) {
        EXPECT_EQ(i, 0);
        calls.fetch_add(1);
    });
    EXPECT_EQ(calls.load(), 1);
}

TEST(WorkPool, NestedRunIndexedCompletesWithoutDeadlock)
{
    // Outer fan-out wider than the pool, each branch fanning out
    // again: with caller participation every level makes progress
    // even when all pool threads are already busy in outer branches.
    WorkPool pool(2);
    const int outer = 6, inner = 9;
    std::vector<std::atomic<int>> hits(outer * inner);
    for (auto &h : hits)
        h.store(0);
    pool.runIndexed(outer, [&](int o) {
        pool.runIndexed(inner, [&](int i) {
            hits[o * inner + i].fetch_add(1);
        });
    });
    for (int k = 0; k < outer * inner; ++k)
        EXPECT_EQ(hits[k].load(), 1) << "slot " << k;
}

TEST(WorkPool, RunIndexedWorksOnSharedPoolUnderConcurrentCallers)
{
    // Two caller threads fanning out on the shared pool at once:
    // each call must still see all of its own indices exactly once.
    auto run = [](std::vector<std::atomic<int>> &hits) {
        WorkPool::shared().runIndexed(
            static_cast<int>(hits.size()),
            [&](int i) { hits[i].fetch_add(1); });
    };
    std::vector<std::atomic<int>> a(101), b(67);
    for (auto &h : a)
        h.store(0);
    for (auto &h : b)
        h.store(0);
    std::thread other([&] { run(a); });
    run(b);
    other.join();
    for (auto &h : a)
        EXPECT_EQ(h.load(), 1);
    for (auto &h : b)
        EXPECT_EQ(h.load(), 1);
}

TEST(WorkPool, CallerThrowUnwindsCleanlyAndPoolStaysUsable)
{
    // fn may only throw on the runIndexed caller's own thread (a
    // pool-thread throw terminates); the unwind must stop further
    // claims, wait out in-flight helpers and unlink the batch, so
    // the exception propagates and the pool keeps working.
    WorkPool pool(3);
    const auto caller = std::this_thread::get_id();
    for (int round = 0; round < 4; ++round) {
        std::atomic<int> caller_calls{0};
        bool threw = false;
        try {
            pool.runIndexed(64, [&](int) {
                if (std::this_thread::get_id() != caller) {
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(100));
                    return;
                }
                if (caller_calls.fetch_add(1) == 1)
                    throw std::runtime_error("boom");
            });
        } catch (const std::runtime_error &) {
            threw = true;
        }
        // The caller participates from index 0, so it claims at
        // least two indices (the pool threads sleep) and throws.
        EXPECT_TRUE(threw) << "round " << round;

        std::vector<std::atomic<int>> hits(37);
        for (auto &h : hits)
            h.store(0);
        pool.runIndexed(static_cast<int>(hits.size()),
                        [&](int i) { hits[i].fetch_add(1); });
        for (auto &h : hits)
            EXPECT_EQ(h.load(), 1) << "round " << round;
    }
}

TEST(WorkPool, PostRunsDetachedTasks)
{
    WorkPool pool(1);
    std::mutex mu;
    std::condition_variable cv;
    int ran = 0;
    for (int k = 0; k < 5; ++k) {
        pool.post([&] {
            std::lock_guard<std::mutex> lock(mu);
            ++ran;
            cv.notify_all();
        });
    }
    std::unique_lock<std::mutex> lock(mu);
    const bool ok = cv.wait_for(lock, std::chrono::seconds(30),
                                [&] { return ran == 5; });
    EXPECT_TRUE(ok);
    EXPECT_EQ(ran, 5);
}

TEST(WorkPool, PostedTasksRunWhileFanOutIsOpen)
{
    // A posted strand task must not starve behind a long fan-out:
    // the async drain depends on posts getting a thread promptly.
    WorkPool pool(2);
    std::mutex mu;
    std::condition_variable cv;
    bool posted_ran = false;
    pool.runIndexed(4, [&](int i) {
        if (i == 0) {
            pool.post([&] {
                std::lock_guard<std::mutex> lock(mu);
                posted_ran = true;
                cv.notify_all();
            });
            std::unique_lock<std::mutex> lock(mu);
            cv.wait_for(lock, std::chrono::seconds(30),
                        [&] { return posted_ran; });
        }
    });
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_TRUE(posted_ran);
}

} // namespace
} // namespace hyqsat::anneal
