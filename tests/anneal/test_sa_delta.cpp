/**
 * @file
 * Property tests for the incremental local-field engine: the cached
 * O(1) deltas (and the legacy-order fresh recomputations) must agree
 * with brute-force energy(after) - energy(before) on random Ising
 * models — with and without chain groups — through long sequences of
 * accepted flips, and the running energy must track the brute-force
 * energy throughout. Tolerance 1e-9 for the cached (incrementally
 * maintained) values; the fresh recomputations use the exact legacy
 * summation order and are compared tighter.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "anneal/sa_sampler.h"
#include "qubo/qubo.h"
#include "util/rng.h"

namespace hyqsat::anneal {
namespace {

constexpr double kTol = 1e-9;

struct Fixture
{
    std::shared_ptr<const SaCompiled> compiled;
    std::vector<std::vector<int>> groups;
};

Fixture
randomFixture(int n, int edges, std::uint64_t seed, bool with_chains)
{
    Rng rng(seed);
    qubo::IsingModel m(n);
    m.addOffset(rng.uniform() * 4.0 - 2.0);
    for (int i = 0; i < n; ++i)
        m.addField(i, rng.uniform() * 2.0 - 1.0);
    for (int e = 0; e < edges; ++e) {
        const int i = static_cast<int>(rng.below(n));
        const int j = static_cast<int>(rng.below(n));
        if (i == j)
            continue;
        m.addCoupling(i, j, rng.uniform() * 2.0 - 1.0);
    }
    Fixture fx;
    if (with_chains) {
        for (int k = 0; 3 * k + 2 < n; k += 2) {
            const int a = 3 * k, b = 3 * k + 1, c = 3 * k + 2;
            fx.groups.push_back({a, b, c});
            m.addCoupling(a, b, -1.0);
            m.addCoupling(b, c, -1.0);
        }
    }
    SaCompiled built = SaCompiled::build(m, /*include_zero=*/false);
    built.compileGroups(fx.groups);
    fx.compiled = std::make_shared<const SaCompiled>(std::move(built));
    return fx;
}

std::vector<std::int8_t>
randomSpins(int n, Rng &rng)
{
    std::vector<std::int8_t> s(n);
    for (auto &v : s)
        v = rng.chance(0.5) ? 1 : -1;
    return s;
}

double
bruteEnergy(const SaCompiled &c, const std::vector<std::int8_t> &s)
{
    return c.csr.energy(s);
}

TEST(SaDelta, FlipDeltaMatchesBruteForceThroughAcceptedSequence)
{
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const Fixture fx = randomFixture(28, 90, 0xDE17Aull + seed,
                                         /*with_chains=*/false);
        const SaCompiled &c = *fx.compiled;
        Rng rng(seed * 7919);
        auto spins = randomSpins(c.numSpins(), rng);

        detail::IncrementalIsing inc;
        inc.reset(c, c.csr.h.data(), c.csr.w.data(), spins);
        ASSERT_NEAR(inc.energy(), bruteEnergy(c, spins), kTol);

        for (int step = 0; step < 400; ++step) {
            const int i = static_cast<int>(rng.below(c.numSpins()));
            const double before = bruteEnergy(c, spins);
            spins[i] = static_cast<std::int8_t>(-spins[i]);
            const double want = bruteEnergy(c, spins) - before;

            const double cached = inc.flipDelta(i);
            const double fresh = inc.freshFlipDelta(i);
            EXPECT_NEAR(cached, want, kTol)
                << "seed " << seed << " step " << step;
            EXPECT_NEAR(fresh, want, kTol)
                << "seed " << seed << " step " << step;
            // The guard band only matters if cached and fresh agree
            // on which side of zero genuine boundary cases fall.
            if (std::abs(want) > kTol) {
                EXPECT_EQ(cached < 0.0, want < 0.0);
            }

            inc.applyFlip(i, cached);
            EXPECT_EQ(inc.spins()[i], spins[i]);
            EXPECT_NEAR(inc.energy(), bruteEnergy(c, spins), kTol)
                << "running energy drifted at step " << step;
        }
    }
}

TEST(SaDelta, GroupDeltaMatchesBruteForceWithChains)
{
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const Fixture fx = randomFixture(30, 80, 0xC4A17ull + seed,
                                         /*with_chains=*/true);
        const SaCompiled &c = *fx.compiled;
        ASSERT_FALSE(c.groups.empty());
        Rng rng(seed * 104729);
        auto spins = randomSpins(c.numSpins(), rng);

        detail::IncrementalIsing inc;
        inc.reset(c, c.csr.h.data(), c.csr.w.data(), spins);

        for (int step = 0; step < 300; ++step) {
            // Interleave group flips and single flips so the cached
            // fields are maintained across both move kinds.
            if (step % 3 != 0) {
                const int i = static_cast<int>(rng.below(c.numSpins()));
                const double before = bruteEnergy(c, spins);
                spins[i] = static_cast<std::int8_t>(-spins[i]);
                const double want = bruteEnergy(c, spins) - before;
                const double cached = inc.flipDelta(i);
                EXPECT_NEAR(cached, want, kTol);
                inc.applyFlip(i, cached);
            } else {
                const int g = static_cast<int>(
                    rng.below(static_cast<int>(c.groups.size())));
                const double before = bruteEnergy(c, spins);
                for (int i : c.groups[g])
                    spins[i] = static_cast<std::int8_t>(-spins[i]);
                const double want = bruteEnergy(c, spins) - before;

                const double cached = inc.groupDelta(g);
                const double fresh = inc.freshGroupDelta(g);
                EXPECT_NEAR(cached, want, kTol)
                    << "seed " << seed << " step " << step;
                EXPECT_NEAR(fresh, want, kTol)
                    << "seed " << seed << " step " << step;
                inc.applyGroup(g, cached);
            }
            EXPECT_NEAR(inc.energy(), bruteEnergy(c, spins), kTol)
                << "running energy drifted at step " << step;
        }
    }
}

TEST(SaDelta, ExternalCoefficientViewsAreHonored)
{
    const Fixture fx =
        randomFixture(20, 50, 0xE57ull, /*with_chains=*/true);
    const SaCompiled &c = *fx.compiled;

    // Scale every coefficient: deltas and energies must follow the
    // external arrays, not the compiled base values.
    std::vector<double> h2 = c.csr.h;
    std::vector<double> w2 = c.csr.w;
    for (auto &v : h2)
        v *= 3.0;
    for (auto &v : w2)
        v *= 3.0;

    Rng rng(99);
    auto spins = randomSpins(c.numSpins(), rng);

    detail::IncrementalIsing base, scaled;
    base.reset(c, c.csr.h.data(), c.csr.w.data(), spins);
    scaled.reset(c, h2.data(), w2.data(), spins);
    const double base_offsetless = base.energy() - c.csr.offset;
    EXPECT_NEAR(scaled.energy() - c.csr.offset, 3.0 * base_offsetless,
                1e-9);
    for (int i = 0; i < c.numSpins(); ++i)
        EXPECT_NEAR(scaled.flipDelta(i), 3.0 * base.flipDelta(i), 1e-9);
    for (std::size_t g = 0; g < c.groups.size(); ++g) {
        EXPECT_NEAR(scaled.groupDelta(static_cast<int>(g)),
                    3.0 * base.groupDelta(static_cast<int>(g)), 1e-9);
    }
}

} // namespace
} // namespace hyqsat::anneal
