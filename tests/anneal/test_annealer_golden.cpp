/**
 * @file
 * Annealer-level seed-golden tests: the SaGolden table pins the
 * SaSampler hot loop, but nothing below it pinned the full
 * QuantumAnnealer path — model compilation, control-noise replay,
 * de-embedding, tie-breaking — whose combined RNG consumption is the
 * num_reads=1 reproducibility contract.
 *
 * The constants below were captured from the pre-rewrite build
 * (commit before the CSR hot loop landed) running this exact
 * fixture — do NOT regenerate them from the current annealer; the
 * point is that they survive rewrites unchanged. Two flavors:
 *
 *  - clean: NoiseModel::noiseFree() (coefficient_sigma == 0 draws
 *    nothing — the legacy perturb() early-outed before ever calling
 *    Rng::gaussian, so the noise-free stream never held noise draws),
 *  - noisy: NoiseModel::dwave2000q() (the compiled replay schedule
 *    must reproduce the legacy per-sample draw order exactly).
 *
 * Bits and the post-run stream position are pinned exactly. The
 * physical energy is pinned to 1e-9 only: the rewrite accumulates it
 * delta by delta while the legacy build re-scanned at the end, which
 * differs in the last ulps on non-dyadic embedded models.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "anneal/annealer.h"
#include "embed/hyqsat_embedder.h"
#include "sat/types.h"

namespace hyqsat::anneal {
namespace {

using sat::LitVec;
using sat::mkLit;

std::uint64_t
fnvBits(const std::vector<bool> &bits)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (bool b : bits) {
        h ^= static_cast<std::uint8_t>(b);
        h *= 0x100000001b3ull;
    }
    return h;
}

/** The fixture the golden constants were captured on. */
embed::QueueEmbedResult
goldenFixture(const chimera::ChimeraGraph &g)
{
    std::vector<LitVec> clauses;
    for (int i = 0; i < 12; ++i) {
        clauses.push_back({mkLit(i % 9),
                           mkLit((i + 3) % 9, (i & 1) != 0),
                           mkLit((i + 5) % 9, (i & 2) != 0)});
    }
    embed::HyQsatEmbedder embedder(g);
    return embedder.embedQueue(clauses);
}

struct GoldenShot
{
    std::uint64_t bits_fnv;
    double physical_energy;
};

struct GoldenFlavor
{
    bool noisy;
    bool greedy;
    GoldenShot shots[3];         ///< three consecutive sample() calls
    GoldenShot logical;          ///< then one sampleLogical()
    std::uint64_t rng_next;      ///< then rng().next()
};

constexpr GoldenFlavor kGoldenFlavors[] = {
    {false,
     true,
     {{0x6de60c1c7615fa13ull, -0x1.aeffffffffffbp+5},
      {0x147f52f4bbd7dbbdull, -0x1.aeffffffffffdp+5},
      {0xdca8568175bc7785ull, -0x1.aefffffffffffp+5}},
     {0x9e742ca37e7a3421ull, -0x1.5p-49},
     0x21d66d592551f05eull},
    {true,
     false,
     {{0xc443c41a6182875dull, -0x1.af48118ba0f87p+5},
      {0xf77391513b580d7aull, -0x1.b6807858b566ap+5},
      {0xdca8568175bc7785ull, -0x1.b7d5e75f532f1p+5}},
     {0x4d30d500f691ecc2ull, 0x1.5cfdb187c4d36p-3},
     0x3641dac719eadff0ull},
};

TEST(AnnealerGolden, SeedBitsAndRngStreamSurviveRewrites)
{
    const auto g = chimera::ChimeraGraph::dwave2000q();
    const auto fx = goldenFixture(g);
    for (const GoldenFlavor &flavor : kGoldenFlavors) {
        QuantumAnnealer::Options opts;
        opts.noise = flavor.noisy ? NoiseModel::dwave2000q()
                                  : NoiseModel::noiseFree();
        opts.greedy_finish = flavor.greedy;
        opts.attempts = 2;
        QuantumAnnealer qa(g, opts);
        for (int k = 0; k < 3; ++k) {
            const auto s = qa.sample(fx.problem, fx.embedding);
            EXPECT_EQ(fnvBits(s.node_bits), flavor.shots[k].bits_fnv)
                << "noisy " << flavor.noisy << " shot " << k;
            EXPECT_EQ(s.chain_breaks, 0)
                << "noisy " << flavor.noisy << " shot " << k;
            EXPECT_DOUBLE_EQ(s.clause_energy, 0.0);
            EXPECT_NEAR(s.physical_energy,
                        flavor.shots[k].physical_energy, 1e-9)
                << "noisy " << flavor.noisy << " shot " << k;
        }
        const auto s = qa.sampleLogical(fx.problem);
        EXPECT_EQ(fnvBits(s.node_bits), flavor.logical.bits_fnv)
            << "noisy " << flavor.noisy << " (logical)";
        EXPECT_DOUBLE_EQ(s.clause_energy, 0.0);
        EXPECT_NEAR(s.physical_energy, flavor.logical.physical_energy,
                    1e-9)
            << "noisy " << flavor.noisy << " (logical)";
        EXPECT_EQ(qa.rng().next(), flavor.rng_next)
            << "noisy " << flavor.noisy
            << " (RNG stream position diverged)";
    }
}

TEST(AnnealerGolden, MemoizedSlotDoesNotChangeTheStream)
{
    // The CompiledSlot overloads must sample identically to the
    // slot-free path: memoization skips model compilation, never a
    // draw. (Compilation itself consumes no RNG.)
    const auto g = chimera::ChimeraGraph::dwave2000q();
    const auto fx = goldenFixture(g);
    QuantumAnnealer::Options opts;
    opts.noise = NoiseModel::dwave2000q();
    opts.attempts = 2;
    QuantumAnnealer direct(g, opts);
    QuantumAnnealer memoized(g, opts);
    embed::CompiledSlot slot;
    for (int k = 0; k < 3; ++k) {
        const auto a = direct.sample(fx.problem, fx.embedding);
        const auto b =
            memoized.sample(fx.problem, fx.embedding, &slot);
        EXPECT_EQ(a.node_bits, b.node_bits) << "shot " << k;
        EXPECT_DOUBLE_EQ(a.physical_energy, b.physical_energy);
    }
    EXPECT_EQ(direct.sampleLogical(fx.problem).node_bits,
              memoized.sampleLogical(fx.problem, &slot).node_bits);
    EXPECT_EQ(direct.rng().next(), memoized.rng().next());
}

} // namespace
} // namespace hyqsat::anneal
