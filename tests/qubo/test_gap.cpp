#include <gtest/gtest.h>

#include "qubo/gap.h"
#include "sat/brute_force.h"
#include "tests/sat/helpers.h"

namespace hyqsat::qubo {
namespace {

using sat::LitVec;
using sat::mkLit;

TEST(Landscape, SatisfiableClauseSetHasZeroGround)
{
    const std::vector<LitVec> clauses{{mkLit(0), mkLit(1), mkLit(2)}};
    for (auto kind : {ObjectiveKind::Unit, ObjectiveKind::Weighted,
                      ObjectiveKind::Normalized}) {
        const auto ls = analyzeLandscape(encodeClauses(clauses), kind);
        EXPECT_TRUE(ls.satisfiable);
        EXPECT_NEAR(ls.ground, 0.0, 1e-12);
        EXPECT_GT(ls.gap, 0.0);
    }
}

TEST(Landscape, UnitGapOfSingleClauseIsOne)
{
    const std::vector<LitVec> clauses{{mkLit(0), mkLit(1), mkLit(2)}};
    const auto ls =
        analyzeLandscape(encodeClauses(clauses), ObjectiveKind::Unit);
    EXPECT_NEAR(ls.gap, 1.0, 1e-12);
}

TEST(Landscape, UnsatisfiableSetHasPositiveGround)
{
    // x0 and ~x0.
    const std::vector<LitVec> clauses{{mkLit(0)}, {mkLit(0, true)}};
    const auto ls =
        analyzeLandscape(encodeClauses(clauses), ObjectiveKind::Unit);
    EXPECT_FALSE(ls.satisfiable);
    EXPECT_GT(ls.ground, 0.0);
    EXPECT_DOUBLE_EQ(ls.ground, ls.gap);
}

TEST(Landscape, GroundMatchesBruteForceMinViolatedOnUnit)
{
    hyqsat::Rng rng(31);
    for (int round = 0; round < 10; ++round) {
        const sat::Cnf cnf = sat::testing::randomCnf(5, 9, 3, rng);
        const auto ep = encodeClauses(cnf.clauses());
        if (ep.numNodes() > 20)
            continue;
        const auto ls = analyzeLandscape(ep, ObjectiveKind::Unit);
        // Unit ground energy == minimum violated sub-clause weight;
        // every violated clause costs exactly 1 at the optimum.
        EXPECT_NEAR(ls.ground, sat::bruteForceMinViolated(cnf), 1e-9)
            << "round " << round;
    }
}

TEST(Landscape, SatisfiabilityAgreesWithBruteForce)
{
    hyqsat::Rng rng(37);
    for (int round = 0; round < 15; ++round) {
        const sat::Cnf cnf = sat::testing::randomCnf(4, 10, 3, rng);
        const auto ep = encodeClauses(cnf.clauses());
        const auto ls = analyzeLandscape(ep, ObjectiveKind::Weighted);
        EXPECT_EQ(ls.satisfiable, sat::bruteForceSolve(cnf).satisfiable);
        EXPECT_EQ(ls.ground < 1e-9, ls.satisfiable);
    }
}

TEST(Gap, MinGapStaysPositiveUnderAdjustment)
{
    hyqsat::Rng rng(41);
    for (int round = 0; round < 10; ++round) {
        const sat::Cnf cnf = sat::testing::randomCnf(5, 7, 3, rng);
        const double improvement = gapImprovement(cnf.clauses());
        EXPECT_GT(improvement, 0.0) << "round " << round;
    }
}

TEST(Gap, SingleClauseSurfaceImprovementIsExactlyOnePointFive)
{
    // For one 3-literal clause the violating band holds two aux
    // levels with plain normalized energies {1/2, 1/2}; adjustment
    // lifts them to {1/2, 1}: mean 0.75 vs 0.5.
    const std::vector<LitVec> clauses{{mkLit(0), mkLit(1), mkLit(2)}};
    EXPECT_NEAR(surfaceImprovement(clauses), 1.5, 1e-9);
}

TEST(Gap, SurfaceImprovementAboveOneOnAverage)
{
    // The Fig. 15a effect: across random instances the adjustment
    // lifts the violating energy surface on average (individual
    // instances may tie or dip slightly).
    hyqsat::Rng rng(43);
    double sum = 0.0;
    const int rounds = 12;
    for (int round = 0; round < rounds; ++round) {
        const sat::Cnf cnf = sat::testing::randomCnf(6, 10, 3, rng);
        sum += surfaceImprovement(cnf.clauses());
    }
    EXPECT_GT(sum / rounds, 1.1);
}

TEST(Gap, MeanViolatingEnergyZeroWhenNoViolatingAssignment)
{
    // A tautology-only set is satisfied by everything.
    const std::vector<LitVec> clauses{{mkLit(0), mkLit(0, true)}};
    const auto ep = encodeClauses(clauses);
    EXPECT_DOUBLE_EQ(
        meanViolatingEnergy(ep, ObjectiveKind::Normalized), 0.0);
}

} // namespace
} // namespace hyqsat::qubo
