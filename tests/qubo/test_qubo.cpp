#include <gtest/gtest.h>

#include "qubo/qubo.h"
#include "util/rng.h"

namespace hyqsat::qubo {
namespace {

TEST(QuboModel, EmptyModelZeroEnergy)
{
    QuboModel q;
    EXPECT_EQ(q.numVars(), 0);
    EXPECT_DOUBLE_EQ(q.energy({}), 0.0);
}

TEST(QuboModel, LinearAndOffsetAccumulate)
{
    QuboModel q;
    q.addOffset(1.5);
    q.addLinear(0, 2.0);
    q.addLinear(0, 1.0);
    EXPECT_DOUBLE_EQ(q.offset(), 1.5);
    EXPECT_DOUBLE_EQ(q.linear(0), 3.0);
    EXPECT_DOUBLE_EQ(q.energy({true}), 4.5);
    EXPECT_DOUBLE_EQ(q.energy({false}), 1.5);
}

TEST(QuboModel, QuadraticTermEvaluation)
{
    QuboModel q;
    q.addQuadratic(0, 1, 2.0);
    EXPECT_DOUBLE_EQ(q.energy({true, true}), 2.0);
    EXPECT_DOUBLE_EQ(q.energy({true, false}), 0.0);
    EXPECT_DOUBLE_EQ(q.energy({false, true}), 0.0);
}

TEST(QuboModel, QuadraticOrderInsensitive)
{
    QuboModel q;
    q.addQuadratic(3, 1, 1.0);
    q.addQuadratic(1, 3, 1.0);
    EXPECT_DOUBLE_EQ(q.quadratic(1, 3), 2.0);
    EXPECT_DOUBLE_EQ(q.quadratic(3, 1), 2.0);
}

TEST(QuboModel, DiagonalFoldsIntoLinear)
{
    QuboModel q;
    q.addQuadratic(2, 2, 5.0);
    EXPECT_DOUBLE_EQ(q.linear(2), 5.0);
    EXPECT_DOUBLE_EQ(q.quadratic(2, 2), 0.0);
}

TEST(QuboModel, MaxAbsCoefficients)
{
    QuboModel q;
    q.addLinear(0, -3.0);
    q.addLinear(1, 2.0);
    q.addQuadratic(0, 1, -1.5);
    EXPECT_DOUBLE_EQ(q.maxAbsLinear(), 3.0);
    EXPECT_DOUBLE_EQ(q.maxAbsQuadratic(), 1.5);
    EXPECT_DOUBLE_EQ(q.normalizationDivisor(), 1.5);
}

TEST(QuboModel, NormalizedRespectsHardwareRanges)
{
    QuboModel q;
    q.addLinear(0, -8.0);
    q.addLinear(1, 3.0);
    q.addQuadratic(0, 1, 6.0);
    const QuboModel n = q.normalized();
    EXPECT_LE(n.maxAbsLinear(), 2.0 + 1e-12);
    EXPECT_LE(n.maxAbsQuadratic(), 1.0 + 1e-12);
    // Energies scale uniformly.
    EXPECT_NEAR(n.energy({true, true}) * q.normalizationDivisor(),
                q.energy({true, true}), 1e-12);
}

TEST(QuboModel, AddScaledCombinesModels)
{
    QuboModel a;
    a.addLinear(0, 1.0);
    a.addQuadratic(0, 1, 1.0);
    a.addOffset(1.0);
    QuboModel b;
    b.addScaled(a, 2.0);
    EXPECT_DOUBLE_EQ(b.linear(0), 2.0);
    EXPECT_DOUBLE_EQ(b.quadratic(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(b.offset(), 2.0);
}

TEST(IsingModel, FieldAndCouplingEnergy)
{
    IsingModel m;
    m.addField(0, 0.5);
    m.addCoupling(0, 1, -1.0);
    m.addOffset(2.0);
    EXPECT_DOUBLE_EQ(m.energy({1, 1}), 2.0 + 0.5 - 1.0);
    EXPECT_DOUBLE_EQ(m.energy({-1, 1}), 2.0 - 0.5 + 1.0);
}

TEST(IsingModel, SelfCouplingFoldsToOffset)
{
    IsingModel m;
    m.addCoupling(1, 1, 3.0);
    EXPECT_DOUBLE_EQ(m.offset(), 3.0);
    EXPECT_DOUBLE_EQ(m.coupling(1, 1), 0.0);
}

TEST(Conversion, QuboIsingEnergiesAgreeExhaustively)
{
    Rng rng(55);
    for (int round = 0; round < 20; ++round) {
        const int n = 6;
        QuboModel q(n);
        q.addOffset(rng.gaussian(0, 2));
        for (int i = 0; i < n; ++i)
            q.addLinear(i, rng.gaussian(0, 2));
        for (int i = 0; i < n; ++i)
            for (int j = i + 1; j < n; ++j)
                if (rng.chance(0.5))
                    q.addQuadratic(i, j, rng.gaussian(0, 2));

        const IsingModel m = quboToIsing(q);
        for (int pattern = 0; pattern < (1 << n); ++pattern) {
            std::vector<bool> x(n);
            std::vector<std::int8_t> s(n);
            for (int i = 0; i < n; ++i) {
                x[i] = (pattern >> i) & 1;
                s[i] = x[i] ? 1 : -1;
            }
            ASSERT_NEAR(q.energy(x), m.energy(s), 1e-9)
                << "round " << round << " pattern " << pattern;
        }
    }
}

TEST(Conversion, SpinBitRoundTrip)
{
    const std::vector<bool> x{true, false, true};
    EXPECT_EQ(spinsToBits(bitsToSpins(x)), x);
    const std::vector<std::int8_t> s{1, -1, -1};
    EXPECT_EQ(bitsToSpins(spinsToBits(s)), s);
}

TEST(PairKey, CanonicalizesOrderAndHashes)
{
    PairKey a(2, 7), b(7, 2);
    EXPECT_EQ(a.packed, b.packed);
    EXPECT_EQ(a.first(), 2);
    EXPECT_EQ(a.second(), 7);
    PairKeyHash h;
    EXPECT_EQ(h(a), h(b));
}

} // namespace
} // namespace hyqsat::qubo
