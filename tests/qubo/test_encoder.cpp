#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "qubo/encoder.h"
#include "sat/cnf.h"
#include "tests/sat/helpers.h"

namespace hyqsat::qubo {
namespace {

using sat::Lit;
using sat::LitVec;
using sat::mkLit;

/**
 * Minimum of a model over the auxiliary nodes with SAT-variable
 * values fixed. Returns the best (lowest) energy.
 */
double
minOverAux(const EncodedProblem &ep, const QuboModel &model,
           const std::vector<bool> &var_bits_by_node)
{
    std::vector<int> aux_nodes;
    for (int n = 0; n < ep.numNodes(); ++n)
        if (ep.nodes[n].is_aux)
            aux_nodes.push_back(n);

    std::vector<bool> bits = var_bits_by_node;
    double best = std::numeric_limits<double>::infinity();
    const std::uint64_t total = 1ull << aux_nodes.size();
    for (std::uint64_t pattern = 0; pattern < total; ++pattern) {
        for (std::size_t i = 0; i < aux_nodes.size(); ++i)
            bits[aux_nodes[i]] = (pattern >> i) & 1;
        best = std::min(best, model.energy(bits));
    }
    return best;
}

int
countViolated(const EncodedProblem &ep, const std::vector<bool> &bits)
{
    int violated = 0;
    for (const auto &clause : ep.clauses) {
        if (clause.empty())
            continue;
        bool sat = false;
        for (Lit p : clause)
            if (bits[ep.var_node.at(p.var())] != p.sign())
                sat = true;
        violated += !sat;
    }
    return violated;
}

TEST(Encoder, SingleThreeClauseNodeLayout)
{
    const std::vector<LitVec> clauses{{mkLit(0), mkLit(1), mkLit(2)}};
    const auto ep = encodeClauses(clauses);
    EXPECT_EQ(ep.numNodes(), 4); // 3 vars + 1 aux
    EXPECT_EQ(ep.clause_aux[0], 3);
    EXPECT_FALSE(ep.nodes[0].is_aux);
    EXPECT_TRUE(ep.nodes[3].is_aux);
    EXPECT_EQ(ep.nodes[3].clause, 0);
    EXPECT_EQ(ep.sub_clauses.size(), 2u);
}

TEST(Encoder, PaperExampleEquation8UnitObjective)
{
    // c1 = x1 v x2 v x3 (Eq. 8): H = x1 + x2 - x3 + x1x2 - 2a x1
    //                                - 2a x2 + a x3 + 1, d* = 2.
    const std::vector<LitVec> clauses{{mkLit(0), mkLit(1), mkLit(2)}};
    const auto ep = encodeClauses(clauses);
    const QuboModel &h = ep.unit_objective;
    const int a = ep.clause_aux[0];
    EXPECT_DOUBLE_EQ(h.offset(), 1.0);
    EXPECT_DOUBLE_EQ(h.linear(0), 1.0);
    EXPECT_DOUBLE_EQ(h.linear(1), 1.0);
    EXPECT_DOUBLE_EQ(h.linear(2), -1.0);
    EXPECT_DOUBLE_EQ(h.linear(a), 0.0);
    EXPECT_DOUBLE_EQ(h.quadratic(0, 1), 1.0);
    EXPECT_DOUBLE_EQ(h.quadratic(a, 0), -2.0);
    EXPECT_DOUBLE_EQ(h.quadratic(a, 1), -2.0);
    EXPECT_DOUBLE_EQ(h.quadratic(a, 2), 1.0);
    EXPECT_DOUBLE_EQ(h.normalizationDivisor(), 2.0);
}

TEST(Encoder, PaperExampleEquation9AdjustedObjective)
{
    // After adjustment (Eq. 9): alpha = (1, 2) and
    // H' = x1 + x2 - 2x3 - a + x1x2 - 2a x1 - 2a x2 + 2a x3 + 2.
    const std::vector<LitVec> clauses{{mkLit(0), mkLit(1), mkLit(2)}};
    const auto ep = encodeClauses(clauses);
    ASSERT_EQ(ep.sub_clauses.size(), 2u);
    EXPECT_DOUBLE_EQ(ep.sub_clauses[0].d, 2.0);
    EXPECT_DOUBLE_EQ(ep.sub_clauses[1].d, 1.0);
    EXPECT_DOUBLE_EQ(ep.sub_clauses[0].alpha, 1.0);
    EXPECT_DOUBLE_EQ(ep.sub_clauses[1].alpha, 2.0);

    const QuboModel &h = ep.objective;
    const int a = ep.clause_aux[0];
    EXPECT_DOUBLE_EQ(h.offset(), 2.0);
    EXPECT_DOUBLE_EQ(h.linear(0), 1.0);
    EXPECT_DOUBLE_EQ(h.linear(1), 1.0);
    EXPECT_DOUBLE_EQ(h.linear(2), -2.0);
    EXPECT_DOUBLE_EQ(h.linear(a), -1.0);
    EXPECT_DOUBLE_EQ(h.quadratic(0, 1), 1.0);
    EXPECT_DOUBLE_EQ(h.quadratic(a, 0), -2.0);
    EXPECT_DOUBLE_EQ(h.quadratic(a, 1), -2.0);
    EXPECT_DOUBLE_EQ(h.quadratic(a, 2), 2.0);
    // d'* stays d* (the paper's claim for this example).
    EXPECT_DOUBLE_EQ(ep.d_star, 2.0);
}

TEST(Encoder, UnitClauseTruthTable)
{
    for (bool negated : {false, true}) {
        const std::vector<LitVec> clauses{{mkLit(0, negated)}};
        const auto ep = encodeClauses(clauses);
        ASSERT_EQ(ep.numNodes(), 1);
        // Penalty 0 when the literal is true, 1 when false.
        EXPECT_DOUBLE_EQ(ep.unit_objective.energy({!negated}), 0.0);
        EXPECT_DOUBLE_EQ(ep.unit_objective.energy({negated}), 1.0);
    }
}

TEST(Encoder, PairClauseTruthTable)
{
    for (int signs = 0; signs < 4; ++signs) {
        const bool s0 = signs & 1, s1 = signs & 2;
        const std::vector<LitVec> clauses{{mkLit(0, s0), mkLit(1, s1)}};
        const auto ep = encodeClauses(clauses);
        ASSERT_EQ(ep.numNodes(), 2);
        for (int bits = 0; bits < 4; ++bits) {
            const std::vector<bool> x{static_cast<bool>(bits & 1),
                                      static_cast<bool>(bits & 2)};
            const bool sat = (x[0] != s0) || (x[1] != s1);
            EXPECT_DOUBLE_EQ(ep.unit_objective.energy(x), sat ? 0.0 : 1.0)
                << "signs " << signs << " bits " << bits;
        }
    }
}

TEST(Encoder, ThreeClauseMinOverAuxIsViolationIndicator)
{
    // For every sign pattern of a 3-literal clause and every variable
    // assignment: min over the auxiliary of the unit objective is 0
    // when the clause is satisfied and exactly 1 when violated.
    for (int signs = 0; signs < 8; ++signs) {
        const std::vector<LitVec> clauses{{mkLit(0, signs & 1),
                                           mkLit(1, signs & 2),
                                           mkLit(2, signs & 4)}};
        const auto ep = encodeClauses(clauses);
        for (int bits = 0; bits < 8; ++bits) {
            std::vector<bool> node_bits(ep.numNodes(), false);
            for (int v = 0; v < 3; ++v)
                node_bits[ep.var_node.at(v)] = (bits >> v) & 1;
            const double best =
                minOverAux(ep, ep.unit_objective, node_bits);
            const int violated = countViolated(ep, node_bits);
            EXPECT_NEAR(best, violated, 1e-12)
                << "signs " << signs << " bits " << bits;
        }
    }
}

TEST(Encoder, MultiClauseMinOverAuxCountsViolations)
{
    hyqsat::Rng rng(13);
    for (int round = 0; round < 15; ++round) {
        const sat::Cnf cnf = sat::testing::randomCnf(5, 6, 3, rng);
        const auto ep = encodeClauses(cnf.clauses());
        std::vector<int> var_nodes;
        for (const auto &[v, n] : ep.var_node)
            var_nodes.push_back(n);
        for (int bits = 0; bits < (1 << var_nodes.size()); ++bits) {
            std::vector<bool> node_bits(ep.numNodes(), false);
            for (std::size_t i = 0; i < var_nodes.size(); ++i)
                node_bits[var_nodes[i]] = (bits >> i) & 1;
            const double best =
                minOverAux(ep, ep.unit_objective, node_bits);
            EXPECT_NEAR(best, countViolated(ep, node_bits), 1e-9);
        }
    }
}

TEST(Encoder, WeightedObjectiveZeroIffSatisfied)
{
    hyqsat::Rng rng(17);
    for (int round = 0; round < 10; ++round) {
        const sat::Cnf cnf = sat::testing::randomCnf(5, 7, 3, rng);
        const auto ep = encodeClauses(cnf.clauses());
        const int n = ep.numNodes();
        ASSERT_LE(n, 20);
        for (int bits = 0; bits < (1 << n); ++bits) {
            std::vector<bool> node_bits(n);
            for (int i = 0; i < n; ++i)
                node_bits[i] = (bits >> i) & 1;
            const double e = ep.objective.energy(node_bits);
            EXPECT_GE(e, -1e-9);
            if (e < 1e-9) {
                EXPECT_TRUE(ep.clausesSatisfied(node_bits));
                EXPECT_NEAR(ep.unit_objective.energy(node_bits), 0.0,
                            1e-9);
            }
        }
    }
}

TEST(Encoder, AlphasNeverBelowOne)
{
    hyqsat::Rng rng(19);
    const sat::Cnf cnf = sat::testing::randomCnf(8, 12, 3, rng);
    const auto ep = encodeClauses(cnf.clauses());
    for (const auto &sc : ep.sub_clauses)
        EXPECT_GE(sc.alpha, 1.0 - 1e-12);
}

TEST(Encoder, AdjustmentDisabledKeepsAlphaOne)
{
    hyqsat::Rng rng(23);
    const sat::Cnf cnf = sat::testing::randomCnf(6, 9, 3, rng);
    EncoderOptions opts;
    opts.adjust_coefficients = false;
    const auto ep = encodeClauses(cnf.clauses(), opts);
    for (const auto &sc : ep.sub_clauses)
        EXPECT_DOUBLE_EQ(sc.alpha, 1.0);
}

TEST(Encoder, NormalizedWithinHardwareRanges)
{
    hyqsat::Rng rng(29);
    const sat::Cnf cnf = sat::testing::randomCnf(10, 20, 3, rng);
    const auto ep = encodeClauses(cnf.clauses());
    EXPECT_LE(ep.normalized.maxAbsLinear(), 2.0 + 1e-9);
    EXPECT_LE(ep.normalized.maxAbsQuadratic(), 1.0 + 1e-9);
}

TEST(Encoder, TautologyDropped)
{
    const std::vector<LitVec> clauses{
        {mkLit(0), mkLit(0, true), mkLit(1)}, {mkLit(1), mkLit(2)}};
    const auto ep = encodeClauses(clauses);
    EXPECT_TRUE(ep.clauses[0].empty());
    EXPECT_EQ(ep.clause_aux[0], -1);
    // Only the second clause contributes nodes.
    EXPECT_EQ(ep.numNodes(), 2);
}

TEST(Encoder, DuplicateLiteralsCollapse)
{
    const std::vector<LitVec> clauses{{mkLit(0), mkLit(0), mkLit(1)}};
    const auto ep = encodeClauses(clauses);
    EXPECT_EQ(ep.clauses[0].size(), 2u); // became a 2-literal clause
    EXPECT_EQ(ep.clause_aux[0], -1);     // no auxiliary needed
}

TEST(Encoder, EdgesMatchProblemGraphStructure)
{
    const std::vector<LitVec> clauses{{mkLit(0), mkLit(1), mkLit(2)}};
    const auto ep = encodeClauses(clauses);
    const auto edges = ep.edges();
    // (x1,x2), (a,x1), (a,x2), (a,x3).
    EXPECT_EQ(edges.size(), 4u);
}

TEST(Encoder, DecodeMapsNodesBackToVariables)
{
    const std::vector<LitVec> clauses{{mkLit(4), mkLit(7), mkLit(9)}};
    const auto ep = encodeClauses(clauses);
    std::vector<bool> bits(ep.numNodes(), false);
    bits[ep.var_node.at(7)] = true;
    const auto assignment = ep.decode(bits);
    EXPECT_TRUE(assignment.at(7));
    EXPECT_FALSE(assignment.at(4));
    EXPECT_FALSE(assignment.at(9));
    EXPECT_EQ(assignment.size(), 3u);
}

TEST(Encoder, SharedVariablesReuseNodes)
{
    const std::vector<LitVec> clauses{
        {mkLit(0), mkLit(1), mkLit(2)},
        {mkLit(0), mkLit(3), mkLit(4)},
    };
    const auto ep = encodeClauses(clauses);
    // 5 vars + 2 aux.
    EXPECT_EQ(ep.numNodes(), 7);
}

} // namespace
} // namespace hyqsat::qubo
