#include <gtest/gtest.h>

#include <set>

#include "chimera/chimera.h"

namespace hyqsat::chimera {
namespace {

TEST(Chimera, Dwave2000qDimensions)
{
    const auto g = ChimeraGraph::dwave2000q();
    EXPECT_EQ(g.rows(), 16);
    EXPECT_EQ(g.cols(), 16);
    EXPECT_EQ(g.shore(), 4);
    EXPECT_EQ(g.numQubits(), 2048);
}

TEST(Chimera, CouplerCountMatchesFormula)
{
    // Intra: M*N*L^2; inter vertical: (M-1)*N*L; inter horizontal:
    // M*(N-1)*L.
    const ChimeraGraph g(3, 5, 4);
    const int expected = 3 * 5 * 16 + 2 * 5 * 4 + 3 * 4 * 4;
    EXPECT_EQ(g.numCouplers(), expected);
    EXPECT_EQ(static_cast<int>(g.edges().size()), expected);
}

TEST(Chimera, Dwave2000qCouplerCount)
{
    const auto g = ChimeraGraph::dwave2000q();
    EXPECT_EQ(g.numCouplers(), 16 * 16 * 16 + 15 * 16 * 4 + 16 * 15 * 4);
}

TEST(Chimera, CoordRoundTrip)
{
    const ChimeraGraph g(4, 6, 4);
    for (int q = 0; q < g.numQubits(); ++q) {
        const auto c = g.coord(q);
        EXPECT_EQ(g.qubitId(c.row, c.col, c.shore, c.track), q);
        EXPECT_GE(c.row, 0);
        EXPECT_LT(c.row, 4);
        EXPECT_GE(c.col, 0);
        EXPECT_LT(c.col, 6);
        EXPECT_GE(c.track, 0);
        EXPECT_LT(c.track, 4);
    }
}

TEST(Chimera, IntraCellK44)
{
    const ChimeraGraph g(2, 2, 4);
    for (int kv = 0; kv < 4; ++kv) {
        for (int kh = 0; kh < 4; ++kh) {
            EXPECT_TRUE(
                g.connected(g.qubitId(0, 0, Shore::Vertical, kv),
                            g.qubitId(0, 0, Shore::Horizontal, kh)));
        }
    }
    // Same-shore qubits in a cell are NOT connected.
    EXPECT_FALSE(g.connected(g.qubitId(0, 0, Shore::Vertical, 0),
                             g.qubitId(0, 0, Shore::Vertical, 1)));
}

TEST(Chimera, InterCellCouplersFollowLines)
{
    const ChimeraGraph g(3, 3, 4);
    // Vertical track k connects down a column.
    EXPECT_TRUE(g.connected(g.qubitId(0, 1, Shore::Vertical, 2),
                            g.qubitId(1, 1, Shore::Vertical, 2)));
    // ... but not across tracks or columns.
    EXPECT_FALSE(g.connected(g.qubitId(0, 1, Shore::Vertical, 2),
                             g.qubitId(1, 1, Shore::Vertical, 3)));
    EXPECT_FALSE(g.connected(g.qubitId(0, 1, Shore::Vertical, 2),
                             g.qubitId(1, 2, Shore::Vertical, 2)));
    // Horizontal track k connects along a row.
    EXPECT_TRUE(g.connected(g.qubitId(1, 0, Shore::Horizontal, 1),
                            g.qubitId(1, 1, Shore::Horizontal, 1)));
    EXPECT_FALSE(g.connected(g.qubitId(1, 0, Shore::Horizontal, 1),
                             g.qubitId(2, 1, Shore::Horizontal, 1)));
}

TEST(Chimera, InteriorQubitDegree)
{
    const auto g = ChimeraGraph::dwave2000q();
    // Interior vertical qubit: 4 intra + 2 inter = 6 neighbours.
    const int q = g.qubitId(8, 8, Shore::Vertical, 1);
    EXPECT_EQ(g.neighbors(q).size(), 6u);
    // Corner-cell vertical qubit: 4 intra + 1 inter.
    const int corner = g.qubitId(0, 0, Shore::Vertical, 0);
    EXPECT_EQ(g.neighbors(corner).size(), 5u);
}

TEST(Chimera, EdgesAreCanonicalAndUnique)
{
    const ChimeraGraph g(3, 3, 2);
    std::set<std::pair<int, int>> seen;
    for (const auto &[a, b] : g.edges()) {
        EXPECT_LT(a, b);
        EXPECT_TRUE(seen.emplace(a, b).second);
    }
}

TEST(Chimera, AdjacencySymmetric)
{
    const ChimeraGraph g(2, 3, 3);
    for (int q = 0; q < g.numQubits(); ++q) {
        for (int nb : g.neighbors(q))
            EXPECT_TRUE(g.connected(nb, q));
    }
}

TEST(Chimera, LineViewCounts)
{
    const ChimeraGraph g(5, 7, 4);
    EXPECT_EQ(g.numVerticalLines(), 7 * 4);
    EXPECT_EQ(g.numHorizontalLines(), 5 * 4);
}

TEST(Chimera, VerticalLineIsAConnectedPath)
{
    const ChimeraGraph g(6, 4, 4);
    const int line = 9; // column 2, track 1
    EXPECT_EQ(g.verticalLineColumn(line), 2);
    for (int r = 0; r + 1 < g.rows(); ++r) {
        EXPECT_TRUE(g.connected(g.verticalLineQubit(line, r),
                                g.verticalLineQubit(line, r + 1)));
    }
}

TEST(Chimera, HorizontalLineIsAConnectedPath)
{
    const ChimeraGraph g(4, 6, 4);
    const int line = 13; // row 3, track 1
    EXPECT_EQ(g.horizontalLineRow(line), 3);
    for (int c = 0; c + 1 < g.cols(); ++c) {
        EXPECT_TRUE(g.connected(g.horizontalLineQubit(line, c),
                                g.horizontalLineQubit(line, c + 1)));
    }
}

TEST(Chimera, LinesCrossWithACoupler)
{
    const ChimeraGraph g(4, 4, 4);
    // Vertical line (col 1, track 2) crosses horizontal line
    // (row 3, track 0) in cell (3,1): those qubits are coupled.
    const int vq = g.verticalLineQubit(1 * 4 + 2, 3);
    const int hq = g.horizontalLineQubit(3 * 4 + 0, 1);
    EXPECT_TRUE(g.connected(vq, hq));
}

} // namespace
} // namespace hyqsat::chimera
