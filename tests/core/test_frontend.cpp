#include <gtest/gtest.h>

#include "core/frontend.h"
#include "tests/sat/helpers.h"

namespace hyqsat::core {
namespace {

TEST(Frontend, ProducesValidEmbeddingForUnsolvedFormula)
{
    const auto g = chimera::ChimeraGraph::dwave2000q();
    Rng gen(1);
    const auto cnf = sat::testing::randomCnf(40, 170, 3, gen);
    sat::Solver solver;
    ASSERT_TRUE(solver.loadCnf(cnf));

    Frontend frontend(g, {});
    Rng rng(2);
    const auto result = frontend.run(solver, rng);
    EXPECT_FALSE(result.queue.empty());
    EXPECT_GT(result.embedded->embedded_clauses, 0);
    std::string why;
    EXPECT_TRUE(result.embedded->embedding.isValid(
        g, result.embedded->problem.edges(), &why))
        << why;
}

TEST(Frontend, EmbeddedClausesArePrefixOfQueue)
{
    const auto g = chimera::ChimeraGraph::dwave2000q();
    Rng gen(3);
    const auto cnf = sat::testing::randomCnf(80, 340, 3, gen);
    sat::Solver solver;
    ASSERT_TRUE(solver.loadCnf(cnf));
    Frontend frontend(g, {});
    Rng rng(4);
    const auto result = frontend.run(solver, rng);
    ASSERT_EQ(result.embedded_clauses.size(),
              static_cast<std::size_t>(
                  result.embedded->embedded_clauses));
    for (std::size_t i = 0; i < result.embedded_clauses.size(); ++i)
        EXPECT_EQ(result.embedded_clauses[i], result.queue[i]);
}

TEST(Frontend, CoversAllWhenFormulaIsSmall)
{
    const auto g = chimera::ChimeraGraph::dwave2000q();
    Rng gen(5);
    const auto cnf = sat::testing::randomCnf(15, 25, 3, gen);
    sat::Solver solver;
    ASSERT_TRUE(solver.loadCnf(cnf));
    Frontend frontend(g, {});
    Rng rng(6);
    const auto result = frontend.run(solver, rng);
    EXPECT_TRUE(result.covers_all_unsatisfied);
}

TEST(Frontend, DoesNotCoverAllWhenCapacityExceeded)
{
    const auto g = chimera::ChimeraGraph::dwave2000q();
    Rng gen(7);
    const auto cnf = sat::testing::randomCnf(200, 860, 3, gen);
    sat::Solver solver;
    ASSERT_TRUE(solver.loadCnf(cnf));
    Frontend frontend(g, {});
    Rng rng(8);
    const auto result = frontend.run(solver, rng);
    EXPECT_FALSE(result.covers_all_unsatisfied);
}

TEST(Frontend, EmptyResultOnSatisfiedFormula)
{
    const auto g = chimera::ChimeraGraph::dwave2000q();
    sat::Cnf cnf(2);
    cnf.addClause(sat::mkLit(0));
    cnf.addClause(sat::mkLit(1));
    sat::Solver solver;
    ASSERT_TRUE(solver.loadCnf(cnf)); // units satisfy everything
    Frontend frontend(g, {});
    Rng rng(9);
    const auto result = frontend.run(solver, rng);
    EXPECT_TRUE(result.queue.empty());
    EXPECT_TRUE(result.embedded_clauses.empty());
}

TEST(Frontend, ReportsTimeSpent)
{
    const auto g = chimera::ChimeraGraph::dwave2000q();
    Rng gen(10);
    const auto cnf = sat::testing::randomCnf(60, 250, 3, gen);
    sat::Solver solver;
    ASSERT_TRUE(solver.loadCnf(cnf));
    Frontend frontend(g, {});
    Rng rng(11);
    const auto result = frontend.run(solver, rng);
    EXPECT_GT(result.seconds, 0.0);
    EXPECT_LT(result.seconds, 1.0); // linear-time scheme
}

TEST(Frontend, RespectsQueueCapacityOption)
{
    const auto g = chimera::ChimeraGraph::dwave2000q();
    Rng gen(12);
    const auto cnf = sat::testing::randomCnf(60, 250, 3, gen);
    sat::Solver solver;
    ASSERT_TRUE(solver.loadCnf(cnf));
    FrontendOptions opts;
    opts.queue.capacity = 10;
    Frontend frontend(g, opts);
    Rng rng(13);
    const auto result = frontend.run(solver, rng);
    EXPECT_LE(result.queue.size(), 10u);
}

} // namespace
} // namespace hyqsat::core
