/**
 * @file
 * Determinism guard: the default synchronous depth-1 sampler path
 * must reproduce the pre-refactor (seed) solver bit for bit on a
 * fixed-seed suite. The golden table below was captured from the
 * blocking per-iteration loop before the pluggable sampler interface
 * landed; any change to RNG call ordering, sample scheduling or
 * warm-up accounting shows up here as a mismatch.
 */

#include <gtest/gtest.h>

#include "core/hybrid_solver.h"
#include "tests/sat/helpers.h"

namespace hyqsat::core {
namespace {

struct Golden
{
    int status; ///< 1 = SAT, 0 = UNSAT, -1 = UNDEF
    std::uint64_t iterations;
    std::uint64_t conflicts;
    int qa_samples;
    int warmup_iterations;
    int solved_by_qa;
    std::array<std::uint64_t, 4> strategies; ///< S1..S4
};

// Captured from the seed build (noise-free simulator, rounds 0-5).
const Golden kNoiseFreeGolden[] = {
    {0, 43, 36, 17, 17, 0, {0, 17, 0, 0}},
    {0, 60, 53, 19, 19, 0, {0, 19, 0, 0}},
    {0, 163, 146, 22, 22, 0, {0, 22, 0, 0}},
    {1, 71, 53, 24, 24, 0, {0, 24, 0, 0}},
    {0, 183, 157, 27, 27, 0, {0, 27, 0, 0}},
    {1, 350, 285, 30, 30, 0, {0, 30, 0, 0}},
};

// Captured from the seed build (noisy 2000Q model, rounds 0-2).
const Golden kNoisyGolden[] = {
    {0, 51, 43, 20, 20, 0, {0, 14, 5, 1}},
    {1, 110, 89, 20, 20, 0, {0, 11, 7, 2}},
    {1, 21, 4, 20, 20, 0, {0, 14, 6, 0}},
};

void
expectMatchesGolden(const HybridResult &r, const Golden &g,
                    const char *what, int round)
{
    const int status =
        r.status.isTrue() ? 1 : (r.status.isFalse() ? 0 : -1);
    EXPECT_EQ(status, g.status) << what << " round " << round;
    EXPECT_EQ(r.stats.iterations, g.iterations)
        << what << " round " << round;
    EXPECT_EQ(r.stats.conflicts, g.conflicts)
        << what << " round " << round;
    EXPECT_EQ(r.qa_samples, g.qa_samples)
        << what << " round " << round;
    EXPECT_EQ(r.warmup_iterations, g.warmup_iterations)
        << what << " round " << round;
    EXPECT_EQ(r.solved_by_qa ? 1 : 0, g.solved_by_qa)
        << what << " round " << round;
    for (int s = 1; s <= 4; ++s)
        EXPECT_EQ(r.strategy_count[s], g.strategies[s - 1])
            << what << " round " << round << " strategy " << s;
}

TEST(DeterminismGuard, SyncSamplerReproducesSeedNoiseFreeResults)
{
    for (int round = 0; round < 6; ++round) {
        Rng gen(1000 + round);
        const auto cnf = sat::testing::randomCnf(
            40 + 8 * round, 170 + 34 * round, 3, gen);
        HybridConfig cfg;
        cfg.annealer.noise = anneal::NoiseModel::noiseFree();
        cfg.annealer.greedy_finish = true;
        cfg.annealer.attempts = 2;
        cfg.seed = 0xd5eed + round;
        cfg.sampler = "sync";
        cfg.pipeline_depth = 1;
        HybridSolver solver(cfg);
        expectMatchesGolden(solver.solve(cnf),
                            kNoiseFreeGolden[round], "noise-free",
                            round);
    }
}

TEST(DeterminismGuard, SyncSamplerReproducesSeedNoisyResults)
{
    for (int round = 0; round < 3; ++round) {
        Rng gen(2000 + round);
        const auto cnf = sat::testing::randomCnf(50, 212, 3, gen);
        HybridConfig cfg;
        cfg.annealer.noise = anneal::NoiseModel::dwave2000q();
        cfg.annealer.greedy_finish = true;
        cfg.annealer.attempts = 1;
        cfg.seed = 0xabc + round;
        cfg.sampler = "sync";
        cfg.pipeline_depth = 1;
        HybridSolver solver(cfg);
        expectMatchesGolden(solver.solve(cnf), kNoisyGolden[round],
                            "noisy", round);
    }
}

TEST(DeterminismGuard, RepeatedSolvesAreBitForBitIdentical)
{
    Rng gen(1234);
    const auto cnf = sat::testing::randomCnf(48, 204, 3, gen);
    HybridConfig cfg;
    cfg.annealer.noise = anneal::NoiseModel::dwave2000q();
    cfg.annealer.greedy_finish = true;
    cfg.seed = 0x900d;

    HybridSolver solver(cfg);
    const auto a = solver.solve(cnf);
    const auto b = solver.solve(cnf); // same solver, fresh sampler
    HybridSolver other(cfg);
    const auto c = other.solve(cnf);

    for (const auto *r : {&b, &c}) {
        EXPECT_EQ(a.status.isTrue(), r->status.isTrue());
        EXPECT_EQ(a.stats.iterations, r->stats.iterations);
        EXPECT_EQ(a.stats.conflicts, r->stats.conflicts);
        EXPECT_EQ(a.qa_samples, r->qa_samples);
        EXPECT_EQ(a.model, r->model);
        EXPECT_EQ(a.strategy_count, r->strategy_count);
    }
}

} // namespace
} // namespace hyqsat::core
