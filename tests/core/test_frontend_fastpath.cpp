/**
 * @file
 * Frontend fast path: workspace-vs-one-shot equivalence, the
 * (embedding, encoding) memo's hit/miss/eviction accounting, the
 * cache-bypass knob, and the A/B determinism guard proving the whole
 * fast path (workspace + cache + incremental clause tracking) leaves
 * HybridResult bit-identical to the slow path.
 */

#include <gtest/gtest.h>

#include "core/frontend.h"
#include "core/hybrid_solver.h"
#include "tests/sat/helpers.h"
#include "util/metrics.h"

namespace hyqsat::core {
namespace {

sat::Solver
loadedSolver(const sat::Cnf &cnf, bool tracking = false)
{
    sat::SolverOptions opts;
    opts.incremental_clause_tracking = tracking;
    sat::Solver solver(opts);
    EXPECT_TRUE(solver.loadCnf(cnf));
    return solver;
}

/** Full comparable surface of a FrontendResult (minus timing). */
void
expectSameResult(const FrontendResult &a, const FrontendResult &b)
{
    EXPECT_EQ(a.queue, b.queue);
    EXPECT_EQ(a.embedded_clauses, b.embedded_clauses);
    EXPECT_EQ(a.covers_all_unsatisfied, b.covers_all_unsatisfied);
    ASSERT_TRUE(a.embedded);
    ASSERT_TRUE(b.embedded);
    EXPECT_EQ(a.embedded->embedded_clauses,
              b.embedded->embedded_clauses);
    EXPECT_EQ(a.embedded->all_embedded, b.embedded->all_embedded);
    EXPECT_EQ(a.embedded->problem.numNodes(),
              b.embedded->problem.numNodes());
    EXPECT_EQ(a.embedded->problem.var_node,
              b.embedded->problem.var_node);
}

TEST(FrontendFastPath, WorkspaceMatchesOneShot)
{
    const chimera::ChimeraGraph graph(16, 16, 4);
    const Frontend frontend(graph, {});
    FrontendWorkspace ws;
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
        Rng gen(seed);
        const auto cnf = sat::testing::randomCnf(30, 120, 3, gen);
        const auto solver = loadedSolver(cnf);
        Rng rng_a(seed * 31), rng_b(seed * 31);
        const auto one_shot = frontend.run(solver, rng_a);
        const auto reused = frontend.run(solver, rng_b, ws);
        expectSameResult(one_shot, reused);
        // Identical RNG consumption: the streams stay in lockstep.
        EXPECT_EQ(rng_a.next(), rng_b.next());
    }
}

TEST(FrontendFastPath, TrackingSolverMatchesScanSolver)
{
    const chimera::ChimeraGraph graph(16, 16, 4);
    const Frontend frontend(graph, {});
    Rng gen(4);
    const auto cnf = sat::testing::randomCnf(40, 170, 3, gen);
    auto scan = loadedSolver(cnf, false);
    auto track = loadedSolver(cnf, true);
    scan.setConflictBudget(300);
    track.setConflictBudget(300);
    EXPECT_EQ(scan.solve(), track.solve()); // deterministic twins
    Rng rng_a(99), rng_b(99);
    expectSameResult(frontend.run(scan, rng_a),
                     frontend.run(track, rng_b));
}

TEST(FrontendFastPath, RepeatedRunsHitTheCache)
{
    const chimera::ChimeraGraph graph(16, 16, 4);
    MetricsRegistry metrics;
    const Frontend frontend(graph, {}, &metrics);
    Rng gen(5);
    const auto cnf = sat::testing::randomCnf(25, 90, 3, gen);
    const auto solver = loadedSolver(cnf);
    FrontendWorkspace ws;

    FrontendResult first, second;
    {
        Rng rng(7);
        first = frontend.run(solver, rng, ws);
    }
    {
        Rng rng(7);
        second = frontend.run(solver, rng, ws);
    }
    expectSameResult(first, second);
    // The hit shares the stored entry instead of recomputing it.
    EXPECT_EQ(first.embedded.get(), second.embedded.get());
    EXPECT_EQ(metrics.counter("frontend.runs")->value(), 2u);
    EXPECT_EQ(metrics.counter("frontend.cache.misses")->value(), 1u);
    EXPECT_EQ(metrics.counter("frontend.cache.hits")->value(), 1u);
    EXPECT_EQ(metrics.counter("frontend.cache.evictions")->value(),
              0u);
}

TEST(FrontendFastPath, BypassKnobDisablesTheCache)
{
    const chimera::ChimeraGraph graph(16, 16, 4);
    MetricsRegistry metrics;
    FrontendOptions opts;
    opts.cache_embeddings = false;
    const Frontend frontend(graph, opts, &metrics);
    Rng gen(6);
    const auto cnf = sat::testing::randomCnf(25, 90, 3, gen);
    const auto solver = loadedSolver(cnf);
    FrontendWorkspace ws;

    FrontendResult first, second;
    {
        Rng rng(8);
        first = frontend.run(solver, rng, ws);
    }
    {
        Rng rng(8);
        second = frontend.run(solver, rng, ws);
    }
    expectSameResult(first, second);
    EXPECT_NE(first.embedded.get(), second.embedded.get());
    // The metrics contract holds with the cache off too:
    // every run records exactly one of hits/misses.
    EXPECT_EQ(metrics.counter("frontend.runs")->value(), 2u);
    EXPECT_EQ(metrics.counter("frontend.cache.misses")->value(), 2u);
    EXPECT_EQ(metrics.counter("frontend.cache.hits")->value(), 0u);
}

TEST(FrontendFastPath, CapacityOneEvictsOnAlternation)
{
    const chimera::ChimeraGraph graph(16, 16, 4);
    MetricsRegistry metrics;
    FrontendOptions opts;
    opts.cache_capacity = 1;
    const Frontend frontend(graph, opts, &metrics);
    Rng gen_a(10), gen_b(11);
    const auto cnf_a = sat::testing::randomCnf(25, 90, 3, gen_a);
    const auto cnf_b = sat::testing::randomCnf(25, 90, 3, gen_b);
    const auto solver_a = loadedSolver(cnf_a);
    const auto solver_b = loadedSolver(cnf_b);
    FrontendWorkspace ws; // shared: the cache sees both queues

    for (int round = 0; round < 3; ++round) {
        Rng rng_a(21), rng_b(22);
        (void)frontend.run(solver_a, rng_a, ws);
        (void)frontend.run(solver_b, rng_b, ws);
    }
    // Round 1 misses twice (insert A, evict A for B); every later
    // round alternates, so all 6 runs miss and 5 inserts evict.
    EXPECT_EQ(metrics.counter("frontend.runs")->value(), 6u);
    EXPECT_EQ(metrics.counter("frontend.cache.misses")->value(), 6u);
    EXPECT_EQ(metrics.counter("frontend.cache.hits")->value(), 0u);
    EXPECT_EQ(metrics.counter("frontend.cache.evictions")->value(),
              5u);
}

TEST(FrontendFastPath, EmptyQueueCountsAsMissAndYieldsEmptyProblem)
{
    const chimera::ChimeraGraph graph(16, 16, 4);
    MetricsRegistry metrics;
    const Frontend frontend(graph, {}, &metrics);
    sat::Cnf cnf(1);
    cnf.addClause(sat::mkLit(0));
    const auto solver = loadedSolver(cnf); // unit propagated: all sat
    Rng rng(1);
    const auto result = frontend.run(solver, rng);
    EXPECT_TRUE(result.queue.empty());
    ASSERT_TRUE(result.embedded);
    EXPECT_EQ(result.embedded->problem.numNodes(), 0);
    EXPECT_EQ(metrics.counter("frontend.runs")->value(), 1u);
    EXPECT_EQ(metrics.counter("frontend.cache.misses")->value(), 1u);
    EXPECT_EQ(metrics.counter("frontend.cache.hits")->value(), 0u);
}

TEST(FrontendFastPath, UnsatPathCountersFollowTheSolverMode)
{
    const chimera::ChimeraGraph graph(16, 16, 4);
    MetricsRegistry metrics;
    const Frontend frontend(graph, {}, &metrics);
    Rng gen(12);
    const auto cnf = sat::testing::randomCnf(25, 90, 3, gen);
    const auto scan = loadedSolver(cnf, false);
    const auto track = loadedSolver(cnf, true);
    Rng rng(2);
    (void)frontend.run(scan, rng);
    (void)frontend.run(track, rng);
    EXPECT_EQ(metrics.counter("frontend.unsat.scans")->value(), 1u);
    EXPECT_EQ(metrics.counter("frontend.unsat.incremental")->value(),
              1u);
}

/** The comparable surface of a HybridResult (A/B determinism). */
void
expectSameHybridResult(const HybridResult &a, const HybridResult &b)
{
    EXPECT_EQ(a.status.isTrue(), b.status.isTrue());
    EXPECT_EQ(a.status.isFalse(), b.status.isFalse());
    EXPECT_EQ(a.model, b.model);
    EXPECT_EQ(a.stats.iterations, b.stats.iterations);
    EXPECT_EQ(a.stats.decisions, b.stats.decisions);
    EXPECT_EQ(a.stats.conflicts, b.stats.conflicts);
    EXPECT_EQ(a.stats.propagations, b.stats.propagations);
    EXPECT_EQ(a.stats.restarts, b.stats.restarts);
    EXPECT_EQ(a.warmup_iterations, b.warmup_iterations);
    EXPECT_EQ(a.qa_samples, b.qa_samples);
    EXPECT_EQ(a.qa_submitted, b.qa_submitted);
    EXPECT_EQ(a.strategy_count, b.strategy_count);
    EXPECT_EQ(a.solved_by_qa, b.solved_by_qa);
}

TEST(FrontendFastPath, HybridResultIdenticalWithFastPathOnAndOff)
{
    for (const std::uint64_t seed : {0xabcdu, 0x1234u, 0x77u}) {
        Rng gen(seed);
        const auto cnf = sat::testing::randomCnf(30, 126, 3, gen);

        HybridConfig fast;
        fast.annealer.noise = anneal::NoiseModel::noiseFree();
        fast.annealer.greedy_finish = true;
        fast.seed = seed;
        fast.solver.conflict_budget = 2000;
        HybridConfig slow = fast;

        fast.frontend.cache_embeddings = true;
        fast.solver.incremental_clause_tracking = true;
        slow.frontend.cache_embeddings = false;
        slow.solver.incremental_clause_tracking = false;

        const auto a = HybridSolver(fast).solve(cnf);
        const auto b = HybridSolver(slow).solve(cnf);
        expectSameHybridResult(a, b);
    }
}

} // namespace
} // namespace hyqsat::core
