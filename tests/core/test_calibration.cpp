#include <gtest/gtest.h>

#include "core/calibration.h"

namespace hyqsat::core {
namespace {

TEST(Calibration, FitsClassifierFromDeviceSamples)
{
    const auto graph = chimera::ChimeraGraph::dwave2000q();
    anneal::QuantumAnnealer::Options opts;
    opts.noise = anneal::NoiseModel::dwave2000q();
    opts.greedy_finish = true;
    anneal::QuantumAnnealer annealer(graph, opts);

    CalibrationOptions copts;
    copts.problems_per_class = 25;
    const auto result =
        calibrateEnergyClassifier(annealer, graph, copts);

    EXPECT_EQ(result.energies.size(), 50u);
    EXPECT_GE(result.classifier.nearUnsatCut(),
              result.classifier.nearSatCut());
    EXPECT_GT(result.accuracy, 0.5); // better than coin flips
    // Zero energy always classifies satisfiable.
    EXPECT_EQ(result.classifier.classify(0.0),
              bayes::SatisfactionClass::Satisfiable);
}

TEST(Calibration, NoiseFreeSeparatesWell)
{
    // With a noise-free annealer, satisfiable problems sample at
    // zero and unsatisfiable ones strictly above: accuracy is high.
    const auto graph = chimera::ChimeraGraph::dwave2000q();
    anneal::QuantumAnnealer::Options opts;
    opts.noise = anneal::NoiseModel::noiseFree();
    opts.greedy_finish = true;
    opts.attempts = 2;
    anneal::QuantumAnnealer annealer(graph, opts);

    CalibrationOptions copts;
    copts.problems_per_class = 20;
    const auto result =
        calibrateEnergyClassifier(annealer, graph, copts);
    EXPECT_GT(result.accuracy, 0.9);
}

TEST(Calibration, WeightedEnergyAxisSupported)
{
    const auto graph = chimera::ChimeraGraph::dwave2000q();
    anneal::QuantumAnnealer::Options opts;
    opts.noise = anneal::NoiseModel::dwave2000q();
    opts.greedy_finish = true;
    anneal::QuantumAnnealer annealer(graph, opts);

    CalibrationOptions copts;
    copts.problems_per_class = 15;
    copts.use_weighted_energy = true;
    const auto result =
        calibrateEnergyClassifier(annealer, graph, copts);
    EXPECT_EQ(result.energies.size(), 30u);
}

TEST(Calibration, DeterministicPerSeed)
{
    const auto graph = chimera::ChimeraGraph::dwave2000q();
    CalibrationOptions copts;
    copts.problems_per_class = 10;

    anneal::QuantumAnnealer a(graph, {}), b(graph, {});
    const auto ra = calibrateEnergyClassifier(a, graph, copts);
    const auto rb = calibrateEnergyClassifier(b, graph, copts);
    EXPECT_EQ(ra.energies, rb.energies);
    EXPECT_DOUBLE_EQ(ra.classifier.nearSatCut(),
                     rb.classifier.nearSatCut());
}

} // namespace
} // namespace hyqsat::core
