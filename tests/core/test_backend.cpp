#include <gtest/gtest.h>

#include "core/backend.h"
#include "core/frontend.h"
#include "tests/sat/helpers.h"

namespace hyqsat::core {
namespace {

/** Fixture: solver + frontend result for a small formula. */
struct Fixture
{
    chimera::ChimeraGraph graph{16, 16, 4};
    sat::Cnf cnf;
    sat::Solver solver;
    FrontendResult frontend;

    explicit Fixture(int num_vars = 8, int num_clauses = 12,
                     std::uint64_t seed = 1)
    {
        Rng gen(seed);
        cnf = sat::testing::randomCnf(num_vars, num_clauses, 3, gen);
        EXPECT_TRUE(solver.loadCnf(cnf));
        Frontend fe(graph, {});
        Rng rng(seed + 1);
        frontend = fe.run(solver, rng);
    }

    anneal::AnnealSample
    sampleWithEnergy(double clause_energy)
    {
        anneal::AnnealSample s;
        s.node_bits.assign(frontend.embedded->problem.numNodes(),
                           false);
        s.clause_energy = clause_energy;
        return s;
    }
};

TEST(Backend, Strategy1FinishesWithVerifiedModel)
{
    Fixture fx;
    ASSERT_TRUE(fx.frontend.covers_all_unsatisfied);

    // Build a genuinely satisfying sample via brute force over the
    // encoded problem's SAT variables.
    const auto &problem = fx.frontend.embedded->problem;
    anneal::AnnealSample sample;
    sample.node_bits.assign(problem.numNodes(), false);
    bool found = false;
    const int n = problem.numNodes();
    ASSERT_LE(n, 24);
    for (std::uint64_t bits = 0; bits < (1ull << n) && !found;
         ++bits) {
        for (int i = 0; i < n; ++i)
            sample.node_bits[i] = (bits >> i) & 1;
        found = problem.clauseSpaceEnergy(sample.node_bits) == 0.0;
    }
    ASSERT_TRUE(found) << "fixture formula should be satisfiable";
    sample.clause_energy = 0.0;

    Backend backend({});
    const auto outcome =
        backend.apply(fx.solver, fx.frontend, sample, fx.cnf);
    EXPECT_EQ(outcome.strategy, 1);
    ASSERT_TRUE(outcome.solved);
    EXPECT_TRUE(fx.cnf.eval(outcome.model));
}

TEST(Backend, Strategy2SetsPhasesFromSample)
{
    Fixture fx(30, 100, 3);
    auto sample = fx.sampleWithEnergy(2.0); // near-satisfiable
    // Make the sample assignments distinctive: all true.
    for (auto &&bit : sample.node_bits)
        bit = true;

    Backend backend({});
    const auto outcome =
        backend.apply(fx.solver, fx.frontend, sample, fx.cnf);
    EXPECT_EQ(outcome.strategy, 2);
    EXPECT_FALSE(outcome.solved);

    // The embedded variables' forced phases steer the next
    // decisions: solve and check the model agrees on at least the
    // unconstrained embedded variables... weaker but deterministic:
    // phases are forced, so decisions pick 'true' first.
    // Spot-check via a fresh decision:
    // (indirect verification through solver behaviour is covered by
    // Solver.SetPhaseForcesDecisionPolarity; here we just ensure no
    // crash and correct classification.)
    EXPECT_EQ(outcome.cls, bayes::SatisfactionClass::NearSatisfiable);
}

TEST(Backend, Strategy3LeavesSolverAlone)
{
    Fixture fx(30, 100, 5);
    const auto sample = fx.sampleWithEnergy(6.0); // uncertain
    Backend backend({});
    const auto outcome =
        backend.apply(fx.solver, fx.frontend, sample, fx.cnf);
    EXPECT_EQ(outcome.strategy, 3);
    EXPECT_EQ(outcome.cls, bayes::SatisfactionClass::Uncertain);
    EXPECT_FALSE(outcome.solved);
}

TEST(Backend, Strategy4OnNearUnsatisfiable)
{
    Fixture fx(30, 100, 7);
    const auto sample = fx.sampleWithEnergy(20.0);
    Backend backend({});
    const auto outcome =
        backend.apply(fx.solver, fx.frontend, sample, fx.cnf);
    EXPECT_EQ(outcome.strategy, 4);
    EXPECT_EQ(outcome.cls,
              bayes::SatisfactionClass::NearUnsatisfiable);
}

TEST(Backend, AblationSwitchesDisableStrategies)
{
    Fixture fx(30, 100, 9);

    BackendOptions no_s2;
    no_s2.enable_strategy2 = false;
    const auto near_sat = fx.sampleWithEnergy(2.0);
    const auto o2 = Backend(no_s2).apply(fx.solver, fx.frontend,
                                         near_sat, fx.cnf);
    EXPECT_EQ(o2.strategy, 3); // downgraded to "no guidance"

    BackendOptions no_s4;
    no_s4.enable_strategy4 = false;
    const auto near_unsat = fx.sampleWithEnergy(20.0);
    const auto o4 = Backend(no_s4).apply(fx.solver, fx.frontend,
                                         near_unsat, fx.cnf);
    EXPECT_EQ(o4.strategy, 3);
}

TEST(Backend, Strategy1RequiresFullCoverage)
{
    Fixture fx(200, 860, 11); // far beyond QA capacity
    ASSERT_FALSE(fx.frontend.covers_all_unsatisfied);
    const auto sample = fx.sampleWithEnergy(0.0);
    Backend backend({});
    const auto outcome =
        backend.apply(fx.solver, fx.frontend, sample, fx.cnf);
    EXPECT_FALSE(outcome.solved);
    EXPECT_EQ(outcome.strategy, 2); // falls through to hints
}

TEST(Backend, Strategy1RejectsNonVerifyingModel)
{
    Fixture fx; // covers all
    ASSERT_TRUE(fx.frontend.covers_all_unsatisfied);
    // Claim energy 0 but hand over an assignment violating clauses.
    auto sample = fx.sampleWithEnergy(0.0);
    Backend backend({});
    const auto outcome =
        backend.apply(fx.solver, fx.frontend, sample, fx.cnf);
    // Either the all-false assignment happens to satisfy (unlikely)
    // or the backend degrades to strategy 2 without solving.
    if (!outcome.solved)
        EXPECT_EQ(outcome.strategy, 2);
}

TEST(Backend, EmptyProblemIsNoop)
{
    Fixture fx;
    FrontendResult empty;
    anneal::AnnealSample sample;
    Backend backend({});
    const auto outcome =
        backend.apply(fx.solver, empty, sample, fx.cnf);
    EXPECT_EQ(outcome.strategy, 3);
    EXPECT_FALSE(outcome.solved);
}

} // namespace
} // namespace hyqsat::core
