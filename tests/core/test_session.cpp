/**
 * @file
 * The incremental hybrid session: IPASIR-style solve(assumptions)
 * with clause addition between calls, state retention across solves,
 * simplify-eliminated-variable handling (freeze-and-recompile), core
 * map-back, and a fuzz harness racing random ADD/ASSUME/SOLVE
 * interleavings against fresh ground-truth solves.
 */

#include <gtest/gtest.h>

#include "core/session.h"
#include "sat/brute_force.h"
#include "tests/sat/helpers.h"
#include "util/rng.h"

namespace hyqsat::core {
namespace {

using sat::Cnf;
using sat::Lit;
using sat::LitVec;
using sat::mkLit;
using sat::Var;

/** Small config: tiny topology, no embedding — fast warm loop. */
HybridConfig
testConfig()
{
    HybridConfig config;
    config.chimera_rows = 2;
    config.chimera_cols = 2;
    config.use_embedding = false;
    config.sampler = "sa";
    config.warmup_override = 4;
    return config;
}

TEST(Session, SolveAddSolveRetainsState)
{
    Session session(testConfig());
    Rng rng(7);
    const Cnf base = sat::testing::randomCnf(30, 90, 3, rng);
    ASSERT_TRUE(session.addFormula(base));

    const HybridResult first = session.solve();
    ASSERT_FALSE(first.status.isUndef());
    EXPECT_EQ(session.recompiles(), 1);

    // A delta clause must not trigger a recompile, and the second
    // call must agree with a fresh solver on the grown formula.
    Cnf grown = base;
    grown.addClause(mkLit(0), mkLit(1), mkLit(2));
    ASSERT_TRUE(session.addClause(
        LitVec{mkLit(0), mkLit(1), mkLit(2)}));
    const HybridResult second = session.solve();
    EXPECT_EQ(session.recompiles(), 1);
    ASSERT_FALSE(second.status.isUndef());
    EXPECT_EQ(second.status.isTrue(),
              sat::bruteForceSolve(grown).satisfiable);
    if (second.status.isTrue())
        EXPECT_TRUE(grown.eval(second.model));
}

TEST(Session, AssumptionSeriesMatchesFreshSolves)
{
    HybridConfig config = testConfig();
    config.simplify_strength = simplify::Strength::Full;
    Session session(config);
    Rng rng(11);
    const int vars = 16;
    const Cnf base = sat::testing::randomCnf(vars, 40, 3, rng);
    ASSERT_TRUE(session.addFormula(base));

    for (int call = 0; call < 12; ++call) {
        LitVec assumptions;
        const int depth = 1 + static_cast<int>(rng.below(3));
        for (int i = 0; i < depth; ++i) {
            assumptions.push_back(mkLit(
                static_cast<Var>(rng.below(vars)), rng.chance(0.5)));
        }
        const HybridResult r = session.solve(assumptions);
        ASSERT_FALSE(r.status.isUndef()) << "call " << call;

        Cnf direct = base;
        for (const Lit a : assumptions)
            direct.addClause(a);
        EXPECT_EQ(r.status.isTrue(),
                  sat::bruteForceSolve(direct).satisfiable)
            << "call " << call;
        if (r.status.isTrue())
            EXPECT_TRUE(direct.eval(r.model)) << "call " << call;
    }
    EXPECT_EQ(session.solves(), 12);
}

TEST(Session, FailedAssumptionCoreNamesOriginalLiterals)
{
    Session session(testConfig());
    // x0 -> x1, x1 -> x2: assuming x0 and ~x2 must fail, and the
    // core must name (negations of) a subset of the assumptions.
    ASSERT_TRUE(
        session.addClause(LitVec{mkLit(0, true), mkLit(1)}));
    ASSERT_TRUE(
        session.addClause(LitVec{mkLit(1, true), mkLit(2)}));
    const LitVec assumptions{mkLit(0), mkLit(2, true)};
    const HybridResult r = session.solve(assumptions);
    ASSERT_TRUE(r.status.isFalse());
    const LitVec &core = session.failedAssumptions();
    ASSERT_FALSE(core.empty());
    for (const Lit c : core) {
        bool from_assumption = false;
        for (const Lit a : assumptions)
            from_assumption = from_assumption || c == ~a;
        EXPECT_TRUE(from_assumption);
    }
    // The session recovers: dropping one assumption is satisfiable.
    const HybridResult again = session.solve(LitVec{mkLit(0)});
    EXPECT_TRUE(again.status.isTrue());
}

TEST(Session, UnsatFormulaYieldsEmptyCore)
{
    Session session(testConfig());
    ASSERT_TRUE(session.addClause(LitVec{mkLit(0)}));
    ASSERT_TRUE(session.solve().status.isTrue());
    // Live delta path: the contradiction is detected on addition.
    EXPECT_FALSE(session.addClause(LitVec{mkLit(0, true)}));
    const HybridResult r = session.solve(LitVec{mkLit(1)});
    ASSERT_TRUE(r.status.isFalse());
    EXPECT_TRUE(session.failedAssumptions().empty())
        << "UNSAT-regardless-of-assumptions must report an empty core";
    // Pre-compile additions are lazy; an UNSAT verdict still
    // arrives at the next solve.
    Session lazy(testConfig());
    ASSERT_TRUE(lazy.addClause(LitVec{mkLit(0)}));
    lazy.addClause(LitVec{mkLit(0, true)});
    const HybridResult r2 = lazy.solve(LitVec{mkLit(1)});
    ASSERT_TRUE(r2.status.isFalse());
    EXPECT_TRUE(lazy.failedAssumptions().empty());
}

TEST(Session, AssumptionOnEliminatedVarFreezesAndRecompiles)
{
    HybridConfig config = testConfig();
    config.simplify_strength = simplify::Strength::Full;
    Session session(config);
    // The same shape the simplify-layer test proves BVE eliminates
    // x0 from when unfrozen.
    ASSERT_TRUE(
        session.addClause(LitVec{mkLit(0), mkLit(1), mkLit(2)}));
    ASSERT_TRUE(
        session.addClause(LitVec{mkLit(0, true), mkLit(2), mkLit(3)}));
    ASSERT_TRUE(session.addClause(LitVec{mkLit(1), mkLit(3)}));

    const HybridResult plain = session.solve();
    ASSERT_TRUE(plain.status.isTrue());
    const int compiles_before = session.recompiles();

    // Assuming over the eliminated variable must transparently
    // freeze it and recompile, then solve correctly both ways.
    for (const bool sign : {false, true}) {
        const LitVec assumptions{mkLit(0, sign)};
        const HybridResult r = session.solve(assumptions);
        ASSERT_FALSE(r.status.isUndef());
        Cnf direct = session.formula();
        direct.addClause(assumptions[0]);
        EXPECT_EQ(r.status.isTrue(),
                  sat::bruteForceSolve(direct).satisfiable);
        if (r.status.isTrue())
            EXPECT_TRUE(direct.eval(r.model));
    }
    EXPECT_GT(session.recompiles(), compiles_before);
    // Frozen now: a third assumption solve stays warm.
    const int after_freeze = session.recompiles();
    const HybridResult warm = session.solve(LitVec{mkLit(0)});
    ASSERT_FALSE(warm.status.isUndef());
    EXPECT_EQ(session.recompiles(), after_freeze);
}

TEST(Session, OpenSessionSharesHybridConfig)
{
    HybridConfig config = testConfig();
    config.seed = 1234;
    HybridSolver solver(config);
    const std::unique_ptr<Session> session = solver.openSession();
    EXPECT_EQ(session->config().seed, 1234u);
    ASSERT_TRUE(
        session->addClause(LitVec{mkLit(0), mkLit(1), mkLit(2)}));
    EXPECT_TRUE(session->solve().status.isTrue());
}

TEST(Session, MetricsMergeOnClose)
{
    MetricsRegistry external;
    HybridConfig config = testConfig();
    config.metrics = &external;
    {
        Session session(config);
        ASSERT_TRUE(
            session.addClause(LitVec{mkLit(0), mkLit(1)}));
        session.solve();
        session.solve(LitVec{mkLit(0)});
    }
    EXPECT_EQ(external.counter("session.solves")->value(), 2u);
    EXPECT_EQ(external.counter("session.recompiles")->value(), 1u);
}

/**
 * The fuzz harness (issue satellite): random ADD/ASSUME/SOLVE
 * interleavings against fresh-solver ground truth. SAT models are
 * verified clause by clause (Cnf::eval over the accumulated formula
 * plus the assumptions); UNSAT cores are checked consistent by
 * re-solving the formula with only the core's assumptions — that
 * subset must itself be UNSAT.
 */
TEST(SessionFuzz, RandomInterleavingsMatchGroundTruth)
{
    Rng gen(101);
    for (int round = 0; round < 6; ++round) {
        HybridConfig config = testConfig();
        config.simplify_strength = (round % 2) != 0
                                       ? simplify::Strength::Full
                                       : simplify::Strength::Off;
        config.seed = 0x9e3779b9u + static_cast<std::uint64_t>(round);
        Session session(config);
        const int vars = 12;
        Cnf reference(vars);
        LitVec pending_assumptions;

        const int steps = 30;
        for (int step = 0; step < steps; ++step) {
            const double dice = gen.uniform();
            if (dice < 0.45) { // ADD
                LitVec clause;
                const int len = 1 + static_cast<int>(gen.below(3));
                while (static_cast<int>(clause.size()) < len) {
                    const Var v = static_cast<Var>(gen.below(vars));
                    bool fresh = true;
                    for (const Lit p : clause)
                        fresh = fresh && p.var() != v;
                    if (fresh)
                        clause.push_back(mkLit(v, gen.chance(0.5)));
                }
                reference.addClause(clause);
                session.addClause(clause);
            } else if (dice < 0.70) { // ASSUME
                pending_assumptions.push_back(mkLit(
                    static_cast<Var>(gen.below(vars)),
                    gen.chance(0.5)));
            } else { // SOLVE
                const LitVec assumptions = pending_assumptions;
                pending_assumptions.clear();
                const HybridResult r = session.solve(assumptions);
                ASSERT_FALSE(r.status.isUndef())
                    << "round " << round << " step " << step;

                Cnf direct = reference;
                for (const Lit a : assumptions)
                    direct.addClause(a);
                const bool expected =
                    sat::bruteForceSolve(direct).satisfiable;
                ASSERT_EQ(r.status.isTrue(), expected)
                    << "round " << round << " step " << step;

                if (r.status.isTrue()) {
                    ASSERT_TRUE(direct.eval(r.model))
                        << "round " << round << " step " << step;
                } else {
                    // Core consistency: the core alone (as
                    // assumptions over the formula) must be UNSAT.
                    Cnf core_check = reference;
                    for (const Lit c :
                         session.failedAssumptions()) {
                        core_check.addClause(~c);
                    }
                    ASSERT_FALSE(
                        sat::bruteForceSolve(core_check).satisfiable)
                        << "round " << round << " step " << step;
                }
            }
        }
    }
}

} // namespace
} // namespace hyqsat::core
