#include <gtest/gtest.h>

#include "core/hybrid_solver.h"
#include "gen/random_sat.h"
#include "sat/brute_force.h"
#include "tests/sat/helpers.h"

namespace hyqsat::core {
namespace {

HybridConfig
noiseFreeConfig(std::uint64_t seed = 0x12345)
{
    HybridConfig cfg;
    cfg.annealer.noise = anneal::NoiseModel::noiseFree();
    cfg.annealer.greedy_finish = true;
    cfg.annealer.attempts = 2;
    cfg.seed = seed;
    return cfg;
}

TEST(HybridSolver, AgreesWithBruteForceOnSmallInstances)
{
    Rng gen(1);
    for (int round = 0; round < 10; ++round) {
        const auto cnf = sat::testing::randomCnf(14, 58, 3, gen);
        const bool expected = sat::bruteForceSolve(cnf).satisfiable;
        HybridSolver solver(noiseFreeConfig(round));
        const auto result = solver.solve(cnf);
        ASSERT_FALSE(result.status.isUndef());
        EXPECT_EQ(result.status.isTrue(), expected)
            << "round " << round;
        if (result.status.isTrue())
            EXPECT_TRUE(cnf.eval(result.model));
    }
}

TEST(HybridSolver, AgreesWithClassicCdclOnMediumInstances)
{
    Rng gen(2);
    for (int round = 0; round < 5; ++round) {
        const auto cnf = sat::testing::randomCnf(60, 255, 3, gen);
        const auto classic =
            solveClassicCdcl(cnf, sat::SolverOptions::minisatStyle());
        HybridSolver solver(noiseFreeConfig(100 + round));
        const auto hybrid = solver.solve(cnf);
        EXPECT_EQ(hybrid.status.isTrue(), classic.status.isTrue())
            << "round " << round;
    }
}

TEST(HybridSolver, NoisyAnnealerStaysSound)
{
    Rng gen(3);
    HybridConfig cfg;
    cfg.annealer.noise = anneal::NoiseModel::dwave2000q();
    cfg.annealer.noise.readout_flip_prob = 0.05;
    for (int round = 0; round < 5; ++round) {
        const auto cnf = sat::testing::randomCnf(14, 60, 3, gen);
        const bool expected = sat::bruteForceSolve(cnf).satisfiable;
        HybridSolver solver(cfg);
        const auto result = solver.solve(cnf);
        ASSERT_FALSE(result.status.isUndef());
        EXPECT_EQ(result.status.isTrue(), expected)
            << "round " << round;
    }
}

TEST(HybridSolver, WarmupIterationsBounded)
{
    Rng gen(4);
    const auto cnf = sat::testing::randomCnf(60, 255, 3, gen);
    auto cfg = noiseFreeConfig();
    cfg.warmup_override = 7;
    HybridSolver solver(cfg);
    const auto result = solver.solve(cnf);
    EXPECT_LE(result.warmup_iterations, 7);
    EXPECT_LE(result.qa_samples, 7);
}

TEST(HybridSolver, ZeroWarmupIsPlainCdcl)
{
    Rng gen(5);
    const auto cnf = sat::testing::randomCnf(50, 210, 3, gen);
    auto cfg = noiseFreeConfig();
    cfg.warmup_override = 0;
    HybridSolver solver(cfg);
    const auto result = solver.solve(cnf);
    EXPECT_EQ(result.qa_samples, 0);
    EXPECT_EQ(result.time.qa_device_s, 0.0);
    EXPECT_FALSE(result.status.isUndef());
}

TEST(HybridSolver, DeviceTimeAccountsSamples)
{
    Rng gen(6);
    const auto cnf = sat::testing::randomCnf(60, 255, 3, gen);
    auto cfg = noiseFreeConfig();
    cfg.warmup_override = 5;
    HybridSolver solver(cfg);
    const auto result = solver.solve(cnf);
    EXPECT_NEAR(result.time.qa_device_s,
                result.qa_samples * 130e-6, 1e-9);
}

TEST(HybridSolver, StrategyCountsSumToSamples)
{
    Rng gen(7);
    const auto cnf = sat::testing::randomCnf(80, 340, 3, gen);
    HybridSolver solver(noiseFreeConfig());
    const auto result = solver.solve(cnf);
    const auto total = result.strategy_count[1] +
                       result.strategy_count[2] +
                       result.strategy_count[3] +
                       result.strategy_count[4];
    EXPECT_EQ(total, static_cast<std::uint64_t>(result.qa_samples));
}

TEST(HybridSolver, SolvesByQaOnTinyFormulas)
{
    // Small satisfiable formulas fit entirely on the chip: strategy
    // 1 should fire during warm-up on most seeds.
    Rng gen(8);
    int qa_solved = 0;
    for (int round = 0; round < 5; ++round) {
        const auto cnf = gen::plantedRandom3Sat(15, 30, gen);
        HybridSolver solver(noiseFreeConfig(round));
        const auto result = solver.solve(cnf);
        EXPECT_TRUE(result.status.isTrue());
        EXPECT_TRUE(cnf.eval(result.model));
        qa_solved += result.solved_by_qa;
    }
    EXPECT_GE(qa_solved, 3);
}

TEST(HybridSolver, UnsatisfiableFormulaRefuted)
{
    Rng gen(9);
    const auto cnf =
        gen::uniformRandom3Sat(16, 130, gen); // ratio 8: unsat
    ASSERT_FALSE(sat::bruteForceSolve(cnf).satisfiable);
    HybridSolver solver(noiseFreeConfig());
    const auto result = solver.solve(cnf);
    EXPECT_TRUE(result.status.isFalse());
}

TEST(HybridSolver, TimeBreakdownIsConsistent)
{
    Rng gen(10);
    const auto cnf = sat::testing::randomCnf(80, 344, 3, gen);
    HybridSolver solver(noiseFreeConfig());
    const auto result = solver.solve(cnf);
    EXPECT_GE(result.time.frontend_s, 0.0);
    EXPECT_GE(result.time.backend_s, 0.0);
    EXPECT_GE(result.time.cdcl_s, 0.0);
    EXPECT_NEAR(result.time.endToEnd(),
                result.time.frontend_s + result.time.qa_device_s +
                    result.time.backend_s + result.time.cdcl_s,
                1e-12);
}

TEST(HybridSolver, EstimateIterationsGrowsWithSize)
{
    const auto small = HybridSolver::estimateIterations(150, 645);
    const auto large = HybridSolver::estimateIterations(250, 1065);
    EXPECT_GT(large, small);
    EXPECT_GT(small, 100u);
}

TEST(HybridSolver, TrivialUnsatAtLoadHandled)
{
    sat::Cnf cnf(1);
    cnf.addClause(sat::mkLit(0));
    cnf.addClause(sat::mkLit(0, true));
    HybridSolver solver(noiseFreeConfig());
    const auto result = solver.solve(cnf);
    EXPECT_TRUE(result.status.isFalse());
    EXPECT_EQ(result.qa_samples, 0);
}

TEST(HybridSolver, DeterministicPerSeed)
{
    Rng gen(11);
    const auto cnf = sat::testing::randomCnf(50, 212, 3, gen);
    HybridSolver a(noiseFreeConfig(42)), b(noiseFreeConfig(42));
    const auto ra = a.solve(cnf);
    const auto rb = b.solve(cnf);
    EXPECT_EQ(ra.status.isTrue(), rb.status.isTrue());
    EXPECT_EQ(ra.stats.iterations, rb.stats.iterations);
    EXPECT_EQ(ra.qa_samples, rb.qa_samples);
}

TEST(HybridSolver, RejectsNonThreeSatInput)
{
    sat::Cnf cnf(4);
    cnf.addClause({sat::mkLit(0), sat::mkLit(1), sat::mkLit(2),
                   sat::mkLit(3)});
    HybridSolver solver(noiseFreeConfig());
    EXPECT_EXIT(solver.solve(cnf), ::testing::ExitedWithCode(1), "");
}

TEST(HybridSolver, LogicalSamplingModeWorks)
{
    Rng gen(12);
    const auto cnf = sat::testing::randomCnf(14, 58, 3, gen);
    auto cfg = noiseFreeConfig();
    cfg.use_embedding = false;
    HybridSolver solver(cfg);
    const auto result = solver.solve(cnf);
    EXPECT_EQ(result.status.isTrue(),
              sat::bruteForceSolve(cnf).satisfiable);
}

} // namespace
} // namespace hyqsat::core
