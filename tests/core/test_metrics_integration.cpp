/**
 * @file
 * Integration tests for the observability layer through the hybrid
 * loop: HybridConfig.metrics as the single source of truth, result
 * fields as views over it, accumulation across solves, JSON output
 * validity, and metrics neutrality (attaching a registry must not
 * perturb the search).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/hybrid_solver.h"
#include "tests/sat/helpers.h"
#include "util/metrics.h"

namespace hyqsat::core {
namespace {

HybridConfig
noiseFreeConfig(std::uint64_t seed = 0x777)
{
    HybridConfig cfg;
    cfg.annealer.noise = anneal::NoiseModel::noiseFree();
    cfg.annealer.greedy_finish = true;
    cfg.annealer.attempts = 2;
    cfg.seed = seed;
    return cfg;
}

sat::Cnf
testFormula(std::uint64_t seed = 11)
{
    Rng rng(seed);
    return sat::testing::randomCnf(30, 124, 3, rng);
}

TEST(MetricsIntegration, CountersMatchSolverStats)
{
    const sat::Cnf cnf = testFormula();
    MetricsRegistry registry;
    HybridConfig cfg = noiseFreeConfig();
    cfg.metrics = &registry;
    HybridSolver solver(cfg);
    const HybridResult result = solver.solve(cnf);
    ASSERT_FALSE(result.status.isUndef());

    EXPECT_EQ(registry.counter("solver.conflicts")->value(),
              result.stats.conflicts);
    EXPECT_EQ(registry.counter("solver.decisions")->value(),
              result.stats.decisions);
    EXPECT_EQ(registry.counter("solver.iterations")->value(),
              result.stats.iterations);
    EXPECT_EQ(registry.counter("solver.restarts")->value(),
              result.stats.restarts);
    EXPECT_EQ(registry.counter("solver.propagations")->value(),
              result.stats.propagations);
    EXPECT_EQ(registry.counter("pipeline.submitted")->value(),
              static_cast<std::uint64_t>(result.qa_submitted));
    EXPECT_EQ(registry.counter("backend.samples")->value(),
              static_cast<std::uint64_t>(result.qa_samples));
    EXPECT_EQ(registry.counter("hybrid.warmup_iterations")->value(),
              static_cast<std::uint64_t>(result.warmup_iterations));

    // Result time fields are views over the same registry.
    EXPECT_DOUBLE_EQ(registry.timer("backend.apply")->seconds(),
                     result.time.backend_s);
    EXPECT_DOUBLE_EQ(registry.timer("pipeline.frontend")->seconds(),
                     result.time.frontend_s);
    EXPECT_GT(registry.timer("hybrid.total")->seconds(), 0.0);
}

TEST(MetricsIntegration, RepeatedSolvesAccumulateExactly)
{
    const sat::Cnf cnf = testFormula();
    MetricsRegistry once, twice;

    {
        HybridConfig cfg = noiseFreeConfig();
        cfg.metrics = &once;
        HybridSolver solver(cfg);
        solver.solve(cnf);
    }
    {
        HybridConfig cfg = noiseFreeConfig();
        cfg.metrics = &twice;
        HybridSolver a(cfg);
        a.solve(cnf);
        HybridSolver b(cfg);
        b.solve(cnf);
    }
    // Deterministic config: two solves record exactly double.
    EXPECT_EQ(twice.counter("solver.conflicts")->value(),
              2 * once.counter("solver.conflicts")->value());
    EXPECT_EQ(twice.counter("solver.decisions")->value(),
              2 * once.counter("solver.decisions")->value());
    EXPECT_EQ(twice.counter("backend.samples")->value(),
              2 * once.counter("backend.samples")->value());
    EXPECT_EQ(twice.timer("hybrid.total")->count(), 2u);
}

TEST(MetricsIntegration, AttachingMetricsDoesNotPerturbSearch)
{
    const sat::Cnf cnf = testFormula(23);

    HybridConfig plain_cfg = noiseFreeConfig();
    HybridSolver plain(plain_cfg);
    const HybridResult without = plain.solve(cnf);

    MetricsRegistry registry;
    HybridConfig metered_cfg = noiseFreeConfig();
    metered_cfg.metrics = &registry;
    HybridSolver metered(metered_cfg);
    const HybridResult with = metered.solve(cnf);

    EXPECT_EQ(without.status.isTrue(), with.status.isTrue());
    EXPECT_EQ(without.stats.conflicts, with.stats.conflicts);
    EXPECT_EQ(without.stats.decisions, with.stats.decisions);
    EXPECT_EQ(without.stats.iterations, with.stats.iterations);
    EXPECT_EQ(without.qa_samples, with.qa_samples);
}

TEST(MetricsIntegration, AnnealCountersRecordSamplingWork)
{
    const sat::Cnf cnf = testFormula();
    MetricsRegistry registry;
    HybridConfig cfg = noiseFreeConfig();
    cfg.metrics = &registry;
    cfg.num_reads = 2;
    HybridSolver solver(cfg);
    const HybridResult result = solver.solve(cnf);
    ASSERT_FALSE(result.status.isUndef());
    ASSERT_GT(result.qa_samples, 0);

    // Every device sample runs SA chains: the anneal.* instruments
    // must have recorded real work through the hot loop.
    EXPECT_GT(registry.counter("anneal.sweeps")->value(), 0u);
    EXPECT_GT(registry.counter("anneal.flips.attempted")->value(), 0u);
    EXPECT_GT(registry.counter("anneal.flips.accepted")->value(), 0u);
    EXPECT_GT(registry.counter("anneal.reads")->value(), 0u);
    EXPECT_GT(registry.timer("anneal.sample")->count(), 0u);
    // num_reads = 2: at least two chains per recorded sample() call.
    EXPECT_GE(registry.counter("anneal.reads")->value(),
              2 * registry.timer("anneal.sample")->count());
}

TEST(MetricsIntegration, AnnealCountersAreReadAwareUnderLockstep)
{
    // The lockstep batch kernel must keep the same accounting
    // identities as the WorkPool reads: every chain contributes its
    // full sweep schedule, so anneal.sweeps == anneal.reads *
    // noise.sweeps exactly (the greedy finish adds attempts, never
    // sweeps), and accepted work stays within attempted.
    const sat::Cnf cnf = testFormula();
    MetricsRegistry registry;
    HybridConfig cfg = noiseFreeConfig();
    cfg.metrics = &registry;
    cfg.num_reads = 4;
    cfg.reads_batch = true;
    HybridSolver solver(cfg);
    const HybridResult result = solver.solve(cnf);
    ASSERT_FALSE(result.status.isUndef());
    ASSERT_GT(result.qa_samples, 0);

    const std::uint64_t reads =
        registry.counter("anneal.reads")->value();
    const std::uint64_t sweeps =
        registry.counter("anneal.sweeps")->value();
    EXPECT_GE(reads, 4 * registry.timer("anneal.sample")->count());
    EXPECT_EQ(sweeps,
              reads * static_cast<std::uint64_t>(
                          cfg.annealer.noise.sweeps));
    EXPECT_GT(registry.counter("anneal.flips.accepted")->value(), 0u);
    EXPECT_LE(registry.counter("anneal.flips.accepted")->value(),
              registry.counter("anneal.flips.attempted")->value());
}

TEST(MetricsIntegration, WriteJsonContainsExactCounterValues)
{
    const sat::Cnf cnf = testFormula();
    MetricsRegistry registry;
    HybridConfig cfg = noiseFreeConfig();
    cfg.metrics = &registry;
    HybridSolver solver(cfg);
    const HybridResult result = solver.solve(cnf);

    std::ostringstream out;
    registry.writeJson(out);
    const std::string json = out.str();

    EXPECT_NE(json.find("\"schema\": \"hyqsat.metrics/1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"solver.conflicts\": " +
                        std::to_string(result.stats.conflicts)),
              std::string::npos);
    EXPECT_NE(json.find("\"solver.decisions\": " +
                        std::to_string(result.stats.decisions)),
              std::string::npos);
    EXPECT_EQ(json.find("nan"), std::string::npos);

    int depth = 0;
    for (const char c : json) {
        if (c == '{' || c == '[')
            ++depth;
        if (c == '}' || c == ']')
            --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST(MetricsIntegration, ClassicCdclRecordsSolverCounters)
{
    const sat::Cnf cnf = testFormula();
    MetricsRegistry registry;
    const HybridResult result = solveClassicCdcl(
        cnf, sat::SolverOptions::minisatStyle(), nullptr, &registry);
    ASSERT_FALSE(result.status.isUndef());
    EXPECT_EQ(registry.counter("solver.conflicts")->value(),
              result.stats.conflicts);
    EXPECT_EQ(registry.counter("solver.decisions")->value(),
              result.stats.decisions);
    EXPECT_DOUBLE_EQ(registry.timer("hybrid.cdcl")->seconds(),
                     result.time.cdcl_s);
}

TEST(MetricsIntegration, TraceStreamsSolveEvents)
{
    const sat::Cnf cnf = testFormula();
    std::ostringstream trace_out;
    TraceSink sink(trace_out);
    MetricsRegistry registry;
    registry.setTrace(&sink);

    HybridConfig cfg = noiseFreeConfig();
    cfg.metrics = &registry;
    HybridSolver solver(cfg);
    const HybridResult result = solver.solve(cnf);

    if (result.stats.restarts > 0) {
        EXPECT_NE(trace_out.str().find("\"event\": \"solver.restart\""),
                  std::string::npos);
    }
}

} // namespace
} // namespace hyqsat::core
