#include <gtest/gtest.h>

#include "core/hybrid_solver.h"
#include "gen/random_sat.h"
#include "tests/sat/helpers.h"

namespace hyqsat::core {
namespace {

HybridConfig
noiseFreeConfig(std::uint64_t seed = 0xfeed)
{
    HybridConfig cfg;
    cfg.annealer.noise = anneal::NoiseModel::noiseFree();
    cfg.annealer.greedy_finish = true;
    cfg.annealer.attempts = 2;
    cfg.seed = seed;
    return cfg;
}

/** Every counter that must match for "bit-for-bit" reuse. */
void
expectIdentical(const HybridResult &a, const HybridResult &b)
{
    ASSERT_EQ(a.status, b.status);
    EXPECT_EQ(a.model, b.model);
    EXPECT_EQ(a.stats.decisions, b.stats.decisions);
    EXPECT_EQ(a.stats.propagations, b.stats.propagations);
    EXPECT_EQ(a.stats.conflicts, b.stats.conflicts);
    EXPECT_EQ(a.stats.restarts, b.stats.restarts);
    EXPECT_EQ(a.stats.iterations, b.stats.iterations);
    EXPECT_EQ(a.qa_samples, b.qa_samples);
    EXPECT_EQ(a.qa_submitted, b.qa_submitted);
    EXPECT_EQ(a.qa_stale, b.qa_stale);
    EXPECT_EQ(a.warmup_iterations, b.warmup_iterations);
    EXPECT_EQ(a.strategy_count, b.strategy_count);
    EXPECT_EQ(a.solved_by_qa, b.solved_by_qa);
}

TEST(HybridSolverReuse, SecondSolveReproducesFirst)
{
    // Regression (ISSUE 2): a second solve() on the same instance
    // must not inherit pipeline/epoch/RNG state from the first.
    Rng gen(41);
    const auto cnf = sat::testing::randomCnf(50, 212, 3, gen);
    HybridSolver solver(noiseFreeConfig());
    const auto first = solver.solve(cnf);
    const auto second = solver.solve(cnf);
    expectIdentical(first, second);
}

TEST(HybridSolverReuse, ReuseAcrossDifferentFormulas)
{
    // Interleaving another instance must not perturb the replay.
    Rng gen(42);
    const auto a = sat::testing::randomCnf(40, 170, 3, gen);
    const auto b = sat::testing::randomCnf(45, 191, 3, gen);
    HybridSolver solver(noiseFreeConfig(0xbeef));
    const auto first = solver.solve(a);
    (void)solver.solve(b);
    const auto replay = solver.solve(a);
    expectIdentical(first, replay);
}

TEST(HybridSolverReuse, PipelinedSolverIsReusable)
{
    // The async pipeline keeps epoch state and a worker thread per
    // run; timing makes bit-for-bit replay out of scope, but a
    // second run must stay sound and start from a clean pipeline.
    Rng gen(43);
    const auto cnf = gen::plantedRandom3Sat(40, 160, gen);
    auto cfg = noiseFreeConfig();
    cfg.sampler = "async";
    cfg.pipeline_depth = 3;
    HybridSolver solver(cfg);
    const auto first = solver.solve(cnf);
    const auto second = solver.solve(cnf);
    ASSERT_TRUE(first.status.isTrue());
    ASSERT_TRUE(second.status.isTrue());
    EXPECT_TRUE(cnf.eval(second.model));
    // A leaked epoch would mark every second-run completion stale.
    EXPECT_LE(second.qa_stale, second.qa_submitted);
}

TEST(HybridSolverReuse, BudgetedRunDoesNotPoisonNextSolve)
{
    // An aborted (budget-exhausted) run must leave no residue: the
    // second call replays the same truncated search exactly.
    Rng gen(44);
    const auto cnf = gen::uniformRandom3Sat(16, 130, gen); // unsat
    auto cfg = noiseFreeConfig();
    cfg.solver.conflict_budget = 1;
    cfg.warmup_override = 0;
    HybridSolver budgeted(cfg);
    const auto aborted = budgeted.solve(cnf);
    const auto again = budgeted.solve(cnf);
    EXPECT_TRUE(aborted.status.isUndef());
    expectIdentical(aborted, again);
}

} // namespace
} // namespace hyqsat::core
