/**
 * @file
 * Parameterized soundness sweep for the hybrid solver: every
 * configuration combination (noise on/off, embedding vs logical
 * sampling, strategy ablations, queue modes, warm-up lengths) must
 * agree with the brute-force reference on satisfiability and return
 * verifying models.
 */

#include <gtest/gtest.h>

#include "core/hybrid_solver.h"
#include "sat/brute_force.h"
#include "tests/sat/helpers.h"

namespace hyqsat::core {
namespace {

struct SweepParam
{
    bool noisy;
    bool use_embedding;
    bool s1, s2, s4;
    bool random_queue;
    std::int64_t warmup; // -1 = sqrt(K)
};

std::string
paramName(const ::testing::TestParamInfo<SweepParam> &info)
{
    const auto &p = info.param;
    std::string name = p.noisy ? "noisy" : "clean";
    name += p.use_embedding ? "_embed" : "_logical";
    name += p.s1 ? "_s1" : "";
    name += p.s2 ? "_s2" : "";
    name += p.s4 ? "_s4" : "";
    name += p.random_queue ? "_randq" : "_actq";
    name += "_w" + (p.warmup < 0 ? std::string("sqrtK")
                                 : std::to_string(p.warmup));
    return name;
}

class HybridSweep : public ::testing::TestWithParam<SweepParam>
{
};

TEST_P(HybridSweep, SoundOnRandomInstances)
{
    const auto &p = GetParam();
    HybridConfig cfg;
    if (p.noisy) {
        cfg.annealer.noise = anneal::NoiseModel::dwave2000q();
        cfg.annealer.noise.readout_flip_prob = 0.05;
    } else {
        cfg.annealer.noise = anneal::NoiseModel::noiseFree();
        cfg.annealer.greedy_finish = true;
    }
    cfg.use_embedding = p.use_embedding;
    cfg.backend.enable_strategy1 = p.s1;
    cfg.backend.enable_strategy2 = p.s2;
    cfg.backend.enable_strategy4 = p.s4;
    cfg.frontend.queue.random_queue = p.random_queue;
    cfg.warmup_override = p.warmup;

    Rng gen(1234);
    for (int round = 0; round < 6; ++round) {
        const auto cnf = sat::testing::randomCnf(13, 55, 3, gen);
        const bool expected = sat::bruteForceSolve(cnf).satisfiable;
        cfg.seed = 500 + round;
        HybridSolver solver(cfg);
        const auto result = solver.solve(cnf);
        ASSERT_FALSE(result.status.isUndef());
        ASSERT_EQ(result.status.isTrue(), expected)
            << "round " << round;
        if (result.status.isTrue())
            EXPECT_TRUE(cnf.eval(result.model));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, HybridSweep,
    ::testing::Values(
        SweepParam{false, true, true, true, true, false, -1},
        SweepParam{true, true, true, true, true, false, -1},
        SweepParam{false, false, true, true, true, false, -1},
        SweepParam{true, false, true, true, true, false, -1},
        SweepParam{false, true, false, false, false, false, -1},
        SweepParam{false, true, true, false, false, false, -1},
        SweepParam{false, true, false, true, false, false, -1},
        SweepParam{false, true, false, false, true, false, -1},
        SweepParam{false, true, true, true, true, true, -1},
        SweepParam{true, true, true, true, true, true, 5},
        SweepParam{false, true, true, true, true, false, 0},
        SweepParam{false, true, true, true, true, false, 1000}),
    paramName);

} // namespace
} // namespace hyqsat::core
