#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/clause_queue.h"
#include "tests/sat/helpers.h"

namespace hyqsat::core {
namespace {

sat::Solver
loadedSolver(const sat::Cnf &cnf)
{
    sat::Solver solver;
    EXPECT_TRUE(solver.loadCnf(cnf));
    return solver;
}

TEST(ClauseQueue, EmptyWhenAllClausesSatisfied)
{
    sat::Cnf cnf(1);
    cnf.addClause(sat::mkLit(0));
    auto solver = loadedSolver(cnf); // unit propagates at load
    Rng rng(1);
    EXPECT_TRUE(generateClauseQueue(solver, {}, rng).empty());
}

TEST(ClauseQueue, ContainsOnlyUnsatisfiedClauses)
{
    Rng gen(2);
    const auto cnf = sat::testing::randomCnf(30, 90, 3, gen);
    auto solver = loadedSolver(cnf);
    Rng rng(3);
    const auto queue = generateClauseQueue(solver, {}, rng);
    const auto unsat = solver.unsatisfiedOriginalClauses();
    const std::set<int> unsat_set(unsat.begin(), unsat.end());
    for (int ci : queue)
        EXPECT_TRUE(unsat_set.count(ci)) << "clause " << ci;
}

TEST(ClauseQueue, NoDuplicates)
{
    Rng gen(4);
    const auto cnf = sat::testing::randomCnf(40, 150, 3, gen);
    auto solver = loadedSolver(cnf);
    Rng rng(5);
    const auto queue = generateClauseQueue(solver, {}, rng);
    std::set<int> seen(queue.begin(), queue.end());
    EXPECT_EQ(seen.size(), queue.size());
}

TEST(ClauseQueue, RespectsCapacity)
{
    Rng gen(6);
    const auto cnf = sat::testing::randomCnf(60, 260, 3, gen);
    auto solver = loadedSolver(cnf);
    ClauseQueueOptions opts;
    opts.capacity = 25;
    Rng rng(7);
    const auto queue = generateClauseQueue(solver, opts, rng);
    EXPECT_LE(queue.size(), 25u);
    EXPECT_EQ(queue.size(), 25u); // plenty of unsatisfied clauses
}

TEST(ClauseQueue, BfsKeepsVariableLocality)
{
    // Consecutive queue clauses should share variables with some
    // earlier queue clause (it is a BFS tree over shared variables).
    Rng gen(8);
    const auto cnf = sat::testing::randomCnf(50, 210, 3, gen);
    auto solver = loadedSolver(cnf);
    Rng rng(9);
    ClauseQueueOptions opts;
    opts.capacity = 40;
    const auto queue = generateClauseQueue(solver, opts, rng);
    ASSERT_GT(queue.size(), 5u);
    for (std::size_t i = 1; i < queue.size(); ++i) {
        bool shares = false;
        for (std::size_t j = 0; j < i && !shares; ++j) {
            for (sat::Lit p : solver.originalClause(queue[i])) {
                for (sat::Lit q : solver.originalClause(queue[j])) {
                    if (p.var() == q.var()) {
                        shares = true;
                        break;
                    }
                }
                if (shares)
                    break;
            }
        }
        EXPECT_TRUE(shares) << "queue position " << i;
    }
}

TEST(ClauseQueue, HeadHasCompetitiveActivity)
{
    Rng gen(10);
    const auto cnf = sat::testing::randomCnf(40, 170, 3, gen);
    auto solver = loadedSolver(cnf);
    // Give a few clauses large activity by solving a bit first.
    solver.setConflictBudget(200);
    solver.solve();
    Rng rng(11);
    ClauseQueueOptions opts;
    opts.top_k = 5;
    const auto queue = generateClauseQueue(solver, opts, rng);
    if (queue.empty())
        GTEST_SKIP() << "instance solved within budget";
    // The head must be among the top-5 activities of unsatisfied
    // clauses.
    auto unsat = solver.unsatisfiedOriginalClauses();
    std::sort(unsat.begin(), unsat.end(), [&](int a, int b) {
        return solver.clauseActivityScore(a) >
               solver.clauseActivityScore(b);
    });
    const double head_score = solver.clauseActivityScore(queue[0]);
    const double fifth_score = solver.clauseActivityScore(
        unsat[std::min<std::size_t>(4, unsat.size() - 1)]);
    EXPECT_GE(head_score, fifth_score);
}

TEST(ClauseQueue, RandomModeShuffles)
{
    Rng gen(12);
    const auto cnf = sat::testing::randomCnf(40, 170, 3, gen);
    auto solver = loadedSolver(cnf);
    ClauseQueueOptions opts;
    opts.random_queue = true;
    opts.capacity = 30;
    Rng rng_a(13), rng_b(14);
    const auto qa = generateClauseQueue(solver, opts, rng_a);
    const auto qb = generateClauseQueue(solver, opts, rng_b);
    EXPECT_EQ(qa.size(), 30u);
    EXPECT_NE(qa, qb); // different seeds shuffle differently
}

TEST(ClauseQueue, DeterministicPerRngState)
{
    Rng gen(15);
    const auto cnf = sat::testing::randomCnf(30, 120, 3, gen);
    auto solver = loadedSolver(cnf);
    Rng a(77), b(77);
    EXPECT_EQ(generateClauseQueue(solver, {}, a),
              generateClauseQueue(solver, {}, b));
}

TEST(ClauseQueue, WorkspaceOverloadMatchesAllocatingSignature)
{
    // Same output and same RNG consumption across BFS and random
    // modes, with one workspace reused (and therefore dirty) between
    // calls and across solvers of different sizes.
    ClauseQueueWorkspace ws;
    std::vector<int> out;
    for (const std::uint64_t seed : {16u, 17u, 18u}) {
        Rng gen(seed);
        const auto cnf = sat::testing::randomCnf(
            20 + 10 * static_cast<int>(seed % 3), 150, 3, gen);
        auto solver = loadedSolver(cnf);
        for (const bool random_queue : {false, true}) {
            ClauseQueueOptions opts;
            opts.random_queue = random_queue;
            opts.capacity = 35;
            Rng a(seed * 7), b(seed * 7);
            const auto plain = generateClauseQueue(solver, opts, a);
            generateClauseQueue(solver, opts, b, ws, out);
            EXPECT_EQ(plain, out) << "seed " << seed << " random "
                                  << random_queue;
            EXPECT_EQ(a.next(), b.next()); // streams in lockstep
        }
    }
}

TEST(ClauseQueue, WorkspaceExposesUnsatSetAndClipsCapacity)
{
    Rng gen(19);
    const auto cnf = sat::testing::randomCnf(60, 260, 3, gen);
    auto solver = loadedSolver(cnf);
    ClauseQueueOptions opts;
    opts.capacity = 10;
    ClauseQueueWorkspace ws;
    std::vector<int> out;
    Rng rng(20);
    generateClauseQueue(solver, opts, rng, ws, out);
    EXPECT_EQ(out.size(), 10u);
    EXPECT_EQ(ws.unsat, solver.unsatisfiedOriginalClauses());
    EXPECT_GT(ws.unsat.size(), out.size());
}

TEST(ClauseQueue, RandomModeStillDrawsOnlyUnsatisfiedClauses)
{
    // The Fig. 14 ablation must differ only in ordering, never in
    // eligibility: a satisfied clause may not enter the queue.
    Rng gen(21);
    const auto cnf = sat::testing::randomCnf(40, 170, 3, gen);
    auto solver = loadedSolver(cnf);
    solver.setConflictBudget(100);
    solver.solve(); // leave a partial trail behind
    ClauseQueueOptions opts;
    opts.random_queue = true;
    Rng rng(22);
    const auto queue = generateClauseQueue(solver, opts, rng);
    const auto unsat = solver.unsatisfiedOriginalClauses();
    const std::set<int> unsat_set(unsat.begin(), unsat.end());
    for (int ci : queue)
        EXPECT_TRUE(unsat_set.count(ci)) << "clause " << ci;
    std::set<int> dedup(queue.begin(), queue.end());
    EXPECT_EQ(dedup.size(), queue.size());
}

} // namespace
} // namespace hyqsat::core
