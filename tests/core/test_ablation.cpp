/**
 * @file
 * Backend strategy ablations and majority-vote baseline coverage:
 * every feedback strategy can be disabled independently without
 * compromising soundness, and the §VIII-C majority-voting baseline
 * behaves like single-shot sampling when given one shot.
 */

#include <gtest/gtest.h>

#include "anneal/annealer.h"
#include "core/hybrid_solver.h"
#include "embed/hyqsat_embedder.h"
#include "sat/brute_force.h"
#include "tests/sat/helpers.h"

namespace hyqsat::core {
namespace {

HybridConfig
noiseFreeConfig(std::uint64_t seed = 0xab1a7e)
{
    HybridConfig cfg;
    cfg.annealer.noise = anneal::NoiseModel::noiseFree();
    cfg.annealer.greedy_finish = true;
    cfg.annealer.attempts = 2;
    cfg.seed = seed;
    return cfg;
}

/** A small instance every configuration must solve correctly. */
sat::Cnf
instance(std::uint64_t seed, int vars = 16, int clauses = 66)
{
    Rng gen(seed);
    return sat::testing::randomCnf(vars, clauses, 3, gen);
}

TEST(StrategyAblation, DisablingStrategy1StaysSoundWithoutQaSolves)
{
    Rng gen(11);
    auto cfg = noiseFreeConfig();
    cfg.backend.enable_strategy1 = false;
    for (int round = 0; round < 5; ++round) {
        const auto cnf = instance(500 + round);
        const bool expected = sat::bruteForceSolve(cnf).satisfiable;
        HybridSolver solver(cfg);
        const auto result = solver.solve(cnf);
        ASSERT_FALSE(result.status.isUndef());
        EXPECT_EQ(result.status.isTrue(), expected)
            << "round " << round;
        // With S1 off the annealer can never finish the solve.
        EXPECT_FALSE(result.solved_by_qa);
        EXPECT_EQ(result.strategy_count[1], 0u);
    }
}

TEST(StrategyAblation, DisablingStrategy2SilencesPhaseHints)
{
    auto cfg = noiseFreeConfig();
    cfg.backend.enable_strategy2 = false;
    for (int round = 0; round < 3; ++round) {
        const auto cnf = instance(600 + round);
        const bool expected = sat::bruteForceSolve(cnf).satisfiable;
        HybridSolver solver(cfg);
        const auto result = solver.solve(cnf);
        EXPECT_EQ(result.status.isTrue(), expected)
            << "round " << round;
        EXPECT_EQ(result.strategy_count[2], 0u);
    }
}

TEST(StrategyAblation, SoftHintsVariantStaysSound)
{
    auto cfg = noiseFreeConfig();
    cfg.backend.strategy2_soft_hints = true;
    for (int round = 0; round < 3; ++round) {
        const auto cnf = instance(700 + round);
        const bool expected = sat::bruteForceSolve(cnf).satisfiable;
        HybridSolver solver(cfg);
        const auto result = solver.solve(cnf);
        ASSERT_FALSE(result.status.isUndef());
        EXPECT_EQ(result.status.isTrue(), expected)
            << "round " << round;
        if (result.status.isTrue())
            EXPECT_TRUE(cnf.eval(result.model));
    }
}

TEST(StrategyAblation, DisablingStrategy4SilencesPriorityBumps)
{
    auto cfg = noiseFreeConfig();
    cfg.backend.enable_strategy4 = false;
    for (int round = 0; round < 4; ++round) {
        // Over-constrained instances exercise the high-energy branch
        // that strategy 4 normally claims.
        const auto cnf = instance(800 + round, 12, 70);
        const bool expected = sat::bruteForceSolve(cnf).satisfiable;
        HybridSolver solver(cfg);
        const auto result = solver.solve(cnf);
        EXPECT_EQ(result.status.isTrue(), expected)
            << "round " << round;
        EXPECT_EQ(result.strategy_count[4], 0u);
    }
}

TEST(StrategyAblation, AllStrategiesDisabledDegradesToPlainCdcl)
{
    auto cfg = noiseFreeConfig();
    cfg.backend.enable_strategy1 = false;
    cfg.backend.enable_strategy2 = false;
    cfg.backend.enable_strategy4 = false;
    for (int round = 0; round < 3; ++round) {
        const auto cnf = instance(900 + round);
        const auto classic =
            solveClassicCdcl(cnf, cfg.solver);
        HybridSolver solver(cfg);
        const auto result = solver.solve(cnf);
        EXPECT_EQ(result.status.isTrue(), classic.status.isTrue())
            << "round " << round;
        // Samples are still drawn and classified (strategy 3 is the
        // implicit no-op), but no feedback reaches the solver.
        EXPECT_EQ(result.strategy_count[1], 0u);
        EXPECT_EQ(result.strategy_count[2], 0u);
        EXPECT_EQ(result.strategy_count[4], 0u);
        EXPECT_EQ(result.stats.iterations, classic.stats.iterations)
            << "feedback-free warm-up must not change the search";
    }
}

/** Fixture shared by the majority-vote tests. */
struct MajorityVoteFixture
{
    chimera::ChimeraGraph graph = chimera::ChimeraGraph::dwave2000q();
    qubo::EncodedProblem problem;
    embed::Embedding embedding;

    MajorityVoteFixture()
    {
        Rng gen(31);
        const auto cnf = sat::testing::randomCnf(15, 34, 3, gen);
        const std::vector<sat::LitVec> clauses(cnf.clauses().begin(),
                                               cnf.clauses().end());
        embed::HyQsatEmbedder embedder(graph);
        auto fx = embedder.embedQueue(clauses);
        problem = fx.problem;
        embedding = fx.embedding;
    }
};

TEST(MajorityVote, SingleShotEquivalentToPlainSample)
{
    MajorityVoteFixture fx;
    anneal::QuantumAnnealer::Options opts;
    opts.noise = anneal::NoiseModel::noiseFree();
    opts.greedy_finish = true;

    anneal::QuantumAnnealer a(fx.graph, opts);
    anneal::QuantumAnnealer b(fx.graph, opts);
    const auto plain = a.sample(fx.problem, fx.embedding);
    const auto voted =
        b.sampleMajorityVote(fx.problem, fx.embedding, 1);
    EXPECT_EQ(plain.node_bits, voted.node_bits);
    EXPECT_DOUBLE_EQ(plain.clause_energy, voted.clause_energy);
    EXPECT_DOUBLE_EQ(plain.device_time_us, voted.device_time_us);
}

TEST(MajorityVote, DeterministicPerSeed)
{
    MajorityVoteFixture fx;
    anneal::QuantumAnnealer::Options opts;
    opts.noise.readout_flip_prob = 0.1;
    opts.seed = 0x5151;

    anneal::QuantumAnnealer a(fx.graph, opts);
    anneal::QuantumAnnealer b(fx.graph, opts);
    const auto va = a.sampleMajorityVote(fx.problem, fx.embedding, 5);
    const auto vb = b.sampleMajorityVote(fx.problem, fx.embedding, 5);
    EXPECT_EQ(va.node_bits, vb.node_bits);
    EXPECT_DOUBLE_EQ(va.clause_energy, vb.clause_energy);
}

} // namespace
} // namespace hyqsat::core
