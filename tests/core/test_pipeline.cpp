#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "gen/random_sat.h"
#include "sat/brute_force.h"
#include "tests/sat/helpers.h"

namespace hyqsat::core {
namespace {

/**
 * Test double: completions are released only when the test says so,
 * which makes in-flight / stale / stall behavior fully controllable.
 */
class ManualSampler : public anneal::Sampler
{
  public:
    explicit ManualSampler(int capacity) : capacity_(capacity) {}

    const char *name() const override { return "manual"; }
    int capacity() const override { return capacity_; }

    std::uint64_t
    submit(anneal::SampleRequest request) override
    {
        pending_.push_back({next_ticket_++, std::move(request)});
        return pending_.back().first;
    }

    void
    poll(std::vector<anneal::SampleCompletion> &out) override
    {
        for (auto &c : released_)
            out.push_back(std::move(c));
        released_.clear();
    }

    void
    wait(std::vector<anneal::SampleCompletion> &out) override
    {
        poll(out);
    }

    int
    inFlight() const override
    {
        return static_cast<int>(pending_.size() + released_.size());
    }

    /** Complete the oldest pending job with a zero-energy sample. */
    void
    releaseOne()
    {
        ASSERT_FALSE(pending_.empty());
        auto [ticket, request] = std::move(pending_.front());
        pending_.erase(pending_.begin());
        anneal::SampleCompletion c;
        c.ticket = ticket;
        c.sample.node_bits.assign(request.problem->numNodes(), false);
        c.sample.device_time_us = 130.0;
        released_.push_back(std::move(c));
    }

    int pendingCount() const { return static_cast<int>(pending_.size()); }

  private:
    int capacity_;
    std::uint64_t next_ticket_ = 1;
    std::vector<std::pair<std::uint64_t, anneal::SampleRequest>>
        pending_;
    std::vector<anneal::SampleCompletion> released_;
};

/** A solver loaded with a small instrumented 3-SAT instance. */
struct Fixture
{
    chimera::ChimeraGraph graph{16, 16, 4};
    FrontendOptions fe_opts;
    Frontend frontend{graph, fe_opts};
    Rng rng{0xfee1};
    sat::Solver solver;
    sat::Cnf cnf;

    Fixture()
    {
        Rng gen(77);
        cnf = sat::testing::randomCnf(20, 60, 3, gen);
        EXPECT_TRUE(solver.loadCnf(cnf));
    }
};

TEST(SamplePipeline, FreshCompletionIsDelivered)
{
    Fixture fx;
    ManualSampler sampler(2);
    SamplePipeline pipeline(fx.frontend, sampler, fx.rng, true);

    std::vector<ReadySample> ready;
    pipeline.step(fx.solver, /*epoch=*/0, ready);
    EXPECT_TRUE(ready.empty());
    EXPECT_EQ(pipeline.stats().submitted, 1);

    sampler.releaseOne();
    pipeline.step(fx.solver, 0, ready);
    ASSERT_EQ(ready.size(), 1u);
    ASSERT_NE(ready[0].frontend, nullptr);
    EXPECT_FALSE(ready[0].frontend->embedded_clauses.empty());
    EXPECT_EQ(pipeline.stats().harvested, 1);
    EXPECT_EQ(pipeline.stats().stale_discarded, 0);
}

TEST(SamplePipeline, StaleCompletionIsDiscarded)
{
    Fixture fx;
    ManualSampler sampler(2);
    SamplePipeline pipeline(fx.frontend, sampler, fx.rng, true);

    std::vector<ReadySample> ready;
    pipeline.step(fx.solver, 0, ready); // submit at epoch 0
    sampler.releaseOne();

    // A conflict intervened: the job from epoch 0 is stale.
    pipeline.step(fx.solver, 1, ready);
    EXPECT_TRUE(ready.empty() || pipeline.stats().stale_discarded == 1);
    EXPECT_EQ(pipeline.stats().stale_discarded, 1);
    // The epoch change also forced a fresh frontend pass and a new
    // submission at epoch 1.
    EXPECT_EQ(pipeline.stats().submitted, 2);

    sampler.releaseOne();
    ready.clear();
    pipeline.step(fx.solver, 1, ready);
    ASSERT_EQ(ready.size(), 1u);
}

TEST(SamplePipeline, FullPipelineCountsStalls)
{
    Fixture fx;
    ManualSampler sampler(1);
    SamplePipeline pipeline(fx.frontend, sampler, fx.rng, true);

    std::vector<ReadySample> ready;
    pipeline.step(fx.solver, 0, ready); // fills the single slot
    pipeline.step(fx.solver, 0, ready); // full -> stall
    pipeline.step(fx.solver, 0, ready); // still full -> stall
    EXPECT_EQ(pipeline.stats().submitted, 1);
    EXPECT_EQ(pipeline.stats().stalls, 2);

    sampler.releaseOne();
    // step() tries to submit before it harvests, so the harvesting
    // step still finds the pipeline full; the slot freed by the
    // harvest is refilled on the next step.
    pipeline.step(fx.solver, 0, ready);
    ASSERT_EQ(ready.size(), 1u);
    EXPECT_EQ(pipeline.stats().submitted, 1);
    EXPECT_EQ(pipeline.stats().stalls, 3);
    ready.clear();
    pipeline.step(fx.solver, 0, ready);
    EXPECT_EQ(pipeline.stats().submitted, 2);
    EXPECT_EQ(pipeline.stats().stalls, 3);
}

TEST(SamplePipeline, ConflictNotificationRetiresStaleWork)
{
    Fixture fx;
    ManualSampler sampler(2);
    SamplePipeline pipeline(fx.frontend, sampler, fx.rng, true);

    std::vector<ReadySample> ready;
    pipeline.step(fx.solver, 0, ready);
    sampler.releaseOne();

    pipeline.notifyConflict(/*epoch=*/1);
    EXPECT_EQ(pipeline.stats().harvested, 1);
    EXPECT_EQ(pipeline.stats().stale_discarded, 1);
    EXPECT_EQ(sampler.inFlight(), 0);
}

TEST(SamplePipeline, FrontendCacheReusedWithinEpoch)
{
    Fixture fx;
    ManualSampler sampler(8);
    SamplePipeline pipeline(fx.frontend, sampler, fx.rng, true);

    std::vector<ReadySample> ready;
    pipeline.step(fx.solver, 0, ready);
    const double after_first = pipeline.stats().frontend_s;
    EXPECT_GT(after_first, 0.0);
    pipeline.step(fx.solver, 0, ready);
    pipeline.step(fx.solver, 0, ready);
    // Same epoch: no further frontend passes were run.
    EXPECT_DOUBLE_EQ(pipeline.stats().frontend_s, after_first);
    // New epoch: one more pass.
    pipeline.step(fx.solver, 1, ready);
    EXPECT_GT(pipeline.stats().frontend_s, after_first);
}

TEST(SamplePipeline, TracksInFlightAndBlockingTime)
{
    Fixture fx;
    ManualSampler sampler(2);
    SamplePipeline pipeline(fx.frontend, sampler, fx.rng, true);

    std::vector<ReadySample> ready;
    pipeline.step(fx.solver, 0, ready);
    sampler.releaseOne();
    pipeline.step(fx.solver, 0, ready);
    ASSERT_EQ(ready.size(), 1u);
    const auto &stats = pipeline.stats();
    EXPECT_GT(stats.device_s, 0.0);
    EXPECT_GE(stats.inflight_s, 0.0);
    // Blocking time can never exceed modeled device time.
    EXPECT_LE(stats.blocking_s, stats.device_s + 1e-12);
}

TEST(SamplePipeline, AsynchronousReflectsSamplerCapacity)
{
    Fixture fx;
    ManualSampler deep(4), shallow(1);
    SamplePipeline a(fx.frontend, deep, fx.rng, true);
    SamplePipeline b(fx.frontend, shallow, fx.rng, true);
    EXPECT_TRUE(a.asynchronous());
    EXPECT_FALSE(b.asynchronous());
}

} // namespace
} // namespace hyqsat::core
