#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "sat/solver.h"
#include "tests/sat/helpers.h"
#include "util/cancel.h"

namespace hyqsat::sat {
namespace {

Cnf
hardRandom(int vars, int clauses, std::uint64_t seed)
{
    Rng rng(seed);
    return testing::randomCnf(vars, clauses, 3, rng);
}

TEST(SolverCancel, PreTrippedTokenYieldsUndef)
{
    StopToken stop;
    stop.requestStop();

    Solver s;
    ASSERT_TRUE(s.loadCnf(hardRandom(60, 255, 31)));
    s.setStopToken(&stop);
    EXPECT_TRUE(s.solve().isUndef());
}

TEST(SolverCancel, TokenTrippedMidSolveStopsSearch)
{
    StopToken stop;
    Solver s;
    // Near-threshold and big enough that the search outlives the
    // 5 ms fuse on any build type.
    ASSERT_TRUE(s.loadCnf(hardRandom(500, 2130, 32)));
    s.setStopToken(&stop);

    std::thread tripper([&stop] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        stop.requestStop();
    });
    const lbool result = s.solve();
    tripper.join();
    // Sound either way: if the instance somehow decided first, fine;
    // a cancelled run must report Undef, never a wrong answer.
    if (result.isTrue()) {
        SUCCEED() << "decided before the token tripped";
    } else {
        EXPECT_TRUE(result.isUndef() || result.isFalse());
    }
}

TEST(SolverCancel, TokenResetAllowsResolve)
{
    StopToken stop;
    stop.requestStop();
    Solver s;
    const Var v = s.newVar();
    ASSERT_TRUE(s.addClause({mkLit(v)}));
    s.setStopToken(&stop);
    EXPECT_TRUE(s.solve().isUndef());

    stop.reset();
    EXPECT_TRUE(s.solve().isTrue());
    EXPECT_TRUE(s.model()[v].isTrue());
}

TEST(SolverImport, BinaryClauseConstrainsSearch)
{
    Solver s;
    const Var a = s.newVar(), b = s.newVar();
    ASSERT_TRUE(s.addClause({mkLit(a), mkLit(b)}));
    ASSERT_TRUE(s.importClause({mkLit(a, true), mkLit(b, true)}));
    ASSERT_TRUE(s.solve().isTrue());
    // Exactly one of a, b true: the imported clause must be honored.
    EXPECT_NE(s.model()[a].isTrue(), s.model()[b].isTrue());
    EXPECT_EQ(s.stats().imported_clauses, 1u);
}

TEST(SolverImport, ContradictoryUnitsRefute)
{
    Solver s;
    const Var v = s.newVar();
    ASSERT_TRUE(s.addClause({mkLit(v), mkLit(v)})); // keeps v alive
    ASSERT_TRUE(s.importClause({mkLit(v)}));
    EXPECT_FALSE(s.importClause({mkLit(v, true)}));
    EXPECT_FALSE(s.okay());
    EXPECT_TRUE(s.solve().isFalse());
}

TEST(SolverImport, ForeignVariableDropsWholeClause)
{
    // A clause naming a variable this solver never allocated cannot
    // be attached; dropping only the literal would strengthen the
    // clause unsoundly, so the whole clause is ignored.
    Solver s;
    const Var v = s.newVar();
    ASSERT_TRUE(s.addClause({mkLit(v)}));
    ASSERT_TRUE(s.importClause({mkLit(v, true), mkLit(v + 7)}));
    EXPECT_EQ(s.stats().imported_clauses, 0u);
    EXPECT_TRUE(s.solve().isTrue());
    EXPECT_TRUE(s.model()[v].isTrue());
}

TEST(SolverImport, SatisfiedAndTautologicalImportsIgnored)
{
    Solver s;
    const Var a = s.newVar(), b = s.newVar();
    ASSERT_TRUE(s.addClause({mkLit(a)})); // root fact: a = true
    // Already satisfied by the root trail.
    ASSERT_TRUE(s.importClause({mkLit(a), mkLit(b)}));
    // Tautology.
    ASSERT_TRUE(s.importClause({mkLit(b), mkLit(b, true)}));
    EXPECT_EQ(s.stats().imported_clauses, 0u);
}

TEST(SolverHooks, ExportHookSeesEveryLearntClause)
{
    Solver s;
    ASSERT_TRUE(s.loadCnf(hardRandom(25, 107, 33)));
    std::vector<LitVec> exported;
    s.setLearntExportHook(
        [&exported](const LitVec &lits) { exported.push_back(lits); });
    const lbool result = s.solve();
    ASSERT_FALSE(result.isUndef());
    EXPECT_EQ(exported.size(), s.stats().exported_clauses);
    for (const auto &c : exported)
        EXPECT_FALSE(c.empty());
    // Learning fired at least once on a near-threshold instance.
    EXPECT_GT(s.stats().conflicts, 0u);
}

TEST(SolverHooks, RootHookRunsAndMayImport)
{
    Solver s;
    const Var a = s.newVar(), b = s.newVar();
    ASSERT_TRUE(s.addClause({mkLit(a), mkLit(b)}));
    int calls = 0;
    s.setRootHook([&calls, a](Solver &inner) {
        if (calls++ == 0) {
            ASSERT_TRUE(inner.importClause({mkLit(a)}));
        }
    });
    ASSERT_TRUE(s.solve().isTrue());
    EXPECT_GE(calls, 1);
    EXPECT_TRUE(s.model()[a].isTrue());
}

TEST(SolverHooks, SuggestPhaseSteersFreeVariables)
{
    Solver s;
    const Var a = s.newVar(), b = s.newVar(), c = s.newVar();
    // No clauses: every variable is decided purely by saved phase.
    s.suggestPhase(a, true);
    s.suggestPhase(b, false);
    s.suggestPhase(c, true);
    ASSERT_TRUE(s.solve().isTrue());
    EXPECT_TRUE(s.model()[a].isTrue());
    EXPECT_TRUE(s.model()[b].isFalse());
    EXPECT_TRUE(s.model()[c].isTrue());
}

} // namespace
} // namespace hyqsat::sat
