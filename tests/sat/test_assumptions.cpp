#include <gtest/gtest.h>

#include <algorithm>

#include "sat/brute_force.h"
#include "sat/solver.h"
#include "tests/sat/helpers.h"

namespace hyqsat::sat {
namespace {

TEST(Assumptions, SatUnderConsistentAssumptions)
{
    Solver s;
    const Var a = s.newVar();
    const Var b = s.newVar();
    ASSERT_TRUE(s.addClause({mkLit(a), mkLit(b)}));
    ASSERT_TRUE(s.solveWithAssumptions({mkLit(a)}).isTrue());
    EXPECT_TRUE(s.model()[a].isTrue());
}

TEST(Assumptions, UnsatUnderContradictingAssumption)
{
    Solver s;
    const Var a = s.newVar();
    ASSERT_TRUE(s.addClause({mkLit(a)}));
    const lbool r = s.solveWithAssumptions({mkLit(a, true)});
    ASSERT_TRUE(r.isFalse());
    // The final conflict blames the assumption.
    ASSERT_EQ(s.finalConflict().size(), 1u);
    EXPECT_EQ(s.finalConflict()[0], mkLit(a));
}

TEST(Assumptions, ConflictNamesOnlyRelevantAssumptions)
{
    // x0 -> x1; assuming {x2, x0, ~x1} is inconsistent and the core
    // must not include the irrelevant x2.
    Solver s;
    for (int i = 0; i < 3; ++i)
        s.newVar();
    ASSERT_TRUE(s.addClause({mkLit(0, true), mkLit(1)}));
    const lbool r = s.solveWithAssumptions(
        {mkLit(2), mkLit(0), mkLit(1, true)});
    ASSERT_TRUE(r.isFalse());
    const auto &core = s.finalConflict();
    for (Lit p : core)
        EXPECT_NE(p.var(), 2) << "irrelevant assumption in core";
    EXPECT_GE(core.size(), 1u);
}

TEST(Assumptions, IncrementalReuseAcrossCalls)
{
    // One solver instance, multiple queries with different
    // assumptions: learnt clauses persist, results stay correct.
    Solver s;
    const Var a = s.newVar();
    const Var b = s.newVar();
    const Var c = s.newVar();
    ASSERT_TRUE(s.addClause({mkLit(a), mkLit(b)}));
    ASSERT_TRUE(s.addClause({mkLit(b, true), mkLit(c)}));

    EXPECT_TRUE(s.solveWithAssumptions({mkLit(a, true)}).isTrue());
    EXPECT_TRUE(s.model()[b].isTrue());
    EXPECT_TRUE(s.model()[c].isTrue());

    EXPECT_TRUE(
        s.solveWithAssumptions({mkLit(b, true)}).isTrue());
    EXPECT_TRUE(s.model()[a].isTrue());

    EXPECT_TRUE(s.solveWithAssumptions(
                     {mkLit(a, true), mkLit(b, true)})
                    .isFalse());

    // Plain solve still works after assumption queries.
    EXPECT_TRUE(s.solve().isTrue());
}

TEST(Assumptions, AgreesWithUnitInjectionOnRandomInstances)
{
    // Solving F under assumption l must match solving F + unit l.
    Rng rng(5);
    for (int round = 0; round < 15; ++round) {
        const Cnf cnf = testing::randomCnf(12, 50, 3, rng);
        const Lit assumption =
            mkLit(static_cast<Var>(rng.below(12)), rng.chance(0.5));

        Solver with_assumption;
        ASSERT_TRUE(with_assumption.loadCnf(cnf));
        const lbool via_assume =
            with_assumption.solveWithAssumptions({assumption});

        Cnf strengthened = cnf;
        strengthened.addClause(assumption);
        const bool expected =
            bruteForceSolve(strengthened).satisfiable;
        ASSERT_FALSE(via_assume.isUndef());
        EXPECT_EQ(via_assume.isTrue(), expected) << "round " << round;
        if (via_assume.isTrue()) {
            auto model = with_assumption.boolModel();
            EXPECT_TRUE(strengthened.eval(model));
        }
    }
}

TEST(Assumptions, CoreIsActuallyContradictory)
{
    // Re-solving under only the core assumptions must stay UNSAT.
    Rng rng(9);
    int checked = 0;
    for (int round = 0; round < 30 && checked < 5; ++round) {
        const Cnf cnf = testing::randomCnf(12, 50, 3, rng);
        LitVec assumptions;
        for (Var v = 0; v < 6; ++v)
            assumptions.push_back(mkLit(v, rng.chance(0.5)));
        Solver s;
        ASSERT_TRUE(s.loadCnf(cnf));
        if (!s.solveWithAssumptions(assumptions).isFalse())
            continue;
        LitVec core = s.finalConflict();
        for (Lit &p : core)
            p = ~p; // conflict clause literals are negated
        Solver again;
        ASSERT_TRUE(again.loadCnf(cnf));
        EXPECT_TRUE(again.solveWithAssumptions(core).isFalse())
            << "round " << round;
        ++checked;
    }
}

TEST(Assumptions, UnitFalsifiedAssumptionYieldsSingletonCore)
{
    // The conflicting assumption is falsified by a level-0 unit
    // clause. Whether it is the first assumption (analyzeFinal at
    // decision level 0) or preceded by others (level > 0 but the
    // variable sits below the assumption prefix), the core must be
    // exactly {~assumption} — never empty: the formula alone is SAT.
    for (const bool prefix : {false, true}) {
        Solver s;
        const Var a = s.newVar();
        const Var b = s.newVar();
        const Var c = s.newVar();
        ASSERT_TRUE(s.addClause({mkLit(a)}));
        LitVec assumptions;
        if (prefix) {
            assumptions.push_back(mkLit(b));
            assumptions.push_back(mkLit(c));
        }
        assumptions.push_back(mkLit(a, true));
        ASSERT_TRUE(s.solveWithAssumptions(assumptions).isFalse());
        ASSERT_EQ(s.finalConflict().size(), 1u)
            << "prefix=" << prefix;
        EXPECT_EQ(s.finalConflict()[0], mkLit(a));
        EXPECT_TRUE(s.okay()) << "formula itself is satisfiable";
        // And without the poisoned assumption the solver recovers.
        EXPECT_TRUE(s.solveWithAssumptions({mkLit(b)}).isTrue());
    }
}

TEST(Assumptions, DuplicateAssumptionsAreHarmless)
{
    Solver s;
    const Var a = s.newVar();
    const Var b = s.newVar();
    ASSERT_TRUE(s.addClause({mkLit(a), mkLit(b)}));
    ASSERT_TRUE(s.solveWithAssumptions(
                     {mkLit(a), mkLit(a), mkLit(a)})
                    .isTrue());
    EXPECT_TRUE(s.model()[a].isTrue());
}

TEST(Assumptions, ContradictoryAssumptionsNameBothPolarities)
{
    // [a, ~a] over an otherwise unconstrained variable: UNSAT purely
    // because of the assumptions, so the core holds both polarities
    // of a (the clause "~a or a" — the negations of the two failed
    // assumptions) and okay() stays true.
    Solver s;
    const Var a = s.newVar();
    const Var b = s.newVar();
    ASSERT_TRUE(s.addClause({mkLit(b)}));
    ASSERT_TRUE(
        s.solveWithAssumptions({mkLit(a), mkLit(a, true)}).isFalse());
    const LitVec &core = s.finalConflict();
    ASSERT_EQ(core.size(), 2u);
    EXPECT_TRUE((core[0] == mkLit(a) && core[1] == mkLit(a, true)) ||
                (core[0] == mkLit(a, true) && core[1] == mkLit(a)));
    EXPECT_TRUE(s.okay());
    EXPECT_TRUE(s.solve().isTrue());
}

TEST(Assumptions, RepeatCallOnPermanentlyUnsatClearsStaleCore)
{
    // Regression: solveInternal used to early-return on !ok_ BEFORE
    // clearing final_conflict_, so a second call on a permanently
    // unsat solver surfaced the previous call's core instead of the
    // empty one that means "UNSAT regardless of assumptions".
    Solver s;
    const Var a = s.newVar();
    const Var b = s.newVar();
    ASSERT_TRUE(s.addClause({mkLit(a)}));
    ASSERT_TRUE(s.solveWithAssumptions({mkLit(a, true)}).isFalse());
    ASSERT_FALSE(s.finalConflict().empty()); // blames the assumption
    EXPECT_FALSE(s.addClause({mkLit(a, true)})); // now truly unsat
    EXPECT_FALSE(s.okay());
    EXPECT_TRUE(s.solveWithAssumptions({mkLit(b)}).isFalse());
    EXPECT_TRUE(s.finalConflict().empty())
        << "stale core leaked from the previous call";
    EXPECT_TRUE(s.model().empty());
}

TEST(Assumptions, AssumptionOnFreshVariableGrowsSolver)
{
    Solver s;
    const Var a = s.newVar();
    ASSERT_TRUE(s.addClause({mkLit(a)}));
    const Lit fresh = mkLit(4, true); // vars 1..4 never mentioned
    ASSERT_TRUE(s.solveWithAssumptions({fresh}).isTrue());
    ASSERT_GE(s.numVars(), 5);
    EXPECT_TRUE(s.model()[4].isFalse());
}

TEST(Assumptions, EmptyAssumptionsEqualsPlainSolve)
{
    Rng rng(11);
    const Cnf cnf = testing::randomCnf(15, 63, 3, rng);
    Solver a, b;
    ASSERT_TRUE(a.loadCnf(cnf));
    ASSERT_TRUE(b.loadCnf(cnf));
    EXPECT_EQ(a.solve().isTrue(),
              b.solveWithAssumptions({}).isTrue());
}

} // namespace
} // namespace hyqsat::sat
