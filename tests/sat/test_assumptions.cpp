#include <gtest/gtest.h>

#include <algorithm>

#include "sat/brute_force.h"
#include "sat/solver.h"
#include "tests/sat/helpers.h"

namespace hyqsat::sat {
namespace {

TEST(Assumptions, SatUnderConsistentAssumptions)
{
    Solver s;
    const Var a = s.newVar();
    const Var b = s.newVar();
    ASSERT_TRUE(s.addClause({mkLit(a), mkLit(b)}));
    ASSERT_TRUE(s.solveWithAssumptions({mkLit(a)}).isTrue());
    EXPECT_TRUE(s.model()[a].isTrue());
}

TEST(Assumptions, UnsatUnderContradictingAssumption)
{
    Solver s;
    const Var a = s.newVar();
    ASSERT_TRUE(s.addClause({mkLit(a)}));
    const lbool r = s.solveWithAssumptions({mkLit(a, true)});
    ASSERT_TRUE(r.isFalse());
    // The final conflict blames the assumption.
    ASSERT_EQ(s.finalConflict().size(), 1u);
    EXPECT_EQ(s.finalConflict()[0], mkLit(a));
}

TEST(Assumptions, ConflictNamesOnlyRelevantAssumptions)
{
    // x0 -> x1; assuming {x2, x0, ~x1} is inconsistent and the core
    // must not include the irrelevant x2.
    Solver s;
    for (int i = 0; i < 3; ++i)
        s.newVar();
    ASSERT_TRUE(s.addClause({mkLit(0, true), mkLit(1)}));
    const lbool r = s.solveWithAssumptions(
        {mkLit(2), mkLit(0), mkLit(1, true)});
    ASSERT_TRUE(r.isFalse());
    const auto &core = s.finalConflict();
    for (Lit p : core)
        EXPECT_NE(p.var(), 2) << "irrelevant assumption in core";
    EXPECT_GE(core.size(), 1u);
}

TEST(Assumptions, IncrementalReuseAcrossCalls)
{
    // One solver instance, multiple queries with different
    // assumptions: learnt clauses persist, results stay correct.
    Solver s;
    const Var a = s.newVar();
    const Var b = s.newVar();
    const Var c = s.newVar();
    ASSERT_TRUE(s.addClause({mkLit(a), mkLit(b)}));
    ASSERT_TRUE(s.addClause({mkLit(b, true), mkLit(c)}));

    EXPECT_TRUE(s.solveWithAssumptions({mkLit(a, true)}).isTrue());
    EXPECT_TRUE(s.model()[b].isTrue());
    EXPECT_TRUE(s.model()[c].isTrue());

    EXPECT_TRUE(
        s.solveWithAssumptions({mkLit(b, true)}).isTrue());
    EXPECT_TRUE(s.model()[a].isTrue());

    EXPECT_TRUE(s.solveWithAssumptions(
                     {mkLit(a, true), mkLit(b, true)})
                    .isFalse());

    // Plain solve still works after assumption queries.
    EXPECT_TRUE(s.solve().isTrue());
}

TEST(Assumptions, AgreesWithUnitInjectionOnRandomInstances)
{
    // Solving F under assumption l must match solving F + unit l.
    Rng rng(5);
    for (int round = 0; round < 15; ++round) {
        const Cnf cnf = testing::randomCnf(12, 50, 3, rng);
        const Lit assumption =
            mkLit(static_cast<Var>(rng.below(12)), rng.chance(0.5));

        Solver with_assumption;
        ASSERT_TRUE(with_assumption.loadCnf(cnf));
        const lbool via_assume =
            with_assumption.solveWithAssumptions({assumption});

        Cnf strengthened = cnf;
        strengthened.addClause(assumption);
        const bool expected =
            bruteForceSolve(strengthened).satisfiable;
        ASSERT_FALSE(via_assume.isUndef());
        EXPECT_EQ(via_assume.isTrue(), expected) << "round " << round;
        if (via_assume.isTrue()) {
            auto model = with_assumption.boolModel();
            EXPECT_TRUE(strengthened.eval(model));
        }
    }
}

TEST(Assumptions, CoreIsActuallyContradictory)
{
    // Re-solving under only the core assumptions must stay UNSAT.
    Rng rng(9);
    int checked = 0;
    for (int round = 0; round < 30 && checked < 5; ++round) {
        const Cnf cnf = testing::randomCnf(12, 50, 3, rng);
        LitVec assumptions;
        for (Var v = 0; v < 6; ++v)
            assumptions.push_back(mkLit(v, rng.chance(0.5)));
        Solver s;
        ASSERT_TRUE(s.loadCnf(cnf));
        if (!s.solveWithAssumptions(assumptions).isFalse())
            continue;
        LitVec core = s.finalConflict();
        for (Lit &p : core)
            p = ~p; // conflict clause literals are negated
        Solver again;
        ASSERT_TRUE(again.loadCnf(cnf));
        EXPECT_TRUE(again.solveWithAssumptions(core).isFalse())
            << "round " << round;
        ++checked;
    }
}

TEST(Assumptions, EmptyAssumptionsEqualsPlainSolve)
{
    Rng rng(11);
    const Cnf cnf = testing::randomCnf(15, 63, 3, rng);
    Solver a, b;
    ASSERT_TRUE(a.loadCnf(cnf));
    ASSERT_TRUE(b.loadCnf(cnf));
    EXPECT_EQ(a.solve().isTrue(),
              b.solveWithAssumptions({}).isTrue());
}

} // namespace
} // namespace hyqsat::sat
