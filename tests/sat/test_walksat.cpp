#include <gtest/gtest.h>

#include "sat/brute_force.h"
#include "sat/walksat.h"
#include "tests/sat/helpers.h"

namespace hyqsat::sat {
namespace {

TEST(WalkSat, SolvesTrivialUnit)
{
    Cnf cnf(1);
    cnf.addClause(mkLit(0));
    const auto r = walkSat(cnf);
    ASSERT_TRUE(r.satisfiable);
    EXPECT_TRUE(r.model[0]);
}

TEST(WalkSat, ModelSatisfiesFormula)
{
    Rng rng(3);
    Cnf cnf = testing::randomCnf(30, 90, 3, rng);
    const auto r = walkSat(cnf);
    if (r.satisfiable)
        EXPECT_TRUE(cnf.eval(r.model));
}

TEST(WalkSat, FindsModelsOfEasyInstances)
{
    Rng rng(5);
    int solved = 0;
    for (int round = 0; round < 10; ++round) {
        // Ratio 2.0: overwhelmingly satisfiable and easy.
        Cnf cnf = testing::randomCnf(40, 80, 3, rng);
        const auto r = walkSat(cnf);
        solved += r.satisfiable;
        if (r.satisfiable)
            EXPECT_TRUE(cnf.eval(r.model));
    }
    EXPECT_GE(solved, 8);
}

TEST(WalkSat, GivesUpOnUnsatisfiable)
{
    Cnf cnf(1);
    cnf.addClause(mkLit(0));
    cnf.addClause(mkLit(0, true));
    WalkSatOptions opts;
    opts.max_flips = 10'000;
    opts.max_tries = 2;
    const auto r = walkSat(cnf, opts);
    EXPECT_FALSE(r.satisfiable);
    EXPECT_GT(r.flips, 0u);
}

TEST(WalkSat, EmptyClauseHandledGracefully)
{
    Cnf cnf(1);
    cnf.addClause(LitVec{});
    const auto r = walkSat(cnf);
    EXPECT_FALSE(r.satisfiable);
    EXPECT_EQ(r.flips, 0u);
}

TEST(WalkSat, DeterministicPerSeed)
{
    Rng rng(7);
    Cnf cnf = testing::randomCnf(25, 80, 3, rng);
    WalkSatOptions opts;
    opts.seed = 123;
    const auto a = walkSat(cnf, opts);
    const auto b = walkSat(cnf, opts);
    EXPECT_EQ(a.satisfiable, b.satisfiable);
    EXPECT_EQ(a.flips, b.flips);
}

TEST(WalkSat, ZeroNoiseIsPureGreedy)
{
    Rng rng(9);
    Cnf cnf = testing::randomCnf(20, 40, 3, rng);
    WalkSatOptions opts;
    opts.noise = 0.0;
    const auto r = walkSat(cnf, opts);
    if (r.satisfiable)
        EXPECT_TRUE(cnf.eval(r.model));
}

} // namespace
} // namespace hyqsat::sat
