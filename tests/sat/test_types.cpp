#include <gtest/gtest.h>

#include <unordered_set>

#include "sat/types.h"

namespace hyqsat::sat {
namespace {

TEST(Lit, PackingRoundTrips)
{
    const Lit p = mkLit(5, false);
    EXPECT_EQ(p.var(), 5);
    EXPECT_FALSE(p.sign());
    const Lit q = mkLit(5, true);
    EXPECT_EQ(q.var(), 5);
    EXPECT_TRUE(q.sign());
}

TEST(Lit, NegationFlipsSignOnly)
{
    const Lit p = mkLit(3, false);
    EXPECT_EQ((~p).var(), 3);
    EXPECT_TRUE((~p).sign());
    EXPECT_EQ(~~p, p);
}

TEST(Lit, XorWithBool)
{
    const Lit p = mkLit(2, false);
    EXPECT_EQ(p ^ false, p);
    EXPECT_EQ(p ^ true, ~p);
}

TEST(Lit, OrderingGroupsByVariable)
{
    EXPECT_LT(mkLit(0, false), mkLit(0, true));
    EXPECT_LT(mkLit(0, true), mkLit(1, false));
}

TEST(Lit, DimacsRoundTrip)
{
    for (int d : {1, -1, 7, -42}) {
        EXPECT_EQ(toDimacs(fromDimacs(d)), d);
    }
    EXPECT_EQ(fromDimacs(3).var(), 2);
    EXPECT_FALSE(fromDimacs(3).sign());
    EXPECT_TRUE(fromDimacs(-3).sign());
}

TEST(Lit, UndefIsDistinct)
{
    EXPECT_NE(lit_Undef, mkLit(0, false));
    EXPECT_NE(lit_Undef, mkLit(0, true));
}

TEST(Lit, Hashable)
{
    std::unordered_set<Lit> set;
    set.insert(mkLit(1, false));
    set.insert(mkLit(1, true));
    set.insert(mkLit(1, false));
    EXPECT_EQ(set.size(), 2u);
}

TEST(Lbool, TruthTable)
{
    EXPECT_TRUE(l_True.isTrue());
    EXPECT_TRUE(l_False.isFalse());
    EXPECT_TRUE(l_Undef.isUndef());
    EXPECT_NE(l_True, l_False);
    EXPECT_NE(l_True, l_Undef);
}

TEST(Lbool, NegationPreservesUndef)
{
    EXPECT_EQ(~l_True, l_False);
    EXPECT_EQ(~l_False, l_True);
    EXPECT_EQ(~l_Undef, l_Undef);
}

TEST(Lbool, XorWithBool)
{
    EXPECT_EQ(l_True ^ true, l_False);
    EXPECT_EQ(l_True ^ false, l_True);
    EXPECT_EQ(l_Undef ^ true, l_Undef);
}

} // namespace
} // namespace hyqsat::sat
