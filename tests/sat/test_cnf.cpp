#include <gtest/gtest.h>

#include "sat/brute_force.h"
#include "sat/cnf.h"
#include "tests/sat/helpers.h"

namespace hyqsat::sat {
namespace {

TEST(Cnf, StartsEmpty)
{
    Cnf cnf;
    EXPECT_EQ(cnf.numVars(), 0);
    EXPECT_EQ(cnf.numClauses(), 0);
}

TEST(Cnf, AddClauseGrowsVariableCount)
{
    Cnf cnf;
    cnf.addClause(mkLit(4));
    EXPECT_EQ(cnf.numVars(), 5);
    EXPECT_EQ(cnf.numClauses(), 1);
}

TEST(Cnf, NewVarAllocatesSequentially)
{
    Cnf cnf(2);
    EXPECT_EQ(cnf.newVar(), 2);
    EXPECT_EQ(cnf.newVar(), 3);
    EXPECT_EQ(cnf.numVars(), 4);
}

TEST(Cnf, EvalSatisfiedAndViolated)
{
    Cnf cnf(2);
    cnf.addClause(mkLit(0), mkLit(1));        // x0 v x1
    cnf.addClause(mkLit(0, true), mkLit(1));  // ~x0 v x1
    EXPECT_TRUE(cnf.eval({true, true}));
    EXPECT_TRUE(cnf.eval({false, true}));
    EXPECT_FALSE(cnf.eval({false, false}));
    EXPECT_EQ(cnf.countViolated({false, false}), 1);
    EXPECT_EQ(cnf.countViolated({true, true}), 0);
}

TEST(Cnf, ClauseSatisfiedChecksPolarity)
{
    Cnf cnf(1);
    cnf.addClause(mkLit(0, true)); // ~x0
    EXPECT_TRUE(cnf.clauseSatisfied(0, {false}));
    EXPECT_FALSE(cnf.clauseSatisfied(0, {true}));
}

TEST(Cnf, EmptyClauseNeverSatisfied)
{
    Cnf cnf(1);
    cnf.addClause(LitVec{});
    EXPECT_FALSE(cnf.eval({false}));
    EXPECT_FALSE(cnf.eval({true}));
}

TEST(Cnf, MaxClauseSizeAndThreeSatCheck)
{
    Cnf cnf(5);
    cnf.addClause(mkLit(0), mkLit(1), mkLit(2));
    EXPECT_EQ(cnf.maxClauseSize(), 3);
    EXPECT_TRUE(cnf.isThreeSat());
    cnf.addClause({mkLit(0), mkLit(1), mkLit(2), mkLit(3)});
    EXPECT_EQ(cnf.maxClauseSize(), 4);
    EXPECT_FALSE(cnf.isThreeSat());
}

TEST(Cnf, NameRoundTrips)
{
    Cnf cnf;
    cnf.setName("uf50-01");
    EXPECT_EQ(cnf.name(), "uf50-01");
}

TEST(ToThreeSat, ShortClausesCopiedVerbatim)
{
    Cnf cnf(3);
    cnf.addClause(mkLit(0));
    cnf.addClause(mkLit(0), mkLit(1), mkLit(2));
    const Cnf out = toThreeSat(cnf);
    EXPECT_EQ(out.numClauses(), 2);
    EXPECT_EQ(out.numVars(), 3);
    EXPECT_EQ(out.clause(1), cnf.clause(1));
}

TEST(ToThreeSat, LongClauseSplitIsEquisatisfiable)
{
    // (x0 v x1 v x2 v x3 v x4) alone.
    Cnf cnf(5);
    cnf.addClause(
        {mkLit(0), mkLit(1), mkLit(2), mkLit(3), mkLit(4)});
    const Cnf out = toThreeSat(cnf);
    EXPECT_TRUE(out.isThreeSat());
    EXPECT_GT(out.numVars(), 5);

    const auto direct = bruteForceSolve(cnf);
    const auto split = bruteForceSolve(out);
    EXPECT_EQ(direct.satisfiable, split.satisfiable);
}

TEST(ToThreeSat, UnsatisfiableStaysUnsatisfiable)
{
    // All eight sign patterns over three vars, expressed as two
    // 5-literal clauses plus enough constraints: simpler, use a
    // 4-literal clause and force all four literals false by units.
    Cnf cnf(4);
    cnf.addClause({mkLit(0), mkLit(1), mkLit(2), mkLit(3)});
    for (int v = 0; v < 4; ++v)
        cnf.addClause(mkLit(v, true));
    const Cnf out = toThreeSat(cnf);
    EXPECT_TRUE(out.isThreeSat());
    EXPECT_FALSE(bruteForceSolve(out).satisfiable);
}

TEST(ToThreeSat, PreservesModelCountOverOriginalVars)
{
    // Splitting is a Tseitin-style transformation: for each model of
    // the original there is exactly one extension to the aux chain
    // when the clause is satisfied... not exactly one in general, so
    // just check satisfiability equivalence over random instances.
    Rng rng(99);
    for (int round = 0; round < 20; ++round) {
        Cnf cnf = testing::randomCnf(6, 8, 5, rng);
        const Cnf out = toThreeSat(cnf);
        EXPECT_EQ(bruteForceSolve(cnf).satisfiable,
                  bruteForceSolve(out).satisfiable)
            << "round " << round;
    }
}

} // namespace
} // namespace hyqsat::sat
