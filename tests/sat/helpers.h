/**
 * @file
 * Shared helpers for the sat-layer tests: small random CNF
 * generation independent of the gen module (so solver correctness is
 * not validated with the code under test elsewhere).
 */

#ifndef HYQSAT_TESTS_SAT_HELPERS_H
#define HYQSAT_TESTS_SAT_HELPERS_H

#include "sat/cnf.h"
#include "util/rng.h"

namespace hyqsat::sat::testing {

/** Uniform random k-SAT instance with distinct variables per clause. */
inline Cnf
randomCnf(int num_vars, int num_clauses, int k, Rng &rng)
{
    Cnf cnf(num_vars);
    for (int i = 0; i < num_clauses; ++i) {
        LitVec clause;
        while (static_cast<int>(clause.size()) < k) {
            const Var v = static_cast<Var>(rng.below(num_vars));
            bool fresh = true;
            for (Lit p : clause)
                fresh &= (p.var() != v);
            if (fresh)
                clause.push_back(mkLit(v, rng.chance(0.5)));
        }
        cnf.addClause(clause);
    }
    return cnf;
}

} // namespace hyqsat::sat::testing

#endif // HYQSAT_TESTS_SAT_HELPERS_H
