/**
 * @file
 * Regression tests for the geometric restart-limit overflow: with
 * restart_inc=2 the raw pow(inc, n) * first exceeds every integer
 * type within ~62 restarts, and the old int cast was undefined
 * behaviour. restartLimit must saturate (monotonically) instead,
 * and a solver driven through 100+ real restarts must stay sane.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "sat/solver.h"
#include "tests/sat/helpers.h"
#include "util/rng.h"

using namespace hyqsat;
using namespace hyqsat::sat;

namespace {

SolverOptions
geometricOptions(int first, double inc)
{
    SolverOptions opts;
    opts.luby_restarts = false;
    opts.restart_first = first;
    opts.restart_inc = inc;
    return opts;
}

TEST(RestartOverflow, GeometricLimitsSaturateMonotonically)
{
    const Solver solver(geometricOptions(1, 2.0));
    constexpr auto kMax = std::numeric_limits<std::int64_t>::max();

    std::int64_t prev = 0;
    for (int n = 0; n <= 300; ++n) {
        const std::int64_t limit = solver.restartLimit(n);
        ASSERT_GE(limit, 1) << "restart " << n;
        ASSERT_GE(limit, prev)
            << "limit must be nondecreasing at restart " << n;
        prev = limit;
    }
    // 2^300 is astronomically past int64: the tail must be pinned at
    // the saturation value, not wrapped or negative.
    EXPECT_EQ(solver.restartLimit(300), kMax);
    EXPECT_EQ(solver.restartLimit(63), kMax);
    // Early values are still the exact geometric sequence.
    EXPECT_EQ(solver.restartLimit(0), 1);
    EXPECT_EQ(solver.restartLimit(10), 1024);
}

TEST(RestartOverflow, GeometricLimitRespectsRestartFirst)
{
    const Solver solver(geometricOptions(100, 1.5));
    EXPECT_EQ(solver.restartLimit(0), 100);
    EXPECT_EQ(solver.restartLimit(1), 150);
    EXPECT_EQ(solver.restartLimit(2), 225);
    // Far past overflow: saturated, not UB.
    EXPECT_EQ(solver.restartLimit(10000),
              std::numeric_limits<std::int64_t>::max());
}

TEST(RestartOverflow, LubyLimitsStayPositive)
{
    SolverOptions opts;
    opts.luby_restarts = true;
    opts.restart_first = 100;
    const Solver solver(opts);
    for (int n = 0; n <= 300; ++n)
        ASSERT_GE(solver.restartLimit(n), 1) << "restart " << n;
}

TEST(RestartOverflow, SolverSurvives100PlusRealRestarts)
{
    // restart_first=1 with a near-flat geometric growth forces a
    // restart every conflict or two; a past-threshold unsatisfiable
    // formula (ratio 4.5 at n=100) keeps the solver in conflict long
    // enough to drive the restart count well past 100. Before the
    // fix, restart numbers whose raw pow() product exceeded INT_MAX
    // made the int cast UB.
    Rng rng(7);
    const Cnf cnf = hyqsat::sat::testing::randomCnf(100, 450, 3, rng);
    SolverOptions opts = geometricOptions(1, 1.01);
    Solver solver(opts);
    ASSERT_TRUE(solver.loadCnf(cnf));
    const lbool status = solver.solve();
    EXPECT_TRUE(status.isFalse());
    EXPECT_GE(solver.stats().restarts, 100u);
}

} // namespace
