/**
 * @file
 * Incremental satisfied-clause tracking (the frontend fast path's
 * sat-layer leg) and the ClauseArena 32-bit overflow guard.
 *
 * The tracking invariant is checked as a property test: during a
 * real budgeted search — decisions, propagation, conflicts and
 * backtracking included — the O(1) counters and the O(unsat) sparse
 * set must agree with an independent literal-by-literal scan of
 * every original clause at every sampled iteration.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "sat/clause.h"
#include "sat/solver.h"
#include "tests/sat/helpers.h"

namespace hyqsat::sat {
namespace {

SolverOptions
trackingOptions()
{
    SolverOptions opts;
    opts.instrument_clauses = true;
    opts.incremental_clause_tracking = true;
    return opts;
}

/** Reference implementation: scan the clause under the trail. */
bool
satisfiedByScan(const Solver &solver, int idx)
{
    for (const Lit p : solver.originalClause(idx)) {
        if (solver.value(p).isTrue())
            return true;
    }
    return false;
}

std::vector<int>
unsatisfiedByScan(const Solver &solver)
{
    std::vector<int> out;
    for (int c = 0; c < solver.numOriginalClauses(); ++c) {
        if (!satisfiedByScan(solver, c))
            out.push_back(c);
    }
    return out;
}

TEST(ClauseTracking, MatchesScanThroughoutSearch)
{
    // Several random instances, each searched under a conflict
    // budget so the trail sees deep assignments, conflicts and
    // backtracking; the incremental state must match the scan at
    // every sampled iteration.
    for (const std::uint64_t seed : {11u, 22u, 33u, 44u}) {
        Rng gen(seed);
        const auto cnf =
            testing::randomCnf(60, 250, 3, gen); // near 4.2 ratio
        Solver solver(trackingOptions());
        ASSERT_TRUE(solver.loadCnf(cnf));

        int checked = 0, iteration = 0;
        solver.setIterationHook([&](Solver &s) {
            if (++iteration % 7 != 0) // sample, checks are O(M·3)
                return;
            ++checked;
            std::vector<int> fast;
            s.unsatisfiedOriginalClausesInto(fast);
            EXPECT_EQ(fast, unsatisfiedByScan(s))
                << "seed " << seed << " iteration " << iteration;
            for (int c = 0; c < s.numOriginalClauses(); ++c) {
                ASSERT_EQ(s.originalClauseSatisfiedNow(c),
                          satisfiedByScan(s, c))
                    << "seed " << seed << " clause " << c;
            }
        });
        solver.setConflictBudget(400);
        (void)solver.solve();
        EXPECT_GT(checked, 0) << "hook never sampled the search";
    }
}

TEST(ClauseTracking, MatchesScanAfterSolveAndAcrossRestarts)
{
    Rng gen(5);
    const auto cnf = testing::randomCnf(40, 160, 3, gen);
    Solver scan_solver;
    Solver track_solver(trackingOptions());
    ASSERT_TRUE(scan_solver.loadCnf(cnf));
    ASSERT_TRUE(track_solver.loadCnf(cnf));
    scan_solver.setConflictBudget(1000);
    track_solver.setConflictBudget(1000);

    // Identical options except the tracking flag: the searches are
    // deterministic twins, so their public views must agree.
    EXPECT_EQ(scan_solver.solve(), track_solver.solve());
    EXPECT_EQ(scan_solver.unsatisfiedOriginalClauses(),
              track_solver.unsatisfiedOriginalClauses());
    EXPECT_EQ(track_solver.unsatisfiedOriginalClauses(),
              unsatisfiedByScan(track_solver));
}

TEST(ClauseTracking, SparseSetSurvivesExplicitBacktracking)
{
    // Drive the trail directly with assumptions: every prefix of
    // forced decisions ends in a solve() that backtracks to root, so
    // the counters are exercised through full cancelUntil sweeps.
    Rng gen(9);
    const auto cnf = testing::randomCnf(30, 100, 3, gen);
    Solver solver(trackingOptions());
    ASSERT_TRUE(solver.loadCnf(cnf));
    Rng pick(17);
    for (int round = 0; round < 10; ++round) {
        LitVec assumptions;
        const int depth = 1 + static_cast<int>(pick.below(8));
        for (int i = 0; i < depth; ++i) {
            assumptions.push_back(
                mkLit(static_cast<Var>(pick.below(30)),
                      pick.chance(0.5)));
        }
        solver.setConflictBudget(50);
        (void)solver.solveWithAssumptions(assumptions);
        EXPECT_EQ(solver.unsatisfiedOriginalClauses(),
                  unsatisfiedByScan(solver))
            << "round " << round;
    }
}

// ---------------------------------------------------------------------
// ClauseArena 32-bit overflow guard
// ---------------------------------------------------------------------

TEST(ClauseArena, WouldExceedTracksCapacityLimit)
{
    ClauseArena arena;
    // 3-literal clause = 2 header words + 3 literal words.
    arena.setCapacityLimitForTest(10);
    const LitVec clause{mkLit(0), mkLit(1), mkLit(2)};
    EXPECT_FALSE(arena.wouldExceed(clause.size()));
    (void)arena.alloc(clause, false);
    EXPECT_FALSE(arena.wouldExceed(clause.size())); // exactly fits
    (void)arena.alloc(clause, false);
    EXPECT_EQ(arena.size(), 10u);
    EXPECT_TRUE(arena.wouldExceed(clause.size()));
    EXPECT_TRUE(arena.wouldExceed(0));
}

TEST(ClauseArenaDeathTest, OverflowPanicsInsteadOfWrapping)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const LitVec clause{mkLit(0), mkLit(1), mkLit(2)};
    EXPECT_DEATH(
        {
            ClauseArena arena;
            arena.setCapacityLimitForTest(12);
            for (int i = 0; i < 3; ++i)
                (void)arena.alloc(clause, false);
        },
        "ClauseArena overflow");
}

TEST(ClauseTracking, SearchReclaimsArenaViaGcUnderTightLimit)
{
    // A limit with headroom for learnt churn but far below what an
    // unbounded search would allocate: the wouldExceed guard in
    // search() must garbage-collect freed learnts instead of
    // panicking, and the search must still terminate normally.
    Rng gen(13);
    const auto cnf = testing::randomCnf(50, 210, 3, gen);
    Solver solver;
    ASSERT_TRUE(solver.loadCnf(cnf));
    // Original clauses use ~210 * 5 words; leave ~4000 words for the
    // learnt database.
    solver.setArenaCapacityLimitForTest(5000);
    solver.setConflictBudget(4000);
    const auto status = solver.solve();
    EXPECT_FALSE(status.isUndef() && solver.stats().conflicts == 0);
    if (status.isTrue()) {
        const auto model = solver.boolModel();
        EXPECT_TRUE(cnf.eval(model));
    }
}

} // namespace
} // namespace hyqsat::sat
