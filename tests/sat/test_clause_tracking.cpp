/**
 * @file
 * Incremental satisfied-clause tracking (the frontend fast path's
 * sat-layer leg) and the ClauseArena 32-bit overflow guard.
 *
 * The tracking invariant is checked as a property test: during a
 * real budgeted search — decisions, propagation, conflicts and
 * backtracking included — the O(1) counters and the O(unsat) sparse
 * set must agree with an independent literal-by-literal scan of
 * every original clause at every sampled iteration.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "sat/clause.h"
#include "sat/solver.h"
#include "tests/sat/helpers.h"

namespace hyqsat::sat {
namespace {

SolverOptions
trackingOptions()
{
    SolverOptions opts;
    opts.instrument_clauses = true;
    opts.incremental_clause_tracking = true;
    return opts;
}

/** Reference implementation: scan the clause under the trail. */
bool
satisfiedByScan(const Solver &solver, int idx)
{
    for (const Lit p : solver.originalClause(idx)) {
        if (solver.value(p).isTrue())
            return true;
    }
    return false;
}

std::vector<int>
unsatisfiedByScan(const Solver &solver)
{
    std::vector<int> out;
    for (int c = 0; c < solver.numOriginalClauses(); ++c) {
        if (!satisfiedByScan(solver, c))
            out.push_back(c);
    }
    return out;
}

TEST(ClauseTracking, MatchesScanThroughoutSearch)
{
    // Several random instances, each searched under a conflict
    // budget so the trail sees deep assignments, conflicts and
    // backtracking; the incremental state must match the scan at
    // every sampled iteration.
    for (const std::uint64_t seed : {11u, 22u, 33u, 44u}) {
        Rng gen(seed);
        const auto cnf =
            testing::randomCnf(60, 250, 3, gen); // near 4.2 ratio
        Solver solver(trackingOptions());
        ASSERT_TRUE(solver.loadCnf(cnf));

        int checked = 0, iteration = 0;
        solver.setIterationHook([&](Solver &s) {
            if (++iteration % 7 != 0) // sample, checks are O(M·3)
                return;
            ++checked;
            std::vector<int> fast;
            s.unsatisfiedOriginalClausesInto(fast);
            EXPECT_EQ(fast, unsatisfiedByScan(s))
                << "seed " << seed << " iteration " << iteration;
            for (int c = 0; c < s.numOriginalClauses(); ++c) {
                ASSERT_EQ(s.originalClauseSatisfiedNow(c),
                          satisfiedByScan(s, c))
                    << "seed " << seed << " clause " << c;
            }
        });
        solver.setConflictBudget(400);
        (void)solver.solve();
        EXPECT_GT(checked, 0) << "hook never sampled the search";
    }
}

TEST(ClauseTracking, MatchesScanAfterSolveAndAcrossRestarts)
{
    Rng gen(5);
    const auto cnf = testing::randomCnf(40, 160, 3, gen);
    Solver scan_solver;
    Solver track_solver(trackingOptions());
    ASSERT_TRUE(scan_solver.loadCnf(cnf));
    ASSERT_TRUE(track_solver.loadCnf(cnf));
    scan_solver.setConflictBudget(1000);
    track_solver.setConflictBudget(1000);

    // Identical options except the tracking flag: the searches are
    // deterministic twins, so their public views must agree.
    EXPECT_EQ(scan_solver.solve(), track_solver.solve());
    EXPECT_EQ(scan_solver.unsatisfiedOriginalClauses(),
              track_solver.unsatisfiedOriginalClauses());
    EXPECT_EQ(track_solver.unsatisfiedOriginalClauses(),
              unsatisfiedByScan(track_solver));
}

TEST(ClauseTracking, SparseSetSurvivesExplicitBacktracking)
{
    // Drive the trail directly with assumptions: every prefix of
    // forced decisions ends in a solve() that backtracks to root, so
    // the counters are exercised through full cancelUntil sweeps.
    Rng gen(9);
    const auto cnf = testing::randomCnf(30, 100, 3, gen);
    Solver solver(trackingOptions());
    ASSERT_TRUE(solver.loadCnf(cnf));
    Rng pick(17);
    for (int round = 0; round < 10; ++round) {
        LitVec assumptions;
        const int depth = 1 + static_cast<int>(pick.below(8));
        for (int i = 0; i < depth; ++i) {
            assumptions.push_back(
                mkLit(static_cast<Var>(pick.below(30)),
                      pick.chance(0.5)));
        }
        solver.setConflictBudget(50);
        (void)solver.solveWithAssumptions(assumptions);
        EXPECT_EQ(solver.unsatisfiedOriginalClauses(),
                  unsatisfiedByScan(solver))
            << "round " << round;
    }
}

TEST(ClauseTracking, AssumeSolveAddCyclesMatchScan)
{
    // The incremental-session usage pattern: alternating
    // solveWithAssumptions calls (which retract their assumption
    // levels through cancelUntil on the way out) and root-level
    // addClause calls against a non-empty level-0 trail. The
    // counters and the sparse unsat set must agree with the literal
    // scan after every step, and the solve answers must match a
    // fresh un-tracked solver over the accumulated formula.
    Rng gen(21);
    constexpr int kVars = 25;
    Cnf accumulated(kVars);
    Solver solver(trackingOptions());
    // Seed formula below the unsat threshold so later ADDs matter.
    const auto seed_cnf = testing::randomCnf(kVars, 60, 3, gen);
    for (int i = 0; i < seed_cnf.numClauses(); ++i)
        accumulated.addClause(seed_cnf.clause(i));
    ASSERT_TRUE(solver.loadCnf(seed_cnf));

    Rng pick(23);
    bool alive = true;
    for (int step = 0; step < 40 && alive; ++step) {
        const double dice = pick.uniform();
        if (dice < 0.45) { // ASSUME + SOLVE
            LitVec assumptions;
            const int depth = 1 + static_cast<int>(pick.below(6));
            for (int i = 0; i < depth; ++i) {
                assumptions.push_back(
                    mkLit(static_cast<Var>(pick.below(kVars)),
                          pick.chance(0.5)));
            }
            const lbool got =
                solver.solveWithAssumptions(assumptions);
            Solver fresh;
            ASSERT_TRUE(fresh.loadCnf(accumulated));
            const lbool want =
                fresh.solveWithAssumptions(assumptions);
            EXPECT_EQ(got.isTrue(), want.isTrue())
                << "step " << step;
            EXPECT_EQ(got.isFalse(), want.isFalse())
                << "step " << step;
        } else if (dice < 0.7) { // plain SOLVE
            (void)solver.solve();
        } else { // ADD, registered under the next original index
            LitVec clause;
            const int len = 1 + static_cast<int>(pick.below(3));
            for (int i = 0; i < len; ++i) {
                clause.push_back(
                    mkLit(static_cast<Var>(pick.below(kVars)),
                          pick.chance(0.5)));
            }
            accumulated.addClause(clause);
            alive = solver.addClause(
                clause, solver.numOriginalClauses());
        }
        EXPECT_EQ(solver.unsatisfiedOriginalClauses(),
                  unsatisfiedByScan(solver))
            << "step " << step;
        for (int c = 0; c < solver.numOriginalClauses(); ++c) {
            ASSERT_EQ(solver.originalClauseSatisfiedNow(c),
                      satisfiedByScan(solver, c))
                << "step " << step << " clause " << c;
        }
    }
}

TEST(ClauseTracking, AddClauseOnNonEmptyRootTrailCountsTrail)
{
    // A clause registered after root units exist must count the
    // already-true/false literals exactly like the scan does.
    Solver solver(trackingOptions());
    const Var a = solver.newVar();
    const Var b = solver.newVar();
    const Var c = solver.newVar();
    ASSERT_TRUE(solver.addClause({mkLit(a)}, 0)); // root unit: a
    ASSERT_TRUE(solver.value(a).isTrue());
    // Satisfied by the trail at registration time.
    ASSERT_TRUE(solver.addClause({mkLit(a), mkLit(b)}, 1));
    EXPECT_TRUE(solver.originalClauseSatisfiedNow(1));
    // Not satisfied: ~a is false, b/c unassigned.
    ASSERT_TRUE(
        solver.addClause({mkLit(a, true), mkLit(b), mkLit(c)}, 2));
    EXPECT_FALSE(solver.originalClauseSatisfiedNow(2));
    EXPECT_EQ(solver.unsatisfiedOriginalClauses(),
              unsatisfiedByScan(solver));
}

// ---------------------------------------------------------------------
// ClauseArena 32-bit overflow guard
// ---------------------------------------------------------------------

TEST(ClauseArena, WouldExceedTracksCapacityLimit)
{
    ClauseArena arena;
    // 3-literal clause = 2 header words + 3 literal words.
    arena.setCapacityLimitForTest(10);
    const LitVec clause{mkLit(0), mkLit(1), mkLit(2)};
    EXPECT_FALSE(arena.wouldExceed(clause.size()));
    (void)arena.alloc(clause, false);
    EXPECT_FALSE(arena.wouldExceed(clause.size())); // exactly fits
    (void)arena.alloc(clause, false);
    EXPECT_EQ(arena.size(), 10u);
    EXPECT_TRUE(arena.wouldExceed(clause.size()));
    EXPECT_TRUE(arena.wouldExceed(0));
}

TEST(ClauseArenaDeathTest, OverflowPanicsInsteadOfWrapping)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const LitVec clause{mkLit(0), mkLit(1), mkLit(2)};
    EXPECT_DEATH(
        {
            ClauseArena arena;
            arena.setCapacityLimitForTest(12);
            for (int i = 0; i < 3; ++i)
                (void)arena.alloc(clause, false);
        },
        "ClauseArena overflow");
}

TEST(ClauseTracking, SearchReclaimsArenaViaGcUnderTightLimit)
{
    // A limit with headroom for learnt churn but far below what an
    // unbounded search would allocate: the wouldExceed guard in
    // search() must garbage-collect freed learnts instead of
    // panicking, and the search must still terminate normally.
    Rng gen(13);
    const auto cnf = testing::randomCnf(50, 210, 3, gen);
    Solver solver;
    ASSERT_TRUE(solver.loadCnf(cnf));
    // Original clauses use ~210 * 5 words; leave ~4000 words for the
    // learnt database.
    solver.setArenaCapacityLimitForTest(5000);
    solver.setConflictBudget(4000);
    const auto status = solver.solve();
    EXPECT_FALSE(status.isUndef() && solver.stats().conflicts == 0);
    if (status.isTrue()) {
        const auto model = solver.boolModel();
        EXPECT_TRUE(cnf.eval(model));
    }
}

} // namespace
} // namespace hyqsat::sat
