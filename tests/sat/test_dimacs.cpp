#include <gtest/gtest.h>

#include <sstream>
#include <string_view>

#include "sat/dimacs.h"
#include "tests/sat/helpers.h"

namespace hyqsat::sat {
namespace {

TEST(Dimacs, ParsesMinimalFormula)
{
    const auto cnf = parseDimacsString(
        "p cnf 3 2\n1 -2 3 0\n-1 2 0\n");
    ASSERT_TRUE(cnf.has_value());
    EXPECT_EQ(cnf->numVars(), 3);
    EXPECT_EQ(cnf->numClauses(), 2);
    EXPECT_EQ(cnf->clause(0)[0], mkLit(0, false));
    EXPECT_EQ(cnf->clause(0)[1], mkLit(1, true));
    EXPECT_EQ(cnf->clause(1)[0], mkLit(0, true));
}

TEST(Dimacs, SkipsCommentsAnywhere)
{
    const auto cnf = parseDimacsString(
        "c a comment\np cnf 2 1\nc mid comment\n1 2 0\nc trailing\n");
    ASSERT_TRUE(cnf.has_value());
    EXPECT_EQ(cnf->numClauses(), 1);
}

TEST(Dimacs, SkipsSatlibPercentTrailer)
{
    const auto cnf = parseDimacsString(
        "p cnf 2 1\n1 2 0\n%\n0\n");
    ASSERT_TRUE(cnf.has_value());
    EXPECT_EQ(cnf->numClauses(), 1);
    EXPECT_EQ(cnf->clause(0).size(), 2u);
}

TEST(Dimacs, ClauseSpanningMultipleLines)
{
    const auto cnf = parseDimacsString("p cnf 3 1\n1\n2\n3 0\n");
    ASSERT_TRUE(cnf.has_value());
    EXPECT_EQ(cnf->numClauses(), 1);
    EXPECT_EQ(cnf->clause(0).size(), 3u);
}

TEST(Dimacs, MissingHeaderRejected)
{
    EXPECT_FALSE(parseDimacsString("1 2 0\n").has_value());
}

TEST(Dimacs, MalformedHeaderRejected)
{
    EXPECT_FALSE(parseDimacsString("p wnf 2 1\n1 2 0\n").has_value());
    EXPECT_FALSE(parseDimacsString("p cnf x y\n1 2 0\n").has_value());
}

TEST(Dimacs, GarbageTokenRejected)
{
    EXPECT_FALSE(
        parseDimacsString("p cnf 2 1\n1 banana 0\n").has_value());
}

TEST(Dimacs, HeaderClauseCountMismatchTolerated)
{
    const auto cnf =
        parseDimacsString("p cnf 2 5\n1 2 0\n"); // says 5, has 1
    ASSERT_TRUE(cnf.has_value());
    EXPECT_EQ(cnf->numClauses(), 1);
}

TEST(Dimacs, FinalClauseWithoutTerminatorAccepted)
{
    const auto cnf = parseDimacsString("p cnf 2 1\n1 2\n");
    ASSERT_TRUE(cnf.has_value());
    EXPECT_EQ(cnf->numClauses(), 1);
}

TEST(Dimacs, VariablesBeyondHeaderGrowCount)
{
    const auto cnf = parseDimacsString("p cnf 1 1\n1 5 0\n");
    ASSERT_TRUE(cnf.has_value());
    EXPECT_EQ(cnf->numVars(), 5);
}

TEST(Dimacs, RoundTripPreservesFormula)
{
    Rng rng(7);
    const Cnf original = testing::randomCnf(10, 30, 3, rng);
    const auto parsed = parseDimacsString(toDimacsString(original));
    ASSERT_TRUE(parsed.has_value());
    ASSERT_EQ(parsed->numClauses(), original.numClauses());
    EXPECT_EQ(parsed->numVars(), original.numVars());
    for (int i = 0; i < original.numClauses(); ++i)
        EXPECT_EQ(parsed->clause(i), original.clause(i));
}

TEST(Dimacs, FileRoundTrip)
{
    Rng rng(11);
    const Cnf original = testing::randomCnf(6, 12, 3, rng);
    const std::string path = ::testing::TempDir() + "/roundtrip.cnf";
    writeDimacsFile(original, path);
    const auto parsed = parseDimacsFile(path);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->numClauses(), original.numClauses());
}

TEST(Dimacs, NameEmittedAsComment)
{
    Cnf cnf(1);
    cnf.setName("instance-7");
    cnf.addClause(mkLit(0));
    const auto text = toDimacsString(cnf);
    EXPECT_NE(text.find("c instance-7"), std::string::npos);
}

TEST(Dimacs, ViewStreamAndFileOverloadsAgree)
{
    // All entry points delegate to the string_view core, so the same
    // bytes must produce the same formula through every one of them.
    Rng rng(13);
    const Cnf original = testing::randomCnf(8, 20, 3, rng);
    const std::string text = toDimacsString(original);

    const auto from_view = parseDimacs(std::string_view(text));
    const auto from_string = parseDimacsString(text);
    std::istringstream stream(text);
    const auto from_stream = parseDimacs(stream);
    const std::string path = ::testing::TempDir() + "/overloads.cnf";
    writeDimacsFile(original, path);
    const auto from_file = parseDimacsFile(path);

    ASSERT_TRUE(from_view.has_value());
    ASSERT_TRUE(from_string.has_value());
    ASSERT_TRUE(from_stream.has_value());
    ASSERT_TRUE(from_file.has_value());
    for (const auto *parsed :
         {&*from_view, &*from_string, &*from_stream, &*from_file}) {
        ASSERT_EQ(parsed->numClauses(), original.numClauses());
        EXPECT_EQ(parsed->numVars(), original.numVars());
        for (int i = 0; i < original.numClauses(); ++i)
            EXPECT_EQ(parsed->clause(i), original.clause(i));
    }
}

TEST(Dimacs, ViewParsesWithoutTrailingNewline)
{
    const auto cnf =
        parseDimacs(std::string_view("p cnf 2 1\n1 -2 0"));
    ASSERT_TRUE(cnf.has_value());
    EXPECT_EQ(cnf->numClauses(), 1);
}

TEST(Dimacs, PlusSignedLiteralsAccepted)
{
    // `istream >> int` accepts a leading '+'; the from_chars core
    // must keep that behaviour.
    const auto cnf =
        parseDimacsString("p cnf 2 1\n+1 -2 0\n");
    ASSERT_TRUE(cnf.has_value());
    EXPECT_EQ(cnf->clause(0)[0], mkLit(0, false));
    EXPECT_EQ(cnf->clause(0)[1], mkLit(1, true));
}

TEST(Dimacs, CarriageReturnLineEndingsTolerated)
{
    const auto cnf =
        parseDimacsString("p cnf 2 2\r\n1 2 0\r\n-1 -2 0\r\n");
    ASSERT_TRUE(cnf.has_value());
    EXPECT_EQ(cnf->numClauses(), 2);
}

TEST(Dimacs, ViewRejectsMalformedInput)
{
    EXPECT_FALSE(parseDimacs(std::string_view("")).has_value());
    EXPECT_FALSE(
        parseDimacs(std::string_view("1 2 0\n")).has_value());
    EXPECT_FALSE(
        parseDimacs(std::string_view("p cnf -1 1\n1 0\n"))
            .has_value());
    EXPECT_FALSE(
        parseDimacs(std::string_view("p cnf 2 1\n1 two 0\n"))
            .has_value());
}

} // namespace
} // namespace hyqsat::sat
