#include <gtest/gtest.h>

#include "sat/brute_force.h"
#include "sat/simplify.h"
#include "sat/solver.h"
#include "tests/sat/helpers.h"

namespace hyqsat::sat {
namespace {

TEST(Simplify, EmptyFormulaUnchanged)
{
    const auto r = simplifyCnf(Cnf(3));
    EXPECT_TRUE(r.satisfiable_possible);
    EXPECT_EQ(r.cnf.numClauses(), 0);
    EXPECT_TRUE(r.fixed.empty());
}

TEST(Simplify, UnitPropagationFixesChain)
{
    // x0; ~x0 v x1; ~x1 v x2: all three become fixed units.
    Cnf cnf(3);
    cnf.addClause(mkLit(0));
    cnf.addClause(mkLit(0, true), mkLit(1));
    cnf.addClause(mkLit(1, true), mkLit(2));
    const auto r = simplifyCnf(cnf);
    EXPECT_TRUE(r.satisfiable_possible);
    EXPECT_EQ(r.units_propagated, 3);
    EXPECT_EQ(r.cnf.numClauses(), 0);
    const auto model = r.extendModel(std::vector<bool>(3, false));
    EXPECT_TRUE(cnf.eval(model));
}

TEST(Simplify, ContradictionDetected)
{
    Cnf cnf(1);
    cnf.addClause(mkLit(0));
    cnf.addClause(mkLit(0, true));
    const auto r = simplifyCnf(cnf);
    EXPECT_FALSE(r.satisfiable_possible);
}

TEST(Simplify, TautologiesDropped)
{
    Cnf cnf(2);
    cnf.addClause(mkLit(0), mkLit(0, true));
    cnf.addClause(mkLit(0), mkLit(1));
    const auto r = simplifyCnf(cnf);
    EXPECT_EQ(r.tautologies, 1);
    EXPECT_EQ(r.cnf.numClauses(), 1);
}

TEST(Simplify, SubsumptionRemovesSuperset)
{
    // (x0 v x1) subsumes (x0 v x1 v x2).
    Cnf cnf(3);
    cnf.addClause(mkLit(0), mkLit(1));
    cnf.addClause(mkLit(0), mkLit(1), mkLit(2));
    const auto r = simplifyCnf(cnf);
    EXPECT_EQ(r.subsumed, 1);
    EXPECT_EQ(r.cnf.numClauses(), 1);
    EXPECT_EQ(r.cnf.clause(0).size(), 2u);
}

TEST(Simplify, SelfSubsumptionStrengthens)
{
    // (x0 v x1) and (~x0 v x1 v x2): resolving on x0 gives
    // (x1 v x2)... self-subsumption strengthens the second clause
    // to (x1 v x2) only if (x0 v x1) flipped at x0 = (~x0 v x1) is
    // a subset of it; here (~x0 v x1) subset of (~x0 v x1 v x2) ->
    // remove... that is plain subsumption of a flipped copy:
    // the pass removes ~x0? No: flipping x0 in the FIRST clause
    // gives (~x0 v x1) which subsumes-with-flip the second, so the
    // second loses ~x0 and becomes (x1 v x2).
    Cnf cnf(3);
    cnf.addClause(mkLit(0), mkLit(1));
    cnf.addClause(mkLit(0, true), mkLit(1), mkLit(2));
    const auto r = simplifyCnf(cnf);
    EXPECT_GE(r.strengthened, 1);
    // Equivalence: brute force agrees.
    EXPECT_EQ(bruteForceSolve(cnf).satisfiable,
              bruteForceSolve(r.cnf).satisfiable);
}

TEST(Simplify, PreservesEquivalenceOnRandomInstances)
{
    Rng rng(7);
    for (int round = 0; round < 20; ++round) {
        const Cnf cnf = testing::randomCnf(10, 45, 3, rng);
        const auto r = simplifyCnf(cnf);
        const bool original = bruteForceSolve(cnf).satisfiable;
        if (!r.satisfiable_possible) {
            EXPECT_FALSE(original) << "round " << round;
            continue;
        }
        // Solve the simplified formula and extend the model.
        Solver s;
        ASSERT_TRUE(s.loadCnf(r.cnf) || !original);
        const lbool simplified =
            s.okay() ? s.solve() : l_False;
        ASSERT_FALSE(simplified.isUndef());
        EXPECT_EQ(simplified.isTrue(), original) << "round " << round;
        if (simplified.isTrue()) {
            auto model = r.extendModel(s.boolModel());
            model.resize(std::max<std::size_t>(model.size(),
                                               cnf.numVars()),
                         false);
            EXPECT_TRUE(cnf.eval(model)) << "round " << round;
        }
    }
}

TEST(Simplify, IdempotentOnFixpoint)
{
    Rng rng(11);
    const Cnf cnf = testing::randomCnf(20, 80, 3, rng);
    const auto once = simplifyCnf(cnf);
    const auto twice = simplifyCnf(once.cnf);
    EXPECT_EQ(twice.units_propagated, 0);
    EXPECT_EQ(twice.subsumed, 0);
    EXPECT_EQ(twice.strengthened, 0);
    EXPECT_EQ(twice.cnf.numClauses(), once.cnf.numClauses());
}

TEST(Simplify, OptionsDisablePasses)
{
    Cnf cnf(3);
    cnf.addClause(mkLit(0), mkLit(1));
    cnf.addClause(mkLit(0), mkLit(1), mkLit(2));
    SimplifyOptions opts;
    opts.subsumption = false;
    opts.self_subsumption = false;
    const auto r = simplifyCnf(cnf, opts);
    EXPECT_EQ(r.subsumed, 0);
    EXPECT_EQ(r.cnf.numClauses(), 2);
}

TEST(Simplify, ReducesPhaseTransitionInstances)
{
    // Preprocessing should strictly shrink duplicate-rich formulas.
    Rng rng(13);
    Cnf cnf = testing::randomCnf(30, 120, 3, rng);
    // Inject duplicates and supersets.
    const auto base = cnf.clauses();
    for (int i = 0; i < 20; ++i) {
        auto clause = base[i];
        clause.push_back(mkLit(static_cast<Var>(i % 30)));
        cnf.addClause(clause);
    }
    const auto r = simplifyCnf(cnf);
    EXPECT_LT(r.cnf.numClauses(), cnf.numClauses());
}

} // namespace
} // namespace hyqsat::sat
