/**
 * @file
 * Stress and internals-exercising tests: clause-database reduction
 * and garbage collection under long runs, large-formula handling,
 * and interaction of budgets with restarts.
 */

#include <gtest/gtest.h>

#include "gen/random_sat.h"
#include "sat/brute_force.h"
#include "sat/solver.h"
#include "tests/sat/helpers.h"

namespace hyqsat::sat {
namespace {

TEST(SolverStress, LongRunTriggersReduceAndGc)
{
    // A hard instance at the phase transition forces thousands of
    // conflicts: clause-DB reduction and arena GC must both fire
    // without corrupting the search.
    Rng rng(1);
    const Cnf cnf = testing::randomCnf(120, 511, 3, rng);
    SolverOptions opts;
    opts.learnt_size_factor = 0.02; // tiny DB: reduce constantly
    Solver s(opts);
    ASSERT_TRUE(s.loadCnf(cnf));
    const lbool r = s.solve();
    ASSERT_FALSE(r.isUndef());
    EXPECT_GT(s.stats().removed_clauses, 0u);
    if (r.isTrue())
        EXPECT_TRUE(cnf.eval(s.boolModel()));
}

TEST(SolverStress, SoundnessUnderTinyLearntBudget)
{
    Rng rng(2);
    for (int round = 0; round < 6; ++round) {
        const Cnf cnf = testing::randomCnf(12, 51, 3, rng);
        const bool expected = bruteForceSolve(cnf).satisfiable;
        SolverOptions opts;
        opts.learnt_size_factor = 0.01;
        opts.seed = round;
        Solver s(opts);
        ASSERT_TRUE(s.loadCnf(cnf) || !expected);
        const lbool got = s.okay() ? s.solve() : l_False;
        ASSERT_FALSE(got.isUndef());
        EXPECT_EQ(got.isTrue(), expected) << "round " << round;
    }
}

TEST(SolverStress, LargeEasyFormulaLoadsAndSolves)
{
    // Tens of thousands of clauses of Horn-like structure:
    // exercises arena growth and watch-list scaling while staying
    // conflict-poor enough to finish fast.
    Rng rng(3);
    const Cnf cnf = gen::randomHornLike(8000, 24000, 0.97, rng);
    Solver s;
    ASSERT_TRUE(s.loadCnf(cnf));
    const lbool r = s.solve();
    ASSERT_FALSE(r.isUndef());
    if (r.isTrue())
        EXPECT_TRUE(cnf.eval(s.boolModel()));
}

TEST(SolverStress, ConflictBudgetAcrossRestarts)
{
    Rng rng(4);
    const Cnf cnf = testing::randomCnf(150, 640, 3, rng);
    Solver s;
    ASSERT_TRUE(s.loadCnf(cnf));
    s.setConflictBudget(500);
    const lbool r = s.solve();
    if (r.isUndef())
        EXPECT_LE(s.stats().conflicts, 600u);
}

TEST(SolverStress, ManySmallSolvesNoStateLeak)
{
    // Fresh solvers over the same formula must agree exactly.
    Rng rng(5);
    const Cnf cnf = testing::randomCnf(40, 170, 3, rng);
    std::uint64_t reference = 0;
    for (int i = 0; i < 5; ++i) {
        Solver s;
        ASSERT_TRUE(s.loadCnf(cnf));
        s.solve();
        if (i == 0)
            reference = s.stats().conflicts;
        else
            EXPECT_EQ(s.stats().conflicts, reference);
    }
}

} // namespace
} // namespace hyqsat::sat
