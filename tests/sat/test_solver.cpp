#include <gtest/gtest.h>

#include "sat/brute_force.h"
#include "sat/solver.h"
#include "tests/sat/helpers.h"

namespace hyqsat::sat {
namespace {

TEST(Solver, EmptyFormulaIsSat)
{
    Solver s;
    EXPECT_TRUE(s.solve().isTrue());
}

TEST(Solver, SingleUnitClause)
{
    Solver s;
    const Var v = s.newVar();
    ASSERT_TRUE(s.addClause({mkLit(v)}));
    ASSERT_TRUE(s.solve().isTrue());
    EXPECT_TRUE(s.model()[v].isTrue());
}

TEST(Solver, ContradictingUnitsUnsatAtLoad)
{
    Solver s;
    const Var v = s.newVar();
    EXPECT_TRUE(s.addClause({mkLit(v)}));
    EXPECT_FALSE(s.addClause({mkLit(v, true)}));
    EXPECT_FALSE(s.okay());
    EXPECT_TRUE(s.solve().isFalse());
}

TEST(Solver, EmptyClauseUnsat)
{
    Solver s;
    EXPECT_FALSE(s.addClause({}));
    EXPECT_TRUE(s.solve().isFalse());
}

TEST(Solver, TautologyIgnored)
{
    Solver s;
    const Var v = s.newVar();
    EXPECT_TRUE(s.addClause({mkLit(v), mkLit(v, true)}));
    EXPECT_TRUE(s.solve().isTrue());
}

TEST(Solver, DuplicateLiteralsCollapsed)
{
    Solver s;
    const Var v = s.newVar();
    EXPECT_TRUE(s.addClause({mkLit(v), mkLit(v), mkLit(v)}));
    ASSERT_TRUE(s.solve().isTrue());
    EXPECT_TRUE(s.model()[v].isTrue());
}

TEST(Solver, SimpleChainPropagation)
{
    // x0, x0->x1, x1->x2 forces all true.
    Solver s;
    for (int i = 0; i < 3; ++i)
        s.newVar();
    ASSERT_TRUE(s.addClause({mkLit(0)}));
    ASSERT_TRUE(s.addClause({mkLit(0, true), mkLit(1)}));
    ASSERT_TRUE(s.addClause({mkLit(1, true), mkLit(2)}));
    ASSERT_TRUE(s.solve().isTrue());
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(s.model()[i].isTrue());
}

TEST(Solver, PigeonHole3Into2Unsat)
{
    // 3 pigeons, 2 holes: var p*2+h means pigeon p in hole h.
    Solver s;
    for (int i = 0; i < 6; ++i)
        s.newVar();
    for (int p = 0; p < 3; ++p)
        ASSERT_TRUE(s.addClause({mkLit(2 * p), mkLit(2 * p + 1)}));
    bool ok = true;
    for (int h = 0; h < 2; ++h)
        for (int p1 = 0; p1 < 3; ++p1)
            for (int p2 = p1 + 1; p2 < 3; ++p2)
                ok = s.addClause(
                    {mkLit(2 * p1 + h, true), mkLit(2 * p2 + h, true)});
    (void)ok;
    EXPECT_TRUE(s.solve().isFalse());
}

TEST(Solver, LoadCnfSolvesLikeManualAdd)
{
    Cnf cnf(3);
    cnf.addClause(mkLit(0), mkLit(1));
    cnf.addClause(mkLit(1, true), mkLit(2));
    Solver s;
    ASSERT_TRUE(s.loadCnf(cnf));
    ASSERT_TRUE(s.solve().isTrue());
    EXPECT_TRUE(cnf.eval(s.boolModel()));
}

TEST(Solver, ModelVerifiesOnRandomSatInstances)
{
    Rng rng(5);
    for (int round = 0; round < 30; ++round) {
        // Low ratio => almost surely satisfiable; verify any model.
        Cnf cnf = testing::randomCnf(20, 40, 3, rng);
        Solver s;
        ASSERT_TRUE(s.loadCnf(cnf));
        if (s.solve().isTrue())
            EXPECT_TRUE(cnf.eval(s.boolModel())) << "round " << round;
    }
}

TEST(Solver, ConflictBudgetReturnsUndef)
{
    Rng rng(17);
    // Hard-ish instance at the phase transition.
    Cnf cnf = testing::randomCnf(60, 256, 3, rng);
    Solver s;
    ASSERT_TRUE(s.loadCnf(cnf));
    s.setConflictBudget(1);
    const lbool r = s.solve();
    // With a 1-conflict budget either it got lucky or gave up.
    if (r.isUndef())
        EXPECT_LE(s.stats().conflicts, 2u);
}

TEST(Solver, DecisionBudgetReturnsUndef)
{
    Rng rng(18);
    Cnf cnf = testing::randomCnf(60, 250, 3, rng);
    Solver s;
    ASSERT_TRUE(s.loadCnf(cnf));
    s.setDecisionBudget(3);
    const lbool r = s.solve();
    if (r.isUndef())
        EXPECT_LE(s.stats().decisions, 4u);
}

TEST(Solver, RequestStopFromHook)
{
    Rng rng(19);
    Cnf cnf = testing::randomCnf(50, 210, 3, rng);
    Solver s;
    ASSERT_TRUE(s.loadCnf(cnf));
    int calls = 0;
    s.setIterationHook([&](Solver &solver) {
        if (++calls >= 5)
            solver.requestStop();
    });
    EXPECT_TRUE(s.solve().isUndef());
    EXPECT_LE(calls, 6);
}

TEST(Solver, HookObservesIterationProgression)
{
    Rng rng(20);
    Cnf cnf = testing::randomCnf(30, 120, 3, rng);
    Solver s;
    ASSERT_TRUE(s.loadCnf(cnf));
    std::uint64_t last = 0;
    bool monotone = true;
    s.setIterationHook([&](Solver &solver) {
        monotone &= solver.stats().iterations >= last;
        last = solver.stats().iterations;
    });
    s.solve();
    EXPECT_TRUE(monotone);
    EXPECT_GE(last, 1u);
}

TEST(Solver, SetPhaseForcesDecisionPolarity)
{
    // Two free variables, no constraints between them: the first
    // decision must honour the forced phase.
    Solver s;
    const Var a = s.newVar();
    const Var b = s.newVar();
    ASSERT_TRUE(s.addClause({mkLit(a), mkLit(b)}));
    s.setPhase(a, true);
    s.setPhase(b, true);
    ASSERT_TRUE(s.solve().isTrue());
    EXPECT_TRUE(s.model()[a].isTrue());
    EXPECT_TRUE(s.model()[b].isTrue());

    Solver s2;
    const Var c = s2.newVar();
    const Var d = s2.newVar();
    ASSERT_TRUE(s2.addClause({mkLit(c), mkLit(d)}));
    s2.setPhase(c, false);
    ASSERT_TRUE(s2.solve().isTrue());
    EXPECT_TRUE(s2.model()[c].isFalse());
}

TEST(Solver, SuggestPhaseSeedsFirstDecisionOnly)
{
    // The soft hint steers the first decision, but a later
    // assignment (via phase saving) overwrites it - unlike setPhase.
    SolverOptions opts;
    opts.default_phase = false;
    Solver s(opts);
    const Var a = s.newVar();
    ASSERT_TRUE(s.addClause({mkLit(a), mkLit(s.newVar())}));
    s.suggestPhase(a, true);
    ASSERT_TRUE(s.solve().isTrue());
    EXPECT_TRUE(s.model()[a].isTrue());
}

TEST(Solver, SetPhaseOverridesSuggestPhase)
{
    Solver s;
    const Var a = s.newVar();
    ASSERT_TRUE(s.addClause({mkLit(a), mkLit(s.newVar())}));
    s.suggestPhase(a, true);
    s.setPhase(a, false);
    ASSERT_TRUE(s.solve().isTrue());
    EXPECT_TRUE(s.model()[a].isFalse());
}

TEST(Solver, ClearPhaseRestoresDefaultPolicy)
{
    SolverOptions opts;
    opts.default_phase = false;
    Solver s(opts);
    const Var a = s.newVar();
    s.setPhase(a, true);
    s.clearPhase(a);
    ASSERT_TRUE(s.solve().isTrue());
    EXPECT_TRUE(s.model()[a].isFalse());
}

TEST(Solver, BumpVarPriorityChangesDecisionOrder)
{
    // Without bumps all scores are 0 and the heap breaks ties by
    // structure; bumping the last variable must make it the first
    // decision.
    Solver s;
    for (int i = 0; i < 10; ++i)
        s.newVar();
    LitVec big;
    for (int i = 0; i < 10; ++i)
        big.push_back(mkLit(i));
    ASSERT_TRUE(s.addClause(big));
    s.bumpVarPriority(7, 100.0);

    Var first_decision = var_Undef;
    s.setIterationHook([&](Solver &solver) {
        if (first_decision == var_Undef) {
            // Peek: after this hook the solver decides; record by
            // scanning for the newly assigned var at level 1 in the
            // next call.
        }
        if (solver.decisionLevel() == 1 && first_decision == var_Undef) {
            for (Var v = 0; v < solver.numVars(); ++v) {
                if (!solver.value(v).isUndef()) {
                    first_decision = v;
                    break;
                }
            }
        }
    });
    ASSERT_TRUE(s.solve().isTrue());
    EXPECT_EQ(first_decision, 7);
}

TEST(Solver, StatsCountDecisionsAndConflicts)
{
    Rng rng(23);
    Cnf cnf = testing::randomCnf(40, 170, 3, rng);
    Solver s;
    ASSERT_TRUE(s.loadCnf(cnf));
    s.solve();
    EXPECT_GT(s.stats().decisions, 0u);
    EXPECT_GT(s.stats().propagations, 0u);
    EXPECT_EQ(s.stats().iterations, s.stats().decisions);
}

TEST(Solver, UnsatisfiedOriginalClausesShrinksAsTrailGrows)
{
    Cnf cnf(3);
    cnf.addClause(mkLit(0));
    cnf.addClause(mkLit(0), mkLit(1));
    cnf.addClause(mkLit(2));
    Solver s;
    ASSERT_TRUE(s.loadCnf(cnf));
    // Units propagate at load: clauses 0,1,2 satisfied already.
    EXPECT_TRUE(s.unsatisfiedOriginalClauses().empty());
}

TEST(Solver, OriginalClauseAccessors)
{
    Cnf cnf(2);
    cnf.addClause(mkLit(0), mkLit(1));
    Solver s;
    ASSERT_TRUE(s.loadCnf(cnf));
    ASSERT_EQ(s.numOriginalClauses(), 1);
    EXPECT_EQ(s.originalClause(0).size(), 2u);
    EXPECT_FALSE(s.originalClauseSatisfiedNow(0));
}

TEST(Solver, ClauseActivityScoresStartAtOne)
{
    Cnf cnf(2);
    cnf.addClause(mkLit(0), mkLit(1));
    cnf.addClause(mkLit(0, true), mkLit(1));
    Solver s;
    ASSERT_TRUE(s.loadCnf(cnf));
    EXPECT_DOUBLE_EQ(s.clauseActivityScore(0), 1.0);
    EXPECT_DOUBLE_EQ(s.clauseActivityScore(1), 1.0);
}

TEST(Solver, ConflictsBumpClauseActivityScores)
{
    Rng rng(29);
    Cnf cnf = testing::randomCnf(30, 129, 3, rng);
    Solver s;
    ASSERT_TRUE(s.loadCnf(cnf));
    s.solve();
    if (s.stats().conflicts > 0) {
        double total = 0;
        for (int i = 0; i < s.numOriginalClauses(); ++i)
            total += s.clauseActivityScore(i);
        EXPECT_GT(total, static_cast<double>(s.numOriginalClauses()));
    }
}

TEST(Solver, PropagationVisitCountersAccumulate)
{
    Rng rng(31);
    Cnf cnf = testing::randomCnf(30, 129, 3, rng);
    Solver s;
    ASSERT_TRUE(s.loadCnf(cnf));
    s.solve();
    std::uint64_t visits = 0;
    for (int i = 0; i < s.numOriginalClauses(); ++i)
        visits += s.clausePropagationVisits(i);
    EXPECT_GT(visits, 0u);
}

TEST(Solver, SolveTwiceIsStable)
{
    Cnf cnf(2);
    cnf.addClause(mkLit(0), mkLit(1));
    Solver s;
    ASSERT_TRUE(s.loadCnf(cnf));
    EXPECT_TRUE(s.solve().isTrue());
    EXPECT_TRUE(s.solve().isTrue());
    EXPECT_TRUE(cnf.eval(s.boolModel()));
}

TEST(Solver, KissatStyleOptionsSolveCorrectly)
{
    Rng rng(37);
    for (int round = 0; round < 10; ++round) {
        Cnf cnf = testing::randomCnf(15, 60, 3, rng);
        Solver s(SolverOptions::kissatStyle());
        ASSERT_TRUE(s.loadCnf(cnf));
        const auto expected = bruteForceSolve(cnf).satisfiable;
        const lbool got = s.solve();
        ASSERT_FALSE(got.isUndef());
        EXPECT_EQ(got.isTrue(), expected) << "round " << round;
    }
}

TEST(Solver, RandomBranchingStillSound)
{
    Rng rng(41);
    SolverOptions opts;
    opts.branching = Branching::Random;
    opts.random_branch_freq = 0.2;
    for (int round = 0; round < 10; ++round) {
        Cnf cnf = testing::randomCnf(12, 50, 3, rng);
        Solver s(opts);
        ASSERT_TRUE(s.loadCnf(cnf));
        const auto expected = bruteForceSolve(cnf).satisfiable;
        const lbool got = s.solve();
        ASSERT_FALSE(got.isUndef());
        EXPECT_EQ(got.isTrue(), expected) << "round " << round;
    }
}

} // namespace
} // namespace hyqsat::sat
