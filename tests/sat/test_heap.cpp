#include <gtest/gtest.h>

#include <algorithm>

#include "sat/heap.h"
#include "util/rng.h"

namespace hyqsat::sat {
namespace {

TEST(VarOrderHeap, EmptyByDefault)
{
    std::vector<double> scores;
    VarOrderHeap heap(scores);
    EXPECT_TRUE(heap.empty());
    EXPECT_EQ(heap.size(), 0u);
}

TEST(VarOrderHeap, InsertAndContainment)
{
    std::vector<double> scores{1.0, 2.0, 3.0};
    VarOrderHeap heap(scores);
    heap.insert(1);
    EXPECT_TRUE(heap.inHeap(1));
    EXPECT_FALSE(heap.inHeap(0));
    EXPECT_FALSE(heap.inHeap(2));
    EXPECT_FALSE(heap.inHeap(99)); // out of range is just "absent"
}

TEST(VarOrderHeap, RemoveMaxReturnsHighestScore)
{
    std::vector<double> scores{5.0, 9.0, 1.0, 7.0};
    VarOrderHeap heap(scores);
    for (Var v = 0; v < 4; ++v)
        heap.insert(v);
    EXPECT_EQ(heap.removeMax(), 1);
    EXPECT_EQ(heap.removeMax(), 3);
    EXPECT_EQ(heap.removeMax(), 0);
    EXPECT_EQ(heap.removeMax(), 2);
    EXPECT_TRUE(heap.empty());
}

TEST(VarOrderHeap, RemovedElementNoLongerInHeap)
{
    std::vector<double> scores{1.0, 2.0};
    VarOrderHeap heap(scores);
    heap.insert(0);
    heap.insert(1);
    heap.removeMax();
    EXPECT_FALSE(heap.inHeap(1));
    EXPECT_TRUE(heap.inHeap(0));
}

TEST(VarOrderHeap, UpdateAfterScoreIncrease)
{
    std::vector<double> scores{1.0, 2.0, 3.0};
    VarOrderHeap heap(scores);
    for (Var v = 0; v < 3; ++v)
        heap.insert(v);
    scores[0] = 10.0;
    heap.update(0);
    EXPECT_EQ(heap.removeMax(), 0);
}

TEST(VarOrderHeap, UpdateAfterScoreDecrease)
{
    std::vector<double> scores{9.0, 2.0, 3.0};
    VarOrderHeap heap(scores);
    for (Var v = 0; v < 3; ++v)
        heap.insert(v);
    scores[0] = 0.5;
    heap.update(0);
    EXPECT_EQ(heap.removeMax(), 2);
}

TEST(VarOrderHeap, UpdateOfAbsentVariableIsNoop)
{
    std::vector<double> scores{1.0};
    VarOrderHeap heap(scores);
    EXPECT_NO_FATAL_FAILURE(heap.update(0));
}

TEST(VarOrderHeap, ClearEmptiesAndAllowsReinsert)
{
    std::vector<double> scores{1.0, 2.0};
    VarOrderHeap heap(scores);
    heap.insert(0);
    heap.insert(1);
    heap.clear();
    EXPECT_TRUE(heap.empty());
    EXPECT_FALSE(heap.inHeap(0));
    heap.insert(0);
    EXPECT_EQ(heap.removeMax(), 0);
}

TEST(VarOrderHeap, RandomizedDrainMatchesSort)
{
    hyqsat::Rng rng(12345);
    const int n = 200;
    std::vector<double> scores(n);
    for (auto &s : scores)
        s = rng.uniform();
    VarOrderHeap heap(scores);
    for (Var v = 0; v < n; ++v)
        heap.insert(v);

    std::vector<Var> drained;
    while (!heap.empty())
        drained.push_back(heap.removeMax());

    std::vector<Var> expected(n);
    for (Var v = 0; v < n; ++v)
        expected[v] = v;
    std::sort(expected.begin(), expected.end(), [&](Var a, Var b) {
        return scores[a] > scores[b];
    });
    EXPECT_EQ(drained, expected);
}

TEST(VarOrderHeap, RandomizedUpdatesKeepHeapConsistent)
{
    hyqsat::Rng rng(777);
    const int n = 64;
    std::vector<double> scores(n, 0.0);
    VarOrderHeap heap(scores);
    for (Var v = 0; v < n; ++v)
        heap.insert(v);
    for (int round = 0; round < 1000; ++round) {
        const Var v = static_cast<Var>(rng.below(n));
        scores[v] = rng.uniform() * 100;
        heap.update(v);
    }
    double last = 1e300;
    while (!heap.empty()) {
        const Var v = heap.removeMax();
        EXPECT_LE(scores[v], last);
        last = scores[v];
    }
}

} // namespace
} // namespace hyqsat::sat
