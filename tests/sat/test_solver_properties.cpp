/**
 * @file
 * Parameterized property tests: the CDCL solver must agree with the
 * brute-force reference on satisfiability across sweeps of instance
 * shapes, options and seeds, and returned models must verify.
 */

#include <gtest/gtest.h>

#include "sat/brute_force.h"
#include "sat/dimacs.h"
#include "sat/solver.h"
#include "tests/sat/helpers.h"

namespace hyqsat::sat {
namespace {

struct SweepParam
{
    int num_vars;
    int num_clauses;
    int k;
    Branching branching;
    bool ccmin;
    bool phase_saving;
};

std::string
paramName(const ::testing::TestParamInfo<SweepParam> &info)
{
    const auto &p = info.param;
    std::string name = "v" + std::to_string(p.num_vars) + "_c" +
                       std::to_string(p.num_clauses) + "_k" +
                       std::to_string(p.k);
    name += p.branching == Branching::VSIDS  ? "_vsids"
            : p.branching == Branching::CHB ? "_chb"
                                            : "_rand";
    name += p.ccmin ? "_ccmin" : "_nomin";
    name += p.phase_saving ? "_phase" : "_nophase";
    return name;
}

class SolverAgreesWithBruteForce
    : public ::testing::TestWithParam<SweepParam>
{
};

TEST_P(SolverAgreesWithBruteForce, OnRandomInstances)
{
    const auto &p = GetParam();
    Rng rng(1000 + p.num_vars * 7 + p.num_clauses);
    for (int round = 0; round < 25; ++round) {
        Cnf cnf = testing::randomCnf(p.num_vars, p.num_clauses, p.k, rng);
        const bool expected = bruteForceSolve(cnf).satisfiable;

        SolverOptions opts;
        opts.branching = p.branching;
        opts.ccmin = p.ccmin;
        opts.phase_saving = p.phase_saving;
        opts.seed = 42 + round;
        Solver s(opts);
        ASSERT_TRUE(s.loadCnf(cnf) || !expected);
        const lbool got = s.okay() ? s.solve() : l_False;
        ASSERT_FALSE(got.isUndef());
        ASSERT_EQ(got.isTrue(), expected)
            << "round " << round << "\n"
            << toDimacsString(cnf);
        if (got.isTrue())
            EXPECT_TRUE(cnf.eval(s.boolModel()));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SolverAgreesWithBruteForce,
    ::testing::Values(
        // Under-constrained, critically constrained and
        // over-constrained 3-SAT.
        SweepParam{10, 20, 3, Branching::VSIDS, true, true},
        SweepParam{12, 51, 3, Branching::VSIDS, true, true},
        SweepParam{12, 90, 3, Branching::VSIDS, true, true},
        SweepParam{14, 60, 3, Branching::VSIDS, true, true},
        // 2-SAT and long-clause shapes.
        SweepParam{12, 30, 2, Branching::VSIDS, true, true},
        SweepParam{10, 24, 4, Branching::VSIDS, true, true},
        // Heuristic variants must stay sound.
        SweepParam{12, 51, 3, Branching::CHB, true, true},
        SweepParam{12, 51, 3, Branching::Random, true, true},
        SweepParam{12, 51, 3, Branching::VSIDS, false, true},
        SweepParam{12, 51, 3, Branching::VSIDS, true, false},
        SweepParam{12, 51, 3, Branching::CHB, false, false}),
    paramName);

class SolverSeedSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(SolverSeedSweep, DeterministicPerSeed)
{
    Rng rng(GetParam());
    Cnf cnf = testing::randomCnf(30, 128, 3, rng);

    SolverOptions opts;
    opts.seed = GetParam();
    Solver a(opts), b(opts);
    ASSERT_TRUE(a.loadCnf(cnf));
    ASSERT_TRUE(b.loadCnf(cnf));
    const lbool ra = a.solve();
    const lbool rb = b.solve();
    EXPECT_EQ(ra.isTrue(), rb.isTrue());
    EXPECT_EQ(a.stats().decisions, b.stats().decisions);
    EXPECT_EQ(a.stats().conflicts, b.stats().conflicts);
}

TEST_P(SolverSeedSweep, UnsatCoreInstancesStayUnsat)
{
    // XOR-like chain forcing contradiction: x1; x_i -> x_{i+1};
    // ~x_n. Any solver configuration must refute it.
    const int n = 8 + GetParam() % 5;
    Solver s;
    for (int i = 0; i < n; ++i)
        s.newVar();
    bool ok = s.addClause({mkLit(0)});
    for (int i = 0; i + 1 < n && ok; ++i)
        ok = s.addClause({mkLit(i, true), mkLit(i + 1)});
    if (ok)
        ok = s.addClause({mkLit(n - 1, true)});
    EXPECT_TRUE(!ok || s.solve().isFalse());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverSeedSweep,
                         ::testing::Range(1, 11));

} // namespace
} // namespace hyqsat::sat
