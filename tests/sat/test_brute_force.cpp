#include <gtest/gtest.h>

#include "sat/brute_force.h"

namespace hyqsat::sat {
namespace {

TEST(BruteForce, EmptyFormulaSatisfiable)
{
    Cnf cnf(0);
    const auto r = bruteForceSolve(cnf);
    EXPECT_TRUE(r.satisfiable);
}

TEST(BruteForce, SingleUnit)
{
    Cnf cnf(1);
    cnf.addClause(mkLit(0));
    const auto r = bruteForceSolve(cnf);
    ASSERT_TRUE(r.satisfiable);
    EXPECT_TRUE(r.model[0]);
}

TEST(BruteForce, ContradictionUnsatisfiable)
{
    Cnf cnf(1);
    cnf.addClause(mkLit(0));
    cnf.addClause(mkLit(0, true));
    EXPECT_FALSE(bruteForceSolve(cnf).satisfiable);
}

TEST(BruteForce, ModelSatisfiesFormula)
{
    Cnf cnf(3);
    cnf.addClause(mkLit(0), mkLit(1, true));
    cnf.addClause(mkLit(1), mkLit(2, true));
    cnf.addClause(mkLit(2));
    const auto r = bruteForceSolve(cnf);
    ASSERT_TRUE(r.satisfiable);
    EXPECT_TRUE(cnf.eval(r.model));
}

TEST(BruteForce, CountsAllModels)
{
    // x0 v x1 has exactly 3 models over 2 variables.
    Cnf cnf(2);
    cnf.addClause(mkLit(0), mkLit(1));
    const auto r = bruteForceSolve(cnf, /*count_all=*/true);
    EXPECT_EQ(r.num_models, 3u);
}

TEST(BruteForce, FreeVariablesMultiplyModelCount)
{
    // Unit x0 with one free variable: 2 models.
    Cnf cnf(2);
    cnf.addClause(mkLit(0));
    const auto r = bruteForceSolve(cnf, true);
    EXPECT_EQ(r.num_models, 2u);
}

TEST(BruteForce, MinViolatedZeroIffSatisfiable)
{
    Cnf sat(2);
    sat.addClause(mkLit(0), mkLit(1));
    EXPECT_EQ(bruteForceMinViolated(sat), 0);

    Cnf unsat(1);
    unsat.addClause(mkLit(0));
    unsat.addClause(mkLit(0, true));
    EXPECT_EQ(bruteForceMinViolated(unsat), 1);
}

TEST(BruteForce, MinViolatedCountsBestAssignment)
{
    // Three pairwise-contradicting units on one variable: best
    // assignment violates exactly 1 (x0) or 2 (~x0 twice).
    Cnf cnf(1);
    cnf.addClause(mkLit(0));
    cnf.addClause(mkLit(0, true));
    cnf.addClause(mkLit(0, true));
    EXPECT_EQ(bruteForceMinViolated(cnf), 1);
}

} // namespace
} // namespace hyqsat::sat
