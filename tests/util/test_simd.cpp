#include <gtest/gtest.h>

#include <cstdlib>

#include "util/simd.h"

namespace hyqsat::simd {
namespace {

TEST(Simd, NamesRoundTrip)
{
    for (Isa isa : {Isa::Scalar, Isa::Avx2, Isa::Neon, Isa::Avx512}) {
        const auto parsed = parseIsa(isaName(isa));
        ASSERT_TRUE(parsed.has_value()) << isaName(isa);
        EXPECT_EQ(*parsed, isa);
    }
}

TEST(Simd, ParseRejectsUnknownNames)
{
    EXPECT_FALSE(parseIsa("").has_value());
    EXPECT_FALSE(parseIsa("AVX2").has_value());
    EXPECT_FALSE(parseIsa("sse2").has_value());
    EXPECT_FALSE(parseIsa("avx512f").has_value());
}

TEST(Simd, DetectIsSelfConsistent)
{
    // Whatever the host supports, detection is stable and resolves
    // to itself.
    const Isa detected = detectIsa();
    EXPECT_EQ(detectIsa(), detected);
    EXPECT_EQ(resolveIsa(detected, detected), detected);
}

TEST(Simd, ResolveClampsUnsupportedRequestsToScalar)
{
    // Requesting the other architecture's ISA must degrade to the
    // scalar fallback, never crash or pass through.
    EXPECT_EQ(resolveIsa(Isa::Avx2, Isa::Scalar), Isa::Scalar);
    EXPECT_EQ(resolveIsa(Isa::Avx2, Isa::Neon), Isa::Scalar);
    EXPECT_EQ(resolveIsa(Isa::Neon, Isa::Scalar), Isa::Scalar);
    EXPECT_EQ(resolveIsa(Isa::Neon, Isa::Avx2), Isa::Scalar);
    EXPECT_EQ(resolveIsa(Isa::Avx512, Isa::Avx2), Isa::Scalar);
    EXPECT_EQ(resolveIsa(Isa::Avx512, Isa::Neon), Isa::Scalar);
    // Scalar is always honored — that is how goldens pin the
    // fallback on wide hosts.
    EXPECT_EQ(resolveIsa(Isa::Scalar, Isa::Avx2), Isa::Scalar);
    EXPECT_EQ(resolveIsa(Isa::Scalar, Isa::Neon), Isa::Scalar);
    EXPECT_EQ(resolveIsa(Isa::Scalar, Isa::Avx512), Isa::Scalar);
}

TEST(Simd, ResolveHonorsNarrowerX86TierOnAvx512Host)
{
    // avx2 is a strict subset of an avx512 host's capabilities, so
    // an explicit HYQSAT_SIMD=avx2 must pin the AVX2 kernel there —
    // that is how CI exercises the mid tier on wide runners.
    EXPECT_EQ(resolveIsa(Isa::Avx2, Isa::Avx512), Isa::Avx2);
    EXPECT_EQ(resolveIsa(Isa::Avx512, Isa::Avx512), Isa::Avx512);
}

TEST(Simd, EnvOverrideForcesScalar)
{
    ASSERT_EQ(setenv("HYQSAT_SIMD", "scalar", 1), 0);
    EXPECT_EQ(activeIsa(), Isa::Scalar);
    ASSERT_EQ(unsetenv("HYQSAT_SIMD"), 0);
    EXPECT_EQ(activeIsa(), detectIsa());
}

TEST(Simd, EnvOverrideIgnoresGarbage)
{
    ASSERT_EQ(setenv("HYQSAT_SIMD", "turbo9000", 1), 0);
    EXPECT_EQ(activeIsa(), detectIsa());
    ASSERT_EQ(unsetenv("HYQSAT_SIMD"), 0);
}

TEST(Simd, EnvOverrideClampsToHost)
{
    // Asking for an ISA the host lacks degrades to scalar instead of
    // crashing later in the kernel dispatch.
    const Isa detected = detectIsa();
    const char *foreign = detected == Isa::Neon ? "avx2" : "neon";
    ASSERT_EQ(setenv("HYQSAT_SIMD", foreign, 1), 0);
    EXPECT_EQ(activeIsa(), Isa::Scalar);
    ASSERT_EQ(unsetenv("HYQSAT_SIMD"), 0);
}

} // namespace
} // namespace hyqsat::simd
