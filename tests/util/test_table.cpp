#include <gtest/gtest.h>

#include "util/table.h"

namespace hyqsat {
namespace {

TEST(Table, RendersHeaderAndRows)
{
    Table t("caption");
    t.setHeader({"a", "bb"});
    t.addRow({"1", "2"});
    const auto s = t.str();
    EXPECT_NE(s.find("caption"), std::string::npos);
    EXPECT_NE(s.find("a"), std::string::npos);
    EXPECT_NE(s.find("bb"), std::string::npos);
    EXPECT_NE(s.find("1"), std::string::npos);
}

TEST(Table, ColumnsAlign)
{
    Table t;
    t.setHeader({"name", "v"});
    t.addRow({"x", "10"});
    t.addRow({"longer", "3"});
    const auto s = t.str();
    // Both data rows must place the second column at the same offset.
    const auto line1 = s.substr(s.find("x"));
    const auto pos_v1 = line1.find("10");
    const auto line2 = s.substr(s.find("longer"));
    const auto pos_v2 = line2.find("3");
    EXPECT_EQ(pos_v1, pos_v2);
}

TEST(Table, ShortRowsPadded)
{
    Table t;
    t.setHeader({"a", "b", "c"});
    t.addRow({"only"});
    EXPECT_NO_THROW(t.str());
}

TEST(Table, SeparatorRendersRule)
{
    Table t;
    t.setHeader({"a"});
    t.addRow({"1"});
    t.addSeparator();
    t.addRow({"2"});
    const auto s = t.str();
    // Two rules: one under the header, one explicit.
    std::size_t rules = 0, pos = 0;
    while ((pos = s.find("---", pos)) != std::string::npos) {
        ++rules;
        pos = s.find('\n', pos);
    }
    EXPECT_EQ(rules, 2u);
}

TEST(Table, NumFormatsFixedPoint)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Table, SciFormatsExponent)
{
    const auto s = Table::sci(1234.5, 1);
    EXPECT_NE(s.find("e+03"), std::string::npos);
}

TEST(Table, EmptyTableRendersWithoutCrashing)
{
    Table t;
    EXPECT_EQ(t.str(), "");
}

} // namespace
} // namespace hyqsat
