#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/rng.h"

namespace hyqsat {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 4);
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng a(7);
    const auto first = a.next();
    a.next();
    a.reseed(7);
    EXPECT_EQ(a.next(), first);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(3);
    for (int i = 0; i < 10'000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowOneAlwaysZero)
{
    Rng rng(5);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversAllResidues)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusiveBounds)
{
    Rng rng(13);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10'000; ++i) {
        const auto v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= (v == -3);
        saw_hi |= (v == 3);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInHalfOpenUnitInterval)
{
    Rng rng(17);
    double sum = 0;
    for (int i = 0; i < 10'000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(19);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, NormalMomentsApproximatelyStandard)
{
    Rng rng(23);
    const int n = 50'000;
    double sum = 0, sq = 0;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, GaussianShiftsAndScales)
{
    Rng rng(29);
    const int n = 50'000;
    double sum = 0;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, ShuffleIsAPermutation)
{
    Rng rng(31);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes)
{
    Rng rng(37);
    std::vector<int> v(50);
    for (int i = 0; i < 50; ++i)
        v[i] = i;
    const auto before = v;
    rng.shuffle(v);
    EXPECT_NE(v, before); // astronomically unlikely to be identity
}

TEST(Rng, PickReturnsContainedElement)
{
    Rng rng(41);
    std::vector<int> v{10, 20, 30};
    for (int i = 0; i < 100; ++i) {
        const int x = rng.pick(v);
        EXPECT_TRUE(x == 10 || x == 20 || x == 30);
    }
}

} // namespace
} // namespace hyqsat
