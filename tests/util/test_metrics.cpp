/**
 * @file
 * Unit tests for the metrics registry: counter/gauge/timer/histogram
 * semantics, null-safe helpers, JSON serialization (NaN/Inf safety),
 * merge, snapshot and the JSONL trace sink.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <thread>

#include "util/metrics.h"

using namespace hyqsat;

namespace {

TEST(JsonNumber, FiniteValuesRoundTrip)
{
    EXPECT_EQ(jsonNumber(0.0), "0");
    EXPECT_EQ(jsonNumber(1.5), "1.5");
    EXPECT_EQ(jsonNumber(-2.0), "-2");
    EXPECT_EQ(std::stod(jsonNumber(0.123456789)), 0.123456789);
}

TEST(JsonNumber, NonFiniteBecomesZero)
{
    EXPECT_EQ(jsonNumber(std::nan("")), "0");
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::infinity()), "0");
    EXPECT_EQ(jsonNumber(-std::numeric_limits<double>::infinity()), "0");
}

TEST(JsonEscape, EscapesControlCharacters)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(CounterTest, AddsAndReads)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
}

TEST(CounterTest, ConcurrentAddsAreLossless)
{
    Counter c;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&c] {
            for (int i = 0; i < 10000; ++i)
                c.add();
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(c.value(), 40000u);
}

TEST(GaugeTest, KeepsLastValue)
{
    Gauge g;
    EXPECT_EQ(g.value(), 0.0);
    g.set(3.5);
    g.set(-1.25);
    EXPECT_EQ(g.value(), -1.25);
}

TEST(MetricTimerTest, AccumulatesSecondsAndSections)
{
    MetricTimer t;
    t.add(0.5);
    t.add(0.25, 3);
    EXPECT_DOUBLE_EQ(t.seconds(), 0.75);
    EXPECT_EQ(t.count(), 4u);
}

TEST(MetricTimerTest, ScopeRecordsAndNullScopeIsNoop)
{
    MetricTimer t;
    {
        MetricTimer::Scope scope(&t);
    }
    EXPECT_EQ(t.count(), 1u);
    EXPECT_GE(t.seconds(), 0.0);
    {
        MetricTimer::Scope scope(nullptr); // must not crash
    }
}

TEST(LatencyHistogramTest, BucketsByUpperBound)
{
    LatencyHistogram h({1.0, 2.0, 4.0});
    ASSERT_EQ(h.buckets(), 4u); // 3 bounds + overflow
    h.record(0.5);  // <= 1.0  -> bucket 0
    h.record(1.0);  // <= 1.0  -> bucket 0
    h.record(1.5);  // <= 2.0  -> bucket 1
    h.record(4.0);  // <= 4.0  -> bucket 2
    h.record(99.0); // overflow -> bucket 3
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 4.0 + 99.0);
}

TEST(NullSafeHelpers, NullHandlesAreNoops)
{
    metricInc(nullptr);
    metricInc(nullptr, 7);
    metricSet(nullptr, 1.0);
    metricTime(nullptr, 1.0);
    metricObserve(nullptr, 1.0);
    Counter c;
    metricInc(&c, 2);
    EXPECT_EQ(c.value(), 2u);
}

TEST(MetricsRegistryTest, FindOrCreateReturnsStableHandles)
{
    MetricsRegistry r;
    Counter *a = r.counter("x");
    Counter *b = r.counter("x");
    EXPECT_EQ(a, b);
    EXPECT_NE(r.counter("y"), a);
    EXPECT_EQ(r.timer("t"), r.timer("t"));
    EXPECT_EQ(r.gauge("g"), r.gauge("g"));
    LatencyHistogram *h = r.histogram("h", {1.0, 2.0});
    // Existing histogram keeps its buckets regardless of new bounds.
    EXPECT_EQ(r.histogram("h", {5.0}), h);
    EXPECT_EQ(h->buckets(), 3u);
}

TEST(MetricsRegistryTest, WriteJsonIsValidAndNanFree)
{
    MetricsRegistry r;
    r.counter("c.one")->add(3);
    r.gauge("g.rate")->set(std::nan("")); // must not leak "nan"
    r.timer("t.span")->add(0.5, 2);
    r.histogram("h.occ", {1.0})->record(0.5);

    std::ostringstream out;
    r.writeJson(out);
    const std::string json = out.str();

    EXPECT_NE(json.find("\"schema\": \"hyqsat.metrics/1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"c.one\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"t.span\""), std::string::npos);
    EXPECT_NE(json.find("\"h.occ\""), std::string::npos);
    EXPECT_EQ(json.find("nan"), std::string::npos);
    EXPECT_EQ(json.find("inf"), std::string::npos);

    // Structurally balanced braces/brackets (cheap validity check).
    int depth = 0;
    for (const char c : json) {
        if (c == '{' || c == '[')
            ++depth;
        if (c == '}' || c == ']')
            --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST(MetricsRegistryTest, WriteTextPrometheusStyle)
{
    MetricsRegistry r;
    r.counter("service.completed")->add(7);
    r.gauge("service.queue_depth")->set(2.5);
    r.timer("solver.search")->add(0.5, 2);
    r.histogram("service.solve_latency", {0.1, 1.0})->record(0.05);
    r.histogram("service.solve_latency", {0.1, 1.0})->record(0.5);
    r.gauge("weird-name!")->set(std::nan("")); // sanitized, nan-free

    std::ostringstream out;
    r.writeText(out);
    const std::string text = out.str();

    // Dotted names flatten to the hyqsat_ prometheus namespace.
    EXPECT_NE(text.find("hyqsat_service_completed 7\n"),
              std::string::npos);
    EXPECT_NE(text.find("hyqsat_service_queue_depth 2.5\n"),
              std::string::npos);
    EXPECT_NE(text.find("hyqsat_solver_search_seconds 0.5\n"),
              std::string::npos);
    EXPECT_NE(text.find("hyqsat_solver_search_count 2\n"),
              std::string::npos);
    // Histogram buckets are cumulative, closed by +Inf/sum/count.
    EXPECT_NE(
        text.find("hyqsat_service_solve_latency_bucket{le=\"0.1\"} 1"),
        std::string::npos);
    EXPECT_NE(
        text.find("hyqsat_service_solve_latency_bucket{le=\"1\"} 2"),
        std::string::npos);
    EXPECT_NE(text.find(
                  "hyqsat_service_solve_latency_bucket{le=\"+Inf\"} 2"),
              std::string::npos);
    EXPECT_NE(text.find("hyqsat_service_solve_latency_count 2\n"),
              std::string::npos);
    // Sanitization: no '-' or '!' survives; non-finite becomes 0.
    EXPECT_NE(text.find("hyqsat_weird_name_ 0\n"), std::string::npos);
    EXPECT_EQ(text.find("nan"), std::string::npos);
    EXPECT_EQ(text.find('-'), std::string::npos);
}

TEST(MetricsRegistryTest, MergeAccumulates)
{
    MetricsRegistry a, b;
    a.counter("c")->add(1);
    b.counter("c")->add(2);
    b.counter("only_b")->add(5);
    a.timer("t")->add(1.0, 1);
    b.timer("t")->add(0.5, 2);
    a.gauge("g")->set(1.0);
    b.gauge("g")->set(9.0);
    a.histogram("h", {1.0})->record(0.5);
    b.histogram("h", {1.0})->record(2.0);

    a.merge(b);
    EXPECT_EQ(a.counter("c")->value(), 3u);
    EXPECT_EQ(a.counter("only_b")->value(), 5u);
    EXPECT_DOUBLE_EQ(a.timer("t")->seconds(), 1.5);
    EXPECT_EQ(a.timer("t")->count(), 3u);
    EXPECT_EQ(a.gauge("g")->value(), 9.0); // gauges take last value
    LatencyHistogram *h = a.histogram("h", {1.0});
    EXPECT_EQ(h->total(), 2u);
    EXPECT_EQ(h->bucketCount(0), 1u);
    EXPECT_EQ(h->bucketCount(1), 1u);
}

TEST(MetricsRegistryTest, SnapshotFlattensAllKinds)
{
    MetricsRegistry r;
    r.counter("a.count")->add(2);
    r.gauge("b.gauge")->set(1.5);
    r.timer("c.timer")->add(0.5);
    r.histogram("d.hist", {1.0})->record(0.25);

    const auto snap = r.snapshot();
    const auto find = [&](const std::string &name) -> const double * {
        for (const auto &[k, v] : snap)
            if (k == name)
                return &v;
        return nullptr;
    };
    ASSERT_NE(find("a.count"), nullptr);
    EXPECT_EQ(*find("a.count"), 2.0);
    ASSERT_NE(find("b.gauge"), nullptr);
    EXPECT_EQ(*find("b.gauge"), 1.5);
    ASSERT_NE(find("c.timer_s"), nullptr);
    EXPECT_EQ(*find("c.timer_s"), 0.5);
    ASSERT_NE(find("d.hist_total"), nullptr);
    EXPECT_EQ(*find("d.hist_total"), 1.0);
}

TEST(TraceSinkTest, EmitsOneJsonLinePerEvent)
{
    std::ostringstream out;
    TraceSink sink(out);
    ASSERT_TRUE(sink.ok());
    sink.event("alpha", {{"x", 1.5}}, {{"who", "me"}});
    sink.event("beta");

    const std::string text = out.str();
    // Two newline-terminated lines.
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
    EXPECT_NE(text.find("\"event\": \"alpha\""), std::string::npos);
    EXPECT_NE(text.find("\"x\": 1.5"), std::string::npos);
    EXPECT_NE(text.find("\"who\": \"me\""), std::string::npos);
    EXPECT_NE(text.find("\"event\": \"beta\""), std::string::npos);
    EXPECT_NE(text.find("\"t_s\": "), std::string::npos);
}

TEST(TraceSinkTest, NonFinitePayloadStaysValidJson)
{
    std::ostringstream out;
    TraceSink sink(out);
    sink.event("bad", {{"v", std::nan("")}});
    const std::string text = out.str();
    EXPECT_EQ(text.find("nan"), std::string::npos);
    EXPECT_NE(text.find("\"v\": 0"), std::string::npos);
}

} // namespace
