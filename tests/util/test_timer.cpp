#include <gtest/gtest.h>

#include <thread>

#include "util/timer.h"

namespace hyqsat {
namespace {

TEST(Timer, MeasuresElapsedTime)
{
    Timer t;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_GE(t.millis(), 15.0);
    EXPECT_LT(t.seconds(), 5.0);
}

TEST(Timer, ResetRestartsFromZero)
{
    Timer t;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    t.reset();
    EXPECT_LT(t.millis(), 15.0);
}

TEST(Timer, UnitsAreConsistent)
{
    Timer t;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    const double s = t.seconds();
    EXPECT_NEAR(t.millis(), s * 1e3, 2.0);
    EXPECT_NEAR(t.micros(), s * 1e6, 2000.0);
}

TEST(TimeAccumulator, AddsAndCounts)
{
    TimeAccumulator acc;
    acc.add(0.5);
    acc.add(0.25);
    EXPECT_DOUBLE_EQ(acc.seconds(), 0.75);
    EXPECT_EQ(acc.count(), 2u);
}

TEST(TimeAccumulator, ScopeAccumulatesOnDestruction)
{
    TimeAccumulator acc;
    {
        TimeAccumulator::Scope scope(acc);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_GE(acc.seconds(), 0.005);
    EXPECT_EQ(acc.count(), 1u);
}

TEST(TimeAccumulator, ClearResets)
{
    TimeAccumulator acc;
    acc.add(1.0);
    acc.clear();
    EXPECT_DOUBLE_EQ(acc.seconds(), 0.0);
    EXPECT_EQ(acc.count(), 0u);
}

} // namespace
} // namespace hyqsat
