#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.h"

namespace hyqsat {
namespace {

TEST(OnlineStats, EmptyDefaults)
{
    OnlineStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.geomean(), 0.0);
}

TEST(OnlineStats, SingleValue)
{
    OnlineStats s;
    s.add(4.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 4.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(OnlineStats, MeanAndVariance)
{
    OnlineStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
}

TEST(OnlineStats, GeomeanMatchesClosedForm)
{
    OnlineStats s;
    s.add(1.0);
    s.add(4.0);
    s.add(16.0);
    EXPECT_NEAR(s.geomean(), 4.0, 1e-12);
}

TEST(OnlineStats, GeomeanZeroWhenAnyValueZero)
{
    OnlineStats s;
    s.add(3.0);
    s.add(0.0);
    EXPECT_EQ(s.geomean(), 0.0);
}

TEST(OnlineStats, MinMaxAndSum)
{
    OnlineStats s;
    for (double x : {3.0, -1.0, 7.5})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.min(), -1.0);
    EXPECT_DOUBLE_EQ(s.max(), 7.5);
    EXPECT_DOUBLE_EQ(s.sum(), 9.5);
}

TEST(Histogram, BinsAndCenters)
{
    Histogram h(0.0, 10.0, 5);
    EXPECT_EQ(h.bins(), 5u);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 1.0);
    EXPECT_DOUBLE_EQ(h.binCenter(4), 9.0);
}

TEST(Histogram, AddPlacesInCorrectBin)
{
    Histogram h(0.0, 10.0, 5);
    h.add(0.5);
    h.add(9.5);
    h.add(4.2);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(2), 1u);
    EXPECT_EQ(h.binCount(4), 1u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, OutOfRangeClampsToEdgeBins)
{
    Histogram h(0.0, 10.0, 5);
    h.add(-100.0);
    h.add(1e9);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(4), 1u);
}

TEST(Histogram, FractionsSumToOne)
{
    Histogram h(-1.0, 1.0, 4);
    for (double x : {-0.9, -0.2, 0.3, 0.9, 0.95})
        h.add(x);
    double sum = 0;
    for (std::size_t i = 0; i < h.bins(); ++i)
        sum += h.binFraction(i);
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(FreeFunctions, GeomeanMeanVarianceMedian)
{
    const std::vector<double> v{1.0, 2.0, 4.0, 8.0};
    EXPECT_NEAR(geomean(v), std::pow(1.0 * 2.0 * 4.0 * 8.0, 0.25), 1e-9);
    EXPECT_DOUBLE_EQ(mean(v), 3.75);
    EXPECT_DOUBLE_EQ(median(v), 3.0);
    EXPECT_DOUBLE_EQ(median({5.0, 1.0, 9.0}), 5.0);
    EXPECT_DOUBLE_EQ(median({}), 0.0);
    EXPECT_NEAR(variance({2.0, 4.0}), 1.0, 1e-12);
}

} // namespace
} // namespace hyqsat
