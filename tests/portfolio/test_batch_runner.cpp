#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "portfolio/batch_runner.h"
#include "util/metrics.h"

namespace hyqsat::portfolio {
namespace {

namespace fs = std::filesystem;

/** Temp directory wiped on destruction. */
struct TempDir
{
    fs::path path;

    TempDir()
    {
        path = fs::temp_directory_path() /
               ("hyqsat_batch_test_" +
                std::to_string(::getpid() +
                               reinterpret_cast<std::uintptr_t>(this)));
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }

    std::string
    write(const std::string &name, const std::string &content) const
    {
        const auto p = path / name;
        std::ofstream out(p);
        out << content;
        return p.string();
    }
};

const char *kSatCnf = "c tiny satisfiable\n"
                      "p cnf 3 2\n"
                      "1 2 3 0\n"
                      "-1 2 0\n";

/** All 8 sign patterns over 3 variables: unsatisfiable. */
std::string
unsatCnf()
{
    std::string s = "p cnf 3 8\n";
    for (int mask = 0; mask < 8; ++mask) {
        for (int v = 0; v < 3; ++v)
            s += std::to_string((mask >> v) & 1 ? -(v + 1) : v + 1) +
                 " ";
        s += "0\n";
    }
    return s;
}

BatchOptions
smallOptions()
{
    BatchOptions opts;
    opts.portfolio.base.annealer.noise = anneal::NoiseModel::noiseFree();
    opts.portfolio.base.annealer.greedy_finish = true;
    opts.portfolio.num_workers = 2;
    opts.concurrency = 2;
    return opts;
}

TEST(WorkQueue, FifoOrderAndEmptyPop)
{
    WorkQueue q;
    EXPECT_EQ(q.size(), 0u);
    std::string out;
    EXPECT_FALSE(q.pop(out));

    q.push("a");
    q.push("b");
    q.push("c");
    EXPECT_EQ(q.size(), 3u);
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out, "a");
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out, "b");
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out, "c");
    EXPECT_FALSE(q.pop(out));
}

TEST(BatchRunner, MixedBatchRecordsInInputOrder)
{
    TempDir dir;
    const auto sat_path = dir.write("easy_sat.cnf", kSatCnf);
    const auto unsat_path = dir.write("tiny_unsat.cnf", unsatCnf());
    const auto broken_path =
        dir.write("broken.cnf", "p cnf not-a-number\n1 2 0\n");

    BatchRunner runner(smallOptions());
    const auto report =
        runner.run({sat_path, unsat_path, broken_path});

    ASSERT_EQ(report.records.size(), 3u);
    EXPECT_EQ(report.records[0].name, "easy_sat");
    EXPECT_EQ(report.records[0].status, "SAT");
    EXPECT_FALSE(report.records[0].winner.empty());
    EXPECT_EQ(report.records[0].vars, 3);
    EXPECT_EQ(report.records[0].clauses, 2);

    EXPECT_EQ(report.records[1].name, "tiny_unsat");
    EXPECT_EQ(report.records[1].status, "UNSAT");

    EXPECT_EQ(report.records[2].name, "broken");
    EXPECT_EQ(report.records[2].status, "PARSE_ERROR");

    EXPECT_EQ(report.sat, 1);
    EXPECT_EQ(report.unsat, 1);
    EXPECT_EQ(report.errors, 1);
    EXPECT_EQ(report.unknown, 0);
    EXPECT_FALSE(report.allDecided()) << "a parse error is not decided";
}

TEST(BatchRunner, AllDecidedOnCleanBatch)
{
    TempDir dir;
    std::vector<std::string> paths;
    for (int i = 0; i < 4; ++i)
        paths.push_back(
            dir.write("inst" + std::to_string(i) + ".cnf", kSatCnf));
    BatchRunner runner(smallOptions());
    const auto report = runner.run(paths);
    EXPECT_TRUE(report.allDecided());
    EXPECT_EQ(report.sat, 4);
}

TEST(BatchRunner, ExternalStopLeavesRestUnknown)
{
    StopToken stop;
    stop.requestStop(); // cancelled before any instance is picked up

    TempDir dir;
    const auto p = dir.write("inst.cnf", kSatCnf);
    auto opts = smallOptions();
    opts.external_stop = &stop;
    BatchRunner runner(opts);
    const auto report = runner.run({p, p, p});
    ASSERT_EQ(report.records.size(), 3u);
    for (const auto &rec : report.records)
        EXPECT_EQ(rec.status, "UNKNOWN");
    EXPECT_FALSE(report.allDecided());
}

TEST(BatchRunner, MemoryBudgetSkipsOversizedInstances)
{
    // ~40k clauses over 10k vars: the footprint estimate exceeds a
    // 1 MB budget, so the instance must be admitted-out, not solved.
    std::string big = "p cnf 10000 40000\n";
    for (int i = 0; i < 40000; ++i) {
        const int a = (i % 10000) + 1, b = ((i + 17) % 10000) + 1,
                  c = ((i + 4391) % 10000) + 1;
        big += std::to_string(a) + " " + std::to_string(-b) + " " +
               std::to_string(c) + " 0\n";
    }
    TempDir dir;
    const auto p = dir.write("big.cnf", big);

    auto opts = smallOptions();
    opts.memory_budget_mb = 1;
    BatchRunner runner(opts);
    const auto report = runner.run({p});
    ASSERT_EQ(report.records.size(), 1u);
    EXPECT_EQ(report.records[0].status, "SKIPPED");
    EXPECT_EQ(report.skipped, 1);
}

TEST(BatchRunner, EstimateMemoryScalesWithWorkers)
{
    sat::Cnf cnf(100);
    for (int i = 0; i < 97; ++i)
        cnf.addClause({sat::mkLit(i % 100), sat::mkLit((i + 3) % 100),
                       sat::mkLit((i + 7) % 100, true)});
    EXPECT_GE(BatchRunner::estimateMemoryMb(cnf, 8),
              BatchRunner::estimateMemoryMb(cnf, 1));
}

TEST(BatchRunner, CollectCnfFilesFiltersAndSorts)
{
    TempDir dir;
    dir.write("b.cnf", kSatCnf);
    dir.write("a.dimacs", kSatCnf);
    dir.write("notes.txt", "not a formula");
    const auto files = BatchRunner::collectCnfFiles(dir.path.string());
    ASSERT_EQ(files.size(), 2u);
    EXPECT_NE(files[0].find("a.dimacs"), std::string::npos);
    EXPECT_NE(files[1].find("b.cnf"), std::string::npos);
}

TEST(BatchRunner, ReadManifestSkipsCommentsAndBlanks)
{
    std::istringstream in("# header\n"
                          "  one.cnf  \n"
                          "\n"
                          "\ttwo.cnf\r\n"
                          "   # indented comment\n"
                          "three.cnf\n");
    const auto paths = BatchRunner::readManifest(in);
    ASSERT_EQ(paths.size(), 3u);
    EXPECT_EQ(paths[0], "one.cnf");
    EXPECT_EQ(paths[1], "two.cnf");
    EXPECT_EQ(paths[2], "three.cnf");
}

TEST(BatchRunner, JsonAndCsvReportsWellFormed)
{
    TempDir dir;
    const auto sat_path = dir.write("easy.cnf", kSatCnf);
    const auto broken_path = dir.write("bad.cnf", "garbage\n");
    BatchRunner runner(smallOptions());
    const auto report = runner.run({sat_path, broken_path});

    std::ostringstream json;
    BatchRunner::writeJson(report, json);
    const std::string j = json.str();
    EXPECT_NE(j.find("\"summary\""), std::string::npos);
    EXPECT_NE(j.find("\"status\": \"SAT\""), std::string::npos);
    EXPECT_NE(j.find("\"status\": \"PARSE_ERROR\""), std::string::npos);
    EXPECT_EQ(std::count(j.begin(), j.end(), '{'),
              std::count(j.begin(), j.end(), '}'));
    EXPECT_EQ(std::count(j.begin(), j.end(), '['),
              std::count(j.begin(), j.end(), ']'));

    std::ostringstream csv;
    BatchRunner::writeCsv(report, csv);
    const std::string c = csv.str();
    // Header + one row per instance.
    EXPECT_EQ(std::count(c.begin(), c.end(), '\n'), 3);
    EXPECT_NE(c.find("name,path,status"), std::string::npos);
    EXPECT_NE(c.find("easy,"), std::string::npos);
}

TEST(BatchRunner, JsonReportGuardsNonFiniteDoubles)
{
    // A record with poisoned timing fields (NaN / ±Inf) must still
    // serialize as parseable JSON: jsonNumber maps them to 0.
    BatchReport report;
    InstanceRecord rec;
    rec.name = "poisoned";
    rec.path = "/tmp/poisoned.cnf";
    rec.status = "SAT";
    rec.wall_s = std::numeric_limits<double>::quiet_NaN();
    rec.frontend_s = std::numeric_limits<double>::infinity();
    rec.cdcl_s = -std::numeric_limits<double>::infinity();
    rec.metrics.emplace_back(
        "bad.gauge", std::numeric_limits<double>::quiet_NaN());
    report.records.push_back(rec);
    report.wall_s = std::numeric_limits<double>::quiet_NaN();

    std::ostringstream json;
    BatchRunner::writeJson(report, json);
    const std::string j = json.str();
    EXPECT_EQ(j.find("nan"), std::string::npos);
    EXPECT_EQ(j.find("inf"), std::string::npos);
    EXPECT_NE(j.find("\"wall_s\": 0"), std::string::npos);
    EXPECT_EQ(std::count(j.begin(), j.end(), '{'),
              std::count(j.begin(), j.end(), '}'));
    EXPECT_EQ(std::count(j.begin(), j.end(), '['),
              std::count(j.begin(), j.end(), ']'));

    std::ostringstream csv;
    BatchRunner::writeCsv(report, csv);
    EXPECT_EQ(csv.str().find("nan"), std::string::npos);
    EXPECT_EQ(csv.str().find("inf"), std::string::npos);
}

TEST(BatchRunner, MetricsRegistryCollectsWholeBatchTotals)
{
    TempDir dir;
    const auto sat_path = dir.write("easy.cnf", kSatCnf);
    const auto unsat_path = dir.write("hard.cnf", unsatCnf());

    MetricsRegistry registry;
    auto opts = smallOptions();
    opts.metrics = &registry;
    BatchRunner runner(opts);
    const auto report = runner.run({sat_path, unsat_path});
    ASSERT_EQ(report.records.size(), 2u);

    // One portfolio race per instance, merged under the lock.
    EXPECT_EQ(registry.counter("portfolio.races")->value(), 2u);
    EXPECT_GT(registry.counter("solver.decisions")->value(), 0u);

    // Per-instance snapshots are embedded in the records and carry
    // the per-record totals the JSON report exposes.
    for (const auto &rec : report.records) {
        EXPECT_FALSE(rec.metrics.empty()) << rec.name;
        std::ostringstream json;
        BatchRunner::writeJson(report, json);
        EXPECT_NE(json.str().find("\"metrics\": {"),
                  std::string::npos);
    }
    // The UNSAT instance needed conflicts, so propagations landed in
    // its record from the instance registry.
    EXPECT_GT(report.records[1].propagations, 0u);
}

} // namespace
} // namespace hyqsat::portfolio
