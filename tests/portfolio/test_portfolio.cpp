#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "core/hybrid_solver.h"
#include "gen/random_sat.h"
#include "portfolio/portfolio.h"
#include "sat/brute_force.h"
#include "tests/sat/helpers.h"
#include "util/metrics.h"

namespace hyqsat::portfolio {
namespace {

core::HybridConfig
noiseFreeConfig(std::uint64_t seed = 0x12345)
{
    core::HybridConfig cfg;
    cfg.annealer.noise = anneal::NoiseModel::noiseFree();
    cfg.annealer.greedy_finish = true;
    cfg.annealer.attempts = 2;
    cfg.seed = seed;
    return cfg;
}

/** Exhaustively contradictory formula: all 8 sign patterns over 3
 *  variables. Unsatisfiable by construction, needs real conflicts. */
sat::Cnf
exhaustiveUnsat()
{
    sat::Cnf cnf(3);
    for (int mask = 0; mask < 8; ++mask) {
        cnf.addClause({sat::mkLit(0, mask & 1), sat::mkLit(1, mask & 2),
                       sat::mkLit(2, mask & 4)});
    }
    return cnf;
}

TEST(PortfolioSolver, OneWorkerReproducesSingleSolverBitForBit)
{
    // ISSUE 2 determinism satellite: a 1-worker portfolio with a
    // fixed seed must be indistinguishable from HybridSolver alone.
    Rng gen(21);
    for (int round = 0; round < 3; ++round) {
        const auto cnf = sat::testing::randomCnf(50, 212, 3, gen);
        const auto base = noiseFreeConfig(42 + round);

        core::HybridSolver single(base);
        const auto expect = single.solve(cnf);

        PortfolioOptions opts;
        opts.base = base;
        opts.num_workers = 1;
        PortfolioSolver portfolio(opts);
        const auto got = portfolio.solve(cnf);

        ASSERT_EQ(got.status, expect.status) << "round " << round;
        EXPECT_EQ(got.model, expect.model);
        EXPECT_EQ(got.winner, 0);
        const auto &w = got.winner_result;
        EXPECT_EQ(w.stats.decisions, expect.stats.decisions);
        EXPECT_EQ(w.stats.propagations, expect.stats.propagations);
        EXPECT_EQ(w.stats.conflicts, expect.stats.conflicts);
        EXPECT_EQ(w.stats.restarts, expect.stats.restarts);
        EXPECT_EQ(w.stats.iterations, expect.stats.iterations);
        EXPECT_EQ(w.qa_samples, expect.qa_samples);
        EXPECT_EQ(w.warmup_iterations, expect.warmup_iterations);
        EXPECT_EQ(w.strategy_count, expect.strategy_count);
    }
}

TEST(PortfolioSolver, OneWorkerIsRepeatable)
{
    Rng gen(22);
    const auto cnf = sat::testing::randomCnf(40, 170, 3, gen);
    PortfolioOptions opts;
    opts.base = noiseFreeConfig(7);
    opts.num_workers = 1;
    PortfolioSolver solver(opts);
    const auto a = solver.solve(cnf);
    const auto b = solver.solve(cnf);
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.model, b.model);
    EXPECT_EQ(a.winner_result.stats.iterations,
              b.winner_result.stats.iterations);
}

TEST(PortfolioSolver, FourWorkersAgreeWithBruteForce)
{
    Rng gen(23);
    for (int round = 0; round < 4; ++round) {
        const auto cnf = sat::testing::randomCnf(14, 58, 3, gen);
        const bool expected = sat::bruteForceSolve(cnf).satisfiable;

        PortfolioOptions opts;
        opts.base = noiseFreeConfig(round);
        opts.num_workers = 4;
        PortfolioSolver solver(opts);
        const auto result = solver.solve(cnf);

        ASSERT_FALSE(result.status.isUndef()) << "round " << round;
        EXPECT_EQ(result.status.isTrue(), expected) << "round " << round;
        EXPECT_GE(result.winner, 0);
        EXPECT_FALSE(result.winner_label.empty());
        if (result.status.isTrue()) {
            EXPECT_TRUE(cnf.eval(result.model));
        }
        ASSERT_EQ(result.workers.size(), 4u);
        for (const auto &w : result.workers) {
            // A loser may be undecided, but nobody may contradict the
            // winner.
            if (!w.status.isUndef()) {
                EXPECT_EQ(w.status.isTrue(), expected);
            }
        }
    }
}

TEST(PortfolioSolver, FourWorkersRefuteUnsat)
{
    PortfolioOptions opts;
    opts.base = noiseFreeConfig();
    opts.num_workers = 4;
    PortfolioSolver solver(opts);
    const auto result = solver.solve(exhaustiveUnsat());
    EXPECT_TRUE(result.status.isFalse());
    EXPECT_GE(result.winner, 0);
}

TEST(PortfolioSolver, SatModelVerifiedOnMediumInstance)
{
    Rng gen(24);
    const auto cnf = gen::plantedRandom3Sat(60, 240, gen);
    PortfolioOptions opts;
    opts.base = noiseFreeConfig(99);
    opts.num_workers = 3;
    PortfolioSolver solver(opts);
    const auto result = solver.solve(cnf);
    ASSERT_TRUE(result.status.isTrue());
    EXPECT_TRUE(cnf.eval(result.model));
    // Cancellation latency is recorded whenever somebody wins. The
    // strict < 50 ms acceptance bar is measured by
    // bench/portfolio_scaling on an unloaded machine; here (possibly
    // under sanitizers) only a lenient sanity bound is asserted.
    EXPECT_GE(result.cancel_latency_s, 0.0);
    EXPECT_LT(result.cancel_latency_s, 5.0);
}

TEST(PortfolioSolver, ConflictBudgetYieldsUndef)
{
    Rng gen(25);
    const auto cnf = gen::uniformRandom3Sat(16, 130, gen); // unsat
    ASSERT_FALSE(sat::bruteForceSolve(cnf).satisfiable);

    PortfolioOptions opts;
    opts.base = noiseFreeConfig();
    opts.base.warmup_override = 0; // plain CDCL: budget is the limit
    opts.num_workers = 2;
    opts.conflict_budget = 1;
    PortfolioSolver solver(opts);
    const auto result = solver.solve(cnf);
    EXPECT_TRUE(result.status.isUndef());
    EXPECT_EQ(result.winner, -1);
    EXPECT_FALSE(result.timed_out);
}

TEST(PortfolioSolver, ExternalStopCancelsRace)
{
    StopToken stop;
    stop.requestStop(); // tripped before the race starts

    Rng gen(26);
    const auto cnf = sat::testing::randomCnf(60, 255, 3, gen);
    PortfolioOptions opts;
    opts.base = noiseFreeConfig();
    opts.num_workers = 2;
    opts.external_stop = &stop;
    PortfolioSolver solver(opts);
    const auto result = solver.solve(cnf);
    EXPECT_TRUE(result.status.isUndef());
    EXPECT_TRUE(result.external_stopped);
    EXPECT_FALSE(result.timed_out);
}

TEST(PortfolioSolver, TimeoutEnforcedOnHardInstance)
{
    // Near-threshold instance large enough that deciding it inside
    // the budget is very unlikely; if a worker still manages to, the
    // answer must simply be sound (the timeout path is then untested
    // on this seed, which is acceptable).
    Rng gen(27);
    const auto cnf = gen::uniformRandom3Sat(450, 1917, gen);
    PortfolioOptions opts;
    opts.base = noiseFreeConfig();
    opts.base.warmup_override = 4;
    opts.num_workers = 2;
    opts.timeout_s = 0.05;
    PortfolioSolver solver(opts);
    const auto result = solver.solve(cnf);
    if (result.status.isUndef()) {
        EXPECT_TRUE(result.timed_out);
        EXPECT_EQ(result.winner, -1);
    } else if (result.status.isTrue()) {
        EXPECT_TRUE(cnf.eval(result.model));
    }
    // Cooperative cancellation must keep the overrun bounded even on
    // slow sanitizer builds.
    EXPECT_LT(result.wall_s, 30.0);
}

TEST(PortfolioSolver, SharingStaysSound)
{
    // Clause sharing on, several rounds: answers must still match
    // brute force (imports are root-level and soundness-preserving).
    Rng gen(28);
    for (int round = 0; round < 3; ++round) {
        const auto cnf = sat::testing::randomCnf(40, 170, 3, gen);
        // Brute force is hopeless at 40 vars; classic CDCL is the
        // independent reference.
        const bool expected =
            core::solveClassicCdcl(cnf,
                                   sat::SolverOptions::minisatStyle())
                .status.isTrue();
        PortfolioOptions opts;
        opts.base = noiseFreeConfig(round);
        opts.num_workers = 3;
        opts.share_clauses = true;
        opts.share_polarity = true;
        PortfolioSolver solver(opts);
        const auto result = solver.solve(cnf);
        ASSERT_FALSE(result.status.isUndef());
        EXPECT_EQ(result.status.isTrue(), expected) << "round " << round;
        const auto &ex = result.exchange;
        EXPECT_LE(ex.fetched, ex.published * 2);
    }
}

TEST(PortfolioSolver, DiversifyTableShape)
{
    const auto base = noiseFreeConfig(0xabcdef);
    const auto slate = PortfolioSolver::diversify(base, 10);
    ASSERT_EQ(slate.size(), 10u);

    // Slot 0 is the base config untouched (the determinism anchor).
    EXPECT_EQ(slate[0].hybrid.seed, base.seed);
    EXPECT_EQ(slate[0].hybrid.sampler, base.sampler);
    EXPECT_EQ(slate[0].hybrid.pipeline_depth, base.pipeline_depth);

    // Labels are unique and later slots carry decorrelated seeds.
    std::set<std::string> labels;
    for (const auto &w : slate)
        labels.insert(w.label);
    EXPECT_EQ(labels.size(), slate.size());
    for (std::size_t i = 1; i < slate.size(); ++i)
        EXPECT_NE(slate[i].hybrid.seed, base.seed) << "slot " << i;

    // The slate crosses sampler backends, not just seeds.
    std::set<std::string> samplers;
    for (const auto &w : slate)
        samplers.insert(w.hybrid.sampler);
    EXPECT_GE(samplers.size(), 3u);

    // Slot 9 is the dedicated parallel-lockstep-reads worker: batch
    // kernel on, at least 16 chains per device sample.
    EXPECT_EQ(slate[9].label, "reads-batch");
    EXPECT_TRUE(slate[9].hybrid.reads_batch);
    EXPECT_GE(slate[9].hybrid.num_reads, 16);

    // Past the table the labels cycle with a #N suffix and fresh
    // seeds.
    const auto wide = PortfolioSolver::diversify(base, 12);
    ASSERT_EQ(wide.size(), 12u);
    EXPECT_EQ(wide[10].label, "base#1");
    EXPECT_EQ(wide[11].label, "cdcl#1");
    EXPECT_NE(wide[10].hybrid.seed, wide[0].hybrid.seed);
}

TEST(PortfolioSolver, ExplicitWorkerSlateRespected)
{
    Rng gen(29);
    const auto cnf = sat::testing::randomCnf(20, 85, 3, gen);
    PortfolioOptions opts;
    opts.base = noiseFreeConfig();
    opts.num_workers = 4; // ignored: explicit slate wins
    WorkerConfig only;
    only.label = "just-cdcl";
    only.hybrid = noiseFreeConfig(5);
    only.hybrid.warmup_override = 0;
    opts.workers = {only};
    PortfolioSolver solver(opts);
    const auto result = solver.solve(cnf);
    ASSERT_EQ(result.workers.size(), 1u);
    EXPECT_EQ(result.workers[0].label, "just-cdcl");
    EXPECT_FALSE(result.status.isUndef());
}

TEST(PortfolioSolver, MetricsRegistryRecordsRaceOutcome)
{
    Rng gen(31);
    const auto cnf = sat::testing::randomCnf(30, 124, 3, gen);

    MetricsRegistry registry;
    PortfolioOptions opts;
    opts.base = noiseFreeConfig();
    opts.num_workers = 2;
    opts.metrics = &registry;
    PortfolioSolver solver(opts);
    const auto result = solver.solve(cnf);
    ASSERT_FALSE(result.status.isUndef());

    // Portfolio-level counters land after the join.
    EXPECT_EQ(registry.counter("portfolio.races")->value(), 1u);
    EXPECT_EQ(registry.counter("portfolio.decided")->value(), 1u);
    EXPECT_EQ(registry
                  .counter("portfolio.wins." + result.winner_label)
                  ->value(),
              1u);
    EXPECT_EQ(registry.timer("portfolio.wall")->count(), 1u);

    // Per-worker registries merged: solver counters from every
    // raced worker accumulate here.
    EXPECT_GT(registry.counter("solver.decisions")->value(), 0u);
    EXPECT_GE(registry.counter("solver.decisions")->value(),
              result.winner_result.stats.decisions);
}

TEST(PortfolioSolver, MetricsTraceStreamsWorkerEvents)
{
    Rng gen(33);
    const auto cnf = sat::testing::randomCnf(20, 85, 3, gen);

    std::ostringstream trace_out;
    TraceSink sink(trace_out);
    MetricsRegistry registry;
    registry.setTrace(&sink);

    PortfolioOptions opts;
    opts.base = noiseFreeConfig();
    opts.num_workers = 2;
    opts.metrics = &registry;
    PortfolioSolver solver(opts);
    const auto result = solver.solve(cnf);
    ASSERT_FALSE(result.status.isUndef());

    const std::string text = trace_out.str();
    EXPECT_NE(text.find("\"event\": \"portfolio.worker_done\""),
              std::string::npos);
    EXPECT_NE(text.find("\"event\": \"portfolio.race_done\""),
              std::string::npos);
}

} // namespace
} // namespace hyqsat::portfolio
