#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "portfolio/exchange.h"

namespace hyqsat::portfolio {
namespace {

sat::LitVec
binary(int a, bool sa, int b, bool sb)
{
    return {sat::mkLit(a, sa), sat::mkLit(b, sb)};
}

TEST(ClauseExchange, RoundTripExcludesOwnClauses)
{
    ClauseExchange ex(2, {});
    ex.publish(0, binary(0, false, 1, true));

    std::vector<sat::LitVec> got;
    ex.fetch(0, got);
    EXPECT_TRUE(got.empty()) << "a worker must not re-import its own";

    ex.fetch(1, got);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], binary(0, false, 1, true));

    const auto s = ex.stats();
    EXPECT_EQ(s.published, 1u);
    EXPECT_EQ(s.fetched, 1u);
}

TEST(ClauseExchange, FetchIsExactlyOnce)
{
    ClauseExchange ex(2, {});
    ex.publish(0, binary(0, false, 1, false));

    std::vector<sat::LitVec> got;
    ex.fetch(1, got);
    ASSERT_EQ(got.size(), 1u);
    got.clear();
    ex.fetch(1, got);
    EXPECT_TRUE(got.empty()) << "second fetch must see nothing new";

    ex.publish(0, binary(2, false, 3, false));
    ex.fetch(1, got);
    ASSERT_EQ(got.size(), 1u) << "only the newly published clause";
    EXPECT_EQ(got[0], binary(2, false, 3, false));
}

TEST(ClauseExchange, RejectsClausesOverMaxLen)
{
    ClauseExchange::Options opts;
    opts.max_len = 2;
    ClauseExchange ex(2, opts);
    ex.publish(0, {sat::mkLit(0), sat::mkLit(1), sat::mkLit(2)});

    std::vector<sat::LitVec> got;
    ex.fetch(1, got);
    EXPECT_TRUE(got.empty());
    EXPECT_EQ(ex.stats().published, 0u);
    EXPECT_EQ(ex.stats().rejected_len, 1u);
}

TEST(ClauseExchange, OverflowDropsOldestOnly)
{
    ClauseExchange::Options opts;
    opts.capacity = 4;
    ClauseExchange ex(2, opts);
    for (int i = 0; i < 6; ++i)
        ex.publish(0, binary(i, false, i + 10, false));

    std::vector<sat::LitVec> got;
    ex.fetch(1, got);
    ASSERT_EQ(got.size(), 4u) << "ring keeps the newest `capacity`";
    EXPECT_EQ(got.front(), binary(2, false, 12, false));
    EXPECT_EQ(got.back(), binary(5, false, 15, false));
    EXPECT_EQ(ex.stats().overflowed, 2u);
}

TEST(ClauseExchange, ThreeWayExclusion)
{
    ClauseExchange ex(3, {});
    for (int w = 0; w < 3; ++w)
        ex.publish(w, binary(w, false, w + 5, false));

    for (int w = 0; w < 3; ++w) {
        std::vector<sat::LitVec> got;
        ex.fetch(w, got);
        ASSERT_EQ(got.size(), 2u) << "worker " << w;
        for (const auto &c : got)
            EXPECT_NE(c[0].var(), w) << "own clause leaked back";
    }
}

TEST(ClauseExchange, UnitClausesShareable)
{
    ClauseExchange ex(2, {});
    ex.publish(0, {sat::mkLit(7, true)});
    std::vector<sat::LitVec> got;
    ex.fetch(1, got);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].size(), 1u);
}

TEST(ClauseExchange, ConcurrentPublishFetchIsSafe)
{
    // Smoke test for the lock discipline (meaningful under TSan):
    // every worker publishes and fetches concurrently; afterwards
    // the totals must be internally consistent.
    constexpr int kWorkers = 4;
    constexpr int kRounds = 200;
    ClauseExchange::Options opts;
    opts.capacity = 64; // small, so overflow races too
    ClauseExchange ex(kWorkers, opts);

    std::vector<std::thread> threads;
    for (int w = 0; w < kWorkers; ++w) {
        threads.emplace_back([&ex, w] {
            std::vector<sat::LitVec> got;
            for (int i = 0; i < kRounds; ++i) {
                ex.publish(w, binary(w, false, i % 30, true));
                if (i % 3 == 0)
                    ex.fetch(w, got);
            }
            ex.fetch(w, got);
            for (const auto &c : got)
                ASSERT_EQ(c.size(), 2u);
        });
    }
    for (auto &t : threads)
        t.join();

    const auto s = ex.stats();
    EXPECT_EQ(s.published, kWorkers * kRounds);
    EXPECT_LE(s.overflowed, s.published);
    // Each published clause is delivered at most (workers - 1) times.
    EXPECT_LE(s.fetched, s.published * (kWorkers - 1));
}

} // namespace
} // namespace hyqsat::portfolio
