#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/hybrid_solver.h"
#include "embed/hyqsat_embedder.h"
#include "sat/brute_force.h"
#include "tests/sat/helpers.h"
#include "topology/topology.h"

namespace hyqsat::topology {
namespace {

TEST(Topology, KindNamesRoundTrip)
{
    EXPECT_STREQ(kindName(Kind::Chimera), "chimera");
    EXPECT_STREQ(kindName(Kind::Pegasus), "pegasus");
    EXPECT_STREQ(kindName(Kind::Zephyr), "zephyr");
    for (Kind k : {Kind::Chimera, Kind::Pegasus, Kind::Zephyr}) {
        const auto parsed = parseKind(kindName(k));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, k);
    }
    EXPECT_FALSE(parseKind("").has_value());
    EXPECT_FALSE(parseKind("Chimera").has_value());
    EXPECT_FALSE(parseKind("zephyr2").has_value());
}

TEST(Topology, ChimeraMatchesLegacyExpectations)
{
    // The back-compat constructor is the old ChimeraGraph: K_{4,4}
    // cells chained cell by cell. Counts for a 16x16, shore-4 fabric:
    // 16*16*8 qubits; couplers = cells*16 intra + chains.
    const Topology g(16, 16, 4);
    EXPECT_EQ(g.kind(), Kind::Chimera);
    EXPECT_STREQ(g.name(), "chimera");
    EXPECT_EQ(g.lineReach(), 1);
    EXPECT_EQ(g.numQubits(), 2048);
    const int intra = 16 * 16 * 16;       // K_{4,4} per cell
    const int vert = 15 * 16 * 4;         // vertical chains
    const int horiz = 16 * 15 * 4;        // horizontal chains
    EXPECT_EQ(g.numCouplers(), intra + vert + horiz);

    // Degree 6 interior: 4 intra-cell + 2 along the line.
    const int q = g.qubitId(8, 8, Shore::Vertical, 2);
    EXPECT_EQ(static_cast<int>(g.neighbors(q).size()), 6);
    EXPECT_TRUE(g.connected(g.verticalLineQubit(2, 3),
                            g.verticalLineQubit(2, 4)));
    EXPECT_FALSE(g.connected(g.verticalLineQubit(2, 3),
                             g.verticalLineQubit(2, 5)));
}

TEST(Topology, PegasusKeepsChimeraSkeleton)
{
    const Topology c = Topology::chimera(6, 6, 4);
    const Topology p = Topology::pegasus(6, 6, 4);
    EXPECT_EQ(p.numQubits(), c.numQubits());
    EXPECT_EQ(p.lineReach(), 2);
    // Every Chimera coupler survives in the Pegasus-style graph.
    for (const auto &[a, b] : c.edges())
        EXPECT_TRUE(p.connected(a, b)) << a << "-" << b;
    EXPECT_GT(p.numCouplers(), c.numCouplers());
}

TEST(Topology, PegasusOddCouplersPairAdjacentTracks)
{
    const Topology p = Topology::pegasus(4, 4, 4);
    // Tracks (0,1) and (2,3) of the same shore in the same cell.
    for (Shore s : {Shore::Vertical, Shore::Horizontal}) {
        EXPECT_TRUE(p.connected(p.qubitId(1, 2, s, 0),
                                p.qubitId(1, 2, s, 1)));
        EXPECT_TRUE(p.connected(p.qubitId(1, 2, s, 2),
                                p.qubitId(1, 2, s, 3)));
        // But not across pair boundaries or cells.
        EXPECT_FALSE(p.connected(p.qubitId(1, 2, s, 1),
                                 p.qubitId(1, 2, s, 2)));
        EXPECT_FALSE(p.connected(p.qubitId(1, 2, s, 0),
                                 p.qubitId(1, 3, s, 1)));
    }
    // Chimera has neither.
    const Topology c = Topology::chimera(4, 4, 4);
    EXPECT_FALSE(c.connected(c.qubitId(1, 2, Shore::Vertical, 0),
                             c.qubitId(1, 2, Shore::Vertical, 1)));
}

TEST(Topology, PegasusSkipCouplersStrideTwoCells)
{
    const Topology p = Topology::pegasus(5, 5, 4);
    // Vertical line: rows r and r+2 connected; horizontal: cols.
    EXPECT_TRUE(p.connected(p.verticalLineQubit(7, 0),
                            p.verticalLineQubit(7, 2)));
    EXPECT_TRUE(p.connected(p.verticalLineQubit(7, 2),
                            p.verticalLineQubit(7, 4)));
    EXPECT_FALSE(p.connected(p.verticalLineQubit(7, 0),
                             p.verticalLineQubit(7, 3)));
    EXPECT_TRUE(p.connected(p.horizontalLineQubit(3, 1),
                            p.horizontalLineQubit(3, 3)));
    const Topology c = Topology::chimera(5, 5, 4);
    EXPECT_FALSE(c.connected(c.verticalLineQubit(7, 0),
                             c.verticalLineQubit(7, 2)));
}

TEST(Topology, ZephyrKeepsPegasusCouplers)
{
    const Topology p = Topology::pegasus(6, 6, 4);
    const Topology z = Topology::zephyr(6, 6, 4);
    EXPECT_EQ(z.kind(), Kind::Zephyr);
    EXPECT_STREQ(z.name(), "zephyr");
    EXPECT_EQ(z.numQubits(), p.numQubits());
    EXPECT_EQ(z.lineReach(), 3);
    // Every Pegasus coupler (and hence the Chimera skeleton)
    // survives in the Zephyr-style graph.
    for (const auto &[a, b] : p.edges())
        EXPECT_TRUE(z.connected(a, b)) << a << "-" << b;
    // The extras are exactly the skip-3 couplers: rows-3 per
    // vertical line and cols-3 per horizontal line.
    const int skip3 = (6 - 3) * 6 * 4 * 2;
    EXPECT_EQ(z.numCouplers(), p.numCouplers() + skip3);
}

TEST(Topology, ZephyrSkipCouplersStrideThreeCells)
{
    const Topology z = Topology::zephyr(7, 7, 4);
    // Vertical line: rows r and r+3 connected (plus the Pegasus
    // strides 1 and 2); never stride 4+.
    EXPECT_TRUE(z.connected(z.verticalLineQubit(9, 0),
                            z.verticalLineQubit(9, 3)));
    EXPECT_TRUE(z.connected(z.verticalLineQubit(9, 2),
                            z.verticalLineQubit(9, 5)));
    EXPECT_TRUE(z.connected(z.verticalLineQubit(9, 1),
                            z.verticalLineQubit(9, 3)));
    EXPECT_FALSE(z.connected(z.verticalLineQubit(9, 0),
                             z.verticalLineQubit(9, 4)));
    EXPECT_TRUE(z.connected(z.horizontalLineQubit(5, 1),
                            z.horizontalLineQubit(5, 4)));
    EXPECT_FALSE(z.connected(z.horizontalLineQubit(5, 0),
                             z.horizontalLineQubit(5, 4)));
    // Pegasus stops at stride 2.
    const Topology p = Topology::pegasus(7, 7, 4);
    EXPECT_FALSE(p.connected(p.verticalLineQubit(9, 0),
                             p.verticalLineQubit(9, 3)));
}

TEST(Topology, OddCouplerPartnersAndCapability)
{
    const Topology p = Topology::pegasus(4, 4, 4);
    EXPECT_TRUE(p.hasOddCouplers());
    EXPECT_TRUE(Topology::zephyr(4, 4, 4).hasOddCouplers());
    EXPECT_FALSE(Topology::chimera(4, 4, 4).hasOddCouplers());

    // Tracks pair as (2t, 2t+1) within the same cell row: line
    // r*shore + track. Row 2, shore 4: lines 8..11.
    EXPECT_EQ(p.horizontalLinePartner(8), 9);
    EXPECT_EQ(p.horizontalLinePartner(9), 8);
    EXPECT_EQ(p.horizontalLinePartner(10), 11);
    EXPECT_EQ(p.horizontalLinePartner(11), 10);
    // Partner lines share the cell row and are odd-coupled at every
    // column they both cross.
    for (int line = 0; line < p.numHorizontalLines(); ++line) {
        const int partner = p.horizontalLinePartner(line);
        ASSERT_GE(partner, 0);
        EXPECT_EQ(p.horizontalLineRow(partner),
                  p.horizontalLineRow(line));
        for (int c = 0; c < p.cols(); ++c) {
            EXPECT_TRUE(
                p.connected(p.horizontalLineQubit(line, c),
                            p.horizontalLineQubit(partner, c)));
        }
    }

    // Odd shore: the unpaired tail track has no partner.
    const Topology odd = Topology::pegasus(3, 3, 3);
    EXPECT_EQ(odd.horizontalLinePartner(0), 1);
    EXPECT_EQ(odd.horizontalLinePartner(1), 0);
    EXPECT_EQ(odd.horizontalLinePartner(2), -1);
    EXPECT_EQ(odd.horizontalLinePartner(3 + 2), -1); // row 1 tail

    // Chimera has no odd couplers at all.
    const Topology c = Topology::chimera(4, 4, 4);
    for (int line = 0; line < c.numHorizontalLines(); ++line)
        EXPECT_EQ(c.horizontalLinePartner(line), -1);
}

TEST(Topology, EdgesAreCanonicalAndUnique)
{
    for (const Topology &g :
         {Topology::chimera(3, 4, 2), Topology::pegasus(3, 4, 2),
          Topology::zephyr(4, 5, 2)}) {
        std::set<std::pair<int, int>> seen;
        for (const auto &e : g.edges()) {
            EXPECT_LT(e.first, e.second);
            EXPECT_GE(e.first, 0);
            EXPECT_LT(e.second, g.numQubits());
            EXPECT_TRUE(seen.insert(e).second)
                << "duplicate coupler " << e.first << "-" << e.second;
        }
        // Adjacency is the symmetric closure of the edge list.
        std::size_t degree_sum = 0;
        for (int q = 0; q < g.numQubits(); ++q) {
            const auto &n = g.neighbors(q);
            EXPECT_TRUE(std::is_sorted(n.begin(), n.end()));
            degree_sum += n.size();
        }
        EXPECT_EQ(degree_sum, 2 * seen.size());
    }
}

TEST(Topology, EmbedderProducesValidPegasusEmbeddings)
{
    // The fast embedder must produce connected, separated chains on
    // both families; Pegasus chains may use skip couplers.
    Rng rng(17);
    const auto cnf = sat::testing::randomCnf(15, 30, 3, rng);
    const std::vector<sat::LitVec> clauses(cnf.clauses().begin(),
                                           cnf.clauses().end());
    for (const Topology &g :
         {Topology::chimera(16, 16, 4), Topology::pegasus(16, 16, 4),
          Topology::zephyr(16, 16, 4)}) {
        embed::HyQsatEmbedder embedder(g);
        const auto fx = embedder.embedQueue(clauses);
        EXPECT_GT(fx.embedded_clauses, 0) << g.name();
        for (const auto &chain : fx.embedding.chains()) {
            ASSERT_FALSE(chain.empty());
            // Connectivity: the chain-induced subgraph is connected
            // (BFS from the first qubit reaches every member).
            std::set<int> members(chain.begin(), chain.end());
            std::set<int> seen{chain.front()};
            std::vector<int> frontier{chain.front()};
            while (!frontier.empty()) {
                const int q = frontier.back();
                frontier.pop_back();
                for (int nb : g.neighbors(q)) {
                    if (members.count(nb) && seen.insert(nb).second)
                        frontier.push_back(nb);
                }
            }
            EXPECT_EQ(seen.size(), members.size())
                << g.name() << " chain starting at " << chain.front()
                << " is disconnected";
        }
    }
}

TEST(Topology, HybridSolveRunsOnZephyr)
{
    Rng rng(27);
    const auto cnf = sat::testing::randomCnf(20, 70, 3, rng);
    const auto truth = sat::bruteForceSolve(cnf);
    core::HybridConfig cfg;
    cfg.topology = Kind::Zephyr;
    cfg.chimera_rows = 8;
    cfg.chimera_cols = 8;
    cfg.annealer.noise = anneal::NoiseModel::noiseFree();
    cfg.annealer.greedy_finish = true;
    cfg.warmup_override = 6;
    cfg.seed = 0x2e9f;
    core::HybridSolver solver(cfg);
    EXPECT_EQ(solver.graph().kind(), Kind::Zephyr);
    const auto res = solver.solve(cnf);
    ASSERT_TRUE(res.status.isTrue() || res.status.isFalse());
    EXPECT_EQ(res.status.isTrue(), truth.satisfiable);
    if (res.status.isTrue())
        EXPECT_TRUE(cnf.eval(res.model));
}

TEST(Topology, HybridSolveRunsOnPegasus)
{
    Rng rng(23);
    for (int round = 0; round < 3; ++round) {
        const auto cnf = sat::testing::randomCnf(20, 70, 3, rng);
        const auto truth = sat::bruteForceSolve(cnf);
        core::HybridConfig cfg;
        cfg.topology = Kind::Pegasus;
        cfg.chimera_rows = 8;
        cfg.chimera_cols = 8;
        cfg.annealer.noise = anneal::NoiseModel::noiseFree();
        cfg.annealer.greedy_finish = true;
        cfg.warmup_override = 6;
        cfg.seed = 0x900d + static_cast<std::uint64_t>(round);
        core::HybridSolver solver(cfg);
        EXPECT_EQ(solver.graph().kind(), Kind::Pegasus);
        const auto res = solver.solve(cnf);
        ASSERT_TRUE(res.status.isTrue() || res.status.isFalse());
        EXPECT_EQ(res.status.isTrue(), truth.satisfiable)
            << "round " << round;
        if (res.status.isTrue()) {
            EXPECT_TRUE(cnf.eval(res.model));
        }
    }
}

} // namespace
} // namespace hyqsat::topology
