#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/hybrid_solver.h"
#include "embed/hyqsat_embedder.h"
#include "sat/brute_force.h"
#include "tests/sat/helpers.h"
#include "topology/topology.h"

namespace hyqsat::topology {
namespace {

TEST(Topology, KindNamesRoundTrip)
{
    EXPECT_STREQ(kindName(Kind::Chimera), "chimera");
    EXPECT_STREQ(kindName(Kind::Pegasus), "pegasus");
    for (Kind k : {Kind::Chimera, Kind::Pegasus}) {
        const auto parsed = parseKind(kindName(k));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, k);
    }
    EXPECT_FALSE(parseKind("").has_value());
    EXPECT_FALSE(parseKind("Chimera").has_value());
    EXPECT_FALSE(parseKind("zephyr").has_value());
}

TEST(Topology, ChimeraMatchesLegacyExpectations)
{
    // The back-compat constructor is the old ChimeraGraph: K_{4,4}
    // cells chained cell by cell. Counts for a 16x16, shore-4 fabric:
    // 16*16*8 qubits; couplers = cells*16 intra + chains.
    const Topology g(16, 16, 4);
    EXPECT_EQ(g.kind(), Kind::Chimera);
    EXPECT_STREQ(g.name(), "chimera");
    EXPECT_EQ(g.lineReach(), 1);
    EXPECT_EQ(g.numQubits(), 2048);
    const int intra = 16 * 16 * 16;       // K_{4,4} per cell
    const int vert = 15 * 16 * 4;         // vertical chains
    const int horiz = 16 * 15 * 4;        // horizontal chains
    EXPECT_EQ(g.numCouplers(), intra + vert + horiz);

    // Degree 6 interior: 4 intra-cell + 2 along the line.
    const int q = g.qubitId(8, 8, Shore::Vertical, 2);
    EXPECT_EQ(static_cast<int>(g.neighbors(q).size()), 6);
    EXPECT_TRUE(g.connected(g.verticalLineQubit(2, 3),
                            g.verticalLineQubit(2, 4)));
    EXPECT_FALSE(g.connected(g.verticalLineQubit(2, 3),
                             g.verticalLineQubit(2, 5)));
}

TEST(Topology, PegasusKeepsChimeraSkeleton)
{
    const Topology c = Topology::chimera(6, 6, 4);
    const Topology p = Topology::pegasus(6, 6, 4);
    EXPECT_EQ(p.numQubits(), c.numQubits());
    EXPECT_EQ(p.lineReach(), 2);
    // Every Chimera coupler survives in the Pegasus-style graph.
    for (const auto &[a, b] : c.edges())
        EXPECT_TRUE(p.connected(a, b)) << a << "-" << b;
    EXPECT_GT(p.numCouplers(), c.numCouplers());
}

TEST(Topology, PegasusOddCouplersPairAdjacentTracks)
{
    const Topology p = Topology::pegasus(4, 4, 4);
    // Tracks (0,1) and (2,3) of the same shore in the same cell.
    for (Shore s : {Shore::Vertical, Shore::Horizontal}) {
        EXPECT_TRUE(p.connected(p.qubitId(1, 2, s, 0),
                                p.qubitId(1, 2, s, 1)));
        EXPECT_TRUE(p.connected(p.qubitId(1, 2, s, 2),
                                p.qubitId(1, 2, s, 3)));
        // But not across pair boundaries or cells.
        EXPECT_FALSE(p.connected(p.qubitId(1, 2, s, 1),
                                 p.qubitId(1, 2, s, 2)));
        EXPECT_FALSE(p.connected(p.qubitId(1, 2, s, 0),
                                 p.qubitId(1, 3, s, 1)));
    }
    // Chimera has neither.
    const Topology c = Topology::chimera(4, 4, 4);
    EXPECT_FALSE(c.connected(c.qubitId(1, 2, Shore::Vertical, 0),
                             c.qubitId(1, 2, Shore::Vertical, 1)));
}

TEST(Topology, PegasusSkipCouplersStrideTwoCells)
{
    const Topology p = Topology::pegasus(5, 5, 4);
    // Vertical line: rows r and r+2 connected; horizontal: cols.
    EXPECT_TRUE(p.connected(p.verticalLineQubit(7, 0),
                            p.verticalLineQubit(7, 2)));
    EXPECT_TRUE(p.connected(p.verticalLineQubit(7, 2),
                            p.verticalLineQubit(7, 4)));
    EXPECT_FALSE(p.connected(p.verticalLineQubit(7, 0),
                             p.verticalLineQubit(7, 3)));
    EXPECT_TRUE(p.connected(p.horizontalLineQubit(3, 1),
                            p.horizontalLineQubit(3, 3)));
    const Topology c = Topology::chimera(5, 5, 4);
    EXPECT_FALSE(c.connected(c.verticalLineQubit(7, 0),
                             c.verticalLineQubit(7, 2)));
}

TEST(Topology, EdgesAreCanonicalAndUnique)
{
    for (const Topology &g :
         {Topology::chimera(3, 4, 2), Topology::pegasus(3, 4, 2)}) {
        std::set<std::pair<int, int>> seen;
        for (const auto &e : g.edges()) {
            EXPECT_LT(e.first, e.second);
            EXPECT_GE(e.first, 0);
            EXPECT_LT(e.second, g.numQubits());
            EXPECT_TRUE(seen.insert(e).second)
                << "duplicate coupler " << e.first << "-" << e.second;
        }
        // Adjacency is the symmetric closure of the edge list.
        std::size_t degree_sum = 0;
        for (int q = 0; q < g.numQubits(); ++q) {
            const auto &n = g.neighbors(q);
            EXPECT_TRUE(std::is_sorted(n.begin(), n.end()));
            degree_sum += n.size();
        }
        EXPECT_EQ(degree_sum, 2 * seen.size());
    }
}

TEST(Topology, EmbedderProducesValidPegasusEmbeddings)
{
    // The fast embedder must produce connected, separated chains on
    // both families; Pegasus chains may use skip couplers.
    Rng rng(17);
    const auto cnf = sat::testing::randomCnf(15, 30, 3, rng);
    const std::vector<sat::LitVec> clauses(cnf.clauses().begin(),
                                           cnf.clauses().end());
    for (const Topology &g :
         {Topology::chimera(16, 16, 4), Topology::pegasus(16, 16, 4)}) {
        embed::HyQsatEmbedder embedder(g);
        const auto fx = embedder.embedQueue(clauses);
        EXPECT_GT(fx.embedded_clauses, 0) << g.name();
        for (const auto &chain : fx.embedding.chains()) {
            ASSERT_FALSE(chain.empty());
            // Connectivity: the chain-induced subgraph is connected
            // (BFS from the first qubit reaches every member).
            std::set<int> members(chain.begin(), chain.end());
            std::set<int> seen{chain.front()};
            std::vector<int> frontier{chain.front()};
            while (!frontier.empty()) {
                const int q = frontier.back();
                frontier.pop_back();
                for (int nb : g.neighbors(q)) {
                    if (members.count(nb) && seen.insert(nb).second)
                        frontier.push_back(nb);
                }
            }
            EXPECT_EQ(seen.size(), members.size())
                << g.name() << " chain starting at " << chain.front()
                << " is disconnected";
        }
    }
}

TEST(Topology, HybridSolveRunsOnPegasus)
{
    Rng rng(23);
    for (int round = 0; round < 3; ++round) {
        const auto cnf = sat::testing::randomCnf(20, 70, 3, rng);
        const auto truth = sat::bruteForceSolve(cnf);
        core::HybridConfig cfg;
        cfg.topology = Kind::Pegasus;
        cfg.chimera_rows = 8;
        cfg.chimera_cols = 8;
        cfg.annealer.noise = anneal::NoiseModel::noiseFree();
        cfg.annealer.greedy_finish = true;
        cfg.warmup_override = 6;
        cfg.seed = 0x900d + static_cast<std::uint64_t>(round);
        core::HybridSolver solver(cfg);
        EXPECT_EQ(solver.graph().kind(), Kind::Pegasus);
        const auto res = solver.solve(cnf);
        ASSERT_TRUE(res.status.isTrue() || res.status.isFalse());
        EXPECT_EQ(res.status.isTrue(), truth.satisfiable)
            << "round " << round;
        if (res.status.isTrue()) {
            EXPECT_TRUE(cnf.eval(res.model));
        }
    }
}

} // namespace
} // namespace hyqsat::topology
