/**
 * @file
 * Domain example: 3-colour a random flat graph through the hybrid
 * solver (the paper's GC benchmark domain) and print the colouring.
 *
 *   ./build/examples/graph_coloring [vertices] [edges]
 */

#include <cstdio>
#include <cstdlib>

#include "core/hybrid_solver.h"
#include "gen/graph_coloring.h"

using namespace hyqsat;

int
main(int argc, char **argv)
{
    const int vertices = argc > 1 ? std::atoi(argv[1]) : 30;
    const int edges =
        argc > 2 ? std::atoi(argv[2]) : vertices * 2;

    std::printf("3-colouring a random flat graph with %d vertices "
                "and %d edges...\n",
                vertices, edges);
    Rng rng(0xc010f);
    const auto instance = gen::flatGraph(vertices, edges, 3, rng);
    const auto cnf = gen::encodeColoring(instance);
    std::printf("Encoded as CNF: %d variables, %d clauses\n",
                cnf.numVars(), cnf.numClauses());

    core::HybridConfig config;
    config.annealer.noise = anneal::NoiseModel::noiseFree();
    config.annealer.greedy_finish = true;
    config.annealer.attempts = 2;
    core::HybridSolver solver(config);
    const auto result = solver.solve(cnf);

    if (!result.status.isTrue()) {
        std::printf("unexpected: flat graphs are 3-colourable by "
                    "construction\n");
        return 1;
    }

    // Decode colour classes from the model.
    auto color_of = [&](int v) {
        for (int c = 0; c < 3; ++c)
            if (result.model[v * 3 + c])
                return c;
        return -1;
    };
    const char *palette[3] = {"red", "green", "blue"};
    int counts[3] = {};
    for (int v = 0; v < vertices; ++v)
        ++counts[color_of(v)];
    std::printf("\nColouring found with %llu CDCL iterations and %d "
                "QA samples:\n",
                static_cast<unsigned long long>(
                    result.stats.iterations),
                result.qa_samples);
    std::printf("  class sizes: %d %s, %d %s, %d %s\n", counts[0],
                palette[0], counts[1], palette[1], counts[2],
                palette[2]);

    // Verify no edge is monochromatic.
    int violations = 0;
    for (const auto &[a, b] : instance.edges)
        violations += (color_of(a) == color_of(b));
    std::printf("  edge violations: %d (must be 0)\n", violations);

    if (vertices <= 40) {
        std::printf("\nVertex colours:\n  ");
        for (int v = 0; v < vertices; ++v)
            std::printf("%d:%s ", v, palette[color_of(v)]);
        std::printf("\n");
    }
    return violations == 0 ? 0 : 1;
}
