/**
 * @file
 * Example: inspect the §IV-B linear-time embedding. Builds a clause
 * queue from a random 3-SAT instance, embeds it on a small Chimera
 * chip and renders an ASCII picture of which qubits each chain
 * occupies, plus chain-length statistics against the Minorminer
 * baseline.
 *
 *   ./build/examples/embedding_inspector [rows] [cols]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "embed/hyqsat_embedder.h"
#include "embed/minorminer.h"
#include "gen/random_sat.h"
#include "qubo/encoder.h"

using namespace hyqsat;

int
main(int argc, char **argv)
{
    const int rows = argc > 1 ? std::atoi(argv[1]) : 6;
    const int cols = argc > 2 ? std::atoi(argv[2]) : 6;
    const chimera::ChimeraGraph graph(rows, cols, 4);

    Rng rng(0xe1);
    const auto cnf = gen::uniformRandom3Sat(18, 40, rng);
    const std::vector<sat::LitVec> queue(cnf.clauses().begin(),
                                         cnf.clauses().end());

    embed::HyQsatEmbedder embedder(graph);
    const auto r = embedder.embedQueue(queue);
    std::printf("Embedded %d/%zu clauses on a %dx%d Chimera chip "
                "(%d qubits) in %.1f us\n",
                r.embedded_clauses, queue.size(), rows, cols,
                graph.numQubits(), r.seconds * 1e6);
    std::printf("Problem graph: %d nodes, %zu edges; chains: avg "
                "%.2f, max %d, total qubits %d\n",
                r.problem.numNodes(), r.problem.edges().size(),
                r.embedding.averageChainLength(),
                r.embedding.maxChainLength(),
                r.embedding.totalQubits());

    std::string why;
    std::printf("Embedding validity: %s%s\n",
                r.embedding.isValid(graph, r.problem.edges(), &why)
                    ? "OK"
                    : "INVALID - ",
                why.c_str());

    // ASCII map: for each cell print how many chain qubits it holds
    // on the vertical (V) and horizontal (H) shores.
    std::vector<int> owner(graph.numQubits(), -1);
    for (int nnode = 0; nnode < r.embedding.numNodes(); ++nnode)
        for (int q : r.embedding.chain(nnode))
            owner[q] = nnode;
    std::printf("\nCell occupancy map (used/8 qubits per cell):\n");
    for (int row = 0; row < rows; ++row) {
        std::printf("  ");
        for (int col = 0; col < cols; ++col) {
            int used = 0;
            for (int t = 0; t < 4; ++t) {
                used += owner[graph.qubitId(
                            row, col, chimera::Shore::Vertical, t)] >=
                        0;
                used +=
                    owner[graph.qubitId(
                        row, col, chimera::Shore::Horizontal, t)] >= 0;
            }
            std::printf("%d ", used);
        }
        std::printf("\n");
    }

    // Compare chain lengths against Minorminer on the same prefix.
    embed::MinorminerOptions mo;
    mo.timeout_seconds = 30;
    embed::MinorminerEmbedder minorminer(graph, mo);
    const auto mm =
        minorminer.embed(r.problem.numNodes(), r.problem.edges());
    if (mm.success) {
        std::printf("\nMinorminer on the same problem: %.3f s, avg "
                    "chain %.2f (HyQSAT: %.1f us, avg chain %.2f -> "
                    "%.2fx longer)\n",
                    mm.seconds, mm.embedding.averageChainLength(),
                    r.seconds * 1e6,
                    r.embedding.averageChainLength(),
                    r.embedding.averageChainLength() /
                        std::max(mm.embedding.averageChainLength(),
                                 1e-9));
    } else {
        std::printf("\nMinorminer failed to embed this problem "
                    "within %.0f s.\n",
                    mo.timeout_seconds);
    }
    return 0;
}
