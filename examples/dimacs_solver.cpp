/**
 * @file
 * Example: a command-line DIMACS solver front door, so the library
 * interoperates with standard SAT tooling. Reads a CNF file, solves
 * it with HyQSAT (or plain CDCL with --classic) and prints the
 * result in SAT-competition style ("s SATISFIABLE" + "v" lines).
 *
 *   ./build/examples/dimacs_solver problem.cnf [--classic]
 *       [--noisy] [--warmup N] [--sampler=NAME] [--depth N]
 *       [--num-reads N] [--reads-batch] [--reads-groups N]
 *       [--topology=NAME]
 *       [--timeout-s X] [--conflicts N]
 *       [--simplify[=<off|light|full>]] [--metrics FILE]
 *       [--trace FILE] [--no-frontend-cache]
 *       [--incremental-tracking]
 *
 * --simplify selects the inprocessing strength (bare --simplify =
 * light): light runs the equivalence-preserving passes (units, SCC
 * equivalent literals, subsumption), full adds failed-literal
 * probing, vivification and bounded variable elimination; models
 * are reconstructed back to the input variables either way. The
 * hybrid path inprocesses inside HybridSolver (so the annealer
 * frontend sees the reduced formula); --classic preprocesses here
 * and extends the model afterwards.
 *
 * --sampler selects the annealing backend by name (sync, qa,
 * logical, sa, batch, async, async:<backend>); --depth >= 2 enables
 * the asynchronous pipeline on any backend. --num-reads N draws N
 * independent annealing chains per device call (raced across the
 * shared worker pool, best energy kept first), mirroring a real
 * QPU's num_reads knob; read 1 is always bit-identical to a
 * single-read run, so extra reads can only improve the sample.
 * --reads-batch runs those reads through the lockstep SIMD batch
 * kernel instead of worker threads (its own determinism contract,
 * see src/anneal/sa_batch.h) and --reads-groups N splits the batch
 * into N parallel lockstep groups fanned across the shared WorkPool
 * (0 = auto: groups of up to 8 lanes), compounding the per-core
 * vector speedup with core count without changing results.
 * --topology picks the hardware graph family (chimera, the D-Wave
 * 2000Q default; the higher-degree pegasus fabric whose skip
 * couplers shorten chains; or zephyr, which adds a third coupler
 * distance on top of pegasus's fabric). --timeout-s bounds the
 * run by wall clock (a watchdog thread trips the cooperative stop
 * token every layer observes) and --conflicts by conflict count;
 * either prints "s UNKNOWN" when it fires. --metrics dumps the
 * run's metrics registry as JSON ("hyqsat.metrics/1" schema);
 * --trace streams JSONL events (restarts, pipeline stalls, backend
 * outcomes) as they happen. --no-frontend-cache disables the
 * frontend's (embedding, encoding) memoization (ablation knob;
 * results are bit-identical either way) and --incremental-tracking
 * switches the solver to incremental satisfied-clause counters
 * instead of O(clauses) scans.
 */

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/hybrid_solver.h"
#include "sat/dimacs.h"
#include "simplify/pipeline.h"
#include "util/cancel.h"
#include "util/metrics.h"

using namespace hyqsat;

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::string names;
        for (const auto &n : anneal::samplerNames())
            names += (names.empty() ? "" : "|") + n;
        std::printf("usage: %s problem.cnf [--classic] [--noisy] "
                    "[--warmup N] [--sampler=%s] [--depth N] "
                    "[--num-reads N] [--reads-batch] "
                    "[--reads-groups N] "
                    "[--topology=chimera|pegasus|zephyr] "
                    "[--timeout-s X] [--conflicts N] "
                    "[--simplify[=off|light|full]] "
                    "[--metrics FILE] [--trace FILE] "
                    "[--no-frontend-cache] [--incremental-tracking]\n",
                    argv[0], names.c_str());
        return 2;
    }
    const std::string path = argv[1];
    bool classic = false, noisy = false;
    simplify::Strength strength = simplify::Strength::Off;
    std::int64_t warmup = -1;
    std::string sampler = "sync";
    int depth = 1;
    int num_reads = 1;
    bool reads_batch = false;
    int reads_groups = 0;
    topology::Kind topo = topology::Kind::Chimera;
    double timeout_s = 0.0;
    std::int64_t conflict_budget = -1;
    bool frontend_cache = true, incremental_tracking = false;
    std::string metrics_path, trace_path;
    for (int i = 2; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--classic"))
            classic = true;
        else if (!std::strcmp(argv[i], "--noisy"))
            noisy = true;
        else if (!std::strcmp(argv[i], "--simplify"))
            strength = simplify::Strength::Light;
        else if (!std::strncmp(argv[i], "--simplify=", 11)) {
            if (!simplify::parseStrength(argv[i] + 11, strength)) {
                std::printf("c bad --simplify level: %s (expected "
                            "off, light or full)\n",
                            argv[i] + 11);
                return 2;
            }
        }
        else if (!std::strcmp(argv[i], "--warmup") && i + 1 < argc)
            warmup = std::atoll(argv[++i]);
        else if (!std::strncmp(argv[i], "--sampler=", 10))
            sampler = argv[i] + 10;
        else if (!std::strcmp(argv[i], "--sampler") && i + 1 < argc)
            sampler = argv[++i];
        else if (!std::strcmp(argv[i], "--depth") && i + 1 < argc)
            depth = std::atoi(argv[++i]);
        else if (!std::strcmp(argv[i], "--num-reads") && i + 1 < argc)
            num_reads = std::atoi(argv[++i]);
        else if (!std::strcmp(argv[i], "--reads-batch"))
            reads_batch = true;
        else if (!std::strcmp(argv[i], "--reads-groups") &&
                 i + 1 < argc)
            reads_groups = std::atoi(argv[++i]);
        else if (!std::strncmp(argv[i], "--topology=", 11)) {
            const auto kind = topology::parseKind(argv[i] + 11);
            if (!kind) {
                std::printf("c bad --topology: %s (expected chimera, "
                            "pegasus or zephyr)\n",
                            argv[i] + 11);
                return 2;
            }
            topo = *kind;
        }
        else if (!std::strcmp(argv[i], "--topology") && i + 1 < argc) {
            const auto kind = topology::parseKind(argv[++i]);
            if (!kind) {
                std::printf("c bad --topology: %s (expected chimera, "
                            "pegasus or zephyr)\n",
                            argv[i]);
                return 2;
            }
            topo = *kind;
        }
        else if (!std::strcmp(argv[i], "--timeout-s") && i + 1 < argc)
            timeout_s = std::atof(argv[++i]);
        else if (!std::strcmp(argv[i], "--conflicts") && i + 1 < argc)
            conflict_budget = std::atoll(argv[++i]);
        else if (!std::strcmp(argv[i], "--metrics") && i + 1 < argc)
            metrics_path = argv[++i];
        else if (!std::strcmp(argv[i], "--trace") && i + 1 < argc)
            trace_path = argv[++i];
        else if (!std::strcmp(argv[i], "--no-frontend-cache"))
            frontend_cache = false;
        else if (!std::strcmp(argv[i], "--incremental-tracking"))
            incremental_tracking = true;
    }

    // One registry for the whole run; the solve layers merge their
    // per-solve registries into it on the way out. The trace sink
    // streams JSONL live (events appear even if the run is killed).
    MetricsRegistry registry;
    std::unique_ptr<TraceSink> trace_sink;
    if (!trace_path.empty()) {
        trace_sink = std::make_unique<TraceSink>(trace_path);
        if (!trace_sink->ok()) {
            std::printf("c cannot open trace file %s\n",
                        trace_path.c_str());
            return 2;
        }
        registry.setTrace(trace_sink.get());
    }
    const auto write_metrics = [&] {
        if (metrics_path.empty())
            return;
        std::ofstream out(metrics_path);
        if (!out) {
            std::printf("c cannot open metrics file %s\n",
                        metrics_path.c_str());
            return;
        }
        registry.writeJson(out);
        std::printf("c wrote metrics to %s\n", metrics_path.c_str());
    };

    const auto parsed = sat::parseDimacsFile(path);
    if (!parsed) {
        std::printf("c cannot parse %s\n", path.c_str());
        return 2;
    }
    sat::Cnf cnf = *parsed;
    std::printf("c parsed %d variables, %d clauses\n", cnf.numVars(),
                cnf.numClauses());
    const int original_vars = cnf.numVars();
    // The classic path preprocesses here (and extends the model
    // below); the hybrid path hands the strength to HybridSolver so
    // the annealer frontend works on the reduced formula.
    simplify::Result pre;
    const bool preprocess =
        classic && strength != simplify::Strength::Off;
    if (preprocess) {
        pre = simplify::Pipeline(simplify::Options::preset(strength),
                                 &registry)
                  .run(cnf);
        std::printf("c simplify=%s: %d units, %d subsumed, %d "
                    "strengthened, %d equivalences, %d eliminated "
                    "-> %d clauses\n",
                    simplify::strengthName(strength), pre.stats.units,
                    pre.stats.subsumed, pre.stats.strengthened,
                    pre.stats.equivalences, pre.stats.eliminated,
                    pre.cnf.numClauses());
        if (!pre.satisfiable_possible) {
            write_metrics();
            std::printf("s UNSATISFIABLE\n");
            return 20;
        }
        cnf = pre.cnf;
    }
    if (!cnf.isThreeSat()) {
        std::printf("c converting to 3-SAT for the annealer "
                    "frontend\n");
        cnf = sat::toThreeSat(cnf);
    }

    // Wall-clock budget: a watchdog thread trips the cooperative
    // stop token the CDCL loop, hybrid loop and sampler all observe.
    StopToken stop;
    std::mutex watchdog_mutex;
    std::condition_variable watchdog_cv;
    bool solve_done = false;
    std::thread watchdog;
    if (timeout_s > 0.0) {
        watchdog = std::thread([&] {
            std::unique_lock<std::mutex> lock(watchdog_mutex);
            if (!watchdog_cv.wait_for(
                    lock, std::chrono::duration<double>(timeout_s),
                    [&] { return solve_done; })) {
                stop.requestStop();
            }
        });
    }
    const auto finish_watchdog = [&] {
        if (!watchdog.joinable())
            return;
        {
            std::lock_guard<std::mutex> lock(watchdog_mutex);
            solve_done = true;
        }
        watchdog_cv.notify_all();
        watchdog.join();
    };

    core::HybridResult result;
    if (classic) {
        auto opts = sat::SolverOptions::minisatStyle();
        opts.conflict_budget = conflict_budget;
        result = core::solveClassicCdcl(cnf, opts, &stop, &registry);
    } else {
        core::HybridConfig config;
        config.stop = &stop;
        config.metrics = &registry;
        config.solver.conflict_budget = conflict_budget;
        config.solver.incremental_clause_tracking =
            incremental_tracking;
        config.frontend.cache_embeddings = frontend_cache;
        if (noisy) {
            config.annealer.noise = anneal::NoiseModel::dwave2000q();
        } else {
            config.annealer.noise = anneal::NoiseModel::noiseFree();
            config.annealer.greedy_finish = true;
            config.annealer.attempts = 2;
        }
        config.warmup_override = warmup;
        config.simplify_strength = strength;
        config.sampler = sampler;
        config.pipeline_depth = std::max(depth, 1);
        config.num_reads = std::max(num_reads, 1);
        config.reads_batch = reads_batch;
        config.reads_groups = std::max(reads_groups, 0);
        config.topology = topo;
        core::HybridSolver solver(config);
        result = solver.solve(cnf);
        std::printf("c sampler=%s depth=%d num_reads=%d "
                    "reads_batch=%d reads_groups=%d topology=%s "
                    "simplify=%s\n",
                    config.sampler.c_str(), config.pipeline_depth,
                    config.num_reads, reads_batch ? 1 : 0,
                    config.reads_groups, topology::kindName(topo),
                    simplify::strengthName(strength));
        std::printf("c %d QA samples applied over %d warm-up "
                    "iterations (%d submitted, %d stale, %d stalls)\n",
                    result.qa_samples, result.warmup_iterations,
                    result.qa_submitted, result.qa_stale,
                    result.time.stalls);
        std::printf("c QA device %.1f us total, %.1f us blocking, "
                    "%.1f us in flight\n",
                    result.time.qa_device_s * 1e6,
                    result.time.qa_blocking_s * 1e6,
                    result.time.qa_inflight_s * 1e6);
    }

    finish_watchdog();
    if (result.status.isUndef()) {
        if (stop.stopRequested())
            std::printf("c stopped: wall-clock timeout (%.1f s)\n",
                        timeout_s);
        else
            std::printf("c stopped: budget exhausted\n");
    }

    std::printf("c %llu iterations, %llu conflicts\n",
                static_cast<unsigned long long>(
                    result.stats.iterations),
                static_cast<unsigned long long>(
                    result.stats.conflicts));
    write_metrics();
    if (result.status.isTrue()) {
        if (preprocess)
            result.model = pre.extendModel(result.model);
        if (static_cast<int>(result.model.size()) < original_vars)
            result.model.resize(original_vars, false);
        std::printf("s SATISFIABLE\nv");
        for (int v = 0; v < original_vars; ++v)
            std::printf(" %d", result.model[v] ? v + 1 : -(v + 1));
        std::printf(" 0\n");
        return 10;
    }
    if (result.status.isFalse()) {
        std::printf("s UNSATISFIABLE\n");
        return 20;
    }
    std::printf("s UNKNOWN\n");
    return 0;
}
