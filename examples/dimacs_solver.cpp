/**
 * @file
 * Example: a command-line DIMACS solver front door, so the library
 * interoperates with standard SAT tooling. Reads a CNF file, solves
 * it with HyQSAT (or plain CDCL with --classic) and prints the
 * result in SAT-competition style ("s SATISFIABLE" + "v" lines).
 *
 *   ./build/examples/dimacs_solver problem.cnf [--classic]
 *       [--noisy] [--warmup N]
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "core/hybrid_solver.h"
#include "sat/dimacs.h"
#include "sat/simplify.h"

using namespace hyqsat;

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::printf("usage: %s problem.cnf [--classic] [--noisy] "
                    "[--warmup N]\n",
                    argv[0]);
        return 2;
    }
    const std::string path = argv[1];
    bool classic = false, noisy = false, preprocess = false;
    std::int64_t warmup = -1;
    for (int i = 2; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--classic"))
            classic = true;
        else if (!std::strcmp(argv[i], "--noisy"))
            noisy = true;
        else if (!std::strcmp(argv[i], "--simplify"))
            preprocess = true;
        else if (!std::strcmp(argv[i], "--warmup") && i + 1 < argc)
            warmup = std::atoll(argv[++i]);
    }

    const auto parsed = sat::parseDimacsFile(path);
    if (!parsed) {
        std::printf("c cannot parse %s\n", path.c_str());
        return 2;
    }
    sat::Cnf cnf = *parsed;
    std::printf("c parsed %d variables, %d clauses\n", cnf.numVars(),
                cnf.numClauses());
    const int original_vars = cnf.numVars();
    sat::SimplifyResult pre;
    if (preprocess) {
        pre = sat::simplifyCnf(cnf);
        std::printf("c simplify: %d units, %d subsumed, %d "
                    "strengthened -> %d clauses\n",
                    pre.units_propagated, pre.subsumed,
                    pre.strengthened, pre.cnf.numClauses());
        if (!pre.satisfiable_possible) {
            std::printf("s UNSATISFIABLE\n");
            return 20;
        }
        cnf = pre.cnf;
    }
    if (!cnf.isThreeSat()) {
        std::printf("c converting to 3-SAT for the annealer "
                    "frontend\n");
        cnf = sat::toThreeSat(cnf);
    }

    core::HybridResult result;
    if (classic) {
        result = core::solveClassicCdcl(
            cnf, sat::SolverOptions::minisatStyle());
    } else {
        core::HybridConfig config;
        if (noisy) {
            config.annealer.noise = anneal::NoiseModel::dwave2000q();
        } else {
            config.annealer.noise = anneal::NoiseModel::noiseFree();
            config.annealer.greedy_finish = true;
            config.annealer.attempts = 2;
        }
        config.warmup_override = warmup;
        core::HybridSolver solver(config);
        result = solver.solve(cnf);
        std::printf("c %d QA samples over %d warm-up iterations\n",
                    result.qa_samples, result.warmup_iterations);
    }

    std::printf("c %llu iterations, %llu conflicts\n",
                static_cast<unsigned long long>(
                    result.stats.iterations),
                static_cast<unsigned long long>(
                    result.stats.conflicts));
    if (result.status.isTrue()) {
        if (preprocess)
            result.model = pre.extendModel(result.model);
        if (static_cast<int>(result.model.size()) < original_vars)
            result.model.resize(original_vars, false);
        std::printf("s SATISFIABLE\nv");
        for (int v = 0; v < original_vars; ++v)
            std::printf(" %d", result.model[v] ? v + 1 : -(v + 1));
        std::printf(" 0\n");
        return 10;
    }
    if (result.status.isFalse()) {
        std::printf("s UNSATISFIABLE\n");
        return 20;
    }
    std::printf("s UNKNOWN\n");
    return 0;
}
