/**
 * @file
 * Quickstart: generate a random 3-SAT problem, solve it with both
 * classic CDCL and the HyQSAT hybrid solver, and print what the
 * quantum warm-up contributed.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart [num_vars] [num_clauses]
 */

#include <cstdio>
#include <cstdlib>

#include "core/hybrid_solver.h"
#include "gen/random_sat.h"

using namespace hyqsat;

int
main(int argc, char **argv)
{
    const int num_vars = argc > 1 ? std::atoi(argv[1]) : 120;
    const int num_clauses =
        argc > 2 ? std::atoi(argv[2]) : static_cast<int>(num_vars * 4.1);

    std::printf("Generating a random 3-SAT instance with %d variables "
                "and %d clauses...\n",
                num_vars, num_clauses);
    Rng rng(0xdeadbeef);
    const sat::Cnf cnf =
        gen::uniformRandom3Sat(num_vars, num_clauses, rng);

    // --- Classic CDCL baseline.
    const auto classic = core::solveClassicCdcl(
        cnf, sat::SolverOptions::minisatStyle());
    std::printf("\nClassic CDCL:  %s in %llu iterations (%.2f ms)\n",
                classic.status.isTrue() ? "SATISFIABLE"
                                        : "UNSATISFIABLE",
                static_cast<unsigned long long>(
                    classic.stats.iterations),
                classic.time.cdcl_s * 1e3);

    // --- HyQSAT: CDCL + simulated quantum annealer warm-up.
    core::HybridConfig config;
    config.annealer.noise = anneal::NoiseModel::noiseFree();
    config.annealer.greedy_finish = true;
    config.annealer.attempts = 2;
    core::HybridSolver hybrid(config);
    const auto result = hybrid.solve(cnf);

    std::printf("HyQSAT hybrid: %s in %llu iterations\n",
                result.status.isTrue() ? "SATISFIABLE"
                                       : "UNSATISFIABLE",
                static_cast<unsigned long long>(
                    result.stats.iterations));
    std::printf("  warm-up: %d QA samples over %d iterations "
                "(strategies fired: S1=%llu S2=%llu S3=%llu "
                "S4=%llu)\n",
                result.qa_samples, result.warmup_iterations,
                static_cast<unsigned long long>(
                    result.strategy_count[1]),
                static_cast<unsigned long long>(
                    result.strategy_count[2]),
                static_cast<unsigned long long>(
                    result.strategy_count[3]),
                static_cast<unsigned long long>(
                    result.strategy_count[4]));
    std::printf("  modeled end-to-end: %.2f ms (frontend %.2f ms, "
                "QA device %.2f ms, backend %.2f ms, CDCL %.2f ms)\n",
                result.time.endToEnd() * 1e3,
                result.time.frontend_s * 1e3,
                result.time.qa_device_s * 1e3,
                result.time.backend_s * 1e3,
                result.time.cdcl_s * 1e3);
    if (result.solved_by_qa)
        std::printf("  the annealer solved the formula directly "
                    "(feedback strategy 1)!\n");

    if (result.status.isTrue()) {
        std::printf("  model verifies: %s\n",
                    cnf.eval(result.model) ? "yes" : "NO (bug!)");
    }
    if (classic.status.isTrue() == result.status.isTrue()) {
        std::printf("\nBoth solvers agree. Iteration reduction: "
                    "%.2fx\n",
                    static_cast<double>(classic.stats.iterations) /
                        static_cast<double>(std::max<std::uint64_t>(
                            result.stats.iterations, 1)));
    }
    return 0;
}
