/**
 * @file
 * Export the 14-benchmark suite as DIMACS files so the instances can
 * be fed to external solvers (MiniSat, Kissat, ...) for independent
 * baseline comparisons.
 *
 *   ./build/examples/generate_suite [output_dir] [count] [seed]
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "gen/benchmarks.h"
#include "sat/dimacs.h"

using namespace hyqsat;

int
main(int argc, char **argv)
{
    const std::string out_dir =
        argc > 1 ? argv[1] : "hyqsat-suite";
    const int count = argc > 2 ? std::atoi(argv[2]) : 3;
    const std::uint64_t seed =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 0xbe9c5eed;

    std::filesystem::create_directories(out_dir);
    int files = 0;
    for (const auto &benchmark : gen::BenchmarkSuite::all()) {
        const int n = std::min(count, benchmark.default_count);
        for (int i = 0; i < n; ++i) {
            const auto cnf = benchmark.make(i, seed);
            const std::string path = out_dir + "/" + benchmark.id +
                                     "-" + std::to_string(i) +
                                     ".cnf";
            sat::writeDimacsFile(cnf, path);
            std::printf("%-28s %6d vars %7d clauses  (%s)\n",
                        path.c_str(), cnf.numVars(),
                        cnf.numClauses(), benchmark.domain.c_str());
            ++files;
        }
    }
    std::printf("\nwrote %d DIMACS files to %s/\n", files,
                out_dir.c_str());
    std::printf("feed them back with: ./build/examples/dimacs_solver "
                "%s/AI1-0.cnf\n",
                out_dir.c_str());
    return 0;
}
