/**
 * @file
 * Domain example: factor a semiprime by SAT (the paper's IF
 * benchmark domain). Encodes p * q == N as a multiplier circuit,
 * solves it with the hybrid solver and reads the factors out of the
 * model.
 *
 *   ./build/examples/factorization [N] [bits_p] [bits_q]
 */

#include <cstdio>
#include <cstdlib>

#include "core/hybrid_solver.h"
#include "gen/factorization.h"

using namespace hyqsat;

int
main(int argc, char **argv)
{
    std::uint64_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                               : 3127; // 53 * 59
    const int bits_p = argc > 2 ? std::atoi(argv[2]) : 6;
    const int bits_q = argc > 3 ? std::atoi(argv[3]) : 6;

    std::printf("Factoring %llu with a %d x %d-bit multiplier "
                "circuit...\n",
                static_cast<unsigned long long>(n), bits_p, bits_q);
    const auto cnf = gen::factorizationCnf(n, bits_p, bits_q);
    std::printf("Encoded as CNF: %d variables, %d clauses\n",
                cnf.numVars(), cnf.numClauses());

    core::HybridConfig config;
    config.annealer.noise = anneal::NoiseModel::noiseFree();
    config.annealer.greedy_finish = true;
    config.annealer.attempts = 2;
    core::HybridSolver solver(config);
    const auto result = solver.solve(sat::toThreeSat(cnf));

    if (!result.status.isTrue()) {
        std::printf("\nUNSATISFIABLE: %llu has no nontrivial "
                    "factorization with %d x %d-bit factors "
                    "(prime, or wrong widths).\n",
                    static_cast<unsigned long long>(n), bits_p,
                    bits_q);
        return 0;
    }

    // Inputs are the first CNF variables: p bits then q bits.
    std::uint64_t p = 0, q = 0;
    for (int i = 0; i < bits_p; ++i)
        if (result.model[i])
            p |= 1ull << i;
    for (int i = 0; i < bits_q; ++i)
        if (result.model[bits_p + i])
            q |= 1ull << i;

    std::printf("\nFound %llu = %llu * %llu in %llu CDCL iterations "
                "(%d QA samples)\n",
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(p),
                static_cast<unsigned long long>(q),
                static_cast<unsigned long long>(
                    result.stats.iterations),
                result.qa_samples);
    if (p * q != n) {
        std::printf("BUG: product check failed!\n");
        return 1;
    }
    return 0;
}
