/**
 * @file
 * Example: the persistent solver daemon. Binds the service socket
 * front door (unix-domain or loopback TCP) to a multi-tenant
 * JobScheduler and runs until asked to stop — the long-running
 * counterpart of the one-shot batch_solver.
 *
 *   ./build/examples/solver_daemon --socket /tmp/hyqsat.sock
 *       [--port N] [--jobs N] [--workers N] [--queue-depth N]
 *       [--tenant-depth N] [--timeout-s X] [--conflicts N]
 *       [--memory-mb M] [--sampler NAME] [--depth N]
 *       [--num-reads N] [--reads-batch] [--reads-groups N]
 *       [--topology NAME]
 *       [--simplify off|light|full] [--noisy]
 *       [--drain finish|cancel] [--metrics FILE] [--trace FILE]
 *       [--quiet]
 *
 * --simplify sets the default inprocessing strength applied to every
 * job; a client's SUBMIT may override it per job with the optional
 * simplify=<level> token. --topology chimera|pegasus|zephyr and
 * --reads-batch set the default hardware graph family and whether
 * multi-read anneals run the lockstep SIMD batch kernel, and
 * --reads-groups N how many parallel lockstep groups the batch
 * fans across the WorkPool (0 = auto: groups of up to 8 lanes); a
 * SUBMIT may override them with topology=<name> / reads_batch=<0|1>
 * / reads_groups=<n> tokens, and every report row echoes the
 * effective values.
 *
 * Clients speak the line protocol of service/protocol.h (SUBMIT /
 * WAIT / STATUS / METRICS / SHUTDOWN); the bundled service_client
 * is one such client, netcat is another. --jobs bounds concurrent
 * jobs, --workers the solver threads raced per job; --queue-depth /
 * --tenant-depth arm admission control (0 = unbounded).
 *
 * The incremental-session verbs (OPEN / ADD / ASSUME / SOLVE / CORE
 * / CLOSE) are served by a SessionManager sharing the same solver
 * configuration: a session keeps its learnt clauses, heuristics and
 * embedding caches warm across SOLVE calls. --sessions /
 * --tenant-sessions cap how many may be open at once (0 = unbounded).
 *
 * Shutdown — via SIGINT/SIGTERM or a client's SHUTDOWN command —
 * drains gracefully: the scheduler stops accepting (submits answer
 * `REJECTED draining`), queued work is finished or cancelled per
 * --drain (SHUTDOWN's argument overrides), blocked WAITs resolve,
 * the metrics snapshot is written, and the process exits 0. A
 * second signal force-kills.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>

#include "service/scheduler.h"
#include "service/server.h"
#include "service/session_manager.h"
#include "service/signals.h"
#include "simplify/pipeline.h"
#include "util/metrics.h"

using namespace hyqsat;

int
main(int argc, char **argv)
{
    service::SchedulerOptions sopts;
    sopts.portfolio.base.annealer.noise =
        anneal::NoiseModel::noiseFree();
    sopts.portfolio.base.annealer.greedy_finish = true;
    sopts.portfolio.base.annealer.attempts = 2;
    service::ServerOptions server_opts;
    service::SessionManagerOptions session_opts;
    service::DrainPolicy signal_policy =
        service::DrainPolicy::FinishQueued;
    std::string metrics_path, trace_path;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const auto arg = [&](const char *name) {
            return !std::strcmp(argv[i], name) && i + 1 < argc;
        };
        if (arg("--socket")) {
            server_opts.unix_path = argv[++i];
        } else if (arg("--port")) {
            server_opts.tcp_port = std::atoi(argv[++i]);
        } else if (arg("--jobs")) {
            sopts.workers = std::max(1, std::atoi(argv[++i]));
        } else if (arg("--workers")) {
            sopts.portfolio.num_workers = std::atoi(argv[++i]);
        } else if (arg("--queue-depth")) {
            sopts.max_queue_depth =
                static_cast<std::size_t>(std::atoll(argv[++i]));
        } else if (arg("--tenant-depth")) {
            sopts.max_tenant_depth =
                static_cast<std::size_t>(std::atoll(argv[++i]));
        } else if (arg("--timeout-s")) {
            sopts.default_timeout_s = std::atof(argv[++i]);
        } else if (arg("--conflicts")) {
            sopts.portfolio.conflict_budget = std::atoll(argv[++i]);
        } else if (arg("--memory-mb")) {
            sopts.memory_budget_mb =
                static_cast<std::size_t>(std::atoll(argv[++i]));
        } else if (arg("--sessions")) {
            session_opts.max_sessions =
                static_cast<std::size_t>(std::atoll(argv[++i]));
        } else if (arg("--tenant-sessions")) {
            session_opts.max_per_tenant =
                static_cast<std::size_t>(std::atoll(argv[++i]));
        } else if (arg("--sampler")) {
            sopts.portfolio.base.sampler = argv[++i];
        } else if (arg("--depth")) {
            sopts.portfolio.base.pipeline_depth =
                std::max(1, std::atoi(argv[++i]));
        } else if (arg("--num-reads")) {
            sopts.portfolio.base.num_reads =
                std::max(1, std::atoi(argv[++i]));
        } else if (!std::strcmp(argv[i], "--reads-batch")) {
            sopts.portfolio.base.reads_batch = true;
        } else if (arg("--reads-groups")) {
            sopts.portfolio.base.reads_groups =
                std::max(0, std::atoi(argv[++i]));
        } else if (arg("--topology")) {
            const auto kind = topology::parseKind(argv[++i]);
            if (!kind) {
                std::fprintf(stderr,
                             "bad --topology: %s (expected chimera, "
                             "pegasus or zephyr)\n",
                             argv[i]);
                return 2;
            }
            sopts.portfolio.base.topology = *kind;
        } else if (arg("--simplify")) {
            if (!simplify::parseStrength(
                    argv[++i],
                    sopts.portfolio.base.simplify_strength)) {
                std::fprintf(stderr,
                             "bad --simplify level: %s (expected "
                             "off, light or full)\n",
                             argv[i]);
                return 2;
            }
        } else if (arg("--drain")) {
            const std::string policy = argv[++i];
            if (policy == "cancel") {
                signal_policy = service::DrainPolicy::CancelPending;
            } else if (policy != "finish") {
                std::fprintf(stderr,
                             "--drain takes finish or cancel\n");
                return 2;
            }
        } else if (arg("--metrics")) {
            metrics_path = argv[++i];
        } else if (arg("--trace")) {
            trace_path = argv[++i];
        } else if (!std::strcmp(argv[i], "--noisy")) {
            sopts.portfolio.base.annealer.noise =
                anneal::NoiseModel::dwave2000q();
            sopts.portfolio.base.annealer.greedy_finish = true;
            sopts.portfolio.base.annealer.attempts = 1;
        } else if (!std::strcmp(argv[i], "--quiet")) {
            quiet = true;
        } else {
            std::fprintf(stderr, "unknown option %s\n", argv[i]);
            return 2;
        }
    }

    if (server_opts.unix_path.empty() && server_opts.tcp_port < 0) {
        std::printf(
            "usage: %s --socket PATH | --port N [--jobs N] "
            "[--workers N] [--queue-depth N] [--tenant-depth N] "
            "[--timeout-s X] [--conflicts N] [--memory-mb M] "
            "[--sessions N] [--tenant-sessions N] "
            "[--sampler NAME] [--depth N] "
            "[--num-reads N] [--reads-batch] [--reads-groups N] "
            "[--topology chimera|pegasus|zephyr] "
            "[--simplify off|light|full] [--noisy] "
            "[--drain finish|cancel] [--metrics FILE] "
            "[--trace FILE] [--quiet]\n",
            argv[0]);
        return 2;
    }

    // One registry for the daemon's lifetime: per-tenant service.*
    // counters accumulate here and back the METRICS command.
    MetricsRegistry registry;
    std::unique_ptr<TraceSink> trace_sink;
    if (!trace_path.empty()) {
        trace_sink = std::make_unique<TraceSink>(trace_path);
        if (!trace_sink->ok()) {
            std::fprintf(stderr, "cannot open trace file %s\n",
                         trace_path.c_str());
            return 2;
        }
        registry.setTrace(trace_sink.get());
    }
    sopts.metrics = &registry;

    // Signals and the SHUTDOWN verb converge on one StopToken; the
    // scheduler's own watcher sees it too (external_stop) so drain
    // starts even before the main loop wakes.
    static StopToken stop;
    std::atomic<service::DrainPolicy> policy{signal_policy};
    service::installStopSignalHandlers(stop);
    sopts.external_stop = &stop;
    sopts.external_stop_policy = signal_policy;

    service::JobScheduler scheduler(sopts);
    // Sessions reuse the portfolio's base solver configuration (so
    // --sampler/--depth/--simplify/--noisy shape them too) and the
    // daemon registry for the service-level session.* counters.
    session_opts.hybrid = sopts.portfolio.base;
    session_opts.metrics = &registry;
    service::SessionManager sessions(session_opts);
    service::Server server(server_opts, scheduler, &registry);
    server.attachSessions(&sessions);
    server.onShutdown([&](service::DrainPolicy p) {
        // Runs on a connection thread: record the policy and trip
        // the token; the main loop below does the actual teardown
        // (stopping the server from here would deadlock).
        policy.store(p, std::memory_order_relaxed);
        stop.requestStop();
    });
    if (!server.start()) {
        std::fprintf(stderr, "cannot bind %s\n",
                     server_opts.unix_path.empty()
                         ? ("127.0.0.1:" +
                            std::to_string(server_opts.tcp_port))
                               .c_str()
                         : server_opts.unix_path.c_str());
        return 2;
    }

    if (!quiet) {
        if (server_opts.unix_path.empty())
            std::printf("solver_daemon listening on 127.0.0.1:%d "
                        "(%d jobs x %d workers)\n",
                        server.port(), sopts.workers,
                        sopts.portfolio.num_workers);
        else
            std::printf("solver_daemon listening on %s "
                        "(%d jobs x %d workers)\n",
                        server_opts.unix_path.c_str(), sopts.workers,
                        sopts.portfolio.num_workers);
        std::fflush(stdout);
    }

    while (!stop.stopRequested())
        std::this_thread::sleep_for(std::chrono::milliseconds(50));

    // Drain order matters: quiesce the scheduler first so blocked
    // WAITs answer, then tear down the socket threads.
    const service::DrainPolicy final_policy =
        policy.load(std::memory_order_relaxed);
    if (!quiet)
        std::printf("draining (%s)...\n",
                    final_policy == service::DrainPolicy::CancelPending
                        ? "cancel"
                        : "finish");
    scheduler.shutdown(final_policy);
    server.stop();
    service::uninstallStopSignalHandlers();

    if (!metrics_path.empty()) {
        std::ofstream out(metrics_path);
        if (out) {
            registry.writeJson(out);
            if (!quiet)
                std::printf("wrote %s\n", metrics_path.c_str());
        } else {
            std::fprintf(stderr, "cannot open metrics file %s\n",
                         metrics_path.c_str());
        }
    }
    if (!quiet)
        std::printf("solver_daemon: clean shutdown\n");
    return 0;
}
