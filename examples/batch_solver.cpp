/**
 * @file
 * Example: the batch DIMACS service front door. Streams many CNF
 * instances through portfolio workers on a thread pool and writes a
 * structured report — the CLI face of portfolio::BatchRunner.
 *
 *   ./build/examples/batch_solver [files...] [--dir D] [--manifest F|-]
 *       [--workers N] [--jobs N] [--timeout-s X] [--conflicts N]
 *       [--memory-mb M] [--sampler NAME] [--depth N]
 *       [--num-reads N] [--reads-batch] [--reads-groups N]
 *       [--topology NAME]
 *       [--simplify LEVEL] [--noisy] [--no-share] [--json FILE]
 *       [--csv FILE] [--metrics FILE] [--trace FILE] [--strict]
 *       [--quiet]
 *
 * --simplify off|light|full sets the inprocessing strength of every
 * worker's base config (echoed per instance in the JSON/CSV
 * reports; the portfolio's diversification still varies it across
 * slots when the slate is auto-built). --topology chimera|pegasus
 * picks the hardware graph family (zephyr being the third family)
 * and --num-reads/--reads-batch the per-sample read count and
 * whether reads run through the lockstep SIMD batch kernel;
 * --reads-groups N splits that batch into N parallel lockstep
 * groups on the shared WorkPool (0 = auto: groups of up to 8
 * lanes). The read knobs are echoed per instance in the reports
 * alongside simplify.
 *
 * Instances come from positional paths, every *.cnf/*.dimacs under
 * --dir, and/or a manifest (one path per line; "-" = stdin). Exit
 * status: 0 on success; with --strict, 1 if any instance ended
 * UNKNOWN / TIMEOUT / SKIPPED / PARSE_ERROR (the CI smoke gate).
 * --metrics dumps whole-batch totals from the metrics registry as
 * JSON; --trace streams per-worker / per-instance JSONL events live.
 *
 * SIGINT/SIGTERM drain gracefully: in-flight instances are
 * cancelled through the StopToken machinery and the report is still
 * written (interrupted instances show UNKNOWN) instead of the old
 * die-mid-job-and-lose-everything behaviour. A second signal
 * force-kills.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "portfolio/batch_runner.h"
#include "service/signals.h"
#include "simplify/pipeline.h"
#include "util/metrics.h"

using namespace hyqsat;

int
main(int argc, char **argv)
{
    std::vector<std::string> paths;
    portfolio::BatchOptions opts;
    opts.portfolio.base.annealer.noise = anneal::NoiseModel::noiseFree();
    opts.portfolio.base.annealer.greedy_finish = true;
    opts.portfolio.base.annealer.attempts = 2;
    std::string json_path, csv_path, metrics_path, trace_path;
    bool strict = false, quiet = false;

    for (int i = 1; i < argc; ++i) {
        const auto arg = [&](const char *name) {
            return !std::strcmp(argv[i], name) && i + 1 < argc;
        };
        if (arg("--dir")) {
            for (auto &p :
                 portfolio::BatchRunner::collectCnfFiles(argv[++i]))
                paths.push_back(std::move(p));
        } else if (arg("--manifest")) {
            const std::string src = argv[++i];
            if (src == "-") {
                for (auto &p :
                     portfolio::BatchRunner::readManifest(std::cin))
                    paths.push_back(std::move(p));
            } else {
                std::ifstream in(src);
                if (!in) {
                    std::fprintf(stderr, "cannot open manifest %s\n",
                                 src.c_str());
                    return 2;
                }
                for (auto &p : portfolio::BatchRunner::readManifest(in))
                    paths.push_back(std::move(p));
            }
        } else if (arg("--workers")) {
            opts.portfolio.num_workers = std::atoi(argv[++i]);
        } else if (arg("--jobs")) {
            opts.concurrency = std::atoi(argv[++i]);
        } else if (arg("--timeout-s")) {
            opts.instance_timeout_s = std::atof(argv[++i]);
        } else if (arg("--conflicts")) {
            opts.portfolio.conflict_budget = std::atoll(argv[++i]);
        } else if (arg("--memory-mb")) {
            opts.memory_budget_mb =
                static_cast<std::size_t>(std::atoll(argv[++i]));
        } else if (arg("--sampler")) {
            opts.portfolio.base.sampler = argv[++i];
        } else if (arg("--depth")) {
            opts.portfolio.base.pipeline_depth =
                std::max(1, std::atoi(argv[++i]));
        } else if (arg("--num-reads")) {
            opts.portfolio.base.num_reads =
                std::max(1, std::atoi(argv[++i]));
        } else if (!std::strcmp(argv[i], "--reads-batch")) {
            opts.portfolio.base.reads_batch = true;
        } else if (arg("--reads-groups")) {
            opts.portfolio.base.reads_groups =
                std::max(0, std::atoi(argv[++i]));
        } else if (arg("--topology")) {
            const auto kind = topology::parseKind(argv[++i]);
            if (!kind) {
                std::fprintf(stderr,
                             "bad --topology: %s (expected chimera, "
                             "pegasus or zephyr)\n",
                             argv[i]);
                return 2;
            }
            opts.portfolio.base.topology = *kind;
        } else if (arg("--simplify")) {
            if (!simplify::parseStrength(
                    argv[++i], opts.portfolio.base.simplify_strength)) {
                std::fprintf(stderr,
                             "bad --simplify level: %s (expected "
                             "off, light or full)\n",
                             argv[i]);
                return 2;
            }
        } else if (arg("--json")) {
            json_path = argv[++i];
        } else if (arg("--csv")) {
            csv_path = argv[++i];
        } else if (arg("--metrics")) {
            metrics_path = argv[++i];
        } else if (arg("--trace")) {
            trace_path = argv[++i];
        } else if (!std::strcmp(argv[i], "--noisy")) {
            opts.portfolio.base.annealer.noise =
                anneal::NoiseModel::dwave2000q();
            opts.portfolio.base.annealer.greedy_finish = true;
            opts.portfolio.base.annealer.attempts = 1;
        } else if (!std::strcmp(argv[i], "--no-share")) {
            opts.portfolio.share_clauses = false;
        } else if (!std::strcmp(argv[i], "--strict")) {
            strict = true;
        } else if (!std::strcmp(argv[i], "--quiet")) {
            quiet = true;
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr, "unknown option %s\n", argv[i]);
            return 2;
        } else {
            paths.push_back(argv[i]);
        }
    }

    if (paths.empty()) {
        std::printf(
            "usage: %s [files...] [--dir D] [--manifest F|-] "
            "[--workers N] [--jobs N] [--timeout-s X] [--conflicts N] "
            "[--memory-mb M] [--sampler NAME] [--depth N] "
            "[--num-reads N] [--reads-batch] [--reads-groups N] "
            "[--topology chimera|pegasus|zephyr] "
            "[--simplify off|light|full] [--noisy] [--no-share] "
            "[--json FILE] [--csv FILE] "
            "[--metrics FILE] [--trace FILE] [--strict] [--quiet]\n",
            argv[0]);
        return 2;
    }

    // Whole-batch registry: every instance's private registry is
    // merged into it by the runner; the trace sink streams live.
    MetricsRegistry registry;
    std::unique_ptr<TraceSink> trace_sink;
    if (!trace_path.empty()) {
        trace_sink = std::make_unique<TraceSink>(trace_path);
        if (!trace_sink->ok()) {
            std::fprintf(stderr, "cannot open trace file %s\n",
                         trace_path.c_str());
            return 2;
        }
        registry.setTrace(trace_sink.get());
    }
    if (!metrics_path.empty() || !trace_path.empty())
        opts.metrics = &registry;

    // Graceful drain on SIGINT/SIGTERM: the token cancels queued and
    // in-flight instances cooperatively, and the report/metrics
    // files below are still flushed.
    static StopToken stop;
    service::installStopSignalHandlers(stop);
    opts.external_stop = &stop;

    portfolio::BatchRunner runner(opts);
    const portfolio::BatchReport report = runner.run(paths);

    if (stop.stopRequested() && !quiet)
        std::fprintf(stderr,
                     "interrupted: drained batch, writing report\n");

    if (!quiet) {
        std::printf("%-24s %-10s %-12s %9s %8s %10s\n", "instance",
                    "status", "winner", "wall_s", "vars",
                    "conflicts");
        for (const auto &r : report.records) {
            std::printf("%-24s %-10s %-12s %9.3f %8d %10llu\n",
                        r.name.c_str(), r.status.c_str(),
                        r.winner.c_str(), r.wall_s, r.vars,
                        static_cast<unsigned long long>(r.conflicts));
        }
        std::printf("\n%zu instances in %.2f s: %d SAT, %d UNSAT, "
                    "%d unknown, %d timeouts, %d skipped, %d errors\n",
                    report.records.size(), report.wall_s, report.sat,
                    report.unsat, report.unknown, report.timeouts,
                    report.skipped, report.errors);
    }

    if (!json_path.empty()) {
        std::ofstream out(json_path);
        portfolio::BatchRunner::writeJson(report, out);
        if (!quiet)
            std::printf("wrote %s\n", json_path.c_str());
    }
    if (!csv_path.empty()) {
        std::ofstream out(csv_path);
        portfolio::BatchRunner::writeCsv(report, out);
        if (!quiet)
            std::printf("wrote %s\n", csv_path.c_str());
    }
    if (!metrics_path.empty()) {
        std::ofstream out(metrics_path);
        if (out) {
            registry.writeJson(out);
            if (!quiet)
                std::printf("wrote %s\n", metrics_path.c_str());
        } else {
            std::fprintf(stderr, "cannot open metrics file %s\n",
                         metrics_path.c_str());
        }
    }

    if (strict && !report.allDecided())
        return 1;
    return 0;
}
