/**
 * @file
 * Example: line-protocol client for solver_daemon. Reads DIMACS
 * files into memory, streams them to the daemon as SUBMIT bodies
 * (the formula never touches the daemon's filesystem), WAITs for
 * each result, and prints the familiar batch table.
 *
 *   ./build/examples/service_client --connect unix:/tmp/hyqsat.sock
 *       [files...] [--tenant NAME] [--priority N]
 *       [--simplify off|light|full] [--metrics]
 *       [--session] [--assume "LITS"]...
 *       [--shutdown [finish|cancel]] [--strict] [--quiet]
 *
 * --simplify attaches the optional simplify=<level> token to every
 * SUBMIT, overriding the daemon's default inprocessing strength for
 * these jobs.
 *
 * --session switches to the incremental verbs: one session is
 * OPENed, every file is ADDed into it, then each --assume "1 -2 3"
 * (DIMACS ints; repeatable, in order) stages assumptions and SOLVEs
 * under them — UNSAT answers are followed by a CORE fetch naming the
 * failed assumptions. Without --assume there is a single free SOLVE.
 * The session keeps learnt clauses and embedding caches warm between
 * calls, so a series of related SOLVEs beats a series of SUBMITs.
 *
 * --connect takes unix:PATH or tcp:PORT (loopback). --metrics
 * fetches and prints the daemon's /metrics-style text snapshot
 * after the jobs finish; --shutdown asks the daemon to drain and
 * exit once everything submitted here has been answered. With
 * --strict the exit status is 1 unless every instance ended SAT or
 * UNSAT — mirroring batch_solver, which makes the two
 * interchangeable in CI smoke jobs.
 */

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "service/protocol.h"

using namespace hyqsat;

namespace {

/** Connect per --connect spec; -1 and a message on failure. */
int
connectTo(const std::string &spec)
{
    if (spec.rfind("unix:", 0) == 0) {
        const std::string path = spec.substr(5);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (path.size() >= sizeof(addr.sun_path)) {
            std::fprintf(stderr, "socket path too long: %s\n",
                         path.c_str());
            return -1;
        }
        std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0 || ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                                sizeof(addr)) != 0) {
            std::fprintf(stderr, "cannot connect to %s\n",
                         path.c_str());
            if (fd >= 0)
                ::close(fd);
            return -1;
        }
        return fd;
    }
    if (spec.rfind("tcp:", 0) == 0) {
        const int port = std::atoi(spec.c_str() + 4);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(static_cast<uint16_t>(port));
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0 || ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                                sizeof(addr)) != 0) {
            std::fprintf(stderr, "cannot connect to 127.0.0.1:%d\n",
                         port);
            if (fd >= 0)
                ::close(fd);
            return -1;
        }
        return fd;
    }
    std::fprintf(stderr,
                 "--connect takes unix:PATH or tcp:PORT, got %s\n",
                 spec.c_str());
    return -1;
}

bool
sendAll(int fd, std::string_view data)
{
    while (!data.empty()) {
        const ssize_t n =
            ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        data.remove_prefix(static_cast<std::size_t>(n));
    }
    return true;
}

/** Buffered newline-delimited reads (CRs stripped). */
class LineReader
{
  public:
    explicit LineReader(int fd) : fd_(fd) {}

    bool readLine(std::string &line)
    {
        for (;;) {
            const auto nl = buf_.find('\n');
            if (nl != std::string::npos) {
                line.assign(buf_, 0, nl);
                if (!line.empty() && line.back() == '\r')
                    line.pop_back();
                buf_.erase(0, nl + 1);
                return true;
            }
            char chunk[4096];
            const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (n <= 0)
                return false;
            buf_.append(chunk, static_cast<std::size_t>(n));
        }
    }

  private:
    int fd_;
    std::string buf_;
};

std::string
baseName(const std::string &path)
{
    const auto slash = path.find_last_of('/');
    std::string name =
        slash == std::string::npos ? path : path.substr(slash + 1);
    const auto dot = name.find_last_of('.');
    if (dot != std::string::npos && dot > 0)
        name.resize(dot);
    return name;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string connect_spec, tenant = "default";
    std::string simplify_level;
    std::vector<std::string> paths;
    std::vector<std::string> assume_sets;
    int priority = 0;
    bool want_metrics = false, want_shutdown = false;
    bool use_session = false;
    bool strict = false, quiet = false;
    service::DrainPolicy shutdown_policy =
        service::DrainPolicy::FinishQueued;

    for (int i = 1; i < argc; ++i) {
        const auto arg = [&](const char *name) {
            return !std::strcmp(argv[i], name) && i + 1 < argc;
        };
        if (arg("--connect")) {
            connect_spec = argv[++i];
        } else if (arg("--tenant")) {
            tenant = argv[++i];
        } else if (arg("--priority")) {
            priority = std::atoi(argv[++i]);
        } else if (arg("--simplify")) {
            simplify_level = argv[++i];
            if (simplify_level != "off" &&
                simplify_level != "light" &&
                simplify_level != "full") {
                std::fprintf(stderr,
                             "bad --simplify level: %s (expected "
                             "off, light or full)\n",
                             simplify_level.c_str());
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--metrics")) {
            want_metrics = true;
        } else if (!std::strcmp(argv[i], "--session")) {
            use_session = true;
        } else if (arg("--assume")) {
            assume_sets.push_back(argv[++i]);
        } else if (!std::strcmp(argv[i], "--shutdown")) {
            want_shutdown = true;
            if (i + 1 < argc && (!std::strcmp(argv[i + 1], "finish") ||
                                 !std::strcmp(argv[i + 1], "cancel"))) {
                ++i;
                if (!std::strcmp(argv[i], "cancel"))
                    shutdown_policy =
                        service::DrainPolicy::CancelPending;
            }
        } else if (!std::strcmp(argv[i], "--strict")) {
            strict = true;
        } else if (!std::strcmp(argv[i], "--quiet")) {
            quiet = true;
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr, "unknown option %s\n", argv[i]);
            return 2;
        } else {
            paths.push_back(argv[i]);
        }
    }

    if (connect_spec.empty() ||
        (paths.empty() && !want_metrics && !want_shutdown)) {
        std::printf(
            "usage: %s --connect unix:PATH|tcp:PORT [files...] "
            "[--tenant NAME] [--priority N] "
            "[--simplify off|light|full] [--metrics] "
            "[--session] [--assume \"LITS\"]... "
            "[--shutdown [finish|cancel]] [--strict] [--quiet]\n",
            argv[0]);
        return 2;
    }

    const int fd = connectTo(connect_spec);
    if (fd < 0)
        return 2;
    LineReader reader(fd);
    std::string line;
    bool all_decided = true;

    if (use_session) {
        // Incremental mode: one OPEN, every file ADDed into the same
        // warm session, one SOLVE per assumption set, CORE on UNSAT.
        std::string open_req = "OPEN " + tenant;
        if (!simplify_level.empty())
            open_req += " simplify=" + simplify_level;
        if (!sendAll(fd, open_req + "\n") || !reader.readLine(line) ||
            line.rfind("OK ", 0) != 0) {
            std::fprintf(stderr, "open failed: %s\n", line.c_str());
            ::close(fd);
            return 2;
        }
        const std::string sid = line.substr(3);

        for (const std::string &path : paths) {
            std::ifstream in(path, std::ios::binary);
            if (!in) {
                std::fprintf(stderr, "cannot open %s\n", path.c_str());
                ::close(fd);
                return 2;
            }
            std::ostringstream body;
            body << in.rdbuf();
            std::string request = "ADD " + sid + "\n" + body.str();
            if (request.empty() || request.back() != '\n')
                request += '\n';
            request += std::string(service::kEndMarker) + "\n";
            if (!sendAll(fd, request) || !reader.readLine(line) ||
                line.rfind("OK ", 0) != 0) {
                std::fprintf(stderr, "%s: %s\n", path.c_str(),
                             line.c_str());
                ::close(fd);
                return 2;
            }
        }

        // No --assume still means one (free) solve.
        if (assume_sets.empty())
            assume_sets.emplace_back();
        if (!quiet)
            std::printf("%-24s %-10s %9s %10s  %s\n", "solve",
                        "status", "wall_s", "conflicts",
                        "assumptions / core");
        for (std::size_t i = 0; i < assume_sets.size(); ++i) {
            const std::string &assume = assume_sets[i];
            if (!sendAll(fd, "ASSUME " + sid +
                                 (assume.empty() ? "" : " " + assume) +
                                 "\n") ||
                !reader.readLine(line) || line.rfind("OK ", 0) != 0) {
                std::fprintf(stderr, "assume failed: %s\n",
                             line.c_str());
                all_decided = false;
                continue;
            }
            if (!sendAll(fd, "SOLVE " + sid + "\n") ||
                !reader.readLine(line)) {
                std::fprintf(stderr, "connection lost during solve\n");
                ::close(fd);
                return 2;
            }
            const auto result = service::parseResult(line);
            if (!result) {
                std::fprintf(stderr, "bad RESULT line: %s\n",
                             line.c_str());
                all_decided = false;
                continue;
            }
            const service::InstanceRecord &rec = result->second;
            std::string detail =
                assume.empty() ? "(none)" : assume;
            if (rec.status == "UNSAT" &&
                sendAll(fd, "CORE " + sid + "\n") &&
                reader.readLine(line)) {
                if (const auto core = service::parseCore(line)) {
                    detail += "  core:";
                    if (core->second.empty())
                        detail += " (formula UNSAT)";
                    for (const int lit : core->second)
                        detail += " " + std::to_string(lit);
                }
            }
            if (!quiet)
                std::printf("%-24s %-10s %9.3f %10llu  %s\n",
                            ("#" + std::to_string(i + 1)).c_str(),
                            rec.status.c_str(), rec.wall_s,
                            static_cast<unsigned long long>(
                                rec.conflicts),
                            detail.c_str());
            if (rec.status != "SAT" && rec.status != "UNSAT")
                all_decided = false;
        }
        if (sendAll(fd, "CLOSE " + sid + "\n"))
            reader.readLine(line);
        paths.clear(); // the batch path below has nothing to do
    }

    // Submit everything up front (the daemon schedules), then wait
    // in input order so the table matches batch_solver's.
    std::vector<service::JobId> ids(paths.size(), 0);
    for (std::size_t i = 0; i < paths.size(); ++i) {
        std::ifstream in(paths[i], std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n",
                         paths[i].c_str());
            all_decided = false;
            continue;
        }
        std::ostringstream body;
        body << in.rdbuf();
        std::string request = "SUBMIT " + tenant + " " +
                              std::to_string(priority) + " " +
                              baseName(paths[i]);
        if (!simplify_level.empty())
            request += " simplify=" + simplify_level;
        request += "\n";
        request += body.str();
        if (request.empty() || request.back() != '\n')
            request += '\n';
        request += std::string(service::kEndMarker) + "\n";
        if (!sendAll(fd, request) || !reader.readLine(line)) {
            std::fprintf(stderr, "connection lost during submit\n");
            ::close(fd);
            return 2;
        }
        if (line.rfind("OK ", 0) == 0) {
            ids[i] = std::strtoull(line.c_str() + 3, nullptr, 10);
        } else {
            // REJECTED <reason> (admission control) or ERR ...
            std::fprintf(stderr, "%s: %s\n", paths[i].c_str(),
                         line.c_str());
            all_decided = false;
        }
    }

    if (!paths.empty() && !quiet)
        std::printf("%-24s %-10s %-12s %9s %8s %10s\n", "instance",
                    "status", "winner", "wall_s", "vars",
                    "conflicts");
    for (std::size_t i = 0; i < paths.size(); ++i) {
        if (ids[i] == 0)
            continue;
        if (!sendAll(fd, "WAIT " + std::to_string(ids[i]) + "\n") ||
            !reader.readLine(line)) {
            std::fprintf(stderr, "connection lost during wait\n");
            ::close(fd);
            return 2;
        }
        const auto result = service::parseResult(line);
        if (!result) {
            std::fprintf(stderr, "bad RESULT line: %s\n",
                         line.c_str());
            all_decided = false;
            continue;
        }
        const service::InstanceRecord &rec = result->second;
        // RESULT lines don't carry the name; use the local one.
        if (!quiet)
            std::printf("%-24s %-10s %-12s %9.3f %8d %10llu\n",
                        baseName(paths[i]).c_str(), rec.status.c_str(),
                        rec.winner.c_str(), rec.wall_s, rec.vars,
                        static_cast<unsigned long long>(
                            rec.conflicts));
        if (rec.status != "SAT" && rec.status != "UNSAT")
            all_decided = false;
    }

    if (want_metrics) {
        if (!sendAll(fd, "METRICS\n") || !reader.readLine(line)) {
            std::fprintf(stderr, "connection lost during metrics\n");
            ::close(fd);
            return 2;
        }
        // "METRICS" header, `name value` lines, then END.
        while (reader.readLine(line) &&
               line != service::kEndMarker)
            std::printf("%s\n", line.c_str());
    }

    if (want_shutdown) {
        const char *policy =
            shutdown_policy == service::DrainPolicy::CancelPending
                ? "cancel"
                : "finish";
        if (sendAll(fd, std::string("SHUTDOWN ") + policy + "\n") &&
            reader.readLine(line) && !quiet)
            std::printf("shutdown: %s\n", line.c_str());
    }

    sendAll(fd, "QUIT\n");
    ::close(fd);
    return strict && !all_decided ? 1 : 0;
}
