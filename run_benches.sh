#!/bin/bash
# Regenerate every table/figure: one binary per experiment
# (includes bench/portfolio_scaling, the portfolio racing
# trajectory), then smoke the batch DIMACS service end to end.
#
#   ./run_benches.sh           full run, writes BENCH_<name>.json
#   ./run_benches.sh --smoke   tiny inputs (HYQSAT_BENCH_TINY=1),
#                              portfolio_scaling only, writes
#                              BENCH_<name>_smoke.json
#
# Any bench that prints machine-readable "BENCH {json}" lines gets
# its trajectory collected into BENCH_<name><suffix>.json (a JSON
# array, one element per line) next to this script — that file is
# what CI validates and plots consume.
cd "$(dirname "$0")"

SMOKE=0
if [ "${1:-}" = "--smoke" ]; then
    SMOKE=1
fi

suffix=""
if [ "$SMOKE" = 1 ]; then
    export HYQSAT_BENCH_TINY=1
    suffix="_smoke"
fi

# Collect "^BENCH " JSON lines from a log into BENCH_<name><suffix>.json.
write_trajectory() {
    local name="$1" log="$2"
    grep -q '^BENCH ' "$log" || return 0
    local out="BENCH_${name}${suffix}.json"
    sed -n 's/^BENCH //p' "$log" | awk '
        BEGIN { print "[" }
        { if (NR > 1) printf(",\n"); printf("  %s", $0) }
        END { print "\n]" }' > "$out"
    echo "wrote $out"
}

run_bench() {
    local b="$1"
    local name log st
    name=$(basename "$b")
    echo "===== $b ====="
    log=$(mktemp)
    timeout 1500 "$b" | tee "$log"
    st=${PIPESTATUS[0]}
    write_trajectory "$name" "$log"
    rm -f "$log"
    echo
    return "$st"
}

if [ "$SMOKE" = 1 ]; then
    run_bench build/bench/portfolio_scaling || exit 1
    echo "ALL_BENCHES_DONE"
    exit 0
fi

for b in build/bench/*; do
    if [ -f "$b" ] && [ -x "$b" ]; then
        run_bench "$b"
    fi
done

# Batch service smoke: portfolio-race the bundled suite; --strict
# fails on any UNKNOWN/TIMEOUT/parse error.
if [ -x build/examples/batch_solver ] &&
   [ -x build/examples/generate_suite ]; then
    echo "===== batch_solver (suite smoke) ====="
    suite_dir=$(mktemp -d)
    trap 'rm -rf "$suite_dir"' EXIT
    build/examples/generate_suite "$suite_dir" >/dev/null &&
        timeout 1500 build/examples/batch_solver --dir "$suite_dir" \
            --workers 2 --jobs 1 --timeout-s 300 --strict
    echo
fi
echo "ALL_BENCHES_DONE"
