#!/bin/bash
# Regenerate every table/figure: one binary per experiment
# (includes bench/portfolio_scaling, the portfolio racing
# trajectory, and bench/micro_frontend, the frontend fast-path
# micro-benchmark), then smoke the batch DIMACS service end to end.
#
#   ./run_benches.sh           full run, writes BENCH_<name>.json
#   ./run_benches.sh --smoke   tiny inputs (HYQSAT_BENCH_TINY=1),
#                              portfolio_scaling + micro_frontend +
#                              micro_anneal + micro_simplify +
#                              micro_incremental only,
#                              writes BENCH_<name>_smoke.json
#
# Any bench that prints machine-readable "BENCH {json}" lines gets
# its trajectory collected into BENCH_<name><suffix>.json (a JSON
# array, one element per line) next to this script — that file is
# what CI validates and plots consume.
#
# Every bench/<name>.cpp is expected to have a built binary at
# build/bench/<name>; a missing binary fails the run immediately
# (a silently skipped bench looks like a passing one). A per-bench
# wall-clock summary is printed at the end.
#
# Threading knob: HYQSAT_POOL_THREADS caps the shared WorkPool the
# multi-read sampler rows (reads4/seq8) and the hybrid loop draw
# from. It is carried through to every bench; for SMOKE runs of
# micro_anneal it defaults to 2 when unset so the shared-pool rows
# report the same thread count on every CI runner (an explicit
# setting always wins). The dedicated-pool par64 rungs size
# themselves from the hardware and ignore the knob by design — the
# parallel_scaling bar must measure the machine, not the env.
cd "$(dirname "$0")"

SMOKE=0
if [ "${1:-}" = "--smoke" ]; then
    SMOKE=1
fi

suffix=""
if [ "$SMOKE" = 1 ]; then
    export HYQSAT_BENCH_TINY=1
    suffix="_smoke"
fi

SUMMARY=""

# Collect "^BENCH " JSON lines from a log into BENCH_<name><suffix>.json.
write_trajectory() {
    local name="$1" log="$2"
    grep -q '^BENCH ' "$log" || return 0
    local out="BENCH_${name}${suffix}.json"
    sed -n 's/^BENCH //p' "$log" | awk '
        BEGIN { print "[" }
        { if (NR > 1) printf(",\n"); printf("  %s", $0) }
        END { print "\n]" }' > "$out"
    echo "wrote $out"
}

run_bench() {
    local b="$1"
    local name log st t0 t1
    name=$(basename "$b")
    if [ ! -x "$b" ]; then
        echo "ERROR: bench binary $b is missing (build it first)" >&2
        exit 1
    fi
    echo "===== $b ====="
    log=$(mktemp)
    t0=$(date +%s.%N)
    timeout 1500 "$b" | tee "$log"
    st=${PIPESTATUS[0]}
    t1=$(date +%s.%N)
    write_trajectory "$name" "$log"
    rm -f "$log"
    SUMMARY+=$(printf '%-28s %8.2f s  exit %d' "$name" \
        "$(echo "$t1 $t0" | awk '{print $1 - $2}')" "$st")$'\n'
    echo
    return "$st"
}

print_summary() {
    echo "===== per-bench wall clock ====="
    printf '%s' "$SUMMARY"
}

if [ "$SMOKE" = 1 ]; then
    run_bench build/bench/portfolio_scaling || exit 1
    run_bench build/bench/micro_frontend || exit 1
    # Pin the shared pool for reproducible reads4/seq8 thread counts
    # across runners; a caller-provided value is respected.
    HYQSAT_POOL_THREADS="${HYQSAT_POOL_THREADS:-2}" \
        run_bench build/bench/micro_anneal || exit 1
    run_bench build/bench/micro_simplify || exit 1
    run_bench build/bench/micro_incremental || exit 1
    print_summary
    echo "ALL_BENCHES_DONE"
    exit 0
fi

# Fail fast when any expected binary is absent: every bench source
# must have a built, executable counterpart.
for src in bench/*.cpp; do
    name=$(basename "$src" .cpp)
    if [ ! -x "build/bench/$name" ]; then
        echo "ERROR: bench binary build/bench/$name is missing" \
             "(expected for $src; build the bench target first)" >&2
        exit 1
    fi
done

for b in build/bench/*; do
    if [ -f "$b" ] && [ -x "$b" ]; then
        run_bench "$b"
    fi
done

# Batch service smoke: portfolio-race the bundled suite; --strict
# fails on any UNKNOWN/TIMEOUT/parse error.
if [ -x build/examples/batch_solver ] &&
   [ -x build/examples/generate_suite ]; then
    echo "===== batch_solver (suite smoke) ====="
    suite_dir=$(mktemp -d)
    trap 'rm -rf "$suite_dir"' EXIT
    build/examples/generate_suite "$suite_dir" >/dev/null &&
        timeout 1500 build/examples/batch_solver --dir "$suite_dir" \
            --workers 2 --jobs 1 --timeout-s 300 --strict
    echo
fi
print_summary
echo "ALL_BENCHES_DONE"
