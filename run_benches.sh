#!/bin/bash
# Regenerate every table/figure: one binary per experiment.
cd "$(dirname "$0")"
for b in build/bench/*; do
    if [ -f "$b" ] && [ -x "$b" ]; then
        echo "===== $b ====="
        timeout 1500 "$b"
        echo
    fi
done
echo "ALL_BENCHES_DONE"
