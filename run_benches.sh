#!/bin/bash
# Regenerate every table/figure: one binary per experiment
# (includes bench/portfolio_scaling, the portfolio racing
# trajectory), then smoke the batch DIMACS service end to end.
cd "$(dirname "$0")"
for b in build/bench/*; do
    if [ -f "$b" ] && [ -x "$b" ]; then
        echo "===== $b ====="
        timeout 1500 "$b"
        echo
    fi
done

# Batch service smoke: portfolio-race the bundled suite; --strict
# fails on any UNKNOWN/TIMEOUT/parse error.
if [ -x build/examples/batch_solver ] &&
   [ -x build/examples/generate_suite ]; then
    echo "===== batch_solver (suite smoke) ====="
    suite_dir=$(mktemp -d)
    trap 'rm -rf "$suite_dir"' EXIT
    build/examples/generate_suite "$suite_dir" >/dev/null &&
        timeout 1500 build/examples/batch_solver --dir "$suite_dir" \
            --workers 2 --jobs 1 --timeout-s 300 --strict
    echo
fi
echo "ALL_BENCHES_DONE"
