/**
 * @file
 * Reproduces Figure 12: the relationship between problem difficulty
 * and HyQSAT speedup - (a) speedup vs conflict proportion (conflicts
 * per CDCL iteration) and (b) speedup vs classic CDCL solve time.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "util/table.h"

using namespace hyqsat;

int
main()
{
    std::printf("=== Figure 12: speedup vs problem difficulty ===\n");
    if (!bench::fullScale())
        std::printf("(reduced instance counts)\n");

    struct Point
    {
        std::string id;
        double conflict_proportion;
        double cdcl_ms;
        double speedup;
    };
    std::vector<Point> points;

    for (const auto &benchmark : gen::BenchmarkSuite::all()) {
        const int count = bench::instancesFor(benchmark);
        double conflicts = 0, iters = 0, cdcl_s = 0, hyq_s = 0;
        for (int i = 0; i < count; ++i) {
            const auto cnf = benchmark.make(i, 0xf12);
            const auto classic = core::solveClassicCdcl(
                cnf, sat::SolverOptions::minisatStyle());
            core::HybridSolver hybrid(bench::noisyConfig(i));
            const auto result = hybrid.solve(cnf);
            conflicts += static_cast<double>(classic.stats.conflicts);
            iters += static_cast<double>(
                std::max<std::uint64_t>(classic.stats.iterations, 1));
            cdcl_s += classic.time.cdcl_s;
            hyq_s += result.time.endToEnd();
        }
        points.push_back({benchmark.id, conflicts / iters,
                          1e3 * cdcl_s,
                          bench::ratio(cdcl_s, hyq_s)});
    }

    std::printf("\n(a) speedup vs conflict proportion\n");
    auto by_conflict = points;
    std::sort(by_conflict.begin(), by_conflict.end(),
              [](const Point &a, const Point &b) {
                  return a.conflict_proportion <
                         b.conflict_proportion;
              });
    Table ta;
    ta.setHeader({"Bench", "Conflicts/iter", "Speedup"});
    for (const auto &p : by_conflict)
        ta.addRow({p.id, Table::num(p.conflict_proportion, 2),
                   Table::num(p.speedup, 2)});
    ta.print();

    std::printf("\n(b) speedup vs classic CDCL time\n");
    auto by_time = points;
    std::sort(by_time.begin(), by_time.end(),
              [](const Point &a, const Point &b) {
                  return a.cdcl_ms < b.cdcl_ms;
              });
    Table tb;
    tb.setHeader({"Bench", "CDCL ms", "Speedup"});
    for (const auto &p : by_time)
        tb.addRow({p.id, Table::num(p.cdcl_ms, 2),
                   Table::num(p.speedup, 2)});
    tb.print();

    std::printf("\nPaper (Fig. 12): speedup correlates positively "
                "with both conflict proportion and CDCL solve time; "
                "benchmarks with tiny conflict proportion (II, BP) "
                "fall below 1x. Shape to check: the speedup column "
                "trends upward down each table.\n");
    return 0;
}
