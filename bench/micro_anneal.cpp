/**
 * @file
 * Annealer hot-loop micro-benchmark on an encoded random 3-SAT Ising
 * model (the fig08-style workload the hybrid loop ships to the
 * device). Paths:
 *
 *   naive   the seed per-sample path, faithfully replayed: recompile
 *           the Ising model from the QUBO and rebuild the vector-of-
 *           vectors adjacency on EVERY sample() call (that is what
 *           the pre-rewrite annealer did), then run the frozen
 *           reference sweep loop (local field re-scanned per
 *           proposal, full energy re-scan at the end);
 *   csr     the production SaSampler: flat CSR adjacency compiled
 *           once per model, cached local fields updated
 *           incrementally on accepted flips (O(1) delta reads,
 *           running energy), exp() skipped for downhill moves;
 *   reads4  the production sampler with num_reads = 4 independent
 *           chains raced on the shared WorkPool, best energy first;
 *   *_overhead  the naive/csr pair at sweeps = 1, isolating the
 *           fixed per-sample cost (model recompile + adjacency
 *           rebuild) that the rewrite hoists out of the per-call
 *           path.
 *
 * One "BENCH {json}" line is emitted per path. Before any timing the
 * bench asserts csr reproduces the reference bit for bit (same
 * spins, same RNG stream) from the same seed — a speedup over a
 * sampler we no longer match would be meaningless.
 *
 * Measured reality, recorded here so the bars below make sense: at
 * production sweep counts the Metropolis loop is draw-bound — on
 * encoded 3-SAT with the default geometric schedule ~75% of
 * proposals are accepted, so the seed's O(deg) field re-scan per
 * proposal and the rewrite's O(deg) field update per ACCEPT nearly
 * cancel, and both sides share the same irreducible per-proposal
 * cost (data-dependent branches + the contractual RNG draws). The
 * full-schedule single-chain gain is therefore modest (~1.1-1.3x on
 * commodity x86) and the >= 3x structural win lives in the fixed
 * per-sample overhead, which the sweeps = 1 rung isolates; see
 * DESIGN.md "Annealer hot loop".
 *
 * Acceptance bars (full scale only): overhead rung >= 3x; full-
 * schedule csr >= 1x (regression guard, must never be slower than
 * the seed path); reads4 best-energy throughput >= 2x the
 * single-read throughput when the host has >= 4 cores.
 *
 *   ./micro_anneal [--smoke]    (HYQSAT_BENCH_TINY=1 also works)
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "anneal/sa_reference.h"
#include "anneal/sa_sampler.h"
#include "gen/random_sat.h"
#include "qubo/encoder.h"
#include "qubo/qubo.h"
#include "util/timer.h"

using namespace hyqsat;

namespace {

/** Random 3-SAT encoded to the normalized QUBO (fig08 style). */
qubo::QuboModel
encodedSatQubo(int vars, int clauses, std::uint64_t seed)
{
    Rng rng(seed);
    const sat::Cnf cnf = gen::uniformRandom3Sat(vars, clauses, rng);
    std::vector<sat::LitVec> cls;
    cls.reserve(static_cast<std::size_t>(cnf.numClauses()));
    for (int c = 0; c < cnf.numClauses(); ++c)
        cls.push_back(cnf.clause(c));
    return qubo::encodeClauses(cls).normalized;
}

/**
 * The seed annealer's per-sample path at the logical level: convert
 * the QUBO and rebuild the reference sampler's adjacency from
 * scratch, then sweep. The rewrite compiles once per model instead.
 */
anneal::SaResult
naiveSampleFresh(const qubo::QuboModel &q, const anneal::SaOptions &opts,
                 Rng &rng)
{
    const qubo::IsingModel model = qubo::quboToIsing(q);
    anneal::SaReferenceSampler sampler(model);
    return sampler.sample(opts, rng);
}

struct PathTiming
{
    double wall_s = 0.0;
    double per_sample_us = 0.0;
    double best_energy = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = std::getenv("HYQSAT_BENCH_TINY") != nullptr;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--smoke"))
            smoke = true;
    }

    const int vars = smoke ? 40 : 180;
    const int clauses = static_cast<int>(vars * 4.2);
    const int reps = smoke ? 20 : 200;
    const int overhead_reps = smoke ? 60 : 400;
    anneal::SaOptions opts;
    opts.sweeps = smoke ? 64 : 256;

    const qubo::QuboModel qubo =
        encodedSatQubo(vars, clauses, 0xF1608BE7ull);
    const qubo::IsingModel model = qubo::quboToIsing(qubo);

    std::printf("=== micro_anneal: SA per-sample cost on an encoded "
                "3-SAT model (%d vars, %d clauses -> %d spins, %d "
                "sweeps, %d samples/path) ===\n",
                vars, clauses, model.numSpins(), opts.sweeps, reps);

    anneal::SaReferenceSampler naive_sampler(model);
    anneal::SaSampler csr_sampler(model);

    // Exactness gate: the rewrite must still BE the reference
    // algorithm (same spins, same draw stream) before we time it.
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        Rng a(seed), b(seed);
        const anneal::SaResult want = naive_sampler.sample(opts, a);
        const anneal::SaResult got = csr_sampler.sample(opts, b);
        if (got.spins != want.spins || a.next() != b.next() ||
            std::abs(got.energy - want.energy) > 1e-9) {
            std::printf("FAIL: csr sampler diverges from the "
                        "reference on seed %llu\n",
                        static_cast<unsigned long long>(seed));
            return 1;
        }
    }

    PathTiming naive, csr, reads4, naive_oh, csr_oh;

    {
        Timer t;
        Rng rng(0xBEBADA5Eull);
        double best = 0.0;
        for (int i = 0; i < reps; ++i) {
            const auto r = naiveSampleFresh(qubo, opts, rng);
            best = i == 0 ? r.energy : std::min(best, r.energy);
        }
        naive.wall_s = t.seconds();
        naive.per_sample_us = naive.wall_s * 1e6 / reps;
        naive.best_energy = best;
    }
    {
        Timer t;
        Rng rng(0xBEBADA5Eull);
        double best = 0.0;
        for (int i = 0; i < reps; ++i) {
            const auto r = csr_sampler.sample(opts, rng);
            best = i == 0 ? r.energy : std::min(best, r.energy);
        }
        csr.wall_s = t.seconds();
        csr.per_sample_us = csr.wall_s * 1e6 / reps;
        csr.best_energy = best;
    }
    {
        anneal::SaOptions multi = opts;
        multi.num_reads = 4;
        Timer t;
        Rng rng(0xBEBADA5Eull);
        double best = 0.0;
        for (int i = 0; i < reps; ++i) {
            const auto r = csr_sampler.sample(multi, rng);
            best = i == 0 ? r.energy : std::min(best, r.energy);
        }
        reads4.wall_s = t.seconds();
        reads4.per_sample_us = reads4.wall_s * 1e6 / reps;
        reads4.best_energy = best;
    }
    {
        anneal::SaOptions one = opts;
        one.sweeps = 1;
        {
            Timer t;
            Rng rng(0xBEBADA5Eull);
            double best = 0.0;
            for (int i = 0; i < overhead_reps; ++i) {
                const auto r = naiveSampleFresh(qubo, one, rng);
                best = i == 0 ? r.energy : std::min(best, r.energy);
            }
            naive_oh.wall_s = t.seconds();
            naive_oh.per_sample_us =
                naive_oh.wall_s * 1e6 / overhead_reps;
            naive_oh.best_energy = best;
        }
        {
            Timer t;
            Rng rng(0xBEBADA5Eull);
            double best = 0.0;
            for (int i = 0; i < overhead_reps; ++i) {
                const auto r = csr_sampler.sample(one, rng);
                best = i == 0 ? r.energy : std::min(best, r.energy);
            }
            csr_oh.wall_s = t.seconds();
            csr_oh.per_sample_us = csr_oh.wall_s * 1e6 / overhead_reps;
            csr_oh.best_energy = best;
        }
    }

    const double csr_speedup = naive.per_sample_us / csr.per_sample_us;
    const double overhead_speedup =
        naive_oh.per_sample_us / csr_oh.per_sample_us;
    // Best-energy throughput: chains completed per unit wall time,
    // relative to the single-read sampler. 4.0 = perfectly linear.
    const double reads_scaling =
        4.0 * csr.per_sample_us / reads4.per_sample_us;
    const unsigned hw = std::thread::hardware_concurrency();

    std::printf("naive           %9.2f us/sample (best energy %.3f)\n",
                naive.per_sample_us, naive.best_energy);
    std::printf("csr             %9.2f us/sample (%.2fx vs naive, bar "
                ">= 1x; best energy %.3f)\n",
                csr.per_sample_us, csr_speedup, csr.best_energy);
    std::printf("reads4          %9.2f us/sample (throughput scaling "
                "%.2fx of 4x ideal, bar >= 2x on >= 4 cores [%u]; "
                "best energy %.3f)\n",
                reads4.per_sample_us, reads_scaling, hw,
                reads4.best_energy);
    std::printf("naive_overhead  %9.2f us/sample at sweeps=1\n",
                naive_oh.per_sample_us);
    std::printf("csr_overhead    %9.2f us/sample at sweeps=1 (%.2fx "
                "vs naive, bar >= 3x: per-sample rebuild hoisted)\n",
                csr_oh.per_sample_us, overhead_speedup);

    const struct
    {
        const char *path;
        const PathTiming *t;
        int num_reads;
        int sweeps;
        int row_reps;
        double speedup_vs_naive;
    } rows[] = {{"naive", &naive, 1, opts.sweeps, reps, 1.0},
                {"csr", &csr, 1, opts.sweeps, reps, csr_speedup},
                {"reads4", &reads4, 4, opts.sweeps, reps,
                 naive.per_sample_us / reads4.per_sample_us},
                {"naive_overhead", &naive_oh, 1, 1, overhead_reps, 1.0},
                {"csr_overhead", &csr_oh, 1, 1, overhead_reps,
                 overhead_speedup}};
    for (const auto &row : rows) {
        std::printf("BENCH {\"bench\":\"micro_anneal\","
                    "\"path\":\"%s\",\"wall_s\":%.6f,"
                    "\"per_sample_us\":%.3f,\"speedup_vs_naive\":%.3f,"
                    "\"num_reads\":%d,\"reads_scaling\":%.3f,"
                    "\"overhead_speedup\":%.3f,"
                    "\"reps\":%d,\"spins\":%d,\"sweeps\":%d,"
                    "\"best_energy\":%.6f}\n",
                    row.path, row.t->wall_s, row.t->per_sample_us,
                    row.speedup_vs_naive, row.num_reads, reads_scaling,
                    overhead_speedup, row.row_reps, model.numSpins(),
                    row.sweeps, row.t->best_energy);
    }

    // Bars apply at full scale only: smoke sizes are chosen for CI
    // latency, where timing noise dominates.
    if (!smoke && overhead_speedup < 3.0) {
        std::printf("FAIL: per-sample overhead %.2fx < 3x over the "
                    "seed rebuild path\n",
                    overhead_speedup);
        return 1;
    }
    if (!smoke && csr_speedup < 1.0) {
        std::printf("FAIL: csr %.2fx slower than the seed per-sample "
                    "path at full sweeps\n",
                    csr_speedup);
        return 1;
    }
    if (!smoke && hw >= 4 && reads_scaling < 2.0) {
        std::printf("FAIL: reads4 throughput scaling %.2fx < 2x\n",
                    reads_scaling);
        return 1;
    }
    return 0;
}
