/**
 * @file
 * Annealer hot-loop micro-benchmark on an encoded random 3-SAT Ising
 * model (the fig08-style workload the hybrid loop ships to the
 * device). Paths:
 *
 *   naive   the seed per-sample path, faithfully replayed: recompile
 *           the Ising model from the QUBO and rebuild the vector-of-
 *           vectors adjacency on EVERY sample() call (that is what
 *           the pre-rewrite annealer did), then run the frozen
 *           reference sweep loop (local field re-scanned per
 *           proposal, full energy re-scan at the end);
 *   csr     the production SaSampler: flat CSR adjacency compiled
 *           once per model, cached local fields updated
 *           incrementally on accepted flips (O(1) delta reads,
 *           running energy), exp() skipped for downhill moves;
 *   reads4  the production sampler with num_reads = 4 independent
 *           chains raced on the shared WorkPool, best energy first;
 *   seq8    num_reads = 8 on the same WorkPool path — the sequential
 *           baseline the lockstep kernel is judged against (on one
 *           core the pool degrades to running the reads back to
 *           back);
 *   batch8  num_reads = 8 through the lockstep SIMD batch kernel
 *           (SaOptions::lockstep): all 8 reads advance through ONE
 *           instruction stream over the SoA layout, uniforms come
 *           from the BlockRng bulk fill and the Metropolis accept
 *           test is a table compare, on the widest ISA the host
 *           runs;
 *   batch8_scalar  the same lockstep run pinned to the scalar
 *           fallback (HYQSAT_SIMD=scalar) — by contract bit-identical
 *           to batch8, timed to show what vector width alone buys;
 *   par64_t1  num_reads = 64 through the two-level group scheduler
 *           (8 lockstep groups of 8 lanes) pinned to one execution
 *           context (a zero-helper WorkPool) — the single-thread
 *           baseline the parallel rung is judged against;
 *   par64   the same 64-read run with the groups fanned across a
 *           dedicated WorkPool sized to the host (caller + up to 7
 *           helpers, capped at the group count) — the compounding
 *           claim: vector width per core times cores;
 *   *_overhead  the naive/csr pair at sweeps = 1, isolating the
 *           fixed per-sample cost (model recompile + adjacency
 *           rebuild) that the rewrite hoists out of the per-call
 *           path.
 *
 * One "BENCH {json}" line is emitted per path; every row carries
 * reads_per_s (completed reads per second of wall time — the
 * throughput currency all multi-read comparisons use) and the batch8
 * row carries its sorted per-read energies so downstream checks can
 * assert best-of-N monotonicity. Before any timing the bench asserts
 * (a) csr reproduces the frozen reference bit for bit from the same
 * seed, (b) the lockstep kernel on the active ISA reproduces its
 * scalar fallback bit for bit, and (c) the group scheduler on the
 * parallel pool reproduces the single-context run bit for bit — a
 * speedup over a sampler we no longer match would be meaningless.
 *
 * Measured reality, recorded here so the bars below make sense: at
 * production sweep counts the scalar Metropolis loop is draw-bound —
 * on encoded 3-SAT with the default geometric schedule ~75% of
 * proposals are accepted, so the seed's O(deg) field re-scan per
 * proposal and the rewrite's O(deg) field update per ACCEPT nearly
 * cancel, and both sides share the same irreducible per-proposal
 * cost (data-dependent branches + the contractual RNG draws). The
 * full-schedule single-chain gain is therefore modest (~1.1-1.3x on
 * commodity x86); the structural wins are the fixed per-sample
 * overhead (sweeps = 1 rung) and the lockstep path, which amortizes
 * one instruction stream over 8 reads.
 *
 * Acceptance bars (full scale only): overhead rung >= 3x; full-
 * schedule csr >= 1x (regression guard, must never be slower than
 * the seed path); lockstep batch8 per-read throughput >= 3x the
 * single-read csr path (reads_scaling, single-threaded on both
 * sides, so the bar is core-count independent); parallel par64
 * throughput >= 2x the single-context par64_t1 run
 * (parallel_scaling — only enforced when the host has >= 4 hardware
 * threads, because the rung needs real cores to scale across).
 *
 *   ./micro_anneal [--smoke]    (HYQSAT_BENCH_TINY=1 also works)
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "anneal/sa_batch.h"
#include "anneal/sa_reference.h"
#include "anneal/sa_sampler.h"
#include "anneal/work_pool.h"
#include "gen/random_sat.h"
#include "qubo/encoder.h"
#include "qubo/qubo.h"
#include "util/simd.h"
#include "util/timer.h"

using namespace hyqsat;

namespace {

/** Random 3-SAT encoded to the normalized QUBO (fig08 style). */
qubo::QuboModel
encodedSatQubo(int vars, int clauses, std::uint64_t seed)
{
    Rng rng(seed);
    const sat::Cnf cnf = gen::uniformRandom3Sat(vars, clauses, rng);
    std::vector<sat::LitVec> cls;
    cls.reserve(static_cast<std::size_t>(cnf.numClauses()));
    for (int c = 0; c < cnf.numClauses(); ++c)
        cls.push_back(cnf.clause(c));
    return qubo::encodeClauses(cls).normalized;
}

/**
 * The seed annealer's per-sample path at the logical level: convert
 * the QUBO and rebuild the reference sampler's adjacency from
 * scratch, then sweep. The rewrite compiles once per model instead.
 */
anneal::SaResult
naiveSampleFresh(const qubo::QuboModel &q, const anneal::SaOptions &opts,
                 Rng &rng)
{
    const qubo::IsingModel model = qubo::quboToIsing(q);
    anneal::SaReferenceSampler sampler(model);
    return sampler.sample(opts, rng);
}

struct PathTiming
{
    double wall_s = 0.0;
    double per_sample_us = 0.0;
    double reads_per_s = 0.0;
    double best_energy = 0.0;
};

/** Time @p reps calls of @p fn (each completing @p reads reads). */
template <typename Fn>
PathTiming
timePath(int reps, int reads, Fn &&fn)
{
    PathTiming out;
    Timer t;
    double best = 0.0;
    for (int i = 0; i < reps; ++i) {
        const double e = fn(i);
        best = i == 0 ? e : std::min(best, e);
    }
    out.wall_s = t.seconds();
    out.per_sample_us = out.wall_s * 1e6 / reps;
    out.reads_per_s =
        static_cast<double>(reads) * reps / out.wall_s;
    out.best_energy = best;
    return out;
}

/** RAII override of HYQSAT_SIMD, restoring the prior value. */
class SimdEnvOverride
{
  public:
    explicit SimdEnvOverride(const char *value)
    {
        const char *old = std::getenv("HYQSAT_SIMD");
        had_old_ = old != nullptr;
        if (had_old_)
            old_ = old;
        ::setenv("HYQSAT_SIMD", value, 1);
    }
    ~SimdEnvOverride()
    {
        if (had_old_)
            ::setenv("HYQSAT_SIMD", old_.c_str(), 1);
        else
            ::unsetenv("HYQSAT_SIMD");
    }

  private:
    bool had_old_ = false;
    std::string old_;
};

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = std::getenv("HYQSAT_BENCH_TINY") != nullptr;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--smoke"))
            smoke = true;
    }

    const int vars = smoke ? 40 : 180;
    const int clauses = static_cast<int>(vars * 4.2);
    const int reps = smoke ? 20 : 200;
    const int multi_reps = smoke ? 10 : 60;
    const int overhead_reps = smoke ? 60 : 400;
    anneal::SaOptions opts;
    opts.sweeps = smoke ? 64 : 256;

    const qubo::QuboModel qubo =
        encodedSatQubo(vars, clauses, 0xF1608BE7ull);
    const qubo::IsingModel model = qubo::quboToIsing(qubo);

    std::printf("=== micro_anneal: SA per-sample cost on an encoded "
                "3-SAT model (%d vars, %d clauses -> %d spins, %d "
                "sweeps, %d samples/path) ===\n",
                vars, clauses, model.numSpins(), opts.sweeps, reps);

    anneal::SaReferenceSampler naive_sampler(model);
    anneal::SaSampler csr_sampler(model);

    // Exactness gate 1: the rewrite must still BE the reference
    // algorithm (same spins, same draw stream) before we time it.
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        Rng a(seed), b(seed);
        const anneal::SaResult want = naive_sampler.sample(opts, a);
        const anneal::SaResult got = csr_sampler.sample(opts, b);
        if (got.spins != want.spins || a.next() != b.next() ||
            std::abs(got.energy - want.energy) > 1e-9) {
            std::printf("FAIL: csr sampler diverges from the "
                        "reference on seed %llu\n",
                        static_cast<unsigned long long>(seed));
            return 1;
        }
    }

    anneal::SaOptions multi4 = opts;
    multi4.num_reads = 4;
    anneal::SaOptions multi8 = opts;
    multi8.num_reads = 8;
    anneal::SaOptions lock8 = multi8;
    lock8.lockstep = true;

    // Exactness gate 2: the lockstep kernel on the active ISA must
    // match its scalar fallback bit for bit (the batched contract).
    const simd::Isa active = simd::activeIsa();
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
        Rng a(seed), b(seed);
        const auto wide = csr_sampler.sampleAll(lock8, a);
        std::vector<anneal::SaResult> narrow;
        {
            SimdEnvOverride env("scalar");
            narrow = csr_sampler.sampleAll(lock8, b);
        }
        bool same = wide.size() == narrow.size();
        for (std::size_t r = 0; same && r < wide.size(); ++r)
            same = wide[r].spins == narrow[r].spins &&
                   wide[r].energy == narrow[r].energy;
        if (!same) {
            std::printf("FAIL: lockstep %s kernel diverges from the "
                        "scalar fallback on seed %llu\n",
                        simd::isaName(active),
                        static_cast<unsigned long long>(seed));
            return 1;
        }
    }

    // Parallel rung setup: 64 reads auto-group into 8 lockstep
    // groups; the dedicated pool gives the caller up to 7 helpers
    // (one context per group) without oversubscribing small hosts.
    const unsigned hw_threads = std::thread::hardware_concurrency();
    const int par_helpers = std::max(
        1, std::min(8, static_cast<int>(hw_threads)) - 1);
    anneal::SaOptions par64_opts = opts;
    par64_opts.num_reads = 64;
    par64_opts.lockstep = true;
    const auto par_compiled =
        anneal::SaCompiled::build(model, /*include_zero=*/false);
    const auto runPar = [&](std::uint64_t base,
                            anneal::WorkPool &pool) {
        return anneal::sampleLockstep(
            par_compiled, par_compiled.csr.h.data(),
            par_compiled.csr.w.data(), par64_opts, base, active,
            &pool);
    };
    anneal::WorkPool par_serial(0);
    anneal::WorkPool par_pool(par_helpers);

    // Exactness gate 3: the group scheduler must produce the same 64
    // reads whether the groups share one execution context or fan
    // out across the pool (the cross-thread-count contract).
    {
        const auto one = runPar(0xD15C0ull, par_serial);
        const auto many = runPar(0xD15C0ull, par_pool);
        bool same = one.size() == many.size();
        for (std::size_t r = 0; same && r < one.size(); ++r)
            same = one[r].spins == many[r].spins &&
                   one[r].energy == many[r].energy;
        if (!same) {
            std::printf("FAIL: parallel group scheduler diverges "
                        "from the single-context run\n");
            return 1;
        }
    }

    constexpr std::uint64_t kPathSeed = 0xBEBADA5Eull;
    Rng naive_rng(kPathSeed), csr_rng(kPathSeed), r4_rng(kPathSeed);
    Rng s8_rng(kPathSeed), b8_rng(kPathSeed), b8s_rng(kPathSeed);
    const PathTiming naive = timePath(reps, 1, [&](int) {
        return naiveSampleFresh(qubo, opts, naive_rng).energy;
    });
    const PathTiming csr = timePath(reps, 1, [&](int) {
        return csr_sampler.sample(opts, csr_rng).energy;
    });
    const PathTiming reads4 = timePath(reps, 4, [&](int) {
        return csr_sampler.sample(multi4, r4_rng).energy;
    });
    const PathTiming seq8 = timePath(multi_reps, 8, [&](int) {
        return csr_sampler.sample(multi8, s8_rng).energy;
    });
    const PathTiming batch8 = timePath(multi_reps, 8, [&](int) {
        return csr_sampler.sample(lock8, b8_rng).energy;
    });
    PathTiming batch8_scalar;
    {
        SimdEnvOverride env("scalar");
        batch8_scalar = timePath(multi_reps, 8, [&](int) {
            return csr_sampler.sample(lock8, b8s_rng).energy;
        });
    }

    // Parallel rungs: identical work (same options, same per-rep
    // base seed) on one context versus the pool, so the ratio is
    // pure scheduling.
    const int par_reps = smoke ? 2 : 10;
    const auto parBest = [](const std::vector<anneal::SaResult> &rs) {
        double best = rs.front().energy;
        for (const auto &r : rs)
            best = std::min(best, r.energy);
        return best;
    };
    const PathTiming par64_t1 = timePath(par_reps, 64, [&](int i) {
        return parBest(runPar(kPathSeed + i, par_serial));
    });
    const PathTiming par64 = timePath(par_reps, 64, [&](int i) {
        return parBest(runPar(kPathSeed + i, par_pool));
    });

    // One representative lockstep sampleAll: its sorted per-read
    // energies go on the batch8 row so downstream checks can assert
    // best-of-N monotonicity without rerunning the bench.
    std::vector<double> read_energies;
    {
        Rng rng(kPathSeed);
        for (const auto &r : csr_sampler.sampleAll(lock8, rng))
            read_energies.push_back(r.energy);
    }

    PathTiming naive_oh, csr_oh;
    {
        anneal::SaOptions one = opts;
        one.sweeps = 1;
        Rng noh_rng(kPathSeed), coh_rng(kPathSeed);
        naive_oh = timePath(overhead_reps, 1, [&](int) {
            return naiveSampleFresh(qubo, one, noh_rng).energy;
        });
        csr_oh = timePath(overhead_reps, 1, [&](int) {
            return csr_sampler.sample(one, coh_rng).energy;
        });
    }

    const double csr_speedup = naive.per_sample_us / csr.per_sample_us;
    const double overhead_speedup =
        naive_oh.per_sample_us / csr_oh.per_sample_us;
    // reads_scaling is gated on the lockstep path: how many times the
    // single-read csr throughput one core delivers when 8 reads share
    // one instruction stream. Both sides are single-threaded, so the
    // ratio is core-count independent.
    const double reads_scaling = batch8.reads_per_s / csr.reads_per_s;
    const double lockstep_vs_seq = batch8.reads_per_s / seq8.reads_per_s;
    const double vector_speedup =
        batch8.reads_per_s / batch8_scalar.reads_per_s;
    const double parallel_scaling =
        par64.reads_per_s / par64_t1.reads_per_s;
    const unsigned hw = hw_threads;

    std::printf("naive           %9.2f us/sample  %9.0f reads/s "
                "(best energy %.3f)\n",
                naive.per_sample_us, naive.reads_per_s,
                naive.best_energy);
    std::printf("csr             %9.2f us/sample  %9.0f reads/s "
                "(%.2fx vs naive, bar >= 1x; best energy %.3f)\n",
                csr.per_sample_us, csr.reads_per_s, csr_speedup,
                csr.best_energy);
    std::printf("reads4          %9.2f us/sample  %9.0f reads/s "
                "(WorkPool, %u cores; best energy %.3f)\n",
                reads4.per_sample_us, reads4.reads_per_s, hw,
                reads4.best_energy);
    std::printf("seq8            %9.2f us/sample  %9.0f reads/s "
                "(WorkPool baseline; best energy %.3f)\n",
                seq8.per_sample_us, seq8.reads_per_s,
                seq8.best_energy);
    std::printf("batch8          %9.2f us/sample  %9.0f reads/s "
                "(lockstep %s: %.2fx csr per-read, bar >= 3x; "
                "%.2fx vs seq8; best energy %.3f)\n",
                batch8.per_sample_us, batch8.reads_per_s,
                simd::isaName(active), reads_scaling, lockstep_vs_seq,
                batch8.best_energy);
    std::printf("batch8_scalar   %9.2f us/sample  %9.0f reads/s "
                "(lockstep scalar fallback; vector width buys "
                "%.2fx)\n",
                batch8_scalar.per_sample_us, batch8_scalar.reads_per_s,
                vector_speedup);
    std::printf("par64_t1        %9.2f us/sample  %9.0f reads/s "
                "(8 groups, 1 context; best energy %.3f)\n",
                par64_t1.per_sample_us, par64_t1.reads_per_s,
                par64_t1.best_energy);
    std::printf("par64           %9.2f us/sample  %9.0f reads/s "
                "(8 groups, %d contexts of %u hw threads: %.2fx "
                "single-context, bar >= 2x on >= 4 cores; best "
                "energy %.3f)\n",
                par64.per_sample_us, par64.reads_per_s,
                par_helpers + 1, hw, parallel_scaling,
                par64.best_energy);
    std::printf("naive_overhead  %9.2f us/sample at sweeps=1\n",
                naive_oh.per_sample_us);
    std::printf("csr_overhead    %9.2f us/sample at sweeps=1 (%.2fx "
                "vs naive, bar >= 3x: per-sample rebuild hoisted)\n",
                csr_oh.per_sample_us, overhead_speedup);

    // Execution contexts per row: the multi-read WorkPool rows use
    // the shared pool plus the caller; lockstep batch rows run one
    // group on the caller alone; par64 adds the dedicated helpers.
    const int shared_contexts =
        anneal::WorkPool::shared().numThreads() + 1;
    const struct
    {
        const char *path;
        const PathTiming *t;
        const char *isa;
        int num_reads;
        int threads;
        int sweeps;
        int row_reps;
        double speedup_vs_naive;
    } rows[] = {{"naive", &naive, "scalar", 1, 1, opts.sweeps, reps,
                 1.0},
                {"csr", &csr, "scalar", 1, 1, opts.sweeps, reps,
                 csr_speedup},
                {"reads4", &reads4, "scalar", 4, shared_contexts,
                 opts.sweeps, reps,
                 naive.per_sample_us / reads4.per_sample_us},
                {"seq8", &seq8, "scalar", 8, shared_contexts,
                 opts.sweeps, multi_reps,
                 naive.per_sample_us / seq8.per_sample_us},
                {"batch8", &batch8, simd::isaName(active), 8, 1,
                 opts.sweeps, multi_reps,
                 naive.per_sample_us / batch8.per_sample_us},
                {"batch8_scalar", &batch8_scalar, "scalar", 8, 1,
                 opts.sweeps, multi_reps,
                 naive.per_sample_us / batch8_scalar.per_sample_us},
                {"par64_t1", &par64_t1, simd::isaName(active), 64, 1,
                 opts.sweeps, par_reps,
                 naive.per_sample_us * 64 / par64_t1.per_sample_us},
                {"par64", &par64, simd::isaName(active), 64,
                 par_helpers + 1, opts.sweeps, par_reps,
                 naive.per_sample_us * 64 / par64.per_sample_us},
                {"naive_overhead", &naive_oh, "scalar", 1, 1, 1,
                 overhead_reps, 1.0},
                {"csr_overhead", &csr_oh, "scalar", 1, 1, 1,
                 overhead_reps, overhead_speedup}};
    for (const auto &row : rows) {
        std::printf("BENCH {\"bench\":\"micro_anneal\","
                    "\"path\":\"%s\",\"isa\":\"%s\",\"wall_s\":%.6f,"
                    "\"per_sample_us\":%.3f,\"reads_per_s\":%.1f,"
                    "\"speedup_vs_naive\":%.3f,"
                    "\"num_reads\":%d,\"threads\":%d,"
                    "\"reads_scaling\":%.3f,"
                    "\"lockstep_vs_seq\":%.3f,"
                    "\"parallel_scaling\":%.3f,"
                    "\"overhead_speedup\":%.3f,"
                    "\"reps\":%d,\"spins\":%d,\"sweeps\":%d,"
                    "\"best_energy\":%.6f",
                    row.path, row.isa, row.t->wall_s,
                    row.t->per_sample_us, row.t->reads_per_s,
                    row.speedup_vs_naive, row.num_reads, row.threads,
                    reads_scaling, lockstep_vs_seq, parallel_scaling,
                    overhead_speedup, row.row_reps,
                    model.numSpins(), row.sweeps, row.t->best_energy);
        if (!std::strcmp(row.path, "batch8")) {
            std::printf(",\"read_energies\":[");
            for (std::size_t k = 0; k < read_energies.size(); ++k)
                std::printf("%s%.6f", k ? "," : "", read_energies[k]);
            std::printf("]");
        }
        std::printf("}\n");
    }

    // Bars apply at full scale only: smoke sizes are chosen for CI
    // latency, where timing noise dominates.
    if (!smoke && overhead_speedup < 3.0) {
        std::printf("FAIL: per-sample overhead %.2fx < 3x over the "
                    "seed rebuild path\n",
                    overhead_speedup);
        return 1;
    }
    if (!smoke && csr_speedup < 1.0) {
        std::printf("FAIL: csr %.2fx slower than the seed per-sample "
                    "path at full sweeps\n",
                    csr_speedup);
        return 1;
    }
    if (!smoke && reads_scaling < 3.0) {
        std::printf("FAIL: lockstep batch8 per-read throughput "
                    "%.2fx < 3x the single-read csr path\n",
                    reads_scaling);
        return 1;
    }
    // The compounding bar needs real cores: on < 4 hardware threads
    // the pool cannot reach 2x by construction, so only report.
    if (!smoke && hw >= 4 && parallel_scaling < 2.0) {
        std::printf("FAIL: parallel group scheduler %.2fx < 2x the "
                    "single-context run on %u hardware threads\n",
                    parallel_scaling, hw);
        return 1;
    }
    return 0;
}
