/**
 * @file
 * Reproduces Table I: iteration counts of classic CDCL (MiniSat
 * configuration) vs HyQSAT on the noise-free simulator, with the
 * avg / geomean / max / min reduction columns, over the 14-benchmark
 * suite.
 */

#include <cstdio>

#include "bench/common.h"
#include "util/stats.h"
#include "util/table.h"

using namespace hyqsat;

int
main()
{
    std::printf("=== Table I: iteration reduction, classic CDCL vs "
                "HyQSAT (noise-free simulator) ===\n");
    if (!bench::fullScale())
        std::printf("(reduced instance counts; "
                    "HYQSAT_BENCH_SCALE=full for paper-sized runs)\n");

    Table table;
    table.setHeader({"Bench", "Domain", "#Var", "#Cls", "#Prob",
                     "CDCL it", "HyQSAT it", "Avg red", "Geo red",
                     "Max red", "Min red"});

    OnlineStats overall_avg, overall_geo, overall_max, overall_min;
    for (const auto &benchmark : gen::BenchmarkSuite::all()) {
        const int count = bench::instancesFor(benchmark);
        OnlineStats cdcl_iters, hyq_iters, reductions;
        int vars_lo = INT32_MAX, vars_hi = 0;
        int cls_lo = INT32_MAX, cls_hi = 0;

        for (int i = 0; i < count; ++i) {
            const auto cnf = benchmark.make(i, 0x7ab1e);
            vars_lo = std::min(vars_lo, cnf.numVars());
            vars_hi = std::max(vars_hi, cnf.numVars());
            cls_lo = std::min(cls_lo, cnf.numClauses());
            cls_hi = std::max(cls_hi, cnf.numClauses());

            const auto classic = core::solveClassicCdcl(
                cnf, sat::SolverOptions::minisatStyle());
            core::HybridSolver hybrid(bench::noiseFreeConfig(i));
            const auto result = hybrid.solve(cnf);

            const auto ci =
                static_cast<double>(classic.stats.iterations);
            const auto hi = static_cast<double>(
                std::max<std::uint64_t>(result.stats.iterations, 1));
            cdcl_iters.add(ci);
            hyq_iters.add(hi);
            reductions.add(bench::ratio(ci, hi));
        }

        auto span = [](int lo, int hi) {
            return lo == hi ? std::to_string(lo)
                            : std::to_string(lo) + "-" +
                                  std::to_string(hi);
        };
        table.addRow({benchmark.id, benchmark.domain,
                      span(vars_lo, vars_hi), span(cls_lo, cls_hi),
                      std::to_string(count),
                      Table::num(cdcl_iters.mean(), 0),
                      Table::num(hyq_iters.mean(), 0),
                      Table::num(reductions.mean(), 2),
                      Table::num(reductions.geomean(), 2),
                      Table::num(reductions.max(), 2),
                      Table::num(reductions.min(), 2)});
        overall_avg.add(reductions.mean());
        overall_geo.add(reductions.geomean());
        overall_max.add(reductions.max());
        overall_min.add(reductions.min());
    }
    table.addSeparator();
    table.addRow({"Average", "", "", "", "", "", "",
                  Table::num(overall_avg.mean(), 2),
                  Table::num(overall_geo.mean(), 2),
                  Table::num(overall_max.mean(), 2),
                  Table::num(overall_min.mean(), 2)});
    table.print();
    std::printf("\nPaper (Table I): average reduction 14.11x avg / "
                "7.56x geomean across 14 benchmarks; shape to check: "
                "reduction > 1 on most rows and larger on "
                "high-iteration benchmarks.\n");
    return 0;
}
