/**
 * @file
 * Frontend fast-path micro-benchmark: measures one frontend pass
 * (clause queue -> QUBO encode -> Chimera embed) at a deep search
 * state under three configurations,
 *
 *   cold   one-shot Frontend::run on a scan solver: every buffer is
 *          allocated fresh and the unsatisfied-clause enumeration is
 *          an O(M*3) trail rescan (the pre-fast-path behaviour);
 *   warm   persistent FrontendWorkspace + incremental satisfied-
 *          clause tracking, cache disabled: allocation-free steady
 *          state, O(unsat) enumeration, but a full embed per run;
 *   cache  warm plus the (embedding, encoding) memo: the per-
 *          iteration RNG is reseeded identically so every timed run
 *          is a cache hit,
 *
 * and emits one "BENCH {json}" trajectory line per path with the
 * per-iteration cost and the speedup over cold. Acceptance bars
 * (ISSUE 4): warm >= 2x cold, cache >= 5x cold at full scale.
 *
 * The measurement runs inside the solver's iteration hook at the
 * first decision iteration whose level reaches a target depth, on
 * twin deterministic solvers (identical seeds/options except the
 * tracking flag), so both paths see the exact same trail; the bench
 * asserts the three paths return identical queues and embedded
 * prefixes before reporting any number.
 *
 *   ./micro_frontend [--smoke]    (HYQSAT_BENCH_TINY=1 also works)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/frontend.h"
#include "gen/random_sat.h"
#include "util/metrics.h"
#include "util/timer.h"

using namespace hyqsat;

namespace {

/** Per-path measurement: microseconds per frontend pass. */
struct PathTiming
{
    double per_iter_us = -1.0;
    double wall_s = 0.0;
    core::FrontendResult reference;
};

/** The compared surface of a FrontendResult (determinism check). */
bool
sameResult(const core::FrontendResult &a, const core::FrontendResult &b)
{
    return a.queue == b.queue &&
           a.embedded_clauses == b.embedded_clauses &&
           a.covers_all_unsatisfied == b.covers_all_unsatisfied &&
           a.embedded && b.embedded &&
           a.embedded->embedded_clauses == b.embedded->embedded_clauses &&
           a.embedded->all_embedded == b.embedded->all_embedded &&
           a.embedded->problem.numNodes() == b.embedded->problem.numNodes();
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = std::getenv("HYQSAT_BENCH_TINY") != nullptr;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--smoke"))
            smoke = true;
    }

    // Satisfiable-regime ratio (m/n = 3.5): the search reaches deep,
    // mostly-assigned states where nearly every clause is satisfied —
    // exactly the steady state of the hybrid warm-up, and the regime
    // where the cold path's O(M*3) rescan and allocation storm
    // dominate one frontend pass.
    int num_vars = smoke ? 120 : 2000;
    if (const char *env = std::getenv("HYQSAT_MICRO_FRONTEND_VARS"))
        num_vars = std::atoi(env);
    const int num_clauses = static_cast<int>(num_vars * 3.2);
    const double assigned_frac = 0.9;
    const int reps = smoke ? 100 : 2000;
    const std::uint64_t queue_seed = 0x5eedc0de;

    std::printf("=== micro_frontend: frontend fast-path cost at a "
                "deep search state (%d vars, %d clauses, >= %.0f%% "
                "assigned, %d reps/path) ===\n",
                num_vars, num_clauses, assigned_frac * 100, reps);

    Rng gen(0xbe11c0de);
    const sat::Cnf cnf = gen::uniformRandom3Sat(num_vars, num_clauses, gen);
    const chimera::ChimeraGraph graph(16, 16, 4);

    core::FrontendOptions no_cache;
    no_cache.cache_embeddings = false;
    const core::Frontend fe_nocache(graph, no_cache);

    MetricsRegistry registry;
    const core::Frontend fe_cache(graph, {}, &registry);

    // Twin deterministic solvers: identical options/seed except the
    // tracking flag, so both reach the same trail at the same
    // iteration and the paths are timed against identical states.
    const auto makeOptions = [](bool tracking) {
        sat::SolverOptions opts;
        opts.instrument_clauses = true;
        opts.incremental_clause_tracking = tracking;
        return opts;
    };

    PathTiming cold, warm, cache;
    int measured_level = -1;
    std::size_t measured_trail = 0;

    // Trigger for the timed section: deep, mostly-assigned state with
    // at least one unsatisfied clause (so the queue is non-empty). A
    // pure function of solver state, so the deterministic twins fire
    // at the exact same iteration.
    const auto atMeasurementState = [&](const sat::Solver &s) {
        int assigned = 0;
        for (sat::Var v = 0; v < s.numVars(); ++v) {
            if (!s.value(v).isUndef())
                ++assigned;
        }
        if (assigned <
            static_cast<int>(assigned_frac * s.numVars()))
            return false;
        for (int c = 0; c < s.numOriginalClauses(); ++c) {
            if (!s.originalClauseSatisfiedNow(c))
                return true;
        }
        return false;
    };

    // Path 1: cold, on the scan solver.
    {
        sat::Solver solver(makeOptions(false));
        if (!solver.loadCnf(cnf)) {
            std::printf("FAIL: instance trivially unsat\n");
            return 1;
        }
        solver.setIterationHook([&](sat::Solver &s) {
            if (cold.per_iter_us >= 0.0 || !atMeasurementState(s))
                return;
            measured_level = s.decisionLevel();
            measured_trail = s.unsatisfiedOriginalClauses().size();
            {
                Rng rng(queue_seed);
                cold.reference = fe_nocache.run(s, rng);
            }
            Timer t;
            for (int i = 0; i < reps; ++i) {
                Rng rng(queue_seed);
                const auto r = fe_nocache.run(s, rng);
                (void)r;
            }
            cold.wall_s = t.seconds();
            cold.per_iter_us = cold.wall_s * 1e6 / reps;
            s.requestStop();
        });
        (void)solver.solve();
    }

    // Paths 2+3: warm workspace and cache hit, on the tracking twin.
    {
        sat::Solver solver(makeOptions(true));
        if (!solver.loadCnf(cnf)) {
            std::printf("FAIL: instance trivially unsat\n");
            return 1;
        }
        core::FrontendWorkspace ws_warm, ws_cache;
        solver.setIterationHook([&](sat::Solver &s) {
            if (warm.per_iter_us >= 0.0 || !atMeasurementState(s))
                return;

            // Warm: workspace reuse + incremental tracking, full
            // embed every run (cache off).
            {
                Rng rng(queue_seed);
                warm.reference = fe_nocache.run(s, rng, ws_warm);
            }
            {
                Timer t;
                for (int i = 0; i < reps; ++i) {
                    Rng rng(queue_seed);
                    const auto r = fe_nocache.run(s, rng, ws_warm);
                    (void)r;
                }
                warm.wall_s = t.seconds();
                warm.per_iter_us = warm.wall_s * 1e6 / reps;
            }

            // Cache: first run misses and populates, every timed run
            // reseeds the same queue and hits.
            {
                Rng rng(queue_seed);
                cache.reference = fe_cache.run(s, rng, ws_cache);
            }
            {
                Timer t;
                for (int i = 0; i < reps; ++i) {
                    Rng rng(queue_seed);
                    const auto r = fe_cache.run(s, rng, ws_cache);
                    (void)r;
                }
                cache.wall_s = t.seconds();
                cache.per_iter_us = cache.wall_s * 1e6 / reps;
            }
            s.requestStop();
        });
        (void)solver.solve();
    }

    if (cold.per_iter_us < 0.0 || warm.per_iter_us < 0.0 ||
        cache.per_iter_us < 0.0) {
        std::printf("FAIL: search never reached the measurement "
                    "state (>= %.0f%% assigned with an unsatisfied "
                    "clause)\n",
                    assigned_frac * 100);
        return 1;
    }

    // Determinism: every path must produce the same frontend result
    // from the same trail and RNG seed, across the tracking twin.
    if (!sameResult(cold.reference, warm.reference) ||
        !sameResult(warm.reference, cache.reference)) {
        std::printf("FAIL: fast-path results diverge from the cold "
                    "path (queue/embedding mismatch)\n");
        return 1;
    }

    const auto hits = registry.counter("frontend.cache.hits")->value();
    const auto misses = registry.counter("frontend.cache.misses")->value();
    const double warm_speedup = cold.per_iter_us / warm.per_iter_us;
    const double cache_speedup = cold.per_iter_us / cache.per_iter_us;

    std::printf("measured at decision level %d, %zu unsatisfied "
                "clauses; queue %zu, embedded %zu\n",
                measured_level, measured_trail,
                cold.reference.queue.size(),
                cold.reference.embedded_clauses.size());
    std::printf("cold  %9.2f us/run\n", cold.per_iter_us);
    std::printf("warm  %9.2f us/run  (%.2fx vs cold, bar >= 2x)\n",
                warm.per_iter_us, warm_speedup);
    std::printf("cache %9.2f us/run  (%.2fx vs cold, bar >= 5x; "
                "%llu hits / %llu misses)\n",
                cache.per_iter_us, cache_speedup,
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses));

    const struct
    {
        const char *path;
        const PathTiming *t;
        double speedup;
    } rows[] = {{"cold", &cold, 1.0},
                {"warm", &warm, warm_speedup},
                {"cache", &cache, cache_speedup}};
    for (const auto &row : rows) {
        std::printf("BENCH {\"bench\":\"micro_frontend\","
                    "\"path\":\"%s\",\"wall_s\":%.6f,"
                    "\"per_iter_us\":%.3f,\"speedup_vs_cold\":%.3f,"
                    "\"reps\":%d,\"vars\":%d,\"clauses\":%d,"
                    "\"depth\":%d,\"queue_len\":%zu,"
                    "\"cache_hits\":%llu,\"cache_misses\":%llu}\n",
                    row.path, row.t->wall_s, row.t->per_iter_us,
                    row.speedup, reps, num_vars, num_clauses,
                    measured_level, cold.reference.queue.size(),
                    static_cast<unsigned long long>(hits),
                    static_cast<unsigned long long>(misses));
    }

    // The acceptance bars apply at full scale; smoke runs are sized
    // for CI latency, where constant overheads dominate.
    if (!smoke && (warm_speedup < 2.0 || cache_speedup < 5.0)) {
        std::printf("FAIL: speedup below the acceptance bar "
                    "(warm %.2fx < 2x or cache %.2fx < 5x)\n",
                    warm_speedup, cache_speedup);
        return 1;
    }
    return 0;
}
