/**
 * @file
 * Reproduces Figure 11: where HyQSAT's end-to-end time goes -
 * frontend (queue + encode + embed), QA device time, backend
 * interpretation, and the remaining CDCL search. The breakdown now
 * also distinguishes overlapped from blocking QA time: "QA blk %" is
 * the device time the search actually waited for, and the in-flight
 * and stall columns expose the pipeline behavior (HYQSAT_SAMPLER /
 * HYQSAT_PIPELINE_DEPTH select the backend).
 */

#include <cstdio>

#include "bench/common.h"
#include "util/stats.h"
#include "util/table.h"

using namespace hyqsat;

int
main()
{
    std::printf("=== Figure 11: HyQSAT end-to-end time breakdown "
                "===\n");
    if (!bench::fullScale())
        std::printf("(reduced instance counts)\n");

    Table table;
    table.setHeader({"Bench", "Frontend %", "QA %", "QA blk %",
                     "Backend %", "CDCL %", "Inflight ms", "Stalls",
                     "Total ms"});

    OnlineStats warmup_share;
    for (const auto &benchmark : gen::BenchmarkSuite::all()) {
        const int count = bench::instancesFor(benchmark);
        core::TimeBreakdown sum;
        for (int i = 0; i < count; ++i) {
            const auto cnf = benchmark.make(i, 0xf11);
            core::HybridSolver hybrid(bench::noisyConfig(i));
            const auto result = hybrid.solve(cnf);
            sum.frontend_s += result.time.frontend_s;
            sum.qa_device_s += result.time.qa_device_s;
            sum.qa_blocking_s += result.time.qa_blocking_s;
            sum.qa_inflight_s += result.time.qa_inflight_s;
            sum.stalls += result.time.stalls;
            sum.backend_s += result.time.backend_s;
            sum.cdcl_s += result.time.cdcl_s;
        }
        const double total = sum.endToEnd();
        if (total <= 0)
            continue;
        table.addRow({benchmark.id,
                      Table::num(100 * sum.frontend_s / total, 1),
                      Table::num(100 * sum.qa_device_s / total, 1),
                      Table::num(100 * sum.qa_blocking_s / total, 1),
                      Table::num(100 * sum.backend_s / total, 1),
                      Table::num(100 * sum.cdcl_s / total, 1),
                      Table::num(sum.qa_inflight_s * 1e3, 2),
                      Table::num(sum.stalls, 0),
                      Table::num(total * 1e3, 2)});
        warmup_share.add(100 *
                         (sum.frontend_s + sum.qa_device_s +
                          sum.backend_s) /
                         total);
    }
    table.print();
    std::printf("\nMean warm-up share (frontend+QA+backend): %.1f%%\n",
                warmup_share.mean());
    std::printf("\nPaper (Fig. 11): warm-up stage ~41%% of the time, "
                "frontend only ~2.2%% (pipelined), QA small except "
                "on BP (~40%%, few total iterations), CDCL roughly "
                "half. Shape to check: frontend share small, CDCL "
                "the largest single component, BP's QA share "
                "outsized.\n");
    return 0;
}
