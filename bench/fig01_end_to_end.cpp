/**
 * @file
 * Reproduces Figure 1: end-to-end time to solve one 3-SAT problem
 * (128 variables, 150 clauses) under three approaches:
 *   - classic CDCL on the host CPU,
 *   - a pure-QA flow (embed everything with Minorminer, then 60
 *     samples with inter-sample delays),
 *   - HyQSAT (one sample per warm-up iteration, fast embedding).
 */

#include <cstdio>

#include "bench/common.h"
#include "embed/minorminer.h"
#include "gen/random_sat.h"
#include "qubo/encoder.h"
#include "util/table.h"
#include "util/timer.h"

using namespace hyqsat;

int
main()
{
    std::printf("=== Figure 1: end-to-end time, 128 variables / 150 "
                "clauses ===\n");
    Rng rng(0xf1);
    const auto cnf = gen::plantedRandom3Sat(128, 150, rng);

    Table table;
    table.setHeader({"Approach", "Embedding", "Compute", "Total"});

    // Classic CDCL.
    const auto classic = core::solveClassicCdcl(
        cnf, sat::SolverOptions::minisatStyle());
    table.addRow({"CDCL (CPU)", "-",
                  Table::num(classic.time.cdcl_s * 1e6, 1) + " us",
                  Table::num(classic.time.cdcl_s * 1e6, 1) + " us"});

    // Pure QA: Minorminer embedding of the whole formula + 60
    // samples (the paper's Fig. 1 sampling budget).
    {
        const auto graph = chimera::ChimeraGraph::dwave2000q();
        const std::vector<sat::LitVec> clauses(cnf.clauses().begin(),
                                               cnf.clauses().end());
        const auto problem = qubo::encodeClauses(clauses);
        embed::MinorminerOptions mopts;
        mopts.timeout_seconds = bench::fullScale() ? 300.0 : 60.0;
        embed::MinorminerEmbedder minorminer(graph, mopts);
        Timer embed_timer;
        const auto embedded =
            minorminer.embed(problem.numNodes(), problem.edges());
        const double embed_s = embed_timer.seconds();

        anneal::TimingModel timing;
        timing.anneal_us = 10; // the paper's Fig. 1 uses 10us anneal
        const double qa_us = timing.sampleTimeUs(60);
        table.addRow(
            {std::string("QA only (Minorminer, 60 samples)") +
                 (embedded.success ? "" : " [embedding FAILED]"),
             Table::num(embed_s, 2) + " s",
             Table::num(qa_us, 0) + " us",
             Table::num(embed_s + qa_us * 1e-6, 2) + " s"});
    }

    // HyQSAT, classic blocking loop (depth-1 synchronous sampler).
    {
        core::HybridSolver hybrid(bench::noisyConfig());
        const auto result = hybrid.solve(cnf);
        const double embed_us = result.time.frontend_s * 1e6;
        const double rest_us =
            (result.time.qa_device_s + result.time.backend_s +
             result.time.cdcl_s) *
            1e6;
        table.addRow({"HyQSAT (simulated 2000Q, sync)",
                      Table::num(embed_us, 1) + " us",
                      Table::num(rest_us, 1) + " us",
                      Table::num(result.time.endToEnd() * 1e6, 1) +
                          " us"});
        std::printf("HyQSAT sync: %s, %d QA samples, mean embedding "
                    "%0.1f us/iteration, blocking QA %0.1f us\n",
                    result.status.isTrue()    ? "SAT"
                    : result.status.isFalse() ? "UNSAT"
                                              : "UNDEF",
                    result.qa_samples,
                    result.qa_samples
                        ? embed_us / result.qa_samples
                        : 0.0,
                    result.time.qa_blocking_s * 1e6);
    }

    // HyQSAT, async pipeline: the sample is in flight while CDCL
    // keeps iterating, so only the non-overlapped device remainder
    // is charged to the modeled end-to-end time.
    {
        auto cfg = bench::noisyConfig();
        cfg.pipeline_depth = 2;
        core::HybridSolver hybrid(cfg);
        const auto result = hybrid.solve(cnf);
        const double embed_us = result.time.frontend_s * 1e6;
        const double rest_us =
            (result.time.qa_blocking_s + result.time.backend_s +
             result.time.cdcl_s) *
            1e6;
        table.addRow({"HyQSAT (async pipeline, depth 2)",
                      Table::num(embed_us, 1) + " us",
                      Table::num(rest_us, 1) + " us",
                      Table::num(result.time.endToEndPipelined() * 1e6,
                                 1) +
                          " us"});
        std::printf("HyQSAT async: %s, %d applied / %d submitted / "
                    "%d stale samples, %d stalls, device %0.1f us "
                    "(%0.1f us blocking after overlap)\n",
                    result.status.isTrue()    ? "SAT"
                    : result.status.isFalse() ? "UNSAT"
                                              : "UNDEF",
                    result.qa_samples, result.qa_submitted,
                    result.qa_stale, result.time.stalls,
                    result.time.qa_device_s * 1e6,
                    result.time.qa_blocking_s * 1e6);
    }

    table.print();
    std::printf("\nNote: the async row charges only the device time "
                "not hidden behind concurrent CDCL work. When CDCL "
                "outpaces the simulated sampler (fast instances, or "
                "a single-core host where the SA worker timeslices "
                "with the search), samples arrive late and are "
                "reported as submitted-but-unapplied rather than "
                "blocking the loop.\n");
    std::printf("\nPaper (Fig. 1): CDCL ~8000us, QA-only ~10s "
                "embedding + 8380us sampling, HyQSAT ~4000us with "
                "<16us embedding. Shape to check: QA-only embedding "
                "dominates by orders of magnitude; HyQSAT total is "
                "the same order as CDCL or better, with tiny "
                "per-iteration embedding cost.\n");
    return 0;
}
