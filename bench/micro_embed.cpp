/**
 * @file
 * Microbenchmarks for the embedding and annealing hot paths,
 * using google-benchmark: the §IV-B linear-time embedder, the QUBO
 * encoder and one annealer sample.
 */

#include <benchmark/benchmark.h>

#include "anneal/annealer.h"
#include "embed/hyqsat_embedder.h"
#include "gen/random_sat.h"
#include "qubo/encoder.h"
#include "util/rng.h"

using namespace hyqsat;

namespace {

std::vector<sat::LitVec>
fixtureQueue(int clauses)
{
    Rng rng(7);
    const auto cnf = gen::uniformRandom3Sat(60, clauses, rng);
    return {cnf.clauses().begin(), cnf.clauses().end()};
}

void
BM_HyQsatEmbed(benchmark::State &state)
{
    const auto graph = chimera::ChimeraGraph::dwave2000q();
    const auto queue =
        fixtureQueue(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        embed::HyQsatEmbedder embedder(graph);
        benchmark::DoNotOptimize(embedder.embedQueue(queue));
    }
}
BENCHMARK(BM_HyQsatEmbed)->Arg(10)->Arg(40)->Arg(150);

void
BM_EncodeClauses(benchmark::State &state)
{
    const auto queue =
        fixtureQueue(static_cast<int>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(qubo::encodeClauses(queue));
}
BENCHMARK(BM_EncodeClauses)->Arg(40)->Arg(150);

void
BM_AnnealerSample(benchmark::State &state)
{
    const auto graph = chimera::ChimeraGraph::dwave2000q();
    const auto queue = fixtureQueue(40);
    embed::HyQsatEmbedder embedder(graph);
    const auto fx = embedder.embedQueue(queue);
    anneal::QuantumAnnealer::Options opts;
    opts.noise.sweeps = static_cast<int>(state.range(0));
    anneal::QuantumAnnealer annealer(graph, opts);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            annealer.sample(fx.problem, fx.embedding));
    }
}
BENCHMARK(BM_AnnealerSample)->Arg(16)->Arg(64);

} // namespace

BENCHMARK_MAIN();
