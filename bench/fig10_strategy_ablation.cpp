/**
 * @file
 * Reproduces Figure 10: per-strategy ablation of the backend's
 * feedback. For each benchmark the iteration reduction is measured
 * with all strategies on, and with each of S1 / S2 / S4 enabled
 * alone (S3 gives no guidance so it has no solo row).
 */

#include <cstdio>

#include "bench/common.h"
#include "util/stats.h"
#include "util/table.h"

using namespace hyqsat;

namespace {

double
meanReduction(const gen::Benchmark &benchmark, int count,
              bool s1, bool s2, bool s4)
{
    OnlineStats reds;
    for (int i = 0; i < count; ++i) {
        const auto cnf = benchmark.make(i, 0xf10);
        const auto classic = core::solveClassicCdcl(
            cnf, sat::SolverOptions::minisatStyle());
        auto cfg = bench::noiseFreeConfig(10 + i);
        cfg.backend.enable_strategy1 = s1;
        cfg.backend.enable_strategy2 = s2;
        cfg.backend.enable_strategy4 = s4;
        core::HybridSolver hybrid(cfg);
        const auto result = hybrid.solve(cnf);
        reds.add(bench::ratio(
            static_cast<double>(classic.stats.iterations),
            static_cast<double>(std::max<std::uint64_t>(
                result.stats.iterations, 1))));
    }
    return reds.mean();
}

} // namespace

int
main()
{
    std::printf("=== Figure 10: iteration-reduction ablation by "
                "feedback strategy ===\n");
    if (!bench::fullScale())
        std::printf("(reduced instance counts)\n");

    Table table;
    table.setHeader(
        {"Bench", "All strategies", "S1 only", "S2 only", "S4 only"});

    // A representative subset keeps the default run fast; full scale
    // covers the suite.
    std::vector<std::string> ids{"GC1", "CFA", "II", "AI1", "AI3"};
    if (bench::fullScale()) {
        ids.clear();
        for (const auto &b : gen::BenchmarkSuite::all())
            ids.push_back(b.id);
    }

    for (const auto &id : ids) {
        const auto &benchmark = gen::BenchmarkSuite::byId(id);
        const int count = bench::instancesFor(benchmark);
        table.addRow(
            {id,
             Table::num(
                 meanReduction(benchmark, count, true, true, true), 2),
             Table::num(
                 meanReduction(benchmark, count, true, false, false),
                 2),
             Table::num(
                 meanReduction(benchmark, count, false, true, false),
                 2),
             Table::num(
                 meanReduction(benchmark, count, false, false, true),
                 2)});
    }
    table.print();
    std::printf("\nPaper (Fig. 10): every strategy contributes; S1 "
                "contributes least (zero energy is rare), S4 "
                "dominates on the unsatisfiable CFA benchmark. Shape "
                "to check: 'All' >= each solo column, S2 strongest "
                "on satisfiable rows, S4 strongest on CFA.\n");
    return 0;
}
