/**
 * @file
 * Reproduces Figure 14: iteration reduction of the activity-driven
 * BFS clause queue vs a uniformly random clause queue, against the
 * classic CDCL baseline, across the benchmark suite.
 */

#include <cstdio>

#include "bench/common.h"
#include "util/stats.h"
#include "util/table.h"

using namespace hyqsat;

namespace {

double
meanReduction(const gen::Benchmark &benchmark, int count,
              bool random_queue)
{
    OnlineStats reds;
    for (int i = 0; i < count; ++i) {
        const auto cnf = benchmark.make(i, 0xf14);
        const auto classic = core::solveClassicCdcl(
            cnf, sat::SolverOptions::minisatStyle());
        auto cfg = bench::noiseFreeConfig(20 + i);
        cfg.frontend.queue.random_queue = random_queue;
        core::HybridSolver hybrid(cfg);
        const auto result = hybrid.solve(cnf);
        reds.add(bench::ratio(
            static_cast<double>(classic.stats.iterations),
            static_cast<double>(std::max<std::uint64_t>(
                result.stats.iterations, 1))));
    }
    return reds.mean();
}

} // namespace

int
main()
{
    std::printf("=== Figure 14: activity-BFS clause queue vs random "
                "queue ===\n");
    if (!bench::fullScale())
        std::printf("(reduced instance counts)\n");

    Table table;
    table.setHeader({"Bench", "HyQSAT queue", "Random queue",
                     "Improvement"});

    OnlineStats improvements;
    std::vector<std::string> ids{"GC1", "CFA", "II",
                                 "IF1", "AI1", "AI3"};
    if (bench::fullScale()) {
        ids.clear();
        for (const auto &b : gen::BenchmarkSuite::all())
            ids.push_back(b.id);
    }
    for (const auto &id : ids) {
        const auto &benchmark = gen::BenchmarkSuite::byId(id);
        const int count = bench::instancesFor(benchmark);
        const double smart = meanReduction(benchmark, count, false);
        const double random = meanReduction(benchmark, count, true);
        table.addRow({id, Table::num(smart, 2),
                      Table::num(random, 2),
                      Table::num(bench::ratio(smart, random), 2)});
        improvements.add(bench::ratio(smart, random));
    }
    table.print();
    std::printf("\nMean improvement of the activity queue: %.2fx\n",
                improvements.mean());
    std::printf("\nPaper (Fig. 14): the activity-BFS queue beats a "
                "random queue by 2.77x on average, with the largest "
                "gains on conflict-heavy benchmarks. Shape to check: "
                "improvement >= 1 on most rows.\n");
    return 0;
}
