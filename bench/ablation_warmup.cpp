/**
 * @file
 * Ablation of the warm-up length (§VI-A): the paper empirically
 * chooses sqrt(K) warm-up iterations and reports that deploying
 * *all* iterations to QA costs ~20% more iterations on AI5. This
 * bench sweeps the warm-up budget: 0 (plain CDCL), sqrt(K)/2,
 * sqrt(K), 4*sqrt(K) and unlimited.
 */

#include <cmath>
#include <cstdio>

#include "bench/common.h"
#include "util/stats.h"
#include "util/table.h"

using namespace hyqsat;

int
main()
{
    std::printf("=== Ablation: warm-up length (sqrt(K) policy of "
                "SIII) ===\n");
    const int count = bench::fullScale() ? 8 : 3;
    std::printf("(%d instances per row)\n", count);

    Table table;
    table.setHeader({"Bench", "no QA", "sqrt(K)/2", "sqrt(K)",
                     "4*sqrt(K)", "16*sqrt(K)"});

    for (const char *id : {"AI1", "AI3", "GC1"}) {
        const auto &benchmark = gen::BenchmarkSuite::byId(id);
        std::vector<std::string> row{id};
        for (double factor : {0.0, 0.5, 1.0, 4.0, 16.0}) {
            OnlineStats iters;
            for (int i = 0; i < count; ++i) {
                const auto cnf = benchmark.make(i, 0xab1a);
                auto cfg = bench::noiseFreeConfig(i);
                const double root = std::sqrt(static_cast<double>(
                    core::HybridSolver::estimateIterations(
                        cnf.numVars(), cnf.numClauses())));
                cfg.warmup_override =
                    static_cast<std::int64_t>(factor * root);
                core::HybridSolver hybrid(cfg);
                iters.add(static_cast<double>(
                    hybrid.solve(cnf).stats.iterations));
            }
            row.push_back(Table::num(iters.mean(), 0));
        }
        table.addRow(row);
    }
    table.print();
    std::printf("\nPaper (SVI-A): deploying every iteration to QA "
                "gives no further gain (AI5 +20%% iterations); the "
                "sqrt(K) column should be near the minimum of each "
                "row.\n");
    return 0;
}
