/**
 * @file
 * Reproduces Figure 13: embedding-scheme comparison between the
 * HyQSAT §IV-B scheme, the Minorminer-style iterative heuristic and
 * the place-and-route baseline: (a) embedding time, (b) success
 * rate, (c) average chain length, as the number of embedded clauses
 * grows.
 *
 * Queues are BFS clause queues (the frontend's own shape) drawn
 * from random 3-SAT instances sized so every distinct variable can
 * own a vertical line, matching the paper's protocol of 50 queues
 * of 250 clauses. Our reimplemented schemes saturate earlier than
 * the production implementations (see EXPERIMENTS.md for the
 * constant-factor discussion); the orders of magnitude and the
 * relative ordering are the reproduced shape.
 */

#include <cstdio>

#include "bench/common.h"
#include "core/clause_queue.h"
#include "embed/hyqsat_embedder.h"
#include "embed/minorminer.h"
#include "embed/place_route.h"
#include "gen/random_sat.h"
#include "qubo/encoder.h"
#include "util/stats.h"
#include "util/table.h"

using namespace hyqsat;

int
main()
{
    std::printf("=== Figure 13: embedding time / success rate / "
                "chain length ===\n");
    const int num_queues = bench::fullScale() ? 20 : 5;
    const std::vector<int> sizes{5, 10, 15, 20, 30, 40, 50, 60};
    std::printf("(%d queues per point)\n", num_queues);

    const auto graph = chimera::ChimeraGraph::dwave2000q();

    // Build BFS clause queues from fresh solver states.
    std::vector<std::vector<sat::LitVec>> queues;
    Rng rng(0xf13);
    for (int q = 0; q < num_queues; ++q) {
        const auto cnf = gen::uniformRandom3Sat(60, 250, rng);
        sat::Solver solver;
        if (!solver.loadCnf(cnf))
            continue;
        core::ClauseQueueOptions qo;
        qo.capacity = 250;
        Rng qrng(q);
        const auto indices =
            core::generateClauseQueue(solver, qo, qrng);
        std::vector<sat::LitVec> queue;
        for (int ci : indices)
            queue.push_back(solver.originalClause(ci));
        queues.push_back(std::move(queue));
    }

    Table table;
    table.setHeader({"#Clauses", "HyQ us", "HyQ ok%", "HyQ chain",
                     "MM s", "MM ok%", "MM chain", "P&R s",
                     "P&R ok%", "P&R chain"});

    for (int size : sizes) {
        OnlineStats hq_time, hq_chain, mm_time, mm_chain, pr_time,
            pr_chain;
        int hq_ok = 0, mm_ok = 0, pr_ok = 0, total = 0;
        for (const auto &queue : queues) {
            if (static_cast<int>(queue.size()) < size)
                continue;
            ++total;
            const std::vector<sat::LitVec> prefix(
                queue.begin(), queue.begin() + size);

            // HyQSAT scheme: success when the whole prefix embeds.
            embed::HyQsatEmbedder hq(graph);
            const auto hr = hq.embedQueue(prefix);
            hq_time.add(hr.seconds);
            if (hr.all_embedded) {
                ++hq_ok;
                hq_chain.add(hr.embedding.averageChainLength());
            }

            // Baselines embed the encoded problem graph directly.
            const auto problem = qubo::encodeClauses(prefix);
            embed::MinorminerOptions mo;
            mo.timeout_seconds = bench::fullScale() ? 300 : 20;
            mo.seed = 7 + size;
            embed::MinorminerEmbedder mm(graph, mo);
            const auto mr =
                mm.embed(problem.numNodes(), problem.edges());
            mm_time.add(mr.seconds);
            if (mr.success) {
                ++mm_ok;
                mm_chain.add(mr.embedding.averageChainLength());
            }

            embed::PlaceRouteOptions po;
            po.timeout_seconds = bench::fullScale() ? 300 : 20;
            po.seed = 11 + size;
            embed::PlaceRouteEmbedder pr(graph, po);
            const auto rr =
                pr.embed(problem.numNodes(), problem.edges());
            pr_time.add(rr.seconds);
            if (rr.success) {
                ++pr_ok;
                pr_chain.add(rr.embedding.averageChainLength());
            }
        }
        if (total == 0)
            continue;
        auto pct = [&](int ok) {
            return Table::num(100.0 * ok / total, 0);
        };
        table.addRow({std::to_string(size),
                      Table::num(hq_time.mean() * 1e6, 1),
                      pct(hq_ok), Table::num(hq_chain.mean(), 2),
                      Table::sci(mm_time.mean(), 2), pct(mm_ok),
                      Table::num(mm_chain.mean(), 2),
                      Table::sci(pr_time.mean(), 2), pct(pr_ok),
                      Table::num(pr_chain.mean(), 2)});
    }
    table.print();
    std::printf("\nPaper (Fig. 13): HyQSAT embeds in ~15.7us vs "
                "17.2s (Minorminer, ~9e5x) and ~45s (P&R, ~2.6e6x); "
                "success flat then cliff (HyQSAT capacity slightly "
                "below Minorminer, above P&R); HyQSAT chains ~1.59x "
                "longer. Shape to check: microseconds vs seconds, "
                "the success-rate cliff ordering, and longer HyQSAT "
                "chains.\n");
    return 0;
}
