/**
 * @file
 * Reproduces Table II: modeled end-to-end running time of HyQSAT on
 * the noisy simulated D-Wave 2000Q vs MiniSat- and Kissat-style
 * CDCL on the host CPU, plus the iteration-variance column
 * (noisy QA iterations / noise-free simulator iterations).
 *
 * HyQSAT's end-to-end time combines measured host CPU time
 * (frontend, backend, CDCL) with the modeled QA device time; the SA
 * simulation cost that stands in for the physical anneal is
 * excluded, exactly as the paper excludes it by using the real
 * device (see DESIGN.md).
 */

#include <cstdio>

#include "bench/common.h"
#include "util/stats.h"
#include "util/table.h"

using namespace hyqsat;

int
main()
{
    std::printf("=== Table II: end-to-end time, CDCL (CPU) vs HyQSAT "
                "(simulated D-Wave 2000Q) ===\n");
    if (!bench::fullScale())
        std::printf("(reduced instance counts; "
                    "HYQSAT_BENCH_SCALE=full for paper-sized runs)\n");

    Table table;
    table.setHeader({"Bench", "Minisat ms", "Kissat ms", "HyQSAT ms",
                     "Speedup(M)", "Speedup(K)", "#It variance"});

    for (const auto &benchmark : gen::BenchmarkSuite::all()) {
        const int count = bench::instancesFor(benchmark);
        OnlineStats minisat_ms, kissat_ms, hyqsat_ms, variance;
        for (int i = 0; i < count; ++i) {
            const auto cnf = benchmark.make(i, 0x7ab1e);

            const auto minisat = core::solveClassicCdcl(
                cnf, sat::SolverOptions::minisatStyle());
            const auto kissat = core::solveClassicCdcl(
                cnf, sat::SolverOptions::kissatStyle());

            core::HybridSolver noisy(bench::noisyConfig(i));
            const auto on_device = noisy.solve(cnf);

            core::HybridSolver clean(bench::noiseFreeConfig(i));
            const auto simulator = clean.solve(cnf);

            minisat_ms.add(minisat.time.cdcl_s * 1e3);
            kissat_ms.add(kissat.time.cdcl_s * 1e3);
            hyqsat_ms.add(on_device.time.endToEnd() * 1e3);
            variance.add(bench::ratio(
                static_cast<double>(on_device.stats.iterations),
                static_cast<double>(
                    std::max<std::uint64_t>(
                        simulator.stats.iterations, 1))));
        }
        table.addRow(
            {benchmark.id, Table::num(minisat_ms.mean(), 2),
             Table::num(kissat_ms.mean(), 2),
             Table::num(hyqsat_ms.mean(), 2),
             Table::num(
                 bench::ratio(minisat_ms.mean(), hyqsat_ms.mean()), 2),
             Table::num(
                 bench::ratio(kissat_ms.mean(), hyqsat_ms.mean()), 2),
             Table::num(variance.mean(), 2)});
    }
    table.print();
    std::printf("\nPaper (Table II): speedups 0.81x-12.62x "
                "(12/14 benchmarks above 1x vs MiniSat); iteration "
                "variance near 1 on most benchmarks. Shape to check: "
                "high-iteration benchmarks (IF, AI4/AI5) show the "
                "largest speedups; easy benchmarks (BP, II) may "
                "dip below 1x.\n");
    return 0;
}
