/**
 * @file
 * Reproduces Figure 15: the coefficient adjustment's effect on
 * (a) the violating-band energy surface (exhaustive, small
 * problems) and (b) the confidence-interval overlap and GNB
 * accuracy when classifying noisy QA samples.
 */

#include <cstdio>

#include "bench/common.h"
#include "embed/hyqsat_embedder.h"
#include "gen/random_sat.h"
#include "qubo/gap.h"
#include "sat/solver.h"
#include "util/stats.h"
#include "util/table.h"

using namespace hyqsat;

namespace {

/** Collect noisy sample energies with / without the adjustment. */
struct Labelled
{
    std::vector<double> energies;
    std::vector<bool> satisfiable;
};

Labelled
collect(bool adjust, int per_class)
{
    const auto graph = chimera::ChimeraGraph::dwave2000q();
    anneal::QuantumAnnealer::Options qa;
    qa.noise = anneal::NoiseModel::dwave2000q();
    qa.noise.coefficient_sigma = 0.05;
    qa.greedy_finish = true; // device relaxes to a local minimum
    anneal::QuantumAnnealer annealer(graph, qa);

    Labelled out;
    Rng rng(adjust ? 0xad1 : 0xad2);
    int made_sat = 0, made_unsat = 0, guard = 0;
    while ((made_sat < per_class || made_unsat < per_class) &&
           ++guard < 400 * per_class) {
        const bool want_sat = made_sat <= made_unsat;
        const int clauses = 18 + static_cast<int>(rng.below(24));
        sat::Cnf cnf;
        if (want_sat) {
            cnf = gen::plantedRandom3Sat(
                10 + clauses / 2 + static_cast<int>(rng.below(20)),
                clauses, rng);
        } else {
            cnf = gen::uniformRandom3Sat(
                std::max(5, clauses / 8), clauses, rng);
        }
        sat::Solver check;
        const bool is_sat =
            check.loadCnf(cnf) && check.solve().isTrue();
        if ((is_sat ? made_sat : made_unsat) >= per_class)
            continue;

        embed::HyQsatEmbedderOptions eo;
        eo.encoder.adjust_coefficients = adjust;
        embed::HyQsatEmbedder embedder(graph, eo);
        const std::vector<sat::LitVec> queue(cnf.clauses().begin(),
                                             cnf.clauses().end());
        const auto fx = embedder.embedQueue(queue);
        if (!fx.all_embedded)
            continue;
        const auto sample = annealer.sample(fx.problem, fx.embedding);
        // The device reports the adjusted objective's energy: that
        // axis is what the coefficient adjustment separates.
        out.energies.push_back(sample.weighted_energy);
        out.satisfiable.push_back(is_sat);
        (is_sat ? made_sat : made_unsat)++;
    }
    return out;
}

double
gnbAccuracy(const Labelled &data)
{
    bayes::EnergyClassifier classifier;
    classifier.fit(data.energies, data.satisfiable, 0.9);
    std::vector<std::vector<double>> f;
    std::vector<int> l;
    for (std::size_t i = 0; i < data.energies.size(); ++i) {
        f.push_back({data.energies[i]});
        l.push_back(data.satisfiable[i] ? 1 : 0);
    }
    return classifier.model().accuracy(f, l);
}

double
uncertainFraction(const Labelled &data)
{
    bayes::EnergyClassifier classifier;
    classifier.fit(data.energies, data.satisfiable, 0.9);
    double max_e = 0;
    for (double e : data.energies)
        max_e = std::max(max_e, e);
    return classifier.uncertainFraction(std::max(max_e, 1.0));
}

} // namespace

int
main()
{
    std::printf("=== Figure 15: coefficient-adjustment noise "
                "optimization ===\n");

    // (a) Energy surface lift, exhaustive on small clause sets.
    {
        const int rounds = bench::fullScale() ? 60 : 25;
        OnlineStats lift_small, lift_large;
        Rng rng(0xf15);
        for (int i = 0; i < rounds; ++i) {
            const auto small = gen::uniformRandom3Sat(6, 9, rng);
            lift_small.add(
                qubo::surfaceImprovement(small.clauses()));
            const auto large = gen::uniformRandom3Sat(8, 14, rng);
            lift_large.add(
                qubo::surfaceImprovement(large.clauses()));
        }
        std::printf("\n(a) violating-band energy surface lift "
                    "(adjusted / plain, normalized)\n");
        Table ta;
        ta.setHeader({"Problem size", "Mean lift", "Max lift"});
        ta.addRow({"6 vars / 9 clauses",
                   Table::num(lift_small.mean(), 2),
                   Table::num(lift_small.max(), 2)});
        ta.addRow({"8 vars / 14 clauses",
                   Table::num(lift_large.mean(), 2),
                   Table::num(lift_large.max(), 2)});
        ta.print();
    }

    // (b) interval overlap + GNB accuracy on noisy samples.
    {
        const int per_class = bench::fullScale() ? 400 : 80;
        const auto plain = collect(false, per_class);
        const auto adjusted = collect(true, per_class);
        std::printf("\n(b) confidence intervals under noise "
                    "(%d problems per class)\n",
                    per_class);
        Table tb;
        tb.setHeader({"Configuration", "Uncertain interval %",
                      "GNB accuracy %"});
        tb.addRow({"alpha = 1 (prior work)",
                   Table::num(100 * uncertainFraction(plain), 1),
                   Table::num(100 * gnbAccuracy(plain), 2)});
        tb.addRow({"adjusted (Eq. 6-9)",
                   Table::num(100 * uncertainFraction(adjusted), 1),
                   Table::num(100 * gnbAccuracy(adjusted), 2)});
        tb.print();
    }

    std::printf("\nPaper (Fig. 15): energy gap up 1.5-1.8x with "
                "problem size; uncertain interval 28.1%% -> 14.0%%; "
                "GNB accuracy 84.76%% -> 97.53%%. Shape to check: "
                "surface lift > 1 growing with size; adjusted row "
                "shows a smaller uncertain interval and higher "
                "accuracy.\n");
    return 0;
}
