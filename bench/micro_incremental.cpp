/**
 * @file
 * Incremental-session micro-benchmark: a 20-call assumption series
 * over one base formula, solved two ways,
 *
 *   cold   one fresh core::Session per call: every call re-runs the
 *          simplify pipeline, rebuilds the frontend/backend/sampler
 *          stack and starts with an empty embedding cache — the cost
 *          a SUBMIT-per-query client pays today;
 *   warm   one session for the whole series: simplification and
 *          component construction happen once, learnt clauses and
 *          saved phases carry over, and the embedding memo stays hot
 *          across calls,
 *
 * and emits one "BENCH {json}" trajectory line per mode with the
 * per-call cost and the warm speedup. Acceptance bars (ISSUE 8):
 * warm >= 2x cold at full scale, with warm frontend-cache hits > 0
 * confirming cross-call embedding reuse.
 *
 * Both modes must agree on every call's verdict (the series mixes
 * SAT and UNSAT assumption sets); any divergence is a FAIL before
 * any number is reported.
 *
 *   ./micro_incremental [--smoke]    (HYQSAT_BENCH_TINY=1 also works)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench/common.h"
#include "core/session.h"
#include "gen/random_sat.h"
#include "util/metrics.h"
#include "util/timer.h"

using namespace hyqsat;

namespace {

/** One mode's aggregate: wall time plus the per-call verdicts. */
struct ModeTiming
{
    double wall_s = 0.0;
    std::vector<sat::lbool> verdicts;
};

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = std::getenv("HYQSAT_BENCH_TINY") != nullptr;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--smoke"))
            smoke = true;
    }

    // Satisfiable-regime base (m/n = 3.5): assumptions flip single
    // calls to UNSAT without making the whole series degenerate.
    const int num_vars = smoke ? 60 : 300;
    const int num_clauses = static_cast<int>(num_vars * 3.5);
    const int calls = 20;
    const int distinct_sets = 4; // each visited calls/distinct times
    const int assumes_per_call = 2;

    std::printf("=== micro_incremental: %d-call assumption series, "
                "cold (fresh session per call) vs warm (one session) "
                "(%d vars, %d clauses) ===\n",
                calls, num_vars, num_clauses);

    Rng gen(0x1c4ba5e);
    const sat::Cnf base =
        gen::uniformRandom3Sat(num_vars, num_clauses, gen);

    // The per-call assumption sets, fixed up front so both modes see
    // the identical series. The series revisits a few distinct sets
    // in blocks — the incremental workload shape (repeated related
    // queries, as in MUS extraction or optimization descent) that
    // lets the warm session's embedding memo hit across calls.
    Rng pick(0xa55e55);
    std::vector<sat::LitVec> distinct(distinct_sets);
    for (sat::LitVec &assumptions : distinct) {
        for (int i = 0; i < assumes_per_call; ++i)
            assumptions.push_back(
                sat::mkLit(static_cast<sat::Var>(pick.below(num_vars)),
                           pick.chance(0.5)));
    }
    std::vector<sat::LitVec> series(calls);
    for (int i = 0; i < calls; ++i)
        series[static_cast<std::size_t>(i)] = distinct[static_cast<
            std::size_t>(i / (calls / distinct_sets))];

    core::HybridConfig config = bench::noiseFreeConfig();
    config.simplify_strength = simplify::Strength::Full;
    // A bounded QA window and a small software-annealed topology:
    // what a session amortizes is the per-call compile/embed/setup
    // cost, not annealer wall time — an unbounded window on the full
    // device model would drown both modes in identical QA sampling
    // and squeeze the ratio toward 1x.
    config.warmup_override = 8;
    config.chimera_rows = 4;
    config.chimera_cols = 4;
    config.sampler = "sa";

    // Each mode funnels its sessions' metrics into one registry (a
    // session merges on destruction), so the embedding-cache hit
    // counters below compare like with like.
    MetricsRegistry cold_metrics, warm_metrics;

    ModeTiming cold;
    {
        core::HybridConfig cfg = config;
        cfg.metrics = &cold_metrics;
        Timer t;
        for (const sat::LitVec &assumptions : series) {
            core::Session session(cfg);
            if (!session.addFormula(base)) {
                std::printf("FAIL: base formula trivially unsat\n");
                return 1;
            }
            cold.verdicts.push_back(
                session.solve(assumptions).status);
        }
        cold.wall_s = t.seconds();
    }

    ModeTiming warm;
    {
        core::HybridConfig cfg = config;
        cfg.metrics = &warm_metrics;
        Timer t;
        core::Session session(cfg);
        if (!session.addFormula(base)) {
            std::printf("FAIL: base formula trivially unsat\n");
            return 1;
        }
        for (const sat::LitVec &assumptions : series)
            warm.verdicts.push_back(session.solve(assumptions).status);
        warm.wall_s = t.seconds();
    }

    int decided = 0;
    for (int i = 0; i < calls; ++i) {
        if (cold.verdicts[i].isUndef() || warm.verdicts[i].isUndef())
            continue;
        ++decided;
        if (cold.verdicts[i] != warm.verdicts[i]) {
            std::printf("FAIL: call %d diverges (cold %s, warm %s)\n",
                        i, cold.verdicts[i].isTrue() ? "SAT" : "UNSAT",
                        warm.verdicts[i].isTrue() ? "SAT" : "UNSAT");
            return 1;
        }
    }
    if (decided < calls) {
        std::printf("FAIL: only %d/%d calls decided\n", decided,
                    calls);
        return 1;
    }

    const auto counterOf = [](MetricsRegistry &m, const char *name) {
        return static_cast<unsigned long long>(
            m.counter(name)->value());
    };
    const auto cold_hits = counterOf(cold_metrics,
                                     "frontend.cache.hits");
    const auto cold_misses = counterOf(cold_metrics,
                                       "frontend.cache.misses");
    const auto warm_hits = counterOf(warm_metrics,
                                     "frontend.cache.hits");
    const auto warm_misses = counterOf(warm_metrics,
                                       "frontend.cache.misses");
    const auto warm_recompiles =
        counterOf(warm_metrics, "session.recompiles");
    const double speedup = bench::ratio(cold.wall_s, warm.wall_s);

    std::printf("cold  %9.2f ms total, %8.2f us/call  "
                "(%d sessions, %llu cache hits / %llu misses)\n",
                cold.wall_s * 1e3, cold.wall_s * 1e6 / calls, calls,
                cold_hits, cold_misses);
    std::printf("warm  %9.2f ms total, %8.2f us/call  "
                "(%.2fx vs cold, bar >= 2x; %llu recompiles, "
                "%llu cache hits / %llu misses)\n",
                warm.wall_s * 1e3, warm.wall_s * 1e6 / calls, speedup,
                warm_recompiles, warm_hits, warm_misses);

    const struct
    {
        const char *mode;
        const ModeTiming *t;
        double speedup;
        unsigned long long hits, misses, recompiles;
    } rows[] = {{"cold", &cold, 1.0, cold_hits, cold_misses,
                 counterOf(cold_metrics, "session.recompiles")},
                {"warm", &warm, speedup, warm_hits, warm_misses,
                 warm_recompiles}};
    for (const auto &row : rows) {
        std::printf("BENCH {\"bench\":\"micro_incremental\","
                    "\"mode\":\"%s\",\"calls\":%d,\"wall_s\":%.6f,"
                    "\"per_call_us\":%.3f,\"speedup_vs_cold\":%.3f,"
                    "\"vars\":%d,\"clauses\":%d,"
                    "\"cache_hits\":%llu,\"cache_misses\":%llu,"
                    "\"recompiles\":%llu}\n",
                    row.mode, calls, row.t->wall_s,
                    row.t->wall_s * 1e6 / calls, row.speedup,
                    num_vars, num_clauses, row.hits, row.misses,
                    row.recompiles);
    }

    // The acceptance bars apply at full scale; smoke runs are sized
    // for CI latency, where constant overheads dominate.
    if (!smoke && speedup < 2.0) {
        std::printf("FAIL: warm speedup %.2fx below the 2x bar\n",
                    speedup);
        return 1;
    }
    if (!smoke && warm_hits == 0) {
        std::printf("FAIL: warm series never hit the embedding "
                    "cache (no cross-call reuse)\n");
        return 1;
    }
    return 0;
}
