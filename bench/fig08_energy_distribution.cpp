/**
 * @file
 * Reproduces Figure 8: QA energy distributions of satisfiable vs
 * unsatisfiable problems, the Gaussian Naive Bayes fit and the 90%
 * confidence cut points that define the backend's intervals.
 */

#include <cstdio>

#include "bench/common.h"
#include "embed/hyqsat_embedder.h"
#include "gen/random_sat.h"
#include "sat/solver.h"
#include "util/stats.h"
#include "util/table.h"

using namespace hyqsat;

int
main()
{
    std::printf("=== Figure 8: QA energy distribution and GNB fit "
                "===\n");
    const int per_class = bench::fullScale() ? 1000 : 150;
    // The paper uses 50-160 clauses on the physical 2000Q (capacity
    // ~170); our reimplemented embedder saturates near 45 clauses,
    // so the distribution is collected over 20-45 clause problems -
    // same protocol, scaled to the substrate (see EXPERIMENTS.md).
    std::printf("(%d problems per class, 20-45 clauses each)\n",
                per_class);

    const auto graph = chimera::ChimeraGraph::dwave2000q();
    anneal::QuantumAnnealer::Options qa_opts;
    qa_opts.noise = anneal::NoiseModel::dwave2000q();
    qa_opts.greedy_finish = true; // device relaxes to a local minimum
    anneal::QuantumAnnealer annealer(graph, qa_opts);

    std::vector<double> energies;
    std::vector<bool> satisfiable;
    Rng rng(0xf8);
    int made_sat = 0, made_unsat = 0;
    int guard = 0;
    while ((made_sat < per_class || made_unsat < per_class) &&
           ++guard < 200 * per_class) {
        // The paper draws 50-200 variables and 50-160 clauses; to
        // label instances exactly we draw from regimes with known
        // status and verify with the CDCL solver.
        const bool want_sat = made_sat < made_unsat ||
                              (made_sat < per_class &&
                               made_unsat >= per_class);
        const int clauses = 20 + static_cast<int>(rng.below(26));
        sat::Cnf cnf;
        if (want_sat) {
            const int vars = clauses / 2 + rng.below(50);
            cnf = gen::plantedRandom3Sat(
                std::max(vars, 10), clauses, rng);
        } else {
            const int vars =
                std::max(6, clauses / 8 + static_cast<int>(
                                              rng.below(4)));
            cnf = gen::uniformRandom3Sat(vars, clauses, rng);
        }
        sat::Solver check;
        const bool is_sat =
            check.loadCnf(cnf) && check.solve().isTrue();
        if (is_sat && made_sat >= per_class)
            continue;
        if (!is_sat && made_unsat >= per_class)
            continue;

        const std::vector<sat::LitVec> queue(cnf.clauses().begin(),
                                             cnf.clauses().end());
        embed::HyQsatEmbedder embedder(graph);
        const auto fx = embedder.embedQueue(queue);
        if (!fx.all_embedded)
            continue; // Fig. 8 uses fully embedded problems
        const auto sample = annealer.sample(fx.problem, fx.embedding);
        energies.push_back(sample.clause_energy);
        satisfiable.push_back(is_sat);
        (is_sat ? made_sat : made_unsat)++;
    }

    // Histogram of both classes.
    double max_e = 0;
    for (double e : energies)
        max_e = std::max(max_e, e);
    Histogram sat_hist(0, max_e + 1, 12), unsat_hist(0, max_e + 1, 12);
    for (std::size_t i = 0; i < energies.size(); ++i)
        (satisfiable[i] ? sat_hist : unsat_hist).add(energies[i]);

    Table table;
    table.setHeader({"Energy bin", "SAT %", "UNSAT %"});
    for (std::size_t b = 0; b < sat_hist.bins(); ++b) {
        table.addRow({Table::num(sat_hist.binCenter(b), 1),
                      Table::num(100 * sat_hist.binFraction(b), 1),
                      Table::num(100 * unsat_hist.binFraction(b), 1)});
    }
    table.print();

    bayes::EnergyClassifier classifier;
    classifier.fit(energies, satisfiable, 0.9);
    std::printf("\nGNB fit: near-satisfiable cut = %.2f, "
                "near-unsatisfiable cut = %.2f (paper: 4.5 and 8 on "
                "D-Wave 2000Q)\n",
                classifier.nearSatCut(), classifier.nearUnsatCut());
    std::printf("GNB training accuracy: %.2f%%\n",
                100.0 * classifier.model().accuracy(
                            [&] {
                                std::vector<std::vector<double>> f;
                                for (double e : energies)
                                    f.push_back({e});
                                return f;
                            }(),
                            [&] {
                                std::vector<int> l;
                                for (bool s : satisfiable)
                                    l.push_back(s ? 1 : 0);
                                return l;
                            }()));
    std::printf("\nShape to check: SAT mass concentrated near 0, "
                "UNSAT mass shifted right, cuts in between.\n");
    return 0;
}
