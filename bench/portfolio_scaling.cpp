/**
 * @file
 * Portfolio scaling bench: races 1/2/4/8 diversified workers over a
 * curated hard random 3-SAT set near the phase transition
 * (m/n ~ 4.26, the regime where single-config variance is largest)
 * and reports per-worker-count wall clock, the per-config
 * single-solver baseline, and cooperative-cancellation latency.
 *
 * Acceptance bar (ISSUE 2): 4 diverse workers' total wall clock <=
 * the best single config on the set, never worse than 1.2x the best
 * single config on any one instance, and cancellation latency after
 * the first solution < 50 ms. A JSON trajectory line per
 * configuration is emitted for the BENCH log.
 */

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "gen/random_sat.h"
#include "portfolio/portfolio.h"
#include "util/table.h"
#include "util/timer.h"

using namespace hyqsat;

int
main()
{
    std::printf("=== Portfolio scaling: diverse-config racing on "
                "phase-transition random 3-SAT ===\n");
    const unsigned cores = std::thread::hardware_concurrency();
    std::printf("hardware threads: %u (racing needs >= 4 cores for "
                "the wall-clock-vs-best-single bar; below that the "
                "workers time-slice and the ratio mostly measures "
                "oversubscription)\n",
                cores);

    const int instances = bench::fullScale()              ? 12
                          : std::getenv("HYQSAT_BENCH_TINY") ? 3
                                                            : 6;
    const int base_vars = bench::fullScale() ? 120 : 80;

    // Curated hard set: uniform random 3-SAT at m/n ~ 4.26.
    std::vector<sat::Cnf> suite;
    for (int i = 0; i < instances; ++i) {
        const int n = base_vars + 10 * (i % 3);
        const int m = static_cast<int>(n * 4.26);
        Rng rng(0xf017f017ull + 7919ull * static_cast<std::uint64_t>(i));
        suite.push_back(gen::uniformRandom3Sat(n, m, rng));
    }

    core::HybridConfig base = bench::noiseFreeConfig(0x5ca1ab1e);
    base.max_warmup = 64; // keep QA warm-up proportionate on this set

    // Per-config single-solver baseline over the diversification
    // slate actually raced at 4 workers.
    const auto slate = portfolio::PortfolioSolver::diversify(base, 4);
    std::map<std::string, double> config_total;
    std::vector<double> best_single_per_instance(suite.size(), 0.0);
    for (std::size_t i = 0; i < suite.size(); ++i) {
        double best = -1.0;
        for (const auto &w : slate) {
            Timer t;
            core::HybridSolver solver(w.hybrid);
            (void)solver.solve(suite[i]);
            const double s = t.seconds();
            config_total[w.label] += s;
            if (best < 0.0 || s < best)
                best = s;
        }
        best_single_per_instance[i] = best;
    }
    double best_config_total = -1.0;
    std::string best_config;
    for (const auto &[label, total] : config_total) {
        if (best_config_total < 0.0 || total < best_config_total) {
            best_config_total = total;
            best_config = label;
        }
    }

    Table table;
    table.setHeader({"workers", "wall_s", "vs best single",
                     "max instance ratio", "cancel ms (max)"});
    for (const int workers : {1, 2, 4, 8}) {
        portfolio::PortfolioOptions opts;
        opts.base = base;
        opts.num_workers = workers;
        portfolio::PortfolioSolver solver(opts);

        double total = 0.0, worst_ratio = 0.0, worst_cancel_ms = 0.0;
        int undecided = 0;
        for (std::size_t i = 0; i < suite.size(); ++i) {
            const auto result = solver.solve(suite[i]);
            total += result.wall_s;
            if (result.status.isUndef())
                ++undecided;
            if (best_single_per_instance[i] > 0.0) {
                worst_ratio = std::max(
                    worst_ratio,
                    result.wall_s / best_single_per_instance[i]);
            }
            worst_cancel_ms = std::max(
                worst_cancel_ms, result.cancel_latency_s * 1e3);
        }

        table.addRow({std::to_string(workers), Table::num(total, 3),
                      Table::num(total / best_config_total, 2) + "x",
                      Table::num(worst_ratio, 2) + "x",
                      Table::num(worst_cancel_ms, 2)});
        std::printf("BENCH {\"bench\":\"portfolio_scaling\","
                    "\"workers\":%d,\"wall_s\":%.4f,"
                    "\"best_single_total_s\":%.4f,"
                    "\"best_single_config\":\"%s\","
                    "\"max_instance_ratio\":%.3f,"
                    "\"max_cancel_latency_ms\":%.3f,"
                    "\"undecided\":%d,\"instances\":%zu,"
                    "\"cores\":%u}\n",
                    workers, total, best_config_total,
                    best_config.c_str(), worst_ratio, worst_cancel_ms,
                    undecided, suite.size(), cores);
    }

    std::printf("\nsingle-config totals over the set:\n");
    for (const auto &[label, total] : config_total)
        std::printf("  %-14s %.3f s%s\n", label.c_str(), total,
                    label == best_config ? "  <- best" : "");
    std::printf("\n");
    table.print();
    return 0;
}
