/**
 * @file
 * Reproduces Figure 5: how often clauses are visited during
 * propagation and conflict resolving, by activity quintile, over
 * random 3-SAT problems shaped like UF200-860. The paper reports
 * the top fifth of clauses taking 42% of visits (33% propagation +
 * 9% conflict).
 */

#include <algorithm>
#include <cstdio>

#include "bench/common.h"
#include "gen/random_sat.h"
#include "util/table.h"

using namespace hyqsat;

int
main()
{
    std::printf("=== Figure 5: clause visit frequency by quintile "
                "(UF200-860 shape) ===\n");
    const int problems = bench::fullScale() ? 100 : 20;
    std::printf("(%d problems)\n", problems);

    // Quintile -> accumulated shares.
    double prop_share[5] = {};
    double confl_share[5] = {};

    Rng rng(0xf5);
    for (int p = 0; p < problems; ++p) {
        const auto cnf = gen::uniformRandom3Sat(200, 860, rng);
        sat::Solver solver;
        if (!solver.loadCnf(cnf))
            continue;
        solver.solve();

        const int m = solver.numOriginalClauses();
        std::vector<int> order(m);
        for (int i = 0; i < m; ++i)
            order[i] = i;
        // Rank clauses by total visits (the paper's "number of
        // visits" partition).
        std::sort(order.begin(), order.end(), [&](int a, int b) {
            return solver.clausePropagationVisits(a) +
                       solver.clauseConflictVisits(a) >
                   solver.clausePropagationVisits(b) +
                       solver.clauseConflictVisits(b);
        });

        double total = 0;
        for (int i = 0; i < m; ++i) {
            total += static_cast<double>(
                solver.clausePropagationVisits(i) +
                solver.clauseConflictVisits(i));
        }
        if (total == 0)
            continue;
        for (int q = 0; q < 5; ++q) {
            const int lo = q * m / 5, hi = (q + 1) * m / 5;
            double prop = 0, confl = 0;
            for (int i = lo; i < hi; ++i) {
                prop += static_cast<double>(
                    solver.clausePropagationVisits(order[i]));
                confl += static_cast<double>(
                    solver.clauseConflictVisits(order[i]));
            }
            prop_share[q] += prop / total;
            confl_share[q] += confl / total;
        }
    }

    Table table;
    table.setHeader({"Clause quintile", "Propagation %", "Conflict %",
                     "Total %"});
    const char *names[5] = {"top 1/5", "2nd 1/5", "3rd 1/5",
                            "4th 1/5", "bottom 1/5"};
    for (int q = 0; q < 5; ++q) {
        const double prop = 100.0 * prop_share[q] / problems;
        const double confl = 100.0 * confl_share[q] / problems;
        table.addRow({names[q], Table::num(prop, 1),
                      Table::num(confl, 1),
                      Table::num(prop + confl, 1)});
    }
    table.print();
    std::printf("\nPaper (Fig. 5): the top fifth of clauses takes "
                "42%% of visits (33%% propagation + 9%% conflict). "
                "Shape to check: strong concentration in the top "
                "quintile, monotone decay across quintiles.\n");
    return 0;
}
