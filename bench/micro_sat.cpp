/**
 * @file
 * Microbenchmarks for the SAT substrate's hot paths (propagation,
 * full solves, clause-queue generation) using google-benchmark.
 */

#include <benchmark/benchmark.h>

#include "core/clause_queue.h"
#include "gen/random_sat.h"
#include "sat/solver.h"
#include "util/metrics.h"
#include "util/rng.h"

using namespace hyqsat;

namespace {

void
BM_SolveRandom3Sat(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    const int m = static_cast<int>(n * 4.26);
    Rng rng(42);
    const auto cnf = gen::uniformRandom3Sat(n, m, rng);
    for (auto _ : state) {
        sat::Solver solver;
        solver.loadCnf(cnf);
        benchmark::DoNotOptimize(solver.solve());
    }
}
BENCHMARK(BM_SolveRandom3Sat)->Arg(50)->Arg(100)->Arg(150);

// Overhead contract for the observability layer: this variant runs
// the identical solve with a registry attached. The acceptance bar
// is < 2% vs BM_SolveRandom3Sat (publishing is delta-based at
// restart boundaries; the propagate/decide hot loop is untouched).
void
BM_SolveRandom3SatMetricsEnabled(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    const int m = static_cast<int>(n * 4.26);
    Rng rng(42);
    const auto cnf = gen::uniformRandom3Sat(n, m, rng);
    MetricsRegistry registry;
    for (auto _ : state) {
        sat::Solver solver;
        solver.attachMetrics(&registry);
        solver.loadCnf(cnf);
        benchmark::DoNotOptimize(solver.solve());
    }
}
BENCHMARK(BM_SolveRandom3SatMetricsEnabled)->Arg(50)->Arg(100)->Arg(150);

void
BM_LoadAndPropagate(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    Rng rng(43);
    // Horn-heavy: load triggers long unit-propagation chains.
    const auto cnf = gen::randomHornLike(n, 3 * n, 0.95, rng);
    for (auto _ : state) {
        sat::Solver solver;
        benchmark::DoNotOptimize(solver.loadCnf(cnf));
    }
}
BENCHMARK(BM_LoadAndPropagate)->Arg(200)->Arg(1000);

void
BM_ClauseQueueGeneration(benchmark::State &state)
{
    Rng rng(44);
    const auto cnf = gen::uniformRandom3Sat(200, 860, rng);
    sat::Solver solver;
    solver.loadCnf(cnf);
    Rng qrng(45);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::generateClauseQueue(solver, {}, qrng));
    }
}
BENCHMARK(BM_ClauseQueueGeneration);

} // namespace

BENCHMARK_MAIN();
