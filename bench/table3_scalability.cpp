/**
 * @file
 * Reproduces Table III: iteration reduction of HyQSAT vs classic
 * CDCL on Chimera grids of growing size (16x16, 24x24, 32x32,
 * 64x64), with a 10% readout bit-flip added to the noise-free
 * simulation (§VI-G), on the AI series plus a 500-variable random
 * 3-SAT family.
 *
 * Protocol notes: the paper's scalability study runs its simulator
 * (dwave-neal) plus bit flips, i.e. samples the *logical* problem -
 * the grid size enters through how many clauses the frontend can
 * embed. The classic baseline is solved once per instance and
 * reused across grids.
 */

#include <cstdio>
#include <cstdlib>

#include "bench/common.h"
#include "gen/random_sat.h"
#include "util/stats.h"
#include "util/table.h"

using namespace hyqsat;

namespace {

struct Instance
{
    sat::Cnf cnf;
    double classic_iterations = 0;
};

double
hybridIterations(const sat::Cnf &cnf, int grid, std::uint64_t seed)
{
    auto cfg = bench::noiseFreeConfig(seed);
    cfg.chimera_rows = grid;
    cfg.chimera_cols = grid;
    cfg.annealer.noise.readout_flip_prob = 0.1; // §VI-G bit flipping
    cfg.use_embedding = false; // logical sampling, like the paper
    cfg.frontend.queue.capacity = cnf.numClauses();
    // Bound the warm-up so the largest (500-variable) rows stay
    // within bench time on a single core.
    cfg.max_warmup = 256;
    core::HybridSolver hybrid(cfg);
    return static_cast<double>(std::max<std::uint64_t>(
        hybrid.solve(cnf).stats.iterations, 1));
}

} // namespace

int
main()
{
    std::printf("=== Table III: HyQSAT scalability over Chimera grid "
                "sizes (10%% bit-flip noise) ===\n");
    const int count = bench::fullScale()            ? 5
                      : std::getenv("HYQSAT_BENCH_TINY") ? 1
                                                         : 2;
    std::printf("(%d instances per row)\n", count);

    const std::vector<int> grids{16, 24, 32, 64};
    Table table;
    table.setHeader({"Benchmark", "16x16", "24x24", "32x32", "64x64"});

    auto addRow = [&](const std::string &label,
                      const std::vector<Instance> &instances,
                      std::uint64_t seed_base) {
        std::vector<std::string> row{label};
        for (int grid : grids) {
            OnlineStats reds;
            for (std::size_t i = 0; i < instances.size(); ++i) {
                const double hybrid_iters = hybridIterations(
                    instances[i].cnf, grid, seed_base + i);
                reds.add(bench::ratio(
                    instances[i].classic_iterations, hybrid_iters));
            }
            row.push_back(Table::num(reds.mean(), 2));
        }
        // Stream each completed row so slow hosts still show
        // progress (the full table prints again at the end).
        std::printf("row done:");
        for (const auto &cell : row)
            std::printf(" %s", cell.c_str());
        std::printf("\n");
        std::fflush(stdout);
        table.addRow(row);
    };

    for (const char *id : {"AI1", "AI2", "AI3", "AI4", "AI5"}) {
        const auto &benchmark = gen::BenchmarkSuite::byId(id);
        std::vector<Instance> instances;
        for (int i = 0; i < count; ++i) {
            Instance inst;
            inst.cnf = benchmark.make(i, 0x7ab3);
            const auto classic = core::solveClassicCdcl(
                inst.cnf, sat::SolverOptions::minisatStyle());
            inst.classic_iterations =
                static_cast<double>(classic.stats.iterations);
            instances.push_back(std::move(inst));
        }
        addRow(id, instances, 100);
    }

    {
        std::vector<Instance> instances;
        for (int i = 0; i < count; ++i) {
            Instance inst;
            Rng rng(0x500 + i);
            // Slightly below the phase transition so the classic
            // baseline terminates in bench time on one core.
            inst.cnf = gen::uniformRandom3Sat(500, 2000, rng);
            const auto classic = core::solveClassicCdcl(
                inst.cnf, sat::SolverOptions::minisatStyle());
            inst.classic_iterations =
                static_cast<double>(classic.stats.iterations);
            instances.push_back(std::move(inst));
        }
        addRow("Var500", instances, 200);
    }

    table.print();
    std::printf("\nPaper (Table III): reductions grow sharply once "
                "the grid embeds most clauses (AI rows jump from "
                "~4-6x at 16x16 to hundreds at 24x24+; Var500 needs "
                "32x32+). Shape to check: reductions non-decreasing "
                "with grid size, with the largest gains where the "
                "formula first fits (shifted to larger grids here - "
                "our embedder packs one variable per vertical "
                "line).\n");
    return 0;
}
