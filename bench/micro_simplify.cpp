/**
 * @file
 * Inprocessing pipeline micro-benchmark, two halves:
 *
 *  1. Reduction: run the Light and Full presets over random 3-SAT
 *     at the phase transition (m/n = 4.26) and over the structured
 *     flat graph-colouring family, and report the measured clause
 *     and variable reduction ratios plus pipeline wall time.
 *
 *  2. Hybrid A/B: solve the same phase-transition instance with
 *     HybridSolver at simplify off vs full and record the frontend
 *     cache (frontend.cache.hits/misses) and unsatisfied-clause
 *     enumeration (frontend.unsat.incremental/scans) counter deltas,
 *     i.e. how preprocessing changes the work the QA frontend sees.
 *
 * Emits one "BENCH {json}" trajectory line per (family, strength)
 * reduction row and per hybrid path; run_benches.sh collects them
 * into BENCH_micro_simplify<suffix>.json for CI shape checks.
 *
 *   ./micro_simplify [--smoke]    (HYQSAT_BENCH_TINY=1 also works)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench/common.h"
#include "gen/graph_coloring.h"
#include "gen/random_sat.h"
#include "simplify/pipeline.h"
#include "util/metrics.h"
#include "util/timer.h"

using namespace hyqsat;

namespace {

/** Accumulated reduction measurement for one (family, strength). */
struct ReductionRow
{
    int instances = 0;
    long clauses_in = 0;
    long clauses_out = 0;
    long vars_in = 0;
    long vars_out = 0;
    int unsat = 0; ///< instances the pipeline refuted outright
    double wall_s = 0.0;
};

void
accumulate(ReductionRow &row, const sat::Cnf &cnf,
           simplify::Strength strength)
{
    const simplify::Pipeline pipe(simplify::Options::preset(strength));
    Timer t;
    const simplify::Result r = pipe.run(cnf);
    row.wall_s += t.seconds();
    ++row.instances;
    row.clauses_in += r.stats.clauses_in;
    row.vars_in += r.stats.vars_in;
    if (!r.satisfiable_possible) {
        ++row.unsat;
        return;
    }
    row.clauses_out += r.stats.clauses_out;
    row.vars_out += r.stats.vars_out;
}

double
ratio(long removed, long total)
{
    return total > 0 ? static_cast<double>(removed) / total : 0.0;
}

void
report(const char *family, simplify::Strength strength,
       const ReductionRow &row)
{
    const double clause_red =
        ratio(row.clauses_in - row.clauses_out, row.clauses_in);
    const double var_red =
        ratio(row.vars_in - row.vars_out, row.vars_in);
    std::printf("%-10s %-6s  %2d inst  clauses %6ld -> %6ld "
                "(-%5.1f%%)  vars %6ld -> %6ld (-%5.1f%%)  "
                "%d unsat  %.3f s\n",
                family, simplify::strengthName(strength),
                row.instances, row.clauses_in, row.clauses_out,
                clause_red * 100, row.vars_in, row.vars_out,
                var_red * 100, row.unsat, row.wall_s);
    std::printf("BENCH {\"bench\":\"micro_simplify\","
                "\"kind\":\"reduction\",\"family\":\"%s\","
                "\"strength\":\"%s\",\"instances\":%d,"
                "\"clauses_in\":%ld,\"clauses_out\":%ld,"
                "\"clause_reduction\":%.4f,\"vars_in\":%ld,"
                "\"vars_out\":%ld,\"var_reduction\":%.4f,"
                "\"unsat\":%d,\"wall_s\":%.6f}\n",
                family, simplify::strengthName(strength),
                row.instances, row.clauses_in, row.clauses_out,
                clause_red, row.vars_in, row.vars_out, var_red,
                row.unsat, row.wall_s);
}

/** Frontend-facing counters observed during one hybrid solve. */
struct HybridProbe
{
    const char *status = "UNKNOWN";
    double wall_s = 0.0;
    std::uint64_t iterations = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t unsat_incremental = 0;
    std::uint64_t unsat_scans = 0;
};

HybridProbe
probeHybrid(const sat::Cnf &cnf, simplify::Strength strength,
            std::uint64_t seed)
{
    MetricsRegistry registry;
    core::HybridConfig cfg = bench::noiseFreeConfig(seed);
    cfg.simplify_strength = strength;
    cfg.metrics = &registry;

    HybridProbe p;
    Timer t;
    const auto r = core::HybridSolver(cfg).solve(cnf);
    p.wall_s = t.seconds();
    p.status = r.status.isUndef() ? "UNKNOWN"
               : r.status.isTrue() ? "SAT"
                                   : "UNSAT";
    p.iterations = r.stats.iterations;
    p.cache_hits = registry.counter("frontend.cache.hits")->value();
    p.cache_misses =
        registry.counter("frontend.cache.misses")->value();
    p.unsat_incremental =
        registry.counter("frontend.unsat.incremental")->value();
    p.unsat_scans = registry.counter("frontend.unsat.scans")->value();
    return p;
}

void
reportHybrid(const char *path, const HybridProbe &p)
{
    std::printf("hybrid %-4s  %-7s  %6llu iters  cache %llu/%llu "
                "hit/miss  unsat enum %llu inc / %llu scans  %.3f s\n",
                path, p.status,
                static_cast<unsigned long long>(p.iterations),
                static_cast<unsigned long long>(p.cache_hits),
                static_cast<unsigned long long>(p.cache_misses),
                static_cast<unsigned long long>(p.unsat_incremental),
                static_cast<unsigned long long>(p.unsat_scans),
                p.wall_s);
    std::printf("BENCH {\"bench\":\"micro_simplify\","
                "\"kind\":\"hybrid_ab\",\"path\":\"%s\","
                "\"status\":\"%s\",\"wall_s\":%.6f,"
                "\"iterations\":%llu,\"cache_hits\":%llu,"
                "\"cache_misses\":%llu,\"unsat_incremental\":%llu,"
                "\"unsat_scans\":%llu}\n",
                path, p.status, p.wall_s,
                static_cast<unsigned long long>(p.iterations),
                static_cast<unsigned long long>(p.cache_hits),
                static_cast<unsigned long long>(p.cache_misses),
                static_cast<unsigned long long>(p.unsat_incremental),
                static_cast<unsigned long long>(p.unsat_scans));
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = std::getenv("HYQSAT_BENCH_TINY") != nullptr;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--smoke"))
            smoke = true;
    }

    const int instances = smoke ? 3 : 10;
    const int rand_vars = smoke ? 60 : 200;
    const int rand_clauses = static_cast<int>(rand_vars * 4.26);
    const int color_vertices = smoke ? 20 : 60;
    const int color_edges = smoke ? 40 : 140;

    std::printf("=== micro_simplify: pipeline reduction and hybrid "
                "frontend deltas (%d inst/family; random3sat %dv/%dc "
                "at m/n=4.26; coloring flat(%d,%d,3)) ===\n",
                instances, rand_vars, rand_clauses, color_vertices,
                color_edges);

    for (const simplify::Strength strength :
         {simplify::Strength::Light, simplify::Strength::Full}) {
        ReductionRow random_row, coloring_row;
        Rng rng(0x51231f5);
        for (int i = 0; i < instances; ++i) {
            accumulate(random_row,
                       gen::uniformRandom3Sat(rand_vars,
                                              rand_clauses, rng),
                       strength);
            accumulate(coloring_row,
                       gen::flatColoringCnf(color_vertices,
                                            color_edges, 3, rng),
                       strength);
        }
        report("random3sat", strength, random_row);
        report("coloring", strength, coloring_row);
    }

    // Hybrid A/B: same instance and seed, simplify off vs full. The
    // counter deltas quantify how much frontend work (embedding
    // cache traffic, unsatisfied-clause enumeration) preprocessing
    // removes before the QA loop ever sees the formula.
    const int hyb_vars = smoke ? 40 : 120;
    const int hyb_clauses = static_cast<int>(hyb_vars * 4.1);
    Rng hyb_rng(0xab5eed);
    const sat::Cnf hyb_cnf =
        gen::uniformRandom3Sat(hyb_vars, hyb_clauses, hyb_rng);

    const HybridProbe off =
        probeHybrid(hyb_cnf, simplify::Strength::Off, 0x9e11);
    const HybridProbe full =
        probeHybrid(hyb_cnf, simplify::Strength::Full, 0x9e11);
    reportHybrid("off", off);
    reportHybrid("full", full);
    if (std::strcmp(off.status, full.status) != 0) {
        std::printf("FAIL: hybrid verdict changed under simplify "
                    "(off=%s full=%s)\n",
                    off.status, full.status);
        return 1;
    }
    return 0;
}
