/**
 * @file
 * Shared helpers for the reproduction benches: canonical annealer
 * configurations, benchmark-suite sizing, and run-scale control.
 *
 * Every bench binary regenerates one table or figure of the paper
 * (see DESIGN.md's per-experiment index). By default the benches run
 * at a reduced instance count so the whole bench suite finishes in
 * minutes; set HYQSAT_BENCH_SCALE=full for paper-sized runs.
 */

#ifndef HYQSAT_BENCH_COMMON_H
#define HYQSAT_BENCH_COMMON_H

#include <algorithm>
#include <cstdlib>
#include <string>

#include "core/hybrid_solver.h"
#include "gen/benchmarks.h"

namespace hyqsat::bench {

/** True when HYQSAT_BENCH_SCALE=full is exported. */
inline bool
fullScale()
{
    const char *scale = std::getenv("HYQSAT_BENCH_SCALE");
    return scale && std::string(scale) == "full";
}

/** Instances per benchmark family for suite-wide benches. */
inline int
instancesFor(const gen::Benchmark &benchmark)
{
    if (fullScale())
        return benchmark.default_count;
    // Reduced counts keep the default bench sweep at minutes.
    if (benchmark.id == "IF2")
        return 2;
    if (benchmark.id == "II")
        return 5;
    if (benchmark.id == "IF1")
        return 3;
    return std::min(benchmark.default_count, 4);
}

/**
 * Backend selection for the whole bench suite: HYQSAT_SAMPLER names
 * the sampling backend ("sync", "qa", "logical", "sa", "batch",
 * "async", "async:<backend>") and HYQSAT_PIPELINE_DEPTH sets the
 * async in-flight depth. Unset keeps the classic blocking loop.
 */
inline void
applySamplerEnv(core::HybridConfig &cfg)
{
    if (const char *name = std::getenv("HYQSAT_SAMPLER"))
        cfg.sampler = name;
    if (const char *depth = std::getenv("HYQSAT_PIPELINE_DEPTH"))
        cfg.pipeline_depth = std::max(1, std::atoi(depth));
}

/** The §VI-B noise-free simulator configuration. */
inline core::HybridConfig
noiseFreeConfig(std::uint64_t seed = 0x5eedba5e)
{
    core::HybridConfig cfg;
    cfg.annealer.noise = anneal::NoiseModel::noiseFree();
    cfg.annealer.greedy_finish = true;
    cfg.annealer.attempts = 2;
    cfg.seed = seed;
    applySamplerEnv(cfg);
    return cfg;
}

/** The §VI-C noisy D-Wave 2000Q-like configuration. */
inline core::HybridConfig
noisyConfig(std::uint64_t seed = 0x2000aced)
{
    core::HybridConfig cfg;
    cfg.annealer.noise = anneal::NoiseModel::dwave2000q();
    // A physical annealer relaxes into a local minimum of the
    // (noise-perturbed) final Hamiltonian, so the device model ends
    // with a zero-temperature descent; control noise and readout
    // errors still apply.
    cfg.annealer.greedy_finish = true;
    cfg.annealer.attempts = 1;
    cfg.seed = seed;
    applySamplerEnv(cfg);
    return cfg;
}

/** Ratio with a guarded denominator. */
inline double
ratio(double a, double b)
{
    return a / std::max(b, 1e-12);
}

} // namespace hyqsat::bench

#endif // HYQSAT_BENCH_COMMON_H
