/**
 * @file
 * Satisfaction-probability classification (§V-A): the energy axis is
 * partitioned into confidence intervals from a Gaussian Naive Bayes
 * fit of sampled energies of known-satisfiable and
 * known-unsatisfiable problems. The paper's published cut points for
 * D-Wave 2000Q are [0,0], (0,4.5], (4.5,8], (8,inf), obtained with a
 * 90% confidence factor.
 */

#ifndef HYQSAT_BAYES_INTERVALS_H
#define HYQSAT_BAYES_INTERVALS_H

#include <string>
#include <vector>

#include "bayes/gnb.h"

namespace hyqsat::bayes {

/** The four satisfaction-probability classes of §V-A. */
enum class SatisfactionClass
{
    Satisfiable,       ///< energy exactly 0
    NearSatisfiable,   ///< (0, near_sat]
    Uncertain,         ///< (near_sat, near_unsat]
    NearUnsatisfiable, ///< (near_unsat, inf)
};

/** @return a printable name for a class. */
const char *satisfactionClassName(SatisfactionClass c);

/** Energy-axis classifier with confidence-interval cut points. */
class EnergyClassifier
{
  public:
    /** Construct with the paper's published 2000Q cut points. */
    EnergyClassifier() = default;

    /** Construct with explicit cut points. */
    EnergyClassifier(double near_sat_cut, double near_unsat_cut)
        : near_sat_cut_(near_sat_cut), near_unsat_cut_(near_unsat_cut)
    {
    }

    /**
     * Fit cut points from labeled energies: fit a two-class GNB
     * (label true == satisfiable) on the 1-D energies and place the
     * near-satisfiable cut where P(sat | e) falls below @p
     * confidence and the near-unsatisfiable cut where it falls below
     * 1 - @p confidence (scanned numerically).
     */
    void fit(const std::vector<double> &energies,
             const std::vector<bool> &satisfiable,
             double confidence = 0.9);

    /** Classify one clause-space energy. */
    SatisfactionClass classify(double energy) const;

    /** Posterior P(satisfiable | energy); requires fit(). */
    double posteriorSatisfiable(double energy) const;

    /** The (0, near_sat] upper bound. */
    double nearSatCut() const { return near_sat_cut_; }

    /** The (near_sat, near_unsat] upper bound. */
    double nearUnsatCut() const { return near_unsat_cut_; }

    /**
     * Width of the uncertain interval relative to the spanned
     * energy range [0, max_energy] (Fig. 15b metric).
     */
    double uncertainFraction(double max_energy) const;

    /** The underlying two-class model (valid after fit()). */
    const GaussianNaiveBayes &model() const { return gnb_; }

  private:
    // Paper defaults for D-Wave 2000Q.
    double near_sat_cut_ = 4.5;
    double near_unsat_cut_ = 8.0;
    GaussianNaiveBayes gnb_;
};

} // namespace hyqsat::bayes

#endif // HYQSAT_BAYES_INTERVALS_H
