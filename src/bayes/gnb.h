/**
 * @file
 * Gaussian Naive Bayes classifier. The HyQSAT backend (§V-A) fits
 * one to the QA energy distribution of known satisfiable and
 * unsatisfiable problems, then cuts the energy axis into confidence
 * intervals. The implementation is generic (d features, k classes).
 */

#ifndef HYQSAT_BAYES_GNB_H
#define HYQSAT_BAYES_GNB_H

#include <vector>

namespace hyqsat::bayes {

/** Gaussian Naive Bayes over dense feature vectors. */
class GaussianNaiveBayes
{
  public:
    /**
     * Fit from samples.
     * @param features n x d matrix (row per sample)
     * @param labels class index per sample (0..k-1)
     * @param num_classes k (> max label)
     */
    void fit(const std::vector<std::vector<double>> &features,
             const std::vector<int> &labels, int num_classes);

    /** @return true once fit() has been called with data. */
    bool fitted() const { return !priors_.empty(); }

    /** Per-class posterior probabilities for one feature vector. */
    std::vector<double> posterior(const std::vector<double> &x) const;

    /** Most probable class for one feature vector. */
    int predict(const std::vector<double> &x) const;

    /** Fraction of samples predicted correctly. */
    double accuracy(const std::vector<std::vector<double>> &features,
                    const std::vector<int> &labels) const;

    /** Class prior P(c). */
    double prior(int c) const { return priors_[c]; }

    /** Fitted mean of feature @p d under class @p c. */
    double mean(int c, int d) const { return means_[c][d]; }

    /** Fitted variance of feature @p d under class @p c. */
    double variance(int c, int d) const { return vars_[c][d]; }

  private:
    std::vector<double> priors_;
    std::vector<std::vector<double>> means_;
    std::vector<std::vector<double>> vars_;
};

} // namespace hyqsat::bayes

#endif // HYQSAT_BAYES_GNB_H
