#include "bayes/intervals.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace hyqsat::bayes {

const char *
satisfactionClassName(SatisfactionClass c)
{
    switch (c) {
      case SatisfactionClass::Satisfiable:
        return "satisfiable";
      case SatisfactionClass::NearSatisfiable:
        return "near-satisfiable";
      case SatisfactionClass::Uncertain:
        return "uncertain";
      case SatisfactionClass::NearUnsatisfiable:
        return "near-unsatisfiable";
    }
    return "?";
}

void
EnergyClassifier::fit(const std::vector<double> &energies,
                      const std::vector<bool> &satisfiable,
                      double confidence)
{
    if (energies.size() != satisfiable.size() || energies.empty())
        fatal("EnergyClassifier::fit: bad training data");

    std::vector<std::vector<double>> features(energies.size());
    std::vector<int> labels(energies.size());
    double max_energy = 0.0;
    for (std::size_t i = 0; i < energies.size(); ++i) {
        features[i] = {energies[i]};
        labels[i] = satisfiable[i] ? 1 : 0;
        max_energy = std::max(max_energy, energies[i]);
    }
    gnb_.fit(features, labels, 2);

    // Scan the energy axis for the confidence crossings.
    const int steps = 4096;
    double sat_cut = 0.0;
    double unsat_cut = max_energy;
    bool found_sat = false, found_unsat = false;
    for (int i = 0; i <= steps; ++i) {
        const double e =
            max_energy * static_cast<double>(i) / steps;
        const double p = gnb_.posterior({e})[1];
        if (!found_sat && p < confidence) {
            sat_cut = e;
            found_sat = true;
        }
        if (!found_unsat && p < 1.0 - confidence) {
            unsat_cut = e;
            found_unsat = true;
        }
    }
    if (!found_sat)
        sat_cut = max_energy;
    near_sat_cut_ = sat_cut;
    near_unsat_cut_ = std::max(unsat_cut, sat_cut);
}

SatisfactionClass
EnergyClassifier::classify(double energy) const
{
    if (energy <= 0.0)
        return SatisfactionClass::Satisfiable;
    if (energy <= near_sat_cut_)
        return SatisfactionClass::NearSatisfiable;
    if (energy <= near_unsat_cut_)
        return SatisfactionClass::Uncertain;
    return SatisfactionClass::NearUnsatisfiable;
}

double
EnergyClassifier::posteriorSatisfiable(double energy) const
{
    if (!gnb_.fitted())
        panic("EnergyClassifier::posteriorSatisfiable before fit()");
    return gnb_.posterior({energy})[1];
}

double
EnergyClassifier::uncertainFraction(double max_energy) const
{
    if (max_energy <= 0.0)
        return 0.0;
    const double width =
        std::clamp(near_unsat_cut_, 0.0, max_energy) -
        std::clamp(near_sat_cut_, 0.0, max_energy);
    return std::max(width, 0.0) / max_energy;
}

} // namespace hyqsat::bayes
