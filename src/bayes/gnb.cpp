#include "bayes/gnb.h"

#include <cmath>

#include "util/logging.h"

namespace hyqsat::bayes {

namespace {
// Variance floor keeps degenerate (constant) features finite.
constexpr double kVarFloor = 1e-9;
} // namespace

void
GaussianNaiveBayes::fit(const std::vector<std::vector<double>> &features,
                        const std::vector<int> &labels, int num_classes)
{
    if (features.empty() || features.size() != labels.size())
        fatal("GaussianNaiveBayes::fit: bad training data shape");
    const auto dims = features[0].size();

    priors_.assign(num_classes, 0.0);
    means_.assign(num_classes, std::vector<double>(dims, 0.0));
    vars_.assign(num_classes, std::vector<double>(dims, 0.0));
    std::vector<std::size_t> counts(num_classes, 0);

    for (std::size_t i = 0; i < features.size(); ++i) {
        const int c = labels[i];
        if (c < 0 || c >= num_classes)
            fatal("GaussianNaiveBayes::fit: label %d out of range", c);
        if (features[i].size() != dims)
            fatal("GaussianNaiveBayes::fit: ragged feature matrix");
        ++counts[c];
        for (std::size_t d = 0; d < dims; ++d)
            means_[c][d] += features[i][d];
    }
    for (int c = 0; c < num_classes; ++c) {
        priors_[c] = static_cast<double>(counts[c]) /
                     static_cast<double>(features.size());
        if (counts[c] == 0)
            continue;
        for (std::size_t d = 0; d < dims; ++d)
            means_[c][d] /= static_cast<double>(counts[c]);
    }
    for (std::size_t i = 0; i < features.size(); ++i) {
        const int c = labels[i];
        for (std::size_t d = 0; d < dims; ++d) {
            const double delta = features[i][d] - means_[c][d];
            vars_[c][d] += delta * delta;
        }
    }
    for (int c = 0; c < num_classes; ++c) {
        if (counts[c] == 0)
            continue;
        for (std::size_t d = 0; d < dims; ++d) {
            vars_[c][d] = std::max(
                vars_[c][d] / static_cast<double>(counts[c]), kVarFloor);
        }
    }
}

std::vector<double>
GaussianNaiveBayes::posterior(const std::vector<double> &x) const
{
    if (!fitted())
        panic("GaussianNaiveBayes used before fit()");
    const int k = static_cast<int>(priors_.size());
    std::vector<double> log_post(k, -1e300);
    double max_log = -1e300;
    for (int c = 0; c < k; ++c) {
        if (priors_[c] <= 0.0)
            continue;
        double lp = std::log(priors_[c]);
        for (std::size_t d = 0; d < x.size(); ++d) {
            const double var = vars_[c][d];
            const double delta = x[d] - means_[c][d];
            lp += -0.5 * std::log(2.0 * M_PI * var) -
                  delta * delta / (2.0 * var);
        }
        log_post[c] = lp;
        max_log = std::max(max_log, lp);
    }
    // Softmax in log space.
    double total = 0.0;
    std::vector<double> post(k, 0.0);
    for (int c = 0; c < k; ++c) {
        if (log_post[c] > -1e299) {
            post[c] = std::exp(log_post[c] - max_log);
            total += post[c];
        }
    }
    for (auto &p : post)
        p /= total;
    return post;
}

int
GaussianNaiveBayes::predict(const std::vector<double> &x) const
{
    const auto post = posterior(x);
    int best = 0;
    for (int c = 1; c < static_cast<int>(post.size()); ++c)
        if (post[c] > post[best])
            best = c;
    return best;
}

double
GaussianNaiveBayes::accuracy(
    const std::vector<std::vector<double>> &features,
    const std::vector<int> &labels) const
{
    if (features.empty())
        return 0.0;
    std::size_t correct = 0;
    for (std::size_t i = 0; i < features.size(); ++i)
        correct += (predict(features[i]) == labels[i]);
    return static_cast<double>(correct) /
           static_cast<double>(features.size());
}

} // namespace hyqsat::bayes
