/**
 * @file
 * Pluggable hardware-graph topologies behind one value type.
 *
 * Every topology is a grid of unit cells with 'shore' vertical and
 * 'shore' horizontal qubits per cell, viewed by the fast embedder
 * (§IV-B) as a crossbar of lines: a *vertical line* (column c, track
 * k) is the chain of vertical qubits with index k through every cell
 * of column c, and a *horizontal line* (row r, track k) the analogous
 * horizontal chain. A vertical and a horizontal line cross in exactly
 * one cell, where an intra-cell coupler connects them.
 *
 * Three families share that skeleton:
 *
 *  - Chimera (D-Wave 2000Q: 16x16 cells of K4,4, 2048 qubits).
 *    Intra-cell couplers form a complete bipartite K_{s,s}; inter-cell
 *    couplers chain each line one cell at a time. Degree 6 inside the
 *    fabric; a chain must occupy every cell it spans (lineReach() 1).
 *
 *  - Pegasus-style. Keeps every Chimera coupler and adds, in the
 *    spirit of D-Wave's Pegasus fabric, (a) *odd couplers* pairing
 *    tracks (2t, 2t+1) of the same shore inside each cell and (b)
 *    *skip couplers* connecting each line to the cell two steps away
 *    (rows r and r+2 on a vertical line, columns c and c+2 on a
 *    horizontal one). Degree rises to ~9 and a chain along a line may
 *    skip every other cell (lineReach() 2), so the same clause queue
 *    embeds with shorter chains.
 *
 *  - Zephyr-style. Everything Pegasus has plus a third coupler
 *    distance along each line (rows r and r+3 on a vertical line,
 *    columns c and c+3 on a horizontal one), in the spirit of
 *    D-Wave's Zephyr fabric's longer internal couplers. A chain may
 *    leave two cells free between consecutive qubits (lineReach()
 *    3), thinning chains further on large grids.
 *
 * The class is a drop-in replacement for the former
 * chimera::ChimeraGraph (that name is now an alias); the plain
 * (rows, cols, shore) constructor still builds a Chimera graph.
 */

#ifndef HYQSAT_TOPOLOGY_TOPOLOGY_H
#define HYQSAT_TOPOLOGY_TOPOLOGY_H

#include <cstdint>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

namespace hyqsat::topology {

/** Side of a unit cell a qubit belongs to. */
enum class Shore
{
    Vertical = 0,
    Horizontal = 1,
};

/** Decoded qubit coordinate. */
struct QubitCoord
{
    int row = 0;   ///< cell row
    int col = 0;   ///< cell column
    Shore shore = Shore::Vertical;
    int track = 0; ///< index within the shore (0..shore_size-1)

    bool
    operator==(const QubitCoord &o) const
    {
        return row == o.row && col == o.col && shore == o.shore &&
               track == o.track;
    }
};

/** Topology family. */
enum class Kind
{
    Chimera = 0,
    Pegasus = 1,
    Zephyr = 2,
};

/** Canonical lowercase name of a topology kind. */
const char *kindName(Kind kind);

/** Parse "chimera"/"pegasus"/"zephyr" (exact, lowercase). */
std::optional<Kind> parseKind(std::string_view name);

/** Hardware graph with explicit coupler enumeration. */
class Topology
{
  public:
    /**
     * Chimera-family graph (back-compat constructor).
     * @param rows number of cell rows (M)
     * @param cols number of cell columns (N)
     * @param shore qubits per shore (L, 4 on D-Wave 2000Q)
     */
    Topology(int rows, int cols, int shore = 4)
        : Topology(Kind::Chimera, rows, cols, shore)
    {
    }

    /** Graph of the given family. */
    Topology(Kind kind, int rows, int cols, int shore = 4);

    /** The D-Wave 2000Q topology: 16x16 cells, shore 4. */
    static Topology dwave2000q() { return {16, 16, 4}; }

    /** Chimera graph of the given cell grid. */
    static Topology
    chimera(int rows, int cols, int shore = 4)
    {
        return {Kind::Chimera, rows, cols, shore};
    }

    /** Pegasus-style graph of the given cell grid. */
    static Topology
    pegasus(int rows, int cols, int shore = 4)
    {
        return {Kind::Pegasus, rows, cols, shore};
    }

    /** Zephyr-style graph of the given cell grid. */
    static Topology
    zephyr(int rows, int cols, int shore = 4)
    {
        return {Kind::Zephyr, rows, cols, shore};
    }

    Kind kind() const { return kind_; }
    const char *name() const { return kindName(kind_); }

    int rows() const { return rows_; }
    int cols() const { return cols_; }
    int shore() const { return shore_; }

    /**
     * Stable per-instance identity for memoization keys: unique
     * across all graphs ever constructed in the process (never
     * reused, unlike an address), and shared by copies — which have
     * identical topology, so a memo hit through a copy is safe.
     */
    std::uint64_t uid() const { return uid_; }

    /** @return total number of qubits (rows*cols*2*shore). */
    int numQubits() const { return rows_ * cols_ * 2 * shore_; }

    /** @return total number of couplers. */
    int numCouplers() const { return static_cast<int>(edges_.size()); }

    /** Encode a coordinate into a dense qubit id. */
    int qubitId(int row, int col, Shore shore, int track) const;

    /** Decode a qubit id. */
    QubitCoord coord(int qubit) const;

    /** @return true if @p a and @p b share a coupler. */
    bool connected(int a, int b) const;

    /** Adjacency list of @p qubit. */
    const std::vector<int> &neighbors(int qubit) const
    {
        return adjacency_[qubit];
    }

    /** All couplers as (a, b) with a < b. */
    const std::vector<std::pair<int, int>> &edges() const
    {
        return edges_;
    }

    // ------------------------------------------------------------------
    // Line (crossbar) view used by the fast embedder
    // ------------------------------------------------------------------

    /** @return the number of vertical lines (cols * shore). */
    int numVerticalLines() const { return cols_ * shore_; }

    /** @return the number of horizontal lines (rows * shore). */
    int numHorizontalLines() const { return rows_ * shore_; }

    /** Qubit of vertical line @p line at cell row @p row. */
    int verticalLineQubit(int line, int row) const;

    /** Qubit of horizontal line @p line at cell column @p col. */
    int horizontalLineQubit(int line, int col) const;

    /** Cell column a vertical line runs through. */
    int verticalLineColumn(int line) const { return line / shore_; }

    /** Cell row a horizontal line runs through. */
    int horizontalLineRow(int line) const { return line / shore_; }

    /**
     * Maximum cell-index step between consecutive qubits of a
     * connected chain along one line: 1 on Chimera (lines are simple
     * chains), 2 on Pegasus (skip couplers bridge one unused cell),
     * 3 on Zephyr (skip-3 couplers bridge two). The embedder uses
     * this both to thin chains and to relax the separation margin
     * between segments sharing a line.
     */
    int
    lineReach() const
    {
        switch (kind_) {
        case Kind::Zephyr:
            return 3;
        case Kind::Pegasus:
            return 2;
        case Kind::Chimera:
            break;
        }
        return 1;
    }

    /**
     * Whether the fabric has odd couplers pairing tracks (2t, 2t+1)
     * of a shore inside each cell (Pegasus and Zephyr; Chimera does
     * not). When true, every cell couples horizontalLinePartner()
     * lines at each column they share.
     */
    bool hasOddCouplers() const { return kind_ != Kind::Chimera; }

    /**
     * The horizontal line odd-coupled to @p line (same cell row,
     * partner track of the (2t, 2t+1) pair), or -1 when the track
     * is unpaired (odd shore tail) or the family has no odd
     * couplers.
     */
    int
    horizontalLinePartner(int line) const
    {
        const int track = line % shore_;
        if (!hasOddCouplers() || (track | 1) >= shore_)
            return -1;
        return line - track + (track ^ 1);
    }

  private:
    Kind kind_;
    int rows_, cols_, shore_;
    std::uint64_t uid_ = 0;
    std::vector<std::vector<int>> adjacency_;
    std::vector<std::pair<int, int>> edges_;
};

} // namespace hyqsat::topology

#endif // HYQSAT_TOPOLOGY_TOPOLOGY_H
