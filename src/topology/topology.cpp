#include "topology/topology.h"

#include <algorithm>
#include <atomic>

#include "util/logging.h"

namespace hyqsat::topology {

namespace {

std::uint64_t
nextGraphUid()
{
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

const char *
kindName(Kind kind)
{
    switch (kind) {
    case Kind::Chimera:
        return "chimera";
    case Kind::Pegasus:
        return "pegasus";
    case Kind::Zephyr:
        return "zephyr";
    }
    return "chimera";
}

std::optional<Kind>
parseKind(std::string_view name)
{
    if (name == "chimera")
        return Kind::Chimera;
    if (name == "pegasus")
        return Kind::Pegasus;
    if (name == "zephyr")
        return Kind::Zephyr;
    return std::nullopt;
}

Topology::Topology(Kind kind, int rows, int cols, int shore)
    : kind_(kind), rows_(rows), cols_(cols), shore_(shore),
      uid_(nextGraphUid())
{
    if (rows < 1 || cols < 1 || shore < 1)
        fatal("Topology requires positive dimensions");

    adjacency_.resize(numQubits());
    auto addEdge = [this](int a, int b) {
        if (a > b)
            std::swap(a, b);
        edges_.emplace_back(a, b);
        adjacency_[a].push_back(b);
        adjacency_[b].push_back(a);
    };

    // Chimera skeleton, shared by both families. The emission order
    // is frozen: edges() / edge slots feed memoized coefficient
    // schedules, so the Pegasus extras are appended strictly after
    // the skeleton of each cell.
    for (int r = 0; r < rows_; ++r) {
        for (int c = 0; c < cols_; ++c) {
            // Intra-cell K_{shore,shore} couplers.
            for (int kv = 0; kv < shore_; ++kv) {
                for (int kh = 0; kh < shore_; ++kh) {
                    addEdge(qubitId(r, c, Shore::Vertical, kv),
                            qubitId(r, c, Shore::Horizontal, kh));
                }
            }
            // Inter-cell vertical couplers (down the column).
            if (r + 1 < rows_) {
                for (int k = 0; k < shore_; ++k) {
                    addEdge(qubitId(r, c, Shore::Vertical, k),
                            qubitId(r + 1, c, Shore::Vertical, k));
                }
            }
            // Inter-cell horizontal couplers (along the row).
            if (c + 1 < cols_) {
                for (int k = 0; k < shore_; ++k) {
                    addEdge(qubitId(r, c, Shore::Horizontal, k),
                            qubitId(r, c + 1, Shore::Horizontal, k));
                }
            }
            if (kind_ == Kind::Chimera)
                continue;
            // Odd couplers: tracks (2t, 2t+1) of each shore paired
            // inside the cell (Pegasus and Zephyr).
            for (int t = 0; 2 * t + 1 < shore_; ++t) {
                addEdge(qubitId(r, c, Shore::Vertical, 2 * t),
                        qubitId(r, c, Shore::Vertical, 2 * t + 1));
                addEdge(qubitId(r, c, Shore::Horizontal, 2 * t),
                        qubitId(r, c, Shore::Horizontal, 2 * t + 1));
            }
            // Skip couplers: each line also reaches the cell two
            // steps away, so chains may leave every other cell free.
            if (r + 2 < rows_) {
                for (int k = 0; k < shore_; ++k) {
                    addEdge(qubitId(r, c, Shore::Vertical, k),
                            qubitId(r + 2, c, Shore::Vertical, k));
                }
            }
            if (c + 2 < cols_) {
                for (int k = 0; k < shore_; ++k) {
                    addEdge(qubitId(r, c, Shore::Horizontal, k),
                            qubitId(r, c + 2, Shore::Horizontal, k));
                }
            }
            if (kind_ != Kind::Zephyr)
                continue;
            // Zephyr's third coupler distance: each line also
            // reaches the cell three steps away, appended after the
            // Pegasus extras so the shared prefix of the emission
            // order stays frozen.
            if (r + 3 < rows_) {
                for (int k = 0; k < shore_; ++k) {
                    addEdge(qubitId(r, c, Shore::Vertical, k),
                            qubitId(r + 3, c, Shore::Vertical, k));
                }
            }
            if (c + 3 < cols_) {
                for (int k = 0; k < shore_; ++k) {
                    addEdge(qubitId(r, c, Shore::Horizontal, k),
                            qubitId(r, c + 3, Shore::Horizontal, k));
                }
            }
        }
    }
    for (auto &adj : adjacency_)
        std::sort(adj.begin(), adj.end());
}

int
Topology::qubitId(int row, int col, Shore shore, int track) const
{
    return ((row * cols_ + col) * 2 + static_cast<int>(shore)) * shore_ +
           track;
}

QubitCoord
Topology::coord(int qubit) const
{
    QubitCoord q;
    q.track = qubit % shore_;
    qubit /= shore_;
    q.shore = static_cast<Shore>(qubit % 2);
    qubit /= 2;
    q.col = qubit % cols_;
    q.row = qubit / cols_;
    return q;
}

bool
Topology::connected(int a, int b) const
{
    const auto &adj = adjacency_[a];
    return std::binary_search(adj.begin(), adj.end(), b);
}

int
Topology::verticalLineQubit(int line, int row) const
{
    const int col = line / shore_;
    const int track = line % shore_;
    return qubitId(row, col, Shore::Vertical, track);
}

int
Topology::horizontalLineQubit(int line, int col) const
{
    const int row = line / shore_;
    const int track = line % shore_;
    return qubitId(row, col, Shore::Horizontal, track);
}

} // namespace hyqsat::topology
