#include "chimera/chimera.h"

#include <algorithm>
#include <atomic>

#include "util/logging.h"

namespace hyqsat::chimera {

namespace {

std::uint64_t
nextGraphUid()
{
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

ChimeraGraph::ChimeraGraph(int rows, int cols, int shore)
    : rows_(rows), cols_(cols), shore_(shore), uid_(nextGraphUid())
{
    if (rows < 1 || cols < 1 || shore < 1)
        fatal("ChimeraGraph requires positive dimensions");

    adjacency_.resize(numQubits());
    auto addEdge = [this](int a, int b) {
        if (a > b)
            std::swap(a, b);
        edges_.emplace_back(a, b);
        adjacency_[a].push_back(b);
        adjacency_[b].push_back(a);
    };

    for (int r = 0; r < rows_; ++r) {
        for (int c = 0; c < cols_; ++c) {
            // Intra-cell K_{shore,shore} couplers.
            for (int kv = 0; kv < shore_; ++kv) {
                for (int kh = 0; kh < shore_; ++kh) {
                    addEdge(qubitId(r, c, Shore::Vertical, kv),
                            qubitId(r, c, Shore::Horizontal, kh));
                }
            }
            // Inter-cell vertical couplers (down the column).
            if (r + 1 < rows_) {
                for (int k = 0; k < shore_; ++k) {
                    addEdge(qubitId(r, c, Shore::Vertical, k),
                            qubitId(r + 1, c, Shore::Vertical, k));
                }
            }
            // Inter-cell horizontal couplers (along the row).
            if (c + 1 < cols_) {
                for (int k = 0; k < shore_; ++k) {
                    addEdge(qubitId(r, c, Shore::Horizontal, k),
                            qubitId(r, c + 1, Shore::Horizontal, k));
                }
            }
        }
    }
    for (auto &adj : adjacency_)
        std::sort(adj.begin(), adj.end());
}

int
ChimeraGraph::qubitId(int row, int col, Shore shore, int track) const
{
    return ((row * cols_ + col) * 2 + static_cast<int>(shore)) * shore_ +
           track;
}

QubitCoord
ChimeraGraph::coord(int qubit) const
{
    QubitCoord q;
    q.track = qubit % shore_;
    qubit /= shore_;
    q.shore = static_cast<Shore>(qubit % 2);
    qubit /= 2;
    q.col = qubit % cols_;
    q.row = qubit / cols_;
    return q;
}

bool
ChimeraGraph::connected(int a, int b) const
{
    const auto &adj = adjacency_[a];
    return std::binary_search(adj.begin(), adj.end(), b);
}

int
ChimeraGraph::verticalLineQubit(int line, int row) const
{
    const int col = line / shore_;
    const int track = line % shore_;
    return qubitId(row, col, Shore::Vertical, track);
}

int
ChimeraGraph::horizontalLineQubit(int line, int col) const
{
    const int row = line / shore_;
    const int track = line % shore_;
    return qubitId(row, col, Shore::Horizontal, track);
}

} // namespace hyqsat::chimera
