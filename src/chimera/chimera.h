/**
 * @file
 * D-Wave Chimera hardware-graph topology (e.g. 2000Q: 16x16 cells of
 * K4,4, 2048 qubits).
 *
 * Each unit cell holds 'shore' vertical and 'shore' horizontal
 * qubits. Intra-cell couplers form a complete bipartite K_{s,s}
 * between the two shores; inter-cell couplers chain vertical qubits
 * down a column and horizontal qubits along a row.
 *
 * The paper's fast embedder (§IV-B) views the chip as a crossbar of
 * lines: a *vertical line* (column c, track k) is the chain of
 * vertical qubits with index k through every cell of column c, and a
 * *horizontal line* (row r, track k) the analogous horizontal chain.
 * A vertical and a horizontal line cross in exactly one cell, where
 * the intra-cell coupler connects them.
 */

#ifndef HYQSAT_CHIMERA_CHIMERA_H
#define HYQSAT_CHIMERA_CHIMERA_H

#include <cstdint>
#include <utility>
#include <vector>

namespace hyqsat::chimera {

/** Side of a unit cell a qubit belongs to. */
enum class Shore
{
    Vertical = 0,
    Horizontal = 1,
};

/** Decoded qubit coordinate. */
struct QubitCoord
{
    int row = 0;   ///< cell row
    int col = 0;   ///< cell column
    Shore shore = Shore::Vertical;
    int track = 0; ///< index within the shore (0..shore_size-1)

    bool
    operator==(const QubitCoord &o) const
    {
        return row == o.row && col == o.col && shore == o.shore &&
               track == o.track;
    }
};

/** Chimera graph with explicit coupler enumeration. */
class ChimeraGraph
{
  public:
    /**
     * @param rows number of cell rows (M)
     * @param cols number of cell columns (N)
     * @param shore qubits per shore (L, 4 on D-Wave 2000Q)
     */
    ChimeraGraph(int rows, int cols, int shore = 4);

    /** The D-Wave 2000Q topology: 16x16 cells, shore 4. */
    static ChimeraGraph dwave2000q() { return {16, 16, 4}; }

    int rows() const { return rows_; }
    int cols() const { return cols_; }
    int shore() const { return shore_; }

    /**
     * Stable per-instance identity for memoization keys: unique
     * across all graphs ever constructed in the process (never
     * reused, unlike an address), and shared by copies — which have
     * identical topology, so a memo hit through a copy is safe.
     */
    std::uint64_t uid() const { return uid_; }

    /** @return total number of qubits (rows*cols*2*shore). */
    int numQubits() const { return rows_ * cols_ * 2 * shore_; }

    /** @return total number of couplers. */
    int numCouplers() const { return static_cast<int>(edges_.size()); }

    /** Encode a coordinate into a dense qubit id. */
    int qubitId(int row, int col, Shore shore, int track) const;

    /** Decode a qubit id. */
    QubitCoord coord(int qubit) const;

    /** @return true if @p a and @p b share a coupler. */
    bool connected(int a, int b) const;

    /** Adjacency list of @p qubit. */
    const std::vector<int> &neighbors(int qubit) const
    {
        return adjacency_[qubit];
    }

    /** All couplers as (a, b) with a < b. */
    const std::vector<std::pair<int, int>> &edges() const
    {
        return edges_;
    }

    // ------------------------------------------------------------------
    // Line (crossbar) view used by the fast embedder
    // ------------------------------------------------------------------

    /** @return the number of vertical lines (cols * shore). */
    int numVerticalLines() const { return cols_ * shore_; }

    /** @return the number of horizontal lines (rows * shore). */
    int numHorizontalLines() const { return rows_ * shore_; }

    /** Qubit of vertical line @p line at cell row @p row. */
    int verticalLineQubit(int line, int row) const;

    /** Qubit of horizontal line @p line at cell column @p col. */
    int horizontalLineQubit(int line, int col) const;

    /** Cell column a vertical line runs through. */
    int verticalLineColumn(int line) const { return line / shore_; }

    /** Cell row a horizontal line runs through. */
    int horizontalLineRow(int line) const { return line / shore_; }

  private:
    int rows_, cols_, shore_;
    std::uint64_t uid_ = 0;
    std::vector<std::vector<int>> adjacency_;
    std::vector<std::pair<int, int>> edges_;
};

} // namespace hyqsat::chimera

#endif // HYQSAT_CHIMERA_CHIMERA_H
