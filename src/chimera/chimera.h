/**
 * @file
 * Back-compat alias of the pluggable topology layer.
 *
 * The Chimera graph grew a sibling (Pegasus-style) and moved to
 * topology::Topology; see src/topology/topology.h. Existing code
 * keeps using chimera::ChimeraGraph — the plain (rows, cols, shore)
 * constructor still builds a Chimera graph — while topology-aware
 * callers construct the family they want via Topology(Kind, ...).
 */

#ifndef HYQSAT_CHIMERA_CHIMERA_H
#define HYQSAT_CHIMERA_CHIMERA_H

#include "topology/topology.h"

namespace hyqsat::chimera {

using Shore = topology::Shore;
using QubitCoord = topology::QubitCoord;
using ChimeraGraph = topology::Topology;

} // namespace hyqsat::chimera

#endif // HYQSAT_CHIMERA_CHIMERA_H
