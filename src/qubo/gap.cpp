#include "qubo/gap.h"

#include <cmath>
#include <limits>

#include "util/logging.h"

namespace hyqsat::qubo {

EnergyLandscape
analyzeLandscape(const EncodedProblem &ep, ObjectiveKind kind)
{
    const int n = ep.numNodes();
    if (n > 24)
        fatal("analyzeLandscape limited to 24 nodes (got %d)", n);

    const QuboModel &model = kind == ObjectiveKind::Unit ? ep.unit_objective
                             : kind == ObjectiveKind::Weighted
                                 ? ep.objective
                                 : ep.normalized;

    EnergyLandscape out;
    out.ground = std::numeric_limits<double>::infinity();
    out.gap = std::numeric_limits<double>::infinity();

    std::vector<bool> bits(n);
    const std::uint64_t total = n == 0 ? 1 : (1ull << n);
    for (std::uint64_t pattern = 0; pattern < total; ++pattern) {
        for (int i = 0; i < n; ++i)
            bits[i] = (pattern >> i) & 1;
        const double e = model.energy(bits);
        out.ground = std::min(out.ground, e);
        if (ep.clausesSatisfied(bits))
            out.satisfiable = true;
        else
            out.gap = std::min(out.gap, e);
    }
    if (!std::isfinite(out.gap)) {
        // Every assignment satisfies the clauses: no violating level.
        out.gap = 0.0;
    }
    return out;
}

double
meanViolatingEnergy(const EncodedProblem &ep, ObjectiveKind kind)
{
    const int n = ep.numNodes();
    if (n > 24)
        fatal("meanViolatingEnergy limited to 24 nodes (got %d)", n);

    const QuboModel &model = kind == ObjectiveKind::Unit ? ep.unit_objective
                             : kind == ObjectiveKind::Weighted
                                 ? ep.objective
                                 : ep.normalized;

    double sum = 0.0;
    std::uint64_t count = 0;
    std::vector<bool> bits(n);
    const std::uint64_t total = n == 0 ? 1 : (1ull << n);
    for (std::uint64_t pattern = 0; pattern < total; ++pattern) {
        for (int i = 0; i < n; ++i)
            bits[i] = (pattern >> i) & 1;
        if (ep.clausesSatisfied(bits))
            continue;
        sum += model.energy(bits);
        ++count;
    }
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double
surfaceImprovement(const std::vector<sat::LitVec> &clauses)
{
    EncoderOptions with;
    with.adjust_coefficients = true;
    EncoderOptions without;
    without.adjust_coefficients = false;

    const double lifted = meanViolatingEnergy(
        encodeClauses(clauses, with), ObjectiveKind::Normalized);
    const double plain = meanViolatingEnergy(
        encodeClauses(clauses, without), ObjectiveKind::Normalized);
    if (plain <= 0.0)
        return 1.0;
    return lifted / plain;
}

double
gapImprovement(const std::vector<sat::LitVec> &clauses)
{
    EncoderOptions with;
    with.adjust_coefficients = true;
    EncoderOptions without;
    without.adjust_coefficients = false;

    const auto adjusted = encodeClauses(clauses, with);
    const auto plain = encodeClauses(clauses, without);
    const auto gap_adj =
        analyzeLandscape(adjusted, ObjectiveKind::Normalized).gap;
    const auto gap_plain =
        analyzeLandscape(plain, ObjectiveKind::Normalized).gap;
    if (gap_plain <= 0.0)
        return 1.0;
    return gap_adj / gap_plain;
}

} // namespace hyqsat::qubo
