#include "qubo/encoder.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace hyqsat::qubo {

namespace {

/**
 * Literal penalty helper: H_l(x) = s + t*x with (s,t) = (0,+1) for a
 * positive literal and (1,-1) for a negated literal, so H_l == 1
 * exactly when the literal is true.
 */
struct Affine
{
    double s;
    double t;
    int node;
};

Affine
literalPenalty(sat::Lit l, int node)
{
    if (l.sign())
        return {1.0, -1.0, node};
    return {0.0, 1.0, node};
}

/**
 * Sub-clause c_{k,1} = a <-> (l1 v l2), Eq. 4 top:
 * H = a + H1 + H2 - 2 a H1 - 2 a H2 + H1 H2.
 */
QuboModel
equivalencePenalty(const Affine &h1, const Affine &h2, int aux)
{
    QuboModel q;
    q.addOffset(h1.s + h2.s + h1.s * h2.s);
    q.addLinear(aux, 1.0 - 2.0 * h1.s - 2.0 * h2.s);
    q.addLinear(h1.node, h1.t + h2.s * h1.t);
    q.addLinear(h2.node, h2.t + h1.s * h2.t);
    q.addQuadratic(aux, h1.node, -2.0 * h1.t);
    q.addQuadratic(aux, h2.node, -2.0 * h2.t);
    q.addQuadratic(h1.node, h2.node, h1.t * h2.t);
    return q;
}

/**
 * Sub-clause c_{k,2} = l3 v a, Eq. 4 bottom:
 * H = 1 - a - H3 + a H3.
 */
QuboModel
orWithAuxPenalty(const Affine &h3, int aux)
{
    QuboModel q;
    q.addOffset(1.0 - h3.s);
    q.addLinear(aux, -1.0 + h3.s);
    q.addLinear(h3.node, -h3.t);
    q.addQuadratic(aux, h3.node, h3.t);
    return q;
}

/** Two-literal clause: H = (1 - H1)(1 - H2), no auxiliary needed. */
QuboModel
pairPenalty(const Affine &h1, const Affine &h2)
{
    QuboModel q;
    q.addOffset((1.0 - h1.s) * (1.0 - h2.s));
    q.addLinear(h1.node, -h1.t * (1.0 - h2.s));
    q.addLinear(h2.node, -h2.t * (1.0 - h1.s));
    q.addQuadratic(h1.node, h2.node, h1.t * h2.t);
    return q;
}

/** Unit clause: H = 1 - H1. */
QuboModel
unitPenalty(const Affine &h1)
{
    QuboModel q;
    q.addOffset(1.0 - h1.s);
    q.addLinear(h1.node, -h1.t);
    return q;
}

/** Canonicalize: deduplicate literals; empty result for tautology. */
sat::LitVec
canonicalize(sat::LitVec clause, bool *tautology)
{
    std::sort(clause.begin(), clause.end());
    sat::LitVec out;
    *tautology = false;
    for (sat::Lit p : clause) {
        if (!out.empty() && p == out.back())
            continue;
        if (!out.empty() && p == ~out.back()) {
            *tautology = true;
            return {};
        }
        out.push_back(p);
    }
    return out;
}

/** Per-item maximum coefficient of Eqs. 6-7 over a term set. */
double
maxItemCoefficient(const QuboModel &items, const QuboModel &full)
{
    double d = 0.0;
    for (int i = 0; i < items.numVars(); ++i) {
        if (items.linear(i) != 0.0)
            d = std::max(d, std::fabs(full.linear(i)) / 2.0);
    }
    for (const auto &[key, c] : items.quadraticTerms()) {
        if (c != 0.0) {
            d = std::max(
                d, std::fabs(full.quadratic(key.first(), key.second())));
        }
    }
    return d;
}

} // namespace

std::vector<std::pair<int, int>>
EncodedProblem::edges() const
{
    std::vector<std::pair<int, int>> out;
    for (const auto &[key, c] : objective.quadraticTerms())
        if (c != 0.0)
            out.emplace_back(key.first(), key.second());
    std::sort(out.begin(), out.end());
    return out;
}

bool
EncodedProblem::clausesSatisfied(const std::vector<bool> &node_bits) const
{
    for (const auto &clause : clauses) {
        bool sat = clause.empty(); // dropped tautologies stay satisfied
        for (sat::Lit p : clause) {
            const int node = var_node.at(p.var());
            if (node_bits[node] != p.sign()) {
                sat = true;
                break;
            }
        }
        if (!sat)
            return false;
    }
    return true;
}

std::unordered_map<sat::Var, bool>
EncodedProblem::decode(const std::vector<bool> &node_bits) const
{
    std::unordered_map<sat::Var, bool> out;
    for (const auto &[v, node] : var_node)
        out[v] = node_bits[node];
    return out;
}

EncodedProblem
encodeClauses(const std::vector<sat::LitVec> &clauses,
              const EncoderOptions &opts)
{
    EncodedProblem ep;

    auto nodeOf = [&ep](sat::Var v) {
        const auto it = ep.var_node.find(v);
        if (it != ep.var_node.end())
            return it->second;
        const int node = ep.numNodes();
        ep.var_node.emplace(v, node);
        ep.nodes.push_back({false, v, -1});
        return node;
    };

    for (const auto &raw : clauses) {
        bool tautology = false;
        sat::LitVec clause = canonicalize(raw, &tautology);
        const int clause_index = static_cast<int>(ep.clauses.size());
        if (tautology || raw.empty()) {
            // Tautologies carry no penalty; empty clauses cannot be
            // encoded as a bounded penalty and are rejected.
            if (raw.empty())
                fatal("cannot encode an empty clause");
            ep.clauses.push_back({});
            ep.clause_aux.push_back(-1);
            continue;
        }
        if (clause.size() > 3)
            fatal("encodeClauses requires <= 3 literals per clause "
                  "(got %zu); run toThreeSat first",
                  clause.size());
        ep.clauses.push_back(clause);

        if (clause.size() == 1) {
            const Affine h1 =
                literalPenalty(clause[0], nodeOf(clause[0].var()));
            ep.clause_aux.push_back(-1);
            SubClause sc;
            sc.clause = clause_index;
            sc.sub = 0;
            sc.penalty = unitPenalty(h1);
            ep.sub_clauses.push_back(std::move(sc));
        } else if (clause.size() == 2) {
            const Affine h1 =
                literalPenalty(clause[0], nodeOf(clause[0].var()));
            const Affine h2 =
                literalPenalty(clause[1], nodeOf(clause[1].var()));
            ep.clause_aux.push_back(-1);
            SubClause sc;
            sc.clause = clause_index;
            sc.sub = 0;
            sc.penalty = pairPenalty(h1, h2);
            ep.sub_clauses.push_back(std::move(sc));
        } else {
            const Affine h1 =
                literalPenalty(clause[0], nodeOf(clause[0].var()));
            const Affine h2 =
                literalPenalty(clause[1], nodeOf(clause[1].var()));
            const Affine h3 =
                literalPenalty(clause[2], nodeOf(clause[2].var()));
            const int aux = ep.numNodes();
            ep.nodes.push_back({true, sat::var_Undef, clause_index});
            ep.clause_aux.push_back(aux);

            SubClause sc1;
            sc1.clause = clause_index;
            sc1.sub = 0;
            sc1.penalty = equivalencePenalty(h1, h2, aux);
            ep.sub_clauses.push_back(std::move(sc1));

            SubClause sc2;
            sc2.clause = clause_index;
            sc2.sub = 1;
            sc2.penalty = orWithAuxPenalty(h3, aux);
            ep.sub_clauses.push_back(std::move(sc2));
        }
    }

    // Unit objective (every alpha = 1).
    ep.unit_objective.ensureVars(ep.numNodes());
    for (const auto &sc : ep.sub_clauses)
        ep.unit_objective.addScaled(sc.penalty, 1.0);

    // Coefficient adjustment (Eqs. 6-9).
    const double d_star_unit = ep.unit_objective.normalizationDivisor();
    for (auto &sc : ep.sub_clauses) {
        sc.d = maxItemCoefficient(sc.penalty, ep.unit_objective);
        sc.alpha = (opts.adjust_coefficients && sc.d > 0)
                       ? d_star_unit / sc.d
                       : 1.0;
    }

    ep.objective.ensureVars(ep.numNodes());
    for (const auto &sc : ep.sub_clauses)
        ep.objective.addScaled(sc.penalty, sc.alpha);

    ep.d_star = ep.objective.normalizationDivisor();
    ep.normalized = ep.objective.normalized();
    return ep;
}

} // namespace hyqsat::qubo
