/**
 * @file
 * Quadratic unconstrained binary optimization (QUBO) model and its
 * Ising twin. The QA objective of Eq. 2 in the paper is a QUBO over
 * SAT variables plus auxiliary variables:
 *
 *   H(x) = I + sum_i B_i x_i + sum_{i<j} J_ij x_i x_j,  x in {0,1}
 *
 * The Ising form substitutes x = (1+s)/2 with spins s in {-1,+1},
 * which is what the annealer hardware executes.
 */

#ifndef HYQSAT_QUBO_QUBO_H
#define HYQSAT_QUBO_QUBO_H

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

namespace hyqsat::qubo {

/** Key for an unordered pair of variable indices (i < j enforced). */
struct PairKey
{
    std::uint64_t packed;

    PairKey(int i, int j)
    {
        if (i > j)
            std::swap(i, j);
        packed = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(i))
                  << 32) |
                 static_cast<std::uint32_t>(j);
    }

    int first() const { return static_cast<int>(packed >> 32); }
    int second() const { return static_cast<int>(packed & 0xffffffff); }

    bool operator==(const PairKey &o) const { return packed == o.packed; }
};

struct PairKeyHash
{
    std::size_t
    operator()(const PairKey &k) const noexcept
    {
        return std::hash<std::uint64_t>()(k.packed * 0x9e3779b97f4a7c15ull);
    }
};

/** Sparse QUBO over binary variables 0..numVars()-1. */
class QuboModel
{
  public:
    QuboModel() = default;

    /** Construct with @p n variables (all coefficients zero). */
    explicit QuboModel(int n) : linear_(n, 0.0) {}

    /** @return the number of variables. */
    int numVars() const { return static_cast<int>(linear_.size()); }

    /** Grow the variable count to at least @p n. */
    void
    ensureVars(int n)
    {
        if (n > numVars())
            linear_.resize(n, 0.0);
    }

    /** Add @p c to the constant offset I. */
    void addOffset(double c) { offset_ += c; }

    /** Add @p c to the linear coefficient B_i. */
    void
    addLinear(int i, double c)
    {
        ensureVars(i + 1);
        linear_[i] += c;
    }

    /**
     * Add @p c to the quadratic coefficient J_ij. If i == j the term
     * folds into the linear coefficient (x*x == x for binaries).
     */
    void
    addQuadratic(int i, int j, double c)
    {
        if (i == j) {
            addLinear(i, c);
            return;
        }
        ensureVars(std::max(i, j) + 1);
        quadratic_[PairKey(i, j)] += c;
    }

    /** @return the constant offset. */
    double offset() const { return offset_; }

    /** @return linear coefficient B_i. */
    double linear(int i) const { return linear_[i]; }

    /** @return quadratic coefficient J_ij (0 if absent). */
    double
    quadratic(int i, int j) const
    {
        const auto it = quadratic_.find(PairKey(i, j));
        return it == quadratic_.end() ? 0.0 : it->second;
    }

    /** @return the sparse quadratic term map. */
    const std::unordered_map<PairKey, double, PairKeyHash> &
    quadraticTerms() const
    {
        return quadratic_;
    }

    /** @return all linear coefficients. */
    const std::vector<double> &linearTerms() const { return linear_; }

    /** Evaluate H at the given 0/1 assignment. */
    double energy(const std::vector<bool> &x) const;

    /** @return max over i of |B_i| (0 if no variables). */
    double maxAbsLinear() const;

    /** @return max over i<j of |J_ij| (0 if no terms). */
    double maxAbsQuadratic() const;

    /**
     * The normalization divisor of Eq. 6:
     * d* = max( max_i |B_i|/2, max_ij |J_ij| ).
     */
    double normalizationDivisor() const;

    /** Divide every coefficient (and the offset) by @p d. */
    void scale(double inv_d);

    /**
     * @return a copy normalized per Eq. 6 so that after division
     * B_i lies in [-2, 2] and J_ij in [-1, 1].
     */
    QuboModel normalized() const;

    /** Add every term of @p other scaled by @p alpha. */
    void addScaled(const QuboModel &other, double alpha);

  private:
    double offset_ = 0.0;
    std::vector<double> linear_;
    std::unordered_map<PairKey, double, PairKeyHash> quadratic_;
};

/** Ising model: H(s) = offset + sum h_i s_i + sum J_ij s_i s_j. */
class IsingModel
{
  public:
    IsingModel() = default;
    explicit IsingModel(int n) : h_(n, 0.0) {}

    int numSpins() const { return static_cast<int>(h_.size()); }

    void
    ensureSpins(int n)
    {
        if (n > numSpins())
            h_.resize(n, 0.0);
    }

    void addOffset(double c) { offset_ += c; }

    void
    addField(int i, double c)
    {
        ensureSpins(i + 1);
        h_[i] += c;
    }

    void
    addCoupling(int i, int j, double c)
    {
        if (i == j) {
            // s*s == 1: fold into the offset.
            offset_ += c;
            return;
        }
        ensureSpins(std::max(i, j) + 1);
        couplings_[PairKey(i, j)] += c;
    }

    double offset() const { return offset_; }
    double field(int i) const { return h_[i]; }

    double
    coupling(int i, int j) const
    {
        const auto it = couplings_.find(PairKey(i, j));
        return it == couplings_.end() ? 0.0 : it->second;
    }

    const std::vector<double> &fields() const { return h_; }

    const std::unordered_map<PairKey, double, PairKeyHash> &
    couplingTerms() const
    {
        return couplings_;
    }

    /** Evaluate at spins in {-1,+1}. */
    double energy(const std::vector<std::int8_t> &s) const;

  private:
    double offset_ = 0.0;
    std::vector<double> h_;
    std::unordered_map<PairKey, double, PairKeyHash> couplings_;
};

/**
 * Convert a QUBO to the equivalent Ising model via x = (1+s)/2.
 * Energies agree exactly: qubo.energy(x) == ising.energy(s).
 */
IsingModel quboToIsing(const QuboModel &q);

/** Map spins back to binaries: x_i = (1+s_i)/2. */
std::vector<bool> spinsToBits(const std::vector<std::int8_t> &s);

/** Map binaries to spins: s_i = 2 x_i - 1. */
std::vector<std::int8_t> bitsToSpins(const std::vector<bool> &x);

} // namespace hyqsat::qubo

#endif // HYQSAT_QUBO_QUBO_H
