/**
 * @file
 * Encoder from 3-SAT clauses to the QA objective function.
 *
 * Every 3-literal clause c_k = l1 v l2 v l3 is decomposed with one
 * auxiliary variable a_k into two sub-clauses (Eq. 3):
 *
 *   c_{k,1} = a_k <-> (l1 v l2)      c_{k,2} = l3 v a_k
 *
 * each of which becomes a quadratic penalty (Eq. 4) that is zero iff
 * the sub-clause is satisfied. The overall objective is the
 * alpha-weighted sum over sub-clauses (Eq. 5). Clauses with one or
 * two literals need no auxiliary variable.
 *
 * The coefficient adjustment of §IV-C (Eqs. 6-9) raises each
 * sub-clause weight alpha_{k,j} from 1 to d_star / d_{k,j} so that after
 * hardware normalization the energy gap grows, without moving the
 * zero ground energy of satisfiable clause sets.
 */

#ifndef HYQSAT_QUBO_ENCODER_H
#define HYQSAT_QUBO_ENCODER_H

#include <unordered_map>
#include <vector>

#include "qubo/qubo.h"
#include "sat/types.h"

namespace hyqsat::qubo {

/** Identity of a problem-graph node. */
struct NodeInfo
{
    bool is_aux = false;
    /** SAT variable (valid when !is_aux). */
    sat::Var var = sat::var_Undef;
    /** Clause index the auxiliary belongs to (valid when is_aux). */
    int clause = -1;
};

/** One sub-clause's penalty and metadata. */
struct SubClause
{
    int clause = 0;    ///< index into EncodedProblem::clauses
    int sub = 0;       ///< 0 or 1 within the clause
    QuboModel penalty; ///< unit-weight penalty (>= 0, == 0 iff sat)
    double d = 0.0;    ///< d_{k,j} of Eq. 7
    double alpha = 1.0;
};

/** Complete encoding of a clause set for the annealer. */
struct EncodedProblem
{
    /** Clauses in encoding order (canonicalized literals). */
    std::vector<sat::LitVec> clauses;

    /** Problem-graph nodes: SAT variables first-seen order + auxes. */
    std::vector<NodeInfo> nodes;

    /** SAT variable -> node id. */
    std::unordered_map<sat::Var, int> var_node;

    /** Clause index -> auxiliary node id (-1 when none needed). */
    std::vector<int> clause_aux;

    /** Sub-clause decomposition with weights. */
    std::vector<SubClause> sub_clauses;

    /**
     * Unit objective: Eq. 5 with every alpha = 1. Its value on an
     * assignment is the "clause-space energy" used by the backend
     * classification (a weighted count of violated sub-clauses).
     */
    QuboModel unit_objective;

    /** Alpha-weighted objective (after coefficient adjustment). */
    QuboModel objective;

    /** Objective scaled by 1/d* to hardware ranges (Eq. 6). */
    QuboModel normalized;

    /** Normalization divisor of the weighted objective. */
    double d_star = 0.0;

    /** @return number of problem-graph nodes. */
    int numNodes() const { return static_cast<int>(nodes.size()); }

    /** @return the problem-graph edges (pairs with non-zero J). */
    std::vector<std::pair<int, int>> edges() const;

    /**
     * Clause-space energy of a node assignment: the unit objective,
     * i.e. zero iff every encoded clause is satisfied (with the
     * auxiliary variables consistent).
     */
    double
    clauseSpaceEnergy(const std::vector<bool> &node_bits) const
    {
        return unit_objective.energy(node_bits);
    }

    /**
     * @return true iff every encoded clause is satisfied by the SAT
     * variable values in @p node_bits (auxiliaries ignored).
     */
    bool clausesSatisfied(const std::vector<bool> &node_bits) const;

    /** Extract per-SAT-variable values from a node assignment. */
    std::unordered_map<sat::Var, bool>
    decode(const std::vector<bool> &node_bits) const;
};

/** Options for the encoder. */
struct EncoderOptions
{
    /** Apply the §IV-C coefficient adjustment (alpha = d_star / d_ij). */
    bool adjust_coefficients = true;
};

/**
 * Encode a set of clauses (each with 1..3 literals after
 * canonicalization; tautologies are dropped). Clauses longer than
 * three literals are a caller error - convert with toThreeSat first.
 */
EncodedProblem encodeClauses(const std::vector<sat::LitVec> &clauses,
                             const EncoderOptions &opts = {});

} // namespace hyqsat::qubo

#endif // HYQSAT_QUBO_ENCODER_H
