#include "qubo/csr.h"

namespace hyqsat::qubo {

CsrIsing
CsrIsing::fromModel(const IsingModel &model, bool include_zero)
{
    CsrIsing out;
    out.offset = model.offset();
    out.h = model.fields();
    const int n = model.numSpins();

    // Two passes over the (deterministically ordered, const) term
    // map: count row degrees, then fill with per-row cursors. The
    // fill visits terms in the same order as the counting pass and
    // as the legacy adjacency build, so each row's entry order is
    // exactly the legacy push order.
    std::vector<std::int32_t> degree(n, 0);
    for (const auto &[key, weight] : model.couplingTerms()) {
        if (!include_zero && weight == 0.0)
            continue;
        ++degree[key.first()];
        ++degree[key.second()];
    }
    out.row_ptr.assign(n + 1, 0);
    for (int i = 0; i < n; ++i)
        out.row_ptr[i + 1] = out.row_ptr[i] + degree[i];
    out.col.resize(out.row_ptr[n]);
    out.w.resize(out.row_ptr[n]);

    std::vector<std::int32_t> cursor(out.row_ptr.begin(),
                                     out.row_ptr.end() - 1);
    for (const auto &[key, weight] : model.couplingTerms()) {
        if (!include_zero && weight == 0.0)
            continue;
        const int a = key.first(), b = key.second();
        out.col[cursor[a]] = b;
        out.w[cursor[a]] = weight;
        ++cursor[a];
        out.col[cursor[b]] = a;
        out.w[cursor[b]] = weight;
        ++cursor[b];
    }
    return out;
}

int
CsrIsing::slot(int i, int j) const
{
    for (std::int32_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
        if (col[k] == j)
            return k;
    }
    return -1;
}

double
CsrIsing::energyWith(const std::int8_t *spins, const double *fields,
                     const double *weights) const
{
    double e = offset;
    const int n = numSpins();
    for (int i = 0; i < n; ++i) {
        e += fields[i] * spins[i];
        for (std::int32_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
            if (col[k] > i)
                e += weights[k] * spins[i] * spins[col[k]];
        }
    }
    return e;
}

} // namespace hyqsat::qubo
