/**
 * @file
 * Exhaustive energy-landscape analysis for small encoded problems:
 * ground energy, and the "energy gap" of §IV-C - the minimum
 * objective value over assignments that violate the clause set. Used
 * by the Fig. 15 reproduction and the encoder tests.
 */

#ifndef HYQSAT_QUBO_GAP_H
#define HYQSAT_QUBO_GAP_H

#include "qubo/encoder.h"

namespace hyqsat::qubo {

/** Which objective variant to analyse. */
enum class ObjectiveKind
{
    Unit,       ///< every alpha = 1 (prior work)
    Weighted,   ///< coefficient-adjusted (Eqs. 8-9)
    Normalized, ///< weighted then scaled by 1/d* (hardware form)
};

/** Landscape summary of an encoded problem. */
struct EnergyLandscape
{
    /** Global minimum over all node assignments. */
    double ground = 0.0;
    /** Minimum energy among assignments violating the clause set. */
    double gap = 0.0;
    /** True if some assignment satisfies every clause. */
    bool satisfiable = false;
};

/**
 * Exhaustively analyse @p ep (numNodes() must be <= 24).
 * For a satisfiable clause set the ground energy is 0 (up to
 * floating error) and 'gap' is the first excited clause-violating
 * level; for an unsatisfiable set ground == gap > 0.
 */
EnergyLandscape analyzeLandscape(const EncodedProblem &ep,
                                 ObjectiveKind kind);

/**
 * Normalized-gap improvement factor of the coefficient adjustment:
 * gap(Normalized with adjustment) / gap(normalized without
 * adjustment), computed on the same clause set.
 *
 * Note: because some sub-clause always keeps alpha == 1, the strict
 * minimum gap rarely moves; the adjustment's real effect is on the
 * whole violating energy surface - see surfaceImprovement().
 */
double gapImprovement(const std::vector<sat::LitVec> &clauses);

/**
 * Mean energy of the chosen objective over every clause-violating
 * assignment (auxiliaries enumerated too, as hardware leaves them
 * free). This is the "energy surface" of Fig. 15a: the coefficient
 * adjustment lifts it, separating the near-unsatisfiable band from
 * the near-satisfiable one.
 */
double meanViolatingEnergy(const EncodedProblem &ep, ObjectiveKind kind);

/**
 * Surface improvement factor of the coefficient adjustment:
 * meanViolatingEnergy(Normalized, adjusted) /
 * meanViolatingEnergy(Normalized, plain). Typically 1.2-1.8 on
 * random 3-SAT, growing with problem size (Fig. 15a).
 */
double surfaceImprovement(const std::vector<sat::LitVec> &clauses);

} // namespace hyqsat::qubo

#endif // HYQSAT_QUBO_GAP_H
