/**
 * @file
 * Flat CSR (compressed sparse row) adjacency for an Ising model —
 * the cache-friendly layout the annealing hot loop runs on.
 *
 * The row order of each spin's neighbors reproduces, entry for
 * entry, the order in which the legacy vector-of-vectors adjacency
 * was built (one pass over IsingModel::couplingTerms(), pushing
 * (second, w) onto row `first` and (first, w) onto row `second`).
 * That invariant matters: the sampler's exactness guard re-sums a
 * local field in this order whenever a cached energy delta sits on
 * the accept/reject boundary, so the decision — and therefore the
 * RNG stream — is bit-identical to the pre-CSR implementation.
 *
 * Every undirected coupling is stored twice (once per endpoint);
 * `slot()` finds the directed entry (i -> j) so callers that
 * overwrite weights in place (the annealer's control-noise replay)
 * can update both twins.
 */

#ifndef HYQSAT_QUBO_CSR_H
#define HYQSAT_QUBO_CSR_H

#include <cstdint>
#include <vector>

#include "qubo/qubo.h"

namespace hyqsat::qubo {

/** Flat adjacency + coefficients of an Ising model. */
struct CsrIsing
{
    double offset = 0.0;

    /** Linear fields, one per spin. */
    std::vector<double> h;

    /** Row extents: neighbors of spin i live in [row_ptr[i], row_ptr[i+1]). */
    std::vector<std::int32_t> row_ptr;

    /** Neighbor spin per entry. */
    std::vector<std::int32_t> col;

    /** Coupling weight per entry (each coupling appears twice). */
    std::vector<double> w;

    int numSpins() const { return static_cast<int>(h.size()); }

    /** Total directed entries (2x the coupling count). */
    int numEntries() const { return static_cast<int>(col.size()); }

    /**
     * Build from a model. @p include_zero keeps couplings whose
     * accumulated weight is exactly 0.0; the legacy adjacency
     * dropped them, so pass false wherever bit-compatibility with a
     * model built *without* later in-place weight replay is needed,
     * and true when zero base weights will be overwritten (noise).
     */
    static CsrIsing fromModel(const IsingModel &model, bool include_zero);

    /**
     * Directed entry index of neighbor @p j in row @p i, or -1.
     * Linear scan; compile-time use only (rows are short on
     * hardware topologies, and the hot loop never calls this).
     */
    int slot(int i, int j) const;

    /**
     * Energy at @p spins using weights @p weights (size
     * numEntries(); pass w.data() for the base model). Term order
     * matches the legacy IsingModel/SaSampler evaluation: row by
     * row, counting each coupling once at its j > i twin.
     */
    double energyWith(const std::int8_t *spins,
                      const double *fields,
                      const double *weights) const;

    /** Energy at @p spins under the base coefficients. */
    double
    energy(const std::vector<std::int8_t> &spins) const
    {
        return energyWith(spins.data(), h.data(), w.data());
    }
};

} // namespace hyqsat::qubo

#endif // HYQSAT_QUBO_CSR_H
