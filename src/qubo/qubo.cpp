#include "qubo/qubo.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace hyqsat::qubo {

double
QuboModel::energy(const std::vector<bool> &x) const
{
    if (static_cast<int>(x.size()) < numVars())
        panic("QuboModel::energy: assignment shorter than model");
    double e = offset_;
    for (int i = 0; i < numVars(); ++i)
        if (x[i])
            e += linear_[i];
    for (const auto &[key, c] : quadratic_)
        if (x[key.first()] && x[key.second()])
            e += c;
    return e;
}

double
QuboModel::maxAbsLinear() const
{
    double m = 0.0;
    for (double b : linear_)
        m = std::max(m, std::fabs(b));
    return m;
}

double
QuboModel::maxAbsQuadratic() const
{
    double m = 0.0;
    for (const auto &[key, c] : quadratic_)
        m = std::max(m, std::fabs(c));
    return m;
}

double
QuboModel::normalizationDivisor() const
{
    return std::max(maxAbsLinear() / 2.0, maxAbsQuadratic());
}

void
QuboModel::scale(double inv_d)
{
    offset_ *= inv_d;
    for (double &b : linear_)
        b *= inv_d;
    for (auto &[key, c] : quadratic_)
        c *= inv_d;
}

QuboModel
QuboModel::normalized() const
{
    QuboModel out = *this;
    const double d = normalizationDivisor();
    if (d > 0)
        out.scale(1.0 / d);
    return out;
}

void
QuboModel::addScaled(const QuboModel &other, double alpha)
{
    ensureVars(other.numVars());
    offset_ += alpha * other.offset_;
    for (int i = 0; i < other.numVars(); ++i)
        if (other.linear_[i] != 0.0)
            linear_[i] += alpha * other.linear_[i];
    for (const auto &[key, c] : other.quadratic_)
        quadratic_[key] += alpha * c;
}

double
IsingModel::energy(const std::vector<std::int8_t> &s) const
{
    if (static_cast<int>(s.size()) < numSpins())
        panic("IsingModel::energy: spin vector shorter than model");
    double e = offset_;
    for (int i = 0; i < numSpins(); ++i)
        e += h_[i] * s[i];
    for (const auto &[key, c] : couplings_)
        e += c * s[key.first()] * s[key.second()];
    return e;
}

IsingModel
quboToIsing(const QuboModel &q)
{
    IsingModel ising(q.numVars());
    ising.addOffset(q.offset());
    // x_i = (1 + s_i)/2:
    //   B x       -> B/2 + (B/2) s
    //   J x_i x_j -> J/4 + (J/4)(s_i + s_j) + (J/4) s_i s_j
    for (int i = 0; i < q.numVars(); ++i) {
        const double b = q.linear(i);
        if (b != 0.0) {
            ising.addOffset(b / 2.0);
            ising.addField(i, b / 2.0);
        }
    }
    for (const auto &[key, c] : q.quadraticTerms()) {
        if (c == 0.0)
            continue;
        ising.addOffset(c / 4.0);
        ising.addField(key.first(), c / 4.0);
        ising.addField(key.second(), c / 4.0);
        ising.addCoupling(key.first(), key.second(), c / 4.0);
    }
    return ising;
}

std::vector<bool>
spinsToBits(const std::vector<std::int8_t> &s)
{
    std::vector<bool> x(s.size());
    for (std::size_t i = 0; i < s.size(); ++i)
        x[i] = (s[i] > 0);
    return x;
}

std::vector<std::int8_t>
bitsToSpins(const std::vector<bool> &x)
{
    std::vector<std::int8_t> s(x.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        s[i] = x[i] ? 1 : -1;
    return s;
}

} // namespace hyqsat::qubo
