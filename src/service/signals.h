/**
 * @file
 * SIGINT/SIGTERM -> StopToken bridge for the service front doors.
 * The first signal requests a graceful drain (the handler is one
 * async-signal-safe atomic store); the second restores the default
 * disposition, so a repeated Ctrl-C still force-kills a wedged
 * process. This replaces the batch CLI's old behaviour of dying
 * mid-job and losing the whole report.
 */

#ifndef HYQSAT_SERVICE_SIGNALS_H
#define HYQSAT_SERVICE_SIGNALS_H

#include "util/cancel.h"

namespace hyqsat::service {

/**
 * Route SIGINT and SIGTERM to @p token.requestStop(). One token per
 * process (a second call rebinds the handlers to the new token);
 * @p token must outlive the handlers.
 */
void installStopSignalHandlers(StopToken &token);

/** Restore the default SIGINT/SIGTERM dispositions (tests). */
void uninstallStopSignalHandlers();

} // namespace hyqsat::service

#endif // HYQSAT_SERVICE_SIGNALS_H
