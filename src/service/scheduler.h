/**
 * @file
 * Multi-tenant job scheduler: the persistent heart of the solver
 * service. Accepts DIMACS jobs from many clients (tenants), applies
 * admission control (bounded global and per-tenant queue depth —
 * backpressure is a reject-with-reason, never an unbounded queue),
 * orders work by per-tenant priority with round-robin fairness among
 * equals, and runs each job on a pool of workers as one
 * portfolio::PortfolioSolver race with per-job timeout and memory
 * budgets. Graceful drain rides the StopToken machinery: stop
 * accepting, then finish or cancel in-flight work by policy.
 *
 * Lifted out of portfolio::BatchRunner (which is now a thin client)
 * so the one-shot batch CLI and the long-running daemon share one
 * scheduling, budgeting and reporting core.
 *
 * Metrics (when a registry is attached): global and per-tenant
 * service.submitted / accepted / rejected / completed / cancelled
 * counters with the invariant submitted == rejected + completed +
 * cancelled once idle, a service.queue_depth gauge, and a
 * service.solve_latency histogram.
 */

#ifndef HYQSAT_SERVICE_SCHEDULER_H
#define HYQSAT_SERVICE_SCHEDULER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "portfolio/portfolio.h"
#include "portfolio/work_queue.h"
#include "service/job.h"
#include "service/report.h"
#include "util/cancel.h"

namespace hyqsat::service {

/** Scheduler configuration. */
struct SchedulerOptions
{
    /** Portfolio configuration applied per job. */
    portfolio::PortfolioOptions portfolio;

    /** Jobs solved concurrently (pool threads). Each one runs
     *  portfolio.num_workers solver threads of its own. */
    int workers = 2;

    /**
     * Admission control: reject ("queue_full") when this many jobs
     * are queued and not yet running. 0 = unbounded (batch mode).
     */
    std::size_t max_queue_depth = 0;

    /** Per-tenant bound ("tenant_queue_full"); 0 = unbounded. */
    std::size_t max_tenant_depth = 0;

    /** Default per-job wall-clock budget (s); 0 = unlimited.
     *  JobSpec::timeout_s overrides when set. */
    double default_timeout_s = 0.0;

    /**
     * Per-job memory budget in MB, enforced as an admission guard on
     * the parsed formula's estimated footprint; 0 = unlimited. Jobs
     * over budget end SKIPPED — a soft budget, but one that can
     * never OOM the service.
     */
    std::size_t memory_budget_mb = 0;

    /**
     * Caller-side stop (e.g. a signal handler's token): when it
     * trips, the scheduler drains itself with @ref
     * external_stop_policy. nullptr = none.
     */
    const StopToken *external_stop = nullptr;

    /** Drain policy applied when external_stop trips. */
    DrainPolicy external_stop_policy = DrainPolicy::CancelPending;

    /**
     * Finished-job records retained for wait()/state() queries; the
     * oldest are evicted past this bound so a long-running daemon's
     * memory stays flat. 0 = keep everything (batch mode, where the
     * runner collects every record).
     */
    std::size_t max_retained_records = 4096;

    /**
     * Start with the workers parked: submissions queue up (admission
     * control applies) but nothing runs until resume(). Tests use
     * this to fill queues deterministically.
     */
    bool start_paused = false;

    /**
     * Observability: each job solves against a private registry
     * (snapshotted into its InstanceRecord), then merges here under
     * the scheduler's lock, alongside the service.* counters above.
     * Job begin/done events stream to this registry's trace sink.
     * nullptr records nothing.
     */
    MetricsRegistry *metrics = nullptr;
};

/** The multi-tenant scheduler (thread-safe; owns its worker pool). */
class JobScheduler
{
  public:
    explicit JobScheduler(SchedulerOptions opts);

    /** Drains with CancelPending and joins the pool. */
    ~JobScheduler();

    JobScheduler(const JobScheduler &) = delete;
    JobScheduler &operator=(const JobScheduler &) = delete;

    /**
     * Submit one job. Admission control answers immediately: an
     * accepted job is queued (its id can be waited on); a rejected
     * one carries the reason and was never queued.
     */
    Submission submit(JobSpec spec);

    /** Unpark the workers (no-op unless start_paused). */
    void resume();

    /** Current lifecycle state (Done for unknown ids). */
    JobState state(JobId id) const;

    /**
     * Block until the job finishes, then return its record. Unknown
     * ids return a record with status "UNKNOWN".
     */
    InstanceRecord wait(JobId id);

    /** Block until every accepted job has finished. */
    void waitIdle();

    /**
     * Stop accepting new work (submits reject with "draining") and
     * dispose of accepted work by policy: FinishQueued runs
     * everything already queued to completion; CancelPending cancels
     * queued jobs outright and trips the StopToken of every
     * in-flight solve. Idempotent; returns without blocking — use
     * waitIdle()/shutdown() to wait for quiescence. Implies
     * resume().
     */
    void drain(DrainPolicy policy);

    /** drain(policy) + waitIdle() + join the worker pool. */
    void shutdown(DrainPolicy policy = DrainPolicy::CancelPending);

    bool draining() const;

    /** Jobs queued and not yet picked up. */
    std::size_t queueDepth() const;

    /**
     * Ids in the order jobs finished (diagnostics/tests; stable once
     * idle).
     */
    std::vector<JobId> completionOrder() const;

    const SchedulerOptions &options() const { return opts_; }

  private:
    struct Job
    {
        JobId id = 0;
        JobSpec spec;
        JobState state = JobState::Queued;
        std::atomic<bool> cancelled{false}; ///< drain reached this job
        StopToken stop;                     ///< per-job cancellation
        InstanceRecord record;
    };

    /** One tenant's slice: a FIFO WorkQueue plus its priority. */
    struct Tenant
    {
        int priority = 0;
        std::uint64_t last_served = 0; ///< round-robin clock
        portfolio::WorkQueue queue;    ///< job ids, FIFO
    };

    void workerLoop();
    std::shared_ptr<Job> nextJobLocked();
    void runJob(const std::shared_ptr<Job> &job);
    void finishJob(const std::shared_ptr<Job> &job,
                   MetricsRegistry *job_metrics);
    void recordCompletionLocked(JobId id);
    void watchExternalStop();
    Counter *tenantCounter(const std::string &tenant,
                           const char *what);

    SchedulerOptions opts_;

    mutable std::mutex mutex_;
    std::condition_variable work_cv_; ///< workers park here
    std::condition_variable done_cv_; ///< wait()/waitIdle() park here
    bool paused_ = false;
    bool draining_ = false;
    DrainPolicy drain_policy_ = DrainPolicy::FinishQueued;
    bool joining_ = false;

    JobId next_id_ = 1;
    std::uint64_t serve_clock_ = 0;
    std::size_t queued_ = 0;  ///< accepted, not yet running
    std::size_t running_ = 0; ///< in flight
    std::map<std::string, Tenant> tenants_;
    std::map<JobId, std::shared_ptr<Job>> jobs_;
    std::deque<JobId> completion_order_;

    std::vector<std::thread> pool_;
    std::thread stop_watcher_;
    StopToken watcher_quit_;

    std::mutex metrics_mutex_; ///< serializes merges into opts_.metrics
};

} // namespace hyqsat::service

#endif // HYQSAT_SERVICE_SCHEDULER_H
