#include "service/server.h"

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <sstream>

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "service/protocol.h"
#include "service/scheduler.h"
#include "service/session_manager.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace hyqsat::service {

namespace {

/** send() the whole buffer; MSG_NOSIGNAL so a gone client is an
 *  error return, not a SIGPIPE. */
bool
sendAll(int fd, std::string_view data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd, data.data() + off,
                                 data.size() - off, MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool
sendLine(int fd, const std::string &line)
{
    return sendAll(fd, line + "\n");
}

/** Buffered line reader over one socket. */
class LineReader
{
  public:
    explicit LineReader(int fd) : fd_(fd) {}

    /** Next '\n'-terminated line, '\r' stripped. False on EOF. */
    bool
    next(std::string &line)
    {
        for (;;) {
            const auto nl = buf_.find('\n');
            if (nl != std::string::npos) {
                line.assign(buf_, 0, nl);
                buf_.erase(0, nl + 1);
                if (!line.empty() && line.back() == '\r')
                    line.pop_back();
                return true;
            }
            char tmp[4096];
            const ssize_t n = ::recv(fd_, tmp, sizeof(tmp), 0);
            if (n <= 0)
                return false;
            buf_.append(tmp, static_cast<std::size_t>(n));
        }
    }

  private:
    int fd_;
    std::string buf_;
};

} // namespace

Server::Server(ServerOptions opts, JobScheduler &scheduler,
               MetricsRegistry *metrics)
    : opts_(std::move(opts)), scheduler_(scheduler), metrics_(metrics)
{
}

Server::~Server()
{
    stop();
}

bool
Server::start()
{
    if (running_.load(std::memory_order_relaxed))
        return true;

    if (!opts_.unix_path.empty()) {
        sockaddr_un addr{};
        if (opts_.unix_path.size() >= sizeof(addr.sun_path)) {
            warn("unix socket path too long: %s",
                 opts_.unix_path.c_str());
            return false;
        }
        listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (listen_fd_ < 0)
            return false;
        ::unlink(opts_.unix_path.c_str());
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, opts_.unix_path.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::bind(listen_fd_,
                   reinterpret_cast<const sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            warn("cannot bind %s: %s", opts_.unix_path.c_str(),
                 std::strerror(errno));
            closeListener();
            return false;
        }
        port_ = 0;
    } else {
        listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listen_fd_ < 0)
            return false;
        const int one = 1;
        ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port =
            htons(static_cast<std::uint16_t>(std::max(opts_.tcp_port, 0)));
        if (::bind(listen_fd_,
                   reinterpret_cast<const sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            warn("cannot bind 127.0.0.1:%d: %s", opts_.tcp_port,
                 std::strerror(errno));
            closeListener();
            return false;
        }
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        ::getsockname(listen_fd_,
                      reinterpret_cast<sockaddr *>(&bound), &len);
        port_ = static_cast<int>(ntohs(bound.sin_port));
    }

    if (::listen(listen_fd_, opts_.backlog) != 0) {
        warn("listen failed: %s", std::strerror(errno));
        closeListener();
        return false;
    }
    running_.store(true, std::memory_order_relaxed);
    accept_thread_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
Server::closeListener()
{
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
}

void
Server::stop()
{
    if (!running_.exchange(false, std::memory_order_relaxed)) {
        closeListener();
        return;
    }
    // Wake the accept loop (it polls running_ every 100 ms anyway).
    ::shutdown(listen_fd_, SHUT_RDWR);
    if (accept_thread_.joinable())
        accept_thread_.join();
    closeListener();

    {
        std::lock_guard<std::mutex> lock(conn_mutex_);
        for (const int fd : conn_fds_)
            if (fd >= 0)
                ::shutdown(fd, SHUT_RDWR);
    }
    for (std::thread &t : conn_threads_)
        if (t.joinable())
            t.join();
    {
        std::lock_guard<std::mutex> lock(conn_mutex_);
        conn_threads_.clear();
        conn_fds_.clear();
    }
    if (!opts_.unix_path.empty())
        ::unlink(opts_.unix_path.c_str());
}

void
Server::acceptLoop()
{
    while (running_.load(std::memory_order_relaxed)) {
        pollfd pfd{listen_fd_, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 100);
        if (!running_.load(std::memory_order_relaxed))
            return;
        if (ready <= 0)
            continue;
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0)
            continue;

        std::lock_guard<std::mutex> lock(conn_mutex_);
        int live = 0;
        for (const int c : conn_fds_)
            if (c >= 0)
                ++live;
        if (live >= opts_.max_connections) {
            // Connection-level backpressure mirrors the scheduler's
            // admission control: an explicit no, not a silent hang.
            sendLine(fd, "ERR busy");
            ::close(fd);
            continue;
        }
        const std::size_t slot = conn_fds_.size();
        conn_fds_.push_back(fd);
        conn_threads_.emplace_back([this, fd, slot] {
            serveConnection(fd);
            ::close(fd);
            std::lock_guard<std::mutex> inner(conn_mutex_);
            conn_fds_[slot] = -1;
        });
    }
}

void
Server::serveConnection(int fd)
{
    LineReader reader(fd);
    std::string line;
    while (reader.next(line)) {
        const Request req = parseRequest(line);
        switch (req.verb) {
        case Verb::Submit: {
            // Body: DIMACS lines straight off the socket into
            // memory, terminated by END. No temp file round trip.
            std::string dimacs;
            bool eof = false;
            for (;;) {
                std::string body_line;
                if (!reader.next(body_line)) {
                    eof = true;
                    break;
                }
                if (body_line == kEndMarker)
                    break;
                dimacs += body_line;
                dimacs += '\n';
            }
            if (eof)
                return; // client vanished mid-body
            JobSpec spec;
            spec.tenant = req.tenant;
            spec.priority = req.priority;
            spec.name = req.name;
            spec.simplify = req.simplify;
            spec.topology = req.topology;
            spec.reads_batch = req.reads_batch;
            spec.reads_groups = req.reads_groups;
            spec.dimacs = std::move(dimacs);
            const Submission sub = scheduler_.submit(std::move(spec));
            if (!sendLine(fd, formatSubmission(sub)))
                return;
            break;
        }
        case Verb::Wait: {
            const InstanceRecord rec = scheduler_.wait(req.id);
            if (!sendLine(fd, formatResult(req.id, rec)))
                return;
            break;
        }
        case Verb::Status: {
            const JobState state = scheduler_.state(req.id);
            std::string status;
            if (state == JobState::Done)
                status = scheduler_.wait(req.id).status;
            if (!sendLine(fd, formatState(req.id, state, status)))
                return;
            break;
        }
        case Verb::Metrics: {
            std::ostringstream snap;
            snap << "METRICS\n";
            if (metrics_)
                metrics_->writeText(snap);
            snap << kEndMarker << "\n";
            if (!sendAll(fd, snap.str()))
                return;
            break;
        }
        case Verb::Ping:
            if (!sendLine(fd, "PONG"))
                return;
            break;
        case Verb::Shutdown:
            sendLine(fd, "OK shutdown");
            if (sessions_)
                sessions_->drain();
            if (on_shutdown_)
                on_shutdown_(req.drain_policy);
            break;
        case Verb::Quit:
            sendLine(fd, "BYE");
            return;
        case Verb::Open: {
            if (!sessions_) {
                if (!sendLine(fd, "ERR sessions disabled"))
                    return;
                break;
            }
            const OpenResult res =
                sessions_->open(req.tenant, req.simplify);
            const std::string reply =
                res.accepted ? "OK " + std::to_string(res.id)
                             : "REJECTED " + res.reject_reason;
            if (!sendLine(fd, reply))
                return;
            break;
        }
        case Verb::Add: {
            // Body: clause lines off the socket until END, exactly
            // like a SUBMIT body. Read it even when sessions are
            // disabled so the connection stays line-synchronized.
            std::string dimacs;
            bool eof = false;
            for (;;) {
                std::string body_line;
                if (!reader.next(body_line)) {
                    eof = true;
                    break;
                }
                if (body_line == kEndMarker)
                    break;
                dimacs += body_line;
                dimacs += '\n';
            }
            if (eof)
                return;
            if (!sessions_) {
                if (!sendLine(fd, "ERR sessions disabled"))
                    return;
                break;
            }
            const std::string err = sessions_->add(req.id, dimacs);
            const std::string reply =
                err.empty() ? "OK " + std::to_string(req.id)
                            : "ERR " + err;
            if (!sendLine(fd, reply))
                return;
            break;
        }
        case Verb::Assume: {
            if (!sessions_) {
                if (!sendLine(fd, "ERR sessions disabled"))
                    return;
                break;
            }
            const std::string err =
                sessions_->assume(req.id, req.lits);
            const std::string reply =
                err.empty() ? "OK " + std::to_string(req.id)
                            : "ERR " + err;
            if (!sendLine(fd, reply))
                return;
            break;
        }
        case Verb::Solve: {
            if (!sessions_) {
                if (!sendLine(fd, "ERR sessions disabled"))
                    return;
                break;
            }
            const std::optional<InstanceRecord> rec =
                sessions_->solve(req.id);
            const std::string reply =
                rec ? formatResult(req.id, *rec)
                    : "ERR unknown session";
            if (!sendLine(fd, reply))
                return;
            break;
        }
        case Verb::Core: {
            if (!sessions_) {
                if (!sendLine(fd, "ERR sessions disabled"))
                    return;
                break;
            }
            const std::optional<std::vector<int>> lits =
                sessions_->core(req.id);
            const std::string reply = lits
                                          ? formatCore(req.id, *lits)
                                          : "ERR unknown session";
            if (!sendLine(fd, reply))
                return;
            break;
        }
        case Verb::Close: {
            if (!sessions_) {
                if (!sendLine(fd, "ERR sessions disabled"))
                    return;
                break;
            }
            const std::string reply =
                sessions_->close(req.id)
                    ? "OK " + std::to_string(req.id)
                    : "ERR unknown session";
            if (!sendLine(fd, reply))
                return;
            break;
        }
        case Verb::Invalid:
            if (!sendLine(fd, "ERR " + req.error))
                return;
            break;
        }
    }
}

} // namespace hyqsat::service
