#include "service/signals.h"

#include <atomic>
#include <csignal>

namespace hyqsat::service {

namespace {

// The handler can only touch async-signal-safe state: one atomic
// pointer to the installed token. StopToken::requestStop() is a
// relaxed atomic store, so calling it from the handler is safe.
std::atomic<StopToken *> g_stop_token{nullptr};

void
onStopSignal(int sig)
{
    if (StopToken *token =
            g_stop_token.load(std::memory_order_relaxed))
        token->requestStop();
    // Second signal force-kills: restore the default disposition so
    // the next delivery terminates the process.
    std::signal(sig, SIG_DFL);
}

} // namespace

void
installStopSignalHandlers(StopToken &token)
{
    g_stop_token.store(&token, std::memory_order_relaxed);
    struct sigaction sa = {};
    sa.sa_handler = onStopSignal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0; // no SA_RESTART: blocked reads should wake
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

void
uninstallStopSignalHandlers()
{
    g_stop_token.store(nullptr, std::memory_order_relaxed);
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
}

} // namespace hyqsat::service
