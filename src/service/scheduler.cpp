#include "service/scheduler.h"

#include <algorithm>
#include <chrono>
#include <filesystem>

#include "sat/dimacs.h"
#include "simplify/pipeline.h"
#include "topology/topology.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/timer.h"

namespace hyqsat::service {

namespace {

/** Buckets for the solve-latency histogram (seconds). */
std::vector<double>
latencyBounds()
{
    return {0.001, 0.01, 0.1, 1.0, 10.0, 60.0};
}

} // namespace

JobScheduler::JobScheduler(SchedulerOptions opts)
    : opts_(std::move(opts))
{
    opts_.workers = std::max(opts_.workers, 1);
    paused_ = opts_.start_paused;
    pool_.reserve(static_cast<std::size_t>(opts_.workers));
    for (int i = 0; i < opts_.workers; ++i)
        pool_.emplace_back([this] { workerLoop(); });
    if (opts_.external_stop)
        stop_watcher_ = std::thread([this] { watchExternalStop(); });
}

JobScheduler::~JobScheduler()
{
    shutdown(DrainPolicy::CancelPending);
}

Counter *
JobScheduler::tenantCounter(const std::string &tenant,
                            const char *what)
{
    if (!opts_.metrics)
        return nullptr;
    return opts_.metrics->counter("service.tenant." + tenant + "." +
                                  what);
}

Submission
JobScheduler::submit(JobSpec spec)
{
    Submission sub;
    std::lock_guard<std::mutex> lock(mutex_);
    if (opts_.metrics) {
        opts_.metrics->counter("service.submitted")->add();
        metricInc(tenantCounter(spec.tenant, "submitted"));
    }

    const char *reject = nullptr;
    if (draining_) {
        reject = "draining";
    } else if (opts_.max_queue_depth > 0 &&
               queued_ >= opts_.max_queue_depth) {
        reject = "queue_full";
    } else if (opts_.max_tenant_depth > 0) {
        const auto it = tenants_.find(spec.tenant);
        if (it != tenants_.end() &&
            it->second.queue.size() >= opts_.max_tenant_depth)
            reject = "tenant_queue_full";
    }
    if (reject) {
        sub.reject_reason = reject;
        if (opts_.metrics) {
            opts_.metrics->counter("service.rejected")->add();
            metricInc(tenantCounter(spec.tenant, "rejected"));
        }
        return sub;
    }

    auto job = std::make_shared<Job>();
    job->id = next_id_++;
    job->spec = std::move(spec);

    Tenant &tenant = tenants_[job->spec.tenant];
    tenant.priority = job->spec.priority;
    tenant.queue.push(std::to_string(job->id));
    jobs_.emplace(job->id, job);
    ++queued_;
    if (opts_.metrics) {
        opts_.metrics->counter("service.accepted")->add();
        opts_.metrics->gauge("service.queue_depth")
            ->set(static_cast<double>(queued_));
    }

    sub.accepted = true;
    sub.id = job->id;
    work_cv_.notify_one();
    return sub;
}

void
JobScheduler::resume()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        paused_ = false;
    }
    work_cv_.notify_all();
}

JobState
JobScheduler::state(JobId id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    return it == jobs_.end() ? JobState::Done : it->second->state;
}

InstanceRecord
JobScheduler::wait(JobId id)
{
    std::unique_lock<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) {
        InstanceRecord rec;
        rec.status = "UNKNOWN";
        return rec;
    }
    const std::shared_ptr<Job> job = it->second;
    done_cv_.wait(lock, [&] { return job->state == JobState::Done; });
    return job->record;
}

void
JobScheduler::waitIdle()
{
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return queued_ == 0 && running_ == 0; });
}

bool
JobScheduler::draining() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return draining_;
}

std::size_t
JobScheduler::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queued_;
}

std::vector<JobId>
JobScheduler::completionOrder() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return {completion_order_.begin(), completion_order_.end()};
}

void
JobScheduler::recordCompletionLocked(JobId id)
{
    completion_order_.push_back(id);
    if (opts_.max_retained_records == 0)
        return;
    // Flat memory over a long-running daemon's lifetime: evict the
    // oldest finished records past the retention bound.
    while (completion_order_.size() > opts_.max_retained_records) {
        jobs_.erase(completion_order_.front());
        completion_order_.pop_front();
    }
}

void
JobScheduler::drain(DrainPolicy policy)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!draining_) {
            draining_ = true;
            drain_policy_ = policy;
        } else if (policy == DrainPolicy::CancelPending) {
            drain_policy_ = policy; // escalate finish -> cancel
        }
        paused_ = false; // a drain always unparks the workers

        if (drain_policy_ == DrainPolicy::CancelPending) {
            // Queued jobs complete as CANCELLED right here (they
            // never run); in-flight jobs get their stop tokens
            // tripped and finish on their own threads.
            for (auto &[name, tenant] : tenants_) {
                std::string id_str;
                while (tenant.queue.pop(id_str)) {
                    const JobId id = std::stoull(id_str);
                    const auto it = jobs_.find(id);
                    if (it == jobs_.end())
                        continue;
                    Job &job = *it->second;
                    job.cancelled.store(true,
                                        std::memory_order_relaxed);
                    job.state = JobState::Done;
                    job.record.name = job.spec.name;
                    job.record.path = job.spec.path;
                    job.record.status = "CANCELLED";
                    recordCompletionLocked(id);
                    --queued_;
                    if (opts_.metrics) {
                        opts_.metrics->counter("service.cancelled")
                            ->add();
                        metricInc(tenantCounter(job.spec.tenant,
                                                "cancelled"));
                    }
                }
            }
            if (opts_.metrics)
                opts_.metrics->gauge("service.queue_depth")
                    ->set(static_cast<double>(queued_));
            for (auto &[id, job] : jobs_) {
                if (job->state == JobState::Running) {
                    job->cancelled.store(true,
                                         std::memory_order_relaxed);
                    job->stop.requestStop();
                }
            }
        }
    }
    work_cv_.notify_all();
    done_cv_.notify_all();
}

void
JobScheduler::shutdown(DrainPolicy policy)
{
    watcher_quit_.requestStop();
    if (stop_watcher_.joinable())
        stop_watcher_.join();
    drain(policy);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        joining_ = true;
    }
    work_cv_.notify_all();
    for (std::thread &t : pool_)
        if (t.joinable())
            t.join();
}

void
JobScheduler::watchExternalStop()
{
    while (!watcher_quit_.stopRequested()) {
        if (opts_.external_stop->stopRequested()) {
            drain(opts_.external_stop_policy);
            return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
}

std::shared_ptr<JobScheduler::Job>
JobScheduler::nextJobLocked()
{
    // Serve the non-empty tenant with the highest priority;
    // round-robin (least recently served first) among equals.
    Tenant *best = nullptr;
    for (auto &[name, tenant] : tenants_) {
        if (tenant.queue.size() == 0)
            continue;
        if (!best || tenant.priority > best->priority ||
            (tenant.priority == best->priority &&
             tenant.last_served < best->last_served))
            best = &tenant;
    }
    if (!best)
        return nullptr;
    std::string id_str;
    if (!best->queue.pop(id_str))
        return nullptr;
    best->last_served = ++serve_clock_;

    const auto it = jobs_.find(std::stoull(id_str));
    if (it == jobs_.end())
        return nullptr;
    const std::shared_ptr<Job> job = it->second;
    job->state = JobState::Running;
    --queued_;
    ++running_;
    if (opts_.metrics)
        opts_.metrics->gauge("service.queue_depth")
            ->set(static_cast<double>(queued_));
    return job;
}

void
JobScheduler::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        work_cv_.wait(lock, [&] {
            return joining_ || (!paused_ && queued_ > 0);
        });
        if (!paused_ && queued_ > 0) {
            const std::shared_ptr<Job> job = nextJobLocked();
            if (job) {
                lock.unlock();
                runJob(job);
                lock.lock();
                continue;
            }
        }
        if (joining_ && queued_ == 0)
            return;
    }
}

void
JobScheduler::runJob(const std::shared_ptr<Job> &job)
{
    namespace fs = std::filesystem;
    const JobSpec &spec = job->spec;
    InstanceRecord rec;
    rec.path = spec.path;
    rec.name = !spec.name.empty()
                   ? spec.name
                   : fs::path(spec.path).stem().string();

    // Private per-job registry: snapshotted into the record, then
    // merged into the service registry under the metrics lock.
    MetricsRegistry inst_metrics;
    if (opts_.metrics)
        inst_metrics.setTrace(opts_.metrics->trace());

    const Timer timer;
    const auto parsed =
        !spec.dimacs.empty()
            ? sat::parseDimacs(std::string_view(spec.dimacs))
            : sat::parseDimacsFile(spec.path);
    if (!parsed) {
        rec.status = "PARSE_ERROR";
        rec.wall_s = timer.seconds();
        job->record = std::move(rec);
        finishJob(job, opts_.metrics ? &inst_metrics : nullptr);
        return;
    }
    sat::Cnf cnf = *parsed;
    rec.vars = cnf.numVars();
    rec.clauses = cnf.numClauses();
    if (!cnf.isThreeSat())
        cnf = sat::toThreeSat(cnf);

    portfolio::PortfolioOptions popts = opts_.portfolio;
    const double timeout = spec.timeout_s > 0.0
                               ? spec.timeout_s
                               : opts_.default_timeout_s;
    if (timeout > 0.0)
        popts.timeout_s = timeout;
    popts.external_stop = &job->stop;
    popts.metrics = &inst_metrics;

    // Per-job inprocessing override: retarget the base config (and
    // any explicit worker slate) before diversification. An invalid
    // spelling was already rejected at the protocol layer; here it
    // just falls back to the configured default.
    simplify::Strength strength = popts.base.simplify_strength;
    if (!spec.simplify.empty() &&
        simplify::parseStrength(spec.simplify, strength)) {
        popts.base.simplify_strength = strength;
        for (portfolio::WorkerConfig &w : popts.workers)
            w.hybrid.simplify_strength = strength;
    }
    rec.simplify = simplify::strengthName(strength);

    // Topology and lockstep-reads overrides, applied the same way
    // (base config + any explicit slate; echoed in the record).
    topology::Kind topo = popts.base.topology;
    if (const auto kind = topology::parseKind(spec.topology)) {
        topo = *kind;
        popts.base.topology = topo;
        for (portfolio::WorkerConfig &w : popts.workers)
            w.hybrid.topology = topo;
    }
    rec.topology = topology::kindName(topo);

    bool reads_batch = popts.base.reads_batch;
    if (spec.reads_batch >= 0) {
        reads_batch = spec.reads_batch != 0;
        popts.base.reads_batch = reads_batch;
        for (portfolio::WorkerConfig &w : popts.workers)
            w.hybrid.reads_batch = reads_batch;
    }
    rec.reads_batch = reads_batch;

    int reads_groups = popts.base.reads_groups;
    if (spec.reads_groups >= 0) {
        reads_groups = spec.reads_groups;
        popts.base.reads_groups = reads_groups;
        for (portfolio::WorkerConfig &w : popts.workers)
            w.hybrid.reads_groups = reads_groups;
    }
    rec.reads_groups = reads_groups;

    const int workers = popts.workers.empty()
                            ? popts.num_workers
                            : static_cast<int>(popts.workers.size());
    if (opts_.memory_budget_mb > 0 &&
        estimateMemoryMb(cnf, workers) > opts_.memory_budget_mb) {
        rec.status = "SKIPPED";
        rec.wall_s = timer.seconds();
        job->record = std::move(rec);
        finishJob(job, opts_.metrics ? &inst_metrics : nullptr);
        return;
    }

    portfolio::PortfolioSolver solver(popts);
    const portfolio::PortfolioResult result = solver.solve(cnf);
    rec.wall_s = timer.seconds();

    if (result.status.isTrue())
        rec.status = "SAT";
    else if (result.status.isFalse())
        rec.status = "UNSAT";
    else if (result.timed_out)
        rec.status = "TIMEOUT";
    else if (job->cancelled.load(std::memory_order_relaxed))
        rec.status = "CANCELLED";
    else
        rec.status = "UNKNOWN";

    if (result.winner >= 0) {
        rec.winner = result.winner_label;
        const core::HybridResult &w = result.winner_result;
        rec.iterations = w.stats.iterations;
        rec.conflicts = w.stats.conflicts;
        rec.qa_samples = w.qa_samples;
        rec.frontend_s = w.time.frontend_s;
        rec.qa_device_s = w.time.qa_device_s;
        rec.qa_blocking_s = w.time.qa_blocking_s;
        rec.backend_s = w.time.backend_s;
        rec.cdcl_s = w.time.cdcl_s;
    }

    // All-worker totals and the full per-job snapshot come from the
    // registry even when nobody decided (a timeout still did
    // measurable work).
    rec.restarts = inst_metrics.counter("solver.restarts")->value();
    rec.propagations =
        inst_metrics.counter("solver.propagations")->value();
    rec.metrics = inst_metrics.snapshot();
    job->record = std::move(rec);
    finishJob(job, opts_.metrics ? &inst_metrics : nullptr);
}

void
JobScheduler::finishJob(const std::shared_ptr<Job> &job,
                        MetricsRegistry *job_metrics)
{
    if (opts_.metrics) {
        std::lock_guard<std::mutex> lock(metrics_mutex_);
        MetricsRegistry &m = *opts_.metrics;
        if (job_metrics)
            m.merge(*job_metrics);
        const bool cancelled = job->record.status == "CANCELLED";
        m.counter(cancelled ? "service.cancelled"
                            : "service.completed")
            ->add();
        metricInc(tenantCounter(job->spec.tenant, cancelled
                                                      ? "cancelled"
                                                      : "completed"));
        m.histogram("service.solve_latency", latencyBounds())
            ->record(job->record.wall_s);
        if (TraceSink *trace = m.trace()) {
            trace->event(
                "service.job_done",
                {{"wall_s", job->record.wall_s},
                 {"conflicts",
                  static_cast<double>(job->record.conflicts)}},
                {{"name", job->record.name},
                 {"tenant", job->spec.tenant},
                 {"status", job->record.status}});
        }
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job->state = JobState::Done;
        recordCompletionLocked(job->id);
        --running_;
    }
    done_cv_.notify_all();
}

} // namespace hyqsat::service
