/**
 * @file
 * portfolio::BatchRunner implementation — compiled into the service
 * library (not hyqsat_portfolio) because it is a client of
 * service::JobScheduler; keeping it here avoids a dependency cycle
 * between the two libraries while the public header stays in
 * src/portfolio/ for source compatibility.
 */

#include "portfolio/batch_runner.h"

#include <algorithm>

#include "service/scheduler.h"
#include "util/metrics.h"
#include "util/timer.h"

namespace hyqsat::portfolio {

BatchRunner::BatchRunner(BatchOptions opts) : opts_(std::move(opts))
{
    opts_.concurrency = std::max(opts_.concurrency, 1);
}

std::vector<std::string>
BatchRunner::collectCnfFiles(const std::string &dir)
{
    return service::collectCnfFiles(dir);
}

std::vector<std::string>
BatchRunner::readManifest(std::istream &in)
{
    return service::readManifest(in);
}

std::size_t
BatchRunner::estimateMemoryMb(const sat::Cnf &cnf, int num_workers)
{
    return service::estimateMemoryMb(cnf, num_workers);
}

void
BatchRunner::writeJson(const BatchReport &report, std::ostream &out)
{
    service::writeJsonReport(report, out);
}

void
BatchRunner::writeCsv(const BatchReport &report, std::ostream &out)
{
    service::writeCsvReport(report, out);
}

BatchReport
BatchRunner::run(const std::vector<std::string> &paths)
{
    const Timer wall;
    BatchReport report;
    report.records.resize(paths.size());

    service::SchedulerOptions sopts;
    sopts.portfolio = opts_.portfolio;
    sopts.workers = std::min<int>(
        opts_.concurrency,
        static_cast<int>(std::max<std::size_t>(paths.size(), 1)));
    sopts.default_timeout_s = opts_.instance_timeout_s;
    sopts.memory_budget_mb = opts_.memory_budget_mb;
    sopts.external_stop = opts_.external_stop;
    sopts.external_stop_policy = service::DrainPolicy::CancelPending;
    sopts.metrics = opts_.metrics;
    sopts.max_retained_records = 0; // the batch keeps every record
    // Park the workers until every path is queued: cancellation (a
    // pre-tripped external token) then deterministically cancels the
    // whole batch instead of racing the first few solves.
    sopts.start_paused = true;

    service::JobScheduler scheduler(sopts);
    std::vector<service::JobId> ids;
    ids.reserve(paths.size());
    for (const std::string &path : paths) {
        service::JobSpec spec;
        spec.tenant = "batch";
        spec.path = path;
        const service::Submission sub =
            scheduler.submit(std::move(spec));
        // A rejected submit (drain already started) keeps id 0; its
        // record stays default and reports UNKNOWN below.
        ids.push_back(sub.accepted ? sub.id : 0);
    }
    scheduler.resume();

    for (std::size_t i = 0; i < paths.size(); ++i) {
        if (ids[i] == 0)
            continue;
        InstanceRecord rec = scheduler.wait(ids[i]);
        if (rec.status == "CANCELLED") {
            // Batch semantics predate the service layer: an instance
            // the batch never answered is UNKNOWN, with the default
            // (empty) record the pre-refactor runner produced.
            rec = InstanceRecord{};
        }
        report.records[i] = std::move(rec);
    }
    scheduler.shutdown(service::DrainPolicy::FinishQueued);

    report.wall_s = wall.seconds();
    for (InstanceRecord &rec : report.records) {
        if (rec.status.empty())
            rec.status = "UNKNOWN"; // cancelled before it was picked up
        service::tallyRecord(report, rec);
    }
    return report;
}

} // namespace hyqsat::portfolio
