/**
 * @file
 * Line protocol of the solver service's socket front door. Plain
 * text, one request/response line at a time, so any client — the
 * bundled service_client, netcat, a CI script — can drive the
 * daemon without a serialization library.
 *
 * Client -> server:
 *   SUBMIT <tenant> <priority> <name> [simplify=<off|light|full>]
 *                    [topology=<chimera|pegasus|zephyr>]
 *                    [reads_batch=<0|1>] [reads_groups=<n>]
 *                    then DIMACS lines, then END
 *   WAIT <id>        block until the job finishes
 *   STATUS <id>      non-blocking state probe
 *   METRICS          /metrics-style text snapshot
 *   PING             liveness probe
 *   SHUTDOWN [finish|cancel]   drain the daemon (default finish)
 *   QUIT             close this connection
 *
 * Incremental sessions (IPASIR-style, core::Session behind each id):
 *   OPEN <tenant> [simplify=<off|light|full>]   open a session
 *   ADD <sid>        then DIMACS clause lines, then END
 *   ASSUME <sid> <lit...>   assumptions (DIMACS ints) for next SOLVE
 *   SOLVE <sid>      solve under the pending assumptions (inline)
 *   CORE <sid>       failed assumptions of the last UNSAT solve
 *   CLOSE <sid>      release the session
 *
 * Server -> client:
 *   OK <id>                        submit accepted / session verb ok
 *   REJECTED <reason>              admission control said no
 *   RESULT <id> <status> <wall_s> <vars> <clauses> <conflicts> <winner>
 *   STATE <id> QUEUED|RUNNING|DONE [<status>]
 *   CORE <sid> [<lit...>]          DIMACS ints (empty = formula UNSAT)
 *   METRICS                        then `name value` lines, then END
 *   PONG / BYE / ERR <message>
 *
 * This header is the single definition of both directions: the
 * server parses requests and formats responses with it, the client
 * does the reverse, and the protocol tests round-trip it.
 */

#ifndef HYQSAT_SERVICE_PROTOCOL_H
#define HYQSAT_SERVICE_PROTOCOL_H

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "service/job.h"
#include "service/report.h"

namespace hyqsat::service {

/** Terminator line of a SUBMIT body and of a METRICS snapshot. */
inline constexpr std::string_view kEndMarker = "END";

/** Request verbs the server understands. */
enum class Verb {
    Submit,
    Wait,
    Status,
    Metrics,
    Ping,
    Shutdown,
    Quit,
    Open,
    Add,
    Assume,
    Solve,
    Core,
    Close,
    Invalid,
};

/** One parsed request line. */
struct Request
{
    Verb verb = Verb::Invalid;
    std::string error; ///< parse diagnostic when verb == Invalid

    // SUBMIT / OPEN fields (a SUBMIT DIMACS body follows on later
    // lines).
    std::string tenant;
    int priority = 0;
    std::string name;
    std::string simplify; ///< "" = daemon default strength
    std::string topology; ///< "" = daemon default hardware graph
    int reads_batch = -1; ///< -1 = daemon default, else 0/1
    int reads_groups = -1; ///< -1 = daemon default, else >= 0
                           ///< (0 = auto-sized lockstep groups)

    // WAIT / STATUS / session-verb id field.
    JobId id = 0;

    // ASSUME literals (DIMACS ints, never 0).
    std::vector<int> lits;

    // SHUTDOWN field.
    DrainPolicy drain_policy = DrainPolicy::FinishQueued;
};

/** Split @p line on runs of spaces/tabs (no empty tokens). */
std::vector<std::string_view> splitTokens(std::string_view line);

/** Parse one request line (never throws; Invalid carries why). */
Request parseRequest(std::string_view line);

/** `OK <id>` or `REJECTED <reason>` for a submission verdict. */
std::string formatSubmission(const Submission &sub);

/** `RESULT <id> <status> <wall_s> <vars> <clauses> <conflicts> <winner>`. */
std::string formatResult(JobId id, const InstanceRecord &rec);

/** `STATE <id> QUEUED|RUNNING|DONE [<status>]`. */
std::string formatState(JobId id, JobState state,
                        const std::string &status);

/**
 * Parse a RESULT line back into (id, record) — the client half.
 * Only the fields the protocol carries are populated.
 */
std::optional<std::pair<JobId, InstanceRecord>>
parseResult(std::string_view line);

/** `CORE <sid> [<lit...>]` over DIMACS ints. */
std::string formatCore(JobId sid, const std::vector<int> &lits);

/** Parse a CORE line back into (sid, lits) — the client half. */
std::optional<std::pair<JobId, std::vector<int>>>
parseCore(std::string_view line);

} // namespace hyqsat::service

#endif // HYQSAT_SERVICE_PROTOCOL_H
