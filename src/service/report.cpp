#include "service/report.h"

#include <algorithm>
#include <filesystem>
#include <istream>
#include <ostream>

#include "sat/cnf.h"
#include "util/metrics.h"

namespace hyqsat::service {

namespace fs = std::filesystem;

void
tallyRecord(BatchReport &report, const InstanceRecord &rec)
{
    if (rec.status == "SAT")
        ++report.sat;
    else if (rec.status == "UNSAT")
        ++report.unsat;
    else if (rec.status == "TIMEOUT")
        ++report.timeouts;
    else if (rec.status == "SKIPPED")
        ++report.skipped;
    else if (rec.status == "PARSE_ERROR")
        ++report.errors;
    else
        ++report.unknown; // UNKNOWN and CANCELLED alike
}

std::vector<std::string>
collectCnfFiles(const std::string &dir)
{
    std::vector<std::string> paths;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        if (!entry.is_regular_file())
            continue;
        const std::string ext = entry.path().extension().string();
        if (ext == ".cnf" || ext == ".dimacs")
            paths.push_back(entry.path().string());
    }
    std::sort(paths.begin(), paths.end());
    return paths;
}

std::vector<std::string>
readManifest(std::istream &in)
{
    std::vector<std::string> paths;
    std::string line;
    while (std::getline(in, line)) {
        // Trim whitespace; skip blanks and '#' comments.
        const auto begin = line.find_first_not_of(" \t\r");
        if (begin == std::string::npos || line[begin] == '#')
            continue;
        const auto end = line.find_last_not_of(" \t\r");
        paths.push_back(line.substr(begin, end - begin + 1));
    }
    return paths;
}

std::size_t
estimateMemoryMb(const sat::Cnf &cnf, int num_workers)
{
    // Footprint model: every clause costs its literals (4 B each)
    // plus an arena header, doubled for learnt growth; every
    // variable costs watch lists, trail, heap and scores (~128 B).
    // Each portfolio worker holds an independent copy.
    std::size_t lits = 0;
    for (int i = 0; i < cnf.numClauses(); ++i)
        lits += cnf.clause(i).size();
    const std::size_t per_worker =
        lits * 2 * (sizeof(std::uint32_t) + 12) +
        static_cast<std::size_t>(cnf.numVars()) * 128;
    const std::size_t total =
        per_worker * static_cast<std::size_t>(std::max(num_workers, 1));
    return total / (1024 * 1024) + 1;
}

void
writeJsonReport(const BatchReport &report, std::ostream &out)
{
    // Every double is routed through jsonNumber(): timing fields can
    // be NaN/Inf after clock trouble or 0/0 derivations, and a bare
    // "nan" token makes the whole report unparseable downstream.
    out << "{\n  \"summary\": {"
        << "\"instances\": " << report.records.size()
        << ", \"sat\": " << report.sat
        << ", \"unsat\": " << report.unsat
        << ", \"unknown\": " << report.unknown
        << ", \"timeouts\": " << report.timeouts
        << ", \"skipped\": " << report.skipped
        << ", \"errors\": " << report.errors
        << ", \"wall_s\": " << jsonNumber(report.wall_s)
        << "},\n  \"instances\": [\n";
    for (std::size_t i = 0; i < report.records.size(); ++i) {
        const InstanceRecord &r = report.records[i];
        out << "    {\"name\": \"" << jsonEscape(r.name)
            << "\", \"path\": \"" << jsonEscape(r.path)
            << "\", \"status\": \"" << jsonEscape(r.status)
            << "\", \"winner\": \"" << jsonEscape(r.winner)
            << "\", \"simplify\": \"" << jsonEscape(r.simplify)
            << "\", \"topology\": \"" << jsonEscape(r.topology)
            << "\", \"reads_batch\": " << (r.reads_batch ? 1 : 0)
            << ", \"reads_groups\": " << r.reads_groups
            << ", \"wall_s\": " << jsonNumber(r.wall_s)
            << ", \"vars\": " << r.vars
            << ", \"clauses\": " << r.clauses
            << ", \"iterations\": " << r.iterations
            << ", \"conflicts\": " << r.conflicts
            << ", \"restarts\": " << r.restarts
            << ", \"propagations\": " << r.propagations
            << ", \"qa_samples\": " << r.qa_samples
            << ", \"time\": {\"frontend_s\": " << jsonNumber(r.frontend_s)
            << ", \"qa_device_s\": " << jsonNumber(r.qa_device_s)
            << ", \"qa_blocking_s\": " << jsonNumber(r.qa_blocking_s)
            << ", \"backend_s\": " << jsonNumber(r.backend_s)
            << ", \"cdcl_s\": " << jsonNumber(r.cdcl_s) << "}";
        out << ", \"metrics\": {";
        for (std::size_t k = 0; k < r.metrics.size(); ++k) {
            out << (k ? ", " : "") << '"'
                << jsonEscape(r.metrics[k].first)
                << "\": " << jsonNumber(r.metrics[k].second);
        }
        out << "}}" << (i + 1 < report.records.size() ? "," : "")
            << "\n";
    }
    out << "  ]\n}\n";
}

void
writeCsvReport(const BatchReport &report, std::ostream &out)
{
    out << "name,path,status,winner,simplify,topology,reads_batch,"
           "reads_groups,wall_s,vars,clauses,"
           "iterations,conflicts,restarts,propagations,qa_samples,"
           "frontend_s,qa_device_s,qa_blocking_s,backend_s,cdcl_s\n";
    for (const InstanceRecord &r : report.records) {
        out << r.name << ',' << r.path << ',' << r.status << ','
            << r.winner << ',' << r.simplify << ','
            << r.topology << ',' << (r.reads_batch ? 1 : 0) << ','
            << r.reads_groups << ',' << jsonNumber(r.wall_s) << ','
            << r.vars << ',' << r.clauses << ',' << r.iterations
            << ',' << r.conflicts << ',' << r.restarts << ','
            << r.propagations << ',' << r.qa_samples << ','
            << jsonNumber(r.frontend_s) << ','
            << jsonNumber(r.qa_device_s) << ','
            << jsonNumber(r.qa_blocking_s) << ','
            << jsonNumber(r.backend_s) << ','
            << jsonNumber(r.cdcl_s) << "\n";
    }
}

} // namespace hyqsat::service
