/**
 * @file
 * Per-tenant incremental-session registry for the solver service:
 * each OPEN gets a core::Session (warm IPASIR-style state) retained
 * across protocol round trips until CLOSE, with the same bounded
 * admission control the job scheduler applies to one-shot work.
 *
 * Concurrency: a global lock guards the registry maps; each session
 * carries its own lock, so two clients driving different sessions
 * solve in parallel while two requests racing the *same* session
 * serialize. SOLVE runs inline on the calling connection thread —
 * sessions are interactive state, not queued batch work.
 *
 * Metrics invariant (tested, asserted by CI): session.opened ==
 * session.closed + session.active at any quiescent point; the
 * destructor force-closes stragglers so the invariant also holds
 * terminally.
 */

#ifndef HYQSAT_SERVICE_SESSION_MANAGER_H
#define HYQSAT_SERVICE_SESSION_MANAGER_H

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/session.h"
#include "service/job.h"
#include "service/report.h"

namespace hyqsat::service {

/** Session identifier handed to clients (0 = invalid). */
using SessionId = std::uint64_t;

/** SessionManager configuration. */
struct SessionManagerOptions
{
    /** Base hybrid configuration each session copies. Its metrics
     *  pointer is ignored — the manager owns observability. */
    core::HybridConfig hybrid;

    /** Global cap on concurrently open sessions; 0 = unbounded. */
    std::size_t max_sessions = 64;

    /** Per-tenant cap ("tenant_sessions_full"); 0 = unbounded. */
    std::size_t max_per_tenant = 8;

    /** Registry for the session.* counters; nullptr records
     *  nothing (invariant queries then always return zero). */
    MetricsRegistry *metrics = nullptr;
};

/** Verdict of one OPEN. */
struct OpenResult
{
    bool accepted = false;
    SessionId id = 0;          ///< valid iff accepted
    std::string reject_reason; ///< "sessions_full",
                               ///< "tenant_sessions_full", "draining"
};

/** The per-tenant session registry (thread-safe). */
class SessionManager
{
  public:
    explicit SessionManager(SessionManagerOptions opts);

    /** Force-closes every remaining session. */
    ~SessionManager();

    SessionManager(const SessionManager &) = delete;
    SessionManager &operator=(const SessionManager &) = delete;

    /**
     * Open a session for @p tenant. @p simplify overrides the base
     * config's inprocessing strength ("off"/"light"/"full", "" =
     * keep the default).
     */
    OpenResult open(const std::string &tenant,
                    const std::string &simplify);

    /**
     * Add clauses from DIMACS text (a full file with a `p cnf`
     * header or bare clause lines, each 0-terminated). 3-SAT only.
     * @return "" on success, else a diagnostic for an ERR reply.
     */
    std::string add(SessionId sid, const std::string &dimacs);

    /**
     * Stage assumptions (DIMACS ints) for this session's next
     * solve(); they replace any previously staged set and are
     * consumed by it.
     */
    std::string assume(SessionId sid, const std::vector<int> &lits);

    /**
     * Solve under the staged assumptions, inline on the calling
     * thread. nullopt for an unknown sid. The record's winner field
     * is "session" and its id/name derive from the sid.
     */
    std::optional<InstanceRecord> solve(SessionId sid);

    /**
     * Failed assumptions (DIMACS ints) of the last UNSAT solve —
     * empty when the formula is unsatisfiable regardless of
     * assumptions. nullopt for an unknown sid.
     */
    std::optional<std::vector<int>> core(SessionId sid);

    /** Release the session. False for an unknown sid. */
    bool close(SessionId sid);

    /** Reject further opens ("draining"); live sessions keep
     *  serving until closed. */
    void drain();

    bool draining() const;

    /** Currently open sessions. */
    std::size_t active() const;

    const SessionManagerOptions &options() const { return opts_; }

  private:
    struct Entry
    {
        std::string tenant;
        std::unique_ptr<core::Session> session;
        sat::LitVec pending_assumptions;
        std::mutex mutex; ///< serializes verbs on this session
    };

    std::shared_ptr<Entry> find(SessionId sid) const;
    void closeLocked(SessionId sid);

    SessionManagerOptions opts_;

    mutable std::mutex mutex_;
    bool draining_ = false;
    SessionId next_id_ = 1;
    std::map<SessionId, std::shared_ptr<Entry>> sessions_;
    std::map<std::string, std::size_t> per_tenant_;

    // Resolved handles (null without a registry).
    Counter *m_opened_ = nullptr;
    Counter *m_closed_ = nullptr;
    Counter *m_rejected_ = nullptr;
    Counter *m_solves_ = nullptr;
    Counter *m_clauses_ = nullptr;
    Gauge *m_active_ = nullptr;
};

} // namespace hyqsat::service

#endif // HYQSAT_SERVICE_SESSION_MANAGER_H
