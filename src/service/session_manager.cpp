#include "service/session_manager.h"

#include <charconv>

#include "util/timer.h"

namespace hyqsat::service {

namespace {

/**
 * Parse DIMACS clause text: `c` comments and the `p cnf` header are
 * skipped, every other whitespace token is a literal, 0 ends a
 * clause. Unlike sat::parseDimacs this accepts headerless bodies —
 * incremental ADDs don't know their final variable count.
 * @return "" and fill @p clauses, or a diagnostic.
 */
std::string
parseClauses(const std::string &text,
             std::vector<sat::LitVec> &clauses)
{
    sat::LitVec current;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        const std::string_view line(text.data() + pos, eol - pos);
        pos = eol + 1;
        std::size_t i = 0;
        while (i < line.size() &&
               (line[i] == ' ' || line[i] == '\t' || line[i] == '\r'))
            ++i;
        if (i >= line.size() || line[i] == 'c' || line[i] == 'p')
            continue;
        while (i < line.size()) {
            while (i < line.size() &&
                   (line[i] == ' ' || line[i] == '\t' ||
                    line[i] == '\r'))
                ++i;
            std::size_t end = i;
            while (end < line.size() && line[end] != ' ' &&
                   line[end] != '\t' && line[end] != '\r')
                ++end;
            if (end == i)
                break;
            int lit = 0;
            const auto res = std::from_chars(
                line.data() + i, line.data() + end, lit);
            if (res.ec != std::errc() ||
                res.ptr != line.data() + end) {
                return "bad literal: " +
                       std::string(line.substr(i, end - i));
            }
            i = end;
            if (lit == 0) {
                clauses.push_back(current);
                current.clear();
                continue;
            }
            const int v = (lit > 0 ? lit : -lit) - 1;
            current.push_back(sat::mkLit(v, lit < 0));
        }
    }
    if (!current.empty())
        return "unterminated clause (missing 0)";
    return "";
}

} // namespace

SessionManager::SessionManager(SessionManagerOptions opts)
    : opts_(std::move(opts))
{
    // Sessions keep their own registries; the manager is the single
    // writer of the service-level session.* keys (no double count
    // when a closing session merges its internals).
    opts_.hybrid.metrics = nullptr;
    if (opts_.metrics) {
        m_opened_ = opts_.metrics->counter("session.opened");
        m_closed_ = opts_.metrics->counter("session.closed");
        m_rejected_ = opts_.metrics->counter("session.rejected");
        m_solves_ = opts_.metrics->counter("session.solves");
        m_clauses_ = opts_.metrics->counter("session.clauses");
        m_active_ = opts_.metrics->gauge("session.active");
    }
}

SessionManager::~SessionManager()
{
    std::lock_guard<std::mutex> lock(mutex_);
    while (!sessions_.empty())
        closeLocked(sessions_.begin()->first);
}

void
SessionManager::closeLocked(SessionId sid)
{
    const auto it = sessions_.find(sid);
    if (it == sessions_.end())
        return;
    const auto tenant_it = per_tenant_.find(it->second->tenant);
    if (tenant_it != per_tenant_.end() && tenant_it->second > 0)
        --tenant_it->second;
    sessions_.erase(it);
    if (m_closed_)
        m_closed_->add();
    if (m_active_)
        m_active_->set(static_cast<double>(sessions_.size()));
}

OpenResult
SessionManager::open(const std::string &tenant,
                     const std::string &simplify)
{
    OpenResult out;
    std::lock_guard<std::mutex> lock(mutex_);
    const auto reject = [&](const char *why) {
        out.reject_reason = why;
        if (m_rejected_)
            m_rejected_->add();
        return out;
    };
    if (draining_)
        return reject("draining");
    if (opts_.max_sessions != 0 &&
        sessions_.size() >= opts_.max_sessions)
        return reject("sessions_full");
    if (opts_.max_per_tenant != 0 &&
        per_tenant_[tenant] >= opts_.max_per_tenant)
        return reject("tenant_sessions_full");

    core::HybridConfig config = opts_.hybrid;
    simplify::Strength strength;
    if (!simplify.empty() &&
        simplify::parseStrength(simplify, strength))
        config.simplify_strength = strength;

    auto entry = std::make_shared<Entry>();
    entry->tenant = tenant;
    entry->session = std::make_unique<core::Session>(config);
    const SessionId sid = next_id_++;
    sessions_.emplace(sid, std::move(entry));
    ++per_tenant_[tenant];
    if (m_opened_)
        m_opened_->add();
    if (m_active_)
        m_active_->set(static_cast<double>(sessions_.size()));
    out.accepted = true;
    out.id = sid;
    return out;
}

std::shared_ptr<SessionManager::Entry>
SessionManager::find(SessionId sid) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = sessions_.find(sid);
    return it == sessions_.end() ? nullptr : it->second;
}

std::string
SessionManager::add(SessionId sid, const std::string &dimacs)
{
    const std::shared_ptr<Entry> entry = find(sid);
    if (!entry)
        return "unknown session";
    std::vector<sat::LitVec> clauses;
    const std::string err = parseClauses(dimacs, clauses);
    if (!err.empty())
        return err;
    for (const sat::LitVec &c : clauses) {
        if (c.size() > 3)
            return "clause too long (3-SAT required)";
    }
    std::lock_guard<std::mutex> lock(entry->mutex);
    for (sat::LitVec &c : clauses)
        entry->session->addClause(std::move(c));
    if (m_clauses_)
        m_clauses_->add(clauses.size());
    return "";
}

std::string
SessionManager::assume(SessionId sid, const std::vector<int> &lits)
{
    const std::shared_ptr<Entry> entry = find(sid);
    if (!entry)
        return "unknown session";
    std::lock_guard<std::mutex> lock(entry->mutex);
    entry->pending_assumptions.clear();
    for (const int lit : lits) {
        const int v = (lit > 0 ? lit : -lit) - 1;
        entry->pending_assumptions.push_back(
            sat::mkLit(v, lit < 0));
    }
    return "";
}

std::optional<InstanceRecord>
SessionManager::solve(SessionId sid)
{
    const std::shared_ptr<Entry> entry = find(sid);
    if (!entry)
        return std::nullopt;
    std::lock_guard<std::mutex> lock(entry->mutex);
    Timer timer;
    const sat::LitVec assumptions =
        std::move(entry->pending_assumptions);
    entry->pending_assumptions.clear();
    const core::HybridResult r = entry->session->solve(assumptions);

    InstanceRecord rec;
    rec.name = "session-" + std::to_string(sid);
    rec.status = r.status.isTrue()    ? "SAT"
                 : r.status.isFalse() ? "UNSAT"
                                      : "UNKNOWN";
    rec.winner = "session";
    rec.simplify = simplify::strengthName(
        entry->session->config().simplify_strength);
    rec.wall_s = timer.seconds();
    rec.vars = entry->session->formula().numVars();
    rec.clauses = entry->session->formula().numClauses();
    rec.iterations = r.stats.iterations;
    rec.conflicts = r.stats.conflicts;
    if (m_solves_)
        m_solves_->add();
    return rec;
}

std::optional<std::vector<int>>
SessionManager::core(SessionId sid)
{
    const std::shared_ptr<Entry> entry = find(sid);
    if (!entry)
        return std::nullopt;
    std::lock_guard<std::mutex> lock(entry->mutex);
    std::vector<int> out;
    // failedAssumptions() is the implied clause over *negated*
    // assumptions; clients want the assumptions that failed.
    for (const sat::Lit c : entry->session->failedAssumptions())
        out.push_back(sat::toDimacs(~c));
    return out;
}

bool
SessionManager::close(SessionId sid)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (sessions_.find(sid) == sessions_.end())
        return false;
    closeLocked(sid);
    return true;
}

void
SessionManager::drain()
{
    std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
}

bool
SessionManager::draining() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return draining_;
}

std::size_t
SessionManager::active() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return sessions_.size();
}

} // namespace hyqsat::service
