/**
 * @file
 * Socket front door of the solver service: a line-protocol server
 * (see protocol.h) over a unix-domain socket or loopback TCP,
 * feeding a JobScheduler. One accept thread plus one thread per
 * connection; SUBMIT bodies are parsed straight from the socket
 * buffer into memory — no temp files anywhere on the hot path.
 *
 * Shutdown discipline: stop() wakes the accept loop, shuts every
 * live connection and joins all threads. The scheduler is NOT owned
 * — the daemon drains it first (so blocked WAITs resolve), then
 * stops the server.
 */

#ifndef HYQSAT_SERVICE_SERVER_H
#define HYQSAT_SERVICE_SERVER_H

#include <atomic>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/job.h"

namespace hyqsat {
class MetricsRegistry;
}

namespace hyqsat::service {

class JobScheduler;
class SessionManager;

/** Where to listen. Exactly one of the two should be set. */
struct ServerOptions
{
    /** Unix-domain socket path (unlinked on start and stop). */
    std::string unix_path;

    /** TCP port on 127.0.0.1; 0 with empty unix_path = ephemeral
     *  port (tests), reported by Server::port(). */
    int tcp_port = -1;

    int backlog = 16;

    /** Cap on simultaneous connections; extras are turned away with
     *  `ERR busy` (connection-level backpressure). */
    int max_connections = 64;
};

/** The line-protocol socket server. */
class Server
{
  public:
    /**
     * @p metrics backs the METRICS command (may be null: the command
     * then answers with an empty snapshot). @p scheduler must
     * outlive the server.
     */
    Server(ServerOptions opts, JobScheduler &scheduler,
           MetricsRegistry *metrics);

    /** stop()s if still running. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind + listen + start the accept loop. False on bind error. */
    bool start();

    /** Stop accepting, close every connection, join all threads. */
    void stop();

    /** Bound TCP port (after start(); 0 for unix sockets). */
    int port() const { return port_; }

    bool running() const
    {
        return running_.load(std::memory_order_relaxed);
    }

    /**
     * Invoked (once) when a client sends SHUTDOWN; the daemon's main
     * loop uses it to trigger the same drain path as a signal.
     */
    void onShutdown(std::function<void(DrainPolicy)> fn)
    {
        on_shutdown_ = std::move(fn);
    }

    /**
     * Enable the incremental-session verbs (OPEN/ADD/ASSUME/SOLVE/
     * CORE/CLOSE) against @p sessions, which must outlive the
     * server. Without this the verbs answer `ERR sessions disabled`.
     * A client SHUTDOWN also drains the manager (no new opens).
     */
    void attachSessions(SessionManager *sessions)
    {
        sessions_ = sessions;
    }

  private:
    void acceptLoop();
    void serveConnection(int fd);
    void closeListener();

    ServerOptions opts_;
    JobScheduler &scheduler_;
    MetricsRegistry *metrics_;
    SessionManager *sessions_ = nullptr;
    std::function<void(DrainPolicy)> on_shutdown_;

    int listen_fd_ = -1;
    int port_ = 0;
    std::atomic<bool> running_{false};
    std::thread accept_thread_;

    std::mutex conn_mutex_;
    std::vector<int> conn_fds_;
    std::vector<std::thread> conn_threads_;
};

} // namespace hyqsat::service

#endif // HYQSAT_SERVICE_SERVER_H
