#include "service/protocol.h"

#include <charconv>

#include "simplify/pipeline.h"
#include "topology/topology.h"
#include "util/metrics.h"

namespace hyqsat::service {

namespace {

bool
parseUint(std::string_view tok, std::uint64_t &out)
{
    const auto res =
        std::from_chars(tok.data(), tok.data() + tok.size(), out);
    return res.ec == std::errc() &&
           res.ptr == tok.data() + tok.size();
}

bool
parseInt(std::string_view tok, int &out)
{
    const auto res =
        std::from_chars(tok.data(), tok.data() + tok.size(), out);
    return res.ec == std::errc() &&
           res.ptr == tok.data() + tok.size();
}

/**
 * Parse one trailing `key=value` override token of SUBMIT/OPEN.
 * Values are validated here so the scheduler can apply them blindly.
 */
bool
parseOption(std::string_view opt, Request &req)
{
    constexpr std::string_view kSimplify = "simplify=";
    constexpr std::string_view kTopology = "topology=";
    constexpr std::string_view kReadsBatch = "reads_batch=";
    constexpr std::string_view kReadsGroups = "reads_groups=";
    if (opt.rfind(kSimplify, 0) == 0) {
        const auto value = opt.substr(kSimplify.size());
        simplify::Strength strength;
        if (!simplify::parseStrength(std::string(value), strength))
            return false;
        req.simplify = std::string(value);
        return true;
    }
    if (opt.rfind(kTopology, 0) == 0) {
        const auto value = opt.substr(kTopology.size());
        if (!topology::parseKind(value).has_value())
            return false;
        req.topology = std::string(value);
        return true;
    }
    if (opt.rfind(kReadsBatch, 0) == 0) {
        const auto value = opt.substr(kReadsBatch.size());
        if (value != "0" && value != "1")
            return false;
        req.reads_batch = value == "1" ? 1 : 0;
        return true;
    }
    if (opt.rfind(kReadsGroups, 0) == 0) {
        const auto value = opt.substr(kReadsGroups.size());
        int groups = -1;
        if (!parseInt(value, groups) || groups < 0 || groups > 4096)
            return false;
        req.reads_groups = groups;
        return true;
    }
    return false;
}

constexpr const char *kOptionUsage =
    "simplify=<off|light|full>, topology=<chimera|pegasus|zephyr>, "
    "reads_batch=<0|1> or reads_groups=<n>";

} // namespace

std::vector<std::string_view>
splitTokens(std::string_view line)
{
    std::vector<std::string_view> tokens;
    std::size_t pos = 0;
    while (pos < line.size()) {
        while (pos < line.size() &&
               (line[pos] == ' ' || line[pos] == '\t' ||
                line[pos] == '\r'))
            ++pos;
        std::size_t end = pos;
        while (end < line.size() && line[end] != ' ' &&
               line[end] != '\t' && line[end] != '\r')
            ++end;
        if (end > pos)
            tokens.push_back(line.substr(pos, end - pos));
        pos = end;
    }
    return tokens;
}

Request
parseRequest(std::string_view line)
{
    Request req;
    const auto tokens = splitTokens(line);
    if (tokens.empty()) {
        req.error = "empty request";
        return req;
    }
    const std::string_view verb = tokens[0];
    if (verb == "SUBMIT") {
        // SUBMIT <tenant> <priority> <name> [key=value...] — all
        // single tokens; the optional extras are key=value overrides
        // in any order (anything else stays Invalid).
        if (tokens.size() < 4 || tokens.size() > 8) {
            req.error = "usage: SUBMIT <tenant> <priority> <name> "
                        "[simplify=<off|light|full>] "
                        "[topology=<chimera|pegasus|zephyr>] "
                        "[reads_batch=<0|1>] [reads_groups=<n>]";
            return req;
        }
        if (!parseInt(tokens[2], req.priority)) {
            req.error = "bad priority";
            return req;
        }
        for (std::size_t i = 4; i < tokens.size(); ++i) {
            if (!parseOption(tokens[i], req)) {
                req.error = "bad option (expected " +
                            std::string(kOptionUsage) +
                            "): " + std::string(tokens[i]);
                return req;
            }
        }
        req.verb = Verb::Submit;
        req.tenant = std::string(tokens[1]);
        req.name = std::string(tokens[3]);
        return req;
    }
    if (verb == "WAIT" || verb == "STATUS") {
        if (tokens.size() != 2 || !parseUint(tokens[1], req.id)) {
            req.error = "usage: " + std::string(verb) + " <id>";
            return req;
        }
        req.verb = verb == "WAIT" ? Verb::Wait : Verb::Status;
        return req;
    }
    if (verb == "METRICS") {
        req.verb = Verb::Metrics;
        return req;
    }
    if (verb == "PING") {
        req.verb = Verb::Ping;
        return req;
    }
    if (verb == "SHUTDOWN") {
        if (tokens.size() > 2 ||
            (tokens.size() == 2 && tokens[1] != "finish" &&
             tokens[1] != "cancel")) {
            req.error = "usage: SHUTDOWN [finish|cancel]";
            return req;
        }
        req.verb = Verb::Shutdown;
        req.drain_policy = (tokens.size() == 2 && tokens[1] == "cancel")
                               ? DrainPolicy::CancelPending
                               : DrainPolicy::FinishQueued;
        return req;
    }
    if (verb == "QUIT") {
        req.verb = Verb::Quit;
        return req;
    }
    if (verb == "OPEN") {
        // OPEN <tenant> [simplify=<level>] — same optional override
        // key SUBMIT takes.
        if (tokens.size() != 2 && tokens.size() != 3) {
            req.error =
                "usage: OPEN <tenant> [simplify=<off|light|full>]";
            return req;
        }
        if (tokens.size() == 3) {
            const std::string_view opt = tokens[2];
            if (opt.rfind("simplify=", 0) != 0 ||
                !parseOption(opt, req)) {
                req.error = "bad option (expected "
                            "simplify=<off|light|full>): " +
                            std::string(opt);
                return req;
            }
        }
        req.verb = Verb::Open;
        req.tenant = std::string(tokens[1]);
        return req;
    }
    if (verb == "ADD" || verb == "SOLVE" || verb == "CORE" ||
        verb == "CLOSE") {
        if (tokens.size() != 2 || !parseUint(tokens[1], req.id)) {
            req.error = "usage: " + std::string(verb) + " <sid>";
            return req;
        }
        req.verb = verb == "ADD"     ? Verb::Add
                   : verb == "SOLVE" ? Verb::Solve
                   : verb == "CORE"  ? Verb::Core
                                     : Verb::Close;
        return req;
    }
    if (verb == "ASSUME") {
        if (tokens.size() < 2 || !parseUint(tokens[1], req.id)) {
            req.error = "usage: ASSUME <sid> <lit...>";
            return req;
        }
        for (std::size_t i = 2; i < tokens.size(); ++i) {
            int lit = 0;
            if (!parseInt(tokens[i], lit) || lit == 0) {
                req.error =
                    "bad literal (nonzero DIMACS int expected): " +
                    std::string(tokens[i]);
                return req;
            }
            req.lits.push_back(lit);
        }
        req.verb = Verb::Assume;
        return req;
    }
    req.error = "unknown verb: " + std::string(verb);
    return req;
}

std::string
formatSubmission(const Submission &sub)
{
    if (sub.accepted)
        return "OK " + std::to_string(sub.id);
    return "REJECTED " + sub.reject_reason;
}

std::string
formatResult(JobId id, const InstanceRecord &rec)
{
    std::string out = "RESULT " + std::to_string(id) + ' ' +
                      rec.status + ' ' + jsonNumber(rec.wall_s) +
                      ' ' + std::to_string(rec.vars) + ' ' +
                      std::to_string(rec.clauses) + ' ' +
                      std::to_string(rec.conflicts) + ' ' +
                      (rec.winner.empty() ? "-" : rec.winner);
    return out;
}

std::string
formatState(JobId id, JobState state, const std::string &status)
{
    std::string out = "STATE " + std::to_string(id) + ' ';
    switch (state) {
    case JobState::Queued: out += "QUEUED"; break;
    case JobState::Running: out += "RUNNING"; break;
    case JobState::Done: out += "DONE"; break;
    }
    if (state == JobState::Done && !status.empty())
        out += ' ' + status;
    return out;
}

std::optional<std::pair<JobId, InstanceRecord>>
parseResult(std::string_view line)
{
    const auto tokens = splitTokens(line);
    if (tokens.size() != 8 || tokens[0] != "RESULT")
        return std::nullopt;
    JobId id = 0;
    if (!parseUint(tokens[1], id))
        return std::nullopt;
    InstanceRecord rec;
    rec.status = std::string(tokens[2]);
    rec.wall_s = std::atof(std::string(tokens[3]).c_str());
    int vars = 0, clauses = 0;
    std::uint64_t conflicts = 0;
    if (!parseInt(tokens[4], vars) || !parseInt(tokens[5], clauses) ||
        !parseUint(tokens[6], conflicts))
        return std::nullopt;
    rec.vars = vars;
    rec.clauses = clauses;
    rec.conflicts = conflicts;
    if (tokens[7] != "-")
        rec.winner = std::string(tokens[7]);
    return std::make_pair(id, rec);
}

std::string
formatCore(JobId sid, const std::vector<int> &lits)
{
    std::string out = "CORE " + std::to_string(sid);
    for (const int lit : lits)
        out += ' ' + std::to_string(lit);
    return out;
}

std::optional<std::pair<JobId, std::vector<int>>>
parseCore(std::string_view line)
{
    const auto tokens = splitTokens(line);
    if (tokens.size() < 2 || tokens[0] != "CORE")
        return std::nullopt;
    JobId sid = 0;
    if (!parseUint(tokens[1], sid))
        return std::nullopt;
    std::vector<int> lits;
    for (std::size_t i = 2; i < tokens.size(); ++i) {
        int lit = 0;
        if (!parseInt(tokens[i], lit) || lit == 0)
            return std::nullopt;
        lits.push_back(lit);
    }
    return std::make_pair(sid, lits);
}

} // namespace hyqsat::service
