/**
 * @file
 * Structured result records shared by every client of the solver
 * service: the per-job InstanceRecord (one report row), the
 * whole-batch BatchReport, and the JSON/CSV report writers that used
 * to live in the batch CLI. One definition, three consumers — the
 * batch runner, the daemon, and the tests — so report formats can
 * never drift between front doors.
 */

#ifndef HYQSAT_SERVICE_REPORT_H
#define HYQSAT_SERVICE_REPORT_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace hyqsat::sat {
class Cnf;
}

namespace hyqsat::service {

/** One job's outcome (a row of a batch report). */
struct InstanceRecord
{
    std::string name; ///< file stem or client-supplied job name
    std::string path; ///< source path ("" for in-memory submissions)

    /**
     * "SAT", "UNSAT", "UNKNOWN" (budget exhausted), "TIMEOUT"
     * (wall-clock budget fired), "SKIPPED" (memory budget),
     * "CANCELLED" (drained before or during the solve),
     * "PARSE_ERROR".
     */
    std::string status;

    std::string winner; ///< winning worker label ("" if none)

    /**
     * Effective inprocessing strength of the run's base config
     * ("off", "light", "full"); individual portfolio slots may still
     * diversify around it.
     */
    std::string simplify;

    /** Effective hardware topology ("chimera", "pegasus"). */
    std::string topology;

    /** True when multi-read anneals ran the lockstep batch kernel. */
    bool reads_batch = false;

    /**
     * Effective parallel lockstep-group setting of the batched path
     * (0 = auto-sized groups of up to 8 lanes).
     */
    int reads_groups = 0;

    double wall_s = 0.0;
    int vars = 0;
    int clauses = 0;
    std::uint64_t iterations = 0;
    std::uint64_t conflicts = 0;
    int qa_samples = 0;

    /** Totals over every raced worker (from the job registry). */
    std::uint64_t restarts = 0;
    std::uint64_t propagations = 0;

    /** Winner's host/device time breakdown (zeros if no winner). */
    double frontend_s = 0.0;
    double qa_device_s = 0.0;
    double qa_blocking_s = 0.0;
    double backend_s = 0.0;
    double cdcl_s = 0.0;

    /**
     * Flat snapshot of the job's full metrics registry (portfolio +
     * solver + pipeline + backend), embedded as the "metrics" object
     * of the JSON report row.
     */
    std::vector<std::pair<std::string, double>> metrics;
};

/** Whole-batch outcome. */
struct BatchReport
{
    std::vector<InstanceRecord> records; ///< input order
    double wall_s = 0.0;
    int sat = 0;
    int unsat = 0;
    int unknown = 0;
    int timeouts = 0;
    int skipped = 0;
    int errors = 0;

    /** True iff every instance decided (no UNKNOWN/TIMEOUT/error). */
    bool allDecided() const
    {
        return unknown == 0 && timeouts == 0 && skipped == 0 &&
               errors == 0;
    }
};

/**
 * Tally @p rec into the report's summary counters ("CANCELLED"
 * counts as unknown: the batch never got an answer).
 */
void tallyRecord(BatchReport &report, const InstanceRecord &rec);

/** Write the batch report as one JSON document (NaN/Inf-safe). */
void writeJsonReport(const BatchReport &report, std::ostream &out);

/** Write the batch report as CSV (header + one row per record). */
void writeCsvReport(const BatchReport &report, std::ostream &out);

/** Every *.cnf / *.dimacs file under @p dir (sorted). */
std::vector<std::string> collectCnfFiles(const std::string &dir);

/** One path per non-empty, non-comment ('#') line. */
std::vector<std::string> readManifest(std::istream &in);

/** Estimated solve-time footprint of a formula (MB). */
std::size_t estimateMemoryMb(const sat::Cnf &cnf, int num_workers);

} // namespace hyqsat::service

#endif // HYQSAT_SERVICE_REPORT_H
