/**
 * @file
 * Job vocabulary of the solver service: what a client submits
 * (JobSpec), what admission control answers (Submission), and the
 * lifecycle a job moves through (JobState). Shared by the scheduler,
 * the socket server and the batch runner.
 */

#ifndef HYQSAT_SERVICE_JOB_H
#define HYQSAT_SERVICE_JOB_H

#include <cstdint>
#include <string>

namespace hyqsat::service {

/** Monotonic per-scheduler job identifier (0 = invalid). */
using JobId = std::uint64_t;

/** Lifecycle: Queued -> Running -> Done (one way). */
enum class JobState { Queued, Running, Done };

/** One unit of work a client hands the service. */
struct JobSpec
{
    /** Tenant the job belongs to (metrics + scheduling bucket). */
    std::string tenant = "default";

    /**
     * Tenant priority: the scheduler always serves the non-empty
     * tenant queue with the highest priority, round-robin among
     * ties. A tenant's priority is (re)set by its latest submit.
     */
    int priority = 0;

    /** Display name for reports ("" = derived from the path stem). */
    std::string name;

    /**
     * The formula, one of two forms: in-memory DIMACS text (the
     * socket path — never touches the filesystem), or a path to a
     * DIMACS file (the batch path). `dimacs` wins when both are set.
     */
    std::string dimacs;
    std::string path;

    /** Per-job wall-clock budget (s); 0 = scheduler default. */
    double timeout_s = 0.0;

    /**
     * Inprocessing strength override ("off", "light", "full"); ""
     * keeps the scheduler's configured portfolio defaults. Applied
     * to every worker's base config before diversification.
     */
    std::string simplify;

    /**
     * Hardware-topology override ("chimera", "pegasus"); "" keeps
     * the scheduler's configured default. Applied like simplify.
     */
    std::string topology;

    /**
     * Lockstep-reads override: 1 routes multi-read anneals through
     * the SIMD batch kernel, 0 forces WorkPool threads, -1 keeps
     * the scheduler's configured default.
     */
    int reads_batch = -1;

    /**
     * Parallel lockstep-group override for the batched path: >= 0
     * pins HybridConfig::reads_groups (0 = auto-sized groups of up
     * to 8 lanes), -1 keeps the scheduler's configured default.
     */
    int reads_groups = -1;
};

/** Admission-control verdict for one submit. */
struct Submission
{
    bool accepted = false;
    JobId id = 0;             ///< valid iff accepted
    std::string reject_reason; ///< "queue_full", "tenant_queue_full",
                               ///< "draining" (empty iff accepted)
};

/** What to do with accepted-but-unfinished jobs on drain. */
enum class DrainPolicy {
    FinishQueued,  ///< stop accepting; run everything already accepted
    CancelPending, ///< stop accepting; cancel queued + in-flight jobs
};

} // namespace hyqsat::service

#endif // HYQSAT_SERVICE_JOB_H
