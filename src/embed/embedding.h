/**
 * @file
 * Minor-embedding result representation: every problem-graph node is
 * mapped to a *chain* of physical qubits. Validation checks the
 * three minor-embedding invariants (disjointness, chain
 * connectivity, edge coverage) against a Chimera graph.
 */

#ifndef HYQSAT_EMBED_EMBEDDING_H
#define HYQSAT_EMBED_EMBEDDING_H

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "chimera/chimera.h"

namespace hyqsat::embed {

/** Node -> qubit-chain mapping. */
class Embedding
{
  public:
    Embedding() = default;

    /** Construct with @p num_nodes empty chains. */
    explicit Embedding(int num_nodes) : chains_(num_nodes) {}

    /** @return the number of problem nodes. */
    int numNodes() const { return static_cast<int>(chains_.size()); }

    /** Chain of node @p n (list of qubit ids). */
    const std::vector<int> &chain(int n) const { return chains_[n]; }

    /** Mutable chain access for embedder construction. */
    std::vector<int> &chain(int n) { return chains_[n]; }

    /** Append an empty chain and return its node index. */
    int
    addChain()
    {
        chains_.emplace_back();
        return numNodes() - 1;
    }

    /** All chains. */
    const std::vector<std::vector<int>> &chains() const { return chains_; }

    /**
     * Find one physical coupler between the chains of @p u and @p v.
     * @return (qubit_in_u, qubit_in_v) or nullopt.
     */
    std::optional<std::pair<int, int>>
    findCoupler(const chimera::ChimeraGraph &graph, int u, int v) const;

    /**
     * Check the minor-embedding invariants:
     *  1. every chain is non-empty,
     *  2. chains are pairwise disjoint,
     *  3. every chain induces a connected subgraph,
     *  4. every @p problem_edge has at least one physical coupler.
     * @param why when non-null receives a description of the first
     *        violation.
     */
    bool isValid(const chimera::ChimeraGraph &graph,
                 const std::vector<std::pair<int, int>> &problem_edges,
                 std::string *why = nullptr) const;

    /** Total physical qubits used. */
    int totalQubits() const;

    /** Mean chain length (0 for an empty embedding). */
    double averageChainLength() const;

    /** Longest chain length. */
    int maxChainLength() const;

  private:
    std::vector<std::vector<int>> chains_;
};

/** Outcome of an embedding attempt. */
struct EmbedResult
{
    bool success = false;
    Embedding embedding;
    /** Wall-clock seconds spent embedding. */
    double seconds = 0.0;
};

} // namespace hyqsat::embed

#endif // HYQSAT_EMBED_EMBEDDING_H
