#include "embed/embed_cache.h"

#include <algorithm>

namespace hyqsat::embed {

std::uint64_t
QueueEmbedCache::hashQueue(const std::vector<sat::LitVec> &queue)
{
    // FNV-1a over the flattened (size, lit.x...) stream. The clause
    // sizes participate so [ab][c] and [a][bc] cannot collide by
    // concatenation.
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint32_t word) {
        h ^= word;
        h *= 1099511628211ull;
    };
    for (const auto &clause : queue) {
        mix(static_cast<std::uint32_t>(clause.size()));
        for (const sat::Lit p : clause)
            mix(static_cast<std::uint32_t>(p.x));
    }
    return h;
}

void
QueueEmbedCache::flattenQueue(const std::vector<sat::LitVec> &queue,
                              std::vector<std::uint32_t> &out)
{
    out.clear();
    for (const auto &clause : queue) {
        out.push_back(static_cast<std::uint32_t>(clause.size()));
        for (const sat::Lit p : clause)
            out.push_back(static_cast<std::uint32_t>(p.x));
    }
}

std::shared_ptr<const QueueEmbedResult>
QueueEmbedCache::find(const std::vector<sat::LitVec> &queue)
{
    const std::uint64_t h = hashQueue(queue);
    bool flattened = false;
    for (auto &entry : entries_) {
        if (entry.hash != h)
            continue;
        // Exact comparison guards against hash collisions: a cache
        // must never alias two different queues.
        if (!flattened) {
            flattenQueue(queue, probe_);
            flattened = true;
        }
        if (entry.key != probe_)
            continue;
        entry.last_used = ++clock_;
        return entry.result;
    }
    return nullptr;
}

bool
QueueEmbedCache::insert(const std::vector<sat::LitVec> &queue,
                        std::shared_ptr<const QueueEmbedResult> result)
{
    Entry entry;
    entry.hash = hashQueue(queue);
    flattenQueue(queue, entry.key);
    entry.result = std::move(result);
    entry.last_used = ++clock_;

    bool evicted = false;
    if (entries_.size() >= capacity_) {
        auto victim = std::min_element(
            entries_.begin(), entries_.end(),
            [](const Entry &a, const Entry &b) {
                return a.last_used < b.last_used;
            });
        *victim = std::move(entry);
        evicted = true;
    } else {
        entries_.push_back(std::move(entry));
    }
    return evicted;
}

void
QueueEmbedCache::clear()
{
    entries_.clear();
}

void
QueueEmbedCache::setCapacity(std::size_t capacity)
{
    capacity_ = capacity ? capacity : 1;
    while (entries_.size() > capacity_) {
        auto victim = std::min_element(
            entries_.begin(), entries_.end(),
            [](const Entry &a, const Entry &b) {
                return a.last_used < b.last_used;
            });
        if (victim != entries_.end() - 1)
            *victim = std::move(entries_.back());
        entries_.pop_back();
    }
}

} // namespace hyqsat::embed
