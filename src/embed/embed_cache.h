/**
 * @file
 * Memoization of (embedding, encoding) pairs keyed by clause-queue
 * content.
 *
 * Consecutive hybrid-loop iterations frequently regenerate an
 * identical clause queue (the activity scores and trail may not have
 * changed between decisions), so the embed + encode work — the
 * dominant frontend cost — can be reused. The key is the exact
 * literal content of the queued clauses: a 64-bit FNV-1a hash for
 * the fast path, with a flattened copy of the literals compared on
 * hash match so collisions can never alias two different queues
 * (invalidation-by-content: there is nothing to invalidate, a
 * changed queue simply misses).
 */

#ifndef HYQSAT_EMBED_EMBED_CACHE_H
#define HYQSAT_EMBED_EMBED_CACHE_H

#include <cstdint>
#include <memory>
#include <vector>

#include "embed/hyqsat_embedder.h"
#include "sat/types.h"

namespace hyqsat::embed {

/**
 * Small LRU cache of embedQueue results. Entries are shared_ptr so a
 * hit costs one refcount, never a deep copy of the QUBO/embedding.
 * Linear-scan lookup: with the default capacity (~32) a scan beats
 * any hashed container on constant factors. Not thread-safe; one
 * cache per frontend workspace.
 */
class QueueEmbedCache
{
  public:
    explicit QueueEmbedCache(std::size_t capacity = 32)
        : capacity_(capacity ? capacity : 1)
    {
    }

    /**
     * Look up the queue's content key. On a hit the entry is
     * freshened (LRU) and returned; on a miss, nullptr.
     */
    std::shared_ptr<const QueueEmbedResult>
    find(const std::vector<sat::LitVec> &queue);

    /**
     * Insert a result for @p queue, evicting the least-recently-used
     * entry when full.
     * @return true iff an entry was evicted.
     */
    bool insert(const std::vector<sat::LitVec> &queue,
                std::shared_ptr<const QueueEmbedResult> result);

    /** Drop every entry (capacity and LRU clock are kept). */
    void clear();

    /**
     * Change the capacity; shrinking evicts least-recently-used
     * entries immediately. A zero capacity is clamped to 1.
     */
    void setCapacity(std::size_t capacity);

    std::size_t size() const { return entries_.size(); }
    std::size_t capacity() const { return capacity_; }

  private:
    struct Entry
    {
        std::uint64_t hash = 0;
        /** Flattened (size, lit.x...) per clause: the exact key. */
        std::vector<std::uint32_t> key;
        std::shared_ptr<const QueueEmbedResult> result;
        std::uint64_t last_used = 0;
    };

    static std::uint64_t hashQueue(const std::vector<sat::LitVec> &queue);
    static void flattenQueue(const std::vector<sat::LitVec> &queue,
                             std::vector<std::uint32_t> &out);

    std::size_t capacity_;
    std::uint64_t clock_ = 0;
    std::vector<Entry> entries_;
    std::vector<std::uint32_t> probe_; ///< scratch key for lookups
};

} // namespace hyqsat::embed

#endif // HYQSAT_EMBED_EMBED_CACHE_H
