/**
 * @file
 * A single-entry, type-erased memo slot that rides along with a
 * cached embedding result (see QueueEmbedResult::compiled). The
 * annealer compiles an embedded problem into its flat sampling form
 * (CSR adjacency, chain groups, coefficient-replay schedule) exactly
 * once per embed-cache entry and parks the product here, so a
 * frontend cache hit also skips the adjacency rebuild — without the
 * embed layer knowing anything about the anneal layer's types.
 *
 * The slot is keyed by an opaque 64-bit tag (the compiler hashes
 * whatever its output depends on — topology identity, chain
 * strength, compile flavor); a tag mismatch simply recompiles and
 * replaces. Thread-safe: batch workers sampling the same cached
 * problem race to fill it, the first compile wins and the rest read.
 *
 * Copying or moving the owner intentionally does NOT transport the
 * memo (a fresh slot starts empty): the cache is an optimization
 * attached to one resident object, never part of the value.
 */

#ifndef HYQSAT_EMBED_COMPILED_SLOT_H
#define HYQSAT_EMBED_COMPILED_SLOT_H

#include <cstdint>
#include <memory>
#include <mutex>

namespace hyqsat::embed {

/** One (tag, shared value) memo cell; see file comment. */
class CompiledSlot
{
  public:
    CompiledSlot() = default;
    ~CompiledSlot() = default;

    CompiledSlot(const CompiledSlot &) : CompiledSlot() {}
    CompiledSlot(CompiledSlot &&) noexcept : CompiledSlot() {}
    CompiledSlot &
    operator=(const CompiledSlot &)
    {
        return *this;
    }
    CompiledSlot &
    operator=(CompiledSlot &&) noexcept
    {
        return *this;
    }

    /** The cached value if the stored tag matches, else nullptr. */
    std::shared_ptr<const void>
    get(std::uint64_t tag) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return tag_ == tag ? value_ : nullptr;
    }

    /** Store @p value under @p tag (replaces any previous entry). */
    void
    set(std::uint64_t tag, std::shared_ptr<const void> value) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tag_ = tag;
        value_ = std::move(value);
    }

  private:
    mutable std::mutex mutex_;
    mutable std::uint64_t tag_ = 0;
    mutable std::shared_ptr<const void> value_;
};

} // namespace hyqsat::embed

#endif // HYQSAT_EMBED_COMPILED_SLOT_H
