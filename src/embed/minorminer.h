/**
 * @file
 * Reimplementation of the Minorminer minor-embedding heuristic
 * (Cai, Macready & Roy 2014), the paper's main embedding baseline.
 *
 * Each problem node gets a "vertex model" (chain). Nodes are
 * (re)placed one at a time: for every embedded neighbour a weighted
 * Dijkstra computes the cheapest path from the neighbour's chain to
 * every qubit, where a qubit already used by k chains costs
 * weight_base^k; the new chain is rooted at the qubit minimizing the
 * summed distances and unioned from the paths. Improvement passes
 * repeat until chains stop overlapping (success) or a pass/timeout
 * budget expires (failure). This reproduces the baseline's
 * O(N_q N_p^2 log N_p) iterative routing cost that HyQSAT's §IV-B
 * scheme eliminates.
 */

#ifndef HYQSAT_EMBED_MINORMINER_H
#define HYQSAT_EMBED_MINORMINER_H

#include <cstdint>
#include <utility>
#include <vector>

#include "chimera/chimera.h"
#include "embed/embedding.h"

namespace hyqsat::embed {

/** Minorminer-style embedder options. */
struct MinorminerOptions
{
    /** Improvement passes after the initial placement. */
    int max_passes = 64;

    /** Full restarts with fresh randomness when passes stall. */
    int restarts = 3;

    /** Give up beyond this wall-clock budget (seconds). */
    double timeout_seconds = 300.0;

    /** Cost base for qubits shared by multiple chains. */
    double weight_base = 16.0;

    std::uint64_t seed = 0xabcdef12;
};

/** Iterative vertex-model embedder. */
class MinorminerEmbedder
{
  public:
    MinorminerEmbedder(const chimera::ChimeraGraph &graph,
                       const MinorminerOptions &opts = {});

    /**
     * Embed a problem graph of @p num_nodes nodes with the given
     * edges. Succeeds only if every node is embedded with disjoint
     * chains.
     */
    EmbedResult embed(int num_nodes,
                      const std::vector<std::pair<int, int>> &edges);

  private:
    const chimera::ChimeraGraph &graph_;
    MinorminerOptions opts_;
};

} // namespace hyqsat::embed

#endif // HYQSAT_EMBED_MINORMINER_H
