/**
 * @file
 * Place-and-route embedder in the style of Bian et al. 2017 ([8] in
 * the paper): nodes are greedily placed near their already-placed
 * neighbours, then every problem edge is routed as a BFS path
 * through free qubits, extending one endpoint's chain. There is no
 * iterative repair, so the scheme is slower per clause and saturates
 * earlier than Minorminer - matching its Fig. 13 behaviour.
 */

#ifndef HYQSAT_EMBED_PLACE_ROUTE_H
#define HYQSAT_EMBED_PLACE_ROUTE_H

#include <cstdint>
#include <utility>
#include <vector>

#include "chimera/chimera.h"
#include "embed/embedding.h"

namespace hyqsat::embed {

/** P&R options. */
struct PlaceRouteOptions
{
    /** Give up beyond this wall-clock budget (seconds). */
    double timeout_seconds = 300.0;

    /** Fresh-randomness attempts before giving up. */
    int attempts = 3;

    std::uint64_t seed = 0x9e37a11c;
};

/** One-shot place-and-route embedder. */
class PlaceRouteEmbedder
{
  public:
    PlaceRouteEmbedder(const chimera::ChimeraGraph &graph,
                       const PlaceRouteOptions &opts = {});

    /** Embed a problem graph; succeeds only if every edge routes. */
    EmbedResult embed(int num_nodes,
                      const std::vector<std::pair<int, int>> &edges);

  private:
    EmbedResult tryOnce(int num_nodes,
                        const std::vector<std::pair<int, int>> &edges,
                        std::uint64_t seed, double deadline_seconds);

    const chimera::ChimeraGraph &graph_;
    PlaceRouteOptions opts_;
};

} // namespace hyqsat::embed

#endif // HYQSAT_EMBED_PLACE_ROUTE_H
