#include "embed/place_route.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "util/rng.h"
#include "util/timer.h"

namespace hyqsat::embed {

namespace {

/** Cell-grid Manhattan distance between two qubits. */
int
cellDistance(const chimera::ChimeraGraph &g, int a, int b)
{
    const auto ca = g.coord(a);
    const auto cb = g.coord(b);
    return std::abs(ca.row - cb.row) + std::abs(ca.col - cb.col);
}

} // namespace

PlaceRouteEmbedder::PlaceRouteEmbedder(const chimera::ChimeraGraph &graph,
                                       const PlaceRouteOptions &opts)
    : graph_(graph), opts_(opts)
{
}

EmbedResult
PlaceRouteEmbedder::embed(int num_nodes,
                          const std::vector<std::pair<int, int>> &edges)
{
    Timer timer;
    EmbedResult result;
    for (int attempt = 0; attempt < std::max(opts_.attempts, 1);
         ++attempt) {
        const double remaining = opts_.timeout_seconds - timer.seconds();
        if (remaining <= 0)
            break;
        EmbedResult r = tryOnce(num_nodes, edges,
                                opts_.seed + 0x9e3779b9ull * attempt,
                                remaining);
        r.seconds += result.seconds;
        result = std::move(r);
        if (result.success)
            break;
    }
    result.seconds = timer.seconds();
    return result;
}

EmbedResult
PlaceRouteEmbedder::tryOnce(int num_nodes,
                            const std::vector<std::pair<int, int>> &edges,
                            std::uint64_t seed, double deadline_seconds)
{
    Timer timer;
    Rng rng(seed);
    const int nq = graph_.numQubits();

    std::vector<std::vector<int>> adj(num_nodes);
    for (const auto &[u, v] : edges) {
        adj[u].push_back(v);
        adj[v].push_back(u);
    }

    EmbedResult result;
    std::vector<int> owner(nq, -1); // qubit -> node, -1 free
    std::vector<std::vector<int>> chains(num_nodes);
    std::vector<int> cell_load(graph_.rows() * graph_.cols(), 0);
    auto cellOf = [&](int q) {
        const auto c = graph_.coord(q);
        return c.row * graph_.cols() + c.col;
    };
    auto claim = [&](int q, int node) {
        owner[q] = node;
        chains[node].push_back(q);
        ++cell_load[cellOf(q)];
    };

    // Process nodes in BFS order over the problem graph; each node is
    // placed near its already-placed neighbours and its edges to them
    // are routed immediately, so later placements cannot wall in an
    // unrouted connection.
    std::vector<int> order;
    {
        std::vector<char> visited(num_nodes, 0);
        for (int start = 0; start < num_nodes; ++start) {
            if (visited[start])
                continue;
            visited[start] = 1;
            order.push_back(start);
            for (std::size_t head = order.size() - 1;
                 head < order.size(); ++head) {
                for (int nb : adj[order[head]]) {
                    if (!visited[nb]) {
                        visited[nb] = 1;
                        order.push_back(nb);
                    }
                }
            }
        }
    }

    for (int node : order) {
        if (timer.seconds() > deadline_seconds) {
            result.seconds = timer.seconds();
            return result;
        }

        // --- Placement: full scan minimizing distance to placed
        // neighbours plus congestion and enclosure penalties (the
        // scheme's "time-consuming heuristic").
        int best_q = -1;
        double best_cost = std::numeric_limits<double>::infinity();
        for (int q = 0; q < nq; ++q) {
            if (owner[q] != -1)
                continue;
            int free_nb = 0;
            for (int nb : graph_.neighbors(q))
                free_nb += (owner[nb] == -1);
            if (free_nb <
                std::min(static_cast<int>(adj[node].size()), 2)) {
                continue; // enclosed pocket: unusable as a root
            }
            double c = 1e-9 * static_cast<double>(rng.below(1024)) +
                       0.75 * cell_load[cellOf(q)] +
                       0.5 * (6 - free_nb);
            for (int nb : adj[node]) {
                if (!chains[nb].empty())
                    c += cellDistance(graph_, q, chains[nb].front());
            }
            if (c < best_cost) {
                best_cost = c;
                best_q = q;
            }
        }
        if (best_q == -1) {
            result.seconds = timer.seconds();
            return result;
        }
        claim(best_q, node);

        // Pre-size the chain to the node's degree: a single root has
        // at most 6 couplers, so hubs get a connected patch of spare
        // qubits as routing surface.
        const int want =
            1 + (static_cast<int>(adj[node].size()) + 3) / 4;
        std::deque<int> frontier{best_q};
        while (static_cast<int>(chains[node].size()) < want &&
               !frontier.empty()) {
            const int q = frontier.front();
            frontier.pop_front();
            for (int nb : graph_.neighbors(q)) {
                if (owner[nb] == -1 &&
                    static_cast<int>(chains[node].size()) < want) {
                    claim(nb, node);
                    frontier.push_back(nb);
                }
            }
        }

        // --- Immediate routing to every already-placed neighbour.
        for (int v : adj[node]) {
            if (chains[v].empty() || v == node)
                continue;
            const int u = node;

            bool adjacent = false;
            for (int qu : chains[u]) {
                for (int nb : graph_.neighbors(qu)) {
                    if (owner[nb] == v) {
                        adjacent = true;
                        break;
                    }
                }
                if (adjacent)
                    break;
            }
            if (adjacent)
                continue;

            std::vector<int> parent(nq, -2); // -2 unvisited
            std::deque<int> queue;
            for (int q : chains[u]) {
                parent[q] = -1;
                queue.push_back(q);
            }
            int hit = -1;
            while (!queue.empty() && hit == -1) {
                const int q = queue.front();
                queue.pop_front();
                for (int nb : graph_.neighbors(q)) {
                    if (parent[nb] != -2)
                        continue;
                    if (owner[nb] == v) {
                        parent[nb] = q;
                        hit = nb;
                        break;
                    }
                    if (owner[nb] == -1) {
                        parent[nb] = q;
                        queue.push_back(nb);
                    }
                }
            }
            if (hit == -1) {
                result.seconds = timer.seconds();
                return result; // unroutable: P&R gives up
            }
            // Split the free interior path at its midpoint: the half
            // nearer v extends v's chain, the rest extends u's, so
            // both sides gain surface for later routes.
            std::vector<int> path;
            for (int q = parent[hit]; q != -1 && owner[q] == -1;
                 q = parent[q]) {
                path.push_back(q); // ordered from v's side towards u
            }
            const std::size_t v_share = path.size() / 2;
            for (std::size_t i = 0; i < path.size(); ++i)
                claim(path[i], i < v_share ? v : u);
        }
    }

    result.seconds = timer.seconds();
    result.success = true;
    result.embedding = Embedding(num_nodes);
    for (int n = 0; n < num_nodes; ++n)
        result.embedding.chain(n) = chains[n];
    return result;
}

} // namespace hyqsat::embed
