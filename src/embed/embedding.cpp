#include "embed/embedding.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace hyqsat::embed {

std::optional<std::pair<int, int>>
Embedding::findCoupler(const chimera::ChimeraGraph &graph, int u,
                       int v) const
{
    const auto &cv = chains_[v];
    const std::unordered_set<int> in_v(cv.begin(), cv.end());
    for (int qu : chains_[u]) {
        for (int nb : graph.neighbors(qu)) {
            if (in_v.count(nb))
                return std::make_pair(qu, nb);
        }
    }
    return std::nullopt;
}

bool
Embedding::isValid(const chimera::ChimeraGraph &graph,
                   const std::vector<std::pair<int, int>> &problem_edges,
                   std::string *why) const
{
    auto fail = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };

    // 1 & 2: non-empty, disjoint chains.
    std::unordered_map<int, int> owner;
    for (int n = 0; n < numNodes(); ++n) {
        if (chains_[n].empty())
            return fail("node " + std::to_string(n) + " has empty chain");
        for (int q : chains_[n]) {
            if (q < 0 || q >= graph.numQubits())
                return fail("qubit id out of range in chain " +
                            std::to_string(n));
            const auto [it, fresh] = owner.emplace(q, n);
            if (!fresh) {
                return fail("qubit " + std::to_string(q) +
                            " shared by chains " +
                            std::to_string(it->second) + " and " +
                            std::to_string(n));
            }
        }
    }

    // 3: connectivity of each chain (BFS inside the chain).
    for (int n = 0; n < numNodes(); ++n) {
        const auto &c = chains_[n];
        const std::unordered_set<int> members(c.begin(), c.end());
        std::vector<int> stack{c.front()};
        std::unordered_set<int> seen{c.front()};
        while (!stack.empty()) {
            const int q = stack.back();
            stack.pop_back();
            for (int nb : graph.neighbors(q)) {
                if (members.count(nb) && !seen.count(nb)) {
                    seen.insert(nb);
                    stack.push_back(nb);
                }
            }
        }
        if (seen.size() != members.size())
            return fail("chain " + std::to_string(n) + " is disconnected");
    }

    // 4: every problem edge has a coupler.
    for (const auto &[u, v] : problem_edges) {
        if (u < 0 || u >= numNodes() || v < 0 || v >= numNodes())
            return fail("problem edge references unknown node");
        if (!findCoupler(graph, u, v)) {
            return fail("no coupler for problem edge (" +
                        std::to_string(u) + ", " + std::to_string(v) +
                        ")");
        }
    }
    return true;
}

int
Embedding::totalQubits() const
{
    int total = 0;
    for (const auto &c : chains_)
        total += static_cast<int>(c.size());
    return total;
}

double
Embedding::averageChainLength() const
{
    if (chains_.empty())
        return 0.0;
    return static_cast<double>(totalQubits()) /
           static_cast<double>(chains_.size());
}

int
Embedding::maxChainLength() const
{
    int longest = 0;
    for (const auto &c : chains_)
        longest = std::max(longest, static_cast<int>(c.size()));
    return longest;
}

} // namespace hyqsat::embed
