#include "embed/minorminer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "util/rng.h"
#include "util/timer.h"

namespace hyqsat::embed {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** One weighted Dijkstra from a chain (multi-source). */
struct ChainSearch
{
    std::vector<double> dist;
    std::vector<int> parent;

    void
    run(const chimera::ChimeraGraph &graph, const std::vector<int> &src,
        const std::vector<double> &qubit_cost)
    {
        const int n = graph.numQubits();
        dist.assign(n, kInf);
        parent.assign(n, -1);
        using Item = std::pair<double, int>;
        std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
        for (int q : src) {
            dist[q] = 0.0;
            pq.emplace(0.0, q);
        }
        while (!pq.empty()) {
            const auto [d, q] = pq.top();
            pq.pop();
            if (d > dist[q])
                continue;
            for (int nb : graph.neighbors(q)) {
                const double nd = d + qubit_cost[nb];
                if (nd < dist[nb]) {
                    dist[nb] = nd;
                    parent[nb] = q;
                    pq.emplace(nd, nb);
                }
            }
        }
    }
};

/** Working state of one embedding attempt. */
class Attempt
{
  public:
    Attempt(const chimera::ChimeraGraph &graph,
            const MinorminerOptions &opts,
            const std::vector<std::vector<int>> &adj, Rng &rng)
        : graph_(graph), opts_(opts), adj_(adj), rng_(rng),
          chains_(adj.size()), usage_(graph.numQubits(), 0)
    {
    }

    /** Rip out a node's chain. */
    void
    ripOut(int node)
    {
        for (int q : chains_[node])
            --usage_[q];
        chains_[node].clear();
    }

    /**
     * (Re)build node's vertex model: root minimizing the summed
     * weighted distances to every embedded neighbour's chain, then
     * grow a tree of cheapest paths, then trim unnecessary leaves.
     */
    void
    place(int node)
    {
        const int nq = graph_.numQubits();
        std::vector<double> cost(nq);
        for (int q = 0; q < nq; ++q) {
            cost[q] = std::pow(opts_.weight_base, usage_[q]) *
                      (1.0 + 0.05 * rng_.uniform());
        }

        std::vector<ChainSearch> searches;
        for (int nb : adj_[node]) {
            if (chains_[nb].empty())
                continue;
            searches.emplace_back();
            searches.back().run(graph_, chains_[nb], cost);
        }

        int root = -1;
        double best = kInf;
        if (searches.empty()) {
            for (int q = 0; q < nq; ++q) {
                const double c =
                    cost[q] +
                    1e-9 * static_cast<double>(rng_.below(1024));
                if (c < best) {
                    best = c;
                    root = q;
                }
            }
        } else {
            for (int q = 0; q < nq; ++q) {
                double total = cost[q];
                for (const auto &s : searches) {
                    if (s.dist[q] == kInf) {
                        total = kInf;
                        break;
                    }
                    total += s.dist[q];
                }
                if (total < best) {
                    best = total;
                    root = q;
                }
            }
            if (root == -1) {
                // Disconnected hardware region: fall back to any
                // cheapest qubit so the attempt fails loudly later.
                for (int q = 0; q < nq; ++q) {
                    if (cost[q] < best) {
                        best = cost[q];
                        root = q;
                    }
                }
            }
        }

        auto &chain = chains_[node];
        std::vector<char> in_chain(nq, 0);
        auto add = [&](int q) {
            if (!in_chain[q]) {
                in_chain[q] = 1;
                chain.push_back(q);
                ++usage_[q];
            }
        };
        add(root);

        // Grow a tree: connect the nearest neighbour chain first and
        // let later paths start anywhere on the growing chain.
        std::sort(searches.begin(), searches.end(),
                  [&](const ChainSearch &a, const ChainSearch &b) {
                      return a.dist[root] < b.dist[root];
                  });
        for (const auto &s : searches) {
            int entry = -1;
            double entry_d = kInf;
            for (int q : chain) {
                if (s.dist[q] < entry_d) {
                    entry_d = s.dist[q];
                    entry = q;
                }
            }
            int q = entry;
            while (q != -1 && s.parent[q] != -1) {
                q = s.parent[q];
                if (s.dist[q] == 0.0)
                    break; // reached the neighbour's chain
                add(q);
            }
        }

        trim(node, root, in_chain);
    }

    /** @return total overused qubit slots. */
    int
    overlap() const
    {
        int over = 0;
        for (int u : usage_)
            if (u > 1)
                over += u - 1;
        return over;
    }

    const std::vector<std::vector<int>> &chains() const { return chains_; }

    /** Nodes whose chains touch an overused qubit. */
    std::vector<int>
    overlappingNodes() const
    {
        std::vector<int> out;
        for (std::size_t n = 0; n < chains_.size(); ++n) {
            for (int q : chains_[n]) {
                if (usage_[q] > 1) {
                    out.push_back(static_cast<int>(n));
                    break;
                }
            }
        }
        return out;
    }

  private:
    /**
     * Remove chain leaves that are not required to keep a contact
     * with every embedded neighbour chain.
     */
    void
    trim(int node, int root, std::vector<char> &in_chain)
    {
        auto &chain = chains_[node];
        const int nq = graph_.numQubits();

        std::vector<std::vector<int>> contacts;
        std::vector<char> scratch(nq, 0);
        for (int nb : adj_[node]) {
            if (chains_[nb].empty())
                continue;
            for (int q : chains_[nb])
                scratch[q] = 1;
            std::vector<int> cs;
            for (int q : chain) {
                for (int x : graph_.neighbors(q)) {
                    if (scratch[x]) {
                        cs.push_back(q);
                        break;
                    }
                }
            }
            for (int q : chains_[nb])
                scratch[q] = 0;
            contacts.push_back(std::move(cs));
        }

        bool changed = true;
        while (changed) {
            changed = false;
            for (std::size_t i = 0; i < chain.size(); ++i) {
                const int q = chain[i];
                if (q == root)
                    continue;
                int degree = 0;
                for (int x : graph_.neighbors(q))
                    degree += in_chain[x];
                if (degree != 1)
                    continue; // only prune leaves
                bool needed = false;
                for (const auto &cs : contacts) {
                    int live = 0;
                    bool has = false;
                    for (int c : cs) {
                        if (in_chain[c]) {
                            ++live;
                            has |= (c == q);
                        }
                    }
                    if (has && live <= 1) {
                        needed = true;
                        break;
                    }
                }
                if (needed)
                    continue;
                in_chain[q] = 0;
                --usage_[q];
                chain[i] = chain.back();
                chain.pop_back();
                changed = true;
                --i;
            }
        }
    }

    const chimera::ChimeraGraph &graph_;
    const MinorminerOptions &opts_;
    const std::vector<std::vector<int>> &adj_;
    Rng &rng_;
    std::vector<std::vector<int>> chains_;
    std::vector<int> usage_;
};

} // namespace

MinorminerEmbedder::MinorminerEmbedder(const chimera::ChimeraGraph &graph,
                                       const MinorminerOptions &opts)
    : graph_(graph), opts_(opts)
{
}

EmbedResult
MinorminerEmbedder::embed(int num_nodes,
                          const std::vector<std::pair<int, int>> &edges)
{
    Timer timer;
    Rng rng(opts_.seed);

    std::vector<std::vector<int>> adj(num_nodes);
    for (const auto &[u, v] : edges) {
        adj[u].push_back(v);
        adj[v].push_back(u);
    }

    // Problem-graph BFS order gives the initial placement locality.
    std::vector<int> bfs_order;
    {
        std::vector<char> visited(num_nodes, 0);
        for (int start = 0; start < num_nodes; ++start) {
            if (visited[start])
                continue;
            visited[start] = 1;
            bfs_order.push_back(start);
            for (std::size_t head = bfs_order.size() - 1;
                 head < bfs_order.size(); ++head) {
                for (int nb : adj[bfs_order[head]]) {
                    if (!visited[nb]) {
                        visited[nb] = 1;
                        bfs_order.push_back(nb);
                    }
                }
            }
        }
    }

    EmbedResult result;
    for (int restart = 0; restart < std::max(opts_.restarts, 1);
         ++restart) {
        Attempt attempt(graph_, opts_, adj, rng);
        for (int node : bfs_order)
            attempt.place(node);

        std::vector<int> order(num_nodes);
        for (int i = 0; i < num_nodes; ++i)
            order[i] = i;

        int best_overlap = attempt.overlap();
        int stall = 0;
        for (int pass = 0;
             pass < opts_.max_passes && attempt.overlap() > 0; ++pass) {
            if (timer.seconds() > opts_.timeout_seconds) {
                result.seconds = timer.seconds();
                return result;
            }
            if (stall >= 4) {
                // Shake: rip every overlapping chain plus a random
                // fifth of the rest, then re-place them.
                std::vector<char> rip(num_nodes, 0);
                for (int n : attempt.overlappingNodes())
                    rip[n] = 1;
                for (int n = 0; n < num_nodes; ++n)
                    if (rng.chance(0.2))
                        rip[n] = 1;
                std::vector<int> torip;
                for (int n = 0; n < num_nodes; ++n) {
                    if (rip[n]) {
                        attempt.ripOut(n);
                        torip.push_back(n);
                    }
                }
                rng.shuffle(torip);
                for (int n : torip)
                    attempt.place(n);
                stall = 0;
            } else {
                rng.shuffle(order);
                for (int n : order) {
                    attempt.ripOut(n);
                    attempt.place(n);
                }
            }
            const int over = attempt.overlap();
            if (over < best_overlap) {
                best_overlap = over;
                stall = 0;
            } else {
                ++stall;
            }
        }

        if (attempt.overlap() == 0) {
            result.success = true;
            result.embedding = Embedding(num_nodes);
            for (int n = 0; n < num_nodes; ++n)
                result.embedding.chain(n) = attempt.chains()[n];
            result.seconds = timer.seconds();
            return result;
        }
    }

    result.seconds = timer.seconds();
    return result;
}

} // namespace hyqsat::embed
