/**
 * @file
 * The HyQSAT linear-time, topology-aware embedder of §IV-B.
 *
 * The Chimera chip is viewed as a crossbar: each SAT variable is
 * allocated one *vertical line* (in clause-queue order) and each
 * connection requirement is met by packing a qubit segment onto a
 * *horizontal line* whose column span covers the target variables'
 * columns; the intra-cell coupler at each crossing realizes the
 * problem-graph edge. Auxiliary variables live purely on horizontal
 * lines. There is no routing search and no iterative adjustment:
 * popping a clause costs amortized O(1) line bookkeeping, giving the
 * paper's O(N_q) total embedding complexity.
 *
 * The embedder is prefix-maximal: it embeds clauses in queue order
 * until the hardware is exhausted and reports how many fit.
 */

#ifndef HYQSAT_EMBED_HYQSAT_EMBEDDER_H
#define HYQSAT_EMBED_HYQSAT_EMBEDDER_H

#include <memory>
#include <vector>

#include "chimera/chimera.h"
#include "embed/compiled_slot.h"
#include "embed/embedding.h"
#include "qubo/encoder.h"
#include "sat/types.h"

namespace hyqsat::embed {

/** Result of embedding a clause queue prefix. */
struct QueueEmbedResult
{
    /** Encoding of the embedded clause prefix. */
    qubo::EncodedProblem problem;

    /** Chains indexed by the problem's node ids. */
    Embedding embedding;

    /** How many queue clauses were embedded (prefix length). */
    int embedded_clauses = 0;

    /** True when the whole queue fit. */
    bool all_embedded = false;

    /** Wall-clock seconds for the embedding. */
    double seconds = 0.0;

    /**
     * Downstream compilation memo: the annealer parks its flat
     * sampling form (CSR adjacency + replay schedule) here so a
     * QueueEmbedCache hit also skips the per-sample model rebuild.
     * Mutable side-cache, not part of the result's value.
     */
    CompiledSlot compiled;
};

/** Options for the fast embedder. */
struct HyQsatEmbedderOptions
{
    /**
     * Try to extend an existing horizontal segment of the owner
     * instead of opening a new one (improves utilization; part of
     * the greedy out-of-order allocation of §IV-B).
     */
    bool reuse_segments = true;

    /**
     * On fabrics with odd couplers (Pegasus/Zephyr), when every
     * same-line extension of the owner's segments is blocked, place
     * the new segment on the odd-coupled partner line of an existing
     * segment instead of opening a fresh crossing row: the partner
     * line runs through the same cell row, and any shared column's
     * odd coupler splices the two segments into one chain, so no
     * vertical chain grows. Inert on Chimera (no odd couplers), so
     * Chimera embeddings stay bit-identical.
     */
    bool odd_couplers = true;

    /** Encoder options for the embedded prefix's objective. */
    qubo::EncoderOptions encoder;
};

/**
 * Reusable working state for HyQsatEmbedder::embedQueue. The
 * embedder's per-run containers (line occupancy grids, segment
 * lists, per-variable row maps) are reset — keeping their capacity —
 * instead of reallocated on every call, making steady-state
 * embedding allocation-light. Opaque (pimpl) so the embedder's
 * internals stay out of the public header. Not thread-safe; one
 * scratch per caller.
 */
class EmbedderScratch
{
  public:
    EmbedderScratch();
    ~EmbedderScratch();
    EmbedderScratch(EmbedderScratch &&) noexcept;
    EmbedderScratch &operator=(EmbedderScratch &&) noexcept;

    /** Opaque container bundle (defined in hyqsat_embedder.cpp). */
    struct Impl;

  private:
    friend class HyQsatEmbedder;
    std::unique_ptr<Impl> impl_;
};

/** The §IV-B embedder. Stateless between embedQueue() calls. */
class HyQsatEmbedder
{
  public:
    explicit HyQsatEmbedder(const chimera::ChimeraGraph &graph,
                            const HyQsatEmbedderOptions &opts = {});

    /**
     * Embed the longest prefix of @p queue that fits the hardware.
     * Clauses must have <= 3 literals (tautologies are tolerated and
     * consume no hardware).
     */
    QueueEmbedResult embedQueue(const std::vector<sat::LitVec> &queue);

    /**
     * Scratch overload: identical result, but every per-run buffer
     * comes from @p scratch (reset on entry, capacity kept), so
     * repeated embeddings avoid the allocation storm of a cold run.
     */
    QueueEmbedResult embedQueue(const std::vector<sat::LitVec> &queue,
                                EmbedderScratch &scratch);

  private:
    const chimera::ChimeraGraph &graph_;
    HyQsatEmbedderOptions opts_;
};

} // namespace hyqsat::embed

#endif // HYQSAT_EMBED_HYQSAT_EMBEDDER_H
