#include "embed/hyqsat_embedder.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"
#include "util/timer.h"

namespace hyqsat::embed {

namespace {

using chimera::ChimeraGraph;
using sat::Lit;
using sat::LitVec;
using sat::Var;

/** A qubit segment on one horizontal line spanning [c1, c2]. */
struct Segment
{
    bool owner_is_aux = false;
    Var owner_var = sat::var_Undef; ///< valid when !owner_is_aux
    int owner_clause = -1;          ///< valid when owner_is_aux
    int hline = 0;
    int c1 = 0, c2 = 0;
};

/** Canonicalize a clause: sorted, deduped; empty for tautologies. */
LitVec
canonical(LitVec clause)
{
    std::sort(clause.begin(), clause.end());
    LitVec out;
    for (Lit p : clause) {
        if (!out.empty() && p == out.back())
            continue;
        if (!out.empty() && p == ~out.back())
            return {};
        out.push_back(p);
    }
    return out;
}

} // namespace

/**
 * Reusable containers behind EmbedderScratch. reset() clears contents
 * but keeps capacity (vectors) and bucket arrays (hash containers),
 * so repeated embedQueue runs stop paying the construction storm of
 * the occupancy grid and per-variable maps.
 */
struct EmbedderScratch::Impl
{
    std::unordered_map<Var, int> var_line;
    std::vector<std::vector<char>> hline_used;
    std::vector<std::vector<Var>> line_vars;
    std::vector<Segment> segments;
    std::unordered_map<Var, std::vector<int>> rows_used;
    std::unordered_set<std::uint64_t> var_coupled;

    /** Prefix copy handed to the encoder on partial embeddings. */
    std::vector<LitVec> accepted_prefix;

    void
    reset(const ChimeraGraph &graph)
    {
        var_line.clear();
        hline_used.resize(graph.numHorizontalLines());
        for (auto &line : hline_used)
            line.assign(graph.cols(), 0);
        line_vars.resize(graph.numVerticalLines());
        for (auto &occupants : line_vars)
            occupants.clear();
        segments.clear();
        rows_used.clear();
        var_coupled.clear();
    }
};

EmbedderScratch::EmbedderScratch() : impl_(std::make_unique<Impl>()) {}
EmbedderScratch::~EmbedderScratch() = default;
EmbedderScratch::EmbedderScratch(EmbedderScratch &&) noexcept = default;
EmbedderScratch &
EmbedderScratch::operator=(EmbedderScratch &&) noexcept = default;

namespace {

/** Working state of one embedQueue() run (containers borrowed from
 * an EmbedderScratch::Impl that was reset for this run). */
class Builder
{
  public:
    Builder(const ChimeraGraph &graph, const HyQsatEmbedderOptions &opts,
            EmbedderScratch::Impl &scratch)
        : graph_(graph), opts_(opts), var_line_(scratch.var_line),
          hline_used_(scratch.hline_used),
          line_vars_(scratch.line_vars), segments_(scratch.segments),
          rows_used_(scratch.rows_used),
          var_coupled_(scratch.var_coupled)
    {
    }

    /** Try to embed one canonical clause; false leaves state intact. */
    bool
    tryClause(const LitVec &clause, int clause_index)
    {
        // Undo logs for rollback on failure.
        std::vector<Var> new_vars;
        std::vector<std::size_t> new_segments;
        std::vector<Var> rows_appended;
        auto rollback = [&]() {
            for (auto it = new_segments.rbegin();
                 it != new_segments.rend(); ++it) {
                const Segment &s = segments_[*it];
                for (int c = s.c1; c <= s.c2; ++c)
                    hline_used_[s.hline][c] = 0;
                segments_.pop_back();
            }
            for (Var v : rows_appended)
                rows_used_[v].pop_back();
            for (auto it = new_vars.rbegin(); it != new_vars.rend();
                 ++it) {
                const int line = var_line_[*it];
                line_vars_[line].pop_back();
                var_line_.erase(*it);
            }
        };

        // Step 1: allocate vertical lines for unseen variables. The
        // allocator shares lines between variables (disjoint row
        // intervals), cycling through lines so occupancy stays even;
        // variables of the same clause never share a line (their
        // chains could not be coupled there).
        for (Lit p : clause) {
            if (var_line_.count(p.var()))
                continue;
            const auto [line, home_row] = pickLine(clause);
            if (line < 0) {
                rollback();
                return false;
            }
            var_line_.emplace(p.var(), line);
            line_vars_[line].push_back(p.var());
            new_vars.push_back(p.var());
            // Reserve a home row immediately so every variable owns
            // a non-empty, non-touching interval from birth.
            rows_used_[p.var()].push_back(home_row);
            rows_appended.push_back(p.var());
        }

        // Step 2: satisfy the clause's connection requirements.
        auto placeVarVar = [&](Var a, Var b) {
            if (var_coupled_.count(coupleKey(a, b)))
                return true;
            if (!placeSegment(/*aux=*/false, a, -1, {colOf(a), colOf(b)},
                              {a, b}, &new_segments, &rows_appended)) {
                return false;
            }
            var_coupled_.insert(coupleKey(a, b));
            return true;
        };

        bool ok = true;
        if (clause.size() == 2) {
            ok = placeVarVar(clause[0].var(), clause[1].var());
        } else if (clause.size() == 3) {
            const Var v0 = clause[0].var();
            const Var v1 = clause[1].var();
            const Var v2 = clause[2].var();
            ok = placeVarVar(v0, v1) &&
                 placeSegment(/*aux=*/true, sat::var_Undef, clause_index,
                              {colOf(v0), colOf(v1), colOf(v2)},
                              {v0, v1, v2}, &new_segments,
                              &rows_appended);
        }
        if (!ok) {
            rollback();
            return false;
        }
        return true;
    }

    /** Materialize chains for the encoded prefix problem. */
    Embedding
    buildEmbedding(const qubo::EncodedProblem &ep) const
    {
        Embedding emb(ep.numNodes());

        std::unordered_map<int, const Segment *> aux_segment;
        std::unordered_map<Var, std::vector<const Segment *>> var_segments;
        for (const auto &s : segments_) {
            if (s.owner_is_aux)
                aux_segment.emplace(s.owner_clause, &s);
            else
                var_segments[s.owner_var].push_back(&s);
        }

        for (int n = 0; n < ep.numNodes(); ++n) {
            auto &chain = emb.chain(n);
            const auto &info = ep.nodes[n];
            if (info.is_aux) {
                const Segment *s = aux_segment.at(info.clause);
                for (int c = s->c1; c <= s->c2; ++c)
                    chain.push_back(
                        graph_.horizontalLineQubit(s->hline, c));
                continue;
            }
            // Variable: vertical span + owned horizontal segments.
            const int line = var_line_.at(info.var);
            for (int r : chainRows(info.var))
                chain.push_back(graph_.verticalLineQubit(line, r));
            const auto segs = var_segments.find(info.var);
            if (segs != var_segments.end()) {
                for (const Segment *s : segs->second) {
                    for (int c = s->c1; c <= s->c2; ++c)
                        chain.push_back(
                            graph_.horizontalLineQubit(s->hline, c));
                }
            }
        }
        return emb;
    }

  private:
    static std::uint64_t
    coupleKey(Var a, Var b)
    {
        if (a > b)
            std::swap(a, b);
        return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a))
                << 32) |
               static_cast<std::uint32_t>(b);
    }

    int colOf(Var v) const
    {
        return graph_.verticalLineColumn(var_line_.at(v));
    }

    /**
     * Row interval of a variable's vertical chain. The first entry
     * is the soft home row reserved at allocation; once real
     * coupling rows exist the span covers only those, keeping
     * chains short.
     */
    std::pair<int, int>
    spanOf(Var v) const
    {
        const auto it = rows_used_.find(v);
        if (it == rows_used_.end() || it->second.empty()) {
            // Cannot happen: a home row is reserved at allocation.
            return {graph_.rows() - 1, graph_.rows() - 1};
        }
        const auto &rows = it->second;
        const auto begin =
            rows.size() >= 2 ? rows.begin() + 1 : rows.begin();
        const auto [lo, hi] = std::minmax_element(begin, rows.end());
        return {*lo, *hi};
    }

    /**
     * Chain rows derived from a raw rows_used_ entry: the first
     * element is the soft home row (dropped once real crossings
     * exist); between crossings only stepping stones every
     * lineReach() rows are needed.
     */
    std::vector<int>
    chainRowsFrom(const std::vector<int> &rows) const
    {
        std::vector<int> crossings;
        if (!rows.empty()) {
            const auto begin =
                rows.size() >= 2 ? rows.begin() + 1 : rows.begin();
            crossings.assign(begin, rows.end());
        } else {
            // Cannot happen: a home row is reserved at allocation.
            crossings.push_back(graph_.rows() - 1);
        }
        std::sort(crossings.begin(), crossings.end());
        crossings.erase(
            std::unique(crossings.begin(), crossings.end()),
            crossings.end());

        const int reach = graph_.lineReach();
        std::vector<int> out;
        for (std::size_t i = 0; i < crossings.size(); ++i) {
            out.push_back(crossings[i]);
            if (i + 1 < crossings.size()) {
                for (int r = crossings[i] + reach;
                     r < crossings[i + 1]; r += reach)
                    out.push_back(r);
            }
        }
        return out;
    }

    /**
     * Rows of a variable's vertical chain, ascending. The chain must
     * visit every crossing row (where a horizontal segment couples
     * to it); between crossings it only needs stepping stones every
     * lineReach() rows, so on Pegasus the skip couplers let the
     * chain leave interior rows free. With reach 1 the bridging
     * degenerates to the historical contiguous [r_min, r_max] span,
     * keeping Chimera embeddings bit-identical.
     */
    std::vector<int>
    chainRows(Var v) const
    {
        const auto it = rows_used_.find(v);
        static const std::vector<int> kEmpty;
        return chainRowsFrom(it != rows_used_.end() ? it->second
                                                    : kEmpty);
    }

    /**
     * Vertical qubits @p v's chain gains if row @p r is recorded as
     * a new crossing (0 when the chain already covers it).
     */
    int
    verticalGrowth(Var v, int r) const
    {
        const auto it = rows_used_.find(v);
        if (it == rows_used_.end() || it->second.empty())
            return 0; // first crossing replaces the home row
        std::vector<int> with = it->second;
        with.push_back(r);
        return static_cast<int>(chainRowsFrom(with).size()) -
               static_cast<int>(chainRowsFrom(it->second).size());
    }

    /**
     * Can variable @p v's span grow to include row @p r without its
     * extended interval coming within lineReach() rows of a
     * co-resident variable's interval? Chains separated by less than
     * the reach would share a line coupler (stride-1 on Chimera,
     * also the stride-2 skip couplers on Pegasus).
     */
    bool
    rowFeasibleOnLine(int line, Var v, int r) const
    {
        const int reach = graph_.lineReach();
        int lo = r, hi = r;
        const auto it = rows_used_.find(v);
        if (it != rows_used_.end() && !it->second.empty()) {
            const auto [mn, mx] = std::minmax_element(
                it->second.begin(), it->second.end());
            lo = std::min(lo, *mn);
            hi = std::max(hi, *mx);
        }
        for (Var other : line_vars_[line]) {
            if (other == v)
                continue;
            const auto oit = rows_used_.find(other);
            if (oit == rows_used_.end() || oit->second.empty())
                continue; // mid-rollback transient
            const auto [omn, omx] = std::minmax_element(
                oit->second.begin(), oit->second.end());
            if (lo <= *omx + reach && *omn <= hi + reach)
                return false; // a line coupler would join the chains
        }
        return true;
    }

    /** Bottom-most row whose single-row interval fits on @p line. */
    int
    freeHomeRow(int line) const
    {
        const int reach = graph_.lineReach();
        for (int r = graph_.rows() - 1; r >= 0; --r) {
            bool ok = true;
            for (Var other : line_vars_[line]) {
                const auto oit = rows_used_.find(other);
                if (oit == rows_used_.end() || oit->second.empty())
                    continue;
                const auto [omn, omx] = std::minmax_element(
                    oit->second.begin(), oit->second.end());
                if (r <= *omx + reach && *omn <= r + reach) {
                    ok = false;
                    break;
                }
            }
            if (ok)
                return r;
        }
        return -1;
    }

    /**
     * Pick a vertical line and home row for a fresh variable:
     * sequential allocation in queue order (§IV-B step 1). One
     * variable per line; consecutive allocations land in adjacent
     * columns, which preserves the BFS queue's variable locality in
     * hardware (clause segments then span few columns).
     *
     * Row-sharing of vertical lines was evaluated and rejected: two
     * variables on one line partition the rows, and any clause
     * coupling variables of different row bands becomes
     * unembeddable, so shared lines lower - not raise - the
     * achievable clause capacity.
     */
    std::pair<int, int>
    pickLine(const LitVec &clause)
    {
        // Prefer the free line whose column is nearest the clause's
        // already-placed variables: horizontal segments span the
        // columns they connect, so column locality directly shrinks
        // segment width and raises the clause capacity.
        const int lines = graph_.numVerticalLines();
        double target_col = -1.0;
        int placed = 0;
        for (Lit p : clause) {
            const auto it = var_line_.find(p.var());
            if (it != var_line_.end()) {
                target_col += graph_.verticalLineColumn(it->second);
                ++placed;
            }
        }
        int best = -1;
        double best_score = 1e18;
        for (int line = 0; line < lines; ++line) {
            if (!line_vars_[line].empty())
                continue;
            // Without placed clause-mates, fall back to low index
            // (columns fill left to right, matching queue order).
            const double score =
                placed == 0
                    ? static_cast<double>(line)
                    : std::abs(graph_.verticalLineColumn(line) -
                               (target_col + 1.0) / placed) *
                              lines +
                          line;
            if (score < best_score) {
                best_score = score;
                best = line;
            }
        }
        if (best < 0)
            return {-1, -1};
        return {best, freeHomeRow(best)};
    }

    /**
     * Try to host a [c1, c2] segment for @p owner_var on the
     * odd-coupled partner line of one of the owner's existing
     * segments. A shared column's per-cell odd coupler splices the
     * new segment into the owner's chain, and the partner runs
     * through the same cell row, so no vertical chain gains a
     * crossing row. Only spans that already overlap the existing
     * segment qualify (the placement costs exactly the cells a
     * first-fit placement would), and only rows that grow no
     * participant's vertical chain — so taking the partner line is
     * never worse than whatever row first-fit would have picked.
     * Returns false on fabrics without odd couplers
     * (horizontalLinePartner() is -1).
     */
    template <typename RowOk, typename MarkRows>
    bool
    tryOddPartner(Var owner_var, int c1, int c2,
                  const std::vector<Var> &touching, const RowOk &rowOk,
                  const MarkRows &markRows,
                  std::vector<std::size_t> *new_segments)
    {
        for (std::size_t si = 0; si < segments_.size(); ++si) {
            // Copy the fields: push_back below reallocates.
            const Segment s = segments_[si];
            if (s.owner_is_aux || s.owner_var != owner_var)
                continue;
            const int partner = graph_.horizontalLinePartner(s.hline);
            if (partner < 0)
                continue;
            if (c2 < s.c1 || c1 > s.c2)
                continue; // no shared column to splice through
            const int row = graph_.horizontalLineRow(s.hline);
            if (!rowOk(row))
                continue;
            bool grows = verticalGrowth(owner_var, row) > 0;
            for (std::size_t vi = 0; vi < touching.size() && !grows;
                 ++vi)
                grows = verticalGrowth(touching[vi], row) > 0;
            if (grows)
                continue;
            bool free = true;
            for (int c = c1; c <= c2 && free; ++c)
                free = !hline_used_[partner][c];
            if (!free)
                continue;
            for (int c = c1; c <= c2; ++c)
                hline_used_[partner][c] = 1;
            segments_.push_back(
                {false, owner_var, -1, partner, c1, c2});
            new_segments->push_back(segments_.size() - 1);
            markRows(graph_.horizontalLineRow(s.hline));
            return true;
        }
        return false;
    }

    /**
     * Place (or extend) a horizontal segment for @p owner covering
     * every column in @p cols; record the crossing row for each
     * variable in @p touching so vertical spans cover it.
     */
    bool
    placeSegment(bool aux, Var owner_var, int owner_clause,
                 std::vector<int> cols, const std::vector<Var> &touching,
                 std::vector<std::size_t> *new_segments,
                 std::vector<Var> *rows_appended)
    {
        // The owner variable's own column must be in the span so the
        // segment couples to its vertical chain.
        if (!aux)
            cols.push_back(colOf(owner_var));
        const auto [lo, hi] = std::minmax_element(cols.begin(), cols.end());
        const int c1 = *lo, c2 = *hi;

        auto rowOk = [&](int r) {
            for (Var v : touching) {
                if (!rowFeasibleOnLine(var_line_.at(v), v, r))
                    return false;
            }
            if (!aux && !rowFeasibleOnLine(var_line_.at(owner_var),
                                           owner_var, r)) {
                return false;
            }
            return true;
        };

        auto markRows = [&](int row) {
            for (Var v : touching) {
                rows_used_[v].push_back(row);
                rows_appended->push_back(v);
            }
            if (!aux) {
                rows_used_[owner_var].push_back(row);
                rows_appended->push_back(owner_var);
            }
        };

        // Try extending one of the owner's existing segments. The
        // extension is recorded as fresh segments over the newly
        // covered cells (so rollback stays per-clause); the chains
        // merge because both segments share the owner and line.
        if (opts_.reuse_segments && !aux) {
            for (std::size_t si = 0; si < segments_.size(); ++si) {
                // Copy the fields: push_back below reallocates.
                const Segment s = segments_[si];
                if (s.owner_is_aux || s.owner_var != owner_var)
                    continue;
                if (!rowOk(graph_.horizontalLineRow(s.hline)))
                    continue;
                const int e1 = std::min(s.c1, c1);
                const int e2 = std::max(s.c2, c2);
                bool free = true;
                for (int c = e1; c <= e2 && free; ++c) {
                    free &= (c >= s.c1 && c <= s.c2) ||
                            !hline_used_[s.hline][c];
                }
                if (!free)
                    continue;
                for (int c = e1; c <= e2; ++c)
                    hline_used_[s.hline][c] = 1;
                if (e1 < s.c1) {
                    segments_.push_back({false, owner_var, -1, s.hline,
                                         e1, s.c1 - 1});
                    new_segments->push_back(segments_.size() - 1);
                }
                if (e2 > s.c2) {
                    segments_.push_back({false, owner_var, -1, s.hline,
                                         s.c2 + 1, e2});
                    new_segments->push_back(segments_.size() - 1);
                }
                markRows(graph_.horizontalLineRow(s.hline));
                return true;
            }

            // Second pass: every same-line extension was blocked by
            // occupancy. On fabrics with odd couplers, a segment on
            // the odd-coupled partner line still crosses every target
            // column in the same cell row, and sharing one column
            // with the owner's existing segment splices the two into
            // one chain through the per-cell odd coupler — so the
            // clause is served without opening a new crossing row on
            // any vertical chain. Only spans that already overlap the
            // owner's segment qualify (zero extra cells versus a
            // first-fit placement). No-op on Chimera.
            if (opts_.odd_couplers &&
                tryOddPartner(owner_var, c1, c2, touching, rowOk,
                              markRows, new_segments)) {
                return true;
            }
        }

        // First-fit scan, bottom row first, tracks in order.
        for (int r = graph_.rows() - 1; r >= 0; --r) {
            if (!rowOk(r))
                continue;
            for (int t = 0; t < graph_.shore(); ++t) {
                const int hline = r * graph_.shore() + t;
                bool free = true;
                for (int c = c1; c <= c2 && free; ++c)
                    free = !hline_used_[hline][c];
                if (!free)
                    continue;
                for (int c = c1; c <= c2; ++c)
                    hline_used_[hline][c] = 1;
                segments_.push_back(
                    {aux, owner_var, owner_clause, hline, c1, c2});
                new_segments->push_back(segments_.size() - 1);
                markRows(r);
                return true;
            }
        }
        return false;
    }

    const ChimeraGraph &graph_;
    HyQsatEmbedderOptions opts_;

    std::unordered_map<Var, int> &var_line_;
    std::vector<std::vector<char>> &hline_used_;
    std::vector<std::vector<Var>> &line_vars_; // per line occupants
    std::vector<Segment> &segments_;
    std::unordered_map<Var, std::vector<int>> &rows_used_;
    std::unordered_set<std::uint64_t> &var_coupled_;
};

} // namespace

HyQsatEmbedder::HyQsatEmbedder(const chimera::ChimeraGraph &graph,
                               const HyQsatEmbedderOptions &opts)
    : graph_(graph), opts_(opts)
{
}

QueueEmbedResult
HyQsatEmbedder::embedQueue(const std::vector<sat::LitVec> &queue)
{
    EmbedderScratch scratch;
    return embedQueue(queue, scratch);
}

QueueEmbedResult
HyQsatEmbedder::embedQueue(const std::vector<sat::LitVec> &queue,
                           EmbedderScratch &scratch)
{
    Timer timer;
    EmbedderScratch::Impl &s = *scratch.impl_;
    s.reset(graph_);
    Builder builder(graph_, opts_, s);

    QueueEmbedResult result;
    int accepted = 0;
    for (const auto &raw : queue) {
        const LitVec clause = canonical(raw);
        if (clause.size() > 3) {
            fatal("HyQsatEmbedder requires 3-SAT clauses (got %zu "
                  "literals)",
                  clause.size());
        }
        if (!builder.tryClause(clause, accepted))
            break;
        ++accepted;
    }

    result.embedded_clauses = accepted;
    result.all_embedded =
        static_cast<std::size_t>(accepted) == queue.size();
    if (result.all_embedded) {
        // Keep the raw clauses: the encoder canonicalizes
        // identically, and raw tautologies must stay tautologies.
        result.problem = qubo::encodeClauses(queue, opts_.encoder);
    } else {
        s.accepted_prefix.assign(queue.begin(),
                                 queue.begin() + accepted);
        result.problem =
            qubo::encodeClauses(s.accepted_prefix, opts_.encoder);
    }
    result.embedding = builder.buildEmbedding(result.problem);
    result.seconds = timer.seconds();
    return result;
}

} // namespace hyqsat::embed
