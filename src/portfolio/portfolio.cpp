#include "portfolio/portfolio.h"

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "util/logging.h"
#include "util/timer.h"

namespace hyqsat::portfolio {

namespace {

/** splitmix64 finalizer: decorrelates per-worker seed streams. */
std::uint64_t
mixSeed(std::uint64_t seed, std::uint64_t salt)
{
    std::uint64_t z = seed + salt * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

PortfolioSolver::PortfolioSolver(PortfolioOptions opts)
    : opts_(std::move(opts))
{
    if (opts_.workers.empty() && opts_.num_workers <= 0)
        fatal("PortfolioSolver needs at least one worker");
}

std::vector<WorkerConfig>
PortfolioSolver::diversify(const core::HybridConfig &base, int n)
{
    std::vector<WorkerConfig> slate;
    slate.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        WorkerConfig w;
        w.hybrid = base;
        switch (i % 10) {
        case 0:
            // Slot 0 IS the base config: a 1-worker portfolio must
            // reproduce the single solver bit for bit.
            w.label = "base";
            break;
        case 1:
            // Plain CDCL hedge: on instances where QA feedback does
            // not pay, the classic loop often finishes first.
            w.label = "cdcl";
            w.hybrid.warmup_override = 0;
            break;
        case 2:
            // SA over the logical Ising model: the sample-quality
            // ceiling of the device emulation.
            w.label = "sa";
            w.hybrid.sampler = "sa";
            break;
        case 3:
            // Async pipeline: overlaps device latency with search.
            w.label = "async";
            w.hybrid.pipeline_depth =
                std::max(base.pipeline_depth, 2);
            break;
        case 4:
            // Best-of-N seed racing inside every sample.
            w.label = "batch";
            w.hybrid.sampler = "batch";
            break;
        case 5:
            // CHB branching / faster restarts on the CDCL side,
            // over a lightly preprocessed formula.
            w.label = "kissat";
            w.hybrid.solver = sat::SolverOptions::kissatStyle();
            w.hybrid.simplify_strength = simplify::Strength::Light;
            break;
        case 6:
            // Ideal all-to-all device: no embedding losses.
            w.label = "logical";
            w.hybrid.sampler = "logical";
            w.hybrid.use_embedding = false;
            break;
        case 7:
            // Greedy clause-queue head instead of the paper's random
            // top-30 pick (§IV-A): a different slice of the formula
            // reaches the annealer.
            w.label = "greedy-queue";
            w.hybrid.frontend.queue.top_k = 1;
            break;
        case 8:
            // Full inprocessing (BVE, equivalence substitution,
            // probing, vivification) before the hybrid loop: this
            // worker searches a smaller formula and more of its
            // clause queue embeds per iteration.
            w.label = "presolve";
            w.hybrid.simplify_strength = simplify::Strength::Full;
            break;
        case 9:
            // Parallel lockstep reads: 16 decorrelated chains per
            // device sample through the SIMD batch kernel, fanned
            // across the WorkPool in auto-sized groups of 8 lanes.
            // Since PR 10 the groups no longer serialize on one
            // core, so this slot stops fighting the other workers
            // for its throughput and earns a default seat.
            w.label = "reads-batch";
            w.hybrid.num_reads = std::max(base.num_reads, 16);
            w.hybrid.reads_batch = true;
            break;
        }
        if (i > 0) {
            // Decorrelate every RNG stream so identical variants in
            // a second table cycle still explore differently.
            const auto salt = static_cast<std::uint64_t>(i);
            w.hybrid.seed = mixSeed(base.seed, salt);
            w.hybrid.solver.seed = mixSeed(base.solver.seed, salt);
            w.hybrid.annealer.seed =
                mixSeed(base.annealer.seed, salt);
        }
        if (i >= 10)
            w.label += "#" + std::to_string(i / 10);
        slate.push_back(std::move(w));
    }
    return slate;
}

PortfolioResult
PortfolioSolver::solve(const sat::Cnf &formula)
{
    const Timer wall;
    PortfolioResult result;

    const std::vector<WorkerConfig> slate =
        opts_.workers.empty()
            ? diversify(opts_.base, opts_.num_workers)
            : opts_.workers;
    const int n = static_cast<int>(slate.size());
    result.workers.resize(static_cast<std::size_t>(n));

    StopToken stop;
    const bool share = opts_.share_clauses && n > 1;
    ClauseExchange exchange(
        n, ClauseExchange::Options{opts_.share_max_len,
                                   opts_.share_capacity});

    // One private registry per worker: hot-handle writes never cross
    // threads; everything is merged into opts_.metrics after join.
    TraceSink *const trace =
        opts_.metrics ? opts_.metrics->trace() : nullptr;
    std::vector<std::unique_ptr<MetricsRegistry>> worker_metrics;
    if (opts_.metrics) {
        worker_metrics.reserve(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) {
            worker_metrics.push_back(
                std::make_unique<MetricsRegistry>());
            worker_metrics.back()->setTrace(trace);
        }
    }

    std::mutex mutex;
    std::condition_variable cv;
    int running = n;
    int winner = -1;
    Timer win_timer;
    core::HybridResult winner_result;

    auto runWorker = [&](int i) {
        const Timer worker_timer;
        core::HybridConfig cfg = slate[static_cast<std::size_t>(i)].hybrid;
        cfg.stop = &stop;
        if (!worker_metrics.empty())
            cfg.metrics = worker_metrics[static_cast<std::size_t>(i)].get();
        if (opts_.conflict_budget >= 0)
            cfg.solver.conflict_budget = opts_.conflict_budget;
        if (share) {
            const int max_len = opts_.share_max_len;
            cfg.learnt_export = [&exchange, i,
                                 max_len](const sat::LitVec &lits) {
                if (static_cast<int>(lits.size()) <= max_len)
                    exchange.publish(i, lits);
            };
            const bool polarity = opts_.share_polarity;
            cfg.root_hook = [&exchange, i, polarity](sat::Solver &s) {
                std::vector<sat::LitVec> incoming;
                exchange.fetch(i, incoming);
                for (sat::LitVec &c : incoming) {
                    // The first literal is the exporter's asserting
                    // (first-UIP) literal: seed phase saving with it.
                    if (polarity && !c.empty())
                        s.suggestPhase(c[0].var(), !c[0].sign());
                    if (!s.importClause(std::move(c)))
                        return; // import refuted the formula
                }
            };
        }

        core::HybridSolver solver(cfg);
        core::HybridResult r = solver.solve(formula);
        const double seconds = worker_timer.seconds();

        {
            std::lock_guard<std::mutex> lock(mutex);
            WorkerReport &rep =
                result.workers[static_cast<std::size_t>(i)];
            rep.label = slate[static_cast<std::size_t>(i)].label;
            rep.status = r.status;
            rep.seconds = seconds;
            rep.iterations = r.stats.iterations;
            rep.conflicts = r.stats.conflicts;
            rep.qa_samples = r.qa_samples;
            rep.exported_clauses = r.stats.exported_clauses;
            rep.imported_clauses = r.stats.imported_clauses;
            if (!r.status.isUndef() && winner < 0) {
                winner = i;
                winner_result = std::move(r);
                win_timer.reset();
                stop.requestStop(); // cancel the losers
            }
            --running;
            if (trace) {
                trace->event(
                    "portfolio.worker_done",
                    {{"seconds", seconds},
                     {"conflicts",
                      static_cast<double>(rep.conflicts)},
                     {"qa_samples",
                      static_cast<double>(rep.qa_samples)}},
                    {{"label", rep.label},
                     {"status", rep.status.isTrue()    ? "SAT"
                                : rep.status.isFalse() ? "UNSAT"
                                                       : "UNDEF"}});
            }
        }
        cv.notify_all();
    };

    // Watchdog: turns the wall-clock budget and the caller's
    // external token into stop requests. Polling (a few ms) keeps it
    // simple; cancellation latency is dominated by the workers'
    // own cancellation points anyway.
    std::thread watchdog;
    if (opts_.timeout_s > 0.0 || opts_.external_stop) {
        watchdog = std::thread([&] {
            std::unique_lock<std::mutex> lock(mutex);
            while (running > 0 && winner < 0) {
                if (opts_.timeout_s > 0.0 &&
                    wall.seconds() >= opts_.timeout_s) {
                    result.timed_out = true;
                    stop.requestStop();
                    break;
                }
                if (opts_.external_stop &&
                    opts_.external_stop->stopRequested()) {
                    result.external_stopped = true;
                    stop.requestStop();
                    break;
                }
                cv.wait_for(lock, std::chrono::milliseconds(2));
            }
        });
    }

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        threads.emplace_back(runWorker, i);
    for (std::thread &t : threads)
        t.join();

    // Everything below runs after every worker returned, so the
    // winner bookkeeping needs no lock — except the watchdog, which
    // may still hold the mutex for one last poll.
    if (watchdog.joinable()) {
        cv.notify_all();
        watchdog.join();
    }

    result.wall_s = wall.seconds();
    if (winner >= 0) {
        result.cancel_latency_s = win_timer.seconds();
        result.winner = winner;
        result.winner_label =
            result.workers[static_cast<std::size_t>(winner)].label;
        result.workers[static_cast<std::size_t>(winner)].winner = true;
        result.status = winner_result.status;
        if (winner_result.status.isTrue()) {
            result.model = winner_result.model;
            if (!formula.eval(result.model))
                panic("portfolio winner's model failed verification");
        }
        result.winner_result = std::move(winner_result);
    }
    result.exchange = exchange.stats();

    if (opts_.metrics) {
        MetricsRegistry &m = *opts_.metrics;
        for (const auto &wm : worker_metrics)
            m.merge(*wm);
        m.counter("portfolio.races")->add();
        m.timer("portfolio.wall")->add(result.wall_s);
        if (result.winner >= 0) {
            m.counter("portfolio.decided")->add();
            m.counter("portfolio.wins." + result.winner_label)->add();
            m.timer("portfolio.cancel_latency")
                ->add(result.cancel_latency_s);
        }
        if (result.timed_out)
            m.counter("portfolio.timeouts")->add();
        if (result.external_stopped)
            m.counter("portfolio.external_stops")->add();
        m.counter("portfolio.exchange.published")
            ->add(result.exchange.published);
        m.counter("portfolio.exchange.rejected_len")
            ->add(result.exchange.rejected_len);
        m.counter("portfolio.exchange.overflowed")
            ->add(result.exchange.overflowed);
        m.counter("portfolio.exchange.fetched")
            ->add(result.exchange.fetched);
        if (trace) {
            trace->event(
                "portfolio.race_done",
                {{"wall_s", result.wall_s},
                 {"cancel_latency_s", result.cancel_latency_s},
                 {"workers", static_cast<double>(n)}},
                {{"winner", result.winner_label},
                 {"status", result.status.isTrue()    ? "SAT"
                            : result.status.isFalse() ? "UNSAT"
                                                      : "UNDEF"}});
        }
    }
    return result;
}

} // namespace hyqsat::portfolio
