#include "portfolio/batch_runner.h"

#include <algorithm>
#include <filesystem>
#include <istream>
#include <ostream>
#include <thread>

#include "sat/dimacs.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/timer.h"

namespace hyqsat::portfolio {

namespace fs = std::filesystem;

// ----------------------------------------------------------------------
// WorkQueue
// ----------------------------------------------------------------------

void
WorkQueue::push(std::string path)
{
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(path));
}

bool
WorkQueue::pop(std::string &out)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty())
        return false;
    out = std::move(queue_.front());
    queue_.pop_front();
    return true;
}

std::size_t
WorkQueue::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

// ----------------------------------------------------------------------
// BatchRunner
// ----------------------------------------------------------------------

BatchRunner::BatchRunner(BatchOptions opts) : opts_(std::move(opts))
{
    opts_.concurrency = std::max(opts_.concurrency, 1);
}

std::vector<std::string>
BatchRunner::collectCnfFiles(const std::string &dir)
{
    std::vector<std::string> paths;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        if (!entry.is_regular_file())
            continue;
        const std::string ext = entry.path().extension().string();
        if (ext == ".cnf" || ext == ".dimacs")
            paths.push_back(entry.path().string());
    }
    std::sort(paths.begin(), paths.end());
    return paths;
}

std::vector<std::string>
BatchRunner::readManifest(std::istream &in)
{
    std::vector<std::string> paths;
    std::string line;
    while (std::getline(in, line)) {
        // Trim whitespace; skip blanks and '#' comments.
        const auto begin = line.find_first_not_of(" \t\r");
        if (begin == std::string::npos || line[begin] == '#')
            continue;
        const auto end = line.find_last_not_of(" \t\r");
        paths.push_back(line.substr(begin, end - begin + 1));
    }
    return paths;
}

std::size_t
BatchRunner::estimateMemoryMb(const sat::Cnf &cnf, int num_workers)
{
    // Footprint model: every clause costs its literals (4 B each)
    // plus an arena header, doubled for learnt growth; every
    // variable costs watch lists, trail, heap and scores (~128 B).
    // Each portfolio worker holds an independent copy.
    std::size_t lits = 0;
    for (int i = 0; i < cnf.numClauses(); ++i)
        lits += cnf.clause(i).size();
    const std::size_t per_worker =
        lits * 2 * (sizeof(std::uint32_t) + 12) +
        static_cast<std::size_t>(cnf.numVars()) * 128;
    const std::size_t total =
        per_worker * static_cast<std::size_t>(std::max(num_workers, 1));
    return total / (1024 * 1024) + 1;
}

InstanceRecord
BatchRunner::solveOne(const std::string &path)
{
    InstanceRecord rec;
    rec.path = path;
    rec.name = fs::path(path).stem().string();

    const Timer timer;
    const auto parsed = sat::parseDimacsFile(path);
    if (!parsed) {
        rec.status = "PARSE_ERROR";
        rec.wall_s = timer.seconds();
        return rec;
    }
    sat::Cnf cnf = *parsed;
    rec.vars = cnf.numVars();
    rec.clauses = cnf.numClauses();
    if (!cnf.isThreeSat())
        cnf = sat::toThreeSat(cnf);

    // Private per-instance registry: snapshotted into the record,
    // then merged into the batch-level registry under the lock.
    MetricsRegistry inst_metrics;
    if (opts_.metrics)
        inst_metrics.setTrace(opts_.metrics->trace());

    PortfolioOptions popts = opts_.portfolio;
    if (opts_.instance_timeout_s > 0.0)
        popts.timeout_s = opts_.instance_timeout_s;
    popts.external_stop = opts_.external_stop;
    popts.metrics = &inst_metrics;

    const int workers = popts.workers.empty()
                            ? popts.num_workers
                            : static_cast<int>(popts.workers.size());
    if (opts_.memory_budget_mb > 0 &&
        estimateMemoryMb(cnf, workers) > opts_.memory_budget_mb) {
        rec.status = "SKIPPED";
        rec.wall_s = timer.seconds();
        return rec;
    }

    PortfolioSolver solver(popts);
    const PortfolioResult result = solver.solve(cnf);
    rec.wall_s = timer.seconds();

    if (result.status.isTrue())
        rec.status = "SAT";
    else if (result.status.isFalse())
        rec.status = "UNSAT";
    else if (result.timed_out)
        rec.status = "TIMEOUT";
    else
        rec.status = "UNKNOWN";

    if (result.winner >= 0) {
        rec.winner = result.winner_label;
        const core::HybridResult &w = result.winner_result;
        rec.iterations = w.stats.iterations;
        rec.conflicts = w.stats.conflicts;
        rec.qa_samples = w.qa_samples;
        rec.frontend_s = w.time.frontend_s;
        rec.qa_device_s = w.time.qa_device_s;
        rec.qa_blocking_s = w.time.qa_blocking_s;
        rec.backend_s = w.time.backend_s;
        rec.cdcl_s = w.time.cdcl_s;
    }

    // All-worker totals and the full per-instance snapshot come from
    // the registry even when nobody decided (a timeout still did
    // measurable work).
    rec.restarts = inst_metrics.counter("solver.restarts")->value();
    rec.propagations =
        inst_metrics.counter("solver.propagations")->value();
    rec.metrics = inst_metrics.snapshot();
    if (opts_.metrics) {
        std::lock_guard<std::mutex> lock(metrics_mutex_);
        opts_.metrics->merge(inst_metrics);
        if (TraceSink *trace = opts_.metrics->trace()) {
            trace->event("batch.instance_done",
                         {{"wall_s", rec.wall_s},
                          {"conflicts",
                           static_cast<double>(rec.conflicts)}},
                         {{"name", rec.name},
                          {"status", rec.status}});
        }
    }
    return rec;
}

BatchReport
BatchRunner::run(const std::vector<std::string> &paths)
{
    const Timer wall;
    BatchReport report;
    report.records.resize(paths.size());

    // Index-tagged queue so records land in input order regardless
    // of completion order.
    WorkQueue queue;
    for (std::size_t i = 0; i < paths.size(); ++i)
        queue.push(std::to_string(i) + "\t" + paths[i]);

    std::mutex record_mutex;
    auto drain = [&] {
        std::string job;
        while (queue.pop(job)) {
            if (opts_.external_stop &&
                opts_.external_stop->stopRequested()) {
                return; // batch cancelled: leave the rest queued
            }
            const auto tab = job.find('\t');
            const std::size_t index =
                static_cast<std::size_t>(std::stoull(job.substr(0, tab)));
            InstanceRecord rec = solveOne(job.substr(tab + 1));
            std::lock_guard<std::mutex> lock(record_mutex);
            report.records[index] = std::move(rec);
        }
    };

    const int pool =
        std::min<int>(opts_.concurrency,
                      static_cast<int>(std::max<std::size_t>(
                          paths.size(), 1)));
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(pool));
    for (int t = 0; t < pool; ++t)
        threads.emplace_back(drain);
    for (std::thread &t : threads)
        t.join();

    report.wall_s = wall.seconds();
    for (InstanceRecord &rec : report.records) {
        if (rec.status.empty())
            rec.status = "UNKNOWN"; // cancelled before it was picked up
        if (rec.status == "SAT")
            ++report.sat;
        else if (rec.status == "UNSAT")
            ++report.unsat;
        else if (rec.status == "TIMEOUT")
            ++report.timeouts;
        else if (rec.status == "SKIPPED")
            ++report.skipped;
        else if (rec.status == "PARSE_ERROR")
            ++report.errors;
        else
            ++report.unknown;
    }
    return report;
}

// ----------------------------------------------------------------------
// Report writers
// ----------------------------------------------------------------------

void
BatchRunner::writeJson(const BatchReport &report, std::ostream &out)
{
    // Every double is routed through jsonNumber(): timing fields can
    // be NaN/Inf after clock trouble or 0/0 derivations, and a bare
    // "nan" token makes the whole report unparseable downstream.
    out << "{\n  \"summary\": {"
        << "\"instances\": " << report.records.size()
        << ", \"sat\": " << report.sat
        << ", \"unsat\": " << report.unsat
        << ", \"unknown\": " << report.unknown
        << ", \"timeouts\": " << report.timeouts
        << ", \"skipped\": " << report.skipped
        << ", \"errors\": " << report.errors
        << ", \"wall_s\": " << jsonNumber(report.wall_s)
        << "},\n  \"instances\": [\n";
    for (std::size_t i = 0; i < report.records.size(); ++i) {
        const InstanceRecord &r = report.records[i];
        out << "    {\"name\": \"" << jsonEscape(r.name)
            << "\", \"path\": \"" << jsonEscape(r.path)
            << "\", \"status\": \"" << jsonEscape(r.status)
            << "\", \"winner\": \"" << jsonEscape(r.winner)
            << "\", \"wall_s\": " << jsonNumber(r.wall_s)
            << ", \"vars\": " << r.vars
            << ", \"clauses\": " << r.clauses
            << ", \"iterations\": " << r.iterations
            << ", \"conflicts\": " << r.conflicts
            << ", \"restarts\": " << r.restarts
            << ", \"propagations\": " << r.propagations
            << ", \"qa_samples\": " << r.qa_samples
            << ", \"time\": {\"frontend_s\": " << jsonNumber(r.frontend_s)
            << ", \"qa_device_s\": " << jsonNumber(r.qa_device_s)
            << ", \"qa_blocking_s\": " << jsonNumber(r.qa_blocking_s)
            << ", \"backend_s\": " << jsonNumber(r.backend_s)
            << ", \"cdcl_s\": " << jsonNumber(r.cdcl_s) << "}";
        out << ", \"metrics\": {";
        for (std::size_t k = 0; k < r.metrics.size(); ++k) {
            out << (k ? ", " : "") << '"'
                << jsonEscape(r.metrics[k].first)
                << "\": " << jsonNumber(r.metrics[k].second);
        }
        out << "}}" << (i + 1 < report.records.size() ? "," : "")
            << "\n";
    }
    out << "  ]\n}\n";
}

void
BatchRunner::writeCsv(const BatchReport &report, std::ostream &out)
{
    out << "name,path,status,winner,wall_s,vars,clauses,iterations,"
           "conflicts,restarts,propagations,qa_samples,frontend_s,"
           "qa_device_s,qa_blocking_s,backend_s,cdcl_s\n";
    for (const InstanceRecord &r : report.records) {
        out << r.name << ',' << r.path << ',' << r.status << ','
            << r.winner << ',' << jsonNumber(r.wall_s) << ','
            << r.vars << ',' << r.clauses << ',' << r.iterations
            << ',' << r.conflicts << ',' << r.restarts << ','
            << r.propagations << ',' << r.qa_samples << ','
            << jsonNumber(r.frontend_s) << ','
            << jsonNumber(r.qa_device_s) << ','
            << jsonNumber(r.qa_blocking_s) << ','
            << jsonNumber(r.backend_s) << ','
            << jsonNumber(r.cdcl_s) << "\n";
    }
}

} // namespace hyqsat::portfolio
