/**
 * @file
 * Portfolio racing above the hybrid loop: N HybridSolver workers on
 * threads over the same formula, each with a diversified
 * configuration (sampler backend, pipeline depth, seeds, branching,
 * warm-up window, clause-queue shape), first decisive answer wins.
 *
 * Losers are cancelled cooperatively through one shared StopToken
 * threaded into every cancellation point grown for this layer: the
 * CDCL decision/conflict boundaries (src/sat), the hybrid iteration
 * hook (src/core) and the async sampler's blocking wait
 * (src/anneal). Optional clause sharing routes short learnt clauses
 * and first-UIP polarity hints through a bounded ClauseExchange with
 * the solver's root-level import path.
 *
 * Classical precedent: ManySAT/Plingeling-style portfolios, where
 * racing diverse configurations is the cheapest robust speedup on
 * 3-SAT; the paper's own §IV-A randomness (random top-30 clause-
 * queue head) is one of the diversification axes.
 */

#ifndef HYQSAT_PORTFOLIO_PORTFOLIO_H
#define HYQSAT_PORTFOLIO_PORTFOLIO_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/hybrid_solver.h"
#include "portfolio/exchange.h"
#include "sat/cnf.h"
#include "util/cancel.h"

namespace hyqsat::portfolio {

/** One worker slot: a hybrid configuration plus a display label. */
struct WorkerConfig
{
    std::string label;
    core::HybridConfig hybrid;
};

/** Portfolio-level options. */
struct PortfolioOptions
{
    /** Template configuration diversified across workers. */
    core::HybridConfig base;

    /** Worker threads racing the formula. */
    int num_workers = 4;

    /**
     * Explicit worker configs; when empty, diversify(base,
     * num_workers) builds the slate.
     */
    std::vector<WorkerConfig> workers;

    /** Wall-clock budget in seconds; 0 = unlimited. */
    double timeout_s = 0.0;

    /** Per-worker conflict budget; negative = unlimited. */
    std::int64_t conflict_budget = -1;

    /**
     * Caller-side cancellation: observed by the watchdog and
     * propagated to every worker. nullptr = none.
     */
    const StopToken *external_stop = nullptr;

    /** Share short learnt clauses + polarity hints across workers. */
    bool share_clauses = true;

    /** Max literals of a shared clause (ManySAT shares len <= 2). */
    int share_max_len = 2;

    /** Exchange ring capacity (oldest dropped on overflow). */
    int share_capacity = 4096;

    /** Seed exporters' first-UIP polarity into importers' phases. */
    bool share_polarity = true;

    /**
     * Observability: each worker records into a private registry
     * (no cross-thread contention on the hot handles); after the
     * race the per-worker registries are merged here along with the
     * portfolio-level counters (races, decisions, timeouts, win
     * counts per label, clause-exchange totals) and the cancel-
     * latency timer. Worker start/done/winner events stream to this
     * registry's trace sink live. nullptr records nothing.
     */
    MetricsRegistry *metrics = nullptr;
};

/** Per-worker outcome (losers report whatever they had at stop). */
struct WorkerReport
{
    std::string label;
    sat::lbool status = sat::l_Undef;
    bool winner = false;
    double seconds = 0.0; ///< thread wall clock, start to return
    std::uint64_t iterations = 0;
    std::uint64_t conflicts = 0;
    int qa_samples = 0;
    std::uint64_t exported_clauses = 0;
    std::uint64_t imported_clauses = 0;
};

/** Result of a portfolio race. */
struct PortfolioResult
{
    sat::lbool status = sat::l_Undef;
    std::vector<bool> model; ///< valid when status.isTrue()

    int winner = -1; ///< index into workers; -1 = nobody decided
    std::string winner_label;
    core::HybridResult winner_result; ///< full breakdown of the winner

    double wall_s = 0.0;

    /**
     * Seconds from the winner publishing its answer to the last
     * loser returning (the cooperative-cancellation latency; the
     * acceptance bar is < 50 ms).
     */
    double cancel_latency_s = 0.0;

    bool timed_out = false;      ///< the timeout watchdog fired
    bool external_stopped = false; ///< caller's token tripped first

    std::vector<WorkerReport> workers;
    ExchangeStats exchange;
};

/** Diverse-config racing solver. */
class PortfolioSolver
{
  public:
    explicit PortfolioSolver(PortfolioOptions opts);

    /**
     * Race the formula. Returns the first decisive answer (SAT
     * models are verified; UNSAT is trusted from any worker since
     * every config runs a sound CDCL core). With one worker and no
     * sharing this reproduces HybridSolver::solve bit for bit.
     */
    PortfolioResult solve(const sat::Cnf &formula);

    /**
     * The diversification table: slot 0 is the base config
     * unchanged (so a 1-worker portfolio is exactly the single
     * solver); later slots vary sampler backend, pipeline depth,
     * branching, warm-up, clause-queue head selection,
     * inprocessing strength and parallel lockstep reads (the
     * dedicated reads-batch slot), each with decorrelated seeds.
     * Cycles with fresh seeds past the table.
     */
    static std::vector<WorkerConfig>
    diversify(const core::HybridConfig &base, int n);

    const PortfolioOptions &options() const { return opts_; }

  private:
    PortfolioOptions opts_;
};

} // namespace hyqsat::portfolio

#endif // HYQSAT_PORTFOLIO_PORTFOLIO_H
