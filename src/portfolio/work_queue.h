/**
 * @file
 * Thread-safe FIFO work queue feeding solver pools. Grown for the
 * batch runner's instance paths, reused by the service layer's
 * multi-tenant scheduler (one queue per tenant, job ids as items).
 */

#ifndef HYQSAT_PORTFOLIO_WORK_QUEUE_H
#define HYQSAT_PORTFOLIO_WORK_QUEUE_H

#include <deque>
#include <mutex>
#include <string>

namespace hyqsat::portfolio {

/** Thread-safe FIFO of work items (paths, job ids). */
class WorkQueue
{
  public:
    /** Enqueue one item. */
    void push(std::string item);

    /**
     * Dequeue the next item into @p out.
     * @return false when the queue is empty.
     */
    bool pop(std::string &out);

    /** Items currently queued. */
    std::size_t size() const;

  private:
    mutable std::mutex mutex_;
    std::deque<std::string> queue_;
};

} // namespace hyqsat::portfolio

#endif // HYQSAT_PORTFOLIO_WORK_QUEUE_H
