/**
 * @file
 * Bounded, lock-guarded clause/hint exchange between portfolio
 * workers. Exporters publish short learnt clauses; importers fetch
 * everything published by *other* workers since their last fetch and
 * attach it through sat::Solver::importClause at the root level.
 *
 * The buffer is a ring over absolute sequence numbers: when it
 * overflows, the oldest entries are dropped (sharing is a heuristic
 * accelerator, never required for soundness, so losing old clauses
 * is fine). Per-worker read cursors make fetch O(new entries) and
 * give each worker exactly-once delivery of whatever was still
 * buffered.
 *
 * Polarity hints ride on the clauses themselves: the first literal
 * of an exported clause is the asserting (first-UIP) literal — the
 * direction the exporter's conflict drove that variable — so the
 * importer seeds its phase saving with it (Solver::suggestPhase, a
 * soft hint later assignments overwrite).
 */

#ifndef HYQSAT_PORTFOLIO_EXCHANGE_H
#define HYQSAT_PORTFOLIO_EXCHANGE_H

#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "sat/types.h"

namespace hyqsat::portfolio {

/** Exchange counters (totals over the run; read after join). */
struct ExchangeStats
{
    std::uint64_t published = 0;    ///< accepted into the buffer
    std::uint64_t rejected_len = 0; ///< longer than max_len
    std::uint64_t overflowed = 0;   ///< dropped as oldest on overflow
    std::uint64_t fetched = 0;      ///< delivered to importers
};

/** Thread-safe bounded clause buffer with per-worker cursors. */
class ClauseExchange
{
  public:
    struct Options
    {
        /** Only clauses up to this many literals are shared. */
        int max_len = 2;

        /** Ring capacity; oldest entries are dropped on overflow. */
        int capacity = 4096;
    };

    ClauseExchange(int num_workers, Options opts);

    /**
     * Publish a learnt clause from @p worker. Clauses longer than
     * max_len are rejected (cheap length check before the lock).
     */
    void publish(int worker, const sat::LitVec &lits);

    /**
     * Append every clause published by other workers since @p
     * worker's last fetch to @p out. Entries already evicted by
     * overflow are silently skipped.
     */
    void fetch(int worker, std::vector<sat::LitVec> &out);

    /** Totals; safe to call any time, meaningful after workers join. */
    ExchangeStats stats() const;

  private:
    struct Entry
    {
        int source;
        sat::LitVec lits;
    };

    Options opts_;
    mutable std::mutex mutex_;
    std::deque<Entry> ring_;       ///< [base_seq_, base_seq_+size)
    std::uint64_t base_seq_ = 0;   ///< sequence of ring_.front()
    std::vector<std::uint64_t> cursor_; ///< next unread seq per worker
    ExchangeStats stats_;
};

} // namespace hyqsat::portfolio

#endif // HYQSAT_PORTFOLIO_EXCHANGE_H
