#include "portfolio/work_queue.h"

namespace hyqsat::portfolio {

void
WorkQueue::push(std::string item)
{
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(item));
}

bool
WorkQueue::pop(std::string &out)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty())
        return false;
    out = std::move(queue_.front());
    queue_.pop_front();
    return true;
}

std::size_t
WorkQueue::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

} // namespace hyqsat::portfolio
