#include "portfolio/exchange.h"

#include <algorithm>

#include "util/logging.h"

namespace hyqsat::portfolio {

ClauseExchange::ClauseExchange(int num_workers, Options opts)
    : opts_(opts), cursor_(static_cast<std::size_t>(num_workers), 0)
{
    if (num_workers <= 0)
        fatal("ClauseExchange needs at least one worker");
    opts_.max_len = std::max(opts_.max_len, 1);
    opts_.capacity = std::max(opts_.capacity, 1);
}

void
ClauseExchange::publish(int worker, const sat::LitVec &lits)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (static_cast<int>(lits.size()) > opts_.max_len) {
        ++stats_.rejected_len;
        return;
    }
    ring_.push_back(Entry{worker, lits});
    ++stats_.published;
    if (static_cast<int>(ring_.size()) > opts_.capacity) {
        ring_.pop_front();
        ++base_seq_;
        ++stats_.overflowed;
    }
}

void
ClauseExchange::fetch(int worker, std::vector<sat::LitVec> &out)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t &cursor = cursor_[worker];
    cursor = std::max(cursor, base_seq_); // skip evicted entries
    const std::uint64_t end = base_seq_ + ring_.size();
    for (; cursor < end; ++cursor) {
        const Entry &e = ring_[cursor - base_seq_];
        if (e.source == worker)
            continue; // never re-import your own clause
        out.push_back(e.lits);
        ++stats_.fetched;
    }
}

ExchangeStats
ClauseExchange::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace hyqsat::portfolio
