/**
 * @file
 * Batch DIMACS service: streams many instances (directory, file
 * list, or stdin manifest) through portfolio workers on a thread
 * pool, with per-instance timeout and memory budgets, structured
 * per-instance result records and JSON/CSV report output. This is
 * the serving layer the ROADMAP's "heavy traffic" north star builds
 * on: one process, bounded resources, machine-readable results.
 */

#ifndef HYQSAT_PORTFOLIO_BATCH_RUNNER_H
#define HYQSAT_PORTFOLIO_BATCH_RUNNER_H

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "portfolio/portfolio.h"

namespace hyqsat::portfolio {

/** Thread-safe FIFO of instance paths feeding the pool. */
class WorkQueue
{
  public:
    /** Enqueue one instance path. */
    void push(std::string path);

    /**
     * Dequeue the next path into @p out.
     * @return false when the queue is empty.
     */
    bool pop(std::string &out);

    /** Jobs currently queued. */
    std::size_t size() const;

  private:
    mutable std::mutex mutex_;
    std::deque<std::string> queue_;
};

/** One instance's outcome (a row of the batch report). */
struct InstanceRecord
{
    std::string name; ///< file stem
    std::string path;

    /**
     * "SAT", "UNSAT", "UNKNOWN" (budget exhausted), "TIMEOUT"
     * (wall-clock budget fired), "SKIPPED" (memory budget),
     * "PARSE_ERROR".
     */
    std::string status;

    std::string winner; ///< winning worker label ("" if none)
    double wall_s = 0.0;
    int vars = 0;
    int clauses = 0;
    std::uint64_t iterations = 0;
    std::uint64_t conflicts = 0;
    int qa_samples = 0;

    /** Totals over every raced worker (from the instance registry). */
    std::uint64_t restarts = 0;
    std::uint64_t propagations = 0;

    /** Winner's host/device time breakdown (zeros if no winner). */
    double frontend_s = 0.0;
    double qa_device_s = 0.0;
    double qa_blocking_s = 0.0;
    double backend_s = 0.0;
    double cdcl_s = 0.0;

    /**
     * Flat snapshot of the instance's full metrics registry
     * (portfolio + solver + pipeline + backend), embedded as the
     * "metrics" object of the JSON report row.
     */
    std::vector<std::pair<std::string, double>> metrics;
};

/** Whole-batch outcome. */
struct BatchReport
{
    std::vector<InstanceRecord> records; ///< input order
    double wall_s = 0.0;
    int sat = 0;
    int unsat = 0;
    int unknown = 0;
    int timeouts = 0;
    int skipped = 0;
    int errors = 0;

    /** True iff every instance decided (no UNKNOWN/TIMEOUT/error). */
    bool allDecided() const
    {
        return unknown == 0 && timeouts == 0 && skipped == 0 &&
               errors == 0;
    }
};

/** Batch-service options. */
struct BatchOptions
{
    /** Portfolio configuration applied per instance. */
    PortfolioOptions portfolio;

    /** Instances solved concurrently (pool threads). Each one runs
     *  portfolio.num_workers solver threads of its own. */
    int concurrency = 2;

    /** Per-instance wall-clock budget (seconds); 0 = unlimited.
     *  Overrides portfolio.timeout_s when set. */
    double instance_timeout_s = 0.0;

    /**
     * Per-instance memory budget in MB, enforced as an admission
     * guard on the parsed formula's estimated footprint (clause
     * arena + watches + per-worker duplication); 0 = unlimited.
     * Instances over budget are SKIPPED, not attempted — a soft
     * budget, but one that can never OOM the service.
     */
    std::size_t memory_budget_mb = 0;

    /** Caller-side cancellation for the whole batch. */
    const StopToken *external_stop = nullptr;

    /**
     * Observability: each instance solves against a private registry
     * (snapshotted into its InstanceRecord), then merges here under
     * the runner's lock — so the file a CLI dumps holds whole-batch
     * totals. Instance begin/done events stream to this registry's
     * trace sink. nullptr records nothing.
     */
    MetricsRegistry *metrics = nullptr;
};

/** The thread-pool batch service. */
class BatchRunner
{
  public:
    explicit BatchRunner(BatchOptions opts);

    /** Solve every path; records come back in input order. */
    BatchReport run(const std::vector<std::string> &paths);

    /** Every *.cnf / *.dimacs file under @p dir (sorted). */
    static std::vector<std::string>
    collectCnfFiles(const std::string &dir);

    /** One path per non-empty, non-comment ('#') line. */
    static std::vector<std::string> readManifest(std::istream &in);

    /** Estimated solve-time footprint of a formula (MB). */
    static std::size_t estimateMemoryMb(const sat::Cnf &cnf,
                                        int num_workers);

    static void writeJson(const BatchReport &report, std::ostream &out);
    static void writeCsv(const BatchReport &report, std::ostream &out);

  private:
    InstanceRecord solveOne(const std::string &path);

    BatchOptions opts_;
    std::mutex metrics_mutex_; ///< serializes merges into opts_.metrics
};

} // namespace hyqsat::portfolio

#endif // HYQSAT_PORTFOLIO_BATCH_RUNNER_H
