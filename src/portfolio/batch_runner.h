/**
 * @file
 * Batch DIMACS service: streams many instances (directory, file
 * list, or stdin manifest) through portfolio workers, with
 * per-instance timeout and memory budgets, structured per-instance
 * result records and JSON/CSV report output.
 *
 * Since the service-layer refactor this is a thin client of
 * service::JobScheduler: the runner submits every path as a job of
 * the "batch" tenant, waits for the records in input order, and
 * assembles the report with the shared writers in service/report.h.
 * The scheduling, budgeting, cancellation and metrics machinery all
 * live in src/service/ — shared with the persistent daemon.
 */

#ifndef HYQSAT_PORTFOLIO_BATCH_RUNNER_H
#define HYQSAT_PORTFOLIO_BATCH_RUNNER_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "portfolio/portfolio.h"
#include "portfolio/work_queue.h"
#include "service/report.h"

namespace hyqsat::portfolio {

/** One instance's outcome (a row of the batch report). */
using InstanceRecord = service::InstanceRecord;

/** Whole-batch outcome. */
using BatchReport = service::BatchReport;

/** Batch-service options. */
struct BatchOptions
{
    /** Portfolio configuration applied per instance. */
    PortfolioOptions portfolio;

    /** Instances solved concurrently (pool threads). Each one runs
     *  portfolio.num_workers solver threads of its own. */
    int concurrency = 2;

    /** Per-instance wall-clock budget (seconds); 0 = unlimited.
     *  Overrides portfolio.timeout_s when set. */
    double instance_timeout_s = 0.0;

    /**
     * Per-instance memory budget in MB, enforced as an admission
     * guard on the parsed formula's estimated footprint (clause
     * arena + watches + per-worker duplication); 0 = unlimited.
     * Instances over budget are SKIPPED, not attempted — a soft
     * budget, but one that can never OOM the service.
     */
    std::size_t memory_budget_mb = 0;

    /** Caller-side cancellation for the whole batch (e.g. the
     *  SIGINT/SIGTERM token): stops accepting queued instances and
     *  cancels in-flight solves, leaving their records UNKNOWN. */
    const StopToken *external_stop = nullptr;

    /**
     * Observability: each instance solves against a private registry
     * (snapshotted into its InstanceRecord), then merges here — so
     * the file a CLI dumps holds whole-batch totals. Instance done
     * events stream to this registry's trace sink. nullptr records
     * nothing.
     */
    MetricsRegistry *metrics = nullptr;
};

/** The batch service: a one-shot client of service::JobScheduler. */
class BatchRunner
{
  public:
    explicit BatchRunner(BatchOptions opts);

    /** Solve every path; records come back in input order. */
    BatchReport run(const std::vector<std::string> &paths);

    /** Every *.cnf / *.dimacs file under @p dir (sorted). */
    static std::vector<std::string>
    collectCnfFiles(const std::string &dir);

    /** One path per non-empty, non-comment ('#') line. */
    static std::vector<std::string> readManifest(std::istream &in);

    /** Estimated solve-time footprint of a formula (MB). */
    static std::size_t estimateMemoryMb(const sat::Cnf &cnf,
                                        int num_workers);

    static void writeJson(const BatchReport &report, std::ostream &out);
    static void writeCsv(const BatchReport &report, std::ostream &out);

  private:
    BatchOptions opts_;
};

} // namespace hyqsat::portfolio

#endif // HYQSAT_PORTFOLIO_BATCH_RUNNER_H
