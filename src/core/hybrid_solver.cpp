#include "core/hybrid_solver.h"

#include <cmath>

#include "util/logging.h"
#include "util/timer.h"

namespace hyqsat::core {

HybridSolver::HybridSolver(const HybridConfig &config) : config_(config)
{
}

std::uint64_t
HybridSolver::estimateIterations(int num_vars, int num_clauses)
{
    // Empirical fit to the scale of Table I's classic-CDCL iteration
    // counts on random 3-SAT (only sqrt(K) matters downstream):
    // K ~ m * exp(0.012 n), clamped to a sane range.
    const double k = static_cast<double>(std::max(num_clauses, 16)) *
                     std::exp(0.012 * static_cast<double>(num_vars));
    return static_cast<std::uint64_t>(std::min(k, 1e12));
}

HybridResult
HybridSolver::solve(const sat::Cnf &formula)
{
    Timer total_timer;
    HybridResult result;
    result.status = sat::l_Undef;

    if (!formula.isThreeSat()) {
        fatal("HybridSolver requires 3-SAT input (longest clause has "
              "%d literals); convert with sat::toThreeSat first",
              formula.maxClauseSize());
    }

    const chimera::ChimeraGraph graph(config_.chimera_rows,
                                      config_.chimera_cols,
                                      config_.chimera_shore);
    Frontend frontend(graph, config_.frontend);
    Backend backend(config_.backend);
    anneal::QuantumAnnealer annealer(graph, config_.annealer);
    Rng rng(config_.seed);

    sat::Solver solver(config_.solver);
    if (!solver.loadCnf(formula)) {
        result.status = sat::l_False;
        result.stats = solver.stats();
        result.time.cdcl_s = total_timer.seconds();
        return result;
    }

    std::int64_t warmup = config_.warmup_override;
    if (warmup < 0) {
        warmup = static_cast<std::int64_t>(std::llround(std::sqrt(
            static_cast<double>(estimateIterations(
                formula.numVars(), formula.numClauses())))));
    }
    warmup = std::min(warmup, config_.max_warmup);

    bool qa_solved = false;
    std::vector<bool> qa_model;

    // The clause queue's activity basis only changes when conflicts
    // arise (SIV-A: "the top-30 clauses are dynamically updated when
    // conflict arises"), so the frontend result is cached across
    // conflict-free decision stretches and only rebuilt after a new
    // conflict - this is the paper's pipelining of embedding with
    // queue maintenance.
    FrontendResult cached_fe;
    bool have_fe = false;
    std::uint64_t fe_conflicts = ~0ull;

    solver.setIterationHook([&](sat::Solver &s) {
        if (static_cast<std::int64_t>(s.stats().iterations) >= warmup) {
            // Warm-up over. The QA polarity hints stay in force for
            // the remaining search ("maintain the variable
            // assignments", SV-B) - clearing them was evaluated and
            // measurably hurt.
            return;
        }
        ++result.warmup_iterations;

        if (!have_fe || s.stats().conflicts != fe_conflicts) {
            cached_fe = frontend.run(s, rng);
            have_fe = true;
            fe_conflicts = s.stats().conflicts;
            result.time.frontend_s += cached_fe.seconds;
        }
        const FrontendResult &fe = cached_fe;
        if (fe.embedded_clauses.empty())
            return;

        Timer qa_timer;
        anneal::AnnealSample sample;
        if (config_.use_embedding) {
            sample = annealer.sample(fe.embedded.problem,
                                     fe.embedded.embedding);
        } else {
            sample = annealer.sampleLogical(fe.embedded.problem);
        }
        result.time.qa_host_s += qa_timer.seconds();
        result.time.qa_device_s += sample.device_time_us * 1e-6;
        ++result.qa_samples;
        result.chain_breaks += sample.chain_breaks;

        const BackendOutcome outcome =
            backend.apply(s, fe, sample, formula);
        result.time.backend_s += outcome.seconds;
        if (outcome.strategy >= 1 && outcome.strategy <= 4)
            ++result.strategy_count[outcome.strategy];
        if (outcome.solved) {
            qa_solved = true;
            qa_model = outcome.model;
            s.requestStop();
        }
    });

    const sat::lbool status = solver.solve();
    result.stats = solver.stats();

    if (qa_solved) {
        result.status = sat::l_True;
        result.model = std::move(qa_model);
        result.solved_by_qa = true;
        if (!formula.eval(result.model))
            panic("strategy-1 model failed verification");
    } else {
        result.status = status;
        if (status.isTrue()) {
            result.model = solver.boolModel();
            if (!formula.eval(result.model))
                panic("CDCL model failed verification");
        }
    }

    const double total = total_timer.seconds();
    result.time.cdcl_s =
        std::max(0.0, total - result.time.frontend_s -
                          result.time.backend_s - result.time.qa_host_s);
    return result;
}

HybridResult
solveClassicCdcl(const sat::Cnf &formula, const sat::SolverOptions &opts)
{
    Timer timer;
    HybridResult result;
    sat::Solver solver(opts);
    if (!solver.loadCnf(formula)) {
        result.status = sat::l_False;
        result.stats = solver.stats();
        result.time.cdcl_s = timer.seconds();
        return result;
    }
    result.status = solver.solve();
    result.stats = solver.stats();
    if (result.status.isTrue())
        result.model = solver.boolModel();
    result.time.cdcl_s = timer.seconds();
    return result;
}

} // namespace hyqsat::core
