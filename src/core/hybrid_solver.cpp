#include "core/hybrid_solver.h"

#include <cmath>

#include "core/pipeline.h"
#include "util/logging.h"
#include "util/timer.h"

namespace hyqsat::core {

HybridSolver::HybridSolver(const HybridConfig &config)
    : config_(config),
      graph_(config.topology, config.chimera_rows,
             config.chimera_cols, config.chimera_shore)
{
}

anneal::SamplerSpec
hybridSamplerSpec(const HybridConfig &config)
{
    anneal::SamplerSpec spec;
    spec.name = config.sampler;
    spec.annealer = config.annealer;
    // The top-level knob and a directly-configured annealer option
    // compose as "whoever asks for more reads wins".
    spec.annealer.num_reads =
        std::max({config.num_reads, config.annealer.num_reads, 1});
    spec.annealer.reads_batch =
        config.reads_batch || config.annealer.reads_batch;
    spec.annealer.reads_groups =
        config.reads_groups > 0 ? config.reads_groups
                                : config.annealer.reads_groups;
    spec.batch_samples = config.batch_samples;
    spec.pipeline_depth = std::max(config.pipeline_depth, 2);
    spec.rtt_us = config.rtt_us;
    spec.stop = config.stop;
    // A depth >= 2 turns any named synchronous backend into an async
    // pipeline; spelling "async" works too and defaults to depth 2.
    if (config.pipeline_depth >= 2 &&
        spec.name.rfind("async", 0) != 0) {
        spec.name = spec.name.empty() || spec.name == "sync"
                        ? "async"
                        : "async:" + spec.name;
    }
    return spec;
}

anneal::SamplerSpec
HybridSolver::samplerSpec() const
{
    return hybridSamplerSpec(config_);
}

std::uint64_t
HybridSolver::estimateIterations(int num_vars, int num_clauses)
{
    // Empirical fit to the scale of Table I's classic-CDCL iteration
    // counts on random 3-SAT (only sqrt(K) matters downstream):
    // K ~ m * exp(0.012 n), clamped to a sane range.
    const double k = static_cast<double>(std::max(num_clauses, 16)) *
                     std::exp(0.012 * static_cast<double>(num_vars));
    return static_cast<std::uint64_t>(std::min(k, 1e12));
}

HybridResult
HybridSolver::solve(const sat::Cnf &formula)
{
    Timer total_timer;
    HybridResult result;
    result.status = sat::l_Undef;

    if (!formula.isThreeSat()) {
        fatal("HybridSolver requires 3-SAT input (longest clause has "
              "%d literals); convert with sat::toThreeSat first",
              formula.maxClauseSize());
    }

    // Per-solve registry: the single source of truth every stat /
    // time field of HybridResult is a view over. Folded into the
    // configured external registry (if any) on the way out, so
    // counters there accumulate across solves; trace events stream
    // to the external sink live.
    MetricsRegistry metrics;
    if (config_.metrics)
        metrics.setTrace(config_.metrics->trace());

    // Inprocess first: the whole loop below — CDCL, clause queue,
    // embedding, backend feedback — runs on the simplified formula,
    // so fewer/shorter clauses reach the annealer per iteration.
    // Only the final model check is against the original input.
    simplify::Result simp;
    const bool simplified =
        config_.simplify_strength != simplify::Strength::Off;
    if (simplified) {
        simp = simplify::Pipeline(
                   simplify::Options::preset(
                       config_.simplify_strength),
                   &metrics)
                   .run(formula);
        if (!simp.satisfiable_possible) {
            result.status = sat::l_False;
            result.time.cdcl_s = total_timer.seconds();
            metrics.timer("hybrid.total")->add(result.time.cdcl_s);
            if (config_.metrics)
                config_.metrics->merge(metrics);
            return result;
        }
    }
    const sat::Cnf &work = simplified ? simp.cnf : formula;

    Frontend frontend(graph_, config_.frontend, &metrics);
    Backend backend(config_.backend, &metrics);
    // A fresh sampler per solve keeps repeated solves reproducible
    // (the backend Rng streams restart from the configured seed).
    anneal::SamplerSpec spec = samplerSpec();
    spec.metrics = &metrics; // anneal.* counters land per-solve
    const std::unique_ptr<anneal::Sampler> sampler =
        anneal::makeSampler(spec, graph_);
    Rng rng(config_.seed);

    sat::Solver solver(config_.solver);
    solver.attachMetrics(&metrics);
    if (config_.stop)
        solver.setStopToken(config_.stop);
    if (config_.learnt_export)
        solver.setLearntExportHook(config_.learnt_export);
    if (config_.root_hook)
        solver.setRootHook(config_.root_hook);
    if (!solver.loadCnf(work)) {
        result.status = sat::l_False;
        result.stats = solver.stats();
        result.time.cdcl_s = total_timer.seconds();
        metrics.timer("hybrid.total")->add(result.time.cdcl_s);
        if (config_.metrics)
            config_.metrics->merge(metrics);
        return result;
    }

    std::int64_t warmup = config_.warmup_override;
    if (warmup < 0) {
        warmup = static_cast<std::int64_t>(std::llround(std::sqrt(
            static_cast<double>(estimateIterations(
                work.numVars(), work.numClauses())))));
    }
    warmup = std::min(warmup, config_.max_warmup);

    bool qa_solved = false;
    std::vector<bool> qa_model;

    // The clause queue's activity basis only changes when conflicts
    // arise (SIV-A: "the top-30 clauses are dynamically updated when
    // conflict arises"), so the pipeline caches the frontend pass
    // across conflict-free decision stretches and tags every
    // submission with its conflict epoch - completions from an older
    // epoch are stale and discarded.
    SamplePipeline pipeline(frontend, *sampler, rng,
                            config_.use_embedding, &metrics);
    std::vector<ReadySample> ready;

    Counter *const warmup_counter =
        metrics.counter("hybrid.warmup_iterations");

    solver.setIterationHook([&](sat::Solver &s) {
        if (static_cast<std::int64_t>(s.stats().iterations) >= warmup) {
            // Warm-up over. The QA polarity hints stay in force for
            // the remaining search ("maintain the variable
            // assignments", SV-B) - clearing them was evaluated and
            // measurably hurt. In-flight samples are abandoned; the
            // sampler finishes (or drops) them on destruction.
            return;
        }
        if (config_.stop && config_.stop->stopRequested()) {
            // Cancelled: don't submit new sampling work; the solver
            // observes the same token at this decision boundary.
            return;
        }
        warmup_counter->add();

        ready.clear();
        pipeline.step(s, s.stats().conflicts, ready);

        for (ReadySample &rs : ready) {
            const BackendOutcome outcome =
                backend.apply(s, *rs.frontend, rs.sample, work);
            if (outcome.solved) {
                qa_solved = true;
                qa_model = outcome.model;
                s.requestStop();
                break;
            }
        }
    });

    if (pipeline.asynchronous()) {
        // Completion-notification point: reconcile in-flight samples
        // at every conflict so stale work is retired (and pipeline
        // slots freed) before the next decision. The synchronous
        // pipeline never has work in flight between hooks.
        solver.setConflictHook([&](sat::Solver &s) {
            pipeline.notifyConflict(s.stats().conflicts);
        });
    }

    const sat::lbool status = solver.solve();
    result.stats = solver.stats();

    // Views over the per-solve registry: pipeline, backend and
    // warm-up numbers all read back from the one place they were
    // recorded (no parallel hand-copied accounting).
    const PipelineStats ps = pipeline.stats();
    result.qa_submitted = ps.submitted;
    result.qa_stale = ps.stale_discarded;
    result.chain_breaks = ps.chain_breaks;
    result.time.frontend_s = ps.frontend_s;
    result.time.qa_device_s = ps.device_s;
    result.time.qa_host_s = ps.host_sample_s;
    result.time.qa_inflight_s = ps.inflight_s;
    result.time.qa_blocking_s = ps.blocking_s;
    result.time.stalls = ps.stalls;

    result.warmup_iterations =
        static_cast<int>(warmup_counter->value());
    result.qa_samples =
        static_cast<int>(metrics.counter("backend.samples")->value());
    result.time.backend_s = metrics.timer("backend.apply")->seconds();
    for (int k = 1; k <= 4; ++k) {
        result.strategy_count[static_cast<std::size_t>(k)] =
            metrics.counter("backend.strategy" + std::to_string(k))
                ->value();
    }

    if (qa_solved) {
        result.status = sat::l_True;
        result.model = simplified
                           ? simp.extendModel(std::move(qa_model))
                           : std::move(qa_model);
        result.solved_by_qa = true;
        if (!formula.eval(result.model))
            panic("strategy-1 model failed verification");
    } else {
        result.status = status;
        if (status.isTrue()) {
            result.model = simplified
                               ? simp.extendModel(solver.boolModel())
                               : solver.boolModel();
            if (!formula.eval(result.model))
                panic("CDCL model failed verification");
        }
    }

    // Host CDCL time is what remains of the measured wall clock.
    // The device-simulation cost is only subtracted when it ran on
    // this thread (synchronous backends); async workers overlap it
    // with the search, so it never blocked the loop.
    const double total = total_timer.seconds();
    const double sim_cost =
        pipeline.asynchronous() ? 0.0 : result.time.qa_host_s;
    result.time.cdcl_s =
        std::max(0.0, total - result.time.frontend_s -
                          result.time.backend_s - sim_cost);
    metrics.timer("hybrid.total")->add(total);
    metrics.timer("hybrid.cdcl")->add(result.time.cdcl_s);
    if (config_.metrics)
        config_.metrics->merge(metrics);
    return result;
}

HybridResult
solveClassicCdcl(const sat::Cnf &formula, const sat::SolverOptions &opts,
                 const StopToken *stop, MetricsRegistry *metrics)
{
    Timer timer;
    HybridResult result;
    sat::Solver solver(opts);
    solver.attachMetrics(metrics);
    if (stop)
        solver.setStopToken(stop);
    if (!solver.loadCnf(formula)) {
        result.status = sat::l_False;
        result.stats = solver.stats();
        result.time.cdcl_s = timer.seconds();
    } else {
        result.status = solver.solve();
        result.stats = solver.stats();
        if (result.status.isTrue())
            result.model = solver.boolModel();
        result.time.cdcl_s = timer.seconds();
    }
    if (metrics) {
        metrics->timer("hybrid.total")->add(result.time.cdcl_s);
        metrics->timer("hybrid.cdcl")->add(result.time.cdcl_s);
    }
    return result;
}

} // namespace hyqsat::core
