/**
 * @file
 * HyQSAT frontend (§IV): clause-queue generation, QUBO encoding with
 * coefficient adjustment, and linear-time hardware embedding. One
 * run produces everything the annealer needs for one sample.
 */

#ifndef HYQSAT_CORE_FRONTEND_H
#define HYQSAT_CORE_FRONTEND_H

#include <vector>

#include "chimera/chimera.h"
#include "core/clause_queue.h"
#include "embed/hyqsat_embedder.h"
#include "sat/solver.h"
#include "util/rng.h"

namespace hyqsat::core {

/** Frontend configuration. */
struct FrontendOptions
{
    ClauseQueueOptions queue;
    embed::HyQsatEmbedderOptions embedder;
};

/** Output of one frontend pass. */
struct FrontendResult
{
    /** Queue of original-clause indices. */
    std::vector<int> queue;

    /** Embedding + encoding of the embedded queue prefix. */
    embed::QueueEmbedResult embedded;

    /** Original-clause indices actually embedded. */
    std::vector<int> embedded_clauses;

    /**
     * True when every currently-unsatisfied original clause was
     * queued and embedded: a zero-energy sample then satisfies the
     * whole remaining formula (strategy 1 precondition).
     */
    bool covers_all_unsatisfied = false;

    /** Host CPU seconds for queue + encode + embed. */
    double seconds = 0.0;
};

/** The frontend pipeline. */
class Frontend
{
  public:
    Frontend(const chimera::ChimeraGraph &graph,
             const FrontendOptions &opts)
        : graph_(graph), opts_(opts)
    {
    }

    /** Run one pass against the solver's current search state. */
    FrontendResult run(const sat::Solver &solver, Rng &rng) const;

  private:
    const chimera::ChimeraGraph &graph_;
    FrontendOptions opts_;
};

} // namespace hyqsat::core

#endif // HYQSAT_CORE_FRONTEND_H
