/**
 * @file
 * HyQSAT frontend (§IV): clause-queue generation, QUBO encoding with
 * coefficient adjustment, and linear-time hardware embedding. One
 * run produces everything the annealer needs for one sample.
 *
 * Fast path: a FrontendWorkspace owns every per-iteration buffer
 * (queue BFS marks, clause copies, embedder scratch, the embedding
 * cache), so steady-state runs are allocation-free; the
 * (embedding, encoding) pair is memoized by clause content, turning
 * the common identical-queue iteration into an O(hash) hit.
 */

#ifndef HYQSAT_CORE_FRONTEND_H
#define HYQSAT_CORE_FRONTEND_H

#include <memory>
#include <vector>

#include "chimera/chimera.h"
#include "core/clause_queue.h"
#include "embed/embed_cache.h"
#include "embed/hyqsat_embedder.h"
#include "sat/solver.h"
#include "util/rng.h"

namespace hyqsat {
class Counter;
class MetricTimer;
class MetricsRegistry;
} // namespace hyqsat

namespace hyqsat::core {

/** Frontend configuration. */
struct FrontendOptions
{
    ClauseQueueOptions queue;
    embed::HyQsatEmbedderOptions embedder;

    /**
     * Memoize (embedding, encoding) pairs by clause-queue content.
     * A cache hit shares the stored result (no recompute, no deep
     * copy); results are bit-identical either way since the embedder
     * and encoder are deterministic in the clause literals. Off =
     * ablation/bypass knob.
     */
    bool cache_embeddings = true;

    /** LRU entries kept per workspace cache. */
    int cache_capacity = 32;
};

/** Output of one frontend pass. */
struct FrontendResult
{
    /** Queue of original-clause indices. */
    std::vector<int> queue;

    /**
     * Embedding + encoding of the embedded queue prefix. Shared:
     * cache hits alias the stored entry, so consumers must treat it
     * as immutable. Frontend::run never returns null (an empty queue
     * yields a default-constructed QueueEmbedResult), but a
     * default-constructed FrontendResult holds null.
     */
    std::shared_ptr<const embed::QueueEmbedResult> embedded;

    /** Original-clause indices actually embedded. */
    std::vector<int> embedded_clauses;

    /**
     * True when every currently-unsatisfied original clause was
     * queued and embedded: a zero-energy sample then satisfies the
     * whole remaining formula (strategy 1 precondition).
     */
    bool covers_all_unsatisfied = false;

    /** Host CPU seconds for queue + encode + embed. */
    double seconds = 0.0;
};

/**
 * Per-caller buffers for Frontend::run. Owns the clause-queue
 * scratch, the clause-literal staging vector, the embedder scratch
 * and the embedding cache; reusing one workspace across iterations
 * makes the steady state allocation-free and enables cache hits.
 * Not thread-safe; one workspace per caller.
 */
struct FrontendWorkspace
{
    ClauseQueueWorkspace queue;
    std::vector<sat::LitVec> clauses;
    embed::EmbedderScratch embedder;
    embed::QueueEmbedCache cache;
};

/** The frontend pipeline. */
class Frontend
{
  public:
    /**
     * @param metrics optional registry: resolves frontend.runs,
     *        frontend.cache.{hits,misses,evictions},
     *        frontend.unsat.{incremental,scans} counters and the
     *        frontend.cache timer eagerly (so the keys exist in any
     *        dump even before the first run).
     */
    Frontend(const chimera::ChimeraGraph &graph,
             const FrontendOptions &opts,
             MetricsRegistry *metrics = nullptr);

    /**
     * Run one pass against the solver's current search state using a
     * one-shot workspace (every buffer allocated fresh; the cache
     * cannot carry across calls). Prefer the workspace overload on
     * any hot path.
     */
    FrontendResult run(const sat::Solver &solver, Rng &rng) const;

    /**
     * Workspace overload: identical output and RNG consumption, with
     * all scratch (and the embedding cache) living in @p ws.
     */
    FrontendResult run(const sat::Solver &solver, Rng &rng,
                       FrontendWorkspace &ws) const;

  private:
    const chimera::ChimeraGraph &graph_;
    FrontendOptions opts_;

    // Null when no registry was given (one branch per record site).
    Counter *runs_ = nullptr;
    Counter *cache_hits_ = nullptr;
    Counter *cache_misses_ = nullptr;
    Counter *cache_evictions_ = nullptr;
    Counter *unsat_incremental_ = nullptr;
    Counter *unsat_scans_ = nullptr;
    MetricTimer *cache_s_ = nullptr;
};

} // namespace hyqsat::core

#endif // HYQSAT_CORE_FRONTEND_H
