/**
 * @file
 * Incremental hybrid solving: an IPASIR-style session over the
 * HyQSAT loop. A Session accepts clauses and repeated
 * solve(assumptions) calls; between calls it retains everything a
 * fresh HybridSolver::solve would rebuild — the CDCL solver (learnt
 * clauses, VSIDS activity, saved polarities), the sampling pipeline
 * (frontend workspace with its embedding cache and compiled-slot
 * memos), and the simplify result the formula was compiled through.
 *
 * The simplify layer runs once per *compile*, not per solve:
 * assumptions and delta clauses are translated into the simplified
 * variable space with simplify::Result::mapLiteral. Assumption
 * variables are frozen (exempt from substitution and elimination) so
 * the translation exists; an assumption or delta clause that lands
 * on an already-eliminated variable triggers a freeze-and-recompile
 * instead of an error. All external surfaces — clauses, assumptions,
 * models and failed-assumption cores — speak the original variable
 * space.
 */

#ifndef HYQSAT_CORE_SESSION_H
#define HYQSAT_CORE_SESSION_H

#include <memory>
#include <set>
#include <vector>

#include "core/hybrid_solver.h"
#include "core/pipeline.h"

namespace hyqsat::core {

/** An incremental solving session. Not thread-safe; one per caller. */
class Session
{
  public:
    explicit Session(const HybridConfig &config = {});
    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /**
     * Append a clause (original variable space; at most 3 literals,
     * like every hybrid entry point — convert with sat::toThreeSat
     * first). Between solves the clause is mapped through the
     * current compile and attached to the running solver without
     * discarding learnt state; only a clause over an eliminated
     * variable forces a recompile at the next solve.
     *
     * @return false iff the formula is now *known* unsatisfiable
     *         regardless of assumptions. Detection is lazy before
     *         the first solve compiles the formula (a contradiction
     *         added then still yields l_False at the next solve).
     */
    bool addClause(sat::LitVec lits);

    /** Append every clause of @p cnf (see addClause). */
    bool addFormula(const sat::Cnf &cnf);

    /**
     * Mark a variable externally visible before the first solve
     * compiles the formula (assumption variables are frozen
     * automatically; use this for variables shared with other
     * sessions or future delta clauses to avoid recompiles).
     */
    void freeze(sat::Var v);

    /**
     * Solve the accumulated formula under @p assumptions, reusing
     * the session's warm state. Each call runs its own sqrt(K)
     * QA warm-up window on top of the iterations already spent.
     * On l_False, failedAssumptions() holds the clause over negated
     * assumptions the refutation used (empty when the formula is
     * unsatisfiable on its own). Result counters and times are
     * per-call deltas, comparable with HybridSolver::solve. The QA
     * queue-sampling stream restarts from the config seed each call,
     * so a repeated call pattern regenerates identical clause queues
     * and reuses the retained embedding memo.
     */
    HybridResult solve(const sat::LitVec &assumptions = {});

    /** Failed-assumption core of the last l_False solve. */
    const sat::LitVec &failedAssumptions() const
    {
        return final_conflict_;
    }

    /** The formula accumulated so far (original space). */
    const sat::Cnf &formula() const { return accumulated_; }

    /** Times the session recompiled (simplify + solver rebuild). */
    int recompiles() const { return recompiles_; }

    /** Solve calls issued. */
    int solves() const { return solves_; }

    /**
     * Session-lifetime registry: frontend.cache.*, pipeline.*,
     * solver.* and session.* counters accumulate here across solves
     * (merged into HybridConfig::metrics when the session closes).
     */
    const MetricsRegistry &metrics() const { return metrics_; }

    const HybridConfig &config() const { return config_; }

  private:
    /** Simplify the accumulated formula and rebuild the warm state. */
    void recompile();

    /**
     * Map this call's assumptions into the compile's variable space,
     * freezing + recompiling when one lands on an eliminated
     * variable. Fills @p mapped (deduplicated against nothing — the
     * solver tolerates duplicates) and @p amap with
     * (mapped, original) pairs for core map-back.
     * @return false iff an assumption is root-falsified (the caller
     *         returns l_False; final_conflict_ already holds the
     *         negated falsified assumptions).
     */
    bool mapAssumptions(
        const sat::LitVec &assumptions, sat::LitVec &mapped,
        std::vector<std::pair<sat::Lit, sat::Lit>> &amap);

    HybridConfig config_;
    chimera::ChimeraGraph graph_;
    MetricsRegistry metrics_;

    /** Everything ever added, original variable space. */
    sat::Cnf accumulated_;

    /** Explicit freezes plus every assumption variable ever seen. */
    std::set<sat::Var> frozen_;

    /** Current compile: simplify result + its formula + deltas. */
    simplify::Result simp_;
    sat::Cnf work_; ///< simp_.cnf plus mapped delta clauses
    bool compiled_ = false;
    bool need_recompile_ = false;
    bool formula_unsat_ = false; ///< UNSAT regardless of assumptions

    // Warm hybrid state, rebuilt only by recompile(). Declaration
    // order is destruction-safety order: pipeline_ references
    // frontend_, sampler_ and rng_, solver_ hooks reference
    // pipeline_ — members below are torn down before the ones above.
    Rng rng_{0};
    std::unique_ptr<Frontend> frontend_;
    std::unique_ptr<Backend> backend_;
    std::unique_ptr<anneal::Sampler> sampler_;
    std::unique_ptr<SamplePipeline> pipeline_;
    std::unique_ptr<sat::Solver> solver_;
    std::vector<ReadySample> ready_;

    sat::LitVec final_conflict_; ///< original-space failed core
    int recompiles_ = 0;
    int solves_ = 0;
};

} // namespace hyqsat::core

#endif // HYQSAT_CORE_SESSION_H
