#include "core/backend.h"

#include "util/timer.h"

namespace hyqsat::core {

BackendOutcome
Backend::apply(sat::Solver &solver, const FrontendResult &frontend,
               const anneal::AnnealSample &sample,
               const sat::Cnf &formula) const
{
    Timer timer;
    BackendOutcome out;
    const auto &problem = frontend.embedded.problem;
    if (problem.numNodes() == 0) {
        out.seconds = timer.seconds();
        return out;
    }

    out.cls = opts_.classifier.classify(sample.clause_energy);

    switch (out.cls) {
      case bayes::SatisfactionClass::Satisfiable:
        if (opts_.enable_strategy1 && frontend.covers_all_unsatisfied) {
            // Candidate model: trail values where assigned, QA values
            // for embedded variables, saved polarity elsewhere.
            std::vector<bool> model(formula.numVars(), false);
            for (sat::Var v = 0; v < formula.numVars(); ++v)
                model[v] = solver.value(v).isTrue();
            for (const auto &[v, node] : problem.var_node) {
                if (solver.value(v).isUndef())
                    model[v] = sample.node_bits[node];
            }
            if (formula.eval(model)) {
                out.strategy = 1;
                out.solved = true;
                out.model = std::move(model);
                out.seconds = timer.seconds();
                return out;
            }
        }
        [[fallthrough]]; // partial coverage: use as assignment hints
      case bayes::SatisfactionClass::NearSatisfiable:
        if (opts_.enable_strategy2) {
            out.strategy = 2;
            for (const auto &[v, node] : problem.var_node) {
                if (opts_.strategy2_soft_hints)
                    solver.suggestPhase(v, sample.node_bits[node]);
                else
                    solver.setPhase(v, sample.node_bits[node]);
                if (opts_.strategy2_prioritize)
                    solver.bumpVarPriority(v, opts_.priority_bump);
            }
        }
        break;

      case bayes::SatisfactionClass::Uncertain:
        out.strategy = 3;
        break;

      case bayes::SatisfactionClass::NearUnsatisfiable:
        if (opts_.enable_strategy4) {
            out.strategy = 4;
            for (const auto &[v, node] : problem.var_node)
                solver.bumpVarPriority(v, opts_.priority_bump);
        }
        break;
    }

    out.seconds = timer.seconds();
    return out;
}

} // namespace hyqsat::core
