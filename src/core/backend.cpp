#include "core/backend.h"

#include "util/timer.h"

namespace hyqsat::core {

Backend::Backend(const BackendOptions &opts, MetricsRegistry *metrics)
    : opts_(opts)
{
    if (!metrics)
        return;
    m_samples_ = metrics->counter("backend.samples");
    m_solved_ = metrics->counter("backend.solved_by_qa");
    for (int k = 1; k <= 4; ++k) {
        m_strategy_[k] = metrics->counter(
            "backend.strategy" + std::to_string(k));
    }
    for (int c = 0; c < 4; ++c) {
        m_class_[c] = metrics->counter(
            std::string("backend.class.") +
            bayes::satisfactionClassName(
                static_cast<bayes::SatisfactionClass>(c)));
    }
    m_apply_s_ = metrics->timer("backend.apply");
}

/** Record one interpreted sample into the attached registry. */
void
Backend::record(const BackendOutcome &out) const
{
    metricInc(m_samples_);
    if (out.solved)
        metricInc(m_solved_);
    if (out.strategy >= 1 && out.strategy <= 4)
        metricInc(m_strategy_[out.strategy]);
    const int cls = static_cast<int>(out.cls);
    if (cls >= 0 && cls < 4)
        metricInc(m_class_[cls]);
    metricTime(m_apply_s_, out.seconds);
}

BackendOutcome
Backend::apply(sat::Solver &solver, const FrontendResult &frontend,
               const anneal::AnnealSample &sample,
               const sat::Cnf &formula) const
{
    Timer timer;
    BackendOutcome out;
    if (!frontend.embedded || frontend.embedded->problem.numNodes() == 0) {
        out.seconds = timer.seconds();
        record(out);
        return out;
    }
    const auto &problem = frontend.embedded->problem;

    out.cls = opts_.classifier.classify(sample.clause_energy);

    switch (out.cls) {
      case bayes::SatisfactionClass::Satisfiable:
        if (opts_.enable_strategy1 && frontend.covers_all_unsatisfied) {
            // Candidate model: trail values where assigned, QA values
            // for embedded variables, saved polarity elsewhere.
            std::vector<bool> model(formula.numVars(), false);
            for (sat::Var v = 0; v < formula.numVars(); ++v)
                model[v] = solver.value(v).isTrue();
            for (const auto &[v, node] : problem.var_node) {
                if (solver.value(v).isUndef())
                    model[v] = sample.node_bits[node];
            }
            if (formula.eval(model)) {
                out.strategy = 1;
                out.solved = true;
                out.model = std::move(model);
                out.seconds = timer.seconds();
                record(out);
                return out;
            }
        }
        [[fallthrough]]; // partial coverage: use as assignment hints
      case bayes::SatisfactionClass::NearSatisfiable:
        if (opts_.enable_strategy2) {
            out.strategy = 2;
            for (const auto &[v, node] : problem.var_node) {
                if (opts_.strategy2_soft_hints)
                    solver.suggestPhase(v, sample.node_bits[node]);
                else
                    solver.setPhase(v, sample.node_bits[node]);
                if (opts_.strategy2_prioritize)
                    solver.bumpVarPriority(v, opts_.priority_bump);
            }
        }
        break;

      case bayes::SatisfactionClass::Uncertain:
        out.strategy = 3;
        break;

      case bayes::SatisfactionClass::NearUnsatisfiable:
        if (opts_.enable_strategy4) {
            out.strategy = 4;
            for (const auto &[v, node] : problem.var_node)
                solver.bumpVarPriority(v, opts_.priority_bump);
        }
        break;
    }

    out.seconds = timer.seconds();
    record(out);
    return out;
}

} // namespace hyqsat::core
