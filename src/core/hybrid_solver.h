/**
 * @file
 * The HyQSAT hybrid solver (§III): classic CDCL whose warm-up
 * iterations are accelerated by a (simulated) quantum annealer. At
 * each of the first sqrt(K) decision iterations the frontend ships
 * the hardest unsatisfied clauses to the annealer and the backend
 * interprets the sampled energy to prune the CDCL search; the
 * remaining iterations run as plain CDCL.
 */

#ifndef HYQSAT_CORE_HYBRID_SOLVER_H
#define HYQSAT_CORE_HYBRID_SOLVER_H

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "anneal/annealer.h"
#include "anneal/sampler.h"
#include "chimera/chimera.h"
#include "core/backend.h"
#include "core/frontend.h"
#include "sat/cnf.h"
#include "sat/solver.h"
#include "simplify/pipeline.h"
#include "util/cancel.h"
#include "util/metrics.h"

namespace hyqsat::core {

/** Full configuration of a hybrid run. */
struct HybridConfig
{
    sat::SolverOptions solver = sat::SolverOptions::minisatStyle();
    anneal::QuantumAnnealer::Options annealer;
    FrontendOptions frontend;
    BackendOptions backend;

    /**
     * Hardware topology family: Chimera (default) or the
     * Pegasus-style higher-degree graph (shorter chains, larger
     * embeddable clause queues). See topology::Topology.
     */
    topology::Kind topology = topology::Kind::Chimera;

    /** Topology cell grid (D-Wave 2000Q by default). */
    int chimera_rows = 16;
    int chimera_cols = 16;
    int chimera_shore = 4;

    /**
     * Sample through the hardware embedding (true) or the ideal
     * all-to-all logical device (false). The §VI-B noise-free
     * simulator corresponds to embedding with a noise-free model.
     */
    bool use_embedding = true;

    /**
     * Warm-up length: < 0 selects the paper's sqrt(K) policy with K
     * estimated from the formula size; >= 0 forces a length (0
     * degenerates to plain CDCL).
     */
    std::int64_t warmup_override = -1;

    /** Upper bound on warm-up iterations regardless of policy. */
    std::int64_t max_warmup = 4096;

    /**
     * Sampling backend by name: "sync"/"qa" (blocking device model,
     * the classic loop), "logical", "sa", "batch", "async" or
     * "async:<backend>". See anneal::makeSampler.
     */
    std::string sampler = "sync";

    /**
     * Max in-flight samples. 1 = the classic blocking loop; >= 2
     * wraps the named backend in an AsyncSampler worker thread so
     * device latency overlaps with CDCL search.
     */
    int pipeline_depth = 1;

    /** Independent seeds raced by the "batch" backend. */
    int batch_samples = 4;

    /**
     * Independent annealing chains per device sample, raced in
     * parallel on the shared WorkPool; the best energy wins
     * (anneal::SaOptions::num_reads). 1 reproduces the single-chain
     * sampler bit for bit.
     */
    int num_reads = 1;

    /**
     * Run multi-read samples through the lockstep SIMD batch kernel
     * (one instruction stream for all reads) instead of WorkPool
     * threads — the single-core way to make num_reads pay. No
     * effect at num_reads <= 1.
     */
    bool reads_batch = false;

    /**
     * Parallel lockstep groups for the batched path
     * (anneal::SaOptions::reads_groups): 0 auto-sizes groups of up
     * to 8 SIMD lanes fanned across the shared WorkPool, 1 forces a
     * single group, N pins the group count. Results are a pure
     * function of (seed, model, options) for every value. No effect
     * unless reads_batch is set.
     */
    int reads_groups = 0;

    /** Modeled network round trip per async sample (microseconds). */
    double rtt_us = 0.0;

    std::uint64_t seed = 0x47a9be57;

    /**
     * Inprocessing strength applied to the formula before the
     * hybrid loop. Off (the default) keeps existing runs bit
     * identical; Light runs the equivalence-preserving passes;
     * Full adds probing, vivification and bounded variable
     * elimination (resolvents capped at 3 literals, so 3-SAT input
     * stays 3-SAT). Models are mapped back to the original
     * variables and verified against the original formula.
     */
    simplify::Strength simplify_strength = simplify::Strength::Off;

    // ------------------------------------------------------------------
    // Portfolio integration (all optional; defaults = standalone run)
    // ------------------------------------------------------------------

    /**
     * Cooperative stop token observed at every CDCL decision /
     * conflict boundary and at the sampler's blocking wait points.
     * A racing portfolio shares one token across workers; solve()
     * returns l_Undef shortly after it trips. Never written here.
     */
    const StopToken *stop = nullptr;

    /**
     * Export tap for clause sharing: called for every clause the
     * CDCL layer learns (asserting literal first). The callee must
     * be thread-safe w.r.t. itself; it runs on the solving thread.
     */
    std::function<void(const sat::LitVec &)> learnt_export;

    /**
     * Root-level hook (decision level 0, after simplification):
     * the sound import point for shared clauses and polarity hints
     * (sat::Solver::importClause / suggestPhase).
     */
    std::function<void(sat::Solver &)> root_hook;

    /**
     * Observability: every solve() records its counters, phase
     * timers and histograms into a per-solve registry (the single
     * source of truth HybridResult's time/stat fields are views
     * over) and, when this is non-null, merges that registry here at
     * the end — so repeated solves accumulate and a CLI can dump one
     * JSON file. Trace events stream to this registry's sink live.
     */
    MetricsRegistry *metrics = nullptr;
};

/**
 * Host/device time breakdown (Fig. 11). A view assembled from the
 * solve's metrics registry (pipeline.* timers + backend.apply +
 * hybrid.cdcl), not an independently maintained copy.
 */
struct TimeBreakdown
{
    double frontend_s = 0.0;   ///< queue + encode + embed (host)
    double qa_device_s = 0.0;  ///< modeled annealer time
    double backend_s = 0.0;    ///< classification + feedback (host)
    double cdcl_s = 0.0;       ///< remaining CDCL search (host)
    double qa_host_s = 0.0;    ///< SA simulation cost (excluded from
                               ///< the modeled end-to-end time)

    /** Wall-clock seconds samples spent in flight (sum; Fig. 11). */
    double qa_inflight_s = 0.0;

    /**
     * Modeled device time NOT hidden behind concurrent CDCL work.
     * Equals qa_device_s for the blocking depth-1 loop; with the
     * async pipeline only the non-overlapped remainder is charged.
     */
    double qa_blocking_s = 0.0;

    /** Iterations that found the sampling pipeline full. */
    int stalls = 0;

    /** Modeled end-to-end time: host work + device time (serial). */
    double
    endToEnd() const
    {
        return frontend_s + qa_device_s + backend_s + cdcl_s;
    }

    /**
     * Modeled end-to-end time when in-flight device latency overlaps
     * with search: only the blocking device remainder is charged.
     */
    double
    endToEndPipelined() const
    {
        return frontend_s + qa_blocking_s + backend_s + cdcl_s;
    }
};

/** Result of a hybrid run. */
struct HybridResult
{
    sat::lbool status;
    std::vector<bool> model; ///< valid when status.isTrue()
    sat::SolverStats stats;  ///< CDCL counters (iterations etc.)
    TimeBreakdown time;

    int warmup_iterations = 0; ///< QA-assisted iterations executed
    int qa_samples = 0;    ///< samples applied by the backend
    int qa_submitted = 0;  ///< jobs handed to the sampler
    int qa_stale = 0;      ///< completions discarded as stale
    int chain_breaks = 0;  ///< accumulated over all samples

    /** Times each feedback strategy fired (index 1..4). */
    std::array<std::uint64_t, 5> strategy_count{};

    /** True when strategy 1 produced the model. */
    bool solved_by_qa = false;
};

class Session;

/** The hybrid solver. */
class HybridSolver
{
  public:
    explicit HybridSolver(const HybridConfig &config = {});

    /**
     * Solve a formula end to end. Safe to call repeatedly (and on
     * different formulas): every run builds fresh solver, sampler,
     * pipeline and RNG state from the immutable config, so a second
     * solve() reproduces the first bit for bit — no pipeline/epoch
     * state leaks across calls (regression-tested).
     */
    HybridResult solve(const sat::Cnf &formula);

    /**
     * Open an incremental session sharing this solver's
     * configuration: IPASIR-style solve(assumptions) calls with
     * clause addition between them, retaining CDCL and sampling
     * state across calls (see core/session.h). The session copies
     * the config and is independent of this HybridSolver.
     */
    std::unique_ptr<Session> openSession() const;

    /**
     * The paper's iteration estimate K for the sqrt(K) warm-up
     * policy, fit to the scale of Table I's CDCL iteration counts.
     */
    static std::uint64_t estimateIterations(int num_vars,
                                            int num_clauses);

    const HybridConfig &config() const { return config_; }

    /** The hardware topology (built once per solver). */
    const chimera::ChimeraGraph &graph() const { return graph_; }

  private:
    /** Backend spec derived from the configuration. */
    anneal::SamplerSpec samplerSpec() const;

    HybridConfig config_;

    // The topology is immutable configuration: building it per solve
    // made bench loops pay the construction on every call.
    chimera::ChimeraGraph graph_;
};

/**
 * Sampler backend spec derived from a hybrid configuration (the
 * depth>=2 async wrapping, num_reads composition and stop-token
 * plumbing). Shared by HybridSolver and Session so both layers
 * construct bit-identical samplers from the same config.
 */
anneal::SamplerSpec hybridSamplerSpec(const HybridConfig &config);

/**
 * Convenience: run plain CDCL through the same reporting types.
 * @p stop is an optional cooperative cancellation token; @p metrics
 * an optional registry receiving the solver.* counters and the
 * hybrid.total / hybrid.cdcl timers.
 */
HybridResult solveClassicCdcl(const sat::Cnf &formula,
                              const sat::SolverOptions &opts,
                              const StopToken *stop = nullptr,
                              MetricsRegistry *metrics = nullptr);

} // namespace hyqsat::core

#endif // HYQSAT_CORE_HYBRID_SOLVER_H
