/**
 * @file
 * Clause-queue generation (§IV-A): pick a head among the clauses
 * with top-k conflict-activity scores and breadth-first traverse
 * shared variables so the queue maximizes variable locality for the
 * embedder. Only clauses not yet satisfied under the current trail
 * participate.
 */

#ifndef HYQSAT_CORE_CLAUSE_QUEUE_H
#define HYQSAT_CORE_CLAUSE_QUEUE_H

#include <vector>

#include "sat/solver.h"
#include "util/rng.h"

namespace hyqsat::core {

/** Queue-generation knobs. */
struct ClauseQueueOptions
{
    /** Stop once this many clauses are queued (QA capacity bound). */
    int capacity = 170;

    /** Head is picked uniformly among the top-k activity clauses. */
    int top_k = 30;

    /**
     * Ablation switch (Fig. 14): ignore activity and locality, use a
     * uniformly random queue instead.
     */
    bool random_queue = false;
};

/**
 * Generate a clause queue from the solver's current state.
 * @return original-clause indices in queue order (possibly empty).
 */
std::vector<int> generateClauseQueue(const sat::Solver &solver,
                                     const ClauseQueueOptions &opts,
                                     Rng &rng);

} // namespace hyqsat::core

#endif // HYQSAT_CORE_CLAUSE_QUEUE_H
