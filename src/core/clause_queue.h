/**
 * @file
 * Clause-queue generation (§IV-A): pick a head among the clauses
 * with top-k conflict-activity scores and breadth-first traverse
 * shared variables so the queue maximizes variable locality for the
 * embedder. Only clauses not yet satisfied under the current trail
 * participate.
 */

#ifndef HYQSAT_CORE_CLAUSE_QUEUE_H
#define HYQSAT_CORE_CLAUSE_QUEUE_H

#include <vector>

#include "sat/solver.h"
#include "util/rng.h"

namespace hyqsat::core {

/** Queue-generation knobs. */
struct ClauseQueueOptions
{
    /** Stop once this many clauses are queued (QA capacity bound). */
    int capacity = 170;

    /** Head is picked uniformly among the top-k activity clauses. */
    int top_k = 30;

    /**
     * Ablation switch (Fig. 14): ignore activity and locality, use a
     * uniformly random queue instead.
     */
    bool random_queue = false;
};

/**
 * Reusable buffers for generateClauseQueue. A workspace makes
 * steady-state queue generation allocation-free: the dense
 * per-variable clause index and the queued-marks array keep their
 * capacity between calls (contents are reset on every call, so a
 * workspace can be reused across solvers of compatible size — the
 * arrays grow on demand). Not thread-safe; one workspace per caller.
 */
struct ClauseQueueWorkspace
{
    std::vector<int> unsat;     ///< unsatisfied clauses, ascending
    std::vector<int> by_score;  ///< activity-ordered prefix scratch
    std::vector<std::vector<int>> var_clauses; ///< indexed by Var
    std::vector<sat::Var> touched_vars; ///< vars to clear after a run
    std::vector<char> queued;           ///< BFS marks per clause
};

/**
 * Generate a clause queue from the solver's current state.
 * @return original-clause indices in queue order (possibly empty).
 */
std::vector<int> generateClauseQueue(const sat::Solver &solver,
                                     const ClauseQueueOptions &opts,
                                     Rng &rng);

/**
 * Workspace overload: identical output and RNG consumption to the
 * allocating signature (the delegating wrapper is the proof), with
 * all scratch taken from @p ws and the queue written into
 * @p out_queue (cleared first, capacity reused). After the call
 * ws.unsat holds the unsatisfied-clause set the queue was built
 * from, which callers can reuse (e.g. for coverage accounting).
 */
void generateClauseQueue(const sat::Solver &solver,
                         const ClauseQueueOptions &opts, Rng &rng,
                         ClauseQueueWorkspace &ws,
                         std::vector<int> &out_queue);

} // namespace hyqsat::core

#endif // HYQSAT_CORE_CLAUSE_QUEUE_H
