#include "core/frontend.h"

#include "util/timer.h"

namespace hyqsat::core {

FrontendResult
Frontend::run(const sat::Solver &solver, Rng &rng) const
{
    Timer timer;
    FrontendResult result;

    result.queue = generateClauseQueue(solver, opts_.queue, rng);
    if (result.queue.empty()) {
        result.seconds = timer.seconds();
        return result;
    }

    std::vector<sat::LitVec> clauses;
    clauses.reserve(result.queue.size());
    for (int ci : result.queue)
        clauses.push_back(solver.originalClause(ci));

    embed::HyQsatEmbedder embedder(graph_, opts_.embedder);
    result.embedded = embedder.embedQueue(clauses);

    result.embedded_clauses.assign(
        result.queue.begin(),
        result.queue.begin() + result.embedded.embedded_clauses);

    const auto unsat = solver.unsatisfiedOriginalClauses();
    result.covers_all_unsatisfied =
        result.embedded.all_embedded &&
        result.queue.size() == unsat.size();

    result.seconds = timer.seconds();
    return result;
}

} // namespace hyqsat::core
